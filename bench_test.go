package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
	"repro/internal/workload"
)

// runExperiment benchmarks one paper artifact end to end at TinyScale. The
// medium- and full-scale runs are driven by cmd/siribench; these benches
// exist so `go test -bench` regenerates (a scaled-down copy of) every table
// and figure.
func runExperiment(b *testing.B, name string) {
	exp, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	sc := bench.TinyScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		bench.FprintAll(io.Discard, tables)
	}
}

func BenchmarkFig01StorageVsVersions(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig06ThroughputYCSB(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig07ThroughputRealData(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig08Diff(b *testing.B)                { runExperiment(b, "fig8") }
func BenchmarkFig09TreeHeight(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10LatencyYCSB(b *testing.B)         { runExperiment(b, "fig10") }
func BenchmarkFig11LatencyWiki(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12LatencyEthereum(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13MBTBreakdown(b *testing.B)        { runExperiment(b, "fig13") }
func BenchmarkFig14StorageSingleGroup(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15StorageWiki(b *testing.B)         { runExperiment(b, "fig15") }
func BenchmarkFig16StorageEthereum(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17CollabOverlap(b *testing.B)       { runExperiment(b, "fig17") }
func BenchmarkFig18CollabBatchSize(b *testing.B)     { runExperiment(b, "fig18") }
func BenchmarkTable3StructureParams(b *testing.B)    { runExperiment(b, "table3") }
func BenchmarkFig19AblationInvariance(b *testing.B)  { runExperiment(b, "fig19") }
func BenchmarkFig20AblationRecursive(b *testing.B)   { runExperiment(b, "fig20") }
func BenchmarkFig21ForkbaseIntegration(b *testing.B) { runExperiment(b, "fig21") }
func BenchmarkFig22ForkbaseVsNoms(b *testing.B)      { runExperiment(b, "fig22") }

// --- per-operation micro-benchmarks across the four candidates ---

const microRecords = 10000

func microDataset() []core.Entry {
	y := workload.NewYCSB(workload.YCSBConfig{Records: microRecords, Seed: 5})
	return y.Dataset()
}

func microCandidates() map[string]func() core.Index {
	return map[string]func() core.Index{
		"POS-Tree": func() core.Index {
			return postree.New(store.NewMemStore(), postree.DefaultConfig())
		},
		"MBT": func() core.Index {
			t, err := mbt.New(store.NewMemStore(), mbt.Config{Capacity: 1024, Fanout: 32})
			if err != nil {
				panic(err)
			}
			return t
		},
		"MPT": func() core.Index {
			return mpt.New(store.NewMemStore())
		},
		"MVMB+-Tree": func() core.Index {
			return mvmbt.New(store.NewMemStore(), mvmbt.DefaultConfig())
		},
		"Prolly-Tree": func() core.Index {
			return prolly.New(store.NewMemStore(), prolly.ConfigForNodeSize(1024))
		},
	}
}

func loadMicro(b *testing.B, mk func() core.Index) core.Index {
	b.Helper()
	idx, err := bench.LoadBatched(mk(), microDataset(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

func BenchmarkGet(b *testing.B) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: microRecords, Seed: 5})
	for name, mk := range microCandidates() {
		b.Run(name, func(b *testing.B) {
			idx := loadMicro(b, mk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := y.Key(i % microRecords)
				if _, ok, err := idx.Get(key); err != nil || !ok {
					b.Fatalf("Get(%q) = %v, %v", key, ok, err)
				}
			}
		})
	}
}

func BenchmarkPut(b *testing.B) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: microRecords, Seed: 5})
	for name, mk := range microCandidates() {
		b.Run(name, func(b *testing.B) {
			idx := loadMicro(b, mk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := i % microRecords
				next, err := idx.Put(y.Key(id), y.Value(id, i+1))
				if err != nil {
					b.Fatal(err)
				}
				idx = next
			}
		})
	}
}

func BenchmarkPutBatch1000(b *testing.B) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: microRecords, Seed: 5})
	for name, mk := range microCandidates() {
		b.Run(name, func(b *testing.B) {
			idx := loadMicro(b, mk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([]core.Entry, 1000)
				for j := range batch {
					id := (i*1000 + j) % microRecords
					batch[j] = core.Entry{Key: y.Key(id), Value: y.Value(id, i+1)}
				}
				next, err := idx.PutBatch(batch)
				if err != nil {
					b.Fatal(err)
				}
				idx = next
			}
		})
	}
}

func BenchmarkDiffOnePercent(b *testing.B) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: microRecords, Seed: 5})
	for name, mk := range microCandidates() {
		b.Run(name, func(b *testing.B) {
			left := loadMicro(b, mk)
			batch := make([]core.Entry, microRecords/100)
			for j := range batch {
				id := j * 97 % microRecords
				batch[j] = core.Entry{Key: y.Key(id), Value: y.Value(id, 999)}
			}
			right, err := left.PutBatch(batch)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				diffs, err := left.Diff(right)
				if err != nil {
					b.Fatal(err)
				}
				if len(diffs) == 0 {
					b.Fatal("no diffs")
				}
			}
		})
	}
}

func BenchmarkProve(b *testing.B) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: microRecords, Seed: 5})
	for name, mk := range microCandidates() {
		b.Run(name, func(b *testing.B) {
			idx := loadMicro(b, mk)
			root := idx.RootHash()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				proof, err := idx.Prove(y.Key(i % microRecords))
				if err != nil {
					b.Fatal(err)
				}
				if err := idx.VerifyProof(root, proof); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBulkBuild measures the bottom-up batched build path that gives
// POS-Tree its write edge in Figure 7(b).
func BenchmarkBulkBuild(b *testing.B) {
	entries := core.SortEntries(microDataset())
	b.Run("POS-Tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := postree.Build(store.NewMemStore(), postree.DefaultConfig(), entries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Prolly-Tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prolly.Build(store.NewMemStore(), prolly.ConfigForNodeSize(1024), entries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MVMB+-Tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mvmbt.Build(store.NewMemStore(), mvmbt.DefaultConfig(), entries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestExamplesStayRunnable is a root-level smoke check that the example
// scenario logic embedded in the benchmarks matches the library: a quick
// cross-index equivalence pass over identical contents.
func TestCrossIndexEquivalence(t *testing.T) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: 2000, Seed: 5})
	dataset := y.Dataset()
	var heads []core.Index
	for name, mk := range microCandidates() {
		idx, err := bench.LoadBatched(mk(), dataset, 500)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		heads = append(heads, idx)
	}
	// All five indexes must agree on every record and on the count.
	for i := 0; i < 2000; i += 113 {
		key := y.Key(i)
		want, _, _ := heads[0].Get(key)
		for _, h := range heads[1:] {
			got, ok, err := h.Get(key)
			if err != nil || !ok || string(got) != string(want) {
				t.Fatalf("%s disagrees on %q", h.Name(), key)
			}
		}
	}
	for _, h := range heads {
		n, err := h.Count()
		if err != nil || n != 2000 {
			t.Fatalf("%s Count = %d, %v", h.Name(), n, err)
		}
	}
}
