// Package doclint enforces the repository's documentation bar as a test:
// every exported identifier in the audited packages must carry a doc
// comment, and every audited package must have a package comment. CI runs
// it alongside go vet; a failure names the exact file:line to fix.
//
// The lint is a test rather than an external tool so it needs nothing the
// Go toolchain doesn't already ship (the container adds no dependencies)
// and so `go test ./...` keeps the bar without a separate CI step.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// auditedPackages lists the package directories (relative to the repository
// root) held to the exported-docs bar. Every package touched by the
// versioning + GC work is on it; extend the list as packages join.
var auditedPackages = []string{
	"cmd/siribench",
	"internal/bench",
	"internal/chunk",
	"internal/codec",
	"internal/core",
	"internal/core/indextest",
	"internal/forkbase",
	"internal/hash",
	"internal/ingest",
	"internal/ingest/ingesttest",
	"internal/mbt",
	"internal/mpt",
	"internal/mvmbt",
	"internal/netchaos",
	"internal/postree",
	"internal/prolly",
	"internal/query",
	"internal/query/plantest",
	"internal/rlp",
	"internal/secondary",
	"internal/store",
	"internal/store/faultstore",
	"internal/store/storetest",
	"internal/version",
	"internal/workload",
}

// TestExportedIdentifiersDocumented parses every audited package (tests
// excluded) and fails with one line per exported identifier that lacks a
// doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	root := repoRoot(t)
	var missing []string
	for _, rel := range auditedPackages {
		missing = append(missing, auditPackage(t, filepath.Join(root, rel), rel)...)
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("undocumented: %s", m)
	}
}

// repoRoot walks up from the test's directory to the module root (go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	// This test lives in <root>/internal/doclint.
	return filepath.Join("..", "..")
}

// auditPackage returns "file:line name" for every undocumented exported
// identifier in one package directory.
func auditPackage(t *testing.T, dir, rel string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", rel, err)
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s/%s:%d %s", rel, filepath.Base(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			missing = append(missing, fmt.Sprintf("%s: package %s has no package comment", rel, pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), declName(d))
					}
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return missing
}

// exportedReceiver reports whether d is a plain function or a method on an
// exported type — methods on unexported types are internal API.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverTypeName(d.Recv.List[0].Type))
}

// receiverTypeName unwraps a receiver type expression to its base name.
func receiverTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

// declName renders a func/method name for the failure message.
func declName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		return receiverTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
	}
	return d.Name.Name
}

// auditGenDecl checks type/var/const declarations. A doc comment on the
// grouped declaration covers every spec in the group (the standard idiom
// for error-variable and enum blocks); otherwise each exported spec needs
// its own.
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(s.Pos(), n.Name)
				}
			}
		}
	}
}
