// Package ingest is the write-optimized front-end ahead of the Merkle
// indexes: a WAL-backed memtable (Buffer) that absorbs Put/Delete point
// writes at log-append cost and folds them into a core index — producing an
// ordinary version.Repo commit — only when size or age thresholds trip.
// Point writes against the immutable indexes otherwise cost a full
// root-to-leaf path rewrite each (the write-amplification cost the paper's
// Section 7 measures); batching them through the memtable amortizes that
// rewrite across the whole batch via the staged PutBatch path.
//
// # Read-your-writes
//
// Reads go through a layered view (core.ReadOverlay): the memtable first —
// where a pending tombstone masks the key entirely — then the checked-out
// branch head. A buffered write is visible to Get and Range immediately
// after Put returns, before any merge. The branch head view is pinned
// (version.Pin), so concurrent GC passes never reclaim pages mid-read.
//
// # Durability contract
//
// Writes are acknowledged at three strengths, in order:
//
//   - Put/Delete returned: the record is in the WAL's write buffer and the
//     memtable. It is visible to reads but survives nothing — a process
//     crash loses it.
//   - Flush returned (group commit): every write buffered before the call
//     has reached the OS page cache. It survives a process crash; like
//     store.Flusher, this is NOT an fsync, so an OS crash may still lose it
//     unless Options.SyncOnFlush is set.
//   - Merge returned: the writes are in the branch head commit, durable
//     exactly as strongly as the repo's store is.
//
// # Replay idempotence
//
// Every merge commit records the WAL high-water mark — the largest WAL
// sequence number it folded in — as commit metadata. Open replays the WAL
// against that mark: records with seq at or below the branch head's mark
// are skipped (they are already in the index; replaying them would
// resurrect ghosts), records above it rebuild the memtable in append order
// (last write per key wins). This makes crash recovery idempotent at every
// crash point: before the merge commit, replay restores the full memtable;
// after the commit but before the WAL prune, replay skips everything the
// commit covered and loses nothing.
//
// Torn WAL tails (a crash mid-append) are detected by record CRCs and
// truncated on open, mirroring the store's segment recovery; an
// acknowledged-durable write is never behind a torn record, because
// acknowledgment (Flush) happens strictly after the record's bytes are
// complete in the buffer.
package ingest
