package ingest_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/ingest/ingesttest"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
	"repro/internal/version"
)

// The ingest battery crosses every index class with every store backend —
// the same 5×4 grid the version and indextest suites certify, now with a
// WAL-backed memtable in front.

type indexClass struct {
	name   string
	new    func(s store.Store) (core.Index, error)
	loader version.Loader
}

func classes() []indexClass {
	posCfg := postree.ConfigForNodeSize(512)
	prollyCfg := prolly.ConfigForNodeSize(512)
	mbtCfg := mbt.Config{Capacity: 32, Fanout: 8}
	mvCfg := mvmbt.ConfigForNodeSize(512)
	return []indexClass{
		{
			name: "MPT",
			new:  func(s store.Store) (core.Index, error) { return mpt.New(s), nil },
			loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
				return mpt.Load(s, root), nil
			},
		},
		{
			name: "MBT",
			new:  func(s store.Store) (core.Index, error) { return mbt.New(s, mbtCfg) },
			loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
				return mbt.Load(s, mbtCfg, root)
			},
		},
		{
			name: "POS-Tree",
			new:  func(s store.Store) (core.Index, error) { return postree.New(s, posCfg), nil },
			loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
				return postree.Load(s, posCfg, root, height), nil
			},
		},
		{
			name: "Prolly-Tree",
			new:  func(s store.Store) (core.Index, error) { return prolly.New(s, prollyCfg), nil },
			loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
				return prolly.Load(s, prollyCfg, root, height), nil
			},
		},
		{
			name: "MVMB+-Tree",
			new:  func(s store.Store) (core.Index, error) { return mvmbt.New(s, mvCfg), nil },
			loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
				return mvmbt.Load(s, mvCfg, root, height), nil
			},
		},
	}
}

func TestIngestConformance(t *testing.T) {
	for _, c := range classes() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ingesttest.RunIngestTests(t, c.name, ingesttest.Options{
				New:    c.new,
				Loader: c.loader,
			})
		})
	}
}
