package ingest_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/store/faultstore"
)

func dk(i int) []byte      { return []byte(fmt.Sprintf("key-%05d", i)) }
func dv(i, gen int) []byte { return []byte(fmt.Sprintf("val-%05d-gen%d", i, gen)) }
func ks(b []byte) string   { return string(b) }

func mustMerge(t *testing.T, bu *ingest.Buffer) {
	t.Helper()
	if _, merged, err := bu.Merge(); err != nil || !merged {
		t.Fatalf("merge = %v, %v", merged, err)
	}
}

// checkOracle verifies the buffer serves exactly the oracle's contents.
func checkOracle(t *testing.T, bu *ingest.Buffer, oracle map[string][]byte) {
	t.Helper()
	for key, want := range oracle {
		got, ok, err := bu.Get([]byte(key))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) = %q, %v, %v; want %q", key, got, ok, err, want)
		}
	}
	n, err := bu.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(oracle) {
		t.Fatalf("Count = %d, oracle has %d keys", n, len(oracle))
	}
}

// TestIngestDegradeMatrix is the WAL front-end's resource-exhaustion
// matrix: persistent write failure in the WAL, in the node store, or in
// both at once. In every mode the buffer degrades to read-only — buffered
// and merged data stays readable, the failing write path reports a typed
// retryable error with no torn state (a rejected append never dirties the
// memtable; a rejected merge never advances the branch) — and after Heal
// the same operations succeed with no data loss.
func TestIngestDegradeMatrix(t *testing.T) {
	for _, mode := range []string{"wal", "store", "both"} {
		t.Run(mode, func(t *testing.T) {
			fs := faultstore.Wrap(store.NewMemStore(), faultstore.Config{})
			repo := newIngestTestRepo(fs)
			var walFull atomic.Bool
			opts := ingest.Options{
				Dir: t.TempDir(),
				New: newMPT,
				WriteErr: func(op string) error {
					if walFull.Load() {
						return fmt.Errorf("wal %s: %w", op, store.ErrNoSpace)
					}
					return nil
				},
			}
			bu, err := ingest.Open(repo, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer bu.Close()

			degrade := func() {
				if mode == "wal" || mode == "both" {
					walFull.Store(true)
				}
				if mode == "store" || mode == "both" {
					fs.SetConfig(faultstore.Config{NoSpace: true})
				}
			}
			heal := func() {
				walFull.Store(false)
				fs.Heal()
			}

			// Healthy prelude: one merged generation and one buffered write.
			for i := 0; i < 10; i++ {
				if err := bu.Put(dk(i), dv(i, 0)); err != nil {
					t.Fatal(err)
				}
			}
			mustMerge(t, bu)
			if err := bu.Put(dk(10), dv(10, 0)); err != nil {
				t.Fatal(err)
			}

			degrade()

			// The write path fails typed; in WAL modes the reject happens
			// before the memtable is touched, in store-only mode the append
			// still buffers (the WAL is healthy) and only the merge fails.
			err = bu.Put(dk(11), dv(11, 0))
			walDegraded := mode == "wal" || mode == "both"
			if walDegraded {
				if !errors.Is(err, store.ErrNoSpace) {
					t.Fatalf("Put with degraded WAL = %v, want ErrNoSpace", err)
				}
				// The rejected write left no trace.
				if _, ok, _ := bu.Get(dk(11)); ok {
					t.Fatal("rejected append dirtied the memtable")
				}
			} else if err != nil {
				t.Fatalf("Put with healthy WAL: %v", err)
			}
			if _, _, err := bu.Merge(); !errors.Is(err, store.ErrNoSpace) && mode != "wal" {
				t.Fatalf("Merge while store degraded = %v, want ErrNoSpace", err)
			}

			// Reads: merged and buffered data both stay visible.
			if got, ok, err := bu.Get(dk(3)); err != nil || !ok || string(got) != string(dv(3, 0)) {
				t.Fatalf("merged read while degraded = %q, %v, %v", got, ok, err)
			}
			if got, ok, err := bu.Get(dk(10)); err != nil || !ok || string(got) != string(dv(10, 0)) {
				t.Fatalf("buffered read while degraded = %q, %v, %v", got, ok, err)
			}
			// The graph scrubs clean mid-degrade: nothing torn, only refused.
			if rep, err := repo.Verify(); err != nil || !rep.OK() {
				t.Fatalf("verify while degraded = %v, %v", rep, err)
			}

			// Degrade errors are per-operation, not sticky.
			if walDegraded {
				if err := bu.Put(dk(12), dv(12, 0)); !errors.Is(err, store.ErrNoSpace) {
					t.Fatalf("second degraded Put = %v, want ErrNoSpace again", err)
				}
			}

			heal()

			// Full service resumes: the failed writes retry through, a
			// merge commits everything, and nothing from before the window
			// was lost.
			for _, i := range []int{11, 12} {
				if err := bu.Put(dk(i), dv(i, 1)); err != nil {
					t.Fatalf("Put(%d) after heal: %v", i, err)
				}
			}
			mustMerge(t, bu)
			oracle := map[string][]byte{}
			for i := 0; i < 10; i++ {
				oracle[ks(dk(i))] = dv(i, 0)
			}
			oracle[ks(dk(10))] = dv(10, 0)
			oracle[ks(dk(11))] = dv(11, 1)
			oracle[ks(dk(12))] = dv(12, 1)
			checkOracle(t, bu, oracle)
			if rep, err := repo.Verify(); err != nil || !rep.OK() {
				t.Fatalf("verify after heal = %v, %v", rep, err)
			}
		})
	}
}
