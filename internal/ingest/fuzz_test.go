package ingest

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedSegment writes real records through the WAL and returns the raw
// bytes of its first sealed-or-active segment — a genuine corpus seed, not
// a hand-rolled imitation of the format.
func buildSeedSegment(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	w, _, _, err := openWAL(dir, 0, false, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		key := []byte{byte('a' + i), 'k'}
		if i%3 == 2 {
			_, err = w.append(key, nil, true)
		} else {
			_, err = w.append(key, bytes.Repeat([]byte{byte(i)}, i*7+1), false)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no WAL segment written (%v)", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzWALReplay throws arbitrary bytes at the WAL replay path as a segment
// image: open must never panic, must accept only CRC-intact records, and
// the torn-tail truncation must be idempotent — a second open of the same
// directory sees zero torn bytes and the identical record sequence.
func FuzzWALReplay(f *testing.F) {
	seed := buildSeedSegment(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn mid-record
	f.Add(seed[:9])           // torn mid-header
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	// A valid frame around a garbage payload: framing passes, decode must
	// reject it.
	garbage := []byte{0xff, 0x07, 0x07}
	frame := make([]byte, walHeaderSize+len(garbage))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(garbage)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(garbage))
	copy(frame[walHeaderSize:], garbage)
	f.Add(append(append([]byte(nil), seed...), frame...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, walSegmentName(0))
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, rep, err := openWAL(dir, 0, false, nil, nil)
		if err != nil {
			t.Fatalf("openWAL on fuzzed segment errored (must repair, not fail): %v", err)
		}
		for i, rec := range recs {
			if len(rec.key) == 0 {
				t.Fatalf("record %d decoded with empty key", i)
			}
			if rec.tombstone && rec.value != nil {
				t.Fatalf("record %d is a tombstone with a value", i)
			}
		}
		if rep.Records != len(recs) {
			t.Fatalf("report counts %d records, got %d", rep.Records, len(recs))
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}

		// Truncation is idempotent: the repaired directory replays to the
		// same records with nothing further torn.
		w2, recs2, rep2, err := openWAL(dir, 0, false, nil, nil)
		if err != nil {
			t.Fatalf("second openWAL errored: %v", err)
		}
		defer w2.close()
		if rep2.TornBytes != 0 || rep2.TornSegments != 0 {
			t.Fatalf("second open still tearing: %+v (first %+v)", rep2, rep)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("second open replayed %d records, first %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].seq != recs2[i].seq || recs[i].tombstone != recs2[i].tombstone ||
				!bytes.Equal(recs[i].key, recs2[i].key) || !bytes.Equal(recs[i].value, recs2[i].value) {
				t.Fatalf("record %d diverged across reopens: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
	})
}
