package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/codec"
)

// WAL on-disk format. A directory holds segment files wal-00000000.log,
// wal-00000001.log, … Each segment is a sequence of framed records:
//
//	[4-byte big-endian payload length][4-byte big-endian CRC-32 (IEEE) of payload][payload]
//
// and each payload is:
//
//	kind byte (1 = put, 2 = delete) | seq uvarint | key len-bytes | value len-bytes (puts only)
//
// Sequence numbers are assigned densely in append order and never reused,
// so the WAL's global record order is the ingest order even across segment
// rotations. Replay scans segments in file order; a record that fails to
// frame or checksum marks a torn tail — everything from it to the segment's
// end is truncated away, mirroring DiskStore's rebuild-on-open contract.
// Appends go through a buffered writer; flushWAL (group commit) moves them
// to the OS, which is the process-crash durability boundary.
const (
	walPrefix = "wal-"
	walSuffix = ".log"
	// walHeaderSize frames every record: length + CRC.
	walHeaderSize = 8
	// maxWALRecordBytes bounds a plausible payload length; a header
	// promising more marks a torn or garbage tail.
	maxWALRecordBytes = 1 << 28
	// defaultWALSegmentBytes rolls the active segment once it would grow
	// past this size.
	defaultWALSegmentBytes = 4 << 20

	walKindPut    = 1
	walKindDelete = 2
)

// Named crash points of the WAL write path, firing immediately BEFORE the
// step each names (Options.CrashHook receives them). The ingest crash
// matrix arms them through faultstore's Hook machinery.
const (
	// CrashWALAppend fires before a record's bytes enter the write buffer.
	CrashWALAppend = "wal.append-record"
	// CrashWALRotate fires after the outgoing segment is sealed, before
	// the replacement segment file is created.
	CrashWALRotate = "wal.rotate"
	// CrashMergeCommit fires inside Merge before the merge commit is
	// recorded: the crash leaves the memtable contents only in the WAL.
	CrashMergeCommit = "ingest.merge-commit"
	// CrashMergePrune fires inside Merge after the commit is durable,
	// before the WAL segments it covers are pruned: replay after the
	// crash must skip every record at or below the recorded high-water
	// mark or merged writes would reappear as ghosts.
	CrashMergePrune = "ingest.merge-prune"
)

// CrashPoints lists the ingest crash points in write-path order, for
// matrix tests that iterate them all.
func CrashPoints() []string {
	return []string{CrashWALAppend, CrashWALRotate, CrashMergeCommit, CrashMergePrune}
}

// walRecord is one decoded WAL entry.
type walRecord struct {
	seq       uint64
	key       []byte
	value     []byte
	tombstone bool
}

// encodeWALRecord appends rec's payload encoding to w.
func encodeWALRecord(w *codec.Writer, rec walRecord) {
	if rec.tombstone {
		w.Byte(walKindDelete)
	} else {
		w.Byte(walKindPut)
	}
	w.Uvarint(rec.seq)
	w.LenBytes(rec.key)
	if !rec.tombstone {
		w.LenBytes(rec.value)
	}
}

// decodeWALRecord parses one payload. The returned record's byte fields are
// copies, never aliases of data: WAL payloads live in transient read
// buffers, not in a content-addressed store with an immutability guarantee.
func decodeWALRecord(data []byte) (walRecord, error) {
	r := codec.NewReader(data)
	kind, err := r.Byte()
	if err != nil {
		return walRecord{}, fmt.Errorf("ingest: wal record kind: %w", err)
	}
	if kind != walKindPut && kind != walKindDelete {
		return walRecord{}, fmt.Errorf("ingest: wal record kind %#x unknown", kind)
	}
	var rec walRecord
	rec.tombstone = kind == walKindDelete
	if rec.seq, err = r.Uvarint(); err != nil {
		return walRecord{}, fmt.Errorf("ingest: wal record seq: %w", err)
	}
	key, err := r.LenBytes()
	if err != nil {
		return walRecord{}, fmt.Errorf("ingest: wal record key: %w", err)
	}
	if len(key) == 0 {
		return walRecord{}, errors.New("ingest: wal record with empty key")
	}
	rec.key = append([]byte(nil), key...)
	if !rec.tombstone {
		val, err := r.LenBytes()
		if err != nil {
			return walRecord{}, fmt.Errorf("ingest: wal record value: %w", err)
		}
		rec.value = append([]byte(nil), val...)
	}
	if err := r.Done(); err != nil {
		return walRecord{}, fmt.Errorf("ingest: wal record trailing bytes: %w", err)
	}
	return rec, nil
}

// ReplayReport summarizes what openWAL's scan found and repaired — the
// ingest sibling of store.RecoverySummary. Zero values mean a clean close.
type ReplayReport struct {
	// Segments is how many WAL segment files the open scanned.
	Segments int
	// Records is how many intact records the scan decoded (including
	// records at or below the merge high-water mark, which replay skips).
	Records int
	// Replayed is how many records were applied to the memtable: intact
	// records above the recorded high-water mark.
	Replayed int
	// TornSegments counts segments whose tail held a torn or corrupt
	// record (short header, implausible length, CRC mismatch, short
	// payload, undecodable payload) that the scan truncated away.
	TornSegments int
	// TornBytes is the total bytes truncated from torn tails.
	TornBytes int64
}

// wal is the segmented write-ahead log behind a Buffer. All methods are
// safe for concurrent use; append order defines sequence order.
type wal struct {
	dir          string
	segmentBytes int64
	syncOnFlush  bool
	crash        func(point string)
	// writeErr is the degrade hook (Options.WriteErr): consulted before
	// every file-mutating step; a non-nil return rejects the operation with
	// a typed retryable error WITHOUT poisoning the sticky err — after a
	// heal the WAL resumes appending exactly where it left off.
	writeErr func(op string) error

	mu         sync.Mutex
	active     *os.File
	w          *bufio.Writer
	activeID   int
	activeSize int64
	// sealed maps a sealed segment's ID to the last sequence number it
	// holds, for pruning: a sealed segment whose lastSeq is at or below
	// the merge high-water mark holds only merged records.
	sealed map[int]uint64
	// appendSeq is the last sequence number appended (buffered included);
	// lastSeqActive mirrors it for the active segment's prune accounting.
	appendSeq     uint64
	lastSeqActive uint64
	err           error // first write error, sticky
	closed        bool

	// flushMu serializes physical flushes; flushedSeq (guarded by mu) is
	// the last sequence number known to have reached the OS.
	flushMu    sync.Mutex
	flushedSeq uint64
}

func walSegmentName(id int) string { return fmt.Sprintf("%s%08d%s", walPrefix, id, walSuffix) }

// openWAL scans dir's WAL segments in order, truncating torn tails, and
// returns the log (appending to a fresh segment) plus every intact record
// in sequence order. The caller filters the records against its high-water
// mark; the report accounts for both.
func openWAL(dir string, segmentBytes int64, syncOnFlush bool, crash func(string), writeErr func(string) error) (*wal, []walRecord, ReplayReport, error) {
	if segmentBytes <= 0 {
		segmentBytes = defaultWALSegmentBytes
	}
	if crash == nil {
		crash = func(string) {}
	}
	if writeErr == nil {
		writeErr = func(string) error { return nil }
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, ReplayReport{}, fmt.Errorf("ingest: wal: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil {
		return nil, nil, ReplayReport{}, fmt.Errorf("ingest: wal: %w", err)
	}
	sort.Strings(names)

	w := &wal{
		dir:          dir,
		segmentBytes: segmentBytes,
		syncOnFlush:  syncOnFlush,
		crash:        crash,
		writeErr:     writeErr,
		sealed:       make(map[int]uint64),
	}
	var records []walRecord
	var report ReplayReport
	maxID := -1
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), walPrefix+"%d"+walSuffix, &id); err != nil {
			continue // foreign file; leave it alone
		}
		if id > maxID {
			maxID = id
		}
		segRecs, torn, err := replaySegment(name)
		if err != nil {
			return nil, nil, ReplayReport{}, err
		}
		report.Segments++
		report.Records += len(segRecs)
		if torn > 0 {
			report.TornSegments++
			report.TornBytes += torn
		}
		if len(segRecs) > 0 {
			w.sealed[id] = segRecs[len(segRecs)-1].seq
			records = append(records, segRecs...)
		} else {
			// An empty (or fully torn) segment holds nothing to replay or
			// retain; remove it rather than tracking a zero watermark.
			_ = os.Remove(name)
			report.Segments-- // not a live segment anymore
		}
	}
	for _, rec := range records {
		if rec.seq > w.appendSeq {
			w.appendSeq = rec.seq
		}
	}
	// Append to a fresh segment: sealed segments are immutable, so a
	// truncated tail is never appended over and the active bufio state
	// starts clean.
	w.activeID = maxID + 1
	if err := w.openActiveLocked(); err != nil {
		return nil, nil, ReplayReport{}, err
	}
	return w, records, report, nil
}

// replaySegment decodes one segment file, truncating everything from the
// first torn or corrupt record onward (in place, so the next open starts
// clean) and returning the bytes it cut.
func replaySegment(name string) ([]walRecord, int64, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: wal: %w", err)
	}
	recs, validLen := decodeSegment(data)
	torn := int64(len(data)) - validLen
	if torn > 0 {
		if err := os.Truncate(name, validLen); err != nil {
			return nil, 0, fmt.Errorf("ingest: wal: truncate torn tail of %s: %w", name, err)
		}
	}
	return recs, torn, nil
}

// decodeSegment walks a segment image record by record, returning the
// intact prefix's records and its byte length. The first framing, CRC or
// payload error ends the walk: everything after it is a torn tail.
func decodeSegment(data []byte) ([]walRecord, int64) {
	var recs []walRecord
	off := int64(0)
	for int64(len(data))-off >= walHeaderSize {
		n := int64(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if n == 0 || n > maxWALRecordBytes || off+walHeaderSize+n > int64(len(data)) {
			break
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off += walHeaderSize + n
	}
	return recs, off
}

// openActiveLocked creates the active segment file. Caller holds mu (or is
// the constructor).
func (w *wal) openActiveLocked() error {
	f, err := os.OpenFile(filepath.Join(w.dir, walSegmentName(w.activeID)),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: wal: %w", err)
	}
	w.active = f
	w.w = bufio.NewWriter(f)
	w.activeSize = 0
	w.lastSeqActive = 0
	return nil
}

// append frames and buffers one record, assigning and returning its
// sequence number. The record is durable only after a flush covering it.
func (w *wal) append(key, value []byte, tombstone bool) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	if err := w.writeErr("append"); err != nil {
		// Rejected before a sequence number is assigned or a byte is
		// buffered: the write simply did not happen, the caller's memtable
		// stays untouched, and the error is retryable after a heal.
		return 0, fmt.Errorf("ingest: wal append: %w", err)
	}
	seq := w.appendSeq + 1
	enc := codec.GetWriter()
	encodeWALRecord(enc, walRecord{seq: seq, key: key, value: value, tombstone: tombstone})
	payload := enc.Bytes()

	if w.activeSize > 0 && w.activeSize+walHeaderSize+int64(len(payload)) > w.segmentBytes {
		if err := w.rotateLocked(); err != nil {
			enc.Release()
			w.err = err
			return 0, err
		}
	}
	w.crash(CrashWALAppend)
	var hdr [walHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		enc.Release()
		w.err = fmt.Errorf("ingest: wal append: %w", err)
		return 0, w.err
	}
	if _, err := w.w.Write(payload); err != nil {
		enc.Release()
		w.err = fmt.Errorf("ingest: wal append: %w", err)
		return 0, w.err
	}
	enc.Release()
	w.activeSize += walHeaderSize + int64(len(payload))
	w.appendSeq = seq
	w.lastSeqActive = seq
	return seq, nil
}

// rotateLocked seals the active segment (flushing its buffer) and opens the
// next one. Caller holds mu.
func (w *wal) rotateLocked() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("ingest: wal rotate: %w", err)
	}
	if w.syncOnFlush {
		if err := w.active.Sync(); err != nil {
			return fmt.Errorf("ingest: wal rotate: %w", err)
		}
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("ingest: wal rotate: %w", err)
	}
	if w.lastSeqActive > 0 {
		w.sealed[w.activeID] = w.lastSeqActive
	} else {
		// Nothing was ever appended; drop the empty file.
		_ = os.Remove(filepath.Join(w.dir, walSegmentName(w.activeID)))
	}
	// Everything in the sealed segment reached the OS with the flush above.
	if w.lastSeqActive > w.flushedSeq {
		w.flushedSeq = w.lastSeqActive
	}
	w.crash(CrashWALRotate)
	w.activeID++
	return w.openActiveLocked()
}

// rotate seals the active segment and opens a fresh one — the merge path
// calls it so a following prune can retire every pre-merge segment.
func (w *wal) rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	if w.activeSize == 0 {
		return nil // already fresh
	}
	if err := w.writeErr("rotate"); err != nil {
		// Degraded, not broken: retryable after a heal, so never sticky.
		return fmt.Errorf("ingest: wal rotate: %w", err)
	}
	if err := w.rotateLocked(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// flush is the group commit: it pushes every record appended so far to the
// OS. Concurrent callers coalesce — a caller whose records were already
// covered by another caller's physical flush returns without touching the
// file.
func (w *wal) flush() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.err != nil {
		defer w.mu.Unlock()
		return w.err
	}
	target := w.appendSeq
	if w.flushedSeq >= target {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()

	// One flusher at a time; by the time a waiter gets the flush lock the
	// leader may have covered its target already.
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	if w.flushedSeq >= target {
		return nil
	}
	if err := w.writeErr("flush"); err != nil {
		// Degraded, not broken: retryable after a heal, so never sticky.
		return fmt.Errorf("ingest: wal flush: %w", err)
	}
	covered := w.appendSeq // everything buffered right now goes out together
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("ingest: wal flush: %w", err)
		return w.err
	}
	if w.syncOnFlush {
		if err := w.active.Sync(); err != nil {
			w.err = fmt.Errorf("ingest: wal flush: %w", err)
			return w.err
		}
	}
	w.flushedSeq = covered
	return nil
}

// prune removes sealed segments holding only records at or below hwm. The
// active segment is never pruned.
func (w *wal) prune(hwm uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	var firstErr error
	for id, last := range w.sealed {
		if last > hwm {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, walSegmentName(id))); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ingest: wal prune: %w", err)
			continue
		}
		delete(w.sealed, id)
	}
	return firstErr
}

// segments reports the number of live segment files (sealed + active).
func (w *wal) segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// seqs returns the append and flushed sequence watermarks.
func (w *wal) seqs() (appended, flushed uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendSeq, w.flushedSeq
}

// close flushes and closes the active segment. The WAL files stay on disk —
// they are the replay source for the next open.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active == nil {
		return w.err
	}
	ferr := w.w.Flush()
	if w.syncOnFlush && ferr == nil {
		ferr = w.active.Sync()
	}
	cerr := w.active.Close()
	if w.err != nil {
		return w.err
	}
	if ferr != nil {
		return fmt.Errorf("ingest: wal close: %w", ferr)
	}
	if cerr != nil {
		return fmt.Errorf("ingest: wal close: %w", cerr)
	}
	return nil
}

// crashClose closes the active segment WITHOUT flushing the write buffer —
// the crash-test hook that models a process death: buffered records are
// lost exactly as a kill -9 would lose them, flushed records survive.
func (w *wal) crashClose() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if w.active != nil {
		_ = w.active.Close()
	}
}
