package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/version"
)

// ErrClosed is returned by every Buffer and WAL operation after Close.
var ErrClosed = errors.New("ingest: buffer closed")

// Options configures a Buffer. Dir and New are required; everything else
// has a workable zero value.
type Options struct {
	// Dir is the WAL directory. It is created if absent and must not be
	// shared between live buffers.
	Dir string
	// Branch is the repo branch merges commit to; "ingest" when empty. A
	// branch must have at most one live Buffer feeding it.
	Branch string
	// SegmentBytes rolls the active WAL segment past this size
	// (default 4 MiB).
	SegmentBytes int64
	// SyncOnFlush adds an fsync to every WAL flush, extending durability
	// from process crashes to OS crashes — same trade as
	// store.DiskOptions.SyncOnFlush, default off.
	SyncOnFlush bool
	// MaxEntries trips an automatic merge once the memtable holds this
	// many distinct keys (default 4096). Only consulted when AutoMerge is
	// set.
	MaxEntries int
	// MaxAge trips an automatic merge once the oldest unmerged write is
	// older than this. Zero disables the age trigger. Only consulted when
	// AutoMerge is set.
	MaxAge time.Duration
	// AutoMerge makes the writer that trips a threshold run the merge
	// inline; otherwise merges happen only through explicit Merge calls.
	AutoMerge bool
	// New builds the first index version when the branch does not exist
	// yet. The store handed in is the repo's store. Required.
	New func(s store.Store) (core.Index, error)
	// CrashHook, when set, is called with a crash-point name (see
	// CrashPoints) immediately before the step it names — the fault
	// injection seam the crash matrix drives through faultstore.Hook.
	CrashHook func(point string)
	// WriteErr, when set, is consulted before every WAL file write
	// ("append", "flush", "rotate"); a non-nil return rejects that
	// operation with a typed retryable error and no state change — the
	// resource-exhaustion seam, wired to faultstore.WriteErr in the
	// degrade matrix. A rejected append never dirties the memtable, so a
	// degraded buffer keeps serving reads of everything it already held
	// and resumes writes after a heal with no replay anomalies. Never set
	// in production.
	WriteErr func(op string) error
}

// memEntry is one memtable record: the latest buffered write for a key.
type memEntry struct {
	value     []byte
	seq       uint64
	tombstone bool
}

// baseView is the refcounted checked-out base version a Buffer reads
// through. The pin keeps the version's pages safe from concurrent GC;
// readers that scan outside the buffer lock take a reference so a merge
// swapping in a newer base cannot release the pin under them.
type baseView struct {
	idx  core.Index
	pin  *version.Pin
	refs atomic.Int32
}

func newBaseView(idx core.Index, pin *version.Pin) *baseView {
	v := &baseView{idx: idx, pin: pin}
	v.refs.Store(1) // the buffer's own reference
	return v
}

func (v *baseView) acquire() { v.refs.Add(1) }

func (v *baseView) release() {
	if v.refs.Add(-1) == 0 {
		v.pin.Release()
	}
}

// BufferStats is a point-in-time snapshot of a Buffer's state, for
// benchmarks and the siribench ingest verb.
type BufferStats struct {
	// MemEntries is the number of distinct keys buffered in the memtable
	// (tombstones included).
	MemEntries int
	// Tombstones is how many of those are pending deletes.
	Tombstones int
	// AppendedSeq is the last WAL sequence number assigned.
	AppendedSeq uint64
	// DurableSeq is the last WAL sequence number known flushed to the OS.
	DurableSeq uint64
	// MergedSeq is the high-water mark: every write at or below it is in
	// the branch head.
	MergedSeq uint64
	// Merges counts completed merge commits this Buffer has made.
	Merges int64
	// WALSegments is the number of live WAL segment files.
	WALSegments int
}

// Buffer is the write-optimized ingest front-end: a WAL-backed memtable in
// front of a version.Repo. Put and Delete append to the WAL and land in the
// memtable; Get and Range serve read-your-writes through a layered view of
// the memtable over the branch head; Merge folds the memtable into the
// index through the repo's staged batch path and commits, recording the WAL
// high-water mark in the commit metadata so crash replay is idempotent. See
// the package documentation for the durability contract.
//
// All methods are safe for concurrent use. One Buffer per branch: two live
// buffers feeding the same branch would each believe their own memtable is
// the only overlay.
type Buffer struct {
	repo   *version.Repo
	branch string
	opts   Options
	wal    *wal
	crash  func(point string)

	mu      sync.RWMutex
	table   map[string]memEntry
	overlay []core.OverlayEntry // sorted snapshot cache; nil = dirty
	base    *baseView           // nil until the branch has a head
	hwm     uint64              // merged high-water mark
	oldest  time.Time           // arrival of the oldest unmerged write
	closed  bool

	mergeMu sync.Mutex // serializes merges
	merges  atomic.Int64

	// Replay reports what opening the WAL found; informational.
	Replay ReplayReport
}

// Open opens (or creates) a WAL-backed ingest buffer over repo. If the WAL
// directory holds records from a previous run, they are replayed into the
// memtable — skipping everything at or below the high-water mark recorded
// in the branch head's commit metadata, so writes merged before a crash are
// not applied twice. The index class loader for the branch must already be
// registered on repo.
func Open(repo *version.Repo, opts Options) (*Buffer, error) {
	if opts.Dir == "" {
		return nil, errors.New("ingest: Options.Dir is required")
	}
	if opts.New == nil {
		return nil, errors.New("ingest: Options.New is required")
	}
	if opts.Branch == "" {
		opts.Branch = "ingest"
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	crash := opts.CrashHook
	if crash == nil {
		crash = func(string) {}
	}

	bu := &Buffer{
		repo:   repo,
		branch: opts.Branch,
		opts:   opts,
		crash:  crash,
		table:  make(map[string]memEntry),
	}

	// The high-water mark lives in the branch head's commit metadata; a
	// missing branch or a head without metadata means nothing was ever
	// merged (hwm 0).
	if head, ok := repo.Head(opts.Branch); ok {
		bu.hwm = decodeHWM(head.Meta)
		idx, pin, err := repo.CheckoutBranchPinned(opts.Branch)
		if err != nil {
			return nil, fmt.Errorf("ingest: checkout %q: %w", opts.Branch, err)
		}
		bu.base = newBaseView(idx, pin)
	}

	w, records, report, err := openWAL(opts.Dir, opts.SegmentBytes, opts.SyncOnFlush, crash, opts.WriteErr)
	if err != nil {
		if bu.base != nil {
			bu.base.release()
		}
		return nil, err
	}
	bu.wal = w
	bu.Replay = report

	// Replay in sequence order: last write per key wins, exactly as the
	// original appends applied. Records at or below the high-water mark
	// are already in the branch head — applying them again would resurrect
	// ghosts (e.g. a merged put shadowing a later merged delete).
	for _, rec := range records {
		if rec.seq <= bu.hwm {
			continue
		}
		bu.applyLocked(rec.key, rec.value, rec.tombstone, rec.seq)
		bu.Replay.Replayed++
	}
	if w.appendSeq < bu.hwm {
		// The WAL was pruned past its own tail (all segments merged and
		// removed); sequence numbering resumes above the high-water mark.
		w.appendSeq = bu.hwm
	}
	return bu, nil
}

// decodeHWM extracts the WAL high-water mark from commit metadata (a
// uvarint); absent or undecodable metadata means zero.
func decodeHWM(meta []byte) uint64 {
	if len(meta) == 0 {
		return 0
	}
	v, n := binary.Uvarint(meta)
	if n <= 0 {
		return 0
	}
	return v
}

// encodeHWM renders the high-water mark as commit metadata.
func encodeHWM(hwm uint64) []byte {
	return binary.AppendUvarint(nil, hwm)
}

// applyLocked inserts one record into the memtable. Caller holds mu
// exclusively (or is the constructor).
func (bu *Buffer) applyLocked(key, value []byte, tombstone bool, seq uint64) {
	k := string(key)
	e := memEntry{seq: seq, tombstone: tombstone}
	if !tombstone {
		e.value = append([]byte(nil), value...)
	}
	if len(bu.table) == 0 {
		bu.oldest = time.Now()
	}
	bu.table[k] = e
	bu.overlay = nil // snapshot cache is stale
}

// Put buffers a write of value under key. The write is appended to the WAL
// and visible to Get/Range immediately; it survives a process crash only
// after a Flush (or merge) covers it. With AutoMerge set, the Put that
// trips a threshold runs the merge before returning and surfaces its error.
func (bu *Buffer) Put(key, value []byte) error {
	return bu.write(key, value, false)
}

// Delete buffers a delete of key: a tombstone that masks the key in every
// read until the merge folds the delete into the index. Deleting an absent
// key is not an error (the tombstone simply merges into a no-op).
func (bu *Buffer) Delete(key []byte) error {
	return bu.write(key, nil, true)
}

func (bu *Buffer) write(key, value []byte, tombstone bool) error {
	if len(key) == 0 {
		return core.ErrEmptyKey
	}
	bu.mu.Lock()
	if bu.closed {
		bu.mu.Unlock()
		return ErrClosed
	}
	seq, err := bu.wal.append(key, value, tombstone)
	if err != nil {
		bu.mu.Unlock()
		return err
	}
	bu.applyLocked(key, value, tombstone, seq)
	due := bu.opts.AutoMerge && bu.dueLocked()
	bu.mu.Unlock()

	if due {
		if _, _, err := bu.mergeIfDue(); err != nil {
			return fmt.Errorf("ingest: auto-merge: %w", err)
		}
	}
	return nil
}

// dueLocked reports whether a threshold has tripped. Caller holds mu.
func (bu *Buffer) dueLocked() bool {
	if len(bu.table) == 0 {
		return false
	}
	if len(bu.table) >= bu.opts.MaxEntries {
		return true
	}
	return bu.opts.MaxAge > 0 && time.Since(bu.oldest) >= bu.opts.MaxAge
}

// Get returns the value visible under key through the layered view: the
// memtable's buffered write if one exists (a tombstone reads as absent),
// otherwise the branch head's value.
func (bu *Buffer) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, core.ErrEmptyKey
	}
	bu.mu.RLock()
	if bu.closed {
		bu.mu.RUnlock()
		return nil, false, ErrClosed
	}
	if e, ok := bu.table[string(key)]; ok {
		bu.mu.RUnlock()
		if e.tombstone {
			return nil, false, nil
		}
		return e.value, true, nil
	}
	view := bu.base
	if view != nil {
		view.acquire()
	}
	bu.mu.RUnlock()
	if view == nil {
		return nil, false, nil
	}
	defer view.release()
	return view.idx.Get(key)
}

// Range visits every visible entry with lo ≤ key < hi in ascending key
// order (the core.Ranger contract), merge-iterating the memtable snapshot
// over the branch head. Returning false from fn stops the scan. The scan
// reads a consistent snapshot: writes and merges that land after the call
// starts are not observed.
func (bu *Buffer) Range(lo, hi []byte, fn func(key, value []byte) bool) error {
	overlay, view, err := bu.snapshot()
	if err != nil {
		return err
	}
	if view != nil {
		defer view.release()
	}
	var base core.Index
	if view != nil {
		base = view.idx
	}
	return core.NewReadOverlay(base, overlay).Range(lo, hi, fn)
}

// Iterate visits every visible entry in ascending key order — an unbounded
// Range.
func (bu *Buffer) Iterate(fn func(key, value []byte) bool) error {
	return bu.Range(nil, nil, fn)
}

// Count returns the number of visible entries through the layered view.
func (bu *Buffer) Count() (int, error) {
	n := 0
	err := bu.Range(nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// snapshot captures the sorted overlay entries plus an acquired base view.
// The caller must release the view (when non-nil) after its scan.
func (bu *Buffer) snapshot() ([]core.OverlayEntry, *baseView, error) {
	bu.mu.Lock()
	defer bu.mu.Unlock()
	if bu.closed {
		return nil, nil, ErrClosed
	}
	if bu.overlay == nil {
		bu.overlay = buildOverlay(bu.table)
	}
	view := bu.base
	if view != nil {
		view.acquire()
	}
	return bu.overlay, view, nil
}

// buildOverlay renders the memtable as a sorted overlay-entry slice. The
// slice and its byte fields are never mutated after building (writers
// replace, not update), so snapshot holders can read it without locks.
func buildOverlay(table map[string]memEntry) []core.OverlayEntry {
	entries := make([]core.OverlayEntry, 0, len(table))
	for k, e := range table {
		entries = append(entries, core.OverlayEntry{Key: []byte(k), Value: e.value, Tombstone: e.tombstone})
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].Key, entries[j].Key) < 0 })
	return entries
}

// Flush group-commits the WAL: every write buffered before the call is
// pushed to the OS and survives a process crash from here on. Concurrent
// flushes coalesce into one physical write.
func (bu *Buffer) Flush() error {
	return bu.wal.flush()
}

// Merge folds the memtable into the branch head index through the staged
// batch path and commits the result, with the WAL high-water mark in the
// commit metadata. After the commit the merged entries leave the memtable,
// reads retarget the new head, and WAL segments fully below the mark are
// pruned. Returns the merge commit; merged is false when the memtable was
// empty and there was nothing to do.
//
// Merges serialize among themselves but run concurrently with writers and
// readers: writes that land after the merge's snapshot stay buffered for
// the next one.
func (bu *Buffer) Merge() (c version.Commit, merged bool, err error) {
	bu.mergeMu.Lock()
	defer bu.mergeMu.Unlock()
	return bu.mergeLocked()
}

// mergeIfDue is the auto-merge entry: it re-checks the thresholds under the
// merge lock so racing writers that all tripped the same threshold run one
// merge, not one each.
func (bu *Buffer) mergeIfDue() (version.Commit, bool, error) {
	bu.mergeMu.Lock()
	defer bu.mergeMu.Unlock()
	bu.mu.RLock()
	due := bu.dueLocked()
	bu.mu.RUnlock()
	if !due {
		return version.Commit{}, false, nil
	}
	return bu.mergeLocked()
}

// mergeLocked does the merge. Caller holds mergeMu.
func (bu *Buffer) mergeLocked() (version.Commit, bool, error) {
	// Snapshot the memtable and the sequence boundary. Writes appended
	// after this point carry higher seqs and survive the post-commit
	// pruning untouched.
	bu.mu.RLock()
	if bu.closed {
		bu.mu.RUnlock()
		return version.Commit{}, false, ErrClosed
	}
	boundary := uint64(0)
	puts := make([]core.Entry, 0, len(bu.table))
	var dels [][]byte
	for k, e := range bu.table {
		if e.seq > boundary {
			boundary = e.seq
		}
		if e.tombstone {
			dels = append(dels, []byte(k))
		} else {
			puts = append(puts, core.Entry{Key: []byte(k), Value: e.value})
		}
	}
	bu.mu.RUnlock()
	if len(puts) == 0 && len(dels) == 0 {
		return version.Commit{}, false, nil
	}
	// Deterministic order keeps CommitRetry's restarted mutate runs
	// byte-identical, and PutBatch's staged path wants sorted input anyway.
	puts = core.SortEntries(puts)
	sort.Slice(dels, func(i, j int) bool { return bytes.Compare(dels[i], dels[j]) < 0 })

	bu.crash(CrashMergeCommit)
	msg := fmt.Sprintf("ingest merge: %d puts, %d deletes", len(puts), len(dels))
	c, err := version.CommitRetryMeta(bu.repo, bu.branch, msg, encodeHWM(boundary),
		func(idx core.Index) (core.Index, error) {
			if idx == nil {
				var err error
				if idx, err = bu.opts.New(bu.repo.Store()); err != nil {
					return nil, err
				}
			}
			if len(puts) > 0 {
				var err error
				if idx, err = idx.PutBatch(puts); err != nil {
					return nil, err
				}
			}
			// Deleting an absent key returns the index unchanged, so a
			// tombstone for a key the branch never held merges as a no-op.
			for _, k := range dels {
				next, err := idx.Delete(k)
				if err != nil {
					return nil, err
				}
				idx = next
			}
			return idx, nil
		})
	if err != nil {
		return version.Commit{}, false, fmt.Errorf("ingest: merge commit: %w", err)
	}
	bu.crash(CrashMergePrune)

	// Retarget reads at the new head and drop merged memtable entries.
	// Writes with seq > boundary arrived mid-merge and stay buffered.
	idx, pin, err := bu.repo.CheckoutBranchPinned(bu.branch)
	if err != nil {
		return version.Commit{}, false, fmt.Errorf("ingest: re-pin after merge: %w", err)
	}
	bu.mu.Lock()
	old := bu.base
	bu.base = newBaseView(idx, pin)
	bu.hwm = boundary
	for k, e := range bu.table {
		if e.seq <= boundary {
			delete(bu.table, k)
		}
	}
	bu.overlay = nil
	if len(bu.table) > 0 {
		bu.oldest = time.Now()
	}
	bu.mu.Unlock()
	if old != nil {
		old.release()
	}
	bu.merges.Add(1)

	// Retire WAL segments the commit covers. Failures here are not data
	// loss — replay skips everything at or below the recorded mark — so
	// they surface as errors without undoing the merge.
	if err := bu.wal.rotate(); err != nil {
		return c, true, err
	}
	if err := bu.wal.prune(boundary); err != nil {
		return c, true, err
	}
	return c, true, nil
}

// Stats returns a point-in-time snapshot of the buffer's state.
func (bu *Buffer) Stats() BufferStats {
	bu.mu.RLock()
	st := BufferStats{
		MemEntries: len(bu.table),
		MergedSeq:  bu.hwm,
	}
	for _, e := range bu.table {
		if e.tombstone {
			st.Tombstones++
		}
	}
	bu.mu.RUnlock()
	st.AppendedSeq, st.DurableSeq = bu.wal.seqs()
	st.Merges = bu.merges.Load()
	st.WALSegments = bu.wal.segments()
	return st
}

// Close flushes and closes the WAL and releases the base pin. Buffered
// writes are NOT merged: they stay in the WAL, and the next Open replays
// them into a fresh memtable. Close never merges so that shutdown cost is
// bounded by a flush, not an index build.
func (bu *Buffer) Close() error {
	bu.mu.Lock()
	if bu.closed {
		bu.mu.Unlock()
		return nil
	}
	bu.closed = true
	base := bu.base
	bu.base = nil
	bu.mu.Unlock()
	if base != nil {
		base.release()
	}
	return bu.wal.close()
}

// CrashClose closes the buffer WITHOUT flushing the WAL's write buffer —
// the crash-test hook modeling a process death, the ingest sibling of
// DiskStore.CrashClose. Buffered-but-unflushed records are lost exactly as
// a kill would lose them; flushed records survive for the next Open's
// replay.
func (bu *Buffer) CrashClose() {
	bu.mu.Lock()
	if bu.closed {
		bu.mu.Unlock()
		return
	}
	bu.closed = true
	base := bu.base
	bu.base = nil
	bu.mu.Unlock()
	if base != nil {
		base.release()
	}
	bu.wal.crashClose()
}
