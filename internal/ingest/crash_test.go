package ingest_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/store/faultstore"
	"repro/internal/version"
)

// The WAL crash matrix: every ingest crash point (mid-append, mid-rotate,
// and both sides of a merge) fired against in-memory and disk-backed
// stores, then reopen, replay and verify. The invariants are the ingest
// extension of the store/version crash matrix:
//
//   - no acknowledged write is lost: every write covered by a successful
//     Flush or Merge is visible after recovery (unless a later surviving
//     write superseded it);
//   - no ghost writes: a recovered key's value is one its history actually
//     produced at or after its acknowledged point — double-applying merged
//     WAL records would fail this;
//   - the repo scrubs clean (Repo.Verify) and keeps working.

// opRecord is one write in a key's history.
type opRecord struct {
	value     []byte
	tombstone bool
}

// crashOracle tracks per-key write histories and the acknowledged position
// in each — the position from which recovery may legally serve state.
type crashOracle struct {
	ops   map[string][]opRecord
	acked map[string]int // index of first op a recovery may still surface
}

func newCrashOracle() *crashOracle {
	return &crashOracle{ops: make(map[string][]opRecord), acked: make(map[string]int)}
}

func (o *crashOracle) put(key, value []byte) {
	o.ops[string(key)] = append(o.ops[string(key)], opRecord{value: value})
}

func (o *crashOracle) del(key []byte) {
	o.ops[string(key)] = append(o.ops[string(key)], opRecord{tombstone: true})
}

// ack marks every write issued so far as acknowledged: recovery must not
// serve anything older than each key's latest write.
func (o *crashOracle) ack() {
	for k, ops := range o.ops {
		o.acked[k] = len(ops) - 1
	}
}

// check verifies the recovered buffer state against the histories — for
// every key the visible value (or absence) must match some op at or after
// the acknowledged position — and then reconciles each history to the op
// that actually survived, so un-acked writes the crash legally dropped are
// forgotten rather than resurrected by a later ack.
func (o *crashOracle) check(t *testing.T, bu *ingest.Buffer) {
	t.Helper()
	for k, ops := range o.ops {
		got, ok, err := bu.Get([]byte(k))
		if err != nil {
			t.Fatalf("recovered Get(%q): %v", k, err)
		}
		ackedPos, everAcked := o.acked[k]
		match := -1
		for i := ackedPos; i < len(ops); i++ {
			if ops[i].tombstone {
				if !ok {
					match = i
					break
				}
			} else if ok && bytes.Equal(got, ops[i].value) {
				match = i
				break
			}
		}
		if match >= 0 {
			o.ops[k] = ops[:match+1]
			o.acked[k] = match
			continue
		}
		// A key none of whose writes were ever acknowledged may also have
		// lost all of them (nothing flushed before the crash).
		if !everAcked && !ok {
			delete(o.ops, k)
			delete(o.acked, k)
			continue
		}
		t.Fatalf("recovered Get(%q) = %q/%v is not any acked-or-later state (acked pos %d of %d ops)",
			k, got, ok, ackedPos, len(ops))
	}
}

// newIngestTestRepo builds a repo with every index class loader registered
// (the conformance grid's classes).
func newIngestTestRepo(s store.Store) *version.Repo {
	r := version.NewRepo(s)
	for _, c := range classes() {
		r.RegisterLoader(c.name, c.loader)
	}
	return r
}

// newMPT builds the matrix's index class.
func newMPT(s store.Store) (core.Index, error) {
	for _, c := range classes() {
		if c.name == "MPT" {
			return c.new(s)
		}
	}
	panic("MPT class missing")
}

// ingestCrashBackend is one store configuration of the matrix. reopen
// models the process restart: disk stores crash-close and reopen from the
// directory; in-memory stores survive as the same object (a panic unwound,
// not a machine wiped).
type ingestCrashBackend struct {
	name string
	open func(t *testing.T) (s store.Store, reopen func(t *testing.T) store.Store)
}

func ingestCrashBackends() []ingestCrashBackend {
	return []ingestCrashBackend{
		{"mem", func(t *testing.T) (store.Store, func(t *testing.T) store.Store) {
			s := store.NewMemStore()
			return s, func(*testing.T) store.Store { return s }
		}},
		{"disk", func(t *testing.T) (store.Store, func(t *testing.T) store.Store) {
			dir := t.TempDir()
			d, err := store.OpenDiskStore(dir, store.DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d, func(t *testing.T) store.Store {
				d.CrashClose()
				re, err := store.OpenDiskStore(dir, store.DiskOptions{})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				t.Cleanup(func() { re.Close() })
				return re
			}
		}},
	}
}

// TestWALCrashMatrix runs the full grid: arm one ingest crash point, drive
// writes/flushes/merges until it fires, abandon the dead buffer (a crashed
// process releases no locks and flushes nothing), reopen, and check the
// acked-write and ghost-write invariants plus a clean scrub and a working
// post-recovery ingest path.
func TestWALCrashMatrix(t *testing.T) {
	for _, be := range ingestCrashBackends() {
		be := be
		for _, point := range ingest.CrashPoints() {
			point := point
			t.Run(be.name+"/"+point, func(t *testing.T) {
				base, reopenStore := be.open(t)
				fs := faultstore.Wrap(base, faultstore.Config{})
				repo := newIngestTestRepo(fs)
				dir := t.TempDir()

				bu, err := ingest.Open(repo, ingest.Options{
					Dir: dir, New: newMPT,
					SegmentBytes: 512, // tiny: rotations fire within the workload
					CrashHook:    func(p string) { fs.Hook(p) },
				})
				if err != nil {
					t.Fatal(err)
				}
				oracle := newCrashOracle()

				// Seed an acknowledged prefix before arming: writes, a
				// flush, a merge, more writes, another flush.
				for i := 0; i < 20; i++ {
					put(t, bu, oracle, i, 0)
				}
				mustFlushAck(t, bu, oracle)
				if _, _, err := bu.Merge(); err != nil {
					t.Fatal(err)
				}
				oracle.ack()
				for i := 10; i < 25; i++ {
					put(t, bu, oracle, i, 1)
				}
				del(t, bu, oracle, 3)
				mustFlushAck(t, bu, oracle)

				// Arm and run the workload until the point fires.
				fs.ArmCrash(point, 1)
				crashed := false
				for gen := 2; gen < 50 && !crashed; gen++ {
					crashed = crashStep(t, bu, oracle, gen, point)
				}
				if !crashed {
					t.Fatalf("crash point %s never fired", point)
				}
				// The dead buffer is abandoned: no Close, no Flush — its
				// locks died with the process.

				after := reopenStore(t)
				repo2 := repo
				if after != fs.Unwrap() {
					repo2 = newIngestTestRepo(after)
				}
				bu2, err := ingest.Open(repo2, ingest.Options{Dir: dir, New: newMPT})
				if err != nil {
					t.Fatalf("reopen after crash at %s: %v", point, err)
				}
				defer bu2.Close()

				oracle.check(t, bu2)
				rep, err := repo2.Verify()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Fatalf("scrub after crash at %s found damage: %v", point, rep.Faults)
				}

				// The survivor keeps ingesting: write, merge, re-check.
				put(t, bu2, oracle, 999, 9)
				if err := bu2.Flush(); err != nil {
					t.Fatal(err)
				}
				oracle.ack()
				if _, merged, err := bu2.Merge(); err != nil || !merged {
					t.Fatalf("post-crash merge = %v/%v", merged, err)
				}
				oracle.check(t, bu2)
				rep, err = repo2.Verify()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Fatalf("post-recovery scrub found damage: %v", rep.Faults)
				}
			})
		}
	}
}

// crashStep runs one workload generation, reporting whether the armed point
// fired. Writes that panic mid-call are recorded in the oracle anyway —
// they are exactly the un-acked writes recovery may or may not surface.
func crashStep(t *testing.T, bu *ingest.Buffer, oracle *crashOracle, gen int, point string) (crashed bool) {
	t.Helper()
	defer func() {
		if p, ok := faultstore.Recovered(recover()); ok {
			if p != point {
				t.Fatalf("crashed at %q, armed %q", p, point)
			}
			crashed = true
		}
	}()
	for i := 0; i < 6; i++ {
		k := gen*3 + i
		if k%7 == 3 {
			del(t, bu, oracle, k%30)
		} else {
			put(t, bu, oracle, k%30, gen)
		}
	}
	if gen%2 == 0 {
		mustFlushAck(t, bu, oracle)
	}
	if gen%4 == 3 {
		if _, _, err := bu.Merge(); err != nil {
			t.Fatalf("workload merge: %v", err)
		}
		oracle.ack()
	}
	return false
}

func put(t *testing.T, bu *ingest.Buffer, oracle *crashOracle, i, gen int) {
	t.Helper()
	key := []byte(fmt.Sprintf("key-%05d", i))
	val := []byte(fmt.Sprintf("val-%05d-gen%d", i, gen))
	oracle.put(key, val) // record first: a panic mid-Put is an un-acked write
	if err := bu.Put(key, val); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

func del(t *testing.T, bu *ingest.Buffer, oracle *crashOracle, i int) {
	t.Helper()
	key := []byte(fmt.Sprintf("key-%05d", i))
	oracle.del(key)
	if err := bu.Delete(key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
}

func mustFlushAck(t *testing.T, bu *ingest.Buffer, oracle *crashOracle) {
	t.Helper()
	if err := bu.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	oracle.ack()
}
