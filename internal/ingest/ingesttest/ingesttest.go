// Package ingesttest provides the conformance battery for the WAL-backed
// ingest front-end — the ingest-level sibling of core/indextest. Every
// index class that can sit behind an ingest.Buffer wires itself in with one
// call:
//
//	ingesttest.RunIngestTests(t, "MPT", ingesttest.Options{
//		New:    func(s store.Store) (core.Index, error) { return mpt.New(s), nil },
//		Loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) { ... },
//	})
//
// The battery pins the front-end's behavioural contract — read-your-writes
// before any merge, tombstones masking base hits, the layered Range
// honouring core.Ranger bounds and ordering across overlay and base, a
// randomized CRUD oracle with merges at arbitrary points, WAL replay across
// close/reopen with no lost or ghost writes, and the auto-merge thresholds
// — and runs all of it against every store backend (mem, sharded, disk,
// cached). Run under -race to make the backend dimension meaningful.
package ingesttest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/version"
)

// Options describes one index class to the battery.
type Options struct {
	// New builds an empty index over s; it becomes the buffer's
	// Options.New and builds the first merged version. Required.
	New func(s store.Store) (core.Index, error)
	// Loader reopens the class's versions on checkout; it is registered
	// on the test repo under the suite name. Required.
	Loader version.Loader
}

// RunIngestTests runs the ingest conformance battery for the index class
// named name against every store backend.
func RunIngestTests(t *testing.T, name string, opts Options) {
	t.Helper()
	if opts.New == nil || opts.Loader == nil {
		t.Fatal("ingesttest: Options.New and Options.Loader are required")
	}
	cases := []struct {
		name string
		fn   func(*testing.T, string, Options, storeFactory)
	}{
		{"ReadYourWrites", testReadYourWrites},
		{"TombstoneMasking", testTombstoneMasking},
		{"RangeOrdering", testRangeOrdering},
		{"OracleCRUD", testOracleCRUD},
		{"ReopenReplay", testReopenReplay},
		{"AutoMerge", testAutoMerge},
	}
	for _, be := range backends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) { tc.fn(t, name, opts, be.open) })
			}
		})
	}
}

// storeFactory opens one fresh store per (sub)test, registering any cleanup
// with t.
type storeFactory func(t *testing.T) store.Store

// backends enumerates the store backends the battery crosses the ingest
// path with — the same four indextest and storetest certify.
func backends() []struct {
	name string
	open storeFactory
} {
	return []struct {
		name string
		open storeFactory
	}{
		{"mem", func(t *testing.T) store.Store { return store.NewMemStore() }},
		{"sharded", func(t *testing.T) store.Store { return store.NewShardedStore(0) }},
		{"disk", func(t *testing.T) store.Store {
			s, err := store.Open(store.Config{Backend: store.BackendDisk, Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("open disk store: %v", err)
			}
			t.Cleanup(func() { store.Release(s) })
			return s
		}},
		{"cached", func(t *testing.T) store.Store {
			return store.NewCachedStore(store.NewMemStore(), 1<<20)
		}},
	}
}

// harness bundles one buffer with its repo and WAL directory so tests can
// reopen it.
type harness struct {
	repo *version.Repo
	dir  string
	bu   *ingest.Buffer
}

// newHarness builds a repo over a fresh store and opens a buffer with the
// class under test, registering cleanup with t.
func newHarness(t *testing.T, name string, opts Options, open storeFactory) *harness {
	t.Helper()
	repo := version.NewRepo(open(t))
	repo.RegisterLoader(name, opts.Loader)
	h := &harness{repo: repo, dir: t.TempDir()}
	h.bu = h.open(t, opts)
	t.Cleanup(func() { _ = h.bu.Close() })
	return h
}

// open opens a buffer over the harness's repo and WAL directory.
func (h *harness) open(t *testing.T, opts Options) *ingest.Buffer {
	t.Helper()
	bu, err := ingest.Open(h.repo, ingest.Options{Dir: h.dir, New: opts.New})
	if err != nil {
		t.Fatalf("ingest.Open: %v", err)
	}
	return bu
}

// reopen closes the current buffer and opens a fresh one over the same repo
// and WAL directory — the replay path.
func (h *harness) reopen(t *testing.T, opts Options) {
	t.Helper()
	if err := h.bu.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	h.bu = h.open(t, opts)
}

func k(i int) []byte      { return []byte(fmt.Sprintf("key-%05d", i)) }
func v(i, gen int) []byte { return []byte(fmt.Sprintf("val-%05d-gen%d", i, gen)) }
func ks(b []byte) string  { return string(b) }
func mustMerge(t *testing.T, bu *ingest.Buffer) {
	t.Helper()
	if _, _, err := bu.Merge(); err != nil {
		t.Fatalf("Merge: %v", err)
	}
}

// checkOracle compares the buffer's full visible state (Range plus point
// Gets) against the oracle map.
func checkOracle(t *testing.T, bu *ingest.Buffer, oracle map[string][]byte) {
	t.Helper()
	var wantKeys []string
	for key := range oracle {
		wantKeys = append(wantKeys, key)
	}
	sort.Strings(wantKeys)
	var gotKeys []string
	err := bu.Range(nil, nil, func(key, val []byte) bool {
		gotKeys = append(gotKeys, string(key))
		if want := oracle[string(key)]; !bytes.Equal(val, want) {
			t.Fatalf("Range key %q = %q, want %q", key, val, want)
		}
		return true
	})
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("Range visited %d keys, want %d\n got %v\nwant %v",
			len(gotKeys), len(wantKeys), gotKeys, wantKeys)
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("Range order diverges at %d: got %q want %q", i, gotKeys[i], wantKeys[i])
		}
	}
	for key, want := range oracle {
		got, ok, err := bu.Get([]byte(key))
		if err != nil {
			t.Fatalf("Get(%q): %v", key, err)
		}
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) = %q/%v, want %q", key, got, ok, want)
		}
	}
}

// testReadYourWrites: a buffered write is visible the moment Put returns —
// before any merge — and overwrites are visible in order, across merges.
func testReadYourWrites(t *testing.T, name string, opts Options, open storeFactory) {
	h := newHarness(t, name, opts, open)
	if err := h.bu.Put(k(1), v(1, 0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := h.bu.Get(k(1))
	if err != nil || !ok || !bytes.Equal(got, v(1, 0)) {
		t.Fatalf("pre-merge Get = %q/%v/%v, want %q", got, ok, err, v(1, 0))
	}
	// Overwrite in the memtable wins over the older buffered value.
	if err := h.bu.Put(k(1), v(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := h.bu.Get(k(1)); !bytes.Equal(got, v(1, 1)) {
		t.Fatalf("overwrite not visible: got %q", got)
	}
	mustMerge(t, h.bu)
	// Post-merge the value comes from the branch head.
	if got, ok, _ := h.bu.Get(k(1)); !ok || !bytes.Equal(got, v(1, 1)) {
		t.Fatalf("post-merge Get = %q/%v", got, ok)
	}
	// A fresh write shadows the merged value immediately.
	if err := h.bu.Put(k(1), v(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := h.bu.Get(k(1)); !bytes.Equal(got, v(1, 2)) {
		t.Fatalf("overlay does not shadow merged value: got %q", got)
	}
	if st := h.bu.Stats(); st.Merges != 1 || st.MemEntries != 1 {
		t.Fatalf("stats after merge+write: %+v", st)
	}
	// Empty keys are rejected with the core sentinel.
	if err := h.bu.Put(nil, v(0, 0)); err != core.ErrEmptyKey {
		t.Fatalf("empty-key Put err = %v, want core.ErrEmptyKey", err)
	}
}

// testTombstoneMasking: a buffered delete masks the merged value in Get and
// Range before the merge applies it, and the key stays gone after.
func testTombstoneMasking(t *testing.T, name string, opts Options, open storeFactory) {
	h := newHarness(t, name, opts, open)
	for i := 0; i < 8; i++ {
		if err := h.bu.Put(k(i), v(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	mustMerge(t, h.bu)
	if err := h.bu.Delete(k(3)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, err := h.bu.Get(k(3)); err != nil || ok {
		t.Fatalf("tombstoned key visible: ok=%v err=%v", ok, err)
	}
	n := 0
	if err := h.bu.Range(nil, nil, func(key, _ []byte) bool {
		if bytes.Equal(key, k(3)) {
			t.Fatal("tombstoned key surfaced in Range")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("Range visited %d keys, want 7", n)
	}
	mustMerge(t, h.bu)
	if _, ok, _ := h.bu.Get(k(3)); ok {
		t.Fatal("deleted key reappeared after merge")
	}
	if cnt, err := h.bu.Count(); err != nil || cnt != 7 {
		t.Fatalf("Count = %d/%v, want 7", cnt, err)
	}
	// Deleting a key the branch never held merges as a no-op.
	if err := h.bu.Delete(k(99)); err != nil {
		t.Fatal(err)
	}
	mustMerge(t, h.bu)
	if cnt, _ := h.bu.Count(); cnt != 7 {
		t.Fatalf("no-op delete changed Count to %d", cnt)
	}
}

// testRangeOrdering: the layered Range interleaves overlay and base keys in
// one ascending sequence, honours half-open bounds, and stops early.
func testRangeOrdering(t *testing.T, name string, opts Options, open storeFactory) {
	h := newHarness(t, name, opts, open)
	for i := 0; i < 20; i += 2 { // evens merge into the base
		if err := h.bu.Put(k(i), v(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	mustMerge(t, h.bu)
	for i := 1; i < 20; i += 2 { // odds stay in the memtable
		if err := h.bu.Put(k(i), v(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := h.bu.Range(k(3), k(15), func(key, _ []byte) bool {
		got = append(got, ks(key))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 3; i < 15; i++ {
		want = append(want, ks(k(i)))
	}
	if len(got) != len(want) {
		t.Fatalf("Range[3,15) = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Range[3,15) = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	if err := h.bu.Range(nil, nil, func(_, _ []byte) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
	// Empty range is a no-op.
	if err := h.bu.Range(k(9), k(9), func(_, _ []byte) bool {
		t.Fatal("empty range visited a key")
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

// testOracleCRUD drives a randomized put/delete stream against a map
// oracle, merging at random points, and checks full equality (ordered Range
// plus point Gets) after every merge and at the end.
func testOracleCRUD(t *testing.T, name string, opts Options, open storeFactory) {
	h := newHarness(t, name, opts, open)
	rng := rand.New(rand.NewSource(427))
	oracle := make(map[string][]byte)
	const keySpace = 120
	gen := 0
	for step := 0; step < 600; step++ {
		i := rng.Intn(keySpace)
		switch {
		case rng.Intn(4) == 0: // delete
			if err := h.bu.Delete(k(i)); err != nil {
				t.Fatalf("step %d Delete: %v", step, err)
			}
			delete(oracle, ks(k(i)))
		default:
			gen++
			if err := h.bu.Put(k(i), v(i, gen)); err != nil {
				t.Fatalf("step %d Put: %v", step, err)
			}
			oracle[ks(k(i))] = v(i, gen)
		}
		if rng.Intn(90) == 0 {
			mustMerge(t, h.bu)
			checkOracle(t, h.bu, oracle)
		}
	}
	checkOracle(t, h.bu, oracle) // pre-final-merge: overlay + base mix
	mustMerge(t, h.bu)
	checkOracle(t, h.bu, oracle)
	if st := h.bu.Stats(); st.MemEntries != 0 {
		t.Fatalf("memtable not drained after final merge: %+v", st)
	}
}

// testReopenReplay: closing without merging keeps unmerged writes in the
// WAL; reopening replays them — and only them — into the memtable. The
// reopen-mid-ingest shape (merge commits behind, live writes in front) must
// round-trip with no lost writes and no ghosts.
func testReopenReplay(t *testing.T, name string, opts Options, open storeFactory) {
	h := newHarness(t, name, opts, open)
	oracle := make(map[string][]byte)
	for i := 0; i < 30; i++ {
		if err := h.bu.Put(k(i), v(i, 0)); err != nil {
			t.Fatal(err)
		}
		oracle[ks(k(i))] = v(i, 0)
	}
	mustMerge(t, h.bu)
	// Post-merge writes: an overwrite, a delete of a merged key, a new key.
	if err := h.bu.Put(k(5), v(5, 1)); err != nil {
		t.Fatal(err)
	}
	oracle[ks(k(5))] = v(5, 1)
	if err := h.bu.Delete(k(7)); err != nil {
		t.Fatal(err)
	}
	delete(oracle, ks(k(7)))
	if err := h.bu.Put(k(100), v(100, 0)); err != nil {
		t.Fatal(err)
	}
	oracle[ks(k(100))] = v(100, 0)

	h.reopen(t, opts) // Close flushes; reopen replays
	if st := h.bu.Stats(); st.MemEntries != 3 {
		t.Fatalf("replay rebuilt %d memtable entries, want 3 (stats %+v, replay %+v)",
			st.MemEntries, st, h.bu.Replay)
	}
	checkOracle(t, h.bu, oracle)

	// Merge, reopen again: nothing to replay, nothing resurrected.
	mustMerge(t, h.bu)
	h.reopen(t, opts)
	if st := h.bu.Stats(); st.MemEntries != 0 {
		t.Fatalf("ghost writes after post-merge reopen: %+v", st)
	}
	if h.bu.Replay.Replayed != 0 {
		t.Fatalf("post-merge reopen replayed %d records, want 0", h.bu.Replay.Replayed)
	}
	checkOracle(t, h.bu, oracle)
	// The tombstoned key must stay dead through every reopen — the ghost
	// a non-idempotent replay would resurrect.
	if _, ok, _ := h.bu.Get(k(7)); ok {
		t.Fatal("tombstoned key resurrected by replay")
	}
}

// testAutoMerge: with AutoMerge set, crossing MaxEntries runs a merge
// inline and the buffer keeps serving the same contents.
func testAutoMerge(t *testing.T, name string, opts Options, open storeFactory) {
	repo := version.NewRepo(open(t))
	repo.RegisterLoader(name, opts.Loader)
	bu, err := ingest.Open(repo, ingest.Options{
		Dir: t.TempDir(), New: opts.New,
		AutoMerge: true, MaxEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bu.Close()
	oracle := make(map[string][]byte)
	for i := 0; i < 100; i++ {
		if err := bu.Put(k(i), v(i, 0)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		oracle[ks(k(i))] = v(i, 0)
	}
	st := bu.Stats()
	if st.Merges == 0 {
		t.Fatalf("no auto-merge tripped over 100 writes at MaxEntries=16: %+v", st)
	}
	if st.MemEntries >= 100 {
		t.Fatalf("memtable never drained: %+v", st)
	}
	checkOracle(t, bu, oracle)
}
