package ingest_test

import (
	"fmt"
	"testing"

	"repro/internal/ingest"
	"repro/internal/store"
)

// BenchmarkIngestSustained measures sustained point-write throughput
// through the WAL-backed memtable with auto-merges folding batches into the
// MPT as thresholds trip — the number the ingest experiment compares
// against direct per-batch commits, tracked by the CI benchstat smoke.
func BenchmarkIngestSustained(b *testing.B) {
	s := store.NewMemStore()
	repo := newIngestTestRepo(s)
	bu, err := ingest.Open(repo, ingest.Options{
		Dir: b.TempDir(), New: newMPT,
		AutoMerge:  true,
		MaxEntries: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer bu.Close()

	keys := make([][]byte, 1<<14)
	vals := make([][]byte, len(keys))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
		vals[i] = []byte(fmt.Sprintf("val-%08d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bu.Put(keys[i%len(keys)], vals[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, _, err := bu.Merge(); err != nil {
		b.Fatal(err)
	}
}
