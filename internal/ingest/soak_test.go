package ingest_test

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ingest"
	"repro/internal/store"
)

// TestIngestSoak hammers one buffer with concurrent writers (disjoint
// keyspaces), racing explicit merges, continuous layered reads, and a GC
// pass mid-flight, then checks the final merged state byte-for-byte against
// the deterministic expected map and scrubs the repo. Run under -race: the
// point of the soak is the locking around the memtable, the WAL group
// commit, and the pinned base swap.
func TestIngestSoak(t *testing.T) {
	const (
		writers   = 4
		perWriter = 400
	)
	s := store.NewShardedStore(0)
	repo := newIngestTestRepo(s)
	bu, err := ingest.Open(repo, ingest.Options{
		Dir: t.TempDir(), New: newMPT,
		AutoMerge:  true,
		MaxEntries: 128, // small: many merges race the writers
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bu.Close()

	// Seed the branch with one merged write so the mid-soak GC always has
	// a head to retain; writer 0 re-puts the same value later.
	if err := bu.Put([]byte("w0-key-00000"), soakVal(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, merged, err := bu.Merge(); err != nil || !merged {
		t.Fatalf("seed merge = %v/%v", merged, err)
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, writers+2)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("w%d-key-%05d", w, i))
				if err := bu.Put(key, soakVal(w, i, 0)); err != nil {
					errc <- fmt.Errorf("writer %d put %d: %w", w, i, err)
					return
				}
				switch {
				case i%11 == 10: // delete an earlier key for good
					dead := []byte(fmt.Sprintf("w%d-key-%05d", w, i-5))
					if err := bu.Delete(dead); err != nil {
						errc <- fmt.Errorf("writer %d delete: %w", w, err)
						return
					}
				case i%7 == 6: // overwrite an earlier key
					prev := []byte(fmt.Sprintf("w%d-key-%05d", w, i-3))
					if err := bu.Put(prev, soakVal(w, i-3, 1)); err != nil {
						errc <- fmt.Errorf("writer %d overwrite: %w", w, err)
						return
					}
				}
				if i%50 == 49 {
					if err := bu.Flush(); err != nil {
						errc <- fmt.Errorf("writer %d flush: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// A merger racing the auto-merges, and a reader scanning the layered
	// view while both run. They spin until the writers finish.
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		for !stop.Load() {
			if _, _, err := bu.Merge(); err != nil {
				errc <- fmt.Errorf("racing merge: %w", err)
				return
			}
		}
	}()
	go func() {
		defer aux.Done()
		for !stop.Load() {
			if _, _, err := bu.Get([]byte("w0-key-00000")); err != nil {
				errc <- fmt.Errorf("racing get: %w", err)
				return
			}
			n := 0
			if err := bu.Range(nil, nil, func(k, v []byte) bool {
				n++
				return n < 200
			}); err != nil {
				errc <- fmt.Errorf("racing range: %w", err)
				return
			}
		}
	}()

	// One GC pass mid-soak: the buffer's pinned base and the merge commits
	// must survive a sweep that races live ingest.
	gcDone := make(chan struct{})
	go func() {
		defer close(gcDone)
		if _, err := repo.GCRetainRecent(2); err != nil {
			errc <- fmt.Errorf("mid-soak GC: %w", err)
		}
	}()

	wg.Wait()
	stop.Store(true)
	aux.Wait()
	<-gcDone
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := bu.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bu.Merge(); err != nil {
		t.Fatal(err)
	}

	// Deterministic expected state per writer keyspace.
	want := make(map[string][]byte)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			want[fmt.Sprintf("w%d-key-%05d", w, i)] = soakVal(w, i, 0)
		}
		for i := 0; i < perWriter; i++ {
			if i%7 == 6 && i%11 != 10 { // the switch's delete case shadows the overwrite
				want[fmt.Sprintf("w%d-key-%05d", w, i-3)] = soakVal(w, i-3, 1)
			}
		}
		for i := 0; i < perWriter; i++ {
			if i%11 == 10 {
				delete(want, fmt.Sprintf("w%d-key-%05d", w, i-5))
			}
		}
	}
	got := 0
	if err := bu.Range(nil, nil, func(k, v []byte) bool {
		wantV, ok := want[string(k)]
		if !ok {
			t.Fatalf("unexpected key %q survived the soak", k)
		}
		if !bytes.Equal(v, wantV) {
			t.Fatalf("key %q = %q, want %q", k, v, wantV)
		}
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("final state has %d keys, want %d", got, len(want))
	}

	rep, err := repo.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-soak scrub found damage: %v", rep.Faults)
	}
	st := bu.Stats()
	if st.MemEntries != 0 || st.Merges == 0 {
		t.Fatalf("post-soak stats: %+v", st)
	}
}

// soakVal is the deterministic value for writer w's key i at generation g.
// Overwrites use g=1 so the expected-state replay below can reproduce the
// exact bytes without tracking interleavings: within one writer the
// overwrite of key i-3 always happens after the original put of key i-3,
// and writers never share keys.
func soakVal(w, i, g int) []byte {
	return []byte(fmt.Sprintf("val-w%d-%05d-g%d", w, i, g))
}
