package version

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// VerifyFault describes one damaged node the scrub found: an address the
// reachable graph references whose record is either gone from the store or
// present with bytes that no longer hash to it.
type VerifyFault struct {
	// Node is the content address of the damaged record.
	Node hash.Hash
	// Corrupt is true when the record exists but its payload fails the
	// re-hash; false means the record is missing entirely.
	Corrupt bool
	// Commits lists, sorted, the reachable commits the damage strands: for
	// a damaged index page, every walked commit whose version contains the
	// page; for a damaged commit blob, that commit itself (and everything
	// below it is unreachable, so nothing deeper is reported through it).
	Commits []hash.Hash
}

// String renders the fault for logs.
func (f VerifyFault) String() string {
	kind := "missing"
	if f.Corrupt {
		kind = "corrupt"
	}
	return fmt.Sprintf("%s %x (strands %d commits)", kind, f.Node[:6], len(f.Commits))
}

// VerifyReport is the result of one Repo.Verify scrub.
type VerifyReport struct {
	// Commits is how many distinct commits the walk reached from the
	// branch heads (including ones whose blobs turned out damaged).
	Commits int
	// Nodes and Bytes measure the distinct intact records re-hashed:
	// commit blobs plus every index page of every walked version.
	Nodes int
	Bytes int64
	// Faults lists every damaged node, sorted by address. Empty means the
	// entire reachable graph re-hashed clean.
	Faults []VerifyFault
}

// OK reports whether the scrub found the reachable graph fully intact.
func (v VerifyReport) OK() bool { return len(v.Faults) == 0 }

// String renders the report in one line for logs.
func (v VerifyReport) String() string {
	return fmt.Sprintf("verified %d commits, %d nodes, %d B, %d faults",
		v.Commits, v.Nodes, v.Bytes, len(v.Faults))
}

// Verify scrubs the repo end to end: it walks the commit graph from every
// branch head and each reachable version's page tree, re-reads every node
// from the store, and re-hashes its payload against its content address —
// the full-repo version of the tamper-evidence check the content addresses
// exist for. Damage is reported per node with the commits it strands; the
// walk continues past damage so one torn record yields a complete map of
// what it takes down, not just the first error.
//
// The walk stops at the shallow boundary earlier GC passes left: a parent
// neither the commit log nor the store knows was pruned, not lost, and is
// skipped the same way resume skips it on open.
//
// Verify runs while commits and checkouts proceed, but excludes concurrent
// GC passes (a sweep mid-scrub would report dying nodes as damage). The
// returned error covers configuration problems only — a class with no
// registered Loader, an index that exposes no node refs; damage is never
// an error, it is what the report is for.
func (r *Repo) Verify() (VerifyReport, error) {
	// A GC pass mid-scrub would sweep nodes the walk is about to read.
	r.gcMu.Lock()
	defer r.gcMu.Unlock()

	r.mu.RLock()
	heads := make(map[string]hash.Hash, len(r.branches))
	for name, id := range r.branches {
		heads[name] = id
	}
	loaders := make(map[string]Loader, len(r.loaders))
	for class, l := range r.loaders {
		loaders[class] = l
	}
	known := make(map[hash.Hash]bool, len(r.commits))
	for id := range r.commits {
		known[id] = true
	}
	r.mu.RUnlock()

	v := &verifier{
		s:       r.s,
		known:   known,
		loaders: loaders,
		trees:   make(map[string]map[hash.Hash][]hash.Hash),
		faults:  make(map[hash.Hash]*VerifyFault),
		sized:   make(map[hash.Hash]bool),
		walked:  make(map[hash.Hash]bool),
	}
	// Deterministic walk order: branch names sorted.
	names := make([]string, 0, len(heads))
	for name := range heads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := v.walkCommits(heads[name]); err != nil {
			return VerifyReport{}, err
		}
	}
	return v.report(), nil
}

// verifier carries one scrub's state. Node checks are memoized per index
// class: trees[class][node] is the list of damaged addresses in the node's
// subtree (nil for a clean subtree), so shared pages are read and re-hashed
// once no matter how many versions contain them, while damage attribution
// still reaches every stranded commit.
type verifier struct {
	s       store.Store
	known   map[hash.Hash]bool // commit log snapshot: IDs the repo believes exist
	loaders map[string]Loader
	trees   map[string]map[hash.Hash][]hash.Hash
	faults  map[hash.Hash]*VerifyFault
	sized   map[hash.Hash]bool // distinct intact nodes already counted
	walked  map[hash.Hash]bool // commit IDs already processed
	commits int
	nodes   int
	bytes   int64
}

// checkNode re-reads and re-hashes one record, recording a fault on
// damage. It returns the payload and whether it is intact.
func (v *verifier) checkNode(h hash.Hash) ([]byte, bool) {
	data, ok := v.s.Get(h)
	if !ok {
		v.fault(h, false)
		return nil, false
	}
	if hash.Of(data) != h {
		v.fault(h, true)
		return nil, false
	}
	if !v.sized[h] {
		v.sized[h] = true
		v.nodes++
		v.bytes += int64(len(data))
	}
	return data, true
}

// fault records (or re-finds) the fault entry for one damaged address.
func (v *verifier) fault(h hash.Hash, corrupt bool) *VerifyFault {
	f, ok := v.faults[h]
	if !ok {
		f = &VerifyFault{Node: h, Corrupt: corrupt}
		v.faults[h] = f
	}
	return f
}

// strand attributes a damaged address to one stranded commit.
func (v *verifier) strand(node, commit hash.Hash) {
	f := v.faults[node]
	for _, id := range f.Commits {
		if id == commit {
			return
		}
	}
	f.Commits = append(f.Commits, commit)
}

// walkCommits processes the commit DAG from one head, breadth-first over
// parents, verifying each commit blob and its version's page tree.
func (v *verifier) walkCommits(head hash.Hash) error {
	queue := []hash.Hash{head}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if v.walked[id] {
			continue
		}
		v.walked[id] = true
		// A parent the commit log does not know and the store does not hold
		// is the shallow boundary a GC pass pruned — the same boundary
		// resumeBranch skips on open — not damage. A parent the log DOES
		// know must be present: that is a lost record.
		if !v.known[id] && !v.s.Has(id) {
			continue
		}
		v.commits++
		data, ok := v.checkNode(id)
		if !ok {
			// The blob itself is the damage; parents are unknowable.
			v.strand(id, id)
			continue
		}
		c, err := decodeCommit(data)
		if err != nil {
			// Bytes hash to the address but do not parse as a commit: the
			// head record points at a non-commit node. Report it as corrupt
			// rather than failing the scrub.
			v.fault(id, true)
			v.strand(id, id)
			continue
		}
		c.ID = id
		if err := v.walkVersion(c); err != nil {
			return err
		}
		queue = append(queue, c.Parents...)
	}
	return nil
}

// walkVersion re-hashes every page of one commit's version tree — the
// primary root plus every extra root its Meta trailer references — and
// attributes any damage found to the commit.
func (v *verifier) walkVersion(c Commit) error {
	if err := v.walkTree(c, c.Class, c.Root, c.Height); err != nil {
		return err
	}
	for _, ref := range MetaRoots(c) {
		if err := v.walkTree(c, ref.Class, ref.Root, ref.Height); err != nil {
			return err
		}
	}
	return nil
}

// walkTree scrubs one of a commit's trees, stranding damage to the
// commit.
func (v *verifier) walkTree(c Commit, class string, root hash.Hash, height int) error {
	if root.IsNull() {
		return nil
	}
	l, ok := v.loaders[class]
	if !ok {
		return fmt.Errorf("version: verify %s: %w: %q", c, ErrNoLoader, class)
	}
	idx, err := l(v.s, root, height)
	if err != nil {
		// Loaders read lazily in every built-in class, so a load error is a
		// configuration problem, not damage (damage surfaces node by node
		// below). Surface it.
		return fmt.Errorf("version: verify %s: %w", c, err)
	}
	w, ok := idx.(core.NodeWalker)
	if !ok {
		return fmt.Errorf("version: verify %s: %s does not expose node refs", c, class)
	}
	memo, ok := v.trees[class]
	if !ok {
		memo = make(map[hash.Hash][]hash.Hash)
		v.trees[class] = memo
	}
	for _, node := range v.checkTree(w, memo, root) {
		v.strand(node, c.ID)
	}
	return nil
}

// checkTree returns the damaged addresses in the subtree rooted at h,
// memoized so shared subtrees are scrubbed once.
func (v *verifier) checkTree(w core.NodeWalker, memo map[hash.Hash][]hash.Hash, h hash.Hash) []hash.Hash {
	if h.IsNull() {
		return nil
	}
	if damaged, ok := memo[h]; ok {
		return damaged
	}
	// Mark before recursing so a (structurally impossible, but cheap to
	// tolerate) ref cycle terminates.
	memo[h] = nil
	data, ok := v.checkNode(h)
	if !ok {
		memo[h] = []hash.Hash{h}
		return memo[h]
	}
	refs, err := w.Refs(data)
	if err != nil {
		// The payload hashes to its address but the class cannot decode it
		// — the reference is wrong about what it points at. Count the node
		// as corrupt for this tree.
		v.fault(h, true)
		memo[h] = []hash.Hash{h}
		return memo[h]
	}
	var damaged []hash.Hash
	for _, ref := range refs {
		damaged = append(damaged, v.checkTree(w, memo, ref)...)
	}
	if len(damaged) > 0 {
		// Dedup: siblings can share a damaged descendant.
		seen := make(map[hash.Hash]bool, len(damaged))
		uniq := damaged[:0]
		for _, d := range damaged {
			if !seen[d] {
				seen[d] = true
				uniq = append(uniq, d)
			}
		}
		damaged = uniq
	}
	memo[h] = damaged
	return damaged
}

// report assembles the sorted VerifyReport.
func (v *verifier) report() VerifyReport {
	rep := VerifyReport{
		Commits: v.commits,
		Nodes:   v.nodes,
		Bytes:   v.bytes,
	}
	for _, f := range v.faults {
		sort.Slice(f.Commits, func(i, j int) bool {
			return bytes.Compare(f.Commits[i][:], f.Commits[j][:]) < 0
		})
		rep.Faults = append(rep.Faults, *f)
	}
	sort.Slice(rep.Faults, func(i, j int) bool {
		return bytes.Compare(rep.Faults[i].Node[:], rep.Faults[j].Node[:]) < 0
	})
	return rep
}
