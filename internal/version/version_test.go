package version_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
	"repro/internal/version"
)

// indexClass bundles one index structure's constructor and checkout loader
// for the version tests, with small structural parameters so 50-version
// histories stay fast under -race.
type indexClass struct {
	name   string
	new    func(s store.Store) (core.Index, error)
	loader version.Loader
}

func classes() []indexClass {
	posCfg := postree.ConfigForNodeSize(512)
	prollyCfg := prolly.ConfigForNodeSize(512)
	mbtCfg := mbt.Config{Capacity: 32, Fanout: 8}
	mvCfg := mvmbt.ConfigForNodeSize(512)
	return []indexClass{
		{
			name: "MPT",
			new:  func(s store.Store) (core.Index, error) { return mpt.New(s), nil },
			loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
				return mpt.Load(s, root), nil
			},
		},
		{
			name: "MBT",
			new:  func(s store.Store) (core.Index, error) { return mbt.New(s, mbtCfg) },
			loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
				return mbt.Load(s, mbtCfg, root)
			},
		},
		{
			name: "POS-Tree",
			new:  func(s store.Store) (core.Index, error) { return postree.New(s, posCfg), nil },
			loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
				return postree.Load(s, posCfg, root, height), nil
			},
		},
		{
			name: "Prolly-Tree",
			new:  func(s store.Store) (core.Index, error) { return prolly.New(s, prollyCfg), nil },
			loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
				return prolly.Load(s, prollyCfg, root, height), nil
			},
		},
		{
			name: "MVMB+-Tree",
			new:  func(s store.Store) (core.Index, error) { return mvmbt.New(s, mvCfg), nil },
			loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
				return mvmbt.Load(s, mvCfg, root, height), nil
			},
		},
	}
}

func classByName(t *testing.T, name string) indexClass {
	t.Helper()
	for _, c := range classes() {
		if c.name == name {
			return c
		}
	}
	t.Fatalf("no test class %q", name)
	return indexClass{}
}

// newRepo builds a repo over s with every test class's loader registered.
func newRepo(s store.Store) *version.Repo {
	r := version.NewRepo(s)
	for _, c := range classes() {
		r.RegisterLoader(c.name, c.loader)
	}
	return r
}

func key(i int) []byte    { return []byte(fmt.Sprintf("key-%05d", i)) }
func val(i, v int) []byte { return []byte(fmt.Sprintf("value-%05d-gen-%04d", i, v)) }

func TestCommitLogAndBranches(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "MPT")
	idx, err := cls.new(s)
	if err != nil {
		t.Fatal(err)
	}

	var commits []version.Commit
	for v := 0; v < 3; v++ {
		next, err := idx.PutBatch([]core.Entry{{Key: key(v), Value: val(v, v)}})
		if err != nil {
			t.Fatal(err)
		}
		idx = next
		c, err := repo.Commit("main", idx, fmt.Sprintf("version %d", v))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
	}

	head, ok := repo.Head("main")
	if !ok || head.ID != commits[2].ID {
		t.Fatalf("Head = %v, %v; want %v", head, ok, commits[2])
	}
	log, err := repo.Log("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 {
		t.Fatalf("Log has %d commits, want 3", len(log))
	}
	for i, c := range log {
		if c.ID != commits[2-i].ID {
			t.Fatalf("Log[%d] = %v, want %v", i, c, commits[2-i])
		}
	}
	if len(log[0].Parents) != 1 || log[0].Parents[0] != commits[1].ID {
		t.Fatalf("head parents = %v", log[0].Parents)
	}
	if len(log[2].Parents) != 0 {
		t.Fatalf("first commit has parents: %v", log[2].Parents)
	}

	// Fork a branch at the middle commit and advance it independently.
	if err := repo.Branch("dev", commits[1].ID); err != nil {
		t.Fatal(err)
	}
	devIdx, err := repo.CheckoutBranch("dev")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := devIdx.Get(key(2)); ok {
		t.Fatalf("dev checkout sees main-only key: %q", got)
	}
	if got, ok, _ := devIdx.Get(key(1)); !ok || !bytes.Equal(got, val(1, 1)) {
		t.Fatalf("dev checkout Get = %q, %v", got, ok)
	}
	next, err := devIdx.Put(key(9), val(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := repo.Commit("dev", next, "dev work")
	if err != nil {
		t.Fatal(err)
	}
	if dc.Parents[0] != commits[1].ID {
		t.Fatalf("dev commit parent = %v, want %v", dc.Parents[0], commits[1].ID)
	}
	devLog, err := repo.Log("dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(devLog) != 3 { // dev work, version 1, version 0
		t.Fatalf("dev log = %v", devLog)
	}
	if names := repo.Branches(); len(names) != 2 || names[0] != "dev" || names[1] != "main" {
		t.Fatalf("Branches = %v", names)
	}
}

func TestCommitRoundTripsThroughStore(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "POS-Tree")
	idx, err := cls.new(s)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = idx.PutBatch([]core.Entry{{Key: key(1), Value: val(1, 1)}, {Key: key(2), Value: val(2, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := repo.Commit("main", idx, "with metadata ☂")
	if err != nil {
		t.Fatal(err)
	}
	got, err := version.ReadCommit(s, c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != c.ID || got.Root != c.Root || got.Class != c.Class ||
		got.Height != c.Height || got.Time != c.Time || got.Message != c.Message ||
		len(got.Parents) != len(c.Parents) {
		t.Fatalf("ReadCommit = %+v, want %+v", got, c)
	}
	if _, err := version.ReadCommit(s, hash.Of([]byte("absent"))); !errors.Is(err, core.ErrMissingNode) {
		t.Fatalf("ReadCommit of absent id: %v", err)
	}
}

func TestResumeBranchAfterReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repo := newRepo(d)
	cls := classByName(t, "MPT")
	idx, err := cls.new(d)
	if err != nil {
		t.Fatal(err)
	}
	var head version.Commit
	for v := 0; v < 4; v++ {
		idx, err = idx.PutBatch([]core.Entry{{Key: key(v), Value: val(v, v)}})
		if err != nil {
			t.Fatal(err)
		}
		head, err = repo.Commit("main", idx, fmt.Sprintf("v%d", v))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	repo2 := newRepo(re)
	if err := repo2.ResumeBranch("main", head.ID); err != nil {
		t.Fatal(err)
	}
	log, err := repo2.Log("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 4 || log[0].ID != head.ID || log[0].Message != "v3" {
		t.Fatalf("resumed log = %v", log)
	}
	idx2, err := repo2.CheckoutBranch("main")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		got, ok, err := idx2.Get(key(v))
		if err != nil || !ok || !bytes.Equal(got, val(v, v)) {
			t.Fatalf("resumed Get(%d) = %q, %v, %v", v, got, ok, err)
		}
	}
}

func TestGCErrors(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "MPT")
	idx, err := cls.new(s)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = idx.Put(key(1), val(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := repo.Commit("main", idx, "v1")
	if err != nil {
		t.Fatal(err)
	}
	idx, err = idx.Put(key(2), val(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := repo.Commit("main", idx, "v2")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := repo.GC(); err == nil {
		t.Fatal("GC with empty retained set succeeded")
	}
	if _, err := repo.GC(version.Commit{ID: hash.Of([]byte("bogus"))}); !errors.Is(err, version.ErrUnknownCommit) {
		t.Fatalf("GC with unknown commit: %v", err)
	}
	// Retaining only the non-head commit must fail while main points at c2.
	if _, err := repo.GC(c1); err == nil {
		t.Fatal("GC dropping a branch head succeeded")
	}
	// A class with no loader cannot be marked.
	repo2 := version.NewRepo(s)
	c, err := repo2.Commit("main", idx, "no loader")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo2.GC(c); !errors.Is(err, version.ErrNoLoader) {
		t.Fatalf("GC without loader: %v", err)
	}
	// The original repo is still intact and can GC to its head.
	if _, err := repo.GC(c2); err != nil {
		t.Fatalf("GC retain head: %v", err)
	}
	if _, ok := repo.Lookup(c1.ID); ok {
		t.Fatal("dropped commit still in the log")
	}
}

func TestGCUnsupportedStore(t *testing.T) {
	// A foreign store without the Sweeper capability must fail cleanly.
	s := noSweep{store.NewMemStore()}
	repo := newRepo(s)
	cls := classByName(t, "MPT")
	idx, err := cls.new(s)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = idx.Put(key(1), val(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := repo.Commit("main", idx, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.GC(c); !errors.Is(err, store.ErrNoSweeper) {
		t.Fatalf("GC on unsweepable store: %v", err)
	}
}

// noSweep hides the built-in capability methods behind a plain Store.
type noSweep struct{ inner *store.MemStore }

func (n noSweep) Put(data []byte) hash.Hash      { return n.inner.Put(data) }
func (n noSweep) Get(h hash.Hash) ([]byte, bool) { return n.inner.Get(h) }
func (n noSweep) Has(h hash.Hash) bool           { return n.inner.Has(h) }
func (n noSweep) Stats() store.Stats             { return n.inner.Stats() }
