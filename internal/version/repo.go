package version

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Loader reconstructs a read view of an index class from a committed root.
// Each class registers one as a closure over its structural configuration,
// mirroring forkbase.Loader, e.g.
//
//	repo.RegisterLoader("MPT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
//	    return mpt.Load(s, root), nil
//	})
type Loader func(s store.Store, root hash.Hash, height int) (core.Index, error)

// Common errors.
var (
	// ErrUnknownCommit reports an ID absent from the repo's commit log.
	ErrUnknownCommit = errors.New("version: unknown commit")
	// ErrUnknownBranch reports a branch name with no head.
	ErrUnknownBranch = errors.New("version: unknown branch")
	// ErrNoLoader reports a checkout of a class with no registered Loader.
	ErrNoLoader = errors.New("version: no loader registered for index class")
	// ErrHeadNotRetained reports a GC whose retained set omits a current
	// branch head. Under concurrent writers this is often a benign race —
	// the head advanced after the caller chose the set — so callers may
	// recompute and retry, or use GCRetainRecent, which chooses the set
	// atomically inside the pass.
	ErrHeadNotRetained = errors.New("version: branch head not in the retained set")
	// ErrCommitRaced reports a commit whose version lost nodes to a
	// concurrent GC pass: the index was flushed before the pass's write
	// barrier was armed, no retained version reached it, and the sweep
	// reclaimed it. The store is consistent — the commit was not recorded
	// — and the fix is to redo the mutation from a fresh checkout.
	ErrCommitRaced = errors.New("version: commit raced a GC pass; redo the mutation from a fresh checkout")
)

// Repo is a commit log plus named branches over one content-addressed
// store. All methods are safe for concurrent use with each other,
// including GC: on stores with the write-barrier capability
// (store.BarrierStore — all four built-in backends) a GC pass runs
// concurrently with commits, checkouts and reads, pausing them only for
// the pass's brief bookkeeping sections. Readers of versions the
// retention policy might drop must hold a Pin for the duration of the
// read (CheckoutPinned); see the package documentation's safety contract.
//
// The log is an in-memory view; the durable truth is the store itself,
// where every commit lives as a content-addressed node. Branch heads — the
// one piece of mutable state — are additionally persisted through the
// store's MetaStore capability on every head move, and NewRepo resumes
// them automatically when it finds persisted heads, so reopening a
// DiskStore-backed repo restores its branches without the caller recording
// head IDs externally. ResumeBranch remains available for stores without
// metadata support (and for attaching to heads recorded elsewhere).
type Repo struct {
	s store.Store

	mu       sync.RWMutex
	loaders  map[string]Loader
	commits  map[hash.Hash]Commit
	branches map[string]hash.Hash
	gcHooks  []func(live store.LiveFunc)
	now      func() time.Time

	// pins maps commit ID → refcounted reader lease (see pin.go). Guarded
	// by mu.
	pins map[hash.Hash]*pinEntry
	// gcPass is non-nil while a concurrent GC pass is between its initial
	// snapshot and its final hook-firing section; gcCond is broadcast when
	// the pass retires. Both guarded by mu. gcMu serializes passes.
	gcPass *gcPass
	gcCond *sync.Cond
	gcMu   sync.Mutex
}

// headsMetaKey is the well-known metadata key branch heads persist under.
const headsMetaKey = "version/branch-heads"

// NewRepo returns a repo over s. Register a Loader per index class before
// calling Checkout or GC on commits of that class. When s persists branch
// heads (see store.MetaStore), every branch recorded by a previous Repo
// over the same store is resumed automatically; heads whose commit blobs
// are gone (a GC dropped the branch's history) are skipped.
func NewRepo(s store.Store) *Repo {
	r := &Repo{
		s:        s,
		loaders:  make(map[string]Loader),
		commits:  make(map[hash.Hash]Commit),
		branches: make(map[string]hash.Hash),
		now:      time.Now,
		pins:     make(map[hash.Hash]*pinEntry),
	}
	r.gcCond = sync.NewCond(&r.mu)
	for name, head := range loadHeads(s) {
		// Resume without re-persisting: the heads just came from the
		// store, and rewriting the record once per branch would open a
		// crash window in which not-yet-resumed branches vanish from it.
		_ = r.resumeBranch(name, head, false) // unreadable head: skip the branch
	}
	return r
}

// Store returns the content-addressed store the repo records commits in.
func (r *Repo) Store() store.Store { return r.s }

// SetClock replaces the wall-clock source stamped into commit Time fields.
// Commit IDs hash the timestamp, so pinning the clock makes a deterministic
// workload produce byte-identical commit IDs across runs — what replay
// tooling and the fault-soak convergence tests need. The default is
// time.Now.
func (r *Repo) SetClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// RegisterLoader installs the checkout constructor for one index class
// (keyed by core.Index.Name). Registering a class twice replaces the loader.
func (r *Repo) RegisterLoader(class string, l Loader) {
	r.mu.Lock()
	r.loaders[class] = l
	r.mu.Unlock()
}

// Commit records idx's current version as a new commit on branch, advancing
// (or creating) the branch head, and returns the stored commit. The commit's
// parent is the previous head, its class is idx.Name(), and its height is
// taken from the index when the class exposes one (POS-Tree, MVMB+-Tree).
//
// A commit may overlap a GC pass. If the version was flushed before the
// pass's write barrier was armed and nothing retained reaches it, Commit
// waits for the pass's sweep to finish and then reports ErrCommitRaced if
// the version's pages were reclaimed; redo the mutation from a fresh
// checkout. Versions flushed after the barrier was armed — every mutation
// that started after the pass did — commit without waiting.
func (r *Repo) Commit(branch string, idx core.Index, message string) (Commit, error) {
	return r.CommitMeta(branch, idx, message, nil)
}

// CommitMeta is Commit with opaque application metadata attached to the
// recorded commit (see Commit.Meta). The ingest front-end commits its
// merges through it, stamping the WAL high-water mark the merge covers so
// a crash-and-replay can skip already-merged records. meta is copied into
// the commit encoding; nil and empty both record "no metadata". A meta
// produced by EncodeRootRefs makes this a multi-root commit: every
// referenced root clears the GC admission gate and is marked and scrubbed
// alongside the primary (see RootRef).
func (r *Repo) CommitMeta(branch string, idx core.Index, message string, meta []byte) (Commit, error) {
	if branch == "" {
		return Commit{}, errors.New("version: empty branch name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Probe the store's write path before anything moves: a degraded store
	// (disk full — store.ErrNoSpace — or any other flush failure) rejects
	// the commit with the typed cause while the branch head, the commit log
	// and every reader stay exactly where they were. The staged index nodes
	// the caller already Put are parked in the store's memory and land on
	// disk when the store heals, so retrying the same commit after a heal
	// succeeds with no data loss.
	if err := store.Flush(r.s); err != nil {
		return Commit{}, fmt.Errorf("version: commit rejected, store write path degraded: %w", err)
	}
	c := Commit{
		Root:    idx.RootHash(),
		Class:   idx.Name(),
		Message: message,
		Time:    r.now().UnixNano(),
	}
	if len(meta) > 0 {
		c.Meta = append([]byte(nil), meta...)
	}
	if h, ok := idx.(interface{ Height() int }); ok {
		c.Height = h.Height()
	}
	if head, ok := r.branches[branch]; ok {
		c.Parents = []hash.Hash{head}
	}
	if err := r.gcAdmitCommitLocked(c.Root); err != nil {
		return Commit{}, err
	}
	// A multi-root commit (RootRefs in the Meta trailer) must clear the
	// GC gate for every tree it records, not just the primary — a swept
	// secondary root would otherwise ride into the log inside a "valid"
	// commit.
	for _, ref := range MetaRoots(c) {
		if err := r.gcAdmitCommitLocked(ref.Root); err != nil {
			return Commit{}, err
		}
	}
	c.ID = r.s.Put(encodeCommit(c))
	r.commits[c.ID] = c
	r.branches[branch] = c.ID
	if err := r.persistHeadsLocked(); err != nil {
		// The commit blob is stored and the in-memory head advanced, but
		// durability of the head move failed — the caller must know, or a
		// clean process exit silently rolls the branch back on reopen.
		return c, fmt.Errorf("version: commit recorded but branch head not persisted: %w", err)
	}
	return c, nil
}

// Head returns the commit a branch points at.
func (r *Repo) Head(branch string) (Commit, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.branches[branch]
	if !ok {
		return Commit{}, false
	}
	c, ok := r.commits[id]
	return c, ok
}

// Branch creates branch name at the known commit id, or moves it there if
// it already exists — checkout-and-fork in one step, since a later
// Repo.Commit on the new branch descends from id.
func (r *Repo) Branch(name string, id hash.Hash) error {
	if name == "" {
		return errors.New("version: empty branch name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.commits[id]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownCommit, id)
	}
	r.branches[name] = id
	return r.persistHeadsLocked()
}

// DeleteBranch removes a branch head. The commits it pointed at remain in
// the log until a GC drops them. A non-nil error means the in-memory
// delete happened but the persisted head record could not be updated.
func (r *Repo) DeleteBranch(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.branches, name)
	return r.persistHeadsLocked()
}

// Branches lists the branch names in sorted order.
func (r *Repo) Branches() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.branches))
	for name := range r.branches {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the commit stored under id, if the log knows it.
func (r *Repo) Lookup(id hash.Hash) (Commit, bool) {
	r.mu.RLock()
	c, ok := r.commits[id]
	r.mu.RUnlock()
	return c, ok
}

// Checkout reconstructs a read view of the commit's index version through
// the Loader registered for its class.
func (r *Repo) Checkout(id hash.Hash) (core.Index, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.commits[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownCommit, id)
	}
	return r.checkoutLocked(c)
}

// CheckoutBranch checks out the head of a branch.
func (r *Repo) CheckoutBranch(name string) (core.Index, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.branches[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBranch, name)
	}
	return r.checkoutLocked(r.commits[id])
}

// checkoutLocked loads c's index view. Caller holds r.mu (read or write).
func (r *Repo) checkoutLocked(c Commit) (core.Index, error) {
	l, ok := r.loaders[c.Class]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoLoader, c.Class)
	}
	idx, err := l(r.s, c.Root, c.Height)
	if err != nil {
		return nil, fmt.Errorf("version: checkout %s: %w", c, err)
	}
	return idx, nil
}

// Log returns a branch's history, newest first, following first parents.
// The walk stops at a history's first commit or at the retention boundary a
// past GC left (a parent ID no longer in the log).
func (r *Repo) Log(branch string) ([]Commit, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.branches[branch]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBranch, branch)
	}
	var out []Commit
	for {
		c, ok := r.commits[id]
		if !ok {
			return out, nil // shallow boundary
		}
		out = append(out, c)
		if len(c.Parents) == 0 {
			return out, nil
		}
		id = c.Parents[0]
	}
}

// ResumeBranch rebuilds the log for one branch from a head commit ID by
// reading the commit chain (all parents, breadth-first) out of the store,
// then points branch name at it. It is how a process reattaches to a
// DiskStore-backed history after a restart: persist the head ID anywhere,
// reopen the store, resume. Ancestors whose blobs a GC already swept are
// skipped, leaving the same shallow boundary the GC left.
func (r *Repo) ResumeBranch(name string, head hash.Hash) error {
	return r.resumeBranch(name, head, true)
}

// resumeBranch is ResumeBranch with persistence optional: NewRepo's
// auto-resume loop reads heads out of the store and must not rewrite the
// record per branch (a crash mid-loop would drop the rest).
func (r *Repo) resumeBranch(name string, head hash.Hash, persist bool) error {
	if name == "" {
		return errors.New("version: empty branch name")
	}
	first, err := ReadCommit(r.s, head)
	if err != nil {
		return fmt.Errorf("version: resume %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	queue := []Commit{first}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if _, seen := r.commits[c.ID]; seen {
			continue
		}
		r.commits[c.ID] = c
		for _, p := range c.Parents {
			if _, seen := r.commits[p]; seen {
				continue
			}
			pc, err := ReadCommit(r.s, p)
			if err != nil {
				continue // swept ancestor: shallow boundary
			}
			queue = append(queue, pc)
		}
	}
	r.branches[name] = head
	if !persist {
		return nil
	}
	return r.persistHeadsLocked()
}

// OnGC registers a hook invoked at the end of every GC pass that swept —
// including a pass whose sweep failed partway, so caches drop whatever the
// partial sweep did reclaim — with the pass's liveness predicate. It is the eager-eviction integration point for
// caches holding decoded or copied node state that a sweep cannot see: the
// per-index decoded-node caches (core.NodeCache.EvictIf) and client-side
// store.CachedStore layers (CachedStore.Purge). Hooks run while the repo's
// lock is held, so they must not call back into the Repo.
func (r *Repo) OnGC(hook func(live store.LiveFunc)) {
	r.mu.Lock()
	r.gcHooks = append(r.gcHooks, hook)
	r.mu.Unlock()
}

// persistHeadsLocked writes the branch map through the store's MetaStore
// capability, skipping stores without one (the in-memory view remains
// authoritative for the process lifetime either way). A write failure on a
// capable store is returned: heads are the one mutable pointer in the
// system, and losing one silently rolls a branch back on the next reopen.
// Caller holds r.mu.
func (r *Repo) persistHeadsLocked() error {
	if _, ok := r.s.(store.MetaStore); !ok {
		return nil
	}
	// Push buffered node writes to the OS before the head record lands:
	// otherwise a process crash between the two can persist a head whose
	// commit blob or pages were still sitting in a write buffer — a durable
	// pointer into nothing. With the flush ordered first, a crash loses at
	// worst the head move, never the data under it.
	if err := store.Flush(r.s); err != nil {
		return fmt.Errorf("version: flush before persisting heads: %w", err)
	}
	names := make([]string, 0, len(r.branches))
	for name := range r.branches {
		names = append(names, name)
	}
	sort.Strings(names)
	w := codec.NewWriter(16 + len(names)*48)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		w.LenBytes([]byte(name))
		id := r.branches[name]
		w.Bytes32(id[:])
	}
	if err := store.SetMeta(r.s, headsMetaKey, w.Bytes()); err != nil {
		return fmt.Errorf("version: persist branch heads: %w", err)
	}
	return nil
}

// loadHeads reads the persisted branch map, returning nil when the store
// has no metadata capability, no persisted heads, or a corrupt record (a
// bad head record must not wedge the open; affected branches can still be
// resumed manually).
func loadHeads(s store.Store) map[string]hash.Hash {
	data, ok, err := store.GetMeta(s, headsMetaKey)
	if err != nil || !ok {
		return nil
	}
	rd := codec.NewReader(data)
	n, err := rd.Uvarint()
	if err != nil {
		return nil
	}
	out := make(map[string]hash.Hash, n)
	for i := uint64(0); i < n; i++ {
		name, err := rd.LenBytes()
		if err != nil {
			return nil
		}
		hb, err := rd.Bytes32()
		if err != nil {
			return nil
		}
		out[string(name)] = hash.MustFromBytes(hb)
	}
	if rd.Done() != nil {
		return nil
	}
	return out
}
