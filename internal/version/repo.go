package version

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Loader reconstructs a read view of an index class from a committed root.
// Each class registers one as a closure over its structural configuration,
// mirroring forkbase.Loader, e.g.
//
//	repo.RegisterLoader("MPT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
//	    return mpt.Load(s, root), nil
//	})
type Loader func(s store.Store, root hash.Hash, height int) (core.Index, error)

// Common errors.
var (
	// ErrUnknownCommit reports an ID absent from the repo's commit log.
	ErrUnknownCommit = errors.New("version: unknown commit")
	// ErrUnknownBranch reports a branch name with no head.
	ErrUnknownBranch = errors.New("version: unknown branch")
	// ErrNoLoader reports a checkout of a class with no registered Loader.
	ErrNoLoader = errors.New("version: no loader registered for index class")
)

// Repo is a commit log plus named branches over one content-addressed
// store. All methods are safe for concurrent use with each other; the GC
// method additionally requires that no index mutation over the same store
// is in flight (see the package documentation's safety contract).
//
// The log is an in-memory view; the durable truth is the store itself,
// where every commit lives as a content-addressed node. ResumeBranch
// rebuilds the view from a head ID after a process restart.
type Repo struct {
	s store.Store

	mu       sync.RWMutex
	loaders  map[string]Loader
	commits  map[hash.Hash]Commit
	branches map[string]hash.Hash
	now      func() time.Time
}

// NewRepo returns an empty repo over s. Register a Loader per index class
// before calling Checkout or GC on commits of that class.
func NewRepo(s store.Store) *Repo {
	return &Repo{
		s:        s,
		loaders:  make(map[string]Loader),
		commits:  make(map[hash.Hash]Commit),
		branches: make(map[string]hash.Hash),
		now:      time.Now,
	}
}

// Store returns the content-addressed store the repo records commits in.
func (r *Repo) Store() store.Store { return r.s }

// RegisterLoader installs the checkout constructor for one index class
// (keyed by core.Index.Name). Registering a class twice replaces the loader.
func (r *Repo) RegisterLoader(class string, l Loader) {
	r.mu.Lock()
	r.loaders[class] = l
	r.mu.Unlock()
}

// Commit records idx's current version as a new commit on branch, advancing
// (or creating) the branch head, and returns the stored commit. The commit's
// parent is the previous head, its class is idx.Name(), and its height is
// taken from the index when the class exposes one (POS-Tree, MVMB+-Tree).
func (r *Repo) Commit(branch string, idx core.Index, message string) (Commit, error) {
	if branch == "" {
		return Commit{}, errors.New("version: empty branch name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := Commit{
		Root:    idx.RootHash(),
		Class:   idx.Name(),
		Message: message,
		Time:    r.now().UnixNano(),
	}
	if h, ok := idx.(interface{ Height() int }); ok {
		c.Height = h.Height()
	}
	if head, ok := r.branches[branch]; ok {
		c.Parents = []hash.Hash{head}
	}
	c.ID = r.s.Put(encodeCommit(c))
	r.commits[c.ID] = c
	r.branches[branch] = c.ID
	return c, nil
}

// Head returns the commit a branch points at.
func (r *Repo) Head(branch string) (Commit, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.branches[branch]
	if !ok {
		return Commit{}, false
	}
	c, ok := r.commits[id]
	return c, ok
}

// Branch creates branch name at the known commit id, or moves it there if
// it already exists — checkout-and-fork in one step, since a later
// Repo.Commit on the new branch descends from id.
func (r *Repo) Branch(name string, id hash.Hash) error {
	if name == "" {
		return errors.New("version: empty branch name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.commits[id]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownCommit, id)
	}
	r.branches[name] = id
	return nil
}

// DeleteBranch removes a branch head. The commits it pointed at remain in
// the log until a GC drops them.
func (r *Repo) DeleteBranch(name string) {
	r.mu.Lock()
	delete(r.branches, name)
	r.mu.Unlock()
}

// Branches lists the branch names in sorted order.
func (r *Repo) Branches() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.branches))
	for name := range r.branches {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the commit stored under id, if the log knows it.
func (r *Repo) Lookup(id hash.Hash) (Commit, bool) {
	r.mu.RLock()
	c, ok := r.commits[id]
	r.mu.RUnlock()
	return c, ok
}

// Checkout reconstructs a read view of the commit's index version through
// the Loader registered for its class.
func (r *Repo) Checkout(id hash.Hash) (core.Index, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.commits[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownCommit, id)
	}
	return r.checkoutLocked(c)
}

// CheckoutBranch checks out the head of a branch.
func (r *Repo) CheckoutBranch(name string) (core.Index, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.branches[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBranch, name)
	}
	return r.checkoutLocked(r.commits[id])
}

// checkoutLocked loads c's index view. Caller holds r.mu (read or write).
func (r *Repo) checkoutLocked(c Commit) (core.Index, error) {
	l, ok := r.loaders[c.Class]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoLoader, c.Class)
	}
	idx, err := l(r.s, c.Root, c.Height)
	if err != nil {
		return nil, fmt.Errorf("version: checkout %s: %w", c, err)
	}
	return idx, nil
}

// Log returns a branch's history, newest first, following first parents.
// The walk stops at a history's first commit or at the retention boundary a
// past GC left (a parent ID no longer in the log).
func (r *Repo) Log(branch string) ([]Commit, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.branches[branch]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBranch, branch)
	}
	var out []Commit
	for {
		c, ok := r.commits[id]
		if !ok {
			return out, nil // shallow boundary
		}
		out = append(out, c)
		if len(c.Parents) == 0 {
			return out, nil
		}
		id = c.Parents[0]
	}
}

// ResumeBranch rebuilds the log for one branch from a head commit ID by
// reading the commit chain (all parents, breadth-first) out of the store,
// then points branch name at it. It is how a process reattaches to a
// DiskStore-backed history after a restart: persist the head ID anywhere,
// reopen the store, resume. Ancestors whose blobs a GC already swept are
// skipped, leaving the same shallow boundary the GC left.
func (r *Repo) ResumeBranch(name string, head hash.Hash) error {
	if name == "" {
		return errors.New("version: empty branch name")
	}
	first, err := ReadCommit(r.s, head)
	if err != nil {
		return fmt.Errorf("version: resume %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	queue := []Commit{first}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if _, seen := r.commits[c.ID]; seen {
			continue
		}
		r.commits[c.ID] = c
		for _, p := range c.Parents {
			if _, seen := r.commits[p]; seen {
				continue
			}
			pc, err := ReadCommit(r.s, p)
			if err != nil {
				continue // swept ancestor: shallow boundary
			}
			queue = append(queue, pc)
		}
	}
	r.branches[name] = head
	return nil
}
