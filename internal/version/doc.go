// Package version adds version management on top of the immutable indexes:
// a commit log, named branches, and retention-driven garbage collection.
//
// The paper's central storage claim (§4.2, §5.4.2) is that immutable
// indexes make retaining many versions cheap, because versions share
// unmodified pages through the content-addressed store. This package closes
// the lifecycle loop on that claim: it names versions (commits), organizes
// them into histories (branches), and — the part the paper leaves to
// systems like Forkbase — bounds space by deleting the pages only
// unretained versions reach.
//
// # Commits
//
// A Commit records one index version: the Merkle root, the parent commit
// IDs, the index class that produced the root (so the version can be
// re-opened later), the tree height at commit time (POS-Tree and the
// MVMB+-Tree need it to Load), and metadata (message, wall-clock time).
// Commits are themselves content-addressed: the canonical encoding of the
// commit is stored as a node in the same store as the index pages, and its
// SHA-256 digest is the commit ID. A commit therefore survives anything the
// index pages survive — including a DiskStore close and reopen — and
// ResumeBranch can rebuild a Repo's log from a head ID alone.
//
// # Branches
//
// A branch is a named mutable head over the immutable commit graph.
// Repo.Commit advances the named branch (creating it on first use);
// Branch creates or moves a branch to any known commit; Checkout
// reconstructs a read view of any commit through the Loader registered for
// its index class.
//
// # Garbage collection
//
// GC(retain...) is mark-and-sweep over the content-addressed store. Mark:
// the union of every retained commit's reachable node set (via
// core.Reachable) plus the retained commit blobs themselves. Sweep: every
// other node in the store is deleted through the store's Sweeper capability
// — map deletes for the in-memory backends, live-set segment compaction for
// DiskStore. Commits outside the retained set are dropped from the log;
// retained commits keep their Parents fields, so history becomes shallow at
// the retention boundary, exactly like a shallow git clone.
//
// A pass is concurrent, not stop-the-world. The repository lock is held
// only for three short windows: snapshotting the retained set and arming
// the store's write barrier at mark start, pruning the log when the mark
// finishes, and firing OnGC hooks at the end. The mark walk and the store
// sweep — the two phases whose cost grows with history size — run without
// the lock, racing live commits, checkouts and reads.
//
// Three mechanisms make that race safe:
//
//   - Write barrier (store.BarrierStore): while a pass is marking, every
//     store write records its digest in the pass's barrier, and the sweep
//     treats barrier-recorded nodes as live. Arming the barrier
//     synchronizes with in-flight batch writes, so a commit's flush is
//     atomic with respect to mark start: it lands entirely before the mark
//     (and is either reachable from a retained head or caught by the
//     commit gate below) or has every node recorded.
//   - Commit gate: Repo.Commit admits a new version mid-pass only when the
//     pass can prove its nodes survive the sweep (barrier-covered, or
//     rooted in the marked live set). A version flushed before the barrier
//     armed that is not covered waits for the sweep and then fails with
//     ErrCommitRaced — the caller retries from a fresh checkout. The gate
//     also walks mid-pass commits whose versions predate the barrier, so
//     children inheriting their pages stay safe.
//   - Reader pins: CheckoutPinned / CheckoutBranchPinned return a Pin that
//     keeps the commit and its whole version tree out of every sweep until
//     Release, even when retention would drop it. Pins are refcounted;
//     Release is idempotent.
//
// # Safety contract
//
// On a store with the BarrierStore capability (all four built-in backends)
// GC runs concurrently with everything: Commit, Put/PutBatch on checked-out
// indexes, Checkout, and reads. Callers need only honor two rules:
//
//   - Retry ErrCommitRaced: a commit whose version was flushed before the
//     pass began marking, and which nothing protects, is rejected after the
//     sweep. Re-checkout the branch and reapply the mutation.
//   - Pin what you read, pin what you build on. A long-lived read view of a
//     commit that retention may drop must come from CheckoutPinned /
//     CheckoutBranchPinned; an unpinned view of a dropped version loses its
//     nodes mid-read (core.ErrMissingNode). Likewise a mutator that
//     checks out a base version, edits, and commits later must pin the base
//     unless it is guaranteed to stay retained (e.g. more commits than the
//     retention window could land in between): the commit gate verifies the
//     novel nodes of the new version, not pages inherited from a base that
//     was itself collected.
//
// Stores without the barrier capability keep the old stop-the-world rule:
// the pass holds the repository lock end to end, so concurrent Repo calls
// block for the duration, and external writers (raw store.Put outside any
// Repo-managed commit) must quiesce during a GC.
//
// Failure semantics: a sweep error does not wedge the repository. The log
// prune and the OnGC hooks still happen (hooks receive the pass's live
// predicate either way), the barrier is disarmed, and the store is left
// merely over-retained — a later pass reclaims what the failed sweep left
// behind. GC returns the sweep error wrapped, with the pass's stats.
package version
