// Package version adds version management on top of the immutable indexes:
// a commit log, named branches, and retention-driven garbage collection.
//
// The paper's central storage claim (§4.2, §5.4.2) is that immutable
// indexes make retaining many versions cheap, because versions share
// unmodified pages through the content-addressed store. This package closes
// the lifecycle loop on that claim: it names versions (commits), organizes
// them into histories (branches), and — the part the paper leaves to
// systems like Forkbase — bounds space by deleting the pages only
// unretained versions reach.
//
// # Commits
//
// A Commit records one index version: the Merkle root, the parent commit
// IDs, the index class that produced the root (so the version can be
// re-opened later), the tree height at commit time (POS-Tree and the
// MVMB+-Tree need it to Load), and metadata (message, wall-clock time).
// Commits are themselves content-addressed: the canonical encoding of the
// commit is stored as a node in the same store as the index pages, and its
// SHA-256 digest is the commit ID. A commit therefore survives anything the
// index pages survive — including a DiskStore close and reopen — and
// ResumeBranch can rebuild a Repo's log from a head ID alone.
//
// # Branches
//
// A branch is a named mutable head over the immutable commit graph.
// Repo.Commit advances the named branch (creating it on first use);
// Branch creates or moves a branch to any known commit; Checkout
// reconstructs a read view of any commit through the Loader registered for
// its index class.
//
// # Garbage collection
//
// GC(retain...) is mark-and-sweep over the content-addressed store. Mark:
// the union of every retained commit's reachable node set (via
// core.Reachable) plus the retained commit blobs themselves. Sweep: every
// other node in the store is deleted through the store's Sweeper capability
// — map deletes for the in-memory backends, live-set segment compaction for
// DiskStore. Commits outside the retained set are dropped from the log;
// retained commits keep their Parents fields, so history becomes shallow at
// the retention boundary, exactly like a shallow git clone.
//
// # Safety contract
//
// GC must not run concurrently with index mutations. Specifically:
//
//   - Never run GC while a core.StagedWriter commit is in flight anywhere
//     on the same store: a batch that has flushed its nodes but whose root
//     has not yet been recorded in a commit is unreachable from every
//     retained commit, and the sweep would delete it mid-commit.
//   - Never run GC while another goroutine calls Repo.Commit, Put or
//     PutBatch on an index over the same store.
//
// Readers are safe: concurrent Get/Iterate/Range/Prove on *retained*
// versions may overlap a GC on every built-in backend. Callers that hold
// pre-GC index values for unretained versions must drop them — their nodes
// are gone (reads fail with core.ErrMissingNode; decoded-node caches may
// serve stale subsets, which is harmless but not useful).
package version
