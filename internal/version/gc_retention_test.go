package version_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/version"
)

// retentionBackends enumerates the four store backends the retention
// acceptance test crosses every index class with — the same set storetest
// and indextest certify.
func retentionBackends() []struct {
	name string
	open func(t *testing.T) store.Store
} {
	return []struct {
		name string
		open func(t *testing.T) store.Store
	}{
		{"mem", func(t *testing.T) store.Store { return store.NewMemStore() }},
		{"sharded", func(t *testing.T) store.Store { return store.NewShardedStore(0) }},
		{"disk", func(t *testing.T) store.Store {
			// Small segments so the 50-version history spans several files
			// and compaction gets real work.
			d, err := store.OpenDiskStore(t.TempDir(), store.DiskOptions{SegmentBytes: 1 << 16})
			if err != nil {
				t.Fatalf("open disk store: %v", err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		}},
		{"cached", func(t *testing.T) store.Store {
			return store.NewCachedStore(store.NewMemStore(), 1<<20)
		}},
	}
}

// versionProbe snapshots everything the acceptance criteria require to be
// byte-identical across GC for one retained version.
type versionProbe struct {
	commit version.Commit
	root   hash32
	values map[string][]byte // key → value (nil = absent)
	proofs map[string]*core.Proof
}

type hash32 = [32]byte

// snapshotVersion records a version's root, every probe key's Get result,
// and proofs for the keys present.
func snapshotVersion(t *testing.T, idx core.Index, c version.Commit, probeKeys [][]byte) versionProbe {
	t.Helper()
	p := versionProbe{
		commit: c,
		root:   c.Root,
		values: make(map[string][]byte),
		proofs: make(map[string]*core.Proof),
	}
	if idx.RootHash() != c.Root {
		t.Fatalf("checkout root %v != commit root %v", idx.RootHash(), c.Root)
	}
	for _, k := range probeKeys {
		v, ok, err := idx.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !ok {
			p.values[string(k)] = nil
			continue
		}
		p.values[string(k)] = append([]byte(nil), v...)
		proof, err := idx.Prove(k)
		if err != nil {
			t.Fatalf("Prove(%q): %v", k, err)
		}
		if err := idx.VerifyProof(idx.RootHash(), proof); err != nil {
			t.Fatalf("VerifyProof(%q) before GC: %v", k, err)
		}
		p.proofs[string(k)] = proof
	}
	return p
}

// checkVersion re-checks a snapshot against a fresh checkout after GC.
func checkVersion(t *testing.T, repo *version.Repo, p versionProbe, probeKeys [][]byte) {
	t.Helper()
	idx, err := repo.Checkout(p.commit.ID)
	if err != nil {
		t.Fatalf("Checkout after GC: %v", err)
	}
	if idx.RootHash() != p.root {
		t.Fatalf("RootHash changed across GC: %v != %v", idx.RootHash(), p.root)
	}
	for _, k := range probeKeys {
		v, ok, err := idx.Get(k)
		if err != nil {
			t.Fatalf("Get(%q) after GC: %v", k, err)
		}
		want := p.values[string(k)]
		if want == nil {
			if ok {
				t.Fatalf("key %q appeared after GC", k)
			}
			continue
		}
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("Get(%q) after GC = %q, %v; want %q", k, v, ok, want)
		}
		// The pre-GC proof still verifies against the root, and a fresh
		// proof is byte-identical to the pre-GC one.
		if err := idx.VerifyProof(p.root, p.proofs[string(k)]); err != nil {
			t.Fatalf("pre-GC proof for %q no longer verifies: %v", k, err)
		}
		fresh, err := idx.Prove(k)
		if err != nil {
			t.Fatalf("Prove(%q) after GC: %v", k, err)
		}
		if !bytes.Equal(fresh.Value, p.proofs[string(k)].Value) ||
			len(fresh.Path) != len(p.proofs[string(k)].Path) {
			t.Fatalf("proof for %q changed shape across GC", k)
		}
		for i := range fresh.Path {
			if !bytes.Equal(fresh.Path[i], p.proofs[string(k)].Path[i]) {
				t.Fatalf("proof path[%d] for %q changed across GC", i, k)
			}
		}
	}
}

// TestGCRetention is the acceptance scenario: K=50 committed versions,
// GC retaining the last 5, for every index class × every store backend.
// Every retained version's RootHash, Get results and proofs must be
// byte-identical before and after GC; dropped versions must be gone; on the
// disk backend the on-disk footprint must shrink.
func TestGCRetention(t *testing.T) {
	const (
		versions = 50
		keep     = 5
		keySpace = 80
		updates  = 10
	)
	probeKeys := make([][]byte, keySpace)
	for i := range probeKeys {
		probeKeys[i] = key(i)
	}
	for _, cls := range classes() {
		cls := cls
		t.Run(cls.name, func(t *testing.T) {
			for _, be := range retentionBackends() {
				be := be
				t.Run(be.name, func(t *testing.T) {
					s := be.open(t)
					repo := newRepo(s)
					idx, err := cls.new(s)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(7))
					commits := make([]version.Commit, 0, versions)
					for v := 0; v < versions; v++ {
						batch := make([]core.Entry, updates)
						for j := range batch {
							k := rng.Intn(keySpace)
							batch[j] = core.Entry{Key: key(k), Value: val(k, v)}
						}
						idx, err = idx.PutBatch(batch)
						if err != nil {
							t.Fatal(err)
						}
						c, err := repo.Commit("main", idx, fmt.Sprintf("v%d", v))
						if err != nil {
							t.Fatal(err)
						}
						commits = append(commits, c)
					}

					retained := commits[versions-keep:]
					dropped := commits[:versions-keep]
					probes := make([]versionProbe, len(retained))
					for i, c := range retained {
						view, err := repo.Checkout(c.ID)
						if err != nil {
							t.Fatal(err)
						}
						probes[i] = snapshotVersion(t, view, c, probeKeys)
					}

					var diskBefore int64
					if u, ok := store.DiskUsageOf(s); ok {
						diskBefore = u
					}
					uniqueBefore := s.Stats().UniqueBytes

					st, err := repo.GC(retained...)
					if err != nil {
						t.Fatalf("GC: %v", err)
					}
					if st.RetainedCommits != keep || st.DroppedCommits != versions-keep {
						t.Fatalf("GC commit counts = %+v", st)
					}
					if st.Store.SweptNodes == 0 {
						t.Fatalf("GC swept nothing: %+v", st)
					}
					if after := s.Stats().UniqueBytes; after >= uniqueBefore {
						t.Fatalf("unique footprint did not shrink: %d -> %d", uniqueBefore, after)
					}
					if u, ok := store.DiskUsageOf(s); ok {
						if u >= diskBefore {
							t.Fatalf("disk usage did not shrink after GC: %d -> %d", diskBefore, u)
						}
					}

					// Retained versions are byte-identical.
					for _, p := range probes {
						checkVersion(t, repo, p, probeKeys)
					}
					// Dropped versions are gone from the log, and their
					// pre-GC views cannot silently serve swept state.
					for _, c := range dropped {
						if _, ok := repo.Lookup(c.ID); ok {
							t.Fatalf("dropped commit %v still in log", c)
						}
						if _, err := repo.Checkout(c.ID); !errors.Is(err, version.ErrUnknownCommit) {
							t.Fatalf("checkout of dropped commit: %v", err)
						}
					}
				})
			}
		})
	}
}

// TestGCRepeatedRetention drives several GC rounds over one history —
// retention applied again and again, as a production retention policy would
// — asserting the head version never degrades and space never grows.
func TestGCRepeatedRetention(t *testing.T) {
	const rounds, perRound, keep = 4, 12, 3
	cls := classByName(t, "POS-Tree")
	s := store.NewMemStore()
	repo := newRepo(s)
	idx, err := cls.new(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var all []version.Commit
	for round := 0; round < rounds; round++ {
		for v := 0; v < perRound; v++ {
			gen := round*perRound + v
			batch := make([]core.Entry, 8)
			for j := range batch {
				k := rng.Intn(60)
				batch[j] = core.Entry{Key: key(k), Value: val(k, gen)}
			}
			idx, err = idx.PutBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			c, err := repo.Commit("main", idx, fmt.Sprintf("g%d", gen))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, c)
		}
		retained := all[len(all)-keep:]
		head := retained[len(retained)-1]
		headView, err := repo.Checkout(head.ID)
		if err != nil {
			t.Fatal(err)
		}
		wantRoot := headView.RootHash()
		if _, err := repo.GC(retained...); err != nil {
			t.Fatalf("round %d GC: %v", round, err)
		}
		after, err := repo.CheckoutBranch("main")
		if err != nil {
			t.Fatal(err)
		}
		if after.RootHash() != wantRoot {
			t.Fatalf("round %d: head root changed across GC", round)
		}
		if n, err := after.Count(); err != nil || n == 0 {
			t.Fatalf("round %d: Count after GC = %d, %v", round, n, err)
		}
		all = append([]version.Commit(nil), retained...)
		// Keep committing on the surviving head.
		idx = after
	}
}
