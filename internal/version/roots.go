package version

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
)

// RootRef names one extra index root a commit carries in its Meta trailer
// beyond the primary Commit.Root — the root-of-roots mechanism secondary
// indexes co-commit through (internal/secondary). A commit whose Meta
// decodes as RootRefs is a multi-root commit: GC marks every referenced
// tree live alongside the primary, Verify scrubs them, and the commit
// admission gate covers them, so a sweep can never strand a co-committed
// root.
type RootRef struct {
	// Name identifies the reference to the application — the secondary
	// package uses the indexed attribute name.
	Name string
	// Class is the index class of the referenced tree (core.Index.Name),
	// keying the Loader used to walk it.
	Class string
	// Height is the tree height Load needs for the height-carrying
	// classes; zero otherwise.
	Height int
	// Root is the referenced Merkle root. A null root (empty tree) is
	// legal and skipped by walks.
	Root hash.Hash
}

// rootRefsTag opens a RootRefs encoding inside Commit.Meta. The value has
// its high bit set, so it can never be the canonical single-byte uvarint
// the ingest front-end stores as its high-water-mark meta, and a
// multi-byte uvarint starting 0xA7 can never satisfy this encoding's
// strict length check — the two Meta users cannot misparse each other.
const rootRefsTag = 0xA7

// EncodeRootRefs produces the canonical Meta encoding of a root-of-roots
// trailer. Nil is returned for an empty set, which CommitMeta records as
// "no metadata".
func EncodeRootRefs(refs []RootRef) []byte {
	if len(refs) == 0 {
		return nil
	}
	w := codec.NewWriter(2 + len(refs)*48)
	w.Byte(rootRefsTag)
	w.Uvarint(uint64(len(refs)))
	for _, ref := range refs {
		w.LenBytes([]byte(ref.Name))
		w.LenBytes([]byte(ref.Class))
		w.Uvarint(uint64(ref.Height))
		w.Bytes32(ref.Root[:])
	}
	return w.Bytes()
}

// DecodeRootRefs parses a Meta trailer as a root-of-roots encoding. The
// boolean is false when meta is something else (absent, an ingest
// high-water mark, any foreign payload): the parse is strict — tag, every
// field, and full consumption — so only a genuine EncodeRootRefs output
// decodes.
func DecodeRootRefs(meta []byte) ([]RootRef, bool) {
	if len(meta) == 0 || meta[0] != rootRefsTag {
		return nil, false
	}
	r := codec.NewReader(meta[1:])
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining())/hash.Size {
		return nil, false
	}
	out := make([]RootRef, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := r.LenBytes()
		if err != nil {
			return nil, false
		}
		class, err := r.LenBytes()
		if err != nil {
			return nil, false
		}
		height, err := r.Uvarint()
		if err != nil {
			return nil, false
		}
		rb, err := r.Bytes32()
		if err != nil {
			return nil, false
		}
		out = append(out, RootRef{
			Name:   string(name),
			Class:  string(class),
			Height: int(height),
			Root:   hash.MustFromBytes(rb),
		})
	}
	if r.Done() != nil {
		return nil, false
	}
	return out, true
}

// MetaRoots returns the commit's extra roots, or nil when its Meta is not
// a root-of-roots trailer — the convenience form every GC/verify walk
// uses.
func MetaRoots(c Commit) []RootRef {
	refs, ok := DecodeRootRefs(c.Meta)
	if !ok {
		return nil
	}
	return refs
}

// LoadRoot checks out an index view of one class directly from a root and
// height, without going through a commit — how callers reach roots that
// commits carry outside Commit.Root, e.g. the secondary-index roots
// recorded as RootRefs in Commit.Meta.
func (r *Repo) LoadRoot(class string, root hash.Hash, height int) (core.Index, error) {
	r.mu.RLock()
	l, ok := r.loaders[class]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoLoader, class)
	}
	idx, err := l(r.s, root, height)
	if err != nil {
		return nil, fmt.Errorf("version: load %s root %x: %w", class, root[:6], err)
	}
	return idx, nil
}

// markRoot walks one extra root into a GC pass's live set, mirroring what
// markCommit does for the primary root.
func (r *Repo) markRoot(p *gcPass, loaders map[string]Loader, ref RootRef) error {
	if ref.Root.IsNull() {
		return nil
	}
	l, ok := loaders[ref.Class]
	if !ok {
		return fmt.Errorf("version: GC mark root %q: %w: %q", ref.Name, ErrNoLoader, ref.Class)
	}
	idx, err := l(r.s, ref.Root, ref.Height)
	if err != nil {
		return fmt.Errorf("version: GC mark root %q: %w", ref.Name, err)
	}
	if err := core.MarkReachable(idx, ref.Root, p.live); err != nil {
		return fmt.Errorf("version: GC mark root %q: %w", ref.Name, err)
	}
	return nil
}
