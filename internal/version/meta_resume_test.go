package version_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/version"
)

// These tests pin the commit-metadata contract the ingest front-end relies
// on: a merge commit carries the WAL high-water mark as an opaque Meta
// trailer, and resuming a branch whose head (or ancestors) carry metadata
// must work exactly like resuming a plain history. Before the trailer was
// decodable, ReadCommit rejected meta-bearing encodings as trailing
// garbage, which made a branch resumable only if every merge had happened
// with an empty memtable (no high-water mark to record) — the regression
// the reopen-mid-ingest test below locks out.

// TestCommitMetaRoundTrip commits with metadata and checks the bytes come
// back identically through Lookup, ReadCommit and a log walk, and that a
// plain commit stays metadata-free.
func TestCommitMetaRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "MPT")
	idx, err := cls.new(s)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = idx.PutBatch([]core.Entry{{Key: key(1), Value: val(1, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	meta := []byte("wal-hwm:12345")
	c, err := repo.CommitMeta("main", idx, "merge", meta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Meta, meta) {
		t.Fatalf("commit returned meta %q, want %q", c.Meta, meta)
	}
	// The stored encoding round-trips.
	rc, err := version.ReadCommit(s, c.ID)
	if err != nil {
		t.Fatalf("ReadCommit of a meta-bearing commit: %v", err)
	}
	if !bytes.Equal(rc.Meta, meta) {
		t.Fatalf("ReadCommit meta = %q, want %q", rc.Meta, meta)
	}
	// A plain commit on top records no metadata.
	idx, err = idx.PutBatch([]core.Entry{{Key: key(2), Value: val(2, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := repo.Commit("main", idx, "plain")
	if err != nil {
		t.Fatal(err)
	}
	rc2, err := version.ReadCommit(s, c2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc2.Meta) != 0 {
		t.Fatalf("plain commit decoded with meta %q", rc2.Meta)
	}
}

// TestResumeBranchWithMergeCommitMeta is the reopen-mid-ingest regression:
// a history whose head and an interior commit both carry metadata (the
// shape a WAL-backed ingest run leaves — merge commits with high-water
// marks, with unmerged writes still in the memtable at crash time) must
// resume through both NewRepo's auto-resume and an explicit ResumeBranch,
// preserving the metadata and the full parent chain.
func TestResumeBranchWithMergeCommitMeta(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "POS-Tree")
	idx, err := cls.new(s)
	if err != nil {
		t.Fatal(err)
	}

	var commits []version.Commit
	for v := 0; v < 4; v++ {
		idx, err = idx.PutBatch([]core.Entry{{Key: key(v), Value: val(v, v)}})
		if err != nil {
			t.Fatal(err)
		}
		var c version.Commit
		if v%2 == 1 { // every other commit is a "merge" carrying a high-water mark
			c, err = repo.CommitMeta("main", idx, fmt.Sprintf("merge %d", v),
				[]byte(fmt.Sprintf("hwm-%d", v*100)))
		} else {
			c, err = repo.Commit("main", idx, fmt.Sprintf("plain %d", v))
		}
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
	}
	head := commits[len(commits)-1]

	// Auto-resume: a fresh Repo over the same store finds the persisted
	// head (a meta-bearing commit is an ancestor) and rebuilds the log.
	repo2 := newRepo(s)
	got, ok := repo2.Head("main")
	if !ok {
		t.Fatal("auto-resume lost branch main")
	}
	if got.ID != head.ID {
		t.Fatalf("auto-resumed head %v, want %v", got.ID, head.ID)
	}
	log, err := repo2.Log("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != len(commits) {
		t.Fatalf("resumed log has %d commits, want %d", len(log), len(commits))
	}
	for i, c := range log { // newest first
		want := commits[len(commits)-1-i]
		if c.ID != want.ID {
			t.Fatalf("log[%d] = %v, want %v", i, c.ID, want.ID)
		}
		if !bytes.Equal(c.Meta, want.Meta) {
			t.Fatalf("log[%d] meta = %q, want %q", i, c.Meta, want.Meta)
		}
	}

	// Explicit ResumeBranch from a recorded head ID (the no-MetaStore
	// path) must accept the meta-bearing chain too.
	repo3 := version.NewRepo(store.NewMemStore())
	// Copy the commit blobs into the fresh store so the resume has
	// something to read (simulating an externally recorded head over a
	// shared store would hide encode bugs; a byte-level copy does not).
	for _, c := range commits {
		data, ok := s.Get(c.ID)
		if !ok {
			t.Fatalf("commit blob %v missing", c.ID)
		}
		repo3.Store().Put(data)
	}
	if err := repo3.ResumeBranch("main", head.ID); err != nil {
		t.Fatalf("ResumeBranch over meta-bearing commits: %v", err)
	}
	rc, ok := repo3.Lookup(commits[1].ID)
	if !ok {
		t.Fatal("resumed log lost the interior merge commit")
	}
	if !bytes.Equal(rc.Meta, commits[1].Meta) {
		t.Fatalf("resumed merge commit meta = %q, want %q", rc.Meta, commits[1].Meta)
	}
}
