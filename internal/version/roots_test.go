package version_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/store"
	"repro/internal/version"
)

// TestRootRefsRoundTrip pins the root-of-roots Meta codec: refs round
// trip exactly, foreign Meta payloads (absent, the ingest uvarint
// high-water mark, truncated encodings) are rejected rather than
// misparsed.
func TestRootRefsRoundTrip(t *testing.T) {
	refs := []version.RootRef{
		{Name: "city", Class: "MPT", Height: 0, Root: hash.Of([]byte("a"))},
		{Name: "price\x00odd", Class: "POS-Tree", Height: 7, Root: hash.Of([]byte("b"))},
		{Name: "", Class: "MBT", Height: 0, Root: hash.Null},
	}
	enc := version.EncodeRootRefs(refs)
	got, ok := version.DecodeRootRefs(enc)
	if !ok || len(got) != len(refs) {
		t.Fatalf("DecodeRootRefs = %v, %v", got, ok)
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
	if enc2 := version.EncodeRootRefs(nil); enc2 != nil {
		t.Fatalf("EncodeRootRefs(nil) = %x, want nil", enc2)
	}
	if _, ok := version.DecodeRootRefs(nil); ok {
		t.Fatal("decoded empty meta as RootRefs")
	}
	// The ingest front-end's Meta is a bare uvarint; no hwm value may
	// parse as a root-of-roots trailer.
	for _, hwm := range []uint64{0, 1, 39, 0xA7, 1 << 20, 1<<63 - 1} {
		w := codec.NewWriter(10)
		w.Uvarint(hwm)
		if _, ok := version.DecodeRootRefs(w.Bytes()); ok {
			t.Fatalf("hwm meta %d parsed as RootRefs", hwm)
		}
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, ok := version.DecodeRootRefs(enc[:cut]); ok {
			t.Fatalf("truncated encoding (%d bytes) parsed as RootRefs", cut)
		}
	}
}

// TestGCMarksMetaRoots is the regression test for the latent bug class
// this PR closes: a tree referenced only from a commit's Meta trailer —
// never from Commit.Root — must survive GC. Before multi-root marking,
// markCommit walked only the primary root and the sweep reclaimed every
// co-committed secondary tree.
func TestGCMarksMetaRoots(t *testing.T) {
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", func(st store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(st, root), nil
	})

	var primary core.Index = mpt.New(s)
	var side core.Index = mpt.New(s)
	var err error
	for i := 0; i < 40; i++ {
		if primary, err = primary.Put([]byte(fmt.Sprintf("pk-%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if side, err = side.Put([]byte(fmt.Sprintf("derived-%03d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	meta := version.EncodeRootRefs([]version.RootRef{
		{Name: "derived", Class: "MPT", Root: side.RootHash()},
	})
	head, err := repo.CommitMeta("main", primary, "multi-root", meta)
	if err != nil {
		t.Fatalf("CommitMeta: %v", err)
	}

	// Garbage that nothing reaches, to prove the sweep actually ran.
	garbage := s.Put([]byte("unreachable-node"))

	if _, err := repo.GC(head); err != nil {
		t.Fatalf("GC: %v", err)
	}
	if s.Has(garbage) {
		t.Fatal("GC swept nothing; the assertion below would be vacuous")
	}

	// Every node of the Meta-referenced tree must have survived.
	reach := make(map[hash.Hash]int)
	if err := core.MarkReachable(side, side.RootHash(), reach); err != nil {
		t.Fatalf("MarkReachable: %v", err)
	}
	if len(reach) == 0 {
		t.Fatal("side tree has no nodes; vacuous")
	}
	for h := range reach {
		if !s.Has(h) {
			t.Fatalf("GC swept node %x referenced only from Commit.Meta", h[:6])
		}
	}

	// And the tree must still be fully readable through LoadRoot.
	refs := version.MetaRoots(head)
	if len(refs) != 1 {
		t.Fatalf("MetaRoots = %v", refs)
	}
	reloaded, err := repo.LoadRoot(refs[0].Class, refs[0].Root, refs[0].Height)
	if err != nil {
		t.Fatalf("LoadRoot: %v", err)
	}
	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("derived-%03d", i))
		if _, ok, err := reloaded.Get(k); err != nil || !ok {
			t.Fatalf("meta-root tree lost %q after GC: %v, %v", k, ok, err)
		}
	}

	// The scrub must walk the meta root too: damage it and Verify must
	// report faults.
	if rep, err := repo.Verify(); err != nil || !rep.OK() {
		t.Fatalf("Verify before damage = %v, %v", rep, err)
	}
	if deleted, err := store.Delete(s, refs[0].Root); err != nil || !deleted {
		t.Fatalf("Delete meta root: %v, %v", deleted, err)
	}
	rep, err := repo.Verify()
	if err != nil {
		t.Fatalf("Verify after damage: %v", err)
	}
	if rep.OK() {
		t.Fatal("Verify missed a damaged Meta-referenced root")
	}
	found := false
	for _, f := range rep.Faults {
		if f.Node == refs[0].Root && !f.Corrupt {
			found = true
			if len(f.Commits) != 1 || f.Commits[0] != head.ID {
				t.Fatalf("fault stranding = %v, want commit %v", f.Commits, head.ID)
			}
		}
	}
	if !found {
		t.Fatalf("faults %v do not name the missing meta root", rep.Faults)
	}
}

// TestCommitMetaRootsResume asserts a multi-root commit survives reopen:
// the Meta trailer rides the commit encoding, so a fresh Repo over the
// same store decodes the same RootRefs.
func TestCommitMetaRootsResume(t *testing.T) {
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", func(st store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(st, root), nil
	})
	idx, err := mpt.New(s).Put([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	side, err := mpt.New(s).Put([]byte("d"), nil)
	if err != nil {
		t.Fatal(err)
	}
	meta := version.EncodeRootRefs([]version.RootRef{{Name: "a", Class: "MPT", Root: side.RootHash()}})
	head, err := repo.CommitMeta("main", idx, "m", meta)
	if err != nil {
		t.Fatal(err)
	}

	repo2 := version.NewRepo(s) // auto-resume through the persisted heads
	got, ok := repo2.Head("main")
	if !ok || got.ID != head.ID {
		t.Fatalf("resumed head = %v, %v", got, ok)
	}
	if !bytes.Equal(got.Meta, meta) {
		t.Fatalf("resumed Meta = %x, want %x", got.Meta, meta)
	}
	refs := version.MetaRoots(got)
	if len(refs) != 1 || refs[0].Root != side.RootHash() {
		t.Fatalf("resumed MetaRoots = %v", refs)
	}
}
