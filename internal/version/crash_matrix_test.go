package version_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
	"repro/internal/store/faultstore"
	"repro/internal/version"
)

// This file holds the robustness acceptance tests: the end-to-end scrub
// (Repo.Verify), the crash-consistency matrix — every named crash point
// fired against every backend, then reopen and verify — and the fault soak
// that must converge to byte-identical branch heads with and without
// injected faults. Run under -race.

// tamperStore serves altered bytes for chosen digests, to give Verify real
// corruption to find (no backend can be corrupted through its public
// surface — content addressing is the point).
type tamperStore struct {
	*store.MemStore
	mu  sync.Mutex
	bad map[hash.Hash]bool
}

func (ts *tamperStore) Get(h hash.Hash) ([]byte, bool) {
	data, ok := ts.MemStore.Get(h)
	ts.mu.Lock()
	tamper := ts.bad[h]
	ts.mu.Unlock()
	if ok && tamper {
		cp := append([]byte(nil), data...)
		cp[len(cp)-1] ^= 0xff
		return cp, true
	}
	return data, ok
}

func (ts *tamperStore) corrupt(h hash.Hash) {
	ts.mu.Lock()
	ts.bad[h] = true
	ts.mu.Unlock()
}

// TestVerifyCleanRepo checks the scrub walks the whole reachable graph of
// a multi-branch history and reports it intact.
func TestVerifyCleanRepo(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "MPT")
	commits := buildHistory(t, repo, cls, 6, 40, 6)
	if err := repo.Branch("fork", commits[2].ID); err != nil {
		t.Fatal(err)
	}
	rep, err := repo.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean repo verify = %s; faults: %v", rep, rep.Faults)
	}
	if rep.Commits != 6 {
		t.Fatalf("verify walked %d commits, want 6", rep.Commits)
	}
	if rep.Nodes == 0 || rep.Bytes == 0 {
		t.Fatalf("verify re-hashed nothing: %s", rep)
	}
}

// TestVerifyReportsMissingNode deletes one old version's root page and
// checks Verify pinpoints it, attributes the stranded commit, and keeps
// walking the rest of the graph.
func TestVerifyReportsMissingNode(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "MPT")
	commits := buildHistory(t, repo, cls, 5, 40, 6)
	victim := commits[1]
	if ok, err := store.Delete(s, victim.Root); err != nil || !ok {
		t.Fatalf("delete victim root: %v %v", ok, err)
	}
	rep, err := repo.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verify missed a deleted root page")
	}
	var f *version.VerifyFault
	for i := range rep.Faults {
		if rep.Faults[i].Node == victim.Root {
			f = &rep.Faults[i]
		}
	}
	if f == nil {
		t.Fatalf("no fault for the deleted root; got %v", rep.Faults)
	}
	if f.Corrupt {
		t.Fatal("deleted node reported as corrupt, want missing")
	}
	stranded := false
	for _, id := range f.Commits {
		if id == victim.ID {
			stranded = true
		}
	}
	if !stranded {
		t.Fatalf("fault does not strand the victim commit: %v", f.Commits)
	}
	// The rest of the graph was still walked: all 5 commits reached.
	if rep.Commits != 5 {
		t.Fatalf("verify stopped early: walked %d commits, want 5", rep.Commits)
	}
}

// TestVerifyReportsCorruptNode serves tampered bytes for one head commit
// blob and checks Verify flags it as corrupt (present, fails the re-hash).
func TestVerifyReportsCorruptNode(t *testing.T) {
	ts := &tamperStore{MemStore: store.NewMemStore(), bad: map[hash.Hash]bool{}}
	repo := newRepo(ts)
	cls := classByName(t, "MBT")
	commits := buildHistory(t, repo, cls, 4, 30, 5)
	head := commits[len(commits)-1]
	ts.corrupt(head.ID)
	rep, err := repo.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verify served tampered bytes as intact")
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Node != head.ID || !rep.Faults[0].Corrupt {
		t.Fatalf("faults = %v, want exactly the corrupt head blob", rep.Faults)
	}
}

// matrixBackend is one store configuration of the crash matrix. disk is
// non-nil for configurations with on-disk state, and reopen models what a
// process restart sees: for disk stores, CrashClose (nothing flushed by
// the close itself) and a fresh open of the same directory; for in-memory
// stores, the same store — a panic unwound, not a machine wiped.
type matrixBackend struct {
	name string
	open func(t *testing.T, hook func(string)) (wrapped store.Store, disk *store.DiskStore, reopen func(t *testing.T) store.Store)
}

func matrixBackends() []matrixBackend {
	diskOpts := func(hook func(string)) store.DiskOptions {
		return store.DiskOptions{
			SegmentBytes: 1 << 14, // force segment rolls within a short history
			CrashHook:    hook,
		}
	}
	return []matrixBackend{
		{"mem", func(t *testing.T, _ func(string)) (store.Store, *store.DiskStore, func(t *testing.T) store.Store) {
			s := store.NewMemStore()
			return s, nil, func(*testing.T) store.Store { return s }
		}},
		{"sharded", func(t *testing.T, _ func(string)) (store.Store, *store.DiskStore, func(t *testing.T) store.Store) {
			s := store.NewShardedStore(0)
			return s, nil, func(*testing.T) store.Store { return s }
		}},
		{"disk", func(t *testing.T, hook func(string)) (store.Store, *store.DiskStore, func(t *testing.T) store.Store) {
			dir := t.TempDir()
			d, err := store.OpenDiskStore(dir, diskOpts(hook))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d, d, func(t *testing.T) store.Store {
				d.CrashClose()
				re, err := store.OpenDiskStore(dir, store.DiskOptions{})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				t.Cleanup(func() { re.Close() })
				return re
			}
		}},
		{"cacheddisk", func(t *testing.T, hook func(string)) (store.Store, *store.DiskStore, func(t *testing.T) store.Store) {
			dir := t.TempDir()
			d, err := store.OpenDiskStore(dir, diskOpts(hook))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return store.NewCachedStore(d, 1<<20), d, func(t *testing.T) store.Store {
				d.CrashClose()
				re, err := store.OpenDiskStore(dir, store.DiskOptions{})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				t.Cleanup(func() { re.Close() })
				return store.NewCachedStore(re, 1<<20)
			}
		}},
	}
}

// matrixPoints returns the crash points exercised against one backend: the
// injector's own capability-surface points everywhere, plus DiskStore's
// internal write-path points when the backend has disk state.
func matrixPoints(hasDisk bool) []string {
	points := []string{faultstore.CrashPut, faultstore.CrashSetMeta, faultstore.CrashSweep}
	if hasDisk {
		points = append(points, store.CrashPoints()...)
	}
	return points
}

// TestCrashConsistencyMatrix is the tentpole acceptance test: for every
// crash point × backend, run a commit+GC workload until the armed point
// fires mid-operation, simulate the process death (reopen for disk-backed
// stores), and require the survivor to come back with a resumable branch,
// a clean end-to-end scrub, and a working commit path.
func TestCrashConsistencyMatrix(t *testing.T) {
	cls := classByName(t, "MPT")
	for _, be := range matrixBackends() {
		be := be
		for _, point := range matrixPoints(be.name == "disk" || be.name == "cacheddisk") {
			point := point
			t.Run(be.name+"/"+point, func(t *testing.T) {
				var fs *faultstore.FaultStore
				base, _, reopen := be.open(t, func(p string) { fs.Hook(p) })
				fs = faultstore.Wrap(base, faultstore.Config{})
				repo := newRepo(fs)

				// Seed a durable prefix before arming anything.
				seed := buildHistory(t, repo, cls, 3, 40, 8)
				seedHead := seed[len(seed)-1]

				fs.ArmCrash(point, 1)
				crashed := false
				step := func(gen int) {
					defer func() {
						if p, ok := faultstore.Recovered(recover()); ok {
							if p != point {
								t.Fatalf("crashed at %q, armed %q", p, point)
							}
							crashed = true
						}
					}()
					_, err := version.CommitRetry(repo, "main", fmt.Sprintf("crash-gen-%d", gen),
						func(idx core.Index) (core.Index, error) {
							batch := make([]core.Entry, 8)
							for j := range batch {
								batch[j] = core.Entry{Key: key(j * 3), Value: val(j*3, gen)}
							}
							return idx.PutBatch(batch)
						})
					if err != nil {
						t.Fatalf("workload commit: %v", err)
					}
					if gen%3 == 2 {
						if _, err := repo.GCRetainRecent(2); err != nil {
							t.Fatalf("workload GC: %v", err)
						}
					}
				}
				for gen := 0; gen < 40 && !crashed; gen++ {
					step(gen)
				}
				if !crashed {
					t.Fatalf("crash point %s never fired under the workload", point)
				}

				// The crash may have interrupted a GC pass between arming
				// and disarming the store barrier; a dead process holds no
				// locks, so release it before the post-mortem.
				store.DisarmBarrier(fs)

				after := reopen(t)
				repo2 := newRepo(after)
				head, ok := repo2.Head("main")
				if !ok {
					t.Fatal("branch main not resumable after crash")
				}
				// Heads move only on durable commits, so the resumed head is
				// the seed head or a successor committed before the crash.
				if head.Time < seedHead.Time {
					t.Fatalf("head rolled back past the seed: %v", head)
				}
				rep, err := repo2.Verify()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Fatalf("scrub after crash at %s found damage: %v", point, rep.Faults)
				}
				if rep.Commits == 0 || rep.Nodes == 0 {
					t.Fatalf("scrub walked nothing: %s", rep)
				}

				// The survivor keeps working: commit and re-verify.
				if _, err := version.CommitRetry(repo2, "main", "post-crash",
					func(idx core.Index) (core.Index, error) {
						return idx.PutBatch([]core.Entry{{Key: key(999), Value: val(999, 1)}})
					}); err != nil {
					t.Fatalf("post-crash commit: %v", err)
				}
				rep, err = repo2.Verify()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Fatalf("scrub after post-crash commit: %v", rep.Faults)
				}
			})
		}
	}
}

// TestFaultSoakHeadConvergence runs the same deterministic multi-branch
// workload twice — once clean, once under injected sweep failures and
// latency with concurrent GC — and requires byte-identical branch heads.
// Content addressing makes head equality transitive: equal head IDs mean
// every commit, parent link and page below them is identical too.
func TestFaultSoakHeadConvergence(t *testing.T) {
	const (
		branches = 3
		commits  = 20
	)
	cls := classByName(t, "MPT")
	epoch := time.Unix(1700000000, 0)

	run := func(t *testing.T, cfg *faultstore.Config) map[string]hash.Hash {
		base := store.NewShardedStore(0)
		var s store.Store = base
		var fs *faultstore.FaultStore
		if cfg != nil {
			fs = faultstore.Wrap(base, *cfg)
			s = fs
		}
		repo := newRepo(s)
		repo.SetClock(func() time.Time { return epoch })

		var wg sync.WaitGroup
		errs := make(chan error, branches+1)
		for b := 0; b < branches; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				branch := fmt.Sprintf("soak-%d", b)
				for v := 0; v < commits; v++ {
					_, err := version.CommitRetry(repo, branch, fmt.Sprintf("%s v%d", branch, v),
						func(idx core.Index) (core.Index, error) {
							if idx == nil {
								fresh, err := cls.new(repo.Store())
								if err != nil {
									return nil, err
								}
								idx = fresh
							}
							batch := make([]core.Entry, 6)
							for j := range batch {
								k := b*1000 + (v*7+j)%50
								batch[j] = core.Entry{Key: key(k), Value: val(k, v)}
							}
							return idx.PutBatch(batch)
						})
					if err != nil {
						errs <- fmt.Errorf("branch %s v%d: %w", branch, v, err)
						return
					}
				}
			}(b)
		}
		writersDone := make(chan struct{})
		go func() { wg.Wait(); close(writersDone) }()

		// Collector: back-to-back retention passes until the writers stop.
		// Injected sweep failures are the point — the pass must converge
		// (log pruned, hooks fired) and a later pass finishes reclamation.
		gcErrs := 0
		for done := false; !done; {
			select {
			case <-writersDone:
				done = true
			default:
			}
			if len(repo.Branches()) == 0 {
				continue
			}
			if _, err := repo.GCRetainRecent(2); err != nil {
				gcErrs++
			}
		}
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if cfg != nil && cfg.SweepFailEvery > 0 && gcErrs == 0 {
			t.Fatal("fault run injected no sweep failures; soak exercised nothing")
		}

		if fs != nil {
			fs.Heal()
		}
		rep, err := repo.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("post-soak scrub found damage: %v", rep.Faults)
		}
		heads := make(map[string]hash.Hash)
		for _, name := range repo.Branches() {
			c, ok := repo.Head(name)
			if !ok {
				t.Fatalf("branch %q lost its head", name)
			}
			heads[name] = c.ID
		}
		return heads
	}

	clean := run(t, nil)
	faulty := run(t, &faultstore.Config{
		Seed:           11,
		SweepFailEvery: 2,
		Delay:          100 * time.Microsecond,
		DelayJitter:    100 * time.Microsecond,
		DelayEvery:     13,
		VerifyReads:    true,
	})
	if len(clean) != branches || len(faulty) != branches {
		t.Fatalf("branch counts diverge: clean %d, faulty %d", len(clean), len(faulty))
	}
	for name, id := range clean {
		if got := faulty[name]; got != id {
			t.Fatalf("branch %q heads diverge: clean %x, faulty %x", name, id[:6], got[:6])
		}
	}
}
