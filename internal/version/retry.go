package version

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

// CommitRetry retry policy. The base doubles per attempt (capped) with up
// to 50% added jitter, so racing writers that all lost to the same GC pass
// do not reconverge on the store in lockstep.
const (
	commitRetryAttempts = 16
	commitRetryBase     = 500 * time.Microsecond
	commitRetryCap      = 50 * time.Millisecond
)

// CommitRetry runs mutate against the current head version of branch and
// commits the result, absorbing the ErrCommitRaced contract: a commit that
// lost its flushed pages to a concurrent GC pass is redone from a fresh
// checkout, with exponential backoff and jitter between attempts. This is
// the loop every writer that overlaps GC would otherwise hand-roll; the
// forkbase servlet's put path and the GC soak tests both commit through
// it.
//
// mutate receives the branch head's checked-out index — nil when the
// branch does not exist yet, in which case mutate must build the first
// version itself — and returns the successor version to commit. mutate may
// run more than once and must be restartable: derive the new version only
// from the index passed in, never from state captured outside the call.
// Any error from mutate aborts the loop unchanged.
func CommitRetry(r *Repo, branch, message string, mutate func(idx core.Index) (core.Index, error)) (Commit, error) {
	return CommitRetryMeta(r, branch, message, nil, mutate)
}

// CommitRetryMeta is CommitRetry with commit metadata: every attempt
// records the same meta bytes on the commit it tries (see Repo.CommitMeta).
// The ingest merge path uses it so the WAL high-water mark survives however
// many GC races the commit has to ride out.
func CommitRetryMeta(r *Repo, branch, message string, meta []byte, mutate func(idx core.Index) (core.Index, error)) (Commit, error) {
	var lastErr error
	for attempt := 0; attempt < commitRetryAttempts; attempt++ {
		if attempt > 0 {
			sleepBackoff(attempt)
		}
		idx, err := r.CheckoutBranch(branch)
		if err != nil && !errors.Is(err, ErrUnknownBranch) {
			return Commit{}, err
		}
		next, err := mutate(idx)
		if err != nil {
			return Commit{}, err
		}
		c, err := r.CommitMeta(branch, next, message, meta)
		if err == nil {
			return c, nil
		}
		if !errors.Is(err, ErrCommitRaced) {
			return Commit{}, err
		}
		lastErr = err
	}
	return Commit{}, fmt.Errorf("version: commit retry exhausted after %d attempts: %w",
		commitRetryAttempts, lastErr)
}

// sleepBackoff sleeps the capped exponential backoff for one retry
// attempt, with jitter.
func sleepBackoff(attempt int) {
	d := commitRetryBase << (attempt - 1)
	if d > commitRetryCap || d <= 0 {
		d = commitRetryCap
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	time.Sleep(d)
}
