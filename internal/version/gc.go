package version

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// GCStats is the accounting of one GC pass: the marked live set and the
// store's sweep result.
type GCStats struct {
	// RetainedCommits is how many distinct commits were kept.
	RetainedCommits int
	// DroppedCommits is how many commits left the log.
	DroppedCommits int
	// LiveNodes and LiveBytes measure the marked set: the union of every
	// retained version's reachable pages plus the commit blobs — the
	// deduplicated footprint byte(P1 ∪ … ∪ Pk) of §4.2, now enforced as
	// the store's entire contents.
	LiveNodes int
	LiveBytes int64
	// BarrierNodes is how many distinct digests landed in the pass's write
	// barrier — the write traffic that overlapped the pass and was kept
	// live unconditionally. Zero on stores without the barrier capability.
	BarrierNodes int
	// Store is the sweep accounting from the store backend, including
	// DiskStore segment compactions.
	Store store.SweepStats
}

// String renders the stats in a compact single line for logs.
func (g GCStats) String() string {
	return fmt.Sprintf("retained=%d commits dropped=%d live=%d nodes/%d B barrier=%d store{%s}",
		g.RetainedCommits, g.DroppedCommits, g.LiveNodes, g.LiveBytes, g.BarrierNodes, g.Store)
}

// gcPass is the shared state of one concurrent GC pass, published in
// Repo.gcPass for the pass's lifetime.
type gcPass struct {
	// barrier records every digest written to the store since mark start;
	// everything in it is unconditionally live for this pass.
	barrier *store.Barrier
	// live is the marked set (digest → encoded size). Only the GC
	// goroutine writes it, and only before the sweeping transition; the
	// transition happens under r.mu, so the commit gate's reads of the
	// then-immutable map are ordered after every write.
	live map[hash.Hash]int
	// walked records the commit IDs whose versions have been marked into
	// live. Only the GC goroutine touches it.
	walked map[hash.Hash]bool
	// sweeping flips under r.mu in the same critical section that prunes
	// the log; from then until the pass retires, commits of uncovered
	// roots wait the pass out (see gcAdmitCommitLocked).
	sweeping bool
}

// covered reports whether a version root is safe under this pass: marked
// live, or written since the barrier was armed.
func (p *gcPass) covered(root hash.Hash) bool {
	if _, ok := p.live[root]; ok {
		return true
	}
	return p.barrier != nil && p.barrier.Has(root)
}

// rootsCovered reports whether every root a commit carries — the primary
// plus any Meta-trailer RootRefs — is covered by this pass. A multi-root
// commit is only safe when all of its trees are.
func (p *gcPass) rootsCovered(c Commit) bool {
	if !c.Root.IsNull() && !p.covered(c.Root) {
		return false
	}
	for _, ref := range MetaRoots(c) {
		if !ref.Root.IsNull() && !p.covered(ref.Root) {
			return false
		}
	}
	return true
}

// GC reclaims every store node unreachable from the retained commits:
// mark computes the union of the retained versions' reachable node sets
// (plus the retained commit blobs, pinned versions, and everything written
// while the pass ran), sweep hands the complement to the store's Sweeper
// capability. Commits outside the retained set are dropped from the log;
// every branch head must be among the retained commits at the moment the
// pass starts (ErrHeadNotRetained otherwise — delete the branch first if
// its history should go, or use GCRetainRecent to choose the set
// atomically under concurrent writers).
//
// On stores with the write-barrier capability (all four built-in
// backends) the pass runs concurrently with commits, checkouts and reads:
// the repo lock is held only to snapshot the retained set, to prune the
// log, and to fire the OnGC hooks. Stores without the capability get the
// old stop-the-world pass under the lock. See the package documentation
// for what callers may do mid-pass.
//
// A sweep failure is reported, but the pass still converges: the log was
// already pruned, and the OnGC hooks still fire with the pass's predicate,
// so no cache or log entry survives pointing at nodes the partial sweep
// reclaimed. A later GC retries the reclamation.
func (r *Repo) GC(retain ...Commit) (GCStats, error) {
	if len(retain) == 0 {
		return GCStats{}, errors.New("version: GC requires at least one retained commit")
	}
	return r.gcRun(func() ([]Commit, map[hash.Hash]bool, error) {
		keep := make(map[hash.Hash]bool, len(retain))
		seeds := make([]Commit, 0, len(retain))
		for _, c := range retain {
			cur, ok := r.commits[c.ID]
			if !ok {
				return nil, nil, fmt.Errorf("%w: retained %v", ErrUnknownCommit, c.ID)
			}
			if !keep[cur.ID] {
				keep[cur.ID] = true
				seeds = append(seeds, cur)
			}
		}
		for name, head := range r.branches {
			if !keep[head] {
				return nil, nil, fmt.Errorf("%w: branch %q head %x (delete the branch or retain its head)",
					ErrHeadNotRetained, name, head[:6])
			}
		}
		return seeds, keep, nil
	})
}

// GCRetainRecent runs a GC pass retaining the newest n commits of every
// branch (following first parents). The retained set is computed inside
// the pass's initial critical section, so it can never race a concurrent
// writer advancing a head — the way to express "keep the last n" on a live
// repo.
func (r *Repo) GCRetainRecent(n int) (GCStats, error) {
	if n < 1 {
		return GCStats{}, errors.New("version: GCRetainRecent requires n >= 1")
	}
	return r.gcRun(func() ([]Commit, map[hash.Hash]bool, error) {
		if len(r.branches) == 0 {
			return nil, nil, errors.New("version: GCRetainRecent: repo has no branches")
		}
		keep := make(map[hash.Hash]bool)
		var seeds []Commit
		for _, head := range r.branches {
			id := head
			for i := 0; i < n; i++ {
				c, ok := r.commits[id]
				if !ok {
					break // shallow boundary left by an earlier GC
				}
				if !keep[id] {
					keep[id] = true
					seeds = append(seeds, c)
				}
				if len(c.Parents) == 0 {
					break
				}
				id = c.Parents[0]
			}
		}
		return seeds, keep, nil
	})
}

// gcRun drives one pass. collect runs under r.mu and returns the seed
// commits to mark plus the retained-ID set.
//
// The pass structure, and why each step is safe against live traffic:
//
//  1. Lock A: collect the retained set, arm the store's write barrier,
//     publish the pass, snapshot pins and loaders. From here on, every
//     node written to the store is recorded in the barrier and treated as
//     live, so mutations started after this instant cannot lose data to
//     the pass.
//  2. Mark, unlocked: walk the retained and pinned versions into the live
//     set while commits, checkouts and reads proceed.
//  3. Gate: re-check, under the lock, for commits that gained protection
//     while marking ran — a pin taken on a pre-barrier commit, a branch
//     reattached to one — and mark those too; repeat until a check finds
//     nothing new (the set of pre-barrier commits is finite and walked
//     monotonically, so this terminates). The final check, finding
//     nothing, prunes the log and flips the pass to sweeping in the same
//     critical section: after it, no checkout, pin or resume can reach a
//     doomed commit, because doomed commits are no longer in the log.
//  4. Sweep, unlocked: the backend unions the armed barrier into the live
//     predicate itself.
//  5. Lock C: fire the OnGC hooks (always — even on sweep failure, so
//     caches drop whatever a partial sweep reclaimed), retire the pass,
//     wake commits that waited on it, disarm the barrier.
func (r *Repo) gcRun(collect func() ([]Commit, map[hash.Hash]bool, error)) (GCStats, error) {
	r.gcMu.Lock()
	defer r.gcMu.Unlock()
	var st GCStats

	// Lock A.
	r.mu.Lock()
	seeds, keep, err := collect()
	if err != nil {
		r.mu.Unlock()
		return st, err
	}
	bar, err := store.ArmBarrier(r.s)
	if err != nil {
		if errors.Is(err, store.ErrNoBarrier) {
			// No barrier capability: run the stop-the-world fallback under
			// the lock we already hold.
			defer r.mu.Unlock()
			return r.gcStopTheWorldLocked(seeds, keep)
		}
		r.mu.Unlock()
		return st, fmt.Errorf("version: GC: %w", err)
	}
	pass := &gcPass{
		barrier: bar,
		live:    make(map[hash.Hash]int),
		walked:  make(map[hash.Hash]bool, len(seeds)),
	}
	r.gcPass = pass
	for id, e := range r.pins {
		if !keep[id] {
			seeds = append(seeds, e.c)
		}
	}
	loaders := make(map[string]Loader, len(r.loaders))
	for class, l := range r.loaders {
		loaders[class] = l
	}
	r.mu.Unlock()

	abort := func() {
		r.mu.Lock()
		r.gcPass = nil
		r.gcCond.Broadcast()
		r.mu.Unlock()
		store.DisarmBarrier(r.s)
	}

	// Mark, unlocked.
	for _, c := range seeds {
		if err := r.markCommit(pass, loaders, c); err != nil {
			abort()
			return st, err
		}
	}

	// Gate. protected reports whether a commit's version survives the
	// sweep without a walk: marked already, retained, or born entirely
	// inside the pass — blob AND root both barrier-covered, so its novel
	// pages are in the barrier and its inherited pages belong to an
	// already-protected parent. The root check matters: a version can be
	// flushed before the barrier armed and committed after, in which case
	// the commit blob is barrier-covered but the tree is not — skipping
	// the walk for such a commit would let the sweep eat a live version.
	protected := func(c Commit) bool {
		if keep[c.ID] || pass.walked[c.ID] {
			return true
		}
		return bar.Has(c.ID) && pass.rootsCovered(c)
	}
	for {
		r.mu.Lock()
		var extras []Commit
		for _, e := range r.pins {
			if !protected(e.c) {
				extras = append(extras, e.c)
			}
		}
		for _, head := range r.branches {
			if c, ok := r.commits[head]; ok && !protected(c) {
				extras = append(extras, c)
			}
		}
		for id, c := range r.commits {
			// A commit born during the pass (blob barrier-covered) whose
			// version was flushed before the barrier armed needs a walk even
			// after the branch moves past it: later commits inherit its
			// pages, and their own barrier coverage spans only their novel
			// nodes.
			if bar.Has(id) && !protected(c) {
				extras = append(extras, c)
			}
		}
		if len(extras) == 0 {
			for id, c := range r.commits {
				if protected(c) {
					continue
				}
				delete(r.commits, id)
				st.DroppedCommits++
			}
			pass.sweeping = true
			r.mu.Unlock()
			break
		}
		r.mu.Unlock()
		// The extras are finite across the whole loop: only versions
		// flushed before the barrier armed can be unprotected, and each
		// walk moves one of them into walked for good. Commits born after
		// the arm are always protected, so a busy writer cannot keep the
		// gate spinning.
		for _, c := range extras {
			if err := r.markCommit(pass, loaders, c); err != nil {
				abort()
				return st, err
			}
		}
	}

	st.RetainedCommits = len(keep)
	st.LiveNodes = len(pass.live)
	for _, sz := range pass.live {
		st.LiveBytes += int64(sz)
	}

	// Sweep, unlocked. The backend unions the armed barrier itself, so the
	// predicate here is the pure mark set.
	sw, sweepErr := store.Sweep(r.s, func(h hash.Hash) bool {
		_, ok := pass.live[h]
		return ok
	})
	st.Store = sw

	// Lock C.
	isLive := func(h hash.Hash) bool { return pass.covered(h) }
	r.mu.Lock()
	for _, hook := range r.gcHooks {
		hook(isLive)
	}
	r.gcPass = nil
	r.gcCond.Broadcast()
	r.mu.Unlock()
	store.DisarmBarrier(r.s)

	st.BarrierNodes = bar.Len()
	if sweepErr != nil {
		return st, fmt.Errorf("version: GC sweep: %w", sweepErr)
	}
	return st, nil
}

// markCommit accumulates one commit's blob and its version's reachable
// pages into the pass's live set — the primary root plus every extra root
// the commit's Meta trailer references (secondary indexes co-committed
// through RootRefs), so a sweep never strands a co-committed tree. It
// runs without the repo lock — it touches only the pass (single GC
// goroutine) and reads the store, which is safe under concurrent writers.
func (r *Repo) markCommit(p *gcPass, loaders map[string]Loader, c Commit) error {
	if p.walked[c.ID] {
		return nil
	}
	if data, ok := r.s.Get(c.ID); ok {
		p.live[c.ID] = len(data)
	}
	if !c.Root.IsNull() {
		l, ok := loaders[c.Class]
		if !ok {
			return fmt.Errorf("version: GC mark %s: %w: %q", c, ErrNoLoader, c.Class)
		}
		idx, err := l(r.s, c.Root, c.Height)
		if err != nil {
			return fmt.Errorf("version: GC mark %s: %w", c, err)
		}
		if err := core.MarkReachable(idx, c.Root, p.live); err != nil {
			return fmt.Errorf("version: GC mark %s: %w", c, err)
		}
	}
	for _, ref := range MetaRoots(c) {
		if err := r.markRoot(p, loaders, ref); err != nil {
			return fmt.Errorf("version: GC mark %s: %w", c, err)
		}
	}
	p.walked[c.ID] = true
	return nil
}

// gcStopTheWorldLocked is the fallback for stores without the write
// barrier: the whole pass runs under r.mu, so commits and checkouts block
// for its duration — the pre-concurrent-GC behavior, kept for foreign
// Store implementations. The failure path still converges: the log is
// pruned before the sweep and the hooks always fire. Caller holds r.mu
// (write) and r.gcMu.
func (r *Repo) gcStopTheWorldLocked(seeds []Commit, keep map[hash.Hash]bool) (GCStats, error) {
	var st GCStats
	for id, e := range r.pins {
		if !keep[id] {
			seeds = append(seeds, e.c)
		}
	}
	pass := &gcPass{
		live:   make(map[hash.Hash]int),
		walked: make(map[hash.Hash]bool, len(seeds)),
	}
	for _, c := range seeds {
		if err := r.markCommit(pass, r.loaders, c); err != nil {
			return st, err
		}
	}
	st.RetainedCommits = len(keep)
	st.LiveNodes = len(pass.live)
	for _, sz := range pass.live {
		st.LiveBytes += int64(sz)
	}
	// Prune before sweeping, so a sweep failure cannot leave the log
	// pointing at half-reclaimed versions.
	for id := range r.commits {
		if keep[id] || pass.walked[id] {
			continue
		}
		delete(r.commits, id)
		st.DroppedCommits++
	}
	isLive := func(h hash.Hash) bool {
		_, ok := pass.live[h]
		return ok
	}
	sw, sweepErr := store.Sweep(r.s, isLive)
	st.Store = sw
	for _, hook := range r.gcHooks {
		hook(isLive)
	}
	if sweepErr != nil {
		return st, fmt.Errorf("version: GC sweep: %w", sweepErr)
	}
	return st, nil
}

// gcAdmitCommitLocked is Repo.Commit's rendezvous with a concurrent GC
// pass. While a pass is sweeping, a commit whose root is neither marked
// nor barrier-recorded waits the pass out — its version was flushed before
// mark start and unreachable from everything retained, so the sweep may be
// deleting it right now. After any wait (and, cheaply, always) the root's
// presence is re-checked: a missing root means the version is gone and the
// caller must redo the mutation (ErrCommitRaced). Caller holds r.mu.
func (r *Repo) gcAdmitCommitLocked(root hash.Hash) error {
	if root.IsNull() {
		return nil
	}
	for {
		p := r.gcPass
		if p == nil || !p.sweeping || p.covered(root) {
			break
		}
		for r.gcPass == p {
			r.gcCond.Wait()
		}
	}
	if !r.s.Has(root) {
		return fmt.Errorf("%w (root %x)", ErrCommitRaced, root[:6])
	}
	return nil
}
