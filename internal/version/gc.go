package version

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// GCStats is the accounting of one GC pass: the marked live set and the
// store's sweep result.
type GCStats struct {
	// RetainedCommits is how many distinct commits were kept.
	RetainedCommits int
	// DroppedCommits is how many commits left the log.
	DroppedCommits int
	// LiveNodes and LiveBytes measure the marked set: the union of every
	// retained version's reachable pages plus the commit blobs — the
	// deduplicated footprint byte(P1 ∪ … ∪ Pk) of §4.2, now enforced as
	// the store's entire contents.
	LiveNodes int
	LiveBytes int64
	// Store is the sweep accounting from the store backend, including
	// DiskStore segment compactions.
	Store store.SweepStats
}

// String renders the stats in a compact single line for logs.
func (g GCStats) String() string {
	return fmt.Sprintf("retained=%d commits dropped=%d live=%d nodes/%d B store{%s}",
		g.RetainedCommits, g.DroppedCommits, g.LiveNodes, g.LiveBytes, g.Store)
}

// GC reclaims every store node unreachable from the retained commits:
// mark computes the union of the retained versions' reachable node sets
// (plus the retained commit blobs), sweep hands the complement to the
// store's Sweeper capability. Commits outside the retained set are dropped
// from the log; every branch head must be among the retained commits
// (delete the branch first if its history should go).
//
// Safety: GC must not run concurrently with Repo.Commit or any index
// mutation (including an in-flight core.StagedWriter commit) over the same
// store — see the package documentation. Concurrent readers of retained
// versions are safe.
func (r *Repo) GC(retain ...Commit) (GCStats, error) {
	var st GCStats
	if len(retain) == 0 {
		return st, errors.New("version: GC requires at least one retained commit")
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	keep := make(map[hash.Hash]bool, len(retain))
	for _, c := range retain {
		if _, ok := r.commits[c.ID]; !ok {
			return st, fmt.Errorf("%w: retained %v", ErrUnknownCommit, c.ID)
		}
		keep[c.ID] = true
	}
	for name, head := range r.branches {
		if !keep[head] {
			return st, fmt.Errorf("version: branch %q head %x not in the retained set (delete the branch or retain its head)", name, head[:6])
		}
	}

	// Mark. live maps node digest → encoded size, exactly the accumulator
	// core.Reachable fills; passing one map across versions unions the
	// page sets, so shared pages are walked once.
	live := make(map[hash.Hash]int)
	for id := range keep {
		c := r.commits[id]
		if data, ok := r.s.Get(id); ok {
			live[id] = len(data)
		}
		if c.Root.IsNull() {
			continue // empty version: only the commit blob is live
		}
		idx, err := r.checkoutLocked(c)
		if err != nil {
			return st, fmt.Errorf("version: GC mark %s: %w", c, err)
		}
		w, ok := idx.(core.NodeWalker)
		if !ok {
			return st, fmt.Errorf("version: GC mark %s: %s exposes no node refs", c, c.Class)
		}
		if _, err := core.Reachable(idx, w, c.Root, live); err != nil {
			return st, fmt.Errorf("version: GC mark %s: %w", c, err)
		}
	}
	st.LiveNodes = len(live)
	for _, sz := range live {
		st.LiveBytes += int64(sz)
	}

	// Sweep.
	sw, err := store.Sweep(r.s, func(h hash.Hash) bool {
		_, ok := live[h]
		return ok
	})
	st.Store = sw
	if err != nil {
		return st, fmt.Errorf("version: GC sweep: %w", err)
	}

	// Prune the log to the survivors.
	for id := range r.commits {
		if !keep[id] {
			delete(r.commits, id)
			st.DroppedCommits++
		}
	}
	st.RetainedCommits = len(keep)

	// Eager cache purge: hand the pass's liveness predicate to every
	// registered OnGC hook so decoded-node caches and client-side store
	// caches evict swept digests now instead of waiting for LRU churn.
	if len(r.gcHooks) > 0 {
		isLive := func(h hash.Hash) bool {
			_, ok := live[h]
			return ok
		}
		for _, hook := range r.gcHooks {
			hook(isLive)
		}
	}
	return st, nil
}
