package version

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Commit is one recorded index version. Commits are immutable and
// content-addressed: ID is the SHA-256 digest of the canonical encoding of
// every other field, and the encoding is stored as a node in the same store
// as the index pages it refers to.
type Commit struct {
	// ID is the digest of the commit's canonical encoding (assigned by
	// Repo.Commit / ReadCommit, never set by callers).
	ID hash.Hash
	// Root is the committed index version's Merkle root.
	Root hash.Hash
	// Parents are the IDs of the commits this one descends from: one for a
	// plain head advance, zero for a history's first commit. (The slice is
	// shared, not copied; treat it as immutable.)
	Parents []hash.Hash
	// Class names the index structure that produced Root (core.Index.Name,
	// e.g. "MPT"), keying the Loader used to check the version out.
	Class string
	// Height is the index tree height at commit time; POS-Tree, Prolly
	// Tree and the MVMB+-Tree need it to Load a root. Zero for classes
	// that derive their depth from the data (MPT, MBT).
	Height int
	// Time is the commit wall-clock time in Unix nanoseconds. Metadata
	// only — nothing orders commits by it.
	Time int64
	// Message is the human-readable commit description.
	Message string
	// Meta is opaque application metadata carried by the commit — the
	// ingest front-end records its WAL high-water mark here so replay
	// after a crash is idempotent. Empty and nil are canonically the same
	// (both encode as "absent"), keeping plain commits byte-identical to
	// the pre-metadata encoding. Treat the slice as immutable.
	Meta []byte
}

// When returns the commit time as a time.Time.
func (c Commit) When() time.Time { return time.Unix(0, c.Time) }

// String renders the commit for logs: short ID, class and message.
func (c Commit) String() string {
	return fmt.Sprintf("%x %s %q", c.ID[:6], c.Class, c.Message)
}

// commitTag is the node-kind byte of a commit encoding. It cannot collide
// with index node encodings in practice — content addressing means a
// collision would require identical bytes, not just an identical tag.
const commitTag = 0xC0

// encodeCommit produces the canonical encoding hashed into the commit ID.
// Meta is a trailing optional field: it is written only when non-empty, so
// commits without metadata keep the exact encoding (and IDs) they had
// before the field existed, and decodeCommit treats a missing trailer as
// nil.
func encodeCommit(c Commit) []byte {
	w := codec.NewWriter(64 + len(c.Message) + 32*len(c.Parents) + len(c.Meta))
	w.Byte(commitTag)
	w.Bytes32(c.Root[:])
	w.LenBytes([]byte(c.Class))
	w.Uvarint(uint64(c.Height))
	w.Uvarint(uint64(c.Time))
	w.LenBytes([]byte(c.Message))
	w.Uvarint(uint64(len(c.Parents)))
	for _, p := range c.Parents {
		w.Bytes32(p[:])
	}
	if len(c.Meta) > 0 {
		w.LenBytes(c.Meta)
	}
	return w.Bytes()
}

// decodeCommit parses a canonical commit encoding (without assigning ID).
func decodeCommit(data []byte) (Commit, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil || tag != commitTag {
		return Commit{}, fmt.Errorf("version: not a commit encoding (tag %#x, err %v)", tag, err)
	}
	var c Commit
	rootB, err := r.Bytes32()
	if err != nil {
		return Commit{}, fmt.Errorf("version: decode commit root: %w", err)
	}
	copy(c.Root[:], rootB)
	classB, err := r.LenBytes()
	if err != nil {
		return Commit{}, fmt.Errorf("version: decode commit class: %w", err)
	}
	c.Class = string(classB)
	height, err := r.Uvarint()
	if err != nil {
		return Commit{}, fmt.Errorf("version: decode commit height: %w", err)
	}
	c.Height = int(height)
	t, err := r.Uvarint()
	if err != nil {
		return Commit{}, fmt.Errorf("version: decode commit time: %w", err)
	}
	c.Time = int64(t)
	msgB, err := r.LenBytes()
	if err != nil {
		return Commit{}, fmt.Errorf("version: decode commit message: %w", err)
	}
	c.Message = string(msgB)
	np, err := r.Uvarint()
	if err != nil {
		return Commit{}, fmt.Errorf("version: decode commit parents: %w", err)
	}
	if np > uint64(r.Remaining())/hash.Size {
		return Commit{}, fmt.Errorf("version: commit parent count %d exceeds encoding", np)
	}
	c.Parents = make([]hash.Hash, np)
	for i := range c.Parents {
		pb, err := r.Bytes32()
		if err != nil {
			return Commit{}, fmt.Errorf("version: decode commit parent %d: %w", i, err)
		}
		copy(c.Parents[i][:], pb)
	}
	if r.Remaining() > 0 {
		// Optional metadata trailer — present on merge commits from the
		// ingest front-end. Older commits stop at the parents; rejecting
		// the trailer here would make every branch whose head is a merge
		// commit unresumable after reopen (the reopen-mid-ingest scenario).
		mb, err := r.LenBytes()
		if err != nil {
			return Commit{}, fmt.Errorf("version: decode commit meta: %w", err)
		}
		c.Meta = append([]byte(nil), mb...)
	}
	if err := r.Done(); err != nil {
		return Commit{}, fmt.Errorf("version: commit encoding: %w", err)
	}
	return c, nil
}

// ReadCommit fetches and decodes the commit stored under id — the entry
// point for resuming a history from a reopened store, where only the head
// ID is known externally.
func ReadCommit(s store.Store, id hash.Hash) (Commit, error) {
	data, ok := s.Get(id)
	if !ok {
		return Commit{}, fmt.Errorf("%w: commit %v", core.ErrMissingNode, id)
	}
	c, err := decodeCommit(data)
	if err != nil {
		return Commit{}, err
	}
	c.ID = id
	return c, nil
}
