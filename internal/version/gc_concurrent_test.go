package version_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
	"repro/internal/version"
)

// This file tests the concurrent-GC contract: the write barrier, the
// commit gate, reader pins, the convergent sweep-failure path, and — the
// acceptance soak — Checkout/Get/Range/Commit racing repeated GC passes
// across all four backends under -race.

// buildHistory commits n versions of cls on branch "main" and returns the
// commits, oldest first. Each version updates `updates` keys of the keySpace.
func buildHistory(t *testing.T, repo *version.Repo, cls indexClass, n, keySpace, updates int) []version.Commit {
	t.Helper()
	idx, err := cls.new(repo.Store())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	commits := make([]version.Commit, 0, n)
	for v := 0; v < n; v++ {
		batch := make([]core.Entry, updates)
		for j := range batch {
			k := rng.Intn(keySpace)
			batch[j] = core.Entry{Key: key(k), Value: val(k, v)}
		}
		idx, err = idx.PutBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		c, err := repo.Commit("main", idx, fmt.Sprintf("v%d", v))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
	}
	return commits
}

// faultSweeper wraps a MemStore so its first Sweep reclaims only `partial`
// dead nodes and then fails — the fault injection for the sweep-failure
// satellite. The embedded MemStore keeps every other capability (barrier
// included) intact.
type faultSweeper struct {
	*store.MemStore
	failures int
	partial  int
}

func (f *faultSweeper) Sweep(live store.LiveFunc) (store.SweepStats, error) {
	if f.failures <= 0 {
		return f.MemStore.Sweep(live)
	}
	f.failures--
	// Admit only the first `partial` distinct dead hashes for sweeping, and
	// answer consistently on re-checks: MemStore's two-phase sweep consults
	// the predicate again before each delete.
	admitted := make(map[hash.Hash]bool)
	st, err := f.MemStore.Sweep(func(h hash.Hash) bool {
		if live(h) {
			return true
		}
		if admitted[h] {
			return false
		}
		if len(admitted) >= f.partial {
			return true // pretend live: this dead node is left unswept
		}
		admitted[h] = true
		return false
	})
	if err != nil {
		return st, err
	}
	return st, errors.New("injected sweep failure")
}

// TestGCSweepFailureConverges pins the satellite fix: when the store's
// Sweep fails partway, the pass must still prune the log and fire the OnGC
// hooks with its predicate — otherwise the log and the decoded-node caches
// keep referencing nodes the partial sweep already deleted. A later GC
// finishes the reclamation.
func TestGCSweepFailureConverges(t *testing.T) {
	s := &faultSweeper{MemStore: store.NewMemStore(), failures: 1, partial: 10}
	repo := newRepo(s)
	cls := classByName(t, "POS-Tree")
	commits := buildHistory(t, repo, cls, 10, 60, 8)
	retained := commits[len(commits)-3:]
	dropped := commits[:len(commits)-3]

	probeKeys := make([][]byte, 60)
	for i := range probeKeys {
		probeKeys[i] = key(i)
	}
	view, err := repo.Checkout(retained[2].ID)
	if err != nil {
		t.Fatal(err)
	}
	probe := snapshotVersion(t, view, retained[2], probeKeys)

	hookCalls := 0
	repo.OnGC(func(live store.LiveFunc) {
		hookCalls++
		if !live(retained[2].Root) {
			t.Error("OnGC predicate rejects a retained root")
		}
	})

	st, err := repo.GC(retained[0], retained[1], retained[2])
	if err == nil {
		t.Fatal("GC with injected sweep failure returned nil error")
	}
	if st.Store.SweptNodes == 0 {
		t.Fatalf("fault sweeper reclaimed nothing: %+v", st)
	}
	if hookCalls != 1 {
		t.Fatalf("OnGC hooks ran %d times after a failed sweep, want 1", hookCalls)
	}
	if st.DroppedCommits != len(dropped) {
		t.Fatalf("failed pass dropped %d commits, want %d", st.DroppedCommits, len(dropped))
	}
	for _, c := range dropped {
		if _, ok := repo.Lookup(c.ID); ok {
			t.Fatalf("dropped commit %v still in log after failed sweep", c)
		}
	}
	// The retained version is untouched by the partial sweep.
	checkVersion(t, repo, probe, probeKeys)

	// A second pass converges: no injected failure left, the remaining
	// garbage goes.
	st2, err := repo.GC(retained[0], retained[1], retained[2])
	if err != nil {
		t.Fatalf("second GC after failed sweep: %v", err)
	}
	if st2.Store.SweptNodes == 0 {
		t.Fatalf("second GC swept nothing; first pass left no garbage? %+v", st2)
	}
	if hookCalls != 2 {
		t.Fatalf("OnGC hooks ran %d times total, want 2", hookCalls)
	}
	checkVersion(t, repo, probe, probeKeys)
}

// gateSweeper wraps a MemStore so Sweep parks until released — it holds a
// GC pass open in its sweeping phase so the test can probe the commit gate
// deterministically.
type gateSweeper struct {
	*store.MemStore
	enter   chan struct{}
	release chan struct{}
}

func (g *gateSweeper) Sweep(live store.LiveFunc) (store.SweepStats, error) {
	g.enter <- struct{}{}
	<-g.release
	return g.MemStore.Sweep(live)
}

// TestGCCommitGate drives both sides of the commit/GC rendezvous:
//
//   - a version flushed BEFORE the pass armed its barrier, committed while
//     the pass sweeps, must wait the pass out and fail with ErrCommitRaced
//     once the sweep has reclaimed its pages;
//   - a version flushed AFTER the barrier was armed commits immediately,
//     mid-sweep, without waiting.
func TestGCCommitGate(t *testing.T) {
	s := &gateSweeper{
		MemStore: store.NewMemStore(),
		enter:    make(chan struct{}),
		release:  make(chan struct{}),
	}
	repo := newRepo(s)
	cls := classByName(t, "POS-Tree")
	commits := buildHistory(t, repo, cls, 5, 40, 6)
	head := commits[len(commits)-1]

	// Flush a version now — before the pass starts. Its pages are
	// unreachable from every commit until Repo.Commit records it.
	headView, err := repo.Checkout(head.ID)
	if err != nil {
		t.Fatal(err)
	}
	preFlush, err := headView.PutBatch([]core.Entry{{Key: key(900), Value: val(900, 1)}})
	if err != nil {
		t.Fatal(err)
	}

	gcDone := make(chan error, 1)
	go func() {
		_, err := repo.GC(head)
		gcDone <- err
	}()
	<-s.enter // the pass is in its sweeping phase, parked in Sweep

	// Side 1: committing the pre-barrier version must block (its root is
	// neither marked nor in the barrier).
	commitDone := make(chan error, 1)
	go func() {
		_, err := repo.Commit("main", preFlush, "raced")
		commitDone <- err
	}()
	select {
	case err := <-commitDone:
		t.Fatalf("commit of a doomed pre-barrier version returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Side 2: a mutation started during the pass (barrier-covered) commits
	// without waiting, even though the sweep is still parked.
	duringView, err := repo.Checkout(head.ID)
	if err != nil {
		t.Fatal(err)
	}
	duringIdx, err := duringView.PutBatch([]core.Entry{{Key: key(901), Value: val(901, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	barrierCommit := make(chan error, 1)
	go func() {
		_, err := repo.Commit("main", duringIdx, "under barrier")
		barrierCommit <- err
	}()
	select {
	case err := <-barrierCommit:
		if err != nil {
			t.Fatalf("barrier-covered commit failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier-covered commit blocked behind the sweep")
	}

	close(s.release)
	if err := <-gcDone; err != nil {
		t.Fatalf("GC: %v", err)
	}
	err = <-commitDone
	if !errors.Is(err, version.ErrCommitRaced) {
		t.Fatalf("pre-barrier commit after the sweep = %v, want ErrCommitRaced", err)
	}

	// The branch is healthy: the barrier-covered commit is the head and
	// reads fine.
	after, err := repo.CheckoutBranch("main")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := after.Get(key(901)); err != nil || !ok || !bytes.Equal(v, val(901, 1)) {
		t.Fatalf("post-GC head read = %q ok=%v err=%v", v, ok, err)
	}
}

// TestPinKeepsVersionAcrossGC: a pinned old version survives passes that
// would drop it — log entry, pages, proofs — and is reclaimed by the first
// pass after the pin is released.
func TestPinKeepsVersionAcrossGC(t *testing.T) {
	s := store.NewShardedStore(0)
	repo := newRepo(s)
	cls := classByName(t, "MPT")
	commits := buildHistory(t, repo, cls, 12, 60, 8)
	old := commits[2] // far outside the retained window

	probeKeys := make([][]byte, 60)
	for i := range probeKeys {
		probeKeys[i] = key(i)
	}
	pinnedView, pin, err := repo.CheckoutPinned(old.ID)
	if err != nil {
		t.Fatal(err)
	}
	probe := snapshotVersion(t, pinnedView, old, probeKeys)

	for round := 0; round < 2; round++ {
		if _, err := repo.GCRetainRecent(3); err != nil {
			t.Fatalf("GC round %d: %v", round, err)
		}
		if _, ok := repo.Lookup(old.ID); !ok {
			t.Fatalf("pinned commit left the log in GC round %d", round)
		}
		checkVersion(t, repo, probe, probeKeys)
	}

	pin.Release()
	pin.Release() // redundant release is a no-op
	if _, err := repo.GCRetainRecent(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := repo.Lookup(old.ID); ok {
		t.Fatal("released commit still in log after GC")
	}
	if _, err := repo.Checkout(old.ID); !errors.Is(err, version.ErrUnknownCommit) {
		t.Fatalf("checkout of reclaimed commit = %v, want ErrUnknownCommit", err)
	}
}

// TestGCRetainRecent covers the atomic retention helper: newest n per
// branch survive, everything older goes, and the head stays byte-correct.
func TestGCRetainRecent(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "Prolly-Tree")
	commits := buildHistory(t, repo, cls, 10, 50, 6)

	st, err := repo.GCRetainRecent(4)
	if err != nil {
		t.Fatal(err)
	}
	if st.RetainedCommits != 4 || st.DroppedCommits != 6 {
		t.Fatalf("GCRetainRecent counts = %+v, want 4 retained / 6 dropped", st)
	}
	for _, c := range commits[:6] {
		if _, ok := repo.Lookup(c.ID); ok {
			t.Fatalf("commit %v outside the window survived", c)
		}
	}
	for _, c := range commits[6:] {
		if _, ok := repo.Lookup(c.ID); !ok {
			t.Fatalf("commit %v inside the window was dropped", c)
		}
	}
	if _, err := repo.GCRetainRecent(0); err == nil {
		t.Fatal("GCRetainRecent(0) did not fail")
	}
}

// TestGCHeadNotRetained pins the sentinel for the stale-retained-set race.
func TestGCHeadNotRetained(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	cls := classByName(t, "MBT")
	commits := buildHistory(t, repo, cls, 3, 30, 5)
	if _, err := repo.GC(commits[0]); !errors.Is(err, version.ErrHeadNotRetained) {
		t.Fatalf("GC omitting the head = %v, want ErrHeadNotRetained", err)
	}
}

// TestGCConcurrentSoak is the acceptance soak: one writer advancing the
// branch, readers hammering Checkout/Get/Range/Prove on the moving head
// and on a pinned baseline, and a GC goroutine running back-to-back
// retention passes — across all four backends, under -race. Retained
// roots, gets and proofs must stay byte-identical throughout.
func TestGCConcurrentSoak(t *testing.T) {
	const (
		keySpace    = 60
		updates     = 6
		baseline    = 8 // versions committed before the race starts
		soakTime    = 800 * time.Millisecond
		retainDepth = 3
	)
	cls := classByName(t, "POS-Tree")
	probeKeys := make([][]byte, keySpace)
	for i := range probeKeys {
		probeKeys[i] = key(i)
	}
	for _, be := range retentionBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			s := be.open(t)
			repo := newRepo(s)
			commits := buildHistory(t, repo, cls, baseline, keySpace, updates)

			// Pin the oldest version as the byte-identical probe target.
			pinnedView, pin, err := repo.CheckoutPinned(commits[0].ID)
			if err != nil {
				t.Fatal(err)
			}
			probe := snapshotVersion(t, pinnedView, commits[0], probeKeys)

			var (
				stop     atomic.Bool
				commitN  atomic.Int64
				gcN      atomic.Int64
				sweptN   atomic.Int64
				readN    atomic.Int64
				errsOnce sync.Once
			)
			fail := func(format string, args ...any) {
				errsOnce.Do(func() {
					stop.Store(true)
					t.Errorf(format, args...)
				})
			}
			var wg sync.WaitGroup

			// Writer: mutate → commit through CommitRetry, which owns the
			// redo-from-a-fresh-checkout loop for ErrCommitRaced.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(17))
				gen := baseline
				for !stop.Load() {
					_, err := version.CommitRetry(repo, "main", fmt.Sprintf("g%d", gen),
						func(idx core.Index) (core.Index, error) {
							batch := make([]core.Entry, updates)
							for j := range batch {
								k := rng.Intn(keySpace)
								batch[j] = core.Entry{Key: key(k), Value: val(k, gen)}
							}
							return idx.PutBatch(batch)
						})
					if err != nil {
						fail("writer commit: %v", err)
						return
					}
					gen++
					commitN.Add(1)
				}
			}()

			// Readers: pin the current head, read and range it, verify a
			// proof, re-verify the pinned baseline.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						idx, p, err := repo.CheckoutBranchPinned("main")
						if err != nil {
							fail("reader checkout: %v", err)
							return
						}
						for i := 0; i < 5; i++ {
							k := rng.Intn(keySpace)
							v, ok, err := idx.Get(key(k))
							if err != nil {
								fail("reader Get: %v", err)
								p.Release()
								return
							}
							if ok && !bytes.HasPrefix(v, []byte(fmt.Sprintf("value-%05d-gen-", k))) {
								fail("reader Get(%d) = %q: wrong key's value", k, v)
								p.Release()
								return
							}
						}
						if r, ok := idx.(core.Ranger); ok {
							lo, hi := key(10), key(40)
							var prev []byte
							err := r.Range(lo, hi, func(k, _ []byte) bool {
								if prev != nil && bytes.Compare(prev, k) >= 0 {
									fail("reader Range out of order: %q then %q", prev, k)
									return false
								}
								prev = append(prev[:0], k...)
								return true
							})
							if err != nil {
								fail("reader Range: %v", err)
								p.Release()
								return
							}
						}
						if proof, err := idx.Prove(key(20)); err == nil {
							if err := idx.VerifyProof(idx.RootHash(), proof); err != nil {
								fail("reader proof no longer verifies: %v", err)
								p.Release()
								return
							}
						}
						p.Release()
						readN.Add(1)
						// Every few rounds, re-verify the pinned baseline is
						// byte-identical.
						if readN.Load()%8 == 0 {
							view, err := repo.Checkout(probe.commit.ID)
							if err != nil {
								fail("baseline checkout: %v", err)
								return
							}
							for _, k := range probeKeys[:10] {
								v, ok, err := view.Get(k)
								want := probe.values[string(k)]
								if err != nil {
									fail("baseline Get(%q): %v", k, err)
									return
								}
								if (want == nil) != !ok || (want != nil && !bytes.Equal(v, want)) {
									fail("baseline Get(%q) = %q ok=%v, want %q", k, v, ok, want)
									return
								}
							}
						}
					}
				}(int64(100 + w))
			}

			// Collector: back-to-back retention passes.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					st, err := repo.GCRetainRecent(retainDepth)
					if err != nil {
						fail("GC: %v", err)
						return
					}
					gcN.Add(1)
					sweptN.Add(st.Store.SweptNodes)
				}
			}()

			time.Sleep(soakTime)
			stop.Store(true)
			wg.Wait()
			if t.Failed() {
				return
			}
			if gcN.Load() == 0 || commitN.Load() == 0 || readN.Load() == 0 {
				t.Fatalf("soak did no work: gc=%d commits=%d reads=%d", gcN.Load(), commitN.Load(), readN.Load())
			}
			if sweptN.Load() == 0 {
				t.Fatalf("soak swept nothing across %d passes", gcN.Load())
			}
			t.Logf("%s: %d commits, %d reader rounds, %d GC passes, %d nodes swept",
				be.name, commitN.Load(), readN.Load(), gcN.Load(), sweptN.Load())

			// Quiesced: the pinned baseline is still byte-identical in full.
			checkVersion(t, repo, probe, probeKeys)
			pin.Release()
			if _, err := repo.GCRetainRecent(retainDepth); err != nil {
				t.Fatal(err)
			}
			if _, ok := repo.Lookup(probe.commit.ID); ok {
				t.Fatal("baseline survived GC after its pin was released")
			}
			// And the head still reads.
			head, err := repo.CheckoutBranch("main")
			if err != nil {
				t.Fatal(err)
			}
			if n, err := head.Count(); err != nil || n == 0 {
				t.Fatalf("head Count after soak = %d, %v", n, err)
			}
		})
	}
}

// BenchmarkReadDuringGC measures head-read latency with no collector
// running (idle) and with back-to-back GC passes running (gc) — the
// benchstat pair CI smokes to keep the concurrent-GC pause bounded.
func BenchmarkReadDuringGC(b *testing.B) {
	for _, mode := range []string{"idle", "gc"} {
		b.Run(mode, func(b *testing.B) {
			s := store.NewShardedStore(0)
			repo := version.NewRepo(s)
			var cls indexClass
			for _, c := range classes() {
				if c.name == "POS-Tree" {
					cls = c
				}
			}
			repo.RegisterLoader(cls.name, cls.loader)
			idx, err := cls.new(s)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			const keySpace = 200
			for v := 0; v < 12; v++ {
				batch := make([]core.Entry, 20)
				for j := range batch {
					k := rng.Intn(keySpace)
					batch[j] = core.Entry{Key: key(k), Value: val(k, v)}
				}
				idx, err = idx.PutBatch(batch)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := repo.Commit("main", idx, fmt.Sprintf("v%d", v)); err != nil {
					b.Fatal(err)
				}
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			if mode == "gc" {
				wg.Add(1)
				go func() {
					defer wg.Done()
					gen := 1000
					for !stop.Load() {
						// Keep committing so every pass has garbage to sweep.
						head, err := repo.CheckoutBranch("main")
						if err != nil {
							return
						}
						k := gen % keySpace
						next, err := head.PutBatch([]core.Entry{{Key: key(k), Value: val(k, gen)}})
						if err != nil {
							return
						}
						if _, err := repo.Commit("main", next, "churn"); err != nil &&
							!errors.Is(err, version.ErrCommitRaced) {
							return
						}
						gen++
						if _, err := repo.GCRetainRecent(3); err != nil {
							return
						}
					}
				}()
			}
			view, pin, err := repo.CheckoutBranchPinned("main")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % keySpace
				if _, _, err := view.Get(key(k)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			pin.Release()
		})
	}
}
