package version_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/version"
)

// headsLoader registers the POS-Tree loader the heads tests check out with.
func headsLoader(r *version.Repo) {
	r.RegisterLoader("POS-Tree", func(s store.Store, root hash.Hash, height int) (core.Index, error) {
		return postree.Load(s, postree.ConfigForNodeSize(512), root, height), nil
	})
}

// buildVersion commits n entries keyed by round onto branch and returns the
// commit.
func buildVersion(t *testing.T, r *version.Repo, branch string, round int) version.Commit {
	t.Helper()
	tree := postree.New(r.Store(), postree.ConfigForNodeSize(512))
	var idx core.Index = tree
	if head, ok := r.Head(branch); ok {
		got, err := r.Checkout(head.ID)
		if err != nil {
			t.Fatal(err)
		}
		idx = got
	}
	entries := make([]core.Entry, 50)
	for i := range entries {
		entries[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("key-%03d", i)),
			Value: []byte(fmt.Sprintf("round-%d-value-%03d", round, i)),
		}
	}
	next, err := idx.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Commit(branch, next, fmt.Sprintf("%s round %d", branch, round))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBranchHeadsResumeInMemory verifies the persistent-heads satellite on
// an in-memory store: a second Repo over the same store sees every branch
// the first one committed, with identical heads and checkout contents, with
// no explicit ResumeBranch call.
func TestBranchHeadsResumeInMemory(t *testing.T) {
	s := store.NewShardedStore(8)
	r1 := version.NewRepo(s)
	headsLoader(r1)
	buildVersion(t, r1, "main", 1)
	mainHead := buildVersion(t, r1, "main", 2)
	devHead := buildVersion(t, r1, "dev", 1)

	r2 := version.NewRepo(s)
	headsLoader(r2)
	if got := r2.Branches(); len(got) != 2 || got[0] != "dev" || got[1] != "main" {
		t.Fatalf("resumed branches = %v, want [dev main]", got)
	}
	for branch, want := range map[string]version.Commit{"main": mainHead, "dev": devHead} {
		head, ok := r2.Head(branch)
		if !ok || head.ID != want.ID {
			t.Fatalf("branch %q head = %v (ok=%v), want %v", branch, head.ID, ok, want.ID)
		}
		idx, err := r2.CheckoutBranch(branch)
		if err != nil {
			t.Fatal(err)
		}
		if idx.RootHash() != want.Root {
			t.Fatalf("branch %q checkout root %v, want %v", branch, idx.RootHash(), want.Root)
		}
	}

	// Deleting a branch persists too.
	if err := r2.DeleteBranch("dev"); err != nil {
		t.Fatal(err)
	}
	r3 := version.NewRepo(s)
	if got := r3.Branches(); len(got) != 1 || got[0] != "main" {
		t.Fatalf("branches after delete+reopen = %v, want [main]", got)
	}
}

// TestBranchHeadsResumeOnDisk is the restart scenario the satellite exists
// for: commit on a disk-backed store, close the process's store handle,
// reopen the directory, and find the branches again — no head IDs recorded
// anywhere outside the store.
func TestBranchHeadsResumeOnDisk(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := version.NewRepo(s1)
	headsLoader(r1)
	want := buildVersion(t, r1, "main", 1)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r2 := version.NewRepo(s2)
	headsLoader(r2)
	head, ok := r2.Head("main")
	if !ok || head.ID != want.ID {
		t.Fatalf("reopened head = %v (ok=%v), want %v", head.ID, ok, want.ID)
	}
	idx, err := r2.CheckoutBranch("main")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := idx.Get([]byte("key-007")); err != nil || !ok || string(v) != "round-1-value-007" {
		t.Fatalf("Get after reopen = %q ok=%v err=%v", v, ok, err)
	}
}

// TestGCPurgesCaches verifies the GC-aware purge satellite: after a GC
// retains only the newest version, the registered OnGC hooks evict swept
// digests from a client-side CachedStore and from an index family's
// decoded-node caches eagerly, and the surviving version still reads
// correctly through the purged caches.
func TestGCPurgesCaches(t *testing.T) {
	backing := store.NewMemStore()
	cached := store.NewCachedStore(backing, 1<<20)
	r := version.NewRepo(backing)
	headsLoader(r)

	tree := postree.New(backing, postree.ConfigForNodeSize(512))
	var idx core.Index = tree
	var commits []version.Commit
	for round := 0; round < 5; round++ {
		entries := make([]core.Entry, 200)
		for i := range entries {
			entries[i] = core.Entry{
				Key:   []byte(fmt.Sprintf("key-%03d", i)),
				Value: []byte(fmt.Sprintf("round-%d-value-%03d", round, i)),
			}
		}
		next, err := idx.PutBatch(entries)
		if err != nil {
			t.Fatal(err)
		}
		idx = next
		c, err := r.Commit("main", idx, fmt.Sprintf("round %d", round))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
		// Populate the client-side cache with this round's root — all but
		// the last become dead when the GC retains only the newest version.
		if _, ok := cached.Get(c.Root); !ok {
			t.Fatalf("round %d root missing from backing store", round)
		}
	}
	// Warm the decoded-node caches with reads.
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		if _, ok, err := idx.Get(key); err != nil || !ok {
			t.Fatalf("warm Get: ok=%v err=%v", ok, err)
		}
	}

	purged := 0
	clientPurged := 0
	r.OnGC(func(live store.LiveFunc) {
		purged += tree.PurgeCache(live)
		clientPurged += cached.Purge(live)
	})

	stats, err := r.GC(commits[len(commits)-1])
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store.SweptNodes == 0 {
		t.Fatal("GC swept nothing; test fixture too small")
	}
	if purged == 0 {
		t.Fatal("OnGC hook evicted nothing from the decoded-node caches")
	}
	if clientPurged == 0 {
		t.Fatal("OnGC hook evicted nothing from the client-side cache")
	}

	// The retained version must still read correctly through purged caches.
	got, err := r.CheckoutBranch("main")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		v, ok, err := got.Get(key)
		if err != nil || !ok || string(v) != fmt.Sprintf("round-4-value-%03d", i) {
			t.Fatalf("post-GC Get(%q) = %q ok=%v err=%v", key, v, ok, err)
		}
	}
}
