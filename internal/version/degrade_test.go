package version_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/store"
	"repro/internal/version"
)

// TestCommitRejectedWhileStoreDegraded is the version half of the
// resource-exhaustion matrix: with the disk store degraded read-only
// (persistent ENOSPC), a commit is rejected up front with a typed
// retryable error — the head never advances onto storage that cannot hold
// it — reads and Verify keep working, and after the space returns the
// same commit succeeds with no data loss and a clean reopen.
func TestCommitRejectedWhileStoreDegraded(t *testing.T) {
	dir := t.TempDir()
	var full atomic.Bool
	d, err := store.OpenDiskStore(dir, store.DiskOptions{
		FlushBytes: 1 << 20,
		WriteErr: func(op string) error {
			if full.Load() {
				return fmt.Errorf("%s: %w", op, store.ErrNoSpace)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	repo := version.NewRepo(d)
	repo.RegisterLoader("MPT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(s, root), nil
	})
	var idx core.Index = mpt.New(d)
	for i := 0; i < 20; i++ {
		idx, err = idx.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	seed, err := repo.Commit("main", idx, "seed")
	if err != nil {
		t.Fatal(err)
	}

	// The disk fills. A commit of new work must fail typed and leave the
	// head exactly where it was.
	full.Store(true)
	next, err := idx.Put([]byte("while-full"), []byte("x"))
	if err != nil {
		t.Fatal(err) // index mutation itself stages in memory, no disk write
	}
	if _, err := repo.Commit("main", next, "degraded commit"); !errors.Is(err, store.ErrNoSpace) {
		t.Fatalf("commit while degraded = %v, want ErrNoSpace", err)
	}
	if head, ok := repo.Head("main"); !ok || head.ID != seed.ID {
		t.Fatalf("head moved under a rejected commit: %+v, %v", head, ok)
	}

	// Reads and the scrubber still work against the degraded store.
	got, err := repo.CheckoutBranch("main")
	if err != nil {
		t.Fatalf("checkout while degraded: %v", err)
	}
	if v, ok, err := got.Get([]byte("k007")); err != nil || !ok || string(v) != "v007" {
		t.Fatalf("read while degraded = %q, %v, %v", v, ok, err)
	}
	rep, err := repo.Verify()
	if err != nil {
		t.Fatalf("verify while degraded: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("degraded store fails scrub: %s, faults %v", rep, rep.Faults)
	}

	// Space returns: the retried commit lands, nothing lost.
	full.Store(false)
	c2, err := repo.Commit("main", next, "retry after heal")
	if err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
	if c2.ID == seed.ID {
		t.Fatal("healed commit did not advance the head")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: both commits durable, graph scrubs clean.
	re, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec := re.Recovery(); rec.TornSegments != 0 {
		t.Fatalf("degrade window tore a segment: %+v", rec)
	}
	repo2 := version.NewRepo(re)
	repo2.RegisterLoader("MPT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(s, root), nil
	})
	if err := repo2.ResumeBranch("main", c2.ID); err != nil {
		t.Fatal(err)
	}
	idx2, err := repo2.CheckoutBranch("main")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := idx2.Get([]byte("while-full")); err != nil || !ok || string(v) != "x" {
		t.Fatalf("write from degraded window lost after heal: %q, %v, %v", v, ok, err)
	}
	rep2, err := repo2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Fatalf("reopened graph fails scrub: %s, faults %v", rep2, rep2.Faults)
	}
}
