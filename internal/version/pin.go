package version

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hash"
)

// This file implements reader pins — the epoch half of the concurrent-GC
// contract. A concurrent GC pass may reclaim any version outside the
// retained set the moment the pass reaches its sweep, so a reader that
// checked out an old commit and is still iterating it would see its pages
// vanish mid-read. A Pin is the reader's lease: while any pin on a commit
// is held, every GC pass marks that commit's version live and keeps the
// commit in the log, exactly as if it had been retained. Readers of
// retained versions (branch heads under the retention policy) never need a
// pin; readers of anything older take one with CheckoutPinned and release
// it when done.

// pinEntry is the refcounted registry record for one pinned commit.
type pinEntry struct {
	c Commit
	n int
}

// Pin is a refcounted guard keeping one commit — and every store node its
// version reaches — out of the garbage collector's hands. Obtain one from
// Repo.Pin or Repo.CheckoutPinned; call Release exactly when the version
// is no longer being read. A Pin is safe for concurrent use; redundant
// Release calls are no-ops.
type Pin struct {
	r        *Repo
	c        Commit
	released atomic.Bool
}

// Commit returns the pinned commit.
func (p *Pin) Commit() Commit { return p.c }

// Release drops the pin. The commit stays in the log and its version stays
// readable until a GC pass that starts after the release (and does not
// otherwise retain the commit) reclaims it.
func (p *Pin) Release() {
	if p == nil || !p.released.CompareAndSwap(false, true) {
		return
	}
	r := p.r
	r.mu.Lock()
	if e, ok := r.pins[p.c.ID]; ok {
		e.n--
		if e.n <= 0 {
			delete(r.pins, p.c.ID)
		}
	}
	r.mu.Unlock()
}

// Pin protects the commit stored under id from garbage collection until
// the returned Pin is released. Pinning an unknown commit fails with
// ErrUnknownCommit; a commit present in the log is always safely pinnable,
// even while a GC pass is running (a pass can only drop a commit from the
// log before its sweep begins, and pins taken before that point are
// honored by the same pass).
func (r *Repo) Pin(id hash.Hash) (*Pin, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.commits[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownCommit, id)
	}
	return r.pinLocked(c), nil
}

// pinLocked registers one more pin on c. Caller holds r.mu.
func (r *Repo) pinLocked(c Commit) *Pin {
	e := r.pins[c.ID]
	if e == nil {
		e = &pinEntry{c: c}
		r.pins[c.ID] = e
	}
	e.n++
	return &Pin{r: r, c: c}
}

// CheckoutPinned is Checkout plus a pin, taken atomically: the returned
// view's pages cannot be reclaimed by any GC pass until the pin is
// released. This is the required way to read a version that the retention
// policy might drop while the read is in flight.
func (r *Repo) CheckoutPinned(id hash.Hash) (core.Index, *Pin, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.commits[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %v", ErrUnknownCommit, id)
	}
	idx, err := r.checkoutLocked(c)
	if err != nil {
		return nil, nil, err
	}
	return idx, r.pinLocked(c), nil
}

// CheckoutBranchPinned is CheckoutBranch plus a pin on the branch's head
// commit, taken atomically — a stable read view of "the latest version"
// that stays valid however far the branch advances or how many GC passes
// run before the pin is released.
func (r *Repo) CheckoutBranchPinned(name string) (core.Index, *Pin, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.branches[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownBranch, name)
	}
	c := r.commits[id]
	idx, err := r.checkoutLocked(c)
	if err != nil {
		return nil, nil, err
	}
	return idx, r.pinLocked(c), nil
}
