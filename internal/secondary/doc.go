// Package secondary adds Merkle secondary indexes over the primary
// core.Index classes: derived access paths (value→key lookups, attribute
// range scans) for a serving system whose primary key order does not
// match its queries.
//
// A secondary index is itself any of the five core.Index classes, keyed
// by order-preserving composite keys — conceptually attr\x00value\x00pk,
// escaped so values containing the separator still round-trip and sort
// correctly (see EncodeKey) — and mapping back to primary keys. Table
// binds a primary index and its secondaries to one version.Repo branch:
// Put/Delete/PutBatch maintain every secondary tombstone-correctly (an
// update that changes an attribute deletes the old derived key before
// inserting the new one), and Commit records the primary root plus a
// root-of-roots of the secondaries (version.RootRef in Commit.Meta) in a
// single commit — the co-commit is atomic, GC marks the secondary trees,
// and Repo.Verify scrubs them.
//
// The query routing that makes these indexes worth their insert overhead
// lives in internal/query; the battery proving the routing is honest (a
// narrow query reads O(result) nodes, not O(data)) lives in
// internal/query/plantest.
//
// Table is a single-writer view, like the indexes it wraps: one
// goroutine mutates and commits; readers use the immutable index values
// it exposes.
package secondary
