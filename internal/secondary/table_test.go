package secondary_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/secondary"
	"repro/internal/store"
	"repro/internal/version"
)

// rows in these tests hold "attr|payload"; the city extractor indexes the
// part before '|' and leaves rows without a '|' unindexed (a partial
// index).
func cityExtract(_, value []byte) ([]byte, bool) {
	i := bytes.IndexByte(value, '|')
	if i < 0 {
		return nil, false
	}
	return value[:i], true
}

func newMPT(s store.Store) (core.Index, error) { return mpt.New(s), nil }

func mptLoader(s store.Store, root hash.Hash, _ int) (core.Index, error) {
	return mpt.Load(s, root), nil
}

func cityDef() secondary.Def {
	return secondary.Def{Attr: "city", Extract: cityExtract, New: newMPT}
}

// secondaryContents decodes the full secondary into a set of
// "value\x1Fpk" strings for oracle comparison.
func secondaryContents(t *testing.T, tbl *secondary.Table, attr string) map[string]bool {
	t.Helper()
	sec, ok := tbl.Secondary(attr)
	if !ok {
		t.Fatalf("Secondary(%q) missing", attr)
	}
	got := make(map[string]bool)
	if err := sec.Iterate(func(k, _ []byte) bool {
		a, val, pk, err := secondary.DecodeKey(k)
		if err != nil {
			t.Fatalf("DecodeKey(%x): %v", k, err)
		}
		if a != attr {
			t.Fatalf("secondary %q holds foreign key for attr %q", attr, a)
		}
		got[string(val)+"\x1F"+string(pk)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// derivedOracle recomputes the expected secondary contents from a primary
// oracle map.
func derivedOracle(rows map[string][]byte) map[string]bool {
	want := make(map[string]bool)
	for pk, v := range rows {
		if av, ok := cityExtract([]byte(pk), v); ok {
			want[string(av)+"\x1F"+pk] = true
		}
	}
	return want
}

func checkTable(t *testing.T, tbl *secondary.Table, rows map[string][]byte) {
	t.Helper()
	// Primary matches the oracle.
	n := 0
	if err := tbl.Primary().Iterate(func(k, v []byte) bool {
		n++
		want, ok := rows[string(k)]
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("primary row %q = %x, oracle %x (present %v)", k, v, want, ok)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("primary holds %d rows, oracle %d", n, len(rows))
	}
	// Secondary matches the derived oracle.
	got, want := secondaryContents(t, tbl, "city"), derivedOracle(rows)
	if len(got) != len(want) {
		t.Fatalf("secondary holds %d derived keys, oracle %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("secondary missing derived key %q", k)
		}
	}
}

// TestTableMaintenance drives randomized CRUD through the table and
// checks the secondary against a recomputed oracle after every
// mutation's worth of state transitions: inserts, attribute-changing
// updates, attribute-preserving updates, rows leaving and entering the
// partial index, deletes, and batches with duplicate keys.
func TestTableMaintenance(t *testing.T) {
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", mptLoader)
	tbl, err := secondary.Open(repo, "main", newMPT, cityDef())
	if err != nil {
		t.Fatal(err)
	}

	rows := make(map[string][]byte)
	rng := rand.New(rand.NewSource(9))
	value := func() []byte {
		if rng.Intn(8) == 0 {
			return []byte(fmt.Sprintf("unindexed-%d", rng.Intn(1000))) // no '|': partial index gap
		}
		return []byte(fmt.Sprintf("g%02d|v%d", rng.Intn(12), rng.Intn(1000)))
	}
	pk := func() []byte { return []byte(fmt.Sprintf("pk-%03d", rng.Intn(60))) }

	for op := 0; op < 300; op++ {
		switch rng.Intn(4) {
		case 0: // single put
			k, v := pk(), value()
			if err := tbl.Put(k, v); err != nil {
				t.Fatal(err)
			}
			rows[string(k)] = v
		case 1: // delete (often of a present key)
			k := pk()
			if err := tbl.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(rows, string(k))
		case 2: // attribute-preserving overwrite of an existing row
			for k, old := range rows {
				av, ok := cityExtract([]byte(k), old)
				if !ok {
					continue
				}
				v := append(append([]byte(nil), av...), []byte(fmt.Sprintf("|v%d", rng.Intn(1000)))...)
				if err := tbl.Put([]byte(k), v); err != nil {
					t.Fatal(err)
				}
				rows[k] = v
				break
			}
		case 3: // batch with a duplicate key (last wins)
			k1, k2 := pk(), pk()
			v1, v2, v3 := value(), value(), value()
			batch := []core.Entry{{Key: k1, Value: v1}, {Key: k2, Value: v2}, {Key: k1, Value: v3}}
			if err := tbl.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
			rows[string(k2)] = v2
			rows[string(k1)] = v3 // duplicate collapsed last-wins
		}
		if op%50 == 49 {
			checkTable(t, tbl, rows)
		}
	}
	checkTable(t, tbl, rows)

	// An attribute-preserving overwrite must not churn the secondary.
	var k string
	for cand, old := range rows {
		if _, ok := cityExtract([]byte(cand), old); ok {
			k = cand
			break
		}
	}
	sec, _ := tbl.Secondary("city")
	before := sec.RootHash()
	av, _ := cityExtract([]byte(k), rows[k])
	if err := tbl.Put([]byte(k), append(append([]byte(nil), av...), []byte("|rewritten")...)); err != nil {
		t.Fatal(err)
	}
	sec, _ = tbl.Secondary("city")
	if sec.RootHash() != before {
		t.Fatal("attribute-preserving overwrite churned the secondary root")
	}
}

// TestTableCommitReopenGC checks the co-commit end to end: one commit
// carries primary and secondary roots; a fresh Repo over the same store
// reopens the table from the head's RootRefs; GC keeps every secondary
// node live; the reopened secondary still answers.
func TestTableCommitReopenGC(t *testing.T) {
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", mptLoader)
	tbl, err := secondary.Open(repo, "main", newMPT, cityDef())
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]byte)
	for i := 0; i < 80; i++ {
		k := []byte(fmt.Sprintf("pk-%03d", i))
		v := []byte(fmt.Sprintf("g%02d|v%d", i%10, i))
		if err := tbl.Put(k, v); err != nil {
			t.Fatal(err)
		}
		rows[string(k)] = v
	}
	head, err := tbl.Commit("first")
	if err != nil {
		t.Fatal(err)
	}
	refs := version.MetaRoots(head)
	if len(refs) != 1 || refs[0].Name != "city" || refs[0].Class != "MPT" {
		t.Fatalf("committed RootRefs = %v", refs)
	}
	sec, _ := tbl.Secondary("city")
	if refs[0].Root != sec.RootHash() {
		t.Fatal("committed secondary root differs from the live one")
	}

	// Second commit after more churn, then GC down to the latest head.
	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("pk-%03d", i))
		if i%3 == 0 {
			if err := tbl.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(rows, string(k))
			continue
		}
		v := []byte(fmt.Sprintf("h%02d|w%d", i%7, i))
		if err := tbl.Put(k, v); err != nil {
			t.Fatal(err)
		}
		rows[string(k)] = v
	}
	if _, err := tbl.Commit("second"); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.GCRetainRecent(1); err != nil {
		t.Fatal(err)
	}
	if rep, err := repo.Verify(); err != nil || !rep.OK() {
		t.Fatalf("Verify after GC = %v, %v", rep, err)
	}

	// Reopen through a brand-new Repo: heads auto-resume, Open loads the
	// secondary from the RootRefs trailer.
	repo2 := version.NewRepo(s)
	repo2.RegisterLoader("MPT", mptLoader)
	tbl2, err := secondary.Open(repo2, "main", newMPT, cityDef())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl2, rows)
}

// TestTableBackfill opens a committed table with a Def the head never
// recorded; Open must backfill it from the primary, and the next commit
// records both secondaries.
func TestTableBackfill(t *testing.T) {
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", mptLoader)
	tbl, err := secondary.Open(repo, "main", newMPT, cityDef())
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]byte)
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("pk-%03d", i))
		v := []byte(fmt.Sprintf("g%02d|v%d", i%5, i))
		if err := tbl.Put(k, v); err != nil {
			t.Fatal(err)
		}
		rows[string(k)] = v
	}
	if _, err := tbl.Commit("cities only"); err != nil {
		t.Fatal(err)
	}

	// Reopen with an extra secondary over the payload suffix.
	suffix := secondary.Def{
		Attr: "suffix",
		Extract: func(_, value []byte) ([]byte, bool) {
			i := bytes.IndexByte(value, '|')
			if i < 0 {
				return nil, false
			}
			return value[i+1:], true
		},
		New: newMPT,
	}
	tbl2, err := secondary.Open(repo, "main", newMPT, cityDef(), suffix)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl2, rows)
	sec, ok := tbl2.Secondary("suffix")
	if !ok {
		t.Fatal("backfilled secondary missing")
	}
	n := 0
	if err := sec.Iterate(func(k, _ []byte) bool {
		_, val, pk, err := secondary.DecodeKey(k)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := suffix.Extract(pk, rows[string(pk)])
		if !ok || !bytes.Equal(val, want) {
			t.Fatalf("backfilled key (%x,%x) disagrees with oracle %x", val, pk, want)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("backfill produced %d keys, want %d", n, len(rows))
	}
	head, err := tbl2.Commit("add suffix index")
	if err != nil {
		t.Fatal(err)
	}
	refs := version.MetaRoots(head)
	if len(refs) != 2 || refs[0].Name != "city" || refs[1].Name != "suffix" {
		t.Fatalf("RootRefs after backfill commit = %v", refs)
	}
}
