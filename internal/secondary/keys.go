package secondary

import (
	"bytes"
	"fmt"
)

// The composite-key encoding. A derived key is the tuple (attr, value,
// pk) and must sort by that tuple under plain bytes.Compare, because the
// secondary index classes order by raw key bytes. A naive
// attr\x00value\x00pk join breaks when a field contains \x00, so each
// field is escaped order-preservingly — 0x00 becomes 0x00 0xFF — and
// fields are joined with the separator 0x00 0x01. The separator compares
// below every possible escaped continuation byte (0x01 < 0xFF, and
// 0x01 <= any first byte of a non-0x00 continuation), which is exactly
// the property that makes tuple order and encoded order agree: a field
// that is a strict prefix of another sorts first, same as the raw
// tuples.
const (
	escByte  = 0x00
	escCont  = 0xFF // 0x00 0xFF encodes a literal 0x00
	sepByte  = 0x01 // 0x00 0x01 separates fields
	succByte = 0x02 // 0x00 0x02 is the exclusive upper bound of a field prefix
)

// appendEscaped appends the order-preserving escape of field to dst.
func appendEscaped(dst, field []byte) []byte {
	for _, b := range field {
		if b == escByte {
			dst = append(dst, escByte, escCont)
			continue
		}
		dst = append(dst, b)
	}
	return dst
}

// appendSep appends the field separator.
func appendSep(dst []byte) []byte { return append(dst, escByte, sepByte) }

// EncodeKey builds the composite key for one (attr, value, pk) triple.
// The encoding sorts by the raw tuple: all keys of one attribute are
// contiguous, within an attribute they sort by value, and within a value
// by primary key — which is what lets exact-match and range predicates
// translate to contiguous key ranges (ExactBounds, RangeBounds).
func EncodeKey(attr string, value, pk []byte) []byte {
	out := make([]byte, 0, len(attr)+len(value)+len(pk)+8)
	out = appendEscaped(out, []byte(attr))
	out = appendSep(out)
	out = appendEscaped(out, value)
	out = appendSep(out)
	out = appendEscaped(out, pk)
	return out
}

// DecodeKey splits a composite key back into its fields. It is strict:
// exactly two separators, and every 0x00 must open a valid escape or
// separator pair.
func DecodeKey(key []byte) (attr string, value, pk []byte, err error) {
	var fields [][]byte
	cur := []byte{}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if b != escByte {
			cur = append(cur, b)
			continue
		}
		if i+1 >= len(key) {
			return "", nil, nil, fmt.Errorf("secondary: truncated escape in composite key %x", key)
		}
		i++
		switch key[i] {
		case escCont:
			cur = append(cur, escByte)
		case sepByte:
			fields = append(fields, cur)
			cur = []byte{}
		default:
			return "", nil, nil, fmt.Errorf("secondary: invalid escape %#x in composite key %x", key[i], key)
		}
	}
	fields = append(fields, cur)
	if len(fields) != 3 {
		return "", nil, nil, fmt.Errorf("secondary: composite key %x has %d fields, want 3", key, len(fields))
	}
	return string(fields[0]), fields[1], fields[2], nil
}

// attrPrefix is the encoded prefix shared by every key of one attribute:
// esc(attr) plus the separator.
func attrPrefix(attr string) []byte {
	out := appendEscaped(make([]byte, 0, len(attr)+2), []byte(attr))
	return appendSep(out)
}

// succ returns the exclusive upper bound of the prefix p, which by
// construction ends in a separator pair: bumping the separator's second
// byte to succByte bounds every key that extends p, because no escape or
// separator pair sorts at or above 0x00 0x02 while extending the same
// prefix.
func succ(p []byte) []byte {
	out := append([]byte(nil), p...)
	out[len(out)-1] = succByte
	return out
}

// ExactBounds returns the half-open composite range [lo, hi) holding
// exactly the keys of (attr, value) pairs equal to the given ones, across
// all primary keys.
func ExactBounds(attr string, value []byte) (lo, hi []byte) {
	p := attrPrefix(attr)
	p = appendEscaped(p, value)
	p = appendSep(p)
	return p, succ(p)
}

// RangeBounds translates a value range [valLo, valHi) on one attribute
// into the composite-key range [lo, hi) covering it. A nil valLo means
// unbounded below; a nil valHi means unbounded above (every value of the
// attribute). Note nil and empty differ for valHi exactly as in
// core.Ranger bounds: an empty valHi is the bound "" and selects
// nothing.
func RangeBounds(attr string, valLo, valHi []byte) (lo, hi []byte) {
	p := attrPrefix(attr)
	lo = append(append([]byte(nil), p...), appendEscaped(nil, valLo)...)
	if valHi == nil {
		hi = succ(p)
	} else {
		hi = append(append([]byte(nil), p...), appendEscaped(nil, valHi)...)
	}
	return lo, hi
}

// CompareTuples orders two (value, pk) pairs the way their encodings
// order under bytes.Compare — the oracle the fuzz tests check the
// encoding against.
func CompareTuples(valA, pkA, valB, pkB []byte) int {
	if c := bytes.Compare(valA, valB); c != 0 {
		return c
	}
	return bytes.Compare(pkA, pkB)
}
