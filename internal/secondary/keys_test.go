package secondary

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// awkward field values: empties, separators, escape bytes, high bytes —
// the cases a naive \x00-joined encoding gets wrong.
var awkward = [][]byte{
	nil,
	{},
	[]byte("a"),
	[]byte("ab"),
	{0x00},
	{0x00, 0x00},
	{0x00, 0x01},
	{0x00, 0x02},
	{0x00, 0xFF},
	{0x01},
	{0xFF},
	{0xFF, 0x00},
	[]byte("a\x00b"),
	[]byte("city-0001"),
}

func TestCompositeKeyRoundTrip(t *testing.T) {
	attrs := []string{"a", "city", "a\x00b", "\x00", "x\xffy"}
	for _, attr := range attrs {
		for _, val := range awkward {
			for _, pk := range awkward {
				key := EncodeKey(attr, val, pk)
				ga, gv, gp, err := DecodeKey(key)
				if err != nil {
					t.Fatalf("DecodeKey(%x): %v", key, err)
				}
				if ga != attr || !bytes.Equal(gv, val) || !bytes.Equal(gp, pk) {
					t.Fatalf("round trip (%q,%x,%x) -> (%q,%x,%x)", attr, val, pk, ga, gv, gp)
				}
			}
		}
	}
}

func TestDecodeKeyRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},                                     // zero fields
		[]byte("a"),                            // one field
		{0x61, 0x00, 0x01, 0x62},               // two fields
		{0x00},                                 // truncated escape
		{0x61, 0x00, 0x01, 0x62, 0x00},         // truncated escape after a separator
		{0x61, 0x00, 0x03, 0x62},               // invalid escape pair
		append(EncodeKey("a", nil, nil), 0x00), // valid key plus dangling escape
	}
	for _, key := range bad {
		if _, _, _, err := DecodeKey(key); err == nil {
			t.Fatalf("DecodeKey(%x) accepted malformed key", key)
		}
	}
}

// TestCompositeKeyOrder checks the load-bearing property: encoded keys
// sort under bytes.Compare exactly as the raw (value, pk) tuples sort
// under CompareTuples, within one attribute.
func TestCompositeKeyOrder(t *testing.T) {
	type tup struct{ val, pk []byte }
	var tuples []tup
	for _, v := range awkward {
		for _, p := range awkward {
			tuples = append(tuples, tup{v, p})
		}
	}
	for i, a := range tuples {
		for j, b := range tuples {
			want := CompareTuples(a.val, a.pk, b.val, b.pk)
			got := bytes.Compare(EncodeKey("attr", a.val, a.pk), EncodeKey("attr", b.val, b.pk))
			if sign(got) != sign(want) {
				t.Fatalf("order disagrees for tuples %d,%d: (%x,%x) vs (%x,%x): enc %d, tuple %d",
					i, j, a.val, a.pk, b.val, b.pk, got, want)
			}
		}
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// TestBoundsMembership checks ExactBounds and RangeBounds against brute
// force: a composite key falls inside the bounds iff its decoded tuple
// satisfies the predicate. Multiple attributes are present so prefix
// leakage across attributes would be caught.
func TestBoundsMembership(t *testing.T) {
	attrs := []string{"a", "a\x00b", "ab", "b"}
	var keys [][]byte
	type decoded struct {
		attr    string
		val, pk []byte
	}
	byKey := make(map[string]decoded)
	for _, attr := range attrs {
		for _, val := range awkward {
			for i := 0; i < 2; i++ {
				pk := []byte(fmt.Sprintf("pk-%d", i))
				k := EncodeKey(attr, val, pk)
				keys = append(keys, k)
				byKey[string(k)] = decoded{attr, append([]byte(nil), val...), pk}
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })

	inBounds := func(k, lo, hi []byte) bool {
		return bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0
	}

	for _, attr := range attrs {
		for _, val := range awkward {
			lo, hi := ExactBounds(attr, val)
			for _, k := range keys {
				d := byKey[string(k)]
				want := d.attr == attr && bytes.Equal(d.val, val)
				if got := inBounds(k, lo, hi); got != want {
					t.Fatalf("ExactBounds(%q,%x): key (%q,%x,%x) in=%v want %v",
						attr, val, d.attr, d.val, d.pk, got, want)
				}
			}
		}
		for _, valLo := range awkward {
			for _, valHi := range awkward {
				lo, hi := RangeBounds(attr, valLo, valHi)
				for _, k := range keys {
					d := byKey[string(k)]
					want := d.attr == attr &&
						(valLo == nil || bytes.Compare(d.val, valLo) >= 0) &&
						(valHi == nil || bytes.Compare(d.val, valHi) < 0)
					if got := inBounds(k, lo, hi); got != want {
						t.Fatalf("RangeBounds(%q,%x,%x): key (%q,%x,%x) in=%v want %v",
							attr, valLo, valHi, d.attr, d.val, d.pk, got, want)
					}
				}
			}
		}
		// Unbounded on both sides selects exactly the attribute.
		lo, hi := RangeBounds(attr, nil, nil)
		for _, k := range keys {
			d := byKey[string(k)]
			if got := inBounds(k, lo, hi); got != (d.attr == attr) {
				t.Fatalf("RangeBounds(%q,nil,nil): key attr %q in=%v", attr, d.attr, got)
			}
		}
	}
}
