package secondary

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/version"
)

// Extract derives the indexed attribute value from one primary row.
// Returning false leaves the row out of that secondary index (a partial
// index) — deletes and updates handle the absence symmetrically.
type Extract func(pk, value []byte) (attr []byte, ok bool)

// Def declares one secondary index over a table.
type Def struct {
	// Attr names the indexed attribute; it is the RootRef.Name the
	// co-commit records and the key the query planner routes by.
	Attr string
	// Extract derives the attribute value from a row. Required.
	Extract Extract
	// New builds an empty index of the class backing this secondary over
	// the repo's store. Required. Any of the five core.Index classes
	// works; classes that cannot prune range scans (the hash-partitioned
	// MBT) stay correct but cannot bound narrow-query node reads.
	New func(s store.Store) (core.Index, error)
}

// Table binds a primary index and its secondary indexes to one
// version.Repo branch. Mutations maintain every secondary
// tombstone-correctly in memory; Commit records all roots atomically in
// one commit (the primary as Commit.Root, the secondaries as a
// root-of-roots trailer — version.RootRef — in Commit.Meta).
//
// Table is single-writer: one goroutine calls the mutating methods.
// The index values it hands out are immutable and safe to read
// concurrently, like every core.Index version.
type Table struct {
	repo   *version.Repo
	branch string

	primary core.Index
	defs    []Def
	secs    []core.Index
}

// ErrNoDef reports a secondary lookup for an attribute the table does not
// index.
var ErrNoDef = errors.New("secondary: attribute not indexed")

// Open binds (or creates) the table state on branch. When the branch
// exists, the primary is checked out from its head and each secondary is
// loaded from the head's RootRefs trailer; a secondary the head does not
// record — a Def added after data was committed — is backfilled by one
// scan of the primary. When the branch does not exist, every index starts
// empty and the first Commit creates it. The repo must have a Loader
// registered for every index class involved.
func Open(repo *version.Repo, branch string, newPrimary func(s store.Store) (core.Index, error), defs ...Def) (*Table, error) {
	if branch == "" {
		return nil, errors.New("secondary: empty branch name")
	}
	for _, d := range defs {
		if d.Attr == "" || d.Extract == nil || d.New == nil {
			return nil, fmt.Errorf("secondary: def %q needs Attr, Extract and New", d.Attr)
		}
	}
	t := &Table{repo: repo, branch: branch, defs: append([]Def(nil), defs...)}
	head, hasHead := repo.Head(branch)
	if hasHead {
		idx, err := repo.Checkout(head.ID)
		if err != nil {
			return nil, fmt.Errorf("secondary: open primary: %w", err)
		}
		t.primary = idx
	} else {
		idx, err := newPrimary(repo.Store())
		if err != nil {
			return nil, fmt.Errorf("secondary: new primary: %w", err)
		}
		t.primary = idx
	}
	refs := version.MetaRoots(head)
	t.secs = make([]core.Index, len(defs))
	for i, d := range defs {
		var found *version.RootRef
		for j := range refs {
			if refs[j].Name == d.Attr {
				found = &refs[j]
				break
			}
		}
		if found != nil {
			sec, err := repo.LoadRoot(found.Class, found.Root, found.Height)
			if err != nil {
				return nil, fmt.Errorf("secondary: open %q: %w", d.Attr, err)
			}
			t.secs[i] = sec
			continue
		}
		sec, err := d.New(repo.Store())
		if err != nil {
			return nil, fmt.Errorf("secondary: new %q: %w", d.Attr, err)
		}
		if hasHead {
			sec, err = backfill(sec, t.primary, d)
			if err != nil {
				return nil, fmt.Errorf("secondary: backfill %q: %w", d.Attr, err)
			}
		}
		t.secs[i] = sec
	}
	return t, nil
}

// backfill populates a fresh secondary from the current primary contents
// — the migration path for a Def declared after the branch already holds
// data.
func backfill(sec core.Index, primary core.Index, d Def) (core.Index, error) {
	var derived []core.Entry
	if err := primary.Iterate(func(k, v []byte) bool {
		if av, ok := d.Extract(k, v); ok {
			derived = append(derived, core.Entry{Key: EncodeKey(d.Attr, av, k)})
		}
		return true
	}); err != nil {
		return nil, err
	}
	return sec.PutBatch(derived)
}

// Primary returns the current (uncommitted) primary index version.
func (t *Table) Primary() core.Index { return t.primary }

// Defs returns the table's secondary definitions in declaration order.
func (t *Table) Defs() []Def { return t.defs }

// Secondary returns the current index version backing one attribute.
func (t *Table) Secondary(attr string) (core.Index, bool) {
	for i, d := range t.defs {
		if d.Attr == attr {
			return t.secs[i], true
		}
	}
	return nil, false
}

// Get reads one row from the primary.
func (t *Table) Get(key []byte) ([]byte, bool, error) { return t.primary.Get(key) }

// Put writes one row, maintaining every secondary: when the derived
// attribute changes (or appears, or disappears), the old composite key is
// deleted and the new one inserted — never both for an unchanged
// attribute, so a plain overwrite costs no secondary churn.
func (t *Table) Put(key, value []byte) error {
	old, hadOld, err := t.primary.Get(key)
	if err != nil {
		return err
	}
	next, err := t.primary.Put(key, value)
	if err != nil {
		return err
	}
	secs := make([]core.Index, len(t.secs))
	copy(secs, t.secs)
	for i, d := range t.defs {
		secs[i], err = maintain(secs[i], d, key, old, hadOld, value, true)
		if err != nil {
			return err
		}
	}
	t.primary, t.secs = next, secs
	return nil
}

// Delete removes one row, removing its derived keys from every
// secondary.
func (t *Table) Delete(key []byte) error {
	old, hadOld, err := t.primary.Get(key)
	if err != nil {
		return err
	}
	if !hadOld {
		return nil
	}
	next, err := t.primary.Delete(key)
	if err != nil {
		return err
	}
	secs := make([]core.Index, len(t.secs))
	copy(secs, t.secs)
	for i, d := range t.defs {
		secs[i], err = maintain(secs[i], d, key, old, true, nil, false)
		if err != nil {
			return err
		}
	}
	t.primary, t.secs = next, secs
	return nil
}

// maintain applies one row transition (old → new, hasNew false for a
// delete) to one secondary index.
func maintain(sec core.Index, d Def, pk, old []byte, hadOld bool, val []byte, hasNew bool) (core.Index, error) {
	var oldAv, newAv []byte
	var oldOK, newOK bool
	if hadOld {
		oldAv, oldOK = d.Extract(pk, old)
	}
	if hasNew {
		newAv, newOK = d.Extract(pk, val)
	}
	if oldOK && newOK && bytes.Equal(oldAv, newAv) {
		return sec, nil
	}
	var err error
	if oldOK {
		if sec, err = sec.Delete(EncodeKey(d.Attr, oldAv, pk)); err != nil {
			return nil, err
		}
	}
	if newOK {
		if sec, err = sec.Put(EncodeKey(d.Attr, newAv, pk), []byte{}); err != nil {
			return nil, err
		}
	}
	return sec, nil
}

// PutBatch applies one batch of rows with the canonical batch semantics
// (duplicates collapse last-wins, nil values normalize to empty), keeping
// every secondary consistent. The primary takes the batch through its
// PutBatch fast path; each secondary takes the net derived-key deletions
// and insertions.
func (t *Table) PutBatch(entries []core.Entry) error {
	if err := core.ValidateEntries(entries); err != nil {
		return err
	}
	norm := core.SortEntries(entries)
	if len(norm) == 0 {
		return nil
	}
	dels := make([][][]byte, len(t.defs))
	puts := make([][]core.Entry, len(t.defs))
	for _, e := range norm {
		old, hadOld, err := t.primary.Get(e.Key)
		if err != nil {
			return err
		}
		for i, d := range t.defs {
			var oldAv, newAv []byte
			var oldOK bool
			if hadOld {
				oldAv, oldOK = d.Extract(e.Key, old)
			}
			newAv, newOK := d.Extract(e.Key, e.Value)
			if oldOK && newOK && bytes.Equal(oldAv, newAv) {
				continue
			}
			if oldOK {
				dels[i] = append(dels[i], EncodeKey(d.Attr, oldAv, e.Key))
			}
			if newOK {
				puts[i] = append(puts[i], core.Entry{Key: EncodeKey(d.Attr, newAv, e.Key)})
			}
		}
	}
	next, err := t.primary.PutBatch(norm)
	if err != nil {
		return err
	}
	secs := make([]core.Index, len(t.secs))
	copy(secs, t.secs)
	for i := range t.defs {
		for _, k := range dels[i] {
			if secs[i], err = secs[i].Delete(k); err != nil {
				return err
			}
		}
		if secs[i], err = secs[i].PutBatch(puts[i]); err != nil {
			return err
		}
	}
	t.primary, t.secs = next, secs
	return nil
}

// RootRefs returns the root-of-roots trailer the next Commit will record:
// one RootRef per secondary, in Def order.
func (t *Table) RootRefs() []version.RootRef {
	refs := make([]version.RootRef, len(t.defs))
	for i, d := range t.defs {
		refs[i] = version.RootRef{
			Name:  d.Attr,
			Class: t.secs[i].Name(),
			Root:  t.secs[i].RootHash(),
		}
		if h, ok := t.secs[i].(interface{ Height() int }); ok {
			refs[i].Height = h.Height()
		}
	}
	return refs
}

// Commit records the current primary and every secondary root in one
// commit on the table's branch — the atomic co-commit: either the head
// advances with all roots or it does not advance at all. The returned
// commit's Meta decodes via version.DecodeRootRefs.
//
// On version.ErrCommitRaced (the commit lost its pages to a concurrent GC
// pass), the table's in-memory state is unchanged and still coherent;
// reopen with Open and re-apply the mutations, as with Repo.Commit.
func (t *Table) Commit(message string) (version.Commit, error) {
	return t.repo.CommitMeta(t.branch, t.primary, message, version.EncodeRootRefs(t.RootRefs()))
}
