package netchaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects which faults the proxy injects. The zero value forwards
// traffic untouched; fields compose freely. Fault scheduling is
// counter-based (every Nth accept, every Nth chunk) so a given config and
// traffic pattern reproduce the same fault sequence — jitter draws from the
// seeded generator, not the global one.
type Config struct {
	// Seed initializes the jitter generator. Two proxies with the same
	// Seed draw identical jitter sequences.
	Seed int64
	// DropAcceptEvery kills every Nth accepted connection immediately —
	// the shape of a crashing server or a flaky link at dial time.
	// 0 disables.
	DropAcceptEvery int
	// TruncateEvery tears every Nth relayed chunk: half the chunk is
	// forwarded, then both sides of the connection are cut. The receiver
	// sees a torn frame then EOF — never a resynchronized garbage stream.
	// 0 disables.
	TruncateEvery int
	// LatencyC2S / LatencyS2C delay each relayed chunk per direction.
	LatencyC2S time.Duration
	LatencyS2C time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per chunk,
	// drawn from the seeded generator.
	Jitter time.Duration
	// ThroughputBytesPerSec throttles each direction to roughly this rate.
	// 0 disables.
	ThroughputBytesPerSec int
	// ChunkBytes is the relay unit faults apply to. 0 = 4096.
	ChunkBytes int
}

// Counters reports what the proxy has done so far.
type Counters struct {
	Accepts        int64 // connections accepted (including dropped ones)
	DroppedAccepts int64 // connections killed at accept by DropAcceptEvery
	TruncatedConns int64 // connections cut mid-chunk by TruncateEvery
	BytesC2S       int64 // client→server bytes relayed
	BytesS2C       int64 // server→client bytes relayed
}

// Proxy is a deterministic in-process TCP fault injector: it listens on an
// ephemeral port, relays each accepted connection to a fixed target, and
// injects the faults its Config selects. SetConfig swaps fault modes live;
// Partition blackholes all traffic for a window. Safe for concurrent use.
type Proxy struct {
	ln     net.Listener
	target string

	cfg atomic.Pointer[Config]

	rngMu sync.Mutex
	rng   *rand.Rand

	accepts        atomic.Int64
	droppedAccepts atomic.Int64
	truncated      atomic.Int64
	chunks         atomic.Int64 // global chunk counter for TruncateEvery
	bytesC2S       atomic.Int64
	bytesS2C       atomic.Int64

	// partitionUntil is a unix-nano timestamp; pumps stall while it is in
	// the future.
	partitionUntil atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed chan struct{}
	wg     sync.WaitGroup
}

// New starts a proxy in front of target.
func New(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen: %w", err)
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	p.cfg.Store(&cfg)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; dial this instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetConfig swaps the fault configuration; in-flight connections pick it up
// at their next chunk. The jitter generator is not reseeded.
func (p *Proxy) SetConfig(cfg Config) { p.cfg.Store(&cfg) }

// Partition blackholes all traffic in both directions for d: chunks stall
// in the proxy (connections stay up, bytes stop flowing), the shape of a
// network partition that heals.
func (p *Proxy) Partition(d time.Duration) {
	p.partitionUntil.Store(time.Now().Add(d).UnixNano())
}

// Counters returns a snapshot of fault and traffic counters.
func (p *Proxy) Counters() Counters {
	return Counters{
		Accepts:        p.accepts.Load(),
		DroppedAccepts: p.droppedAccepts.Load(),
		TruncatedConns: p.truncated.Load(),
		BytesC2S:       p.bytesC2S.Load(),
		BytesS2C:       p.bytesS2C.Load(),
	}
}

// Close stops the listener and cuts every relayed connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	default:
	}
	close(p.closed)
	err := p.ln.Close()
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.accepts.Add(1)
		cfg := p.cfg.Load()
		if cfg.DropAcceptEvery > 0 && n%int64(cfg.DropAcceptEvery) == 0 {
			p.droppedAccepts.Add(1)
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		if !p.track(conn) || !p.track(up) {
			conn.Close()
			up.Close()
			continue
		}
		p.wg.Add(2)
		go p.pump(up, conn, &p.bytesC2S, true)
		go p.pump(conn, up, &p.bytesS2C, false)
	}
}

// track registers a connection for Close; false means the proxy is closing.
func (p *Proxy) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.closed:
		return false
	default:
	}
	p.conns[conn] = struct{}{}
	return true
}

func (p *Proxy) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
	conn.Close()
}

// pump relays src→dst one chunk at a time, injecting the configured faults.
// Either side failing (or a truncation fault) cuts both, so a torn frame is
// always followed by EOF — the peer resyncs by reconnecting, never by
// parsing mid-stream garbage.
func (p *Proxy) pump(dst, src net.Conn, bytes *atomic.Int64, c2s bool) {
	defer p.wg.Done()
	defer p.untrack(dst)
	defer p.untrack(src)
	var buf []byte
	for {
		cfg := p.cfg.Load()
		chunk := cfg.ChunkBytes
		if chunk <= 0 {
			chunk = 4096
		}
		if cap(buf) < chunk {
			buf = make([]byte, chunk)
		}
		n, err := src.Read(buf[:chunk])
		if n > 0 {
			if !p.delay(cfg, n, c2s) {
				return // proxy closed while stalling
			}
			if cfg.TruncateEvery > 0 && p.chunks.Add(1)%int64(cfg.TruncateEvery) == 0 {
				p.truncated.Add(1)
				half := n / 2
				if half > 0 {
					if _, werr := dst.Write(buf[:half]); werr == nil {
						bytes.Add(int64(half))
					}
				}
				return // deferred untracks cut both sides
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			bytes.Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}

// delay applies partition stalls, per-direction latency, jitter, and the
// throughput throttle for one chunk. It returns false if the proxy closed
// while the chunk was stalled.
func (p *Proxy) delay(cfg *Config, n int, c2s bool) bool {
	// Partition: stall until the blackhole lifts, polling so Close can
	// interrupt.
	for {
		until := p.partitionUntil.Load()
		wait := time.Until(time.Unix(0, until))
		if until == 0 || wait <= 0 {
			break
		}
		if wait > 10*time.Millisecond {
			wait = 10 * time.Millisecond
		}
		if !p.sleep(wait) {
			return false
		}
	}
	d := cfg.LatencyC2S
	if !c2s {
		d = cfg.LatencyS2C
	}
	if cfg.Jitter > 0 {
		p.rngMu.Lock()
		d += time.Duration(p.rng.Int63n(int64(cfg.Jitter)))
		p.rngMu.Unlock()
	}
	if cfg.ThroughputBytesPerSec > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / int64(cfg.ThroughputBytesPerSec))
	}
	if d > 0 {
		return p.sleep(d)
	}
	return true
}

// sleep waits d or until the proxy closes; false means closed.
func (p *Proxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.closed:
		return false
	}
}
