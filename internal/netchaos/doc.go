// Package netchaos is a deterministic in-process TCP fault injector for
// tests: a proxy that relays connections to a fixed target while injecting
// wire-level faults — dropped accepts, torn (truncated) streams, latency
// and jitter, throughput throttling, and timed partitions.
//
// It is the network-layer sibling of the storage-layer faultstore package,
// and follows the same discipline: fault scheduling is counter-based (every
// Nth accept, every Nth relayed chunk) and randomness comes only from the
// Config's seed, so a fault sequence reproduces under a fixed config and
// traffic pattern. Configs swap live via SetConfig, which is how the
// serving-layer chaos soak rotates fault modes over one long run.
//
// A deliberate invariant: a truncation fault always cuts the connection
// after forwarding the torn half-chunk. The receiver observes a torn frame
// then EOF and recovers by reconnecting — the proxy never lets a peer read
// bytes from the middle of a stream as if they were a frame boundary,
// because no length-prefixed protocol can recover from that.
package netchaos
