package netchaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String()
}

func roundTrip(t *testing.T, addr string, msg []byte) ([]byte, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		return nil, err
	}
	return got, nil
}

func TestProxyPassThrough(t *testing.T) {
	target := echoServer(t)
	p, err := New(target, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	msg := bytes.Repeat([]byte("chaos"), 2000) // spans multiple chunks
	got, err := roundTrip(t, p.Addr(), msg)
	if err != nil {
		t.Fatalf("clean round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("proxy corrupted a clean relay")
	}
	c := p.Counters()
	if c.Accepts != 1 || c.BytesC2S != int64(len(msg)) || c.BytesS2C != int64(len(msg)) {
		t.Fatalf("counters = %+v", c)
	}
}

func TestProxyDropsAccepts(t *testing.T) {
	target := echoServer(t)
	p, err := New(target, Config{DropAcceptEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	failures := 0
	for i := 0; i < 6; i++ {
		if _, err := roundTrip(t, p.Addr(), []byte("ping")); err != nil {
			failures++
		}
	}
	if c := p.Counters(); c.DroppedAccepts != 3 {
		t.Fatalf("dropped %d accepts, want every 2nd of 6", c.DroppedAccepts)
	}
	if failures != 3 {
		t.Fatalf("%d round trips failed, want 3", failures)
	}
}

func TestProxyTruncatesAndCuts(t *testing.T) {
	target := echoServer(t)
	// Every chunk is torn: the write is cut mid-stream and the connection
	// dies — the reader must see an error, never a quietly short echo that
	// looks complete.
	p, err := New(target, Config{TruncateEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	msg := bytes.Repeat([]byte("x"), 1000)
	if got, err := roundTrip(t, p.Addr(), msg); err == nil && bytes.Equal(got, msg) {
		t.Fatal("round trip survived TruncateEvery=1 intact")
	}
	if c := p.Counters(); c.TruncatedConns == 0 {
		t.Fatalf("no truncations counted: %+v", c)
	}
}

func TestProxyPartitionStallsThenHeals(t *testing.T) {
	target := echoServer(t)
	p, err := New(target, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Partition(150 * time.Millisecond)
	start := time.Now()
	got, err := roundTrip(t, p.Addr(), []byte("through the blackhole"))
	if err != nil {
		t.Fatalf("round trip after partition heal: %v", err)
	}
	if string(got) != "through the blackhole" {
		t.Fatalf("healed relay corrupted: %q", got)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("partition did not stall traffic: round trip took %v", elapsed)
	}
}

func TestProxySetConfigSwapsLive(t *testing.T) {
	target := echoServer(t)
	p, err := New(target, Config{DropAcceptEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := roundTrip(t, p.Addr(), []byte("doomed")); err == nil {
		t.Fatal("DropAcceptEvery=1 let a connection through")
	}
	p.SetConfig(Config{})
	got, err := roundTrip(t, p.Addr(), []byte("clean"))
	if err != nil || string(got) != "clean" {
		t.Fatalf("round trip after SetConfig(clean) = %q, %v", got, err)
	}
}

func TestProxySeededJitterIsDeterministic(t *testing.T) {
	// Two proxies with the same seed draw the same jitter sequence; this
	// pins the generator so refactors do not silently reintroduce global
	// randomness.
	a, err := New(echoServer(t), Config{Seed: 7, Jitter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(echoServer(t), Config{Seed: 7, Jitter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 8; i++ {
		da := a.rng.Int63n(int64(time.Millisecond))
		db := b.rng.Int63n(int64(time.Millisecond))
		if da != db {
			t.Fatalf("draw %d diverged: %d vs %d", i, da, db)
		}
	}
}

func TestProxyCloseIsIdempotentAndCutsConns(t *testing.T) {
	target := echoServer(t)
	p, err := New(target, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, p.Addr(), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("relayed connection survived proxy Close")
	}
}
