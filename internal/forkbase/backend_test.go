package forkbase

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
)

// TestServletAcrossStoreBackends serves the same dataset from a servlet
// whose index sits on each store backend in turn — the server side of the
// backend matrix cmd/siribench selects with -store. Reads, writes and the
// post-write reads must behave identically on all of them.
func TestServletAcrossStoreBackends(t *testing.T) {
	for _, backend := range store.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			s, err := store.Open(store.Config{Backend: backend, Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { store.Release(s) })

			cfg := postree.ConfigForNodeSize(256)
			idx, err := postree.Build(s, cfg, entriesN(300))
			if err != nil {
				t.Fatal(err)
			}
			srv, addr := startServlet(t, idx)

			cli, err := Dial(addr, posLoader(cfg), 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			for i := 0; i < 300; i += 23 {
				key := []byte(fmt.Sprintf("key-%05d", i))
				v, ok, err := cli.Get(key)
				if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("value-%05d", i))) {
					t.Fatalf("Get(%q) = %q, %v, %v", key, v, ok, err)
				}
			}
			if err := cli.PutBatch(entriesAt(300, 20)); err != nil {
				t.Fatal(err)
			}
			v, ok, err := cli.Get([]byte("key-00310"))
			if err != nil || !ok || string(v) != "value-00310" {
				t.Fatalf("post-write Get = %q, %v, %v", v, ok, err)
			}
			if srv.Head().RootHash().IsNull() {
				t.Fatal("null head after writes")
			}
		})
	}
}

// TestServletDiskBackendSurvivesReopen writes through the servlet onto a
// disk store, closes everything, and serves the data again from a reopened
// store — persistence across a full server restart.
func TestServletDiskBackendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := postree.ConfigForNodeSize(256)

	d, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := postree.Build(d, cfg, entriesN(200))
	if err != nil {
		t.Fatal(err)
	}
	root := idx.RootHash()
	height := idx.Height()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	_, addr := startServlet(t, postree.Load(re, cfg, root, height))

	cli, err := Dial(addr, posLoader(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 200; i += 17 {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, ok, err := cli.Get(key)
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("value-%05d", i))) {
			t.Fatalf("Get(%q) after reopen = %q, %v, %v", key, v, ok, err)
		}
	}
}

// entriesAt generates n sequential entries starting at index start.
func entriesAt(start, n int) []core.Entry {
	out := make([]core.Entry, n)
	for i := range out {
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("key-%05d", start+i)),
			Value: []byte(fmt.Sprintf("value-%05d", start+i)),
		}
	}
	return out
}
