package forkbase

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/query"
	"repro/internal/secondary"
	"repro/internal/store"
	"repro/internal/version"
)

// cityOf splits "city|rest" values; rows without '|' stay unindexed.
func cityOf(_, value []byte) ([]byte, bool) {
	i := bytes.IndexByte(value, '|')
	if i < 0 {
		return nil, false
	}
	return value[:i], true
}

func newMPT(s store.Store) (core.Index, error) { return mpt.New(s), nil }

func startTableServlet(t *testing.T) (*secondary.Table, string) {
	t.Helper()
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(s, root), nil
	})
	tbl, err := secondary.Open(repo, "main", newMPT,
		secondary.Def{Attr: "city", Extract: cityOf, New: newMPT})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServletTable(tbl)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return tbl, addr
}

// TestClientQueryThroughTable exercises the msgQuery verb end to end
// against a table servlet: writes go through the client (maintaining the
// secondary server-side), then exact and range predicates come back with
// the rows the index route produced and a plan that says so.
func TestClientQueryThroughTable(t *testing.T) {
	_, addr := startTableServlet(t)
	cli, err := Dial(addr, func(s store.Store, root hash.Hash, _ int) core.Index {
		return mpt.Load(s, root)
	}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// 60 rows over 10 cities: city c%1d gets rows i%10==c.
	var entries []core.Entry
	for i := 0; i < 60; i++ {
		entries = append(entries, core.Entry{
			Key:   []byte(fmt.Sprintf("pk-%03d", i)),
			Value: []byte(fmt.Sprintf("c%d|row-%d", i%10, i)),
		})
	}
	if err := cli.PutBatch(entries); err != nil {
		t.Fatal(err)
	}

	rows, plan, err := cli.Query(query.Query{Attr: "city", Exact: []byte("c3")})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsedIndex || plan.IndexClass != "MPT" || plan.FellBack {
		t.Fatalf("exact plan = %+v, want index route via MPT", plan)
	}
	if len(rows) != 6 {
		t.Fatalf("exact query returned %d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if !bytes.HasPrefix(row.Value, []byte("c3|")) {
			t.Fatalf("row %q = %q not in city c3", row.Key, row.Value)
		}
	}

	// Range [c4, c6) covers two cities; Limit truncates in index order
	// (value, then pk), so c4's three lowest pks come back.
	rows, plan, err = cli.Query(query.Query{
		Attr: "city", Lo: []byte("c4"), Hi: []byte("c6"), Limit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsedIndex {
		t.Fatalf("range plan = %+v, want index route", plan)
	}
	want := [][]byte{[]byte("pk-004"), []byte("pk-014"), []byte("pk-024")}
	if len(rows) != len(want) {
		t.Fatalf("range query returned %d rows, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		if !bytes.Equal(row.Key, want[i]) {
			t.Fatalf("range row %d = %q, want %q", i, row.Key, want[i])
		}
	}

	// Unknown attribute is a permanent error, not a dropped connection:
	// the same client must keep working afterward.
	if _, _, err := cli.Query(query.Query{Attr: "nope", Exact: []byte("x")}); err == nil {
		t.Fatal("query on unknown attribute succeeded")
	}
	if _, plan, err := cli.Query(query.Query{Attr: "city", Exact: []byte("c0")}); err != nil || !plan.UsedIndex {
		t.Fatalf("query after error = %+v, %v", plan, err)
	}

	// A second batch through the client must keep the secondary current.
	if err := cli.PutBatch([]core.Entry{
		{Key: []byte("pk-003"), Value: []byte("c9|moved")},
	}); err != nil {
		t.Fatal(err)
	}
	rows, _, err = cli.Query(query.Query{Attr: "city", Exact: []byte("c3")})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if bytes.Equal(row.Key, []byte("pk-003")) {
			t.Fatal("moved row still listed under its old city")
		}
	}
	if len(rows) != 5 {
		t.Fatalf("c3 after move holds %d rows, want 5", len(rows))
	}
}

// TestClientQueryPrimaryOnly checks the msgQuery verb against a plain
// servlet with no table: predicates on the primary key work, attribute
// predicates report the unknown-attribute error.
func TestClientQueryPrimaryOnly(t *testing.T) {
	s := store.NewMemStore()
	idx, err := core.Index(mpt.New(s)).PutBatch(entriesN(40))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServlet(t, idx)
	cli, err := Dial(addr, func(s store.Store, root hash.Hash, _ int) core.Index {
		return mpt.Load(s, root)
	}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rows, plan, err := cli.Query(query.Query{
		Lo: []byte("key-00010"), Hi: []byte("key-00013"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.UsedIndex || plan.FellBack {
		t.Fatalf("pk plan = %+v, want direct primary range", plan)
	}
	if len(rows) != 3 || !bytes.Equal(rows[0].Key, []byte("key-00010")) {
		t.Fatalf("pk range = %d rows starting %q, want 3 from key-00010",
			len(rows), rows[0].Key)
	}
	if _, _, err := cli.Query(query.Query{Attr: "city", Exact: []byte("c1")}); err == nil {
		t.Fatal("attribute query on primary-only servlet succeeded")
	}
}
