// Package forkbase implements a miniature version of the client/server
// storage engine used in the paper's system experiments (§5.6): a single
// servlet owning the authoritative index over a content-addressed store,
// and clients that execute reads by fetching nodes over the network
// (caching them locally, as Forkbase does) while writes are shipped to the
// servlet and applied there.
//
// # Wire protocol
//
// The protocol is deliberately small: length-prefixed binary messages
// carrying node fetches, batched writes, and root queries. Any core.Index
// implementation can be served, which is how the Forkbase (POS-Tree) versus
// Noms (Prolly Tree) comparison of §5.6.2 is run on identical plumbing.
// Errors come in four flavors: msgErr is permanent and fails the request;
// msgErrRetry marks a transient server-side condition (a commit raced a GC
// pass past the server's own retry budget) the client resends after;
// msgErrBusy means the server shed the request under overload (or refused
// a write on a space-degraded store) without doing any work; msgErrDeadline
// means the server aborted the request because its propagated budget ran
// out. All but msgErr keep the connection. Requests may be wrapped in a
// msgBudget envelope carrying the client's remaining per-call time; servers
// that predate the envelope never see it (clients can disable it with
// Options.NoBudget), and servers accept bare requests unchanged, so the
// extension is backward compatible in both directions.
//
// # Overload protection
//
// ServerOptions bounds every axis on which an overloaded or hostile peer
// could otherwise grow server state without limit: MaxConns (admission —
// an accept over the limit is answered msgErrBusy and closed), MaxInflight
// (execution — a request with no free slot is shed with msgErrBusy, the
// connection kept), IdleTimeout (conns that dial and stall are reaped) and
// MaxFrameBytes (an oversized frame is rejected before its payload is
// read). Shedding is deliberate: under sustained overload a queue only
// converts shed-able load into latency until every admitted request times
// out — the congestion collapse the bench package's "overload" experiment
// measures, comparing goodput and p99 with the limits on versus off.
//
// # Deadline propagation
//
// Clients wrap each request in a msgBudget envelope carrying the call's
// remaining time. The server fixes the deadline when it reads the frame —
// so queueing counts against the budget — and aborts work the client will
// never collect: before dispatch, before applying a write batch it had to
// wait to start, and every budgetCheckRows rows inside a range scan. The
// abort surfaces as msgErrDeadline (ErrBudgetExceeded) and a retry carries
// a fresh budget.
//
// # Fault handling
//
// Every client call runs under a per-round-trip deadline and retries
// transient failures with capped exponential backoff and jitter — torn
// connections are redialed, msgErrRetry responses resent (Options tunes
// all three knobs). Enough consecutive msgErrBusy sheds trip a client-side
// circuit breaker: calls fail fast with ErrCircuitOpen for a cooldown
// instead of feeding retries to a server that is already drowning, then a
// single probe half-opens it — a shed probe re-trips immediately, a
// success closes it (Options.BreakerThreshold/BreakerCooldown). Resending
// a write batch is safe: applying the same
// entries to the already-advanced head yields the identical version, so
// the retry is idempotent by content addressing. A servlet built with
// NewServletRepo commits every accepted batch to a version.Repo branch
// through version.CommitRetry, making each network write a durable,
// GC-race-proof commit; Close drains in-flight requests before returning.
//
// # Roles in the larger system
//
// The servlet is the write authority: it applies batches with the staged
// commit path and advances its head root, which clients poll with root
// queries and Load into read-only views via a Loader (the same
// class-keyed reconstruction closure internal/version uses for checkout —
// the two Loader types mirror each other deliberately). Client-side
// CachedStore layers never need invalidation because nodes are immutable
// and content-addressed.
//
// Garbage collection (internal/version) runs concurrently with the
// servlet's local traffic — the write barrier and commit gate make a pass
// safe against in-flight batches without pausing the servlet. The remote
// side is the open part: clients hold no lease on the nodes they cache,
// so a remote GC protocol — sweeping the servlet's store while clients
// keep reading — needs a liveness handshake (the reader-pin machinery is
// the natural local anchor for it) and is tracked as a ROADMAP open item
// rather than implemented here.
package forkbase
