// Package forkbase implements a miniature version of the client/server
// storage engine used in the paper's system experiments (§5.6): a single
// servlet owning the authoritative index over a content-addressed store,
// and clients that execute reads by fetching nodes over the network
// (caching them locally, as Forkbase does) while writes are shipped to the
// servlet and applied there.
//
// # Wire protocol
//
// The protocol is deliberately small: length-prefixed binary messages
// carrying node fetches, batched writes, and root queries. Any core.Index
// implementation can be served, which is how the Forkbase (POS-Tree) versus
// Noms (Prolly Tree) comparison of §5.6.2 is run on identical plumbing.
// Errors come in two flavors: msgErr is permanent and fails the request,
// msgErrRetry marks a transient server-side condition (a commit raced a GC
// pass past the server's own retry budget) the client resends after.
//
// # Fault handling
//
// Every client call runs under a per-round-trip deadline and retries
// transient failures with capped exponential backoff and jitter — torn
// connections are redialed, msgErrRetry responses resent (Options tunes
// all three knobs). Resending a write batch is safe: applying the same
// entries to the already-advanced head yields the identical version, so
// the retry is idempotent by content addressing. A servlet built with
// NewServletRepo commits every accepted batch to a version.Repo branch
// through version.CommitRetry, making each network write a durable,
// GC-race-proof commit; Close drains in-flight requests before returning.
//
// # Roles in the larger system
//
// The servlet is the write authority: it applies batches with the staged
// commit path and advances its head root, which clients poll with root
// queries and Load into read-only views via a Loader (the same
// class-keyed reconstruction closure internal/version uses for checkout —
// the two Loader types mirror each other deliberately). Client-side
// CachedStore layers never need invalidation because nodes are immutable
// and content-addressed.
//
// Garbage collection (internal/version) runs concurrently with the
// servlet's local traffic — the write barrier and commit gate make a pass
// safe against in-flight batches without pausing the servlet. The remote
// side is the open part: clients hold no lease on the nodes they cache,
// so a remote GC protocol — sweeping the servlet's store while clients
// keep reading — needs a liveness handshake (the reader-pin machinery is
// the natural local anchor for it) and is tracked as a ROADMAP open item
// rather than implemented here.
package forkbase
