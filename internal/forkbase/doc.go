// Package forkbase implements a miniature version of the client/server
// storage engine used in the paper's system experiments (§5.6): a single
// servlet owning the authoritative index over a content-addressed store,
// and clients that execute reads by fetching nodes over the network
// (caching them locally, as Forkbase does) while writes are shipped to the
// servlet and applied there.
//
// # Wire protocol
//
// The protocol is deliberately small: length-prefixed binary messages
// carrying node fetches, batched writes, and root queries. Any core.Index
// implementation can be served, which is how the Forkbase (POS-Tree) versus
// Noms (Prolly Tree) comparison of §5.6.2 is run on identical plumbing.
//
// # Roles in the larger system
//
// The servlet is the write authority: it applies batches with the staged
// commit path and advances its head root, which clients poll with root
// queries and Load into read-only views via a Loader (the same
// class-keyed reconstruction closure internal/version uses for checkout —
// the two Loader types mirror each other deliberately). Client-side
// CachedStore layers never need invalidation because nodes are immutable
// and content-addressed.
//
// Garbage collection (internal/version) runs concurrently with the
// servlet's local traffic — the write barrier and commit gate make a pass
// safe against in-flight batches without pausing the servlet. The remote
// side is the open part: clients hold no lease on the nodes they cache,
// so a remote GC protocol — sweeping the servlet's store while clients
// keep reading — needs a liveness handshake (the reader-pin machinery is
// the natural local anchor for it) and is tracked as a ROADMAP open item
// rather than implemented here.
package forkbase
