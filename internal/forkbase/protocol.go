package forkbase

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
)

// Message type tags.
const (
	msgGetNode  = 1 // request: hash → node bytes
	msgNode     = 2 // response: node bytes
	msgMissing  = 3 // response: node not found
	msgPutBatch = 4 // request: entries → applied server-side
	msgRoot     = 5 // response: root hash + height
	msgGetRoot  = 6 // request: current root
	msgErr      = 7 // response: permanent error text, request failed
	msgErrRetry = 8 // response: transient error text, safe to resend
)

// maxMessage bounds a single message (64 MiB) to fail fast on corruption.
const maxMessage = 64 << 20

// writeMsg frames and writes one message: 4-byte big-endian length, then a
// type byte and the payload.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("forkbase: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("forkbase: write payload: %w", err)
	}
	return nil
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxMessage {
		return 0, nil, fmt.Errorf("forkbase: bad message length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("forkbase: read body: %w", err)
	}
	return buf[0], buf[1:], nil
}

// encodeEntries serializes a batch of entries.
func encodeEntries(entries []core.Entry) []byte {
	w := codec.NewWriter(64 * len(entries))
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.LenBytes(e.Key)
		w.LenBytes(e.Value)
	}
	return w.Bytes()
}

// decodeEntries parses a batch of entries.
func decodeEntries(data []byte) ([]core.Entry, error) {
	r := codec.NewReader(data)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]core.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytesCopy()
		if err != nil {
			return nil, err
		}
		v, err := r.LenBytesCopy()
		if err != nil {
			return nil, err
		}
		out = append(out, core.Entry{Key: k, Value: v})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// encodeRoot serializes a root response.
func encodeRoot(root hash.Hash, height int) []byte {
	w := codec.NewWriter(40)
	w.Bytes32(root[:])
	w.Uvarint(uint64(height))
	return w.Bytes()
}

// decodeRoot parses a root response.
func decodeRoot(data []byte) (hash.Hash, int, error) {
	r := codec.NewReader(data)
	hb, err := r.Bytes32()
	if err != nil {
		return hash.Null, 0, err
	}
	ht, err := r.Uvarint()
	if err != nil {
		return hash.Null, 0, err
	}
	if err := r.Done(); err != nil {
		return hash.Null, 0, err
	}
	return hash.MustFromBytes(hb), int(ht), nil
}
