package forkbase

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/query"
)

// Message type tags.
const (
	msgGetNode  = 1  // request: hash → node bytes
	msgNode     = 2  // response: node bytes
	msgMissing  = 3  // response: node not found
	msgPutBatch = 4  // request: entries → applied server-side
	msgRoot     = 5  // response: root hash + height
	msgGetRoot  = 6  // request: current root
	msgErr      = 7  // response: permanent error text, request failed
	msgErrRetry = 8  // response: transient error text, safe to resend
	msgQuery    = 9  // request: one query.Query predicate, served server-side
	msgRows     = 10 // response: plan flags + result rows
	// msgErrBusy is the overload/degraded signal: the server shed this
	// request (connection limit, in-flight limit, or a degraded store) and
	// did no work. Retryable with backoff; the client's circuit breaker
	// counts consecutive ones.
	msgErrBusy = 11
	// msgBudget is a request envelope: a uvarint of the client's remaining
	// per-call budget in milliseconds, then the inner request (type byte +
	// payload). Servers abort work that cannot finish in budget. A request
	// sent bare (no envelope) carries no budget — old clients keep working.
	msgBudget = 12
	// msgErrDeadline reports that the server aborted the request because
	// its propagated budget ran out mid-work. Transient from the wire's
	// point of view (a retry gets a fresh budget); the text is the typed
	// ErrBudgetExceeded cause.
	msgErrDeadline = 13
)

// maxMessage bounds a single message (64 MiB) to fail fast on corruption.
const maxMessage = 64 << 20

// writeMsg frames and writes one message: 4-byte big-endian length, then a
// type byte and the payload.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("forkbase: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("forkbase: write payload: %w", err)
	}
	return nil
}

// readMsg reads one framed message under the protocol-wide size bound.
func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	return readMsgLimit(r, maxMessage)
}

// readMsgLimit reads one framed message, rejecting frames over limit. The
// server reads requests under its configured (usually much smaller) frame
// cap; responses and unconfigured readers use the protocol-wide bound.
func readMsgLimit(r io.Reader, limit uint32) (typ byte, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > limit {
		return 0, nil, fmt.Errorf("forkbase: bad message length %d (limit %d)", n, limit)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("forkbase: read body: %w", err)
	}
	return buf[0], buf[1:], nil
}

// encodeBudget wraps one request frame in a msgBudget envelope carrying the
// client's remaining per-call budget. Budgets round up to a whole
// millisecond so a small positive budget never encodes as "no budget".
func encodeBudget(budget time.Duration, typ byte, payload []byte) []byte {
	ms := uint64((budget + time.Millisecond - 1) / time.Millisecond)
	buf := make([]byte, 0, binary.MaxVarintLen64+1+len(payload))
	buf = binary.AppendUvarint(buf, ms)
	buf = append(buf, typ)
	return append(buf, payload...)
}

// decodeBudget unwraps a msgBudget envelope into the budget and the inner
// request.
func decodeBudget(data []byte) (time.Duration, byte, []byte, error) {
	ms, n := binary.Uvarint(data)
	if n <= 0 || n >= len(data) {
		return 0, 0, nil, fmt.Errorf("forkbase: bad budget envelope")
	}
	return time.Duration(ms) * time.Millisecond, data[n], data[n+1:], nil
}

// encodeEntries serializes a batch of entries.
func encodeEntries(entries []core.Entry) []byte {
	w := codec.NewWriter(64 * len(entries))
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.LenBytes(e.Key)
		w.LenBytes(e.Value)
	}
	return w.Bytes()
}

// decodeEntries parses a batch of entries.
func decodeEntries(data []byte) ([]core.Entry, error) {
	r := codec.NewReader(data)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]core.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytesCopy()
		if err != nil {
			return nil, err
		}
		v, err := r.LenBytesCopy()
		if err != nil {
			return nil, err
		}
		out = append(out, core.Entry{Key: k, Value: v})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// Query payload flag bits: which optional predicate fields are present,
// so nil (unbounded / range-query) and empty (a real zero-length value)
// survive the wire.
const (
	qryHasExact = 1 << 0
	qryHasLo    = 1 << 1
	qryHasHi    = 1 << 2
)

// encodeQuery serializes one predicate.
func encodeQuery(q query.Query) []byte {
	w := codec.NewWriter(32 + len(q.Attr) + len(q.Exact) + len(q.Lo) + len(q.Hi))
	w.LenBytes([]byte(q.Attr))
	var flags byte
	if q.Exact != nil {
		flags |= qryHasExact
	}
	if q.Lo != nil {
		flags |= qryHasLo
	}
	if q.Hi != nil {
		flags |= qryHasHi
	}
	w.Byte(flags)
	if q.Exact != nil {
		w.LenBytes(q.Exact)
	}
	if q.Lo != nil {
		w.LenBytes(q.Lo)
	}
	if q.Hi != nil {
		w.LenBytes(q.Hi)
	}
	w.Uvarint(uint64(q.Limit))
	return w.Bytes()
}

// decodeQuery parses one predicate, restoring the nil-vs-empty
// distinctions the planner's bound semantics depend on.
func decodeQuery(data []byte) (query.Query, error) {
	r := codec.NewReader(data)
	attr, err := r.LenBytesCopy()
	if err != nil {
		return query.Query{}, err
	}
	flags, err := r.Byte()
	if err != nil {
		return query.Query{}, err
	}
	q := query.Query{Attr: string(attr)}
	present := func() ([]byte, error) {
		b, err := r.LenBytesCopy()
		if err != nil {
			return nil, err
		}
		if b == nil {
			b = []byte{}
		}
		return b, nil
	}
	if flags&qryHasExact != 0 {
		if q.Exact, err = present(); err != nil {
			return query.Query{}, err
		}
	}
	if flags&qryHasLo != 0 {
		if q.Lo, err = present(); err != nil {
			return query.Query{}, err
		}
	}
	if flags&qryHasHi != 0 {
		if q.Hi, err = present(); err != nil {
			return query.Query{}, err
		}
	}
	limit, err := r.Uvarint()
	if err != nil {
		return query.Query{}, err
	}
	q.Limit = int(limit)
	if err := r.Done(); err != nil {
		return query.Query{}, err
	}
	return q, nil
}

// Rows payload flag bits: how the server executed the query.
const (
	rowsUsedIndex = 1 << 0
	rowsFellBack  = 1 << 1
)

// encodeRows serializes a query response: the plan, then the rows.
func encodeRows(rows []query.Row, plan query.Plan) []byte {
	w := codec.NewWriter(64 * (len(rows) + 1))
	var flags byte
	if plan.UsedIndex {
		flags |= rowsUsedIndex
	}
	if plan.FellBack {
		flags |= rowsFellBack
	}
	w.Byte(flags)
	w.LenBytes([]byte(plan.IndexClass))
	w.Uvarint(uint64(len(rows)))
	for _, row := range rows {
		w.LenBytes(row.Key)
		w.LenBytes(row.Value)
	}
	return w.Bytes()
}

// decodeRows parses a query response.
func decodeRows(data []byte) ([]query.Row, query.Plan, error) {
	r := codec.NewReader(data)
	flags, err := r.Byte()
	if err != nil {
		return nil, query.Plan{}, err
	}
	class, err := r.LenBytesCopy()
	if err != nil {
		return nil, query.Plan{}, err
	}
	plan := query.Plan{
		UsedIndex:  flags&rowsUsedIndex != 0,
		FellBack:   flags&rowsFellBack != 0,
		IndexClass: string(class),
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, query.Plan{}, err
	}
	// Each row costs at least two length bytes; a count beyond that is a
	// corrupt frame, not a huge allocation.
	if n > uint64(r.Remaining()) {
		return nil, query.Plan{}, fmt.Errorf("forkbase: rows count %d exceeds payload", n)
	}
	rows := make([]query.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytesCopy()
		if err != nil {
			return nil, query.Plan{}, err
		}
		v, err := r.LenBytesCopy()
		if err != nil {
			return nil, query.Plan{}, err
		}
		rows = append(rows, query.Row{Key: k, Value: v})
	}
	if err := r.Done(); err != nil {
		return nil, query.Plan{}, err
	}
	return rows, plan, nil
}

// encodeRoot serializes a root response.
func encodeRoot(root hash.Hash, height int) []byte {
	w := codec.NewWriter(40)
	w.Bytes32(root[:])
	w.Uvarint(uint64(height))
	return w.Bytes()
}

// decodeRoot parses a root response.
func decodeRoot(data []byte) (hash.Hash, int, error) {
	r := codec.NewReader(data)
	hb, err := r.Bytes32()
	if err != nil {
		return hash.Null, 0, err
	}
	ht, err := r.Uvarint()
	if err != nil {
		return hash.Null, 0, err
	}
	if err := r.Done(); err != nil {
		return hash.Null, 0, err
	}
	return hash.MustFromBytes(hb), int(ht), nil
}
