package forkbase

import (
	"errors"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/postree"
	"repro/internal/secondary"
	"repro/internal/store"
	"repro/internal/version"
)

// startOwnedTableServlet is startTableServlet, but returns the servlet so
// tests can reach its internals (e.g. hold s.mu to simulate queueing).
func startOwnedTableServlet(t *testing.T) (*Servlet, string) {
	t.Helper()
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(s, root), nil
	})
	tbl, err := secondary.Open(repo, "main", newMPT,
		secondary.Def{Attr: "city", Extract: cityOf, New: newMPT})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServletTable(tbl)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// checkNoGoroutineLeaks fails the test if the goroutine count has not
// settled back to (near) its starting level by the end of the test. Call it
// first; it snapshots the baseline and registers the check as a cleanup.
func checkNoGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Connection handlers unwind asynchronously after Close returns;
		// give them a bounded grace period before declaring a leak.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutines leaked: %d at start, %d at end", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func smallServlet(t *testing.T, n int, opts ServerOptions) (*Servlet, string, postree.Config) {
	t.Helper()
	cfg := postree.ConfigForNodeSize(256)
	idx, err := postree.Build(store.NewMemStore(), cfg, entriesN(n))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServlet(idx).WithOptions(opts)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, cfg
}

func TestServletCloseIsIdempotent(t *testing.T) {
	checkNoGoroutineLeaks(t)
	srv, addr, _ := smallServlet(t, 10, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	// Second and concurrent Closes must not double-close the listener,
	// re-close the drain channel, or panic.
	done := make(chan error, 2)
	go func() { done <- srv.Close() }()
	go func() { done <- srv.Close() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("repeat Close: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("repeat Close hung")
		}
	}
}

func TestServerShedsConnectionsOverLimit(t *testing.T) {
	checkNoGoroutineLeaks(t)
	_, addr, _ := smallServlet(t, 10, ServerOptions{MaxConns: 2})

	// Fill the two admission slots with parked connections.
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeMsg(conn, msgGetRoot, nil); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := readMsg(conn); err != nil || typ != msgRoot {
			t.Fatalf("conn %d getroot = %d, %v", i, typ, err)
		}
	}
	// The third dial is turned away with a retryable busy, then closed.
	over, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	_ = over.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := readMsg(over)
	if err != nil || typ != msgErrBusy {
		t.Fatalf("over-limit conn got %d (%q), %v; want msgErrBusy", typ, payload, err)
	}
	if _, _, err := readMsg(over); err == nil {
		t.Fatal("over-limit conn stayed open after the busy notice")
	}
}

func TestServerShedsInflightOverLimit(t *testing.T) {
	checkNoGoroutineLeaks(t)
	srv, addr, _ := smallServlet(t, 10, ServerOptions{MaxInflight: 1})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Occupy the single execution slot, as a stuck request would.
	srv.inflight <- struct{}{}
	if err := writeMsg(conn, msgGetRoot, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readMsg(conn)
	if err != nil || typ != msgErrBusy {
		t.Fatalf("request with slots full = %d, %v; want msgErrBusy", typ, err)
	}
	// Shedding keeps the connection: free the slot and the same conn works.
	<-srv.inflight
	if err := writeMsg(conn, msgGetRoot, nil); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readMsg(conn); err != nil || typ != msgRoot {
		t.Fatalf("request after slot freed = %d, %v; want msgRoot", typ, err)
	}
}

func TestServerReapsIdleConnections(t *testing.T) {
	checkNoGoroutineLeaks(t)
	_, addr, _ := smallServlet(t, 10, ServerOptions{IdleTimeout: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must hang up on its own.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readMsg(conn); err == nil {
		t.Fatal("idle connection was answered instead of reaped")
	}
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	checkNoGoroutineLeaks(t)
	_, addr, _ := smallServlet(t, 10, ServerOptions{MaxFrameBytes: 1024})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	// A frame over the cap is rejected from its header alone — the payload
	// is never read, so it does not even need to be sent.
	if err := writeMsg(conn, msgGetRoot, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readMsg(conn)
	if err != nil || typ != msgErr {
		t.Fatalf("oversized frame = %d, %v; want msgErr", typ, err)
	}
	if _, _, err := readMsg(conn); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
}

func TestServerAbortsCommitOverBudget(t *testing.T) {
	// The table-commit path re-checks the budget after acquiring s.mu, so
	// a request that spent its whole budget queueing behind another writer
	// aborts without touching the table. Holding s.mu from the test is
	// that queueing, made deterministic.
	checkNoGoroutineLeaks(t)
	tblSrv, tblAddr := startOwnedTableServlet(t)
	c2, err := net.Dial("tcp", tblAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_ = c2.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeMsg(c2, msgGetRoot, nil); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readMsg(c2); err != nil || typ != msgRoot {
		t.Fatalf("warmup = %d, %v", typ, err)
	}

	tblSrv.mu.Lock()
	batch := encodeEntries([]core.Entry{{Key: []byte("pk-budget"), Value: []byte("c1|v")}})
	if err := writeMsg(c2, msgBudget, encodeBudget(20*time.Millisecond, msgPutBatch, batch)); err != nil {
		tblSrv.mu.Unlock()
		t.Fatal(err)
	}
	// The handler reads the frame, passes dispatch's entry check (budget
	// alive), and parks on s.mu in commitTableBatch. Let the budget die,
	// then release: the post-lock check must fire.
	time.Sleep(60 * time.Millisecond)
	tblSrv.mu.Unlock()
	typ, payload, err := readMsg(c2)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgErrDeadline {
		t.Fatalf("budget-starved commit = %d (%q), want msgErrDeadline", typ, payload)
	}
	// The aborted commit left no partial state and the connection lives: a
	// budgeted retry of the same batch succeeds.
	if err := writeMsg(c2, msgBudget, encodeBudget(5*time.Second, msgPutBatch, batch)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readMsg(c2); err != nil || typ != msgRoot {
		t.Fatalf("retried commit = %d, %v, want msgRoot", typ, err)
	}
}

// fakeSource counts rows out of a fixed iteration space.
type fakeSource struct{ rows int }

func (f fakeSource) Get([]byte) ([]byte, bool, error) { return []byte("v"), true, nil }
func (f fakeSource) Range(lo, hi []byte, fn func(k, v []byte) bool) error {
	for i := 0; i < f.rows; i++ {
		if !fn([]byte{byte(i)}, []byte("v")) {
			return nil
		}
	}
	return nil
}

func TestBudgetSourceAbortsExpiredScan(t *testing.T) {
	expired := budgetSource{src: fakeSource{rows: 10000}, deadline: time.Now().Add(-time.Second)}
	seen := 0
	err := expired.Range(nil, nil, func(k, v []byte) bool { seen++; return true })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expired Range error = %v, want ErrBudgetExceeded", err)
	}
	if seen > budgetCheckRows {
		t.Fatalf("expired scan still visited %d rows", seen)
	}
	if _, _, err := expired.Get([]byte("k")); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expired Get error = %v, want ErrBudgetExceeded", err)
	}
	// A live deadline passes everything through.
	live := budgetSource{src: fakeSource{rows: 100}, deadline: time.Now().Add(time.Hour)}
	seen = 0
	if err := live.Range(nil, nil, func(k, v []byte) bool { seen++; return true }); err != nil || seen != 100 {
		t.Fatalf("live Range = %d rows, %v", seen, err)
	}
}

func TestDispatchRejectsExpiredBudget(t *testing.T) {
	checkNoGoroutineLeaks(t)
	srv, _, _ := smallServlet(t, 10, ServerOptions{})
	_, _, err := srv.dispatch(msgGetRoot, nil, time.Now().Add(-time.Millisecond))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("dispatch with dead budget = %v, want ErrBudgetExceeded", err)
	}
	// No budget (zero deadline) never expires.
	typ, _, err := srv.dispatch(msgGetRoot, nil, time.Time{})
	if err != nil || typ != msgRoot {
		t.Fatalf("dispatch without budget = %d, %v", typ, err)
	}
}

// busyServer answers every request msgErrBusy while busy is set, and
// serves a fixed root otherwise. It unwraps budget envelopes like the real
// servlet.
func busyServer(t *testing.T, busy *atomic.Bool, requests *atomic.Int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	root := hash.Of([]byte("busy-root"))
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					typ, payload, err := readMsg(conn)
					if err != nil {
						return
					}
					if typ == msgBudget {
						if _, typ, _, err = decodeBudget(payload); err != nil {
							return
						}
					}
					requests.Add(1)
					if busy.Load() {
						if writeMsg(conn, msgErrBusy, []byte("shed")) != nil {
							return
						}
						continue
					}
					if typ != msgGetRoot {
						writeMsg(conn, msgErr, []byte("unexpected"))
						return
					}
					if writeMsg(conn, msgRoot, encodeRoot(root, 1)) != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// rawClient builds a client without the dial-time root fetch, so tests can
// drive roundTrip behavior call by call.
func rawClient(addr string, o Options) *Client {
	c := &Client{addr: addr, opts: o.withDefaults()}
	c.nodes = store.NewCachedStore(remoteStore{c: c}, 0)
	return c
}

func TestClientBreakerTripsFailsFastAndRecovers(t *testing.T) {
	var busy atomic.Bool
	var requests atomic.Int64
	busy.Store(true)
	addr := busyServer(t, &busy, &requests)

	cli := rawClient(addr, Options{
		Retries:          -1, // one attempt per call: sheds are countable
		RetryBase:        time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * time.Millisecond,
	})
	defer cli.Close()

	// Calls 1 and 2: shed, retried error, breaker still closed.
	for i := 0; i < 2; i++ {
		err := cli.Refresh()
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("call %d error = %v, want ErrBusy", i, err)
		}
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker tripped after only %d sheds", i+1)
		}
	}
	// Call 3 reaches the threshold: the breaker opens.
	if err := cli.Refresh(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call 3 error = %v, want ErrCircuitOpen", err)
	}
	// While open: fail fast, no wire traffic.
	before := requests.Load()
	if err := cli.Refresh(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker call = %v, want ErrCircuitOpen", err)
	}
	if requests.Load() != before {
		t.Fatal("open breaker still sent a request")
	}
	// Half-open probe against a still-busy server: one request, immediate
	// re-trip.
	time.Sleep(200 * time.Millisecond)
	before = requests.Load()
	if err := cli.Refresh(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open probe = %v, want immediate re-trip", err)
	}
	if got := requests.Load(); got != before+1 {
		t.Fatalf("half-open probe sent %d requests, want exactly 1", got-before)
	}
	// Server recovers; after the cooldown the probe succeeds and the
	// breaker resets fully.
	busy.Store(false)
	time.Sleep(200 * time.Millisecond)
	if err := cli.Refresh(); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	if cli.shedStreak != 0 {
		t.Fatalf("shed streak = %d after success, want 0", cli.shedStreak)
	}
}

func TestClientRetryExhaustionWrapsCause(t *testing.T) {
	// Busy exhaustion: the final error reaches the typed ErrBusy cause
	// through errors.Is, with the breaker disabled so exhaustion (not a
	// trip) ends the call.
	var busy atomic.Bool
	var requests atomic.Int64
	busy.Store(true)
	addr := busyServer(t, &busy, &requests)
	cli := rawClient(addr, Options{
		Retries:          2,
		RetryBase:        time.Millisecond,
		BreakerThreshold: -1,
	})
	defer cli.Close()
	err := cli.Refresh()
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("errors.Is(err, ErrBusy) = false for %v", err)
	}

	// Connection-level exhaustion: the last dial failure is reachable with
	// errors.As.
	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		t.Fatal(lerr)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	dead := rawClient(deadAddr, Options{Retries: 1, RetryBase: time.Millisecond})
	defer dead.Close()
	err = dead.Refresh()
	var opErr *net.OpError
	if !errors.As(err, &opErr) {
		t.Fatalf("errors.As(err, *net.OpError) = false for %v", err)
	}
}

func TestOptionsClampNonsenseValues(t *testing.T) {
	o := Options{
		Timeout:          -time.Second,
		Retries:          -7,
		RetryBase:        -time.Minute,
		BreakerThreshold: -3,
		BreakerCooldown:  -time.Hour,
	}.withDefaults()
	if o.Timeout != 5*time.Second {
		t.Fatalf("negative Timeout clamped to %v", o.Timeout)
	}
	if o.Retries != 0 {
		t.Fatalf("negative Retries clamped to %d, want 0 (disabled)", o.Retries)
	}
	if o.RetryBase != 5*time.Millisecond {
		t.Fatalf("negative RetryBase clamped to %v", o.RetryBase)
	}
	if o.BreakerThreshold != 0 {
		t.Fatalf("negative BreakerThreshold clamped to %d, want 0 (disabled)", o.BreakerThreshold)
	}
	if o.BreakerCooldown != 250*time.Millisecond {
		t.Fatalf("negative BreakerCooldown clamped to %v", o.BreakerCooldown)
	}

	so := ServerOptions{MaxConns: -1, MaxInflight: -1, IdleTimeout: -1, MaxFrameBytes: 1 << 40}.withDefaults()
	if so.MaxConns != -1 || so.MaxInflight != -1 || so.IdleTimeout != -1 {
		t.Fatalf("negative server limits must stay disabled: %+v", so)
	}
	if so.MaxFrameBytes != maxMessage {
		t.Fatalf("oversized MaxFrameBytes clamped to %d, want %d", so.MaxFrameBytes, maxMessage)
	}
}
