package forkbase

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/version"
)

// flakyProxy forwards TCP to target, but kills the first kill connections
// immediately on accept — the shape of a server restart or a dropped link.
func flakyProxy(t *testing.T, target string, kill int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var n atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if n.Add(1) <= int64(kill) {
				conn.Close()
				continue
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				conn.Close()
				continue
			}
			go func() { defer up.Close(); defer conn.Close(); io.Copy(up, conn) }()
			go func() { io.Copy(conn, up) }()
		}
	}()
	return ln.Addr().String()
}

func TestClientRedialsAfterConnectionDrop(t *testing.T) {
	cfg := postree.ConfigForNodeSize(256)
	idx, err := postree.Build(store.NewMemStore(), cfg, entriesN(200))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServlet(t, idx)
	proxy := flakyProxy(t, addr, 2)

	// The dial's initial root fetch itself rides the retry loop: the first
	// two connections die on arrival.
	cli, err := DialOptions(proxy, posLoader(cfg), Options{
		RetryBase:  time.Millisecond,
		CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatalf("dial through flaky proxy: %v", err)
	}
	defer cli.Close()
	v, ok, err := cli.Get([]byte("key-00123"))
	if err != nil || !ok || string(v) != "value-00123" {
		t.Fatalf("Get through recovered connection = %q, %v, %v", v, ok, err)
	}
}

func TestClientRetriesOnServerRetryResponse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	root := hash.Of([]byte("fake-root"))
	var requests atomic.Int64
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			typ, payload, err := readMsg(conn)
			if err != nil {
				return
			}
			if typ == msgBudget {
				if _, typ, _, err = decodeBudget(payload); err != nil {
					return
				}
			}
			if typ != msgGetRoot {
				writeMsg(conn, msgErr, []byte("unexpected request"))
				return
			}
			// First attempt: transient refusal. Second: the real answer.
			if requests.Add(1) == 1 {
				if writeMsg(conn, msgErrRetry, []byte("head busy")) != nil {
					return
				}
				continue
			}
			if writeMsg(conn, msgRoot, encodeRoot(root, 3)) != nil {
				return
			}
		}
	}()

	cli, err := DialOptions(ln.Addr().String(), nil, Options{RetryBase: time.Millisecond})
	if err != nil {
		t.Fatalf("dial against retry-once server: %v", err)
	}
	defer cli.Close()
	got, height := cli.Root()
	if got != root || height != 3 {
		t.Fatalf("root after retry = %x h=%d, want %x h=3", got[:6], height, root[:6])
	}
	if requests.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (initial + resend)", requests.Load())
	}
}

func TestClientDeadlineBoundsSilentServer(t *testing.T) {
	// A server that accepts and never answers: the per-call deadline must
	// surface an error instead of hanging the client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			io.Copy(io.Discard, conn) // read forever, answer never
		}
	}()

	start := time.Now()
	_, err = DialOptions(ln.Addr().String(), nil, Options{
		Timeout: 50 * time.Millisecond,
		Retries: -1, // no retries: one attempt, one deadline
	})
	if err == nil {
		t.Fatal("dial against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the call: took %v", elapsed)
	}
}

func TestServletRepoCommitsEveryBatch(t *testing.T) {
	cfg := postree.ConfigForNodeSize(256)
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	idx, err := postree.Build(s, cfg, entriesN(100))
	if err != nil {
		t.Fatal(err)
	}
	repo.RegisterLoader(idx.Name(), func(st store.Store, root hash.Hash, height int) (core.Index, error) {
		return postree.Load(st, cfg, root, height), nil
	})
	seed, err := repo.Commit("main", idx, "seed")
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewServletRepo(repo, "main")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cli, err := Dial(addr, posLoader(cfg), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		if err := cli.PutBatch([]core.Entry{
			{Key: []byte(fmt.Sprintf("net-%d", i)), Value: []byte("remote")},
		}); err != nil {
			t.Fatalf("PutBatch %d: %v", i, err)
		}
	}

	head, ok := repo.Head("main")
	if !ok {
		t.Fatal("branch main lost its head")
	}
	if head.ID == seed.ID {
		t.Fatal("servlet writes did not advance the branch")
	}
	root, _ := cli.Root()
	if head.Root != root {
		t.Fatalf("branch head root %x != client root %x", head.Root[:6], root[:6])
	}
	if v, ok, err := cli.Get([]byte("net-2")); err != nil || !ok || string(v) != "remote" {
		t.Fatalf("Get(net-2) = %q, %v, %v", v, ok, err)
	}
	// Every batch is one durable commit; the whole graph scrubs clean.
	rep, err := repo.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Commits != 4 {
		t.Fatalf("verify after servlet writes = %s, faults %v", rep, rep.Faults)
	}
}

func TestServletCloseDrainsIdleConns(t *testing.T) {
	cfg := postree.ConfigForNodeSize(256)
	idx, err := postree.Build(store.NewMemStore(), cfg, entriesN(10))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServlet(idx)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// One conn mid-conversation (request served, parked for the next) and
	// one idle conn that never speaks: Close must unblock both handlers.
	busy, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	if err := writeMsg(busy, msgGetRoot, nil); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readMsg(busy); err != nil || typ != msgRoot {
		t.Fatalf("getroot before close = %d, %v", typ, err)
	}
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung waiting on parked connection handlers")
	}
}
