package forkbase

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Loader rebuilds a read-only index view over a (remote) store from a root
// digest; each index class provides one as a closure over its config, e.g.
//
//	func(s store.Store, root hash.Hash, height int) core.Index {
//	    return postree.Load(s, cfg, root, height)
//	}
type Loader func(s store.Store, root hash.Hash, height int) core.Index

// Client executes reads locally over network-fetched (and cached) nodes and
// ships writes to the servlet, mirroring Forkbase's client architecture:
// "Forkbase caches the nodes at clients after retrieved from servers"
// (§5.6.1).
type Client struct {
	mu   sync.Mutex
	conn net.Conn

	loader Loader
	nodes  *store.CachedStore

	root   hash.Hash
	height int
}

// remoteStore adapts the node-fetch RPC to the store.Store interface. Puts
// are not supported: all writes happen server-side.
type remoteStore struct {
	c *Client
}

func (r remoteStore) Put([]byte) hash.Hash { panic("forkbase: client-side Put") }
func (r remoteStore) Stats() store.Stats   { return store.Stats{} }

func (r remoteStore) Get(h hash.Hash) ([]byte, bool) {
	data, ok, err := r.c.fetchNode(h)
	if err != nil {
		return nil, false
	}
	return data, ok
}

func (r remoteStore) Has(h hash.Hash) bool {
	_, ok := r.Get(h)
	return ok
}

// Dial connects to a servlet. cacheBytes bounds the client node cache
// (0 disables caching, the configuration used to isolate remote-access
// costs).
func Dial(addr string, loader Loader, cacheBytes int64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("forkbase: dial: %w", err)
	}
	c := &Client{conn: conn, loader: loader}
	c.nodes = store.NewCachedStore(remoteStore{c: c}, cacheBytes)
	if err := c.Refresh(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeMsg(c.conn, typ, payload); err != nil {
		return 0, nil, err
	}
	rt, rp, err := readMsg(c.conn)
	if err != nil {
		return 0, nil, err
	}
	if rt == msgErr {
		return 0, nil, fmt.Errorf("forkbase: server: %s", rp)
	}
	return rt, rp, nil
}

// fetchNode retrieves one node from the servlet. The request payload slices
// the digest directly — Hash.Bytes would allocate a copy per fetch on this
// hot path.
func (c *Client) fetchNode(h hash.Hash) ([]byte, bool, error) {
	typ, payload, err := c.roundTrip(msgGetNode, h[:])
	if err != nil {
		return nil, false, err
	}
	switch typ {
	case msgNode:
		return payload, true, nil
	case msgMissing:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("forkbase: unexpected response %d", typ)
	}
}

// Refresh re-reads the servlet's current root.
func (c *Client) Refresh() error {
	typ, payload, err := c.roundTrip(msgGetRoot, nil)
	if err != nil {
		return err
	}
	if typ != msgRoot {
		return fmt.Errorf("forkbase: unexpected response %d", typ)
	}
	root, height, err := decodeRoot(payload)
	if err != nil {
		return err
	}
	c.root, c.height = root, height
	return nil
}

// view materializes the read-only index over the cached remote store.
func (c *Client) view() core.Index {
	return c.loader(c.nodes, c.root, c.height)
}

// Get reads key through the client cache.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	return c.view().Get(key)
}

// PutBatch applies entries on the servlet and adopts the new root.
func (c *Client) PutBatch(entries []core.Entry) error {
	typ, payload, err := c.roundTrip(msgPutBatch, encodeEntries(entries))
	if err != nil {
		return err
	}
	if typ != msgRoot {
		return fmt.Errorf("forkbase: unexpected response %d", typ)
	}
	root, height, err := decodeRoot(payload)
	if err != nil {
		return err
	}
	c.root, c.height = root, height
	return nil
}

// Root returns the client's current root view.
func (c *Client) Root() (hash.Hash, int) { return c.root, c.height }

// CacheStats exposes local cache hits and misses.
func (c *Client) CacheStats() (hits, misses int64) { return c.nodes.CacheStats() }
