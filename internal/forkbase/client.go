package forkbase

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/query"
	"repro/internal/store"
)

// ErrBusy reports that the server shed the request under overload (or a
// degraded store) without doing any work. Safe to retry with backoff; the
// client does so automatically within its retry budget.
var ErrBusy = errors.New("forkbase: server busy")

// ErrCircuitOpen reports that the client's circuit breaker is open: enough
// consecutive requests were shed that the client fails fast for a cooldown
// window instead of adding retry load to a server that is already drowning.
var ErrCircuitOpen = errors.New("forkbase: circuit breaker open")

// Loader rebuilds a read-only index view over a (remote) store from a root
// digest; each index class provides one as a closure over its config, e.g.
//
//	func(s store.Store, root hash.Hash, height int) core.Index {
//	    return postree.Load(s, cfg, root, height)
//	}
type Loader func(s store.Store, root hash.Hash, height int) core.Index

// Options configures a client's fault handling. The zero value picks the
// defaults below, so Options{} is a working configuration.
type Options struct {
	// Timeout bounds each round trip: the deadline is set on the
	// connection before every request so a hung server surfaces as an
	// error instead of a stuck client. Default 5s.
	Timeout time.Duration
	// Retries is how many additional attempts a round trip makes after a
	// transient failure — a connection error (redialed) or an explicit
	// msgErrRetry from the server. 0 means the default of 4; negative
	// disables retries. Default 4.
	Retries int
	// RetryBase is the backoff before the first retry; it doubles per
	// attempt (capped at 250ms) with up to 50% added jitter so clients
	// that failed together do not retry in lockstep. Default 5ms.
	RetryBase time.Duration
	// CacheBytes bounds the client node cache (0 disables caching, the
	// configuration used to isolate remote-access costs).
	CacheBytes int64
	// BreakerThreshold is how many consecutive busy sheds trip the circuit
	// breaker; once open, calls fail fast with ErrCircuitOpen until
	// BreakerCooldown passes, then one probe attempt half-opens it. 0 means
	// the default of 8; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening. Default 250ms.
	BreakerCooldown time.Duration
	// NoBudget stops the client from propagating its per-call deadline to
	// the server. With budgets on (the default), each request carries the
	// call's remaining time so the server can abort work the client will
	// never collect; NoBudget reproduces the legacy protocol, used as the
	// control arm in the overload experiment.
	NoBudget bool
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 8
	}
	if o.BreakerThreshold < 0 {
		o.BreakerThreshold = 0 // disabled
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
	return o
}

// retryCap bounds the client's exponential backoff between attempts.
const retryCap = 250 * time.Millisecond

// Client executes reads locally over network-fetched (and cached) nodes and
// ships writes to the servlet, mirroring Forkbase's client architecture:
// "Forkbase caches the nodes at clients after retrieved from servers"
// (§5.6.1).
//
// Every call runs under a deadline and transparently redials and retries on
// transient errors (see Options). Retrying a PutBatch after a torn
// connection is safe: applying the same entries to the already-advanced
// head produces the identical version — content addressing makes the write
// idempotent.
type Client struct {
	mu   sync.Mutex
	conn net.Conn // nil between a transient failure and the redial
	addr string
	opts Options

	loader Loader
	nodes  *store.CachedStore

	// Circuit breaker state, under c.mu. shedStreak counts consecutive
	// busy responses across calls; at BreakerThreshold the breaker opens
	// until breakerUntil.
	shedStreak   int
	breakerUntil time.Time

	root   hash.Hash
	height int
}

// remoteStore adapts the node-fetch RPC to the store.Store interface. Puts
// are not supported: all writes happen server-side.
type remoteStore struct {
	c *Client
}

func (r remoteStore) Put([]byte) hash.Hash { panic("forkbase: client-side Put") }
func (r remoteStore) Stats() store.Stats   { return store.Stats{} }

func (r remoteStore) Get(h hash.Hash) ([]byte, bool) {
	data, ok, err := r.c.fetchNode(h)
	if err != nil {
		return nil, false
	}
	return data, ok
}

func (r remoteStore) Has(h hash.Hash) bool {
	_, ok := r.Get(h)
	return ok
}

// Dial connects to a servlet with default fault handling. cacheBytes bounds
// the client node cache (see Options.CacheBytes).
func Dial(addr string, loader Loader, cacheBytes int64) (*Client, error) {
	return DialOptions(addr, loader, Options{CacheBytes: cacheBytes})
}

// DialOptions connects to a servlet. The initial root fetch already runs
// through the retry loop, so a server that is still coming up within the
// retry budget does not fail the dial.
func DialOptions(addr string, loader Loader, o Options) (*Client, error) {
	c := &Client{addr: addr, loader: loader, opts: o.withDefaults()}
	c.nodes = store.NewCachedStore(remoteStore{c: c}, o.CacheBytes)
	if err := c.Refresh(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip sends one request and reads one response, retrying transient
// failures: connection errors drop and redial the connection; msgErrRetry,
// msgErrBusy, and msgErrDeadline responses keep it and just back off. msgErr
// is a permanent failure and returns immediately. Consecutive busy sheds
// trip the circuit breaker (see Options.BreakerThreshold); an open breaker
// fails fast with ErrCircuitOpen until its cooldown passes, then the next
// call half-opens it as a probe.
func (c *Client) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.BreakerThreshold > 0 && time.Now().Before(c.breakerUntil) {
		return 0, nil, fmt.Errorf("%w: cooling down until %s",
			ErrCircuitOpen, c.breakerUntil.Format(time.RFC3339Nano))
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.sleepBackoff(attempt)
		}
		if c.conn == nil {
			conn, err := net.Dial("tcp", c.addr)
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
		}
		// The per-call deadline: nothing below can block past it. Unless
		// budget propagation is off, the request carries this attempt's
		// budget so the server can abort work we will never collect.
		_ = c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		typWire, wire := typ, payload
		if !c.opts.NoBudget {
			typWire, wire = msgBudget, encodeBudget(c.opts.Timeout, typ, payload)
		}
		if err := writeMsg(c.conn, typWire, wire); err != nil {
			lastErr = err
			c.dropConnLocked()
			continue
		}
		rt, rp, err := readMsg(c.conn)
		if err != nil {
			lastErr = err
			c.dropConnLocked()
			continue
		}
		switch rt {
		case msgErr:
			return 0, nil, fmt.Errorf("forkbase: server: %s", rp)
		case msgErrRetry:
			lastErr = fmt.Errorf("forkbase: server (transient): %s", rp)
			continue
		case msgErrBusy:
			lastErr = fmt.Errorf("%w: %s", ErrBusy, rp)
			c.shedStreak++
			if c.opts.BreakerThreshold > 0 && c.shedStreak >= c.opts.BreakerThreshold {
				// Enough consecutive sheds: open the breaker and stop this
				// call's retries too — more attempts only feed the overload.
				// The streak is kept, so when the cooldown half-opens the
				// breaker, a shed probe re-trips immediately while a success
				// resets it fully.
				c.breakerUntil = time.Now().Add(c.opts.BreakerCooldown)
				return 0, nil, fmt.Errorf("%w after consecutive sheds: %w", ErrCircuitOpen, lastErr)
			}
			continue
		case msgErrDeadline:
			lastErr = fmt.Errorf("%w: server: %s", ErrBudgetExceeded, rp)
			continue
		}
		c.shedStreak = 0
		return rt, rp, nil
	}
	return 0, nil, fmt.Errorf("forkbase: request %d failed after %d attempts: %w",
		typ, c.opts.Retries+1, lastErr)
}

// dropConnLocked discards a connection a transient error poisoned; the next
// attempt redials. Caller holds c.mu.
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// sleepBackoff sleeps the capped exponential backoff for one retry attempt,
// with jitter.
func (c *Client) sleepBackoff(attempt int) {
	d := c.opts.RetryBase << (attempt - 1)
	if d > retryCap || d <= 0 {
		d = retryCap
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	time.Sleep(d)
}

// fetchNode retrieves one node from the servlet. The request payload slices
// the digest directly — Hash.Bytes would allocate a copy per fetch on this
// hot path.
func (c *Client) fetchNode(h hash.Hash) ([]byte, bool, error) {
	typ, payload, err := c.roundTrip(msgGetNode, h[:])
	if err != nil {
		return nil, false, err
	}
	switch typ {
	case msgNode:
		return payload, true, nil
	case msgMissing:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("forkbase: unexpected response %d", typ)
	}
}

// Refresh re-reads the servlet's current root.
func (c *Client) Refresh() error {
	typ, payload, err := c.roundTrip(msgGetRoot, nil)
	if err != nil {
		return err
	}
	if typ != msgRoot {
		return fmt.Errorf("forkbase: unexpected response %d", typ)
	}
	root, height, err := decodeRoot(payload)
	if err != nil {
		return err
	}
	c.root, c.height = root, height
	return nil
}

// view materializes the read-only index over the cached remote store.
func (c *Client) view() core.Index {
	return c.loader(c.nodes, c.root, c.height)
}

// Get reads key through the client cache.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	return c.view().Get(key)
}

// PutBatch applies entries on the servlet and adopts the new root.
func (c *Client) PutBatch(entries []core.Entry) error {
	typ, payload, err := c.roundTrip(msgPutBatch, encodeEntries(entries))
	if err != nil {
		return err
	}
	if typ != msgRoot {
		return fmt.Errorf("forkbase: unexpected response %d", typ)
	}
	root, height, err := decodeRoot(payload)
	if err != nil {
		return err
	}
	c.root, c.height = root, height
	return nil
}

// Query ships one predicate to the servlet, which executes it
// server-side — through the table's secondary indexes when the servlet
// serves one — and returns the rows with the plan the server reports.
// Rows travel whole, so a narrow indexed query costs one round trip
// regardless of tree shape.
func (c *Client) Query(q query.Query) ([]query.Row, query.Plan, error) {
	typ, payload, err := c.roundTrip(msgQuery, encodeQuery(q))
	if err != nil {
		return nil, query.Plan{}, err
	}
	if typ != msgRows {
		return nil, query.Plan{}, fmt.Errorf("forkbase: unexpected response %d", typ)
	}
	return decodeRows(payload)
}

// Root returns the client's current root view.
func (c *Client) Root() (hash.Hash, int) { return c.root, c.height }

// CacheStats exposes local cache hits and misses.
func (c *Client) CacheStats() (hits, misses int64) { return c.nodes.CacheStats() }
