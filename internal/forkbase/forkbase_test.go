package forkbase

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/postree"
	"repro/internal/store"
)

func posLoader(cfg postree.Config) Loader {
	return func(s store.Store, root hash.Hash, height int) core.Index {
		return postree.Load(s, cfg, root, height)
	}
}

func startServlet(t *testing.T, idx core.Index) (*Servlet, string) {
	t.Helper()
	srv := NewServlet(idx)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func entriesN(n int) []core.Entry {
	out := make([]core.Entry, n)
	for i := range out {
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("key-%05d", i)),
			Value: []byte(fmt.Sprintf("value-%05d", i)),
		}
	}
	return out
}

func TestClientReadsThroughServer(t *testing.T) {
	cfg := postree.ConfigForNodeSize(256)
	s := store.NewMemStore()
	idx, err := postree.Build(s, cfg, entriesN(500))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServlet(t, idx)

	cli, err := Dial(addr, posLoader(cfg), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 500; i += 37 {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, ok, err := cli.Get(key)
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("value-%05d", i))) {
			t.Fatalf("Get(%q) = %q, %v, %v", key, v, ok, err)
		}
	}
	if _, ok, err := cli.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get(missing) = %v, %v", ok, err)
	}
}

func TestClientWritesApplyServerSide(t *testing.T) {
	cfg := postree.ConfigForNodeSize(256)
	s := store.NewMemStore()
	idx, err := postree.Build(s, cfg, entriesN(100))
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServlet(t, idx)

	cli, err := Dial(addr, posLoader(cfg), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	before, _ := cli.Root()
	if err := cli.PutBatch([]core.Entry{
		{Key: []byte("key-00042"), Value: []byte("rewritten")},
		{Key: []byte("brand-new"), Value: []byte("hello")},
	}); err != nil {
		t.Fatal(err)
	}
	after, _ := cli.Root()
	if before == after {
		t.Fatal("root unchanged after write")
	}
	// Server head advanced too.
	if srv.Head().RootHash() != after {
		t.Fatal("server head does not match client root")
	}
	// Readable through the same client.
	v, ok, err := cli.Get([]byte("brand-new"))
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("Get(new) = %q, %v, %v", v, ok, err)
	}
	v, ok, err = cli.Get([]byte("key-00042"))
	if err != nil || !ok || string(v) != "rewritten" {
		t.Fatalf("Get(rewritten) = %q, %v, %v", v, ok, err)
	}
}

func TestSecondClientSeesWritesAfterRefresh(t *testing.T) {
	cfg := postree.ConfigForNodeSize(256)
	idx, err := postree.Build(store.NewMemStore(), cfg, entriesN(50))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServlet(t, idx)

	writer, err := Dial(addr, posLoader(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := Dial(addr, posLoader(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	if err := writer.PutBatch([]core.Entry{{Key: []byte("fresh"), Value: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := reader.Get([]byte("fresh")); ok {
		t.Fatal("reader saw write without refresh (stale snapshot expected)")
	}
	if err := reader.Refresh(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := reader.Get([]byte("fresh")); err != nil || !ok || string(v) != "x" {
		t.Fatalf("after refresh Get = %q, %v, %v", v, ok, err)
	}
}

func TestClientCacheReducesServerLoad(t *testing.T) {
	cfg := postree.ConfigForNodeSize(256)
	s := store.NewMemStore()
	idx, err := postree.Build(s, cfg, entriesN(300))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServlet(t, idx)

	cli, err := Dial(addr, posLoader(cfg), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	key := []byte("key-00123")
	if _, _, err := cli.Get(key); err != nil {
		t.Fatal(err)
	}
	h0, m0 := cli.CacheStats()
	for i := 0; i < 10; i++ {
		if _, _, err := cli.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := cli.CacheStats()
	if m1 != m0 {
		t.Fatalf("repeated reads missed the cache: misses %d → %d", m0, m1)
	}
	if h1 <= h0 {
		t.Fatal("repeated reads produced no cache hits")
	}
}

func TestServletWithMPT(t *testing.T) {
	// The servlet is index-agnostic; run it over an MPT too.
	s := store.NewMemStore()
	var idx core.Index = mpt.New(s)
	var err error
	for i := 0; i < 50; i++ {
		idx, err = idx.Put([]byte(fmt.Sprintf("key-%02d", i)), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startServlet(t, idx)
	loader := func(st store.Store, root hash.Hash, _ int) core.Index {
		return mpt.Load(st, root)
	}
	cli, err := Dial(addr, loader, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if v, ok, err := cli.Get([]byte("key-07")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	entries := entriesN(5)
	back, err := decodeEntries(encodeEntries(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 || !bytes.Equal(back[2].Key, entries[2].Key) {
		t.Fatalf("entries round trip failed: %v", back)
	}
	h := hash.Of([]byte("root"))
	rh, ht, err := decodeRoot(encodeRoot(h, 7))
	if err != nil || rh != h || ht != 7 {
		t.Fatalf("root round trip = %v, %d, %v", rh, ht, err)
	}
}

func TestReadMsgRejectsBadLength(t *testing.T) {
	if _, _, err := readMsg(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length message accepted")
	}
	if _, _, err := readMsg(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized message accepted")
	}
}
