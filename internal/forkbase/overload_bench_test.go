package forkbase

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
)

// BenchmarkOverloadGoodput drives an oversubscribed closed-loop writer
// fleet (8× GOMAXPROCS workers) against one servlet and reports goodput —
// successful, budget-respecting ops per second — with load shedding on
// (MaxInflight bounds admitted work) versus off (everything queues on the
// commit path). The benchstat comparison to watch: the shed-on goodput/s
// must hold up while shed-off decays as queued requests outlive their
// budget. The full sweep with offered-load multipliers is the bench
// package's "overload" experiment.
func BenchmarkOverloadGoodput(b *testing.B) {
	for _, c := range []struct {
		name     string
		inflight int
	}{
		{"shed-on", 4},
		{"shed-off", -1},
	} {
		b.Run(c.name, func(b *testing.B) {
			const records = 500
			cfg := postree.ConfigForNodeSize(512)
			s := store.NewMemStore()
			idx, err := postree.Build(s, cfg, entriesN(records))
			if err != nil {
				b.Fatal(err)
			}
			srv := NewServlet(idx).WithOptions(ServerOptions{
				MaxConns:    -1,
				MaxInflight: c.inflight,
			})
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			opts := Options{
				Timeout:          100 * time.Millisecond,
				Retries:          -1, // one attempt per op: a failure is the datum
				BreakerThreshold: -1, // keep offering load; the server is under test
			}

			var succ, next atomic.Int64
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				cli, err := DialOptions(addr, posLoader(cfg), opts)
				if err != nil {
					b.Error(err)
					return
				}
				defer cli.Close()
				for pb.Next() {
					base := int(next.Add(4))
					batch := make([]core.Entry, 4)
					for j := range batch {
						id := (base + j) % records
						batch[j] = core.Entry{
							Key:   []byte(fmt.Sprintf("key-%05d", id)),
							Value: []byte(fmt.Sprintf("value-%05d-%d", id, base)),
						}
					}
					if err := cli.PutBatch(batch); err == nil {
						succ.Add(1)
					} else if errors.Is(err, ErrBusy) {
						// Back off a shed so the fast-fail loop does not
						// starve admitted requests of CPU.
						time.Sleep(50 * time.Microsecond)
					}
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(succ.Load())/sec, "goodput/s")
			}
			b.ReportMetric(float64(succ.Load())/float64(b.N), "success/op")
		})
	}
}
