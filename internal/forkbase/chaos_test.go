package forkbase

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/netchaos"
	"repro/internal/postree"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/version"
)

// soakBatch is one client write: five entries under a client-unique key
// prefix, so batches from different clients never collide and the final
// key space is the union of everything sent.
func soakBatch(client, round int) []core.Entry {
	out := make([]core.Entry, 5)
	for i := range out {
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("c%02d-k%04d-%d", client, round, i)),
			Value: []byte(fmt.Sprintf("v-%02d-%04d-%d", client, round, i)),
		}
	}
	return out
}

// TestServingChaosSoak drives concurrent clients through a fault-injecting
// proxy while the proxy rotates chaos modes, then asserts the three
// serving-layer safety properties: every acknowledged write survives, the
// head converges byte-identical to a clean rebuild of the same contents,
// and the whole version graph scrubs clean.
func TestServingChaosSoak(t *testing.T) {
	checkNoGoroutineLeaks(t)
	cfg := postree.ConfigForNodeSize(256)
	s := store.NewMemStore()
	repo := version.NewRepo(s)
	repo.RegisterLoader("POS-Tree", func(st store.Store, root hash.Hash, height int) (core.Index, error) {
		return postree.Load(st, cfg, root, height), nil
	})
	seed := entriesN(200)
	idx, err := postree.Build(s, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Commit("main", idx, "soak seed"); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServletRepo(repo, "main")
	if err != nil {
		t.Fatal(err)
	}
	srv.WithOptions(ServerOptions{MaxConns: 64, MaxInflight: 32, IdleTimeout: 2 * time.Second})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	proxy, err := netchaos.New(addr, netchaos.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	const (
		clients = 4
		rounds  = 20
	)
	type ack struct {
		client, round int
	}
	var (
		ackMu sync.Mutex
		acked = map[ack]bool{}
	)
	clientOpts := Options{
		Timeout:          2 * time.Second,
		Retries:          6,
		RetryBase:        2 * time.Millisecond,
		BreakerThreshold: -1, // sheds here come from chaos, not load; keep retrying
		CacheBytes:       1 << 20,
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var cli *Client
			defer func() {
				if cli != nil {
					cli.Close()
				}
			}()
			for r := 0; r < rounds; r++ {
				// Pace the rounds across the chaos rotation, and redial
				// periodically so accept-time faults see fresh dials too.
				time.Sleep(8 * time.Millisecond)
				if cli != nil && r%5 == 4 {
					cli.Close()
					cli = nil
				}
				if cli == nil {
					var err error
					cli, err = DialOptions(proxy.Addr(), posLoader(cfg), clientOpts)
					if err != nil {
						continue // chaos ate the dial; try again next round
					}
				}
				if err := cli.PutBatch(soakBatch(c, r)); err == nil {
					ackMu.Lock()
					acked[ack{c, r}] = true
					ackMu.Unlock()
				} else if errors.Is(err, ErrBusy) || true {
					// Any failure: the write may or may not have applied
					// server-side. Drop the client so the next round
					// redials through fresh chaos.
					cli.Close()
					cli = nil
				}
				if cli != nil && r%3 == 0 {
					// Reads and queries ride along; their results are not
					// asserted mid-chaos (a torn frame fails them), only
					// that they never wedge the client.
					_, _, _ = cli.Get([]byte("key-00042"))
					_, _, _ = cli.Query(query.Query{Lo: []byte("key-00000"), Hi: []byte("key-00050")})
				}
			}
		}(c)
	}

	// Rotate chaos modes while the clients run. Each mode gets a slice of
	// the soak; the sequence ends clean so stragglers can finish.
	modes := []netchaos.Config{
		{Seed: 42}, // clean warmup
		{Seed: 42, LatencyC2S: time.Millisecond, Jitter: 2 * time.Millisecond}, // slow link
		{Seed: 42, DropAcceptEvery: 3},                                         // flaky dials
		{Seed: 42, TruncateEvery: 8},                                           // torn frames
		{Seed: 42, ThroughputBytesPerSec: 256 << 10},                           // thin pipe
		{Seed: 42}, // clean cooldown
	}
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i, m := range modes {
			proxy.SetConfig(m)
			if i == 2 {
				proxy.Partition(80 * time.Millisecond) // blackhole mid-soak
			}
			time.Sleep(120 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-chaosDone
	proxy.SetConfig(netchaos.Config{Seed: 42}) // chaos off for verification

	if c := proxy.Counters(); c.DroppedAccepts == 0 && c.TruncatedConns == 0 {
		t.Fatalf("chaos injected nothing (%+v); the soak exercised no faults", c)
	}

	// Verification runs on a direct connection — the proxy has done its job.
	cli, err := DialOptions(addr, posLoader(cfg), Options{CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// 1. Acked-write survival: every acknowledged batch is fully readable.
	ackMu.Lock()
	ackedList := make([]ack, 0, len(acked))
	for a := range acked {
		ackedList = append(ackedList, a)
	}
	ackMu.Unlock()
	if len(ackedList) == 0 {
		t.Fatal("no write was ever acked; chaos was too brutal for the test to mean anything")
	}
	for _, a := range ackedList {
		for _, e := range soakBatch(a.client, a.round) {
			v, ok, err := cli.Get(e.Key)
			if err != nil || !ok || !bytes.Equal(v, e.Value) {
				t.Fatalf("acked write %q lost: %q, %v, %v", e.Key, v, ok, err)
			}
		}
	}

	// 2. Reconciliation: unacked batches may or may not have applied
	// (the ack could have died on the wire after the commit). Re-send
	// everything on the clean path — content addressing makes replays
	// idempotent — so the final contents are exactly seed + all batches.
	for c := 0; c < clients; c++ {
		for r := 0; r < rounds; r++ {
			if err := cli.PutBatch(soakBatch(c, r)); err != nil {
				t.Fatalf("reconcile batch c%d r%d: %v", c, r, err)
			}
		}
	}
	if err := cli.Refresh(); err != nil {
		t.Fatal(err)
	}
	gotRoot, _ := cli.Root()

	// 3. Convergence: the head must be byte-identical to a clean one-shot
	// build of the same contents — the POS-tree's structural invariance
	// means any surviving chaos artifact (lost entry, double-applied
	// batch, torn node) changes the root.
	var all []core.Entry
	all = append(all, seed...)
	for c := 0; c < clients; c++ {
		for r := 0; r < rounds; r++ {
			all = append(all, soakBatch(c, r)...)
		}
	}
	clean, err := postree.Build(store.NewMemStore(), cfg, core.SortEntries(all))
	if err != nil {
		t.Fatal(err)
	}
	cleanRoot := clean.RootHash()
	if cleanRoot != gotRoot {
		t.Fatalf("post-chaos head %x != clean rebuild %x", gotRoot[:8], cleanRoot[:8])
	}

	// 4. The version graph scrubs clean: every commit reachable, every
	// node readable and hash-consistent.
	rep, err := repo.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify after chaos = %s, faults %v", rep, rep.Faults)
	}
}
