package forkbase

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/query"
	"repro/internal/secondary"
	"repro/internal/version"
)

// heighter is implemented by tree indexes that need their height shipped to
// clients for Load.
type heighter interface{ Height() int }

// Servlet owns the authoritative index version and serves node fetches and
// write batches. One Servlet matches the paper's single-servlet setup.
//
// A servlet built with NewServlet holds its head in memory only. One built
// with NewServletRepo commits every write batch to a version.Repo branch
// through CommitRetry, so writes that race a concurrent GC pass are redone
// server-side; if the retry budget is exhausted the client gets an explicit
// msgErrRetry and resends.
type Servlet struct {
	ln net.Listener

	mu    sync.Mutex
	idx   core.Index
	conns map[net.Conn]struct{}

	repo   *version.Repo // nil for a memory-head servlet
	branch string
	tbl    *secondary.Table // nil unless built with NewServletTable

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServlet returns a servlet whose initial head is idx, held in memory.
func NewServlet(idx core.Index) *Servlet {
	return &Servlet{idx: idx, conns: make(map[net.Conn]struct{}), closed: make(chan struct{})}
}

// NewServletRepo returns a servlet whose head is the given branch of repo:
// every accepted write batch becomes a commit on that branch. The branch
// must already exist (seed it with an initial commit first).
func NewServletRepo(repo *version.Repo, branch string) (*Servlet, error) {
	idx, err := repo.CheckoutBranch(branch)
	if err != nil {
		return nil, fmt.Errorf("forkbase: servlet branch: %w", err)
	}
	s := NewServlet(idx)
	s.repo, s.branch = repo, branch
	return s, nil
}

// NewServletTable returns a servlet serving a secondary.Table: every
// accepted write batch goes through the table (maintaining its secondary
// indexes) and co-commits all roots on the table's branch, and msgQuery
// requests route through the table's planner. The table must not be
// mutated by anyone else while the servlet runs — the servlet is its
// single writer. A write batch whose co-commit races a concurrent GC
// pass surfaces to the client as msgErrRetry; the resend is idempotent,
// content addressing makes reapplying the same entries converge.
func NewServletTable(tbl *secondary.Table) *Servlet {
	s := NewServlet(tbl.Primary())
	s.tbl = tbl
	return s
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves until Close. It returns the bound address.
func (s *Servlet) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("forkbase: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close drains the servlet: it stops accepting, lets every in-flight
// request finish and its response flush, unblocks handlers parked waiting
// for a next request, and returns when all connection handlers have exited.
func (s *Servlet) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	// Expire pending reads so idle handlers notice the shutdown; handlers
	// mid-request are past the read and finish writing their response
	// before they check s.closed again.
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Head returns the servlet's current index version.
func (s *Servlet) Head() core.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx
}

func (s *Servlet) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		// Register before handling, under the same lock Close iterates, so
		// a conn is either drained by Close or rejected here — never left
		// parked in a read Close cannot see.
		s.mu.Lock()
		select {
		case <-s.closed:
			s.mu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

func (s *Servlet) handleConn(conn net.Conn) {
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		typ, payload, err := s.serveOne(conn)
		if err != nil {
			select {
			case <-s.closed:
				return // drain interrupted the read; not a protocol error
			default:
			}
			if errors.Is(err, io.EOF) {
				return
			}
			if errors.Is(err, version.ErrCommitRaced) {
				// Transient by contract: the commit lost to a concurrent GC
				// pass beyond the server-side retry budget. Tell the client
				// to resend and keep the connection.
				if writeMsg(conn, msgErrRetry, []byte(err.Error())) != nil {
					return
				}
				continue
			}
			// Best effort error report, then drop the connection.
			_ = writeMsg(conn, msgErr, []byte(err.Error()))
			return
		}
		if err := writeMsg(conn, typ, payload); err != nil {
			return
		}
	}
}

// serveOne reads one request and computes the response.
func (s *Servlet) serveOne(conn net.Conn) (byte, []byte, error) {
	typ, payload, err := readMsg(conn)
	if err != nil {
		return 0, nil, err
	}
	switch typ {
	case msgGetNode:
		h, err := hash.FromBytes(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		data, ok := s.idx.Store().Get(h)
		s.mu.Unlock()
		if !ok {
			return msgMissing, nil, nil
		}
		return msgNode, data, nil

	case msgPutBatch:
		entries, err := decodeEntries(payload)
		if err != nil {
			return 0, nil, err
		}
		if s.tbl != nil {
			return s.commitTableBatch(entries)
		}
		if s.repo != nil {
			return s.commitBatch(entries)
		}
		s.mu.Lock()
		next, err := s.idx.PutBatch(entries)
		if err == nil {
			s.idx = next
		}
		root, height := s.idx.RootHash(), s.headHeight()
		s.mu.Unlock()
		if err != nil {
			return 0, nil, err
		}
		return msgRoot, encodeRoot(root, height), nil

	case msgGetRoot:
		s.mu.Lock()
		root, height := s.idx.RootHash(), s.headHeight()
		s.mu.Unlock()
		return msgRoot, encodeRoot(root, height), nil

	case msgQuery:
		q, err := decodeQuery(payload)
		if err != nil {
			return 0, nil, err
		}
		// Snapshot an engine under the lock, execute outside it: the
		// index versions it binds are immutable, so a concurrent write
		// batch advances the head without disturbing this query.
		s.mu.Lock()
		var eng query.Engine
		if s.tbl != nil {
			eng = query.PlannerFor(query.IndexSource(s.tbl.Primary()), s.tbl)
		} else {
			eng = query.NewPlanner(query.IndexSource(s.idx))
		}
		s.mu.Unlock()
		rows, plan, err := eng.Query(q)
		if err != nil {
			return 0, nil, err
		}
		return msgRows, encodeRows(rows, plan), nil

	default:
		return 0, nil, fmt.Errorf("forkbase: unknown request type %d", typ)
	}
}

// commitBatch applies one write batch as a commit on the servlet's branch.
// CommitRetry absorbs ErrCommitRaced with backoff; if it still exhausts the
// budget the raced error propagates and handleConn maps it to msgErrRetry.
// The repo serializes commits itself, so s.mu is held only to publish the
// new head for node serving.
func (s *Servlet) commitBatch(entries []core.Entry) (byte, []byte, error) {
	var next core.Index
	_, err := version.CommitRetry(s.repo, s.branch,
		fmt.Sprintf("forkbase: put %d entries", len(entries)),
		func(idx core.Index) (core.Index, error) {
			if idx == nil {
				return nil, fmt.Errorf("forkbase: branch %q disappeared", s.branch)
			}
			n, err := idx.PutBatch(entries)
			if err != nil {
				return nil, err
			}
			next = n
			return n, nil
		})
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	s.idx = next
	root, height := s.idx.RootHash(), s.headHeight()
	s.mu.Unlock()
	return msgRoot, encodeRoot(root, height), nil
}

// commitTableBatch applies one write batch through the secondary.Table:
// the table maintains every secondary, then co-commits all roots. The
// table's mutation methods are not concurrency-safe, so the whole apply
// runs under s.mu. A raced co-commit (ErrCommitRaced) leaves the table
// state coherent and propagates for handleConn to map to msgErrRetry.
func (s *Servlet) commitTableBatch(entries []core.Entry) (byte, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.tbl.PutBatch(entries); err != nil {
		return 0, nil, err
	}
	if _, err := s.tbl.Commit(fmt.Sprintf("forkbase: put %d entries", len(entries))); err != nil {
		return 0, nil, err
	}
	s.idx = s.tbl.Primary()
	return msgRoot, encodeRoot(s.idx.RootHash(), s.headHeight()), nil
}

// headHeight reports the head's tree height when it exposes one. Caller
// holds s.mu.
func (s *Servlet) headHeight() int {
	if h, ok := s.idx.(heighter); ok {
		return h.Height()
	}
	return 0
}
