package forkbase

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/hash"
)

// heighter is implemented by tree indexes that need their height shipped to
// clients for Load.
type heighter interface{ Height() int }

// Servlet owns the authoritative index version and serves node fetches and
// write batches. One Servlet matches the paper's single-servlet setup.
type Servlet struct {
	ln net.Listener

	mu  sync.Mutex
	idx core.Index

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServlet returns a servlet whose initial head is idx.
func NewServlet(idx core.Index) *Servlet {
	return &Servlet{idx: idx, closed: make(chan struct{})}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves until Close. It returns the bound address.
func (s *Servlet) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("forkbase: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for connection handlers to finish.
func (s *Servlet) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Head returns the servlet's current index version.
func (s *Servlet) Head() core.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx
}

func (s *Servlet) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

func (s *Servlet) handleConn(conn net.Conn) {
	for {
		typ, payload, err := s.serveOne(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			// Best effort error report, then drop the connection.
			_ = writeMsg(conn, msgErr, []byte(err.Error()))
			return
		}
		if err := writeMsg(conn, typ, payload); err != nil {
			return
		}
	}
}

// serveOne reads one request and computes the response.
func (s *Servlet) serveOne(conn net.Conn) (byte, []byte, error) {
	typ, payload, err := readMsg(conn)
	if err != nil {
		return 0, nil, err
	}
	switch typ {
	case msgGetNode:
		h, err := hash.FromBytes(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		data, ok := s.idx.Store().Get(h)
		s.mu.Unlock()
		if !ok {
			return msgMissing, nil, nil
		}
		return msgNode, data, nil

	case msgPutBatch:
		entries, err := decodeEntries(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		next, err := s.idx.PutBatch(entries)
		if err == nil {
			s.idx = next
		}
		root, height := s.idx.RootHash(), s.headHeight()
		s.mu.Unlock()
		if err != nil {
			return 0, nil, err
		}
		return msgRoot, encodeRoot(root, height), nil

	case msgGetRoot:
		s.mu.Lock()
		root, height := s.idx.RootHash(), s.headHeight()
		s.mu.Unlock()
		return msgRoot, encodeRoot(root, height), nil

	default:
		return 0, nil, fmt.Errorf("forkbase: unknown request type %d", typ)
	}
}

// headHeight reports the head's tree height when it exposes one. Caller
// holds s.mu.
func (s *Servlet) headHeight() int {
	if h, ok := s.idx.(heighter); ok {
		return h.Height()
	}
	return 0
}
