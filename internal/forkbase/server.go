package forkbase

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/query"
	"repro/internal/secondary"
	"repro/internal/store"
	"repro/internal/version"
)

// heighter is implemented by tree indexes that need their height shipped to
// clients for Load.
type heighter interface{ Height() int }

// ErrBudgetExceeded reports that the server aborted a request because the
// client's propagated per-call budget ran out mid-work: finishing would
// have burned CPU for an answer nobody was still waiting for. The wire
// carries it as msgErrDeadline; a retry gets a fresh budget.
var ErrBudgetExceeded = errors.New("forkbase: request budget exceeded")

// ServerOptions configures a Servlet's overload protection. The zero value
// selects the defaults noted per field, so ServerOptions{} is a working
// production-shaped configuration; negative values disable a limit.
type ServerOptions struct {
	// MaxConns bounds concurrently served connections. An accept over the
	// limit is answered with a retryable msgErrBusy and closed — admission
	// control, not queueing. 0 = default 256; negative = unlimited.
	MaxConns int
	// MaxInflight bounds requests executing at once across all
	// connections. A request arriving with every slot taken is shed with
	// msgErrBusy (the connection survives) instead of queueing — under
	// sustained overload queues only convert shed-able load into latency
	// collapse. 0 = default 64; negative = unlimited.
	MaxInflight int
	// IdleTimeout reaps connections that have not sent a request for this
	// long, bounding the cost of clients that dial and stall. 0 = default
	// 2 minutes; negative = never reap.
	IdleTimeout time.Duration
	// MaxFrameBytes caps a single request frame; an oversized frame is a
	// protocol error that drops the connection before the payload is read.
	// 0 (or anything over the protocol-wide 64 MiB bound) = that bound.
	MaxFrameBytes int
}

// Default ServerOptions limits.
const (
	defaultMaxConns    = 256
	defaultMaxInflight = 64
	defaultIdleTimeout = 2 * time.Minute
)

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxConns == 0 {
		o.MaxConns = defaultMaxConns
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = defaultMaxInflight
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = defaultIdleTimeout
	}
	if o.MaxFrameBytes <= 0 || o.MaxFrameBytes > maxMessage {
		o.MaxFrameBytes = maxMessage
	}
	return o
}

// Servlet owns the authoritative index version and serves node fetches and
// write batches. One Servlet matches the paper's single-servlet setup.
//
// A servlet built with NewServlet holds its head in memory only. One built
// with NewServletRepo commits every write batch to a version.Repo branch
// through CommitRetry, so writes that race a concurrent GC pass are redone
// server-side; if the retry budget is exhausted the client gets an explicit
// msgErrRetry and resends.
type Servlet struct {
	ln   net.Listener
	opts ServerOptions
	// inflight is the request-execution semaphore (nil = unlimited): a
	// request that cannot take a slot without blocking is shed.
	inflight chan struct{}

	mu      sync.Mutex
	idx     core.Index
	conns   map[net.Conn]struct{}
	closing bool // set by the first Close; later Closes only wait

	repo   *version.Repo // nil for a memory-head servlet
	branch string
	tbl    *secondary.Table // nil unless built with NewServletTable

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServlet returns a servlet whose initial head is idx, held in memory,
// with default overload protection (see ServerOptions).
func NewServlet(idx core.Index) *Servlet {
	return &Servlet{
		idx:    idx,
		opts:   ServerOptions{}.withDefaults(),
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
}

// WithOptions replaces the servlet's overload-protection settings. Call it
// before Start; it returns s for chaining:
//
//	srv := forkbase.NewServlet(idx).WithOptions(forkbase.ServerOptions{MaxInflight: 8})
func (s *Servlet) WithOptions(o ServerOptions) *Servlet {
	s.opts = o.withDefaults()
	return s
}

// NewServletRepo returns a servlet whose head is the given branch of repo:
// every accepted write batch becomes a commit on that branch. The branch
// must already exist (seed it with an initial commit first).
func NewServletRepo(repo *version.Repo, branch string) (*Servlet, error) {
	idx, err := repo.CheckoutBranch(branch)
	if err != nil {
		return nil, fmt.Errorf("forkbase: servlet branch: %w", err)
	}
	s := NewServlet(idx)
	s.repo, s.branch = repo, branch
	return s, nil
}

// NewServletTable returns a servlet serving a secondary.Table: every
// accepted write batch goes through the table (maintaining its secondary
// indexes) and co-commits all roots on the table's branch, and msgQuery
// requests route through the table's planner. The table must not be
// mutated by anyone else while the servlet runs — the servlet is its
// single writer. A write batch whose co-commit races a concurrent GC
// pass surfaces to the client as msgErrRetry; the resend is idempotent,
// content addressing makes reapplying the same entries converge.
func NewServletTable(tbl *secondary.Table) *Servlet {
	s := NewServlet(tbl.Primary())
	s.tbl = tbl
	return s
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves until Close. It returns the bound address.
func (s *Servlet) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("forkbase: listen: %w", err)
	}
	if s.opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, s.opts.MaxInflight)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close drains the servlet: it stops accepting, lets every in-flight
// request finish and its response flush, unblocks handlers parked waiting
// for a next request, and returns when all connection handlers have exited.
// Close is idempotent — concurrent or repeated calls all wait for the same
// drain; only the first closes the listener (and reports its error).
func (s *Servlet) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closing = true
	s.mu.Unlock()
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	// Expire pending reads so idle handlers notice the shutdown; handlers
	// mid-request are past the read and finish writing their response
	// before they check s.closed again.
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Head returns the servlet's current index version.
func (s *Servlet) Head() core.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx
}

func (s *Servlet) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		// Register before handling, under the same lock Close iterates, so
		// a conn is either drained by Close or rejected here — never left
		// parked in a read Close cannot see.
		s.mu.Lock()
		select {
		case <-s.closed:
			s.mu.Unlock()
			conn.Close()
			return
		default:
		}
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			// Admission control: tell the dialer to back off and retry
			// rather than letting the conn set grow without bound. The
			// write deadline keeps a non-reading peer from parking the
			// accept loop.
			s.mu.Unlock()
			_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
			_ = writeMsg(conn, msgErrBusy, []byte("forkbase: connection limit reached"))
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

func (s *Servlet) handleConn(conn net.Conn) {
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		typ, payload, err := s.serveOne(conn)
		if err != nil {
			select {
			case <-s.closed:
				return // drain interrupted the read; not a protocol error
			default:
			}
			if errors.Is(err, io.EOF) {
				return
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// Idle reap: the connection sat without a request past
				// IdleTimeout. Drop it silently — there is no request to
				// answer and a stalled peer is not reading anyway.
				return
			}
			if errors.Is(err, version.ErrCommitRaced) {
				// Transient by contract: the commit lost to a concurrent GC
				// pass beyond the server-side retry budget. Tell the client
				// to resend and keep the connection.
				if writeMsg(conn, msgErrRetry, []byte(err.Error())) != nil {
					return
				}
				continue
			}
			if errors.Is(err, store.ErrNoSpace) {
				// Degraded store: writes are rejected but reads still work.
				// Busy (retryable) rather than permanent, and the connection
				// survives so reads keep flowing.
				if writeMsg(conn, msgErrBusy, []byte(err.Error())) != nil {
					return
				}
				continue
			}
			if errors.Is(err, ErrBudgetExceeded) {
				// The client's propagated budget ran out mid-work; it has
				// already timed out locally. Keep the connection for the
				// retry that carries a fresh budget.
				if writeMsg(conn, msgErrDeadline, []byte(err.Error())) != nil {
					return
				}
				continue
			}
			// Best effort error report, then drop the connection.
			_ = writeMsg(conn, msgErr, []byte(err.Error()))
			return
		}
		if err := writeMsg(conn, typ, payload); err != nil {
			return
		}
	}
}

// serveOne reads one request, applies admission (frame cap, idle deadline,
// budget decode, load shedding), and computes the response.
func (s *Servlet) serveOne(conn net.Conn) (byte, []byte, error) {
	if s.opts.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	}
	typ, payload, err := readMsgLimit(conn, uint32(s.opts.MaxFrameBytes))
	if err != nil {
		return 0, nil, err
	}
	// A budget envelope fixes the request's deadline the moment it is read:
	// queueing delay downstream counts against the budget, as it should —
	// time spent waiting is time the client no longer has.
	var deadline time.Time
	if typ == msgBudget {
		budget, inner, innerPayload, err := decodeBudget(payload)
		if err != nil {
			return 0, nil, err
		}
		if budget > 0 {
			deadline = time.Now().Add(budget)
		}
		typ, payload = inner, innerPayload
	}
	if !s.acquireSlot() {
		// Every execution slot is busy: shed rather than queue. A queue
		// would only add latency until every admitted request times out —
		// the congestion-collapse mode the overload experiment measures.
		return msgErrBusy, []byte("forkbase: server overloaded, request shed"), nil
	}
	defer s.releaseSlot()
	return s.dispatch(typ, payload, deadline)
}

// acquireSlot takes an execution slot without blocking; false means shed.
func (s *Servlet) acquireSlot() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Servlet) releaseSlot() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// budgetExpired reports whether a request deadline has passed. The zero
// deadline (no budget propagated) never expires.
func budgetExpired(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// budgetCheckRows is how many rows a budget-bounded range scan emits
// between deadline checks: frequent enough to bound overshoot, cheap
// enough to not tax the scan.
const budgetCheckRows = 32

// budgetSource wraps a query source so scans abort once the request's
// propagated budget runs out, instead of burning server CPU on an answer
// the client has already given up on.
type budgetSource struct {
	src      query.Source
	deadline time.Time
}

func (b budgetSource) Get(key []byte) ([]byte, bool, error) {
	if budgetExpired(b.deadline) {
		return nil, false, fmt.Errorf("%w: during point lookup", ErrBudgetExceeded)
	}
	return b.src.Get(key)
}

func (b budgetSource) Range(lo, hi []byte, fn func(key, value []byte) bool) error {
	rows, expired := 0, false
	err := b.src.Range(lo, hi, func(key, value []byte) bool {
		if rows%budgetCheckRows == 0 && budgetExpired(b.deadline) {
			expired = true
			return false
		}
		rows++
		return fn(key, value)
	})
	if err != nil {
		return err
	}
	if expired {
		return fmt.Errorf("%w: after %d rows scanned", ErrBudgetExceeded, rows)
	}
	return nil
}

// dispatch executes one decoded request against the head.
func (s *Servlet) dispatch(typ byte, payload []byte, deadline time.Time) (byte, []byte, error) {
	if budgetExpired(deadline) {
		return 0, nil, fmt.Errorf("%w: expired before dispatch", ErrBudgetExceeded)
	}
	switch typ {
	case msgGetNode:
		h, err := hash.FromBytes(payload)
		if err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		data, ok := s.idx.Store().Get(h)
		s.mu.Unlock()
		if !ok {
			return msgMissing, nil, nil
		}
		return msgNode, data, nil

	case msgPutBatch:
		entries, err := decodeEntries(payload)
		if err != nil {
			return 0, nil, err
		}
		if s.tbl != nil {
			return s.commitTableBatch(entries, deadline)
		}
		if s.repo != nil {
			return s.commitBatch(entries, deadline)
		}
		s.mu.Lock()
		// Memory-head commits serialize on s.mu; waiting behind other write
		// batches burns the budget, and nothing has been applied yet, so
		// aborting here is clean. This is the abort path the overload
		// experiment's shed-off arm exercises under congestion.
		if budgetExpired(deadline) {
			s.mu.Unlock()
			return 0, nil, fmt.Errorf("%w: before applying write batch", ErrBudgetExceeded)
		}
		next, err := s.idx.PutBatch(entries)
		if err == nil {
			s.idx = next
		}
		root, height := s.idx.RootHash(), s.headHeight()
		s.mu.Unlock()
		if err != nil {
			return 0, nil, err
		}
		return msgRoot, encodeRoot(root, height), nil

	case msgGetRoot:
		s.mu.Lock()
		root, height := s.idx.RootHash(), s.headHeight()
		s.mu.Unlock()
		return msgRoot, encodeRoot(root, height), nil

	case msgQuery:
		q, err := decodeQuery(payload)
		if err != nil {
			return 0, nil, err
		}
		// Snapshot an engine under the lock, execute outside it: the
		// index versions it binds are immutable, so a concurrent write
		// batch advances the head without disturbing this query. With a
		// propagated budget, wrap the source so long scans abort when the
		// client's remaining time runs out.
		s.mu.Lock()
		var eng query.Engine
		if s.tbl != nil {
			var src query.Source = query.IndexSource(s.tbl.Primary())
			if !deadline.IsZero() {
				src = budgetSource{src: src, deadline: deadline}
			}
			eng = query.PlannerFor(src, s.tbl)
		} else {
			var src query.Source = query.IndexSource(s.idx)
			if !deadline.IsZero() {
				src = budgetSource{src: src, deadline: deadline}
			}
			eng = query.NewPlanner(src)
		}
		s.mu.Unlock()
		rows, plan, err := eng.Query(q)
		if err != nil {
			return 0, nil, err
		}
		return msgRows, encodeRows(rows, plan), nil

	default:
		return 0, nil, fmt.Errorf("forkbase: unknown request type %d", typ)
	}
}

// commitBatch applies one write batch as a commit on the servlet's branch.
// CommitRetry absorbs ErrCommitRaced with backoff; if it still exhausts the
// budget the raced error propagates and handleConn maps it to msgErrRetry.
// The repo serializes commits itself, so s.mu is held only to publish the
// new head for node serving.
func (s *Servlet) commitBatch(entries []core.Entry, deadline time.Time) (byte, []byte, error) {
	var next core.Index
	_, err := version.CommitRetry(s.repo, s.branch,
		fmt.Sprintf("forkbase: put %d entries", len(entries)),
		func(idx core.Index) (core.Index, error) {
			if idx == nil {
				return nil, fmt.Errorf("forkbase: branch %q disappeared", s.branch)
			}
			// Check inside the mutate: CommitRetry may re-run it after a
			// raced commit plus backoff, by which time the budget may be
			// gone. Aborting here leaves no partial state — the commit that
			// would publish the work never happens.
			if budgetExpired(deadline) {
				return nil, fmt.Errorf("%w: before applying write batch", ErrBudgetExceeded)
			}
			n, err := idx.PutBatch(entries)
			if err != nil {
				return nil, err
			}
			next = n
			return n, nil
		})
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	s.idx = next
	root, height := s.idx.RootHash(), s.headHeight()
	s.mu.Unlock()
	return msgRoot, encodeRoot(root, height), nil
}

// commitTableBatch applies one write batch through the secondary.Table:
// the table maintains every secondary, then co-commits all roots. The
// table's mutation methods are not concurrency-safe, so the whole apply
// runs under s.mu. A raced co-commit (ErrCommitRaced) leaves the table
// state coherent and propagates for handleConn to map to msgErrRetry.
func (s *Servlet) commitTableBatch(entries []core.Entry, deadline time.Time) (byte, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Check after taking s.mu: waiting behind another table batch burns the
	// budget, and the table has not been touched yet, so aborting is clean.
	if budgetExpired(deadline) {
		return 0, nil, fmt.Errorf("%w: before applying table batch", ErrBudgetExceeded)
	}
	if err := s.tbl.PutBatch(entries); err != nil {
		return 0, nil, err
	}
	if _, err := s.tbl.Commit(fmt.Sprintf("forkbase: put %d entries", len(entries))); err != nil {
		return 0, nil, err
	}
	s.idx = s.tbl.Primary()
	return msgRoot, encodeRoot(s.idx.RootHash(), s.headHeight()), nil
}

// headHeight reports the head's tree height when it exposes one. Caller
// holds s.mu.
func (s *Servlet) headHeight() int {
	if h, ok := s.idx.(heighter); ok {
		return h.Height()
	}
	return 0
}
