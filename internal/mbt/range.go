package mbt

import (
	"bytes"
	"container/heap"
	"sort"

	"repro/internal/core"
	"repro/internal/hash"
)

// Compile-time capability check.
var _ core.Ranger = (*Tree)(nil)

// Range implements core.Ranger. MBT hash-partitions keys across buckets, so
// a bounded scan cannot prune subtrees the way the ordered indexes do —
// any bucket may hold in-range keys, and every bucket must be visited.
// This is the structural trade-off the paper bakes into MBT: the hash
// partitioning that keeps the tree perfectly balanced forfeits key
// locality. What the implementation does recover: each bucket's sorted run
// is clipped to [lo, hi) by binary search (a subslice, nothing copied),
// the internal levels are served from the shared decoded-node cache, and
// the clipped runs are k-way merged through a min-heap so emission is in
// ascending key order and an early-stopping caller costs
// O(B·log B + result·log B) after the bucket reads — not a sort of every
// surviving entry.
func (t *Tree) Range(lo, hi []byte, fn func(key, value []byte) bool) error {
	if core.EmptyRange(lo, hi) {
		return nil
	}
	var runs runHeap
	if err := t.collectRuns(t.root, t.topLevel(), lo, hi, &runs); err != nil {
		return err
	}
	heap.Init(&runs)
	for len(runs) > 0 {
		r := &runs[0]
		e := r.entries[r.pos]
		if !fn(e.Key, e.Value) {
			return nil
		}
		r.pos++
		if r.pos == len(r.entries) {
			heap.Pop(&runs)
		} else {
			heap.Fix(&runs, 0)
		}
	}
	return nil
}

// collectRuns walks every bucket under h and appends each bucket's clipped
// sorted run (non-empty ones only) to runs.
func (t *Tree) collectRuns(h hash.Hash, level int, lo, hi []byte, runs *runHeap) error {
	if level == 0 {
		data, err := t.loadRaw(h)
		if err != nil {
			return err
		}
		bucket, err := decodeBucket(data)
		if err != nil {
			return err
		}
		i := 0
		if lo != nil {
			i, _ = searchBucket(bucket.entries, lo)
		}
		j := len(bucket.entries)
		if hi != nil {
			j = i + sort.Search(j-i, func(k int) bool {
				return bytes.Compare(bucket.entries[i+k].Key, hi) >= 0
			})
		}
		if i < j {
			*runs = append(*runs, bucketRun{entries: bucket.entries[i:j]})
		}
		return nil
	}
	n, err := t.loadInternal(h)
	if err != nil {
		return err
	}
	for _, c := range n.children {
		if err := t.collectRuns(c, level-1, lo, hi, runs); err != nil {
			return err
		}
	}
	return nil
}

// bucketRun is one bucket's in-range entries with a merge cursor.
type bucketRun struct {
	entries []core.Entry
	pos     int
}

// runHeap is a min-heap of runs ordered by each run's current key.
type runHeap []bucketRun

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	return bytes.Compare(h[i].entries[h[i].pos].Key, h[j].entries[h[j].pos].Key) < 0
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(bucketRun)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
