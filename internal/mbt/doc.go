// Package mbt implements the Merkle Bucket Tree (§3.4.2 of the paper): a
// Merkle tree of fixed fanout built over a fixed-capacity hash table,
// modeled on Hyperledger Fabric 0.6's bucket tree — extended, as the paper's
// authors had to, with immutability (copy-on-write node updates) and index
// lookup logic.
//
// # Structure
//
// Records hash into one of B buckets; buckets hold entries in key order and
// form the bottom level. Internal nodes of fanout m hold the hashes of their
// children. Capacity and fanout are fixed for the lifetime of the structure,
// so the shape never changes: every key's node position is static, which
// makes diff trivial (positionwise hash comparison) but lets bucket size
// grow linearly with the record count.
//
// The fixed shape also decides the query trade-off recorded in the README's
// query matrix: point lookups hash straight to their bucket, but ordered
// Range scans cannot prune — hash partitioning spreads adjacent keys across
// buckets, so a bounded scan visits every bucket, clips each by binary
// search, and merges the results into key order.
//
// # Versioning
//
// A Tree value is one immutable version; mutating methods return the next
// version sharing every untouched node through the content-addressed store.
// New materializes the complete empty tree eagerly (content addressing
// collapses the identical empty buckets to a handful of stored pages) and
// Load reattaches to any committed root, which is how internal/version
// checks out an MBT commit: the class has no height parameter, so a root
// digest plus the original Config is enough. Under retention-driven GC
// (version.Repo.GC) every reachable node of a retained MBT version —
// including the shared empty-bucket pages — is marked live via Refs.
package mbt
