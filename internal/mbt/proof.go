package mbt

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
)

// Prove implements core.Index: the proof is the node path from the root to
// the bucket holding key.
func (t *Tree) Prove(key []byte) (*core.Proof, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	path, err := t.bucketPath(t.cfg.bucketOf(key))
	if err != nil {
		return nil, err
	}
	proof := &core.Proof{Key: key}
	for _, h := range path {
		data, err := t.loadRaw(h)
		if err != nil {
			return nil, err
		}
		proof.Path = append(proof.Path, data)
	}
	bucket, err := decodeBucket(proof.Path[len(proof.Path)-1])
	if err != nil {
		return nil, err
	}
	i, found := searchBucket(bucket.entries, key)
	if !found {
		return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
	}
	proof.Value = bucket.entries[i].Value
	return proof, nil
}

// VerifyProof implements core.Index: it recomputes each node digest and
// replays the arithmetic bucket path, so both the value and its position
// are authenticated against the trusted root.
func (t *Tree) VerifyProof(root hash.Hash, proof *core.Proof) error {
	if proof == nil || len(proof.Path) != len(t.sizes) {
		return fmt.Errorf("%w: path length %d, want %d",
			core.ErrInvalidProof, len(proof.Path), len(t.sizes))
	}
	b := t.cfg.bucketOf(proof.Key)
	expect := root
	for i, data := range proof.Path {
		if hash.Of(data) != expect {
			return fmt.Errorf("%w: node %d digest mismatch", core.ErrInvalidProof, i)
		}
		level := t.topLevel() - i
		if level == 0 {
			bucket, err := decodeBucket(data)
			if err != nil {
				return fmt.Errorf("%w: %v", core.ErrInvalidProof, err)
			}
			j, found := searchBucket(bucket.entries, proof.Key)
			if !found || !bytes.Equal(bucket.entries[j].Value, proof.Value) {
				return fmt.Errorf("%w: bucket record mismatch", core.ErrInvalidProof)
			}
			return nil
		}
		n, err := decodeInternal(data)
		if err != nil {
			return fmt.Errorf("%w: %v", core.ErrInvalidProof, err)
		}
		slot := t.cfg.ancestor(b, level-1) - t.cfg.ancestor(b, level)*t.cfg.Fanout
		if slot < 0 || slot >= len(n.children) {
			return fmt.Errorf("%w: slot out of range", core.ErrInvalidProof)
		}
		expect = n.children[slot]
	}
	return fmt.Errorf("%w: path exhausted", core.ErrInvalidProof)
}
