package mbt

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
)

// Diff implements core.Index. Because the MBT shape is fixed, every record's
// node position is static across versions, so diff is a positionwise hash
// comparison — the paper credits this for MBT's best-in-class diff speed
// ("comparing the hash of the nodes at the corresponding position").
func (t *Tree) Diff(other core.Index) ([]core.DiffEntry, error) {
	o, ok := other.(*Tree)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	if o.cfg != t.cfg {
		return nil, fmt.Errorf("%w: mbt parameters differ (%+v vs %+v)",
			core.ErrTypeMismatch, t.cfg, o.cfg)
	}
	var out []core.DiffEntry
	if err := t.diffNodes(o, t.root, o.root, t.topLevel(), &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *Tree) diffNodes(o *Tree, a, b hash.Hash, level int, out *[]core.DiffEntry) error {
	if a == b {
		return nil
	}
	da, err := t.loadRaw(a)
	if err != nil {
		return err
	}
	db, err := o.loadRaw(b)
	if err != nil {
		return err
	}
	if level == 0 {
		ba, err := decodeBucket(da)
		if err != nil {
			return err
		}
		bb, err := decodeBucket(db)
		if err != nil {
			return err
		}
		diffBuckets(ba.entries, bb.entries, out)
		return nil
	}
	na, err := decodeInternal(da)
	if err != nil {
		return err
	}
	nb, err := decodeInternal(db)
	if err != nil {
		return err
	}
	if len(na.children) != len(nb.children) {
		return fmt.Errorf("mbt: diff shape mismatch at level %d", level)
	}
	for i := range na.children {
		if err := t.diffNodes(o, na.children[i], nb.children[i], level-1, out); err != nil {
			return err
		}
	}
	return nil
}

// diffBuckets merge-compares two sorted entry runs.
func diffBuckets(a, b []core.Entry, out *[]core.DiffEntry) {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && bytes.Compare(a[i].Key, b[j].Key) < 0):
			*out = append(*out, core.DiffEntry{Key: a[i].Key, Left: a[i].Value})
			i++
		case i >= len(a) || bytes.Compare(a[i].Key, b[j].Key) > 0:
			*out = append(*out, core.DiffEntry{Key: b[j].Key, Right: b[j].Value})
			j++
		default:
			if !bytes.Equal(a[i].Value, b[j].Value) {
				*out = append(*out, core.DiffEntry{Key: a[i].Key, Left: a[i].Value, Right: b[j].Value})
			}
			i++
			j++
		}
	}
}
