package mbt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

func smallCfg() Config { return Config{Capacity: 16, Fanout: 4} }

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(store.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func put(t *testing.T, idx core.Index, k, v string) core.Index {
	t.Helper()
	out, err := idx.Put([]byte(k), []byte(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func get(t *testing.T, idx core.Index, k string) (string, bool) {
	t.Helper()
	v, ok, err := idx.Get([]byte(k))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

// --- config ---

func TestConfigValidate(t *testing.T) {
	if err := (Config{Capacity: 0, Fanout: 2}).Validate(); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if err := (Config{Capacity: 4, Fanout: 1}).Validate(); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelSizes(t *testing.T) {
	cases := []struct {
		cfg  Config
		want []int
	}{
		{Config{Capacity: 8, Fanout: 2}, []int{8, 4, 2, 1}},
		{Config{Capacity: 10, Fanout: 4}, []int{10, 3, 1}},
		{Config{Capacity: 1, Fanout: 2}, []int{1, 1}},
		{Config{Capacity: 4096, Fanout: 32}, []int{4096, 128, 4, 1}},
	}
	for _, tc := range cases {
		got := tc.cfg.levelSizes()
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("levelSizes(%+v) = %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

func TestAncestor(t *testing.T) {
	cfg := Config{Capacity: 100, Fanout: 4}
	if cfg.ancestor(37, 0) != 37 {
		t.Fatal("level-0 ancestor is the bucket itself")
	}
	if cfg.ancestor(37, 1) != 9 {
		t.Fatalf("ancestor(37,1) = %d", cfg.ancestor(37, 1))
	}
	if cfg.ancestor(37, 2) != 2 {
		t.Fatalf("ancestor(37,2) = %d", cfg.ancestor(37, 2))
	}
}

func TestBucketOfDeterministicAndBounded(t *testing.T) {
	cfg := smallCfg()
	f := func(key []byte) bool {
		if len(key) == 0 {
			return true
		}
		b := cfg.bucketOf(key)
		return b >= 0 && b < cfg.Capacity && b == cfg.bucketOf(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- encoding ---

func TestBucketEncodingRoundTrip(t *testing.T) {
	b := &bucketNode{entries: []core.Entry{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte{}},
	}}
	enc := encodeBucket(b)
	back, err := decodeBucket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBucket(back), enc) {
		t.Fatal("bucket re-encoding differs")
	}
	if _, err := decodeBucket(enc[:len(enc)-1]); err == nil {
		t.Fatal("decoded truncated bucket")
	}
	if _, err := decodeInternal(enc); err == nil {
		t.Fatal("decoded bucket as internal node")
	}
}

func TestInternalEncodingRoundTrip(t *testing.T) {
	n := &internalNode{children: []hash.Hash{
		hash.Of([]byte("c1")), hash.Of([]byte("c2")),
	}}
	enc := encodeInternal(n)
	back, err := decodeInternal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeInternal(back), enc) {
		t.Fatal("internal re-encoding differs")
	}
	if _, err := decodeBucket(enc); err == nil {
		t.Fatal("decoded internal node as bucket")
	}
}

// --- construction ---

func TestEmptyTreeDeterministic(t *testing.T) {
	a := newTree(t, smallCfg())
	b := newTree(t, smallCfg())
	if a.RootHash() != b.RootHash() {
		t.Fatal("empty trees differ")
	}
	if a.RootHash().IsNull() {
		t.Fatal("empty MBT root must be a real digest (fixed structure)")
	}
}

func TestEmptyTreeIsCheapToStore(t *testing.T) {
	s := store.NewMemStore()
	if _, err := New(s, Config{Capacity: 10000, Fanout: 32}); err != nil {
		t.Fatal(err)
	}
	// All empty buckets and uniform internal nodes deduplicate.
	if n := s.Stats().UniqueNodes; n > 16 {
		t.Fatalf("empty tree stored %d distinct nodes", n)
	}
}

func TestNonUniformLastLevelNodes(t *testing.T) {
	// Capacity 10, fanout 4 → level sizes [10 3 1]; the trailing level-1
	// node has arity 2 and the root must reference it, not the full one.
	cfg := Config{Capacity: 10, Fanout: 4}
	tr := newTree(t, cfg)
	// Walk to every bucket — a wrong root shape would break path walking.
	for b := 0; b < cfg.Capacity; b++ {
		if _, err := tr.bucketPath(b); err != nil {
			t.Fatalf("bucketPath(%d): %v", b, err)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	tr, err := New(s, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	idx := put(t, core.Index(tr), "k", "v")
	re, err := Load(s, smallCfg(), idx.RootHash())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := get(t, re, "k"); !ok || got != "v" {
		t.Fatalf("reloaded tree Get = %q, %v", got, ok)
	}
}

// --- operations ---

func TestPutGet(t *testing.T) {
	var idx core.Index = newTree(t, smallCfg())
	kv := map[string]string{}
	for i := 0; i < 100; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		idx = put(t, idx, k, v)
		kv[k] = v
	}
	for k, v := range kv {
		if got, ok := get(t, idx, k); !ok || got != v {
			t.Fatalf("Get(%q) = %q, %v", k, got, ok)
		}
	}
	if _, ok := get(t, idx, "absent"); ok {
		t.Fatal("found absent key")
	}
}

func TestOverwriteAndCount(t *testing.T) {
	var idx core.Index = newTree(t, smallCfg())
	idx = put(t, idx, "k", "v1")
	idx = put(t, idx, "k", "v2")
	if got, _ := get(t, idx, "k"); got != "v2" {
		t.Fatalf("Get = %q", got)
	}
	if n, _ := idx.Count(); n != 1 {
		t.Fatalf("Count = %d", n)
	}
}

func TestCopyOnWriteVersions(t *testing.T) {
	v1 := put(t, core.Index(newTree(t, smallCfg())), "a", "1")
	v2 := put(t, v1, "a", "2")
	if got, _ := get(t, v1, "a"); got != "1" {
		t.Fatalf("v1[a] = %q", got)
	}
	if got, _ := get(t, v2, "a"); got != "2" {
		t.Fatalf("v2[a] = %q", got)
	}
}

func TestStructuralInvariance(t *testing.T) {
	// MBT node positions depend only on key hashes, so any insertion
	// order yields the same root.
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	s := store.NewMemStore()
	build := func(order []int) hash.Hash {
		tr, err := New(s, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		var idx core.Index = tr
		for _, i := range order {
			idx = put(t, idx, keys[i], "v-"+keys[i])
		}
		return idx.RootHash()
	}
	base := build(rand.New(rand.NewSource(1)).Perm(len(keys)))
	for trial := 0; trial < 5; trial++ {
		order := rand.New(rand.NewSource(int64(trial + 2))).Perm(len(keys))
		if build(order) != base {
			t.Fatalf("order %v changed root", order)
		}
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	s := store.NewMemStore()
	tr, err := New(s, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var entries []core.Entry
	for i := 0; i < 50; i++ {
		entries = append(entries, core.Entry{
			Key:   []byte(fmt.Sprintf("key-%02d", i)),
			Value: []byte(fmt.Sprintf("val-%02d", i)),
		})
	}
	batch, err := tr.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	var seq core.Index = tr
	for _, e := range entries {
		seq = put(t, seq, string(e.Key), string(e.Value))
	}
	if batch.RootHash() != seq.RootHash() {
		t.Fatal("batch and sequential roots differ")
	}
}

func TestDeleteRestoresPriorRoot(t *testing.T) {
	var idx core.Index = newTree(t, smallCfg())
	for i := 0; i < 20; i++ {
		idx = put(t, idx, fmt.Sprintf("key-%02d", i), "v")
	}
	before := idx.RootHash()
	bigger := put(t, idx, "extra", "e")
	after, err := bigger.Delete([]byte("extra"))
	if err != nil {
		t.Fatal(err)
	}
	if after.RootHash() != before {
		t.Fatal("delete did not restore prior root")
	}
}

func TestDeleteAbsentIsNoop(t *testing.T) {
	idx := put(t, core.Index(newTree(t, smallCfg())), "k", "v")
	out, err := idx.Delete([]byte("missing"))
	if err != nil {
		t.Fatal(err)
	}
	if out.RootHash() != idx.RootHash() {
		t.Fatal("no-op delete changed root")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := newTree(t, smallCfg())
	if _, err := tr.Put(nil, []byte("v")); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("Put err = %v", err)
	}
	if _, _, err := tr.Get(nil); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("Get err = %v", err)
	}
}

func TestModelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var idx core.Index = newTree(t, smallCfg())
	model := map[string]string{}
	pool := make([]string, 40)
	for i := range pool {
		pool[i] = fmt.Sprintf("key-%x", rng.Intn(1<<10))
	}
	for step := 0; step < 1000; step++ {
		k := pool[rng.Intn(len(pool))]
		if rng.Intn(3) < 2 {
			v := fmt.Sprintf("v%d", step)
			idx = put(t, idx, k, v)
			model[k] = v
		} else {
			var err error
			idx, err = idx.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		}
		probe := pool[rng.Intn(len(pool))]
		got, ok := get(t, idx, probe)
		want, wantOK := model[probe]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("step %d: Get(%q) = %q,%v; want %q,%v", step, probe, got, ok, want, wantOK)
		}
	}
	if n, _ := idx.Count(); n != len(model) {
		t.Fatalf("Count = %d, model %d", n, len(model))
	}
}

func TestIterateVisitsAll(t *testing.T) {
	var idx core.Index = newTree(t, smallCfg())
	want := map[string]bool{}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key-%02d", i)
		idx = put(t, idx, k, "v")
		want[k] = true
	}
	got := map[string]bool{}
	if err := idx.Iterate(func(k, _ []byte) bool { got[string(k)] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d keys, want %d", len(got), len(want))
	}
}

func TestPathLengthConstant(t *testing.T) {
	idx := newTree(t, Config{Capacity: 4096, Fanout: 32})
	pl, err := idx.PathLength([]byte("any"))
	if err != nil {
		t.Fatal(err)
	}
	if pl != 4 { // levels: 4096, 128, 4, 1
		t.Fatalf("PathLength = %d, want 4", pl)
	}
}

func TestGetBreakdown(t *testing.T) {
	var idx core.Index = newTree(t, smallCfg())
	for i := 0; i < 200; i++ {
		idx = put(t, idx, fmt.Sprintf("key-%03d", i), "some value")
	}
	v, ok, bd, err := idx.(*Tree).GetBreakdown([]byte("key-100"))
	if err != nil || !ok || string(v) != "some value" {
		t.Fatalf("GetBreakdown = %q, %v, %v", v, ok, err)
	}
	if bd.Load <= 0 || bd.Scan <= 0 {
		t.Fatalf("breakdown not measured: %+v", bd)
	}
}

// --- diff & merge ---

func TestDiffIdentical(t *testing.T) {
	s := store.NewMemStore()
	tr, _ := New(s, smallCfg())
	a := put(t, core.Index(tr), "x", "1")
	diffs, err := a.Diff(a)
	if err != nil || len(diffs) != 0 {
		t.Fatalf("diff of identical = %v, %v", diffs, err)
	}
}

func TestDiffMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := store.NewMemStore()
	tr, _ := New(s, smallCfg())
	var a, b core.Index = tr, tr
	ma, mb := map[string]string{}, map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("key-%03d", rng.Intn(100)), fmt.Sprintf("v%d", i)
		if rng.Intn(2) == 0 {
			a, ma[k] = put(t, a, k, v), v
		} else {
			b, mb[k] = put(t, b, k, v), v
		}
	}
	diffs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for k, v := range ma {
		if mb[k] != v {
			want[k] = true
		}
	}
	for k, v := range mb {
		if ma[k] != v {
			want[k] = true
		}
	}
	if len(diffs) != len(want) {
		t.Fatalf("got %d diffs, want %d", len(diffs), len(want))
	}
	for _, d := range diffs {
		if !want[string(d.Key)] {
			t.Fatalf("unexpected diff key %q", d.Key)
		}
		if string(d.Left) != ma[string(d.Key)] || string(d.Right) != mb[string(d.Key)] {
			t.Fatalf("diff values wrong for %q", d.Key)
		}
	}
}

func TestDiffRejectsMismatchedConfig(t *testing.T) {
	a := newTree(t, smallCfg())
	b := newTree(t, Config{Capacity: 8, Fanout: 2})
	if _, err := a.Diff(b); !errors.Is(err, core.ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeThroughCore(t *testing.T) {
	s := store.NewMemStore()
	tr, _ := New(s, smallCfg())
	base := put(t, core.Index(tr), "shared", "v")
	left := put(t, base, "l", "1")
	right := put(t, base, "r", "2")
	merged, err := core.Merge(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range map[string]string{"shared": "v", "l": "1", "r": "2"} {
		if got, ok := get(t, merged, k); !ok || got != v {
			t.Fatalf("merged[%q] = %q, %v", k, got, ok)
		}
	}
}

// --- proofs ---

func TestProveAndVerify(t *testing.T) {
	var idx core.Index = newTree(t, smallCfg())
	for i := 0; i < 64; i++ {
		idx = put(t, idx, fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i))
	}
	proof, err := idx.Prove([]byte("key-33"))
	if err != nil {
		t.Fatal(err)
	}
	if string(proof.Value) != "val-33" {
		t.Fatalf("proof value = %q", proof.Value)
	}
	if err := idx.VerifyProof(idx.RootHash(), proof); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	proof.Value = []byte("forged")
	if err := idx.VerifyProof(idx.RootHash(), proof); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("forged proof accepted: %v", err)
	}
	if _, err := idx.Prove([]byte("missing")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Prove(missing) = %v", err)
	}
	if err := idx.VerifyProof(idx.RootHash(), &core.Proof{}); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("empty proof accepted: %v", err)
	}
}

// --- metrics ---

func TestFixedNodeCountAcrossGrowth(t *testing.T) {
	// The paper: "the number of nodes created keeps constant when updating
	// or inserting, no matter how large the total number of records is."
	var idx core.Index = newTree(t, smallCfg())
	var counts []int
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			idx = put(t, idx, fmt.Sprintf("r%d-key-%03d", round, i), "value")
		}
		r, err := core.ReachStats(idx)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, r.Nodes)
	}
	// Total reachable node count is bounded by the fixed structure size.
	max := 16 + 4 + 1
	for _, c := range counts {
		if c > max {
			t.Fatalf("reachable nodes %d exceeds structural total %d", c, max)
		}
	}
}

func TestApplyToBucketProperty(t *testing.T) {
	f := func(baseKeys, putKeys []uint8) bool {
		var base []core.Entry
		seen := map[uint8]bool{}
		for _, k := range baseKeys {
			if seen[k] {
				continue
			}
			seen[k] = true
			base = append(base, core.Entry{Key: []byte{k}, Value: []byte("old")})
		}
		base = core.SortEntries(base)
		var puts []core.Entry
		for _, k := range putKeys {
			puts = append(puts, core.Entry{Key: []byte{k}, Value: []byte("new")})
		}
		out := applyToBucket(base, core.SortEntries(puts), nil)
		// Result must be sorted and contain every put key with the new value.
		for i := 1; i < len(out); i++ {
			if bytes.Compare(out[i-1].Key, out[i].Key) >= 0 {
				return false
			}
		}
		for _, p := range puts {
			i, found := searchBucket(out, p.Key)
			if !found || string(out[i].Value) != "new" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
