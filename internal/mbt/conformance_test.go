package mbt_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/indextest"
	"repro/internal/hash"
	"repro/internal/mbt"
	"repro/internal/store"
)

// conformanceConfig is the canonical configuration the golden root vector
// in indextest.CanonicalRoots is computed against.
var conformanceConfig = mbt.Config{Capacity: 64, Fanout: 8}

// TestIndexConformance runs the shared index conformance suite against the
// MBT over every store backend. MBT hash-partitions keys across buckets, so
// Iterate is bucket-ordered (not key-ordered) and Range cannot prune — the
// suite checks its Range output is still exactly the ordered oracle answer.
func TestIndexConformance(t *testing.T) {
	indextest.RunIndexTests(t, "MBT", indextest.Options{
		New: func(s store.Store) (core.Index, error) { return mbt.New(s, conformanceConfig) },
		Reopen: func(s store.Store, idx core.Index) (core.Index, error) {
			return mbt.Load(s, conformanceConfig, idx.RootHash())
		},
		Loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
			return mbt.Load(s, conformanceConfig, root)
		},
		OrderedIterate:        false,
		PrunedRange:           false,
		StructurallyInvariant: true,
	})
}
