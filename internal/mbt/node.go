package mbt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
)

// Node kind tags in the canonical encoding.
const (
	tagBucket   = 1
	tagInternal = 2
)

// Config fixes the structural parameters for the life of the tree.
type Config struct {
	// Capacity is the number of buckets (the paper's B).
	Capacity int
	// Fanout is the number of children per internal node (the paper's m).
	Fanout int
}

// DefaultConfig matches the paper's experimental setup: internal nodes of
// roughly 1KB (32 child hashes × 32 bytes) over a moderate bucket count.
func DefaultConfig() Config { return Config{Capacity: 4096, Fanout: 32} }

// Validate rejects unusable parameter combinations.
func (c Config) Validate() error {
	if c.Capacity < 1 {
		return fmt.Errorf("mbt: capacity %d < 1", c.Capacity)
	}
	if c.Fanout < 2 {
		return fmt.Errorf("mbt: fanout %d < 2", c.Fanout)
	}
	return nil
}

// levelSizes returns the node count per level, bottom (buckets) first,
// ending with the single root.
func (c Config) levelSizes() []int {
	sizes := []int{c.Capacity}
	for n := c.Capacity; n > 1; {
		n = (n + c.Fanout - 1) / c.Fanout
		sizes = append(sizes, n)
	}
	if len(sizes) == 1 {
		// A single bucket still gets a root above it so the tree always
		// has an internal root node.
		sizes = append(sizes, 1)
	}
	return sizes
}

// bucketOf returns the bucket index for key: the paper's hash(key) % B.
func (c Config) bucketOf(key []byte) int {
	d := sha256.Sum256(key)
	return int(binary.BigEndian.Uint64(d[:8]) % uint64(c.Capacity))
}

// ancestor returns the index, within level l, of the node covering bucket b.
// Children of node (l, p) are nodes (l-1, p·m … p·m+arity−1), hence the
// ancestor at level l is b / m^l.
func (c Config) ancestor(b, l int) int {
	for i := 0; i < l; i++ {
		b /= c.Fanout
	}
	return b
}

// arity returns the child count of node (level, pos): Fanout except for the
// trailing node of a level.
func (c Config) arity(sizes []int, level, pos int) int {
	below := sizes[level-1]
	first := pos * c.Fanout
	n := below - first
	if n > c.Fanout {
		n = c.Fanout
	}
	return n
}

// bucketNode is a sorted run of entries.
type bucketNode struct {
	entries []core.Entry
}

// internalNode holds child digests.
type internalNode struct {
	children []hash.Hash
}

// encodeBucketTo appends a bucket node's canonical encoding.
func encodeBucketTo(w *codec.Writer, entries []core.Entry) {
	w.Byte(tagBucket)
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.LenBytes(e.Key)
		w.LenBytes(e.Value)
	}
}

// encodeInternalTo appends an internal node's canonical encoding.
func encodeInternalTo(w *codec.Writer, children []hash.Hash) {
	w.Byte(tagInternal)
	w.Uvarint(uint64(len(children)))
	for _, c := range children {
		w.Bytes32(c[:])
	}
}

func encodeBucket(b *bucketNode) []byte {
	w := codec.NewWriter(64 + len(b.entries)*32)
	encodeBucketTo(w, b.entries)
	return w.Bytes()
}

func encodeInternal(n *internalNode) []byte {
	w := codec.NewWriter(8 + len(n.children)*hash.Size)
	encodeInternalTo(w, n.children)
	return w.Bytes()
}

// decodeBucket parses a bucket encoding.
func decodeBucket(data []byte) (*bucketNode, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil || tag != tagBucket {
		return nil, fmt.Errorf("mbt: not a bucket node (tag %d, %v)", tag, err)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("mbt: bucket count: %w", err)
	}
	b := &bucketNode{entries: make([]core.Entry, 0, n)}
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("mbt: bucket key %d: %w", i, err)
		}
		v, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("mbt: bucket value %d: %w", i, err)
		}
		b.entries = append(b.entries, core.Entry{Key: k, Value: v})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return b, nil
}

// decodeInternal parses an internal node encoding.
func decodeInternal(data []byte) (*internalNode, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil || tag != tagInternal {
		return nil, fmt.Errorf("mbt: not an internal node (tag %d, %v)", tag, err)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("mbt: child count: %w", err)
	}
	node := &internalNode{children: make([]hash.Hash, 0, n)}
	for i := uint64(0); i < n; i++ {
		hb, err := r.Bytes32()
		if err != nil {
			return nil, fmt.Errorf("mbt: child %d: %w", i, err)
		}
		node.children = append(node.children, hash.MustFromBytes(hb))
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return node, nil
}

// nodeKind returns the tag of an encoded node without full decoding.
func nodeKind(data []byte) (byte, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("mbt: empty node encoding")
	}
	return data[0], nil
}

// searchBucket binary-searches the sorted entries for key (the paper's
// "records in the bucket are scanned using binary search").
func searchBucket(entries []core.Entry, key []byte) (int, bool) {
	i := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].Key, key) >= 0
	})
	if i < len(entries) && bytes.Equal(entries[i].Key, key) {
		return i, true
	}
	return i, false
}

// applyToBucket returns a new sorted entry slice with puts applied (replace
// or insert in order) and dels removed.
func applyToBucket(entries []core.Entry, puts []core.Entry, dels [][]byte) []core.Entry {
	out := make([]core.Entry, len(entries))
	copy(out, entries)
	for _, p := range puts {
		i, found := searchBucket(out, p.Key)
		if found {
			out[i] = p
			continue
		}
		out = append(out, core.Entry{})
		copy(out[i+1:], out[i:])
		out[i] = p
	}
	for _, k := range dels {
		if i, found := searchBucket(out, k); found {
			out = append(out[:i], out[i+1:]...)
		}
	}
	return out
}
