package mbt

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Tree is one immutable version of a Merkle Bucket Tree. Mutating methods
// return a new Tree sharing unmodified nodes with the receiver.
type Tree struct {
	s     store.Store
	cfg   Config
	sizes []int // node count per level, buckets first
	root  hash.Hash
	// cache holds decoded internal nodes keyed by digest, shared by every
	// version derived from the same New/Load call, so the path walk of a
	// lookup stops re-decoding the hot upper levels; bcache does the same
	// for decoded buckets, so a warm Get performs no decode allocation.
	cache  *core.NodeCache[*internalNode]
	bcache *core.NodeCache[*bucketNode]
}

// Compile-time interface checks.
var (
	_ core.Index       = (*Tree)(nil)
	_ core.NodeWalker  = (*Tree)(nil)
	_ core.CachePurger = (*Tree)(nil)
)

// New builds an empty tree over s with the given parameters. Because
// capacity and fanout are fixed, the complete (empty) node structure is
// materialized immediately; content addressing collapses the identical
// empty buckets and internal nodes to a handful of stored pages.
func New(s store.Store, cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{s: s, cfg: cfg, sizes: cfg.levelSizes(),
		cache:  core.NewNodeCache[*internalNode](0),
		bcache: core.NewNodeCache[*bucketNode](0)}

	// Build the complete empty tree level by level into a staged writer —
	// one batch flush instead of a Put per distinct node. Nodes with
	// identical child lists are memoized so the build does O(levels)
	// distinct hash computations rather than O(capacity).
	w := core.NewStagedWriter(s)
	emptyBucket := w.Put(encodeBucket(&bucketNode{}))
	level := make([]hash.Hash, cfg.Capacity)
	for i := range level {
		level[i] = emptyBucket
	}
	memo := make(map[string]hash.Hash)
	for l := 1; l < len(t.sizes); l++ {
		next := make([]hash.Hash, t.sizes[l])
		for p := range next {
			a := t.cfg.arity(t.sizes, l, p)
			children := level[p*cfg.Fanout : p*cfg.Fanout+a]
			enc := encodeInternal(&internalNode{children: children})
			key := string(enc)
			h, ok := memo[key]
			if !ok {
				h = w.Put(enc)
				memo[key] = h
			}
			next[p] = h
		}
		level = next
	}
	w.Flush()
	w.Release()
	t.root = level[0]
	return t, nil
}

// Load returns a tree view of an existing root digest in s. The caller must
// supply the same Config the tree was built with.
func Load(s store.Store, cfg Config, root hash.Hash) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tree{s: s, cfg: cfg, sizes: cfg.levelSizes(), root: root,
		cache:  core.NewNodeCache[*internalNode](0),
		bcache: core.NewNodeCache[*bucketNode](0)}, nil
}

// Name implements core.Index.
func (t *Tree) Name() string { return "MBT" }

// Store implements core.Index.
func (t *Tree) Store() store.Store { return t.s }

// RootHash implements core.Index.
func (t *Tree) RootHash() hash.Hash { return t.root }

// Config returns the structural parameters.
func (t *Tree) Config() Config { return t.cfg }

// topLevel returns the root's level index.
func (t *Tree) topLevel() int { return len(t.sizes) - 1 }

// loadRaw fetches a node's encoding.
func (t *Tree) loadRaw(h hash.Hash) ([]byte, error) {
	data, ok := t.s.Get(h)
	if !ok {
		return nil, fmt.Errorf("%w: mbt node %v", core.ErrMissingNode, h)
	}
	return data, nil
}

// loadInternal fetches and decodes the internal node at h, serving repeat
// visits from the shared decoded-node cache. Cached nodes are shared:
// callers copy the child slice before mutating (see updateNode).
func (t *Tree) loadInternal(h hash.Hash) (*internalNode, error) {
	return t.cache.Load(h, func() ([]byte, error) { return t.loadRaw(h) }, decodeInternal)
}

// bucketPath walks from the root to bucket b, returning the node hashes on
// the path (root first, bucket last). This is the paper's reverse simulation
// of the complete multi-way tree search.
func (t *Tree) bucketPath(b int) ([]hash.Hash, error) {
	path := []hash.Hash{t.root}
	h := t.root
	for l := t.topLevel(); l > 0; l-- {
		n, err := t.loadInternal(h)
		if err != nil {
			return nil, err
		}
		childIdx := t.cfg.ancestor(b, l-1)
		slot := childIdx - t.cfg.ancestor(b, l)*t.cfg.Fanout
		if slot < 0 || slot >= len(n.children) {
			return nil, fmt.Errorf("mbt: slot %d out of range at level %d", slot, l)
		}
		h = n.children[slot]
		path = append(path, h)
	}
	return path, nil
}

// bucketHash walks from the root to bucket b and returns just its digest —
// the Get fast path, which unlike bucketPath materializes no path slice.
func (t *Tree) bucketHash(b int) (hash.Hash, error) {
	h := t.root
	for l := t.topLevel(); l > 0; l-- {
		n, err := t.loadInternal(h)
		if err != nil {
			return hash.Null, err
		}
		childIdx := t.cfg.ancestor(b, l-1)
		slot := childIdx - t.cfg.ancestor(b, l)*t.cfg.Fanout
		if slot < 0 || slot >= len(n.children) {
			return hash.Null, fmt.Errorf("mbt: slot %d out of range at level %d", slot, l)
		}
		h = n.children[slot]
	}
	return h, nil
}

// loadBucketNode fetches and decodes the bucket stored under h, serving
// repeat visits from the shared decoded-bucket cache. Cached buckets are
// shared and read-only; the update path builds fresh entry slices
// (applyToBucket copies) instead of mutating a loaded bucket.
func (t *Tree) loadBucketNode(h hash.Hash) (*bucketNode, error) {
	return t.bcache.Load(h, func() ([]byte, error) { return t.loadRaw(h) }, decodeBucket)
}

// loadBucket fetches bucket b.
func (t *Tree) loadBucket(b int) (*bucketNode, error) {
	h, err := t.bucketHash(b)
	if err != nil {
		return nil, err
	}
	return t.loadBucketNode(h)
}

// Get implements core.Index.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, core.ErrEmptyKey
	}
	bucket, err := t.loadBucket(t.cfg.bucketOf(key))
	if err != nil {
		return nil, false, err
	}
	if i, found := searchBucket(bucket.entries, key); found {
		return bucket.entries[i].Value, true, nil
	}
	return nil, false, nil
}

// Breakdown reports the two phases of an MBT lookup separately for the
// Figure 13 experiment: Load covers tree traversal and node fetching
// (including the raw bucket bytes); Scan covers bucket decoding and the
// binary search.
type Breakdown struct {
	Load time.Duration
	Scan time.Duration
}

// GetBreakdown is Get with per-phase timing.
func (t *Tree) GetBreakdown(key []byte) ([]byte, bool, Breakdown, error) {
	var bd Breakdown
	if len(key) == 0 {
		return nil, false, bd, core.ErrEmptyKey
	}
	start := time.Now()
	path, err := t.bucketPath(t.cfg.bucketOf(key))
	if err != nil {
		return nil, false, bd, err
	}
	raw, err := t.loadRaw(path[len(path)-1])
	if err != nil {
		return nil, false, bd, err
	}
	bd.Load = time.Since(start)

	start = time.Now()
	bucket, err := decodeBucket(raw)
	if err != nil {
		return nil, false, bd, err
	}
	i, found := searchBucket(bucket.entries, key)
	bd.Scan = time.Since(start)
	if !found {
		return nil, false, bd, nil
	}
	return bucket.entries[i].Value, true, bd, nil
}

// Put implements core.Index.
func (t *Tree) Put(key, value []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	return t.PutBatch([]core.Entry{{Key: key, Value: value}})
}

// bucketGroup carries the updates destined for one bucket.
type bucketGroup struct {
	idx  int
	puts []core.Entry
	dels [][]byte
}

// PutBatch implements core.Index: updates are grouped per bucket, affected
// buckets are rewritten, and the hashes on their paths are recomputed
// bottom-up (the paper's "hashes of the bucket and the nodes are
// recalculated recursively").
func (t *Tree) PutBatch(entries []core.Entry) (core.Index, error) {
	if err := core.ValidateEntries(entries); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	groups := t.groupByBucket(core.SortEntries(entries), nil)
	return t.commitGroups(groups)
}

// commitGroups rewrites the affected paths bottom-up through a staged
// writer, so the whole update lands in the store as one batch flush of
// exactly the nodes reachable from the new root. The root's child subtrees
// are disjoint bucket ranges, so they rewrite concurrently across the
// writer's workers.
func (t *Tree) commitGroups(groups []bucketGroup) (core.Index, error) {
	w := core.NewStagedWriter(t.s)
	root, err := t.updateRoot(w, groups)
	if err != nil {
		w.Release()
		return nil, err
	}
	w.Flush()
	w.Release()
	return &Tree{s: t.s, cfg: t.cfg, sizes: t.sizes, root: root, cache: t.cache, bcache: t.bcache}, nil
}

// updateRoot rewrites the root applying the bucket groups, fanning the
// affected child subtrees across the staged writer's workers when it has
// more than one. Each child covers a disjoint bucket range, so the
// goroutines share nothing but the (concurrency-safe) caches and writer;
// the committed root is byte-identical to the serial walk's.
func (t *Tree) updateRoot(w *core.StagedWriter, groups []bucketGroup) (hash.Hash, error) {
	level := t.topLevel()
	if w.Workers() <= 1 || level == 0 || len(groups) < 2 {
		return t.updateNode(w, t.root, level, 0, groups)
	}
	n, err := t.loadInternal(t.root)
	if err != nil {
		return hash.Null, err
	}
	nn := &internalNode{children: append([]hash.Hash{}, n.children...)}
	type slotRun struct {
		slot   int
		groups []bucketGroup
	}
	var runs []slotRun
	i := 0
	for i < len(groups) {
		slot := t.cfg.ancestor(groups[i].idx, level-1)
		j := i
		for j < len(groups) && t.cfg.ancestor(groups[j].idx, level-1) == slot {
			j++
		}
		if slot < 0 || slot >= len(nn.children) {
			return hash.Null, fmt.Errorf("mbt: update slot %d out of range at level %d", slot, level)
		}
		runs = append(runs, slotRun{slot: slot, groups: groups[i:j]})
		i = j
	}
	errs := make([]error, len(runs))
	core.FanOut(w.Workers(), len(runs), func(k int) {
		r := runs[k]
		child, err := t.updateNode(w, nn.children[r.slot], level-1, r.slot, r.groups)
		if err != nil {
			errs[k] = err
			return
		}
		nn.children[r.slot] = child
	})
	for _, err := range errs {
		if err != nil {
			return hash.Null, err
		}
	}
	return w.PutFunc(func(enc *codec.Writer) { encodeInternalTo(enc, nn.children) }), nil
}

// Delete implements core.Index.
func (t *Tree) Delete(key []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	if _, ok, err := t.Get(key); err != nil {
		return nil, err
	} else if !ok {
		return t, nil
	}
	groups := t.groupByBucket(nil, [][]byte{key})
	return t.commitGroups(groups)
}

// groupByBucket partitions puts and dels into per-bucket groups sorted by
// bucket index.
func (t *Tree) groupByBucket(puts []core.Entry, dels [][]byte) []bucketGroup {
	byIdx := make(map[int]*bucketGroup)
	for _, e := range puts {
		b := t.cfg.bucketOf(e.Key)
		g := byIdx[b]
		if g == nil {
			g = &bucketGroup{idx: b}
			byIdx[b] = g
		}
		g.puts = append(g.puts, e)
	}
	for _, k := range dels {
		b := t.cfg.bucketOf(k)
		g := byIdx[b]
		if g == nil {
			g = &bucketGroup{idx: b}
			byIdx[b] = g
		}
		g.dels = append(g.dels, k)
	}
	out := make([]bucketGroup, 0, len(byIdx))
	for _, g := range byIdx {
		out = append(out, *g)
	}
	// Sort by bucket index so child partitioning can split ranges.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].idx > out[j].idx; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// updateNode rewrites node (level, pos) applying the given bucket groups,
// returning the new node hash. Only children whose bucket ranges intersect
// the groups are copied; the rest are shared with the previous version.
func (t *Tree) updateNode(w *core.StagedWriter, h hash.Hash, level, pos int, groups []bucketGroup) (hash.Hash, error) {
	if level == 0 {
		bucket, err := t.loadBucketNode(h)
		if err != nil {
			return hash.Null, err
		}
		g := groups[0] // exactly one group reaches a bucket
		entries := applyToBucket(bucket.entries, g.puts, g.dels)
		return w.PutFunc(func(enc *codec.Writer) { encodeBucketTo(enc, entries) }), nil
	}
	n, err := t.loadInternal(h)
	if err != nil {
		return hash.Null, err
	}
	nn := &internalNode{children: append([]hash.Hash{}, n.children...)}
	// Partition groups among child slots: bucket b belongs to the child
	// with index ancestor(b, level-1), i.e. slot ancestor(b,level-1) −
	// pos·fanout.
	i := 0
	for i < len(groups) {
		slot := t.cfg.ancestor(groups[i].idx, level-1) - pos*t.cfg.Fanout
		j := i
		for j < len(groups) && t.cfg.ancestor(groups[j].idx, level-1)-pos*t.cfg.Fanout == slot {
			j++
		}
		if slot < 0 || slot >= len(nn.children) {
			return hash.Null, fmt.Errorf("mbt: update slot %d out of range at level %d", slot, level)
		}
		child, err := t.updateNode(w, nn.children[slot], level-1, pos*t.cfg.Fanout+slot, groups[i:j])
		if err != nil {
			return hash.Null, err
		}
		nn.children[slot] = child
		i = j
	}
	return w.PutFunc(func(enc *codec.Writer) { encodeInternalTo(enc, nn.children) }), nil
}

// Count implements core.Index.
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Iterate(func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Iterate implements core.Index. Entries are visited bucket by bucket (key
// order within a bucket, hash order across buckets).
func (t *Tree) Iterate(fn func(key, value []byte) bool) error {
	_, err := t.iterNode(t.root, t.topLevel(), fn)
	return err
}

func (t *Tree) iterNode(h hash.Hash, level int, fn func(key, value []byte) bool) (bool, error) {
	if level == 0 {
		bucket, err := t.loadBucketNode(h)
		if err != nil {
			return false, err
		}
		for _, e := range bucket.entries {
			if !fn(e.Key, e.Value) {
				return false, nil
			}
		}
		return true, nil
	}
	// Internal levels come from the shared decoded-node cache, so repeated
	// full or bounded scans stop re-decoding the upper tree.
	n, err := t.loadInternal(h)
	if err != nil {
		return false, err
	}
	for _, c := range n.children {
		ok, err := t.iterNode(c, level-1, fn)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

// PathLength implements core.Index. Every lookup traverses the same number
// of nodes: the internal levels plus the bucket.
func (t *Tree) PathLength(key []byte) (int, error) {
	if len(key) == 0 {
		return 0, core.ErrEmptyKey
	}
	return len(t.sizes), nil
}

// PurgeCache implements core.CachePurger: it evicts decoded internal nodes
// and buckets a GC pass swept from the family-shared caches.
func (t *Tree) PurgeCache(live func(hash.Hash) bool) int {
	dead := func(h hash.Hash) bool { return !live(h) }
	return t.cache.EvictIf(dead) + t.bcache.EvictIf(dead)
}

// Refs implements core.NodeWalker.
func (t *Tree) Refs(data []byte) ([]hash.Hash, error) {
	kind, err := nodeKind(data)
	if err != nil {
		return nil, err
	}
	if kind == tagBucket {
		return nil, nil
	}
	n, err := decodeInternal(data)
	if err != nil {
		return nil, err
	}
	return n.children, nil
}
