// Package chunk implements content-defined chunking: the pattern-aware
// partitioning that gives POS-Tree (and the Prolly Tree used in the Noms
// comparison) its structurally invariant shape.
//
// # Boundary detection
//
// A Chunker consumes a sequence of items (serialized index entries) and
// decides after which items a node boundary falls. Boundaries are detected
// with a Rabin-style rolling hash over a fixed-size byte window: whenever the
// low bits of the fingerprint match the boundary pattern, the current node
// ends. Because the decision depends only on content, the same item sequence
// always chunks the same way — regardless of the order in which updates
// produced that sequence. This is the property the paper calls Structurally
// Invariant, and it is what lets identical logical states share pages.
//
// # Resetting and incrementality
//
// The chunker state fully resets at every boundary, which makes chunking a
// left-to-right automaton: re-chunking may start at any previous boundary
// and is guaranteed to reproduce the canonical result. The incremental edit
// algorithms in internal/postree and internal/prolly rely on exactly this —
// an edit re-chunks only from the nearest boundary left of the change until
// the output resynchronizes with the old boundaries.
//
// # Downstream consequences
//
// Structural invariance is also what the versioning layers lean on: two
// parties that arrive at the same logical state produce byte-identical
// pages and therefore identical Merkle roots (deduplicated by the
// content-addressed store, compared for free by internal/version commits),
// and retention GC keeps exactly one copy of every shared page because the
// reachable sets of structurally invariant versions overlap maximally.
package chunk
