package chunk

import (
	"encoding/binary"

	"repro/internal/hash"
)

// Config controls boundary detection for both tree layers.
type Config struct {
	// Window is the rolling-hash window width in bytes. The paper's
	// Forkbase setup uses small windows; the Noms comparison (§5.6.2)
	// uses 67 bytes.
	Window int
	// LeafBits sets the leaf boundary probability to 2^-LeafBits per
	// byte, giving an expected leaf size of about 2^LeafBits bytes.
	LeafBits uint
	// MinLeafBytes suppresses boundaries until a leaf holds at least this
	// many bytes, bounding degenerate tiny nodes.
	MinLeafBytes int
	// MaxLeafBytes forces a boundary once a leaf reaches this many bytes,
	// bounding degenerate huge nodes.
	MaxLeafBytes int
	// InternalBits sets the internal-layer boundary probability to
	// 2^-InternalBits per child, giving an expected fanout of
	// 2^InternalBits.
	InternalBits uint
	// MaxFanout forces an internal boundary at this many children.
	MaxFanout int
}

// DefaultConfig targets the paper's experimental setting of ~1KB nodes
// (§5: "we tune the size of each index node to be approximately 1 KB").
func DefaultConfig() Config { return ConfigForNodeSize(1024) }

// ConfigForNodeSize derives a Config whose expected leaf size is target
// bytes (target must be a power of two between 128 and 1<<20). Internal
// fanout is chosen so internal nodes also weigh roughly target bytes given
// ~46-byte child entries (key + 32-byte hash + prefixes).
func ConfigForNodeSize(target int) Config {
	bits := uint(0)
	for 1<<(bits+1) <= target {
		bits++
	}
	// Expected internal entry ≈ 46 bytes; fanout 2^k ≈ target/46.
	ibits := uint(1)
	for (1<<(ibits+1))*46 <= target {
		ibits++
	}
	return Config{
		Window:       48,
		LeafBits:     bits,
		MinLeafBytes: target / 4,
		MaxLeafBytes: target * 4,
		InternalBits: ibits,
		MaxFanout:    (1 << ibits) * 4,
	}
}

// leafMask returns the bitmask the fingerprint must fully match.
func (c Config) leafMask() uint64 { return (1 << c.LeafBits) - 1 }

// buzhash table: 256 pseudo-random 64-bit values generated once from a fixed
// seed, so fingerprints are deterministic across runs and machines.
var buzTable [256]uint64

func init() {
	// splitmix64 — tiny, well-distributed, stdlib-free PRNG.
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range buzTable {
		buzTable[i] = next()
	}
}

// Roller is a cyclic-polynomial (buzhash) rolling hash over a fixed-width
// byte window. It is a drop-in, stdlib-only stand-in for the Rabin
// fingerprint the paper references; both are uniform rolling hashes and the
// chunk-size statistics are identical.
type Roller struct {
	window int
	buf    []byte // ring buffer of the last `window` bytes
	n      int    // bytes currently in the window
	pos    int    // ring cursor
	h      uint64
	// out[x] caches rotl(buzTable[x], window) — the eviction term — so
	// the hot Roll path performs one rotation instead of two.
	out *[256]uint64
}

// outTables caches eviction tables per window width; windows are few.
var outTables = map[int]*[256]uint64{}

func outTableFor(w int) *[256]uint64 {
	if t, ok := outTables[w]; ok {
		return t
	}
	var t [256]uint64
	for i := range t {
		t[i] = rotl64(buzTable[i], uint(w%64))
	}
	outTables[w] = &t
	return &t
}

// NewRoller returns a Roller over a window of w bytes (w must be positive).
func NewRoller(w int) *Roller {
	if w <= 0 {
		panic("chunk: non-positive window")
	}
	return &Roller{window: w, buf: make([]byte, w), out: outTableFor(w)}
}

// Reset clears the window. Called at every chunk boundary so that boundary
// decisions never depend on bytes of the previous chunk.
func (r *Roller) Reset() {
	r.n, r.pos, r.h = 0, 0, 0
	// The ring contents are stale but unread while n < window.
}

// rotl64 rotates left by k (k < 64).
func rotl64(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

// Roll shifts b into the window and returns the updated fingerprint.
func (r *Roller) Roll(b byte) uint64 {
	var out uint64
	if r.n == r.window {
		// The byte leaving the window was rotated once per subsequent
		// byte; after this call's rotation that totals `window` times.
		out = r.out[r.buf[r.pos]]
	} else {
		r.n++
	}
	r.buf[r.pos] = b
	r.pos++
	if r.pos == r.window {
		r.pos = 0
	}
	r.h = rotl64(r.h, 1) ^ buzTable[b] ^ out
	return r.h
}

// Chunker decides leaf-layer boundaries for a sequence of serialized items.
// Feed items left to right with Item; it reports whether a boundary falls
// after each. The zero value is unusable; call NewChunker.
type Chunker struct {
	cfg    Config
	roller *Roller
	size   int // bytes accumulated in the current chunk
}

// NewChunker returns a leaf chunker for cfg.
func NewChunker(cfg Config) *Chunker {
	return &Chunker{cfg: cfg, roller: NewRoller(cfg.Window)}
}

// Reset restarts the chunker at a chunk boundary.
func (c *Chunker) Reset() {
	c.roller.Reset()
	c.size = 0
}

// Size returns the bytes accumulated in the current (unfinished) chunk.
func (c *Chunker) Size() int { return c.size }

// Item feeds one item's serialized bytes and reports whether a node boundary
// falls immediately after it. On a boundary the chunker resets itself.
//
// A boundary is declared when the rolling fingerprint matches the pattern at
// any byte of the item (once the chunk has reached MinLeafBytes), or when
// the chunk reaches MaxLeafBytes. Cutting only at item granularity keeps
// every entry whole within one node.
func (c *Chunker) Item(data []byte) bool {
	matched := c.scanPart(data)
	if matched || c.size >= c.cfg.MaxLeafBytes {
		c.Reset()
		return true
	}
	return false
}

// ItemKV feeds one key-value entry serialized as len(key) ‖ key ‖
// len(value) ‖ value — byte-identical to the leaf encoding — without
// materializing the buffer. This is the hot path of POS-Tree edits.
func (c *Chunker) ItemKV(key, value []byte) bool {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	matched := c.scanPart(hdr[:n]) ||
		c.scanPart(key)
	if !matched {
		n = binary.PutUvarint(hdr[:], uint64(len(value)))
		matched = c.scanPart(hdr[:n]) || c.scanPart(value)
	}
	if matched || c.size >= c.cfg.MaxLeafBytes {
		c.Reset()
		return true
	}
	return false
}

// scanPart rolls data through the window, reporting whether the boundary
// pattern matched. Once it matches, the caller resets the chunker, so the
// unscanned remainder of the item cannot influence later decisions.
func (c *Chunker) scanPart(data []byte) bool {
	mask := c.cfg.leafMask()
	for _, b := range data {
		c.size++
		h := c.roller.Roll(b)
		if c.size >= c.cfg.MinLeafBytes && h&mask == mask {
			return true
		}
	}
	return false
}

// HashBoundary reports whether a child with digest h terminates an internal
// node: the paper's POS-Tree "directly uses the hashes to match the boundary
// pattern instead of repeatedly computing the hashes within a sliding
// window" (§3.4.3). The low InternalBits bits of the digest's first word
// must all be ones.
func HashBoundary(h hash.Hash, bits uint) bool {
	v := binary.BigEndian.Uint64(h[:8])
	mask := uint64(1)<<bits - 1
	return v&mask == mask
}

// InternalChunker decides internal-layer boundaries for POS-Tree: a pure
// per-child test on the child's digest plus a forced boundary at MaxFanout.
type InternalChunker struct {
	cfg   Config
	count int
}

// NewInternalChunker returns an internal-layer chunker for cfg.
func NewInternalChunker(cfg Config) *InternalChunker {
	return &InternalChunker{cfg: cfg}
}

// Reset restarts the chunker at a node boundary.
func (c *InternalChunker) Reset() { c.count = 0 }

// Child feeds one child digest and reports whether an internal node boundary
// falls after it.
func (c *InternalChunker) Child(h hash.Hash) bool {
	c.count++
	if HashBoundary(h, c.cfg.InternalBits) || c.count >= c.cfg.MaxFanout {
		c.count = 0
		return true
	}
	return false
}

// WindowChunker decides internal-layer boundaries the Noms/Prolly-Tree way:
// a sliding-window rolling hash over the serialized child entries. This is
// the design difference the paper credits for Noms' slower writes (§5.6.2):
// every child entry is re-hashed through the window rather than reusing the
// already-computed child digest.
type WindowChunker struct {
	cfg    Config
	roller *Roller
	count  int
}

// NewWindowChunker returns a Prolly-style internal chunker for cfg.
func NewWindowChunker(cfg Config) *WindowChunker {
	return &WindowChunker{cfg: cfg, roller: NewRoller(cfg.Window)}
}

// Reset restarts the chunker at a node boundary.
func (c *WindowChunker) Reset() {
	c.roller.Reset()
	c.count = 0
}

// Child feeds one serialized child entry and reports whether a boundary
// falls after it. The boundary probability per entry is tuned to match
// InternalBits so both internal-chunking strategies produce comparable
// fanouts; only the work per entry differs.
func (c *WindowChunker) Child(data []byte) bool {
	c.count++
	// Match probability per byte is scaled so that the per-entry
	// probability approximates 2^-InternalBits: with e-byte entries a
	// per-byte mask of InternalBits + log2(e) bits would be exact; we use
	// the entry-final fingerprint instead, giving one decision per entry.
	var h uint64
	for _, b := range data {
		h = c.roller.Roll(b)
	}
	mask := uint64(1)<<c.cfg.InternalBits - 1
	if h&mask == mask || c.count >= c.cfg.MaxFanout {
		c.Reset()
		return true
	}
	return false
}
