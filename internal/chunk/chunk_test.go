package chunk

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func testItems(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	items := make([][]byte, n)
	for i := range items {
		b := make([]byte, size)
		rng.Read(b)
		items[i] = b
	}
	return items
}

// chunkAll returns the boundary positions (item indexes after which a
// boundary falls) for the given item sequence.
func chunkAll(c *Chunker, items [][]byte) []int {
	c.Reset()
	var cuts []int
	for i, it := range items {
		if c.Item(it) {
			cuts = append(cuts, i)
		}
	}
	return cuts
}

func TestChunkerDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	items := testItems(2000, 64, 1)
	a := chunkAll(NewChunker(cfg), items)
	b := chunkAll(NewChunker(cfg), items)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same sequence chunked differently across runs")
	}
	if len(a) == 0 {
		t.Fatal("no boundaries found in 128KB of random data")
	}
}

func TestChunkerRespectsSizeBounds(t *testing.T) {
	cfg := DefaultConfig()
	items := testItems(5000, 64, 2)
	c := NewChunker(cfg)
	size := 0
	for _, it := range items {
		size += len(it)
		if c.Item(it) {
			if size > cfg.MaxLeafBytes+len(it) {
				t.Fatalf("chunk of %d bytes exceeds max %d", size, cfg.MaxLeafBytes)
			}
			size = 0
		}
	}
	// Note: chunks smaller than MinLeafBytes cannot close via pattern, only
	// via the tail of the sequence, which this loop never flushes.
}

func TestChunkerMinBytesSuppressesEarlyBoundaries(t *testing.T) {
	cfg := DefaultConfig()
	items := testItems(5000, 16, 3)
	c := NewChunker(cfg)
	size := 0
	for _, it := range items {
		size += len(it)
		if c.Item(it) {
			// Pattern matches below MinLeafBytes are suppressed; a cut
			// this small could only come from a match at >= MinLeafBytes,
			// impossible when size < MinLeafBytes.
			if size < cfg.MinLeafBytes {
				t.Fatalf("boundary at %d bytes, below min %d", size, cfg.MinLeafBytes)
			}
			size = 0
		}
	}
}

func TestChunkerExpectedSizeTracksConfig(t *testing.T) {
	// Average chunk size should be within a factor of ~2 of the 2^LeafBits
	// target (min/max clamping skews it somewhat).
	for _, target := range []int{512, 1024, 2048, 4096} {
		cfg := ConfigForNodeSize(target)
		items := testItems(200000, 32, int64(target))
		cuts := chunkAll(NewChunker(cfg), items)
		if len(cuts) < 10 {
			t.Fatalf("target %d: too few chunks (%d)", target, len(cuts))
		}
		total := 32 * (cuts[len(cuts)-1] + 1)
		avg := total / len(cuts)
		if avg < target/2 || avg > target*3 {
			t.Errorf("target %d: average chunk %d bytes", target, avg)
		}
	}
}

func TestChunkerResyncAfterPrefixEdit(t *testing.T) {
	// The core property behind incremental edits: chunking restarted at a
	// canonical boundary reproduces the canonical suffix boundaries.
	cfg := DefaultConfig()
	items := testItems(3000, 64, 4)
	cuts := chunkAll(NewChunker(cfg), items)
	if len(cuts) < 3 {
		t.Skip("not enough chunks")
	}
	start := cuts[1] + 1 // restart right after the second boundary
	c := NewChunker(cfg)
	c.Reset()
	var cuts2 []int
	for i := start; i < len(items); i++ {
		if c.Item(items[i]) {
			cuts2 = append(cuts2, i)
		}
	}
	want := cuts[2:]
	if fmt.Sprint(cuts2) != fmt.Sprint(want) {
		t.Fatalf("restarted chunking diverged:\n got %v\nwant %v", cuts2, want)
	}
}

func TestRollerWindowSlides(t *testing.T) {
	// After the window is saturated, the fingerprint must depend only on
	// the last `window` bytes.
	r1 := NewRoller(8)
	r2 := NewRoller(8)
	prefix1 := []byte("AAAAAAAAAAAAAAAA")
	prefix2 := []byte("BBBBBBBBBBBBBBBB")
	tail := []byte("same-tail-bytes")
	var h1, h2 uint64
	for _, b := range prefix1 {
		h1 = r1.Roll(b)
	}
	for _, b := range prefix2 {
		h2 = r2.Roll(b)
	}
	if h1 == h2 {
		t.Fatal("different windows produced equal fingerprints (unlikely)")
	}
	for _, b := range tail {
		h1 = r1.Roll(b)
		h2 = r2.Roll(b)
	}
	if h1 != h2 {
		t.Fatal("fingerprint depends on bytes outside the window")
	}
}

func TestRollerResetClearsState(t *testing.T) {
	r := NewRoller(16)
	for _, b := range []byte("some earlier content") {
		r.Roll(b)
	}
	r.Reset()
	h1 := r.Roll('x')
	fresh := NewRoller(16)
	h2 := fresh.Roll('x')
	if h1 != h2 {
		t.Fatal("Reset did not clear roller state")
	}
}

func TestNewRollerPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRoller(0)
}

func TestHashBoundaryProbability(t *testing.T) {
	// With k bits, roughly 1 in 2^k random digests should be boundaries.
	const n = 1 << 16
	for _, bits := range []uint{2, 4, 5} {
		count := 0
		for i := 0; i < n; i++ {
			h := hash.Of([]byte(fmt.Sprintf("digest-%d", i)))
			if HashBoundary(h, bits) {
				count++
			}
		}
		want := n >> bits
		if count < want/2 || count > want*2 {
			t.Errorf("bits=%d: %d boundaries, want ≈%d", bits, count, want)
		}
	}
}

func TestInternalChunkerForcesMaxFanout(t *testing.T) {
	cfg := DefaultConfig()
	c := NewInternalChunker(cfg)
	streak := 0
	for i := 0; i < 10000; i++ {
		h := hash.Of([]byte(fmt.Sprintf("child-%d", i)))
		streak++
		if c.Child(h) {
			if streak > cfg.MaxFanout {
				t.Fatalf("fanout %d exceeds max %d", streak, cfg.MaxFanout)
			}
			streak = 0
		}
	}
}

func TestInternalChunkerMatchesHashBoundary(t *testing.T) {
	cfg := DefaultConfig()
	c := NewInternalChunker(cfg)
	for i := 0; i < 1000; i++ {
		h := hash.Of([]byte(fmt.Sprintf("c%d", i)))
		got := c.Child(h)
		if HashBoundary(h, cfg.InternalBits) && !got {
			t.Fatal("pattern digest did not cut")
		}
	}
}

func TestWindowChunkerDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	items := testItems(4000, 46, 7)
	run := func() []int {
		c := NewWindowChunker(cfg)
		var cuts []int
		for i, it := range items {
			if c.Child(it) {
				cuts = append(cuts, i)
			}
		}
		return cuts
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("window chunker nondeterministic")
	}
	if len(a) == 0 {
		t.Fatal("window chunker produced no boundaries")
	}
}

func TestConfigForNodeSizeMonotone(t *testing.T) {
	prev := uint(0)
	for _, target := range []int{128, 512, 1024, 4096, 1 << 20} {
		cfg := ConfigForNodeSize(target)
		if cfg.LeafBits < prev {
			t.Fatalf("LeafBits not monotone at %d", target)
		}
		if 1<<cfg.LeafBits > target {
			t.Fatalf("2^LeafBits=%d exceeds target %d", 1<<cfg.LeafBits, target)
		}
		prev = cfg.LeafBits
		if cfg.MaxFanout <= 1 {
			t.Fatalf("MaxFanout=%d at target %d", cfg.MaxFanout, target)
		}
	}
}

func TestChunkerPrefixStabilityProperty(t *testing.T) {
	// Appending items never changes boundaries already emitted: chunking is
	// strictly left-to-right.
	cfg := ConfigForNodeSize(256) // small chunks so short inputs still cut
	f := func(seed int64, n uint8) bool {
		items := testItems(int(n)+50, 32, seed)
		full := chunkAll(NewChunker(cfg), items)
		half := chunkAll(NewChunker(cfg), items[:len(items)/2])
		// every boundary of the half-run must appear as a prefix of full
		for i, c := range half {
			if i >= len(full) || full[i] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
