package mpt

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
)

// Compile-time capability check.
var _ core.Ranger = (*Trie)(nil)

// Range implements core.Ranger: an in-order descent over the nibble trie
// that visits only subtrees whose nibble prefix can intersect [lo, hi).
// Keys compare identically as byte strings and as nibble sequences (nibbles
// are a finer-grained expansion of the same bytes), so bound checks run in
// nibble space throughout. Node loads go through the shared decoded-node
// cache, so repeated scans of a hot range re-decode only what the LRU has
// evicted.
func (t *Trie) Range(lo, hi []byte, fn func(key, value []byte) bool) error {
	if core.EmptyRange(lo, hi) {
		return nil
	}
	var b nibbleBounds
	if len(lo) > 0 {
		b.lo = keyToNibbles(lo)
	}
	if hi != nil {
		b.hi, b.hasHi = keyToNibbles(hi), true
	}
	_, err := t.rangeNode(t.root, nil, b, fn)
	return err
}

// nibbleBounds carries the scan bounds in nibble space. lo is nil when
// unbounded below; hasHi distinguishes "unbounded above" from an explicit
// bound.
type nibbleBounds struct {
	lo, hi []byte
	hasHi  bool
}

// skipSubtree reports that no key with nibble prefix q can fall in the
// bounds: every such key k satisfies q ≤ k in nibble order and shares q, so
// the subtree is out of range iff q ≥ hi, or q < lo with q not a prefix of
// lo (then even q's largest extension stays below lo).
func (b nibbleBounds) skipSubtree(q []byte) bool {
	if b.hasHi && bytes.Compare(q, b.hi) >= 0 {
		return true
	}
	return b.lo != nil && bytes.Compare(q, b.lo) < 0 && !bytes.HasPrefix(b.lo, q)
}

// compareExt compares the nibble sequence p·[nib] against bound without
// materializing the concatenation, so branch children can be prune-checked
// allocation-free.
func compareExt(p []byte, nib byte, bound []byte) int {
	n := len(p)
	if n >= len(bound) {
		if c := bytes.Compare(p[:len(bound)], bound); c != 0 {
			return c
		}
		return 1 // p·[nib] extends bound (or equals p > bound's prefix)
	}
	if c := bytes.Compare(p, bound[:n]); c != 0 {
		return c
	}
	switch {
	case nib < bound[n]:
		return -1
	case nib > bound[n]:
		return 1
	case n+1 == len(bound):
		return 0 // p·[nib] == bound
	default:
		return -1 // p·[nib] is a proper prefix of bound
	}
}

// skipChild is skipSubtree for the child prefix p·[nib], and childPastHi is
// the matching pastHi; both avoid building the concatenated prefix.
func (b nibbleBounds) skipChild(p []byte, nib byte) bool {
	if b.childPastHi(p, nib) {
		return true
	}
	if b.lo == nil || compareExt(p, nib, b.lo) >= 0 {
		return false
	}
	// p·[nib] < lo: skip unless it is a prefix of lo.
	isPrefix := len(b.lo) > len(p) && bytes.HasPrefix(b.lo, p) && b.lo[len(p)] == nib
	return !isPrefix
}

func (b nibbleBounds) childPastHi(p []byte, nib byte) bool {
	return b.hasHi && compareExt(p, nib, b.hi) >= 0
}

// pastHi reports that the full key nibble sequence k is ≥ hi, which ends an
// in-order walk: everything visited after k is larger still.
func (b nibbleBounds) pastHi(k []byte) bool {
	return b.hasHi && bytes.Compare(k, b.hi) >= 0
}

// belowLo reports that k is < lo and must be skipped (but the walk goes on).
func (b nibbleBounds) belowLo(k []byte) bool {
	return b.lo != nil && bytes.Compare(k, b.lo) < 0
}

// rangeNode walks the subtree at h (whose accumulated nibble prefix is
// prefix) in order, emitting in-bounds entries; it returns false when the
// scan is over (fn stopped it or the upper bound was reached). Subtrees are
// pruned with skipSubtree before their roots are loaded, so only the two
// boundary paths and the covered interior are ever read.
func (t *Trie) rangeNode(h hash.Hash, prefix []byte, b nibbleBounds, fn func(key, value []byte) bool) (bool, error) {
	if h.IsNull() {
		return true, nil
	}
	n, err := t.load(h)
	if err != nil {
		return false, err
	}
	emit := func(nibbles, value []byte) (bool, error) {
		if b.pastHi(nibbles) {
			return false, nil
		}
		if b.belowLo(nibbles) {
			return true, nil
		}
		key, err := nibblesToKey(nibbles)
		if err != nil {
			return false, err
		}
		return fn(key, value), nil
	}
	switch n := n.(type) {
	case *leafNode:
		return emit(append(append([]byte{}, prefix...), n.path...), n.value)
	case *extensionNode:
		full := append(append([]byte{}, prefix...), n.path...)
		if b.skipSubtree(full) {
			// An extension subtree past hi ends the in-order walk; one
			// below lo is skipped and the walk continues.
			return !b.pastHi(full), nil
		}
		return t.rangeNode(n.child, full, b, fn)
	case *branchNode:
		if n.hasValue {
			ok, err := emit(prefix, n.value)
			if err != nil || !ok {
				return ok, err
			}
		}
		for i, c := range n.children {
			if c.IsNull() {
				continue
			}
			// Prune-check the child prefix without materializing it; the
			// copy is only built for children actually descended into.
			if b.skipChild(prefix, byte(i)) {
				if b.childPastHi(prefix, byte(i)) {
					return false, nil // children ascend; the rest are larger
				}
				continue // wholly below lo
			}
			childPrefix := append(append([]byte{}, prefix...), byte(i))
			ok, err := t.rangeNode(c, childPrefix, b, fn)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}
	return false, fmt.Errorf("mpt: unreachable node type %T", n)
}
