package mpt

import (
	"bytes"
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Trie is one immutable version of a Merkle Patricia Trie. Mutating methods
// return a new Trie sharing unmodified nodes with the receiver.
type Trie struct {
	s    store.Store
	root hash.Hash
	// cache holds decoded nodes keyed by digest, shared by every version
	// derived from the same New/Load call so hot upper levels are parsed
	// once, not per lookup.
	cache *core.NodeCache[node]
}

// Compile-time interface checks.
var (
	_ core.Index       = (*Trie)(nil)
	_ core.NodeWalker  = (*Trie)(nil)
	_ core.CachePurger = (*Trie)(nil)
)

// New returns an empty trie over s.
func New(s store.Store) *Trie {
	return &Trie{s: s, cache: core.NewNodeCache[node](0)}
}

// Load returns a trie view of an existing root digest in s.
func Load(s store.Store, root hash.Hash) *Trie {
	return &Trie{s: s, root: root, cache: core.NewNodeCache[node](0)}
}

// derive returns a new version at root sharing the store and node cache.
func (t *Trie) derive(root hash.Hash) *Trie {
	return &Trie{s: t.s, root: root, cache: t.cache}
}

// Name implements core.Index.
func (t *Trie) Name() string { return "MPT" }

// Store implements core.Index.
func (t *Trie) Store() store.Store { return t.s }

// RootHash implements core.Index.
func (t *Trie) RootHash() hash.Hash { return t.root }

// load fetches and decodes the node at h, serving repeat visits from the
// shared decoded-node cache. Cached nodes are shared: callers copy before
// mutating (see the nb := *n pattern in insert and remove).
func (t *Trie) load(h hash.Hash) (node, error) {
	return t.cache.Load(h, func() ([]byte, error) {
		data, ok := t.s.Get(h)
		if !ok {
			return nil, fmt.Errorf("%w: mpt node %v", core.ErrMissingNode, h)
		}
		return data, nil
	}, decodeNode)
}

// save encodes and stores n, returning its digest. The encoding is built in
// a pooled scratch writer — the store copies on insert, so the single-Put
// path allocates no encoding buffer either.
func (t *Trie) save(n node) hash.Hash {
	w := codec.GetWriter()
	n.encode(w)
	h := t.s.Put(w.Bytes())
	w.Release()
	return h
}

// Get implements core.Index.
func (t *Trie) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, core.ErrEmptyKey
	}
	v, _, err := t.lookup(key)
	if err != nil {
		return nil, false, err
	}
	return v, v != nil, nil
}

// lookup walks the trie for key, returning the value (nil if absent) and
// the number of nodes visited.
func (t *Trie) lookup(key []byte) (value []byte, visited int, err error) {
	// The nibble expansion lives on the stack for typical key lengths: the
	// path is only compared and resliced here, never retained, so a cached
	// lookup performs no allocation at all.
	var nbuf [64]byte
	var path []byte
	if len(key)*2 <= len(nbuf) {
		path = appendNibbles(nbuf[:0], key)
	} else {
		path = keyToNibbles(key)
	}
	h := t.root
	for {
		if h.IsNull() {
			return nil, visited, nil
		}
		n, err := t.load(h)
		if err != nil {
			return nil, visited, err
		}
		visited++
		switch n := n.(type) {
		case *leafNode:
			if bytes.Equal(n.path, path) {
				return n.value, visited, nil
			}
			return nil, visited, nil
		case *extensionNode:
			if len(path) < len(n.path) || !bytes.Equal(n.path, path[:len(n.path)]) {
				return nil, visited, nil
			}
			path = path[len(n.path):]
			h = n.child
		case *branchNode:
			if len(path) == 0 {
				if n.hasValue {
					return n.value, visited, nil
				}
				return nil, visited, nil
			}
			h = n.children[path[0]]
			path = path[1:]
		}
	}
}

// PathLength implements core.Index: the number of nodes on the lookup path.
func (t *Trie) PathLength(key []byte) (int, error) {
	if len(key) == 0 {
		return 0, core.ErrEmptyKey
	}
	_, visited, err := t.lookup(key)
	return visited, err
}

// Put implements core.Index.
func (t *Trie) Put(key, value []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	if value == nil {
		value = []byte{}
	}
	root, err := t.insert(t.root, keyToNibbles(key), value)
	if err != nil {
		return nil, err
	}
	return t.derive(root), nil
}

// PutBatch implements core.Index: a true batch insert. All entries mutate a
// dirty overlay of decoded nodes top-down (child pointers stay in-memory),
// then commit hashes the overlay bottom-up once and flushes every new node
// through the store's batch write path. Only nodes reachable from the
// final root are persisted — none of the intermediate-version churn the
// sequential path pays — and the committed root is byte-identical to the
// one sequential inserts would produce (structural invariance).
func (t *Trie) PutBatch(entries []core.Entry) (core.Index, error) {
	if err := core.ValidateEntries(entries); err != nil {
		return nil, err
	}
	sorted := core.SortEntries(entries)
	if len(sorted) == 0 {
		return t, nil
	}
	root := sref{h: t.root}
	for _, e := range sorted {
		// SortEntries already normalized nil values to empty.
		var err error
		root, err = t.stagedInsert(root, keyToNibbles(e.Key), e.Value)
		if err != nil {
			return nil, err
		}
	}
	w := core.NewStagedWriter(t.s)
	rh := t.commitRoot(root, w)
	w.Flush()
	w.Release()
	return t.derive(rh), nil
}

// insert adds (path, value) below the subtree rooted at h, returning the new
// subtree root.
func (t *Trie) insert(h hash.Hash, path, value []byte) (hash.Hash, error) {
	if h.IsNull() {
		return t.save(&leafNode{path: path, value: value}), nil
	}
	n, err := t.load(h)
	if err != nil {
		return hash.Null, err
	}
	switch n := n.(type) {
	case *leafNode:
		cp := commonPrefixLen(n.path, path)
		if cp == len(n.path) && cp == len(path) {
			// Same key: replace the value.
			return t.save(&leafNode{path: path, value: value}), nil
		}
		// Diverge: create a branch at the split nibble (the paper's
		// "new branch node at diverging byte").
		var b branchNode
		if cp == len(n.path) {
			b.value, b.hasValue = n.value, true
		} else {
			b.children[n.path[cp]] = t.save(&leafNode{path: n.path[cp+1:], value: n.value})
		}
		if cp == len(path) {
			b.value, b.hasValue = value, true
		} else {
			b.children[path[cp]] = t.save(&leafNode{path: path[cp+1:], value: value})
		}
		bh := t.save(&b)
		if cp > 0 {
			return t.save(&extensionNode{path: path[:cp], child: bh}), nil
		}
		return bh, nil

	case *extensionNode:
		cp := commonPrefixLen(n.path, path)
		if cp == len(n.path) {
			child, err := t.insert(n.child, path[cp:], value)
			if err != nil {
				return hash.Null, err
			}
			return t.save(&extensionNode{path: n.path, child: child}), nil
		}
		// Split the extension at the divergence point.
		var b branchNode
		if cp+1 == len(n.path) {
			b.children[n.path[cp]] = n.child
		} else {
			b.children[n.path[cp]] = t.save(&extensionNode{path: n.path[cp+1:], child: n.child})
		}
		if cp == len(path) {
			b.value, b.hasValue = value, true
		} else {
			b.children[path[cp]] = t.save(&leafNode{path: path[cp+1:], value: value})
		}
		bh := t.save(&b)
		if cp > 0 {
			return t.save(&extensionNode{path: path[:cp], child: bh}), nil
		}
		return bh, nil

	case *branchNode:
		nb := *n
		if len(path) == 0 {
			nb.value, nb.hasValue = value, true
			return t.save(&nb), nil
		}
		child, err := t.insert(n.children[path[0]], path[1:], value)
		if err != nil {
			return hash.Null, err
		}
		nb.children[path[0]] = child
		return t.save(&nb), nil
	}
	return hash.Null, fmt.Errorf("mpt: unreachable node type %T", n)
}

// Delete implements core.Index.
func (t *Trie) Delete(key []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	root, found, err := t.remove(t.root, keyToNibbles(key))
	if err != nil {
		return nil, err
	}
	if !found {
		return t, nil
	}
	return t.derive(root), nil
}

// remove deletes path below h, collapsing redundant nodes on the way up.
func (t *Trie) remove(h hash.Hash, path []byte) (hash.Hash, bool, error) {
	if h.IsNull() {
		return h, false, nil
	}
	n, err := t.load(h)
	if err != nil {
		return hash.Null, false, err
	}
	switch n := n.(type) {
	case *leafNode:
		if bytes.Equal(n.path, path) {
			return hash.Null, true, nil
		}
		return h, false, nil

	case *extensionNode:
		if len(path) < len(n.path) || !bytes.Equal(n.path, path[:len(n.path)]) {
			return h, false, nil
		}
		child, found, err := t.remove(n.child, path[len(n.path):])
		if err != nil || !found {
			return h, found, err
		}
		return t.reattachExtension(n.path, child)

	case *branchNode:
		nb := *n
		if len(path) == 0 {
			if !n.hasValue {
				return h, false, nil
			}
			nb.value, nb.hasValue = nil, false
		} else {
			child, found, err := t.remove(n.children[path[0]], path[1:])
			if err != nil || !found {
				return h, found, err
			}
			nb.children[path[0]] = child
		}
		return t.collapseBranch(&nb)
	}
	return hash.Null, false, fmt.Errorf("mpt: unreachable node type %T", n)
}

// reattachExtension reconnects an extension prefix above a rewritten child,
// merging chained paths so the compaction invariant holds.
func (t *Trie) reattachExtension(prefix []byte, child hash.Hash) (hash.Hash, bool, error) {
	if child.IsNull() {
		return hash.Null, true, nil
	}
	cn, err := t.load(child)
	if err != nil {
		return hash.Null, false, err
	}
	switch cn := cn.(type) {
	case *leafNode:
		merged := append(append([]byte{}, prefix...), cn.path...)
		return t.save(&leafNode{path: merged, value: cn.value}), true, nil
	case *extensionNode:
		merged := append(append([]byte{}, prefix...), cn.path...)
		return t.save(&extensionNode{path: merged, child: cn.child}), true, nil
	default:
		return t.save(&extensionNode{path: prefix, child: child}), true, nil
	}
}

// collapseBranch enforces the invariant that a branch has ≥2 occupants
// (children plus value); smaller branches become leaves or extensions.
func (t *Trie) collapseBranch(b *branchNode) (hash.Hash, bool, error) {
	live := -1
	count := 0
	for i, c := range b.children {
		if !c.IsNull() {
			count++
			live = i
		}
	}
	switch {
	case count == 0 && !b.hasValue:
		return hash.Null, true, nil
	case count == 0:
		return t.save(&leafNode{path: nil, value: b.value}), true, nil
	case count == 1 && !b.hasValue:
		h, found, err := t.reattachExtension([]byte{byte(live)}, b.children[live])
		return h, found, err
	default:
		return t.save(b), true, nil
	}
}

// Count implements core.Index.
func (t *Trie) Count() (int, error) {
	n := 0
	err := t.Iterate(func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Iterate implements core.Index, visiting entries in key order.
func (t *Trie) Iterate(fn func(key, value []byte) bool) error {
	_, err := t.iterNode(t.root, nil, fn)
	return err
}

// iterNode walks the subtree at h with the given nibble prefix; it returns
// false when fn stopped the iteration.
func (t *Trie) iterNode(h hash.Hash, prefix []byte, fn func(key, value []byte) bool) (bool, error) {
	if h.IsNull() {
		return true, nil
	}
	n, err := t.load(h)
	if err != nil {
		return false, err
	}
	emit := func(nibbles, value []byte) (bool, error) {
		key, err := nibblesToKey(nibbles)
		if err != nil {
			return false, err
		}
		return fn(key, value), nil
	}
	switch n := n.(type) {
	case *leafNode:
		return emit(append(append([]byte{}, prefix...), n.path...), n.value)
	case *extensionNode:
		return t.iterNode(n.child, append(append([]byte{}, prefix...), n.path...), fn)
	case *branchNode:
		if n.hasValue {
			ok, err := emit(prefix, n.value)
			if err != nil || !ok {
				return ok, err
			}
		}
		for i, c := range n.children {
			ok, err := t.iterNode(c, append(append([]byte{}, prefix...), byte(i)), fn)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}
	return false, fmt.Errorf("mpt: unreachable node type %T", n)
}

// PurgeCache implements core.CachePurger: it evicts decoded nodes a GC pass
// swept from the family-shared cache.
func (t *Trie) PurgeCache(live func(hash.Hash) bool) int {
	return t.cache.EvictIf(func(h hash.Hash) bool { return !live(h) })
}

// Refs implements core.NodeWalker.
func (t *Trie) Refs(data []byte) ([]hash.Hash, error) {
	n, err := decodeNode(data)
	if err != nil {
		return nil, err
	}
	switch n := n.(type) {
	case *leafNode:
		return nil, nil
	case *extensionNode:
		return []hash.Hash{n.child}, nil
	case *branchNode:
		var out []hash.Hash
		for _, c := range n.children {
			if !c.IsNull() {
				out = append(out, c)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("mpt: unreachable node type %T", n)
}
