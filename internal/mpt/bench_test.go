package mpt_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mpt"
	"repro/internal/store"
)

// BenchmarkBatchCommit compares the staged batch commit path against the
// sequential insert loop it replaced, per store backend. One iteration
// loads a full batch into a fresh trie; the staged path persists only the
// final version's nodes in one flush, the sequential path persists every
// intermediate version's nodes one Put at a time.
func BenchmarkBatchCommit(b *testing.B) {
	const batch = 4000 // the paper's default write batch size
	entries := make([]core.Entry, batch)
	for i := range entries {
		entries[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("user%07d", i*2654435761%batch)),
			Value: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	backends := []struct {
		name string
		new  func() store.Store
	}{
		{"mem", func() store.Store { return store.NewMemStore() }},
		{"sharded", func() store.Store { return store.NewShardedStore(0) }},
	}
	for _, backend := range backends {
		b.Run("staged/"+backend.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mpt.New(backend.new()).PutBatch(entries); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("sequential/"+backend.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var idx core.Index = mpt.New(backend.new())
				var err error
				for _, e := range entries {
					if idx, err = idx.Put(e.Key, e.Value); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
