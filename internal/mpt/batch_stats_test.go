package mpt_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mpt"
	"repro/internal/store"
)

// batchEntries builds n distinct key-value entries with well-spread keys.
func batchEntries(n int) []core.Entry {
	entries := make([]core.Entry, n)
	for i := range entries {
		entries[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("user%07d", i*2654435761%n)), // scrambled order
			Value: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return entries
}

// TestPutBatchStoreStats locks in the storage accounting of the staged
// batch write path. Before commit-time hashing, a 10k-entry PutBatch was a
// loop of single inserts persisting every intermediate version's nodes —
// O(entries × depth) Puts of which all but the final version's were
// immediately unreachable, silently inflating the RawNodes/RawBytes series
// of the Figure 1/14 storage experiments for batched loads. The staged path
// must write exactly the final version's reachable node set, and the
// sequential path must cost at least 2× more node writes (the acceptance
// bar; in practice it is >5×).
func TestPutBatchStoreStats(t *testing.T) {
	const n = 10_000
	entries := batchEntries(n)

	staged := store.NewMemStore()
	idx, err := mpt.New(staged).PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	stagedStats := staged.Stats()

	seq := store.NewMemStore()
	var seqIdx core.Index = mpt.New(seq)
	for _, e := range entries {
		if seqIdx, err = seqIdx.Put(e.Key, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	seqStats := seq.Stats()

	// Structural invariance: both paths commit byte-identical roots.
	if idx.RootHash() != seqIdx.RootHash() {
		t.Fatalf("staged root %v != sequential root %v", idx.RootHash(), seqIdx.RootHash())
	}

	// The staged batch stores nothing but the final version: every write is
	// unique (the staged writer dedups before flushing) and every stored
	// node is reachable from the committed root.
	if stagedStats.RawNodes != stagedStats.UniqueNodes {
		t.Errorf("staged path wrote duplicates: raw=%d unique=%d",
			stagedStats.RawNodes, stagedStats.UniqueNodes)
	}
	reach, err := core.ReachStats(idx)
	if err != nil {
		t.Fatal(err)
	}
	if int64(reach.Nodes) != stagedStats.UniqueNodes {
		t.Errorf("staged path left garbage: %d stored nodes, %d reachable",
			stagedStats.UniqueNodes, reach.Nodes)
	}
	if int64(reach.Bytes) != stagedStats.UniqueBytes {
		t.Errorf("staged byte footprint %d != reachable bytes %d",
			stagedStats.UniqueBytes, reach.Bytes)
	}

	// The headline: the acceptance bar of ≥2× fewer store writes.
	if seqStats.RawNodes < 2*stagedStats.RawNodes {
		t.Errorf("staged PutBatch wrote %d nodes, sequential wrote %d — want ≥2× reduction",
			stagedStats.RawNodes, seqStats.RawNodes)
	}
	t.Logf("10k-entry batch: staged %d node writes (%d B), sequential %d node writes (%d B), %.1fx reduction",
		stagedStats.RawNodes, stagedStats.RawBytes, seqStats.RawNodes, seqStats.RawBytes,
		float64(seqStats.RawNodes)/float64(stagedStats.RawNodes))
}
