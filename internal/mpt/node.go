// Package mpt implements the Merkle Patricia Trie (§3.4.1 of the paper): a
// radix tree over key nibbles with cryptographic authentication and path
// compaction, modeled on Ethereum's state trie. It is structurally
// invariant — node positions depend only on stored key bytes — and
// copy-on-write, so all versions share unmodified nodes through the
// content-addressed store.
package mpt

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/hash"
)

// Node kind tags in the canonical encoding. The null node is not encoded;
// it is represented by hash.Null.
const (
	tagLeaf      = 1
	tagExtension = 2
	tagBranch    = 3
)

// branchWidth is the fan-out of a branch node: one child per nibble.
const branchWidth = 16

// node is a decoded MPT node: exactly one of the concrete types below.
type node interface {
	// encode appends the canonical encoding.
	encode(w *codec.Writer)
}

// leafNode terminates a key: path holds the remaining key nibbles
// (compacted), value the record.
type leafNode struct {
	path  []byte // nibbles, each 0..15
	value []byte
}

// extensionNode compacts a shared run of nibbles above a single child.
type extensionNode struct {
	path  []byte // nibbles
	child hash.Hash
}

// branchNode fans out by one nibble; value holds a record whose key ends
// exactly here.
type branchNode struct {
	children [branchWidth]hash.Hash
	value    []byte // nil when no record terminates here
	hasValue bool
}

func (n *leafNode) encode(w *codec.Writer) {
	w.Byte(tagLeaf)
	w.LenBytes(compactEncode(n.path, true))
	w.LenBytes(n.value)
}

func (n *extensionNode) encode(w *codec.Writer) {
	w.Byte(tagExtension)
	w.LenBytes(compactEncode(n.path, false))
	w.Bytes32(n.child[:])
}

func (n *branchNode) encode(w *codec.Writer) {
	w.Byte(tagBranch)
	for i := range n.children {
		w.Bytes32(n.children[i][:])
	}
	if n.hasValue {
		w.Byte(1)
		w.LenBytes(n.value)
	} else {
		w.Byte(0)
	}
}

// encodeNode returns the canonical encoding of n.
func encodeNode(n node) []byte {
	w := codec.NewWriter(64)
	n.encode(w)
	return w.Bytes()
}

// decodeNode parses a canonical encoding.
func decodeNode(data []byte) (node, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil {
		return nil, fmt.Errorf("mpt: decode: %w", err)
	}
	switch tag {
	case tagLeaf:
		cp, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("mpt: leaf path: %w", err)
		}
		val, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("mpt: leaf value: %w", err)
		}
		path, isLeaf, err := compactDecode(cp)
		if err != nil {
			return nil, err
		}
		if !isLeaf {
			return nil, fmt.Errorf("mpt: leaf node with extension path flag")
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return &leafNode{path: path, value: val}, nil

	case tagExtension:
		cp, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("mpt: extension path: %w", err)
		}
		hb, err := r.Bytes32()
		if err != nil {
			return nil, fmt.Errorf("mpt: extension child: %w", err)
		}
		path, isLeaf, err := compactDecode(cp)
		if err != nil {
			return nil, err
		}
		if isLeaf {
			return nil, fmt.Errorf("mpt: extension node with leaf path flag")
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return &extensionNode{path: path, child: hash.MustFromBytes(hb)}, nil

	case tagBranch:
		var n branchNode
		for i := 0; i < branchWidth; i++ {
			hb, err := r.Bytes32()
			if err != nil {
				return nil, fmt.Errorf("mpt: branch child %d: %w", i, err)
			}
			n.children[i] = hash.MustFromBytes(hb)
		}
		hv, err := r.Byte()
		if err != nil {
			return nil, fmt.Errorf("mpt: branch value flag: %w", err)
		}
		if hv == 1 {
			n.hasValue = true
			n.value, err = r.LenBytes()
			if err != nil {
				return nil, fmt.Errorf("mpt: branch value: %w", err)
			}
		} else if hv != 0 {
			return nil, fmt.Errorf("mpt: branch value flag %d", hv)
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return &n, nil

	default:
		return nil, fmt.Errorf("mpt: unknown node tag %d", tag)
	}
}

// keyToNibbles splits key bytes into 4-bit nibbles, high first. This is the
// paper's key encoding step (e.g. key "8" → 0x38 → nibbles 3, 8).
func keyToNibbles(key []byte) []byte {
	return appendNibbles(make([]byte, 0, len(key)*2), key)
}

// appendNibbles is keyToNibbles into a caller-supplied buffer. Read paths
// pass a stack array so a lookup's nibble expansion never touches the heap;
// write paths must not, because inserted nibble paths are retained by nodes.
func appendNibbles(dst, key []byte) []byte {
	for _, b := range key {
		dst = append(dst, b>>4, b&0x0f)
	}
	return dst
}

// nibblesToKey reassembles full bytes from an even-length nibble path.
func nibblesToKey(nibbles []byte) ([]byte, error) {
	if len(nibbles)%2 != 0 {
		return nil, fmt.Errorf("mpt: odd nibble path of length %d", len(nibbles))
	}
	out := make([]byte, len(nibbles)/2)
	for i := range out {
		out[i] = nibbles[2*i]<<4 | nibbles[2*i+1]
	}
	return out, nil
}

// compactEncode packs a nibble path into bytes with Ethereum's hex-prefix
// scheme: the first nibble carries flags (bit 1: odd length, bit 2: leaf),
// followed by a zero pad nibble when the path length is even.
func compactEncode(nibbles []byte, isLeaf bool) []byte {
	var flag byte
	if isLeaf {
		flag = 2
	}
	odd := len(nibbles)%2 == 1
	if odd {
		flag |= 1
	}
	var packed []byte
	if odd {
		packed = append(packed, flag<<4|nibbles[0])
		nibbles = nibbles[1:]
	} else {
		packed = append(packed, flag<<4)
	}
	for i := 0; i+1 < len(nibbles); i += 2 {
		packed = append(packed, nibbles[i]<<4|nibbles[i+1])
	}
	return packed
}

// compactDecode unpacks a hex-prefix encoded path.
func compactDecode(b []byte) (nibbles []byte, isLeaf bool, err error) {
	if len(b) == 0 {
		return nil, false, fmt.Errorf("mpt: empty compact path")
	}
	flag := b[0] >> 4
	if flag > 3 {
		return nil, false, fmt.Errorf("mpt: bad compact flag %d", flag)
	}
	isLeaf = flag&2 != 0
	odd := flag&1 != 0
	if odd {
		nibbles = append(nibbles, b[0]&0x0f)
	} else if b[0]&0x0f != 0 {
		return nil, false, fmt.Errorf("mpt: nonzero pad nibble")
	}
	for _, c := range b[1:] {
		nibbles = append(nibbles, c>>4, c&0x0f)
	}
	return nibbles, isLeaf, nil
}

// commonPrefixLen returns the length of the longest shared prefix.
func commonPrefixLen(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
