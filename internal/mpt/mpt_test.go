package mpt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

func newTrie() *Trie { return New(store.NewMemStore()) }

func put(t *testing.T, idx core.Index, k, v string) core.Index {
	t.Helper()
	out, err := idx.Put([]byte(k), []byte(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func get(t *testing.T, idx core.Index, k string) (string, bool) {
	t.Helper()
	v, ok, err := idx.Get([]byte(k))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

// --- encoding ---

func TestCompactEncodeVectors(t *testing.T) {
	cases := []struct {
		nibbles []byte
		isLeaf  bool
		want    []byte
	}{
		{[]byte{1, 2, 3, 4, 5}, false, []byte{0x11, 0x23, 0x45}},
		{[]byte{0, 1, 2, 3, 4, 5}, false, []byte{0x00, 0x01, 0x23, 0x45}},
		{[]byte{0x0f, 1, 0x0c, 0x0b, 8}, true, []byte{0x3f, 0x1c, 0xb8}},
		{[]byte{0, 0x0f, 1, 0x0c, 0x0b, 8}, true, []byte{0x20, 0x0f, 0x1c, 0xb8}},
		{nil, true, []byte{0x20}},
		{nil, false, []byte{0x00}},
	}
	for _, tc := range cases {
		got := compactEncode(tc.nibbles, tc.isLeaf)
		if !bytes.Equal(got, tc.want) {
			t.Errorf("compactEncode(%v, %v) = %x, want %x", tc.nibbles, tc.isLeaf, got, tc.want)
		}
		back, isLeaf, err := compactDecode(got)
		if err != nil {
			t.Fatal(err)
		}
		if isLeaf != tc.isLeaf || !bytes.Equal(back, tc.nibbles) {
			t.Errorf("compactDecode(%x) = %v, %v", got, back, isLeaf)
		}
	}
}

func TestCompactDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := compactDecode(nil); err == nil {
		t.Fatal("decoded empty path")
	}
	if _, _, err := compactDecode([]byte{0x50}); err == nil {
		t.Fatal("decoded bad flag")
	}
	if _, _, err := compactDecode([]byte{0x0f}); err == nil {
		t.Fatal("decoded nonzero pad")
	}
}

func TestNibbleRoundTripProperty(t *testing.T) {
	f := func(key []byte) bool {
		back, err := nibblesToKey(keyToNibbles(key))
		return err == nil && bytes.Equal(back, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeEncodingRoundTrip(t *testing.T) {
	child := hash.Of([]byte("child"))
	var b branchNode
	b.children[3] = child
	b.children[15] = hash.Of([]byte("x"))
	b.value, b.hasValue = []byte("branch value"), true

	nodes := []node{
		&leafNode{path: []byte{1, 2, 3}, value: []byte("v")},
		&leafNode{path: nil, value: []byte{}},
		&extensionNode{path: []byte{0xa}, child: child},
		&b,
		&branchNode{},
	}
	for _, n := range nodes {
		enc := encodeNode(n)
		back, err := decodeNode(enc)
		if err != nil {
			t.Fatalf("decode(%T): %v", n, err)
		}
		if !bytes.Equal(encodeNode(back), enc) {
			t.Fatalf("%T: re-encoding differs", n)
		}
	}
}

func TestDecodeNodeRejectsCorruption(t *testing.T) {
	enc := encodeNode(&leafNode{path: []byte{1}, value: []byte("v")})
	for _, bad := range [][]byte{
		nil,
		{99},              // unknown tag
		enc[:len(enc)-1],  // truncated
		append(enc, 0x00), // trailing
	} {
		if _, err := decodeNode(bad); err == nil {
			t.Fatalf("decoded corrupt input %x", bad)
		}
	}
}

// --- basic operations ---

func TestEmptyTrie(t *testing.T) {
	tr := newTrie()
	if !tr.RootHash().IsNull() {
		t.Fatal("empty trie has non-null root")
	}
	if _, ok := get(t, tr, "missing"); ok {
		t.Fatal("found key in empty trie")
	}
	n, err := tr.Count()
	if err != nil || n != 0 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestPutGet(t *testing.T) {
	var idx core.Index = newTrie()
	kv := map[string]string{
		"8": "v8", "1": "v1", "10": "v10", // the paper's Figure 3 keys
		"abc": "1", "abd": "2", "ab": "3", "abcdef": "4",
	}
	for k, v := range kv {
		idx = put(t, idx, k, v)
	}
	for k, v := range kv {
		got, ok := get(t, idx, k)
		if !ok || got != v {
			t.Fatalf("Get(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
	if _, ok := get(t, idx, "abq"); ok {
		t.Fatal("found absent key abq")
	}
	if _, ok := get(t, idx, "a"); ok {
		t.Fatal("found absent prefix key a")
	}
	if _, ok := get(t, idx, "abcdefg"); ok {
		t.Fatal("found absent extended key")
	}
}

func TestOverwrite(t *testing.T) {
	var idx core.Index = newTrie()
	idx = put(t, idx, "k", "v1")
	idx = put(t, idx, "k", "v2")
	if got, _ := get(t, idx, "k"); got != "v2" {
		t.Fatalf("Get after overwrite = %q", got)
	}
	n, _ := idx.Count()
	if n != 1 {
		t.Fatalf("Count = %d", n)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := newTrie()
	if _, err := tr.Put(nil, []byte("v")); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("Put(nil) err = %v", err)
	}
	if _, _, err := tr.Get(nil); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("Get(nil) err = %v", err)
	}
	if _, err := tr.Delete(nil); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("Delete(nil) err = %v", err)
	}
}

func TestCopyOnWriteVersions(t *testing.T) {
	v1 := put(t, newTrie(), "a", "1")
	v2 := put(t, v1, "a", "2")
	v3 := put(t, v2, "b", "3")

	if got, _ := get(t, v1, "a"); got != "1" {
		t.Fatalf("v1[a] = %q", got)
	}
	if got, _ := get(t, v2, "a"); got != "2" {
		t.Fatalf("v2[a] = %q", got)
	}
	if _, ok := get(t, v2, "b"); ok {
		t.Fatal("v2 sees later insert")
	}
	if got, _ := get(t, v3, "b"); got != "3" {
		t.Fatalf("v3[b] = %q", got)
	}
}

func TestStructuralInvariance(t *testing.T) {
	// Definition 3.1(1): same key set ⇒ same node set, so equal roots —
	// regardless of insertion order.
	keys := []string{"cat", "car", "cart", "dog", "do", "doge", "x", "zebra"}
	build := func(order []int) hash.Hash {
		var idx core.Index = newTrie()
		for _, i := range order {
			idx = put(t, idx, keys[i], "value-"+keys[i])
		}
		return idx.RootHash()
	}
	base := build([]int{0, 1, 2, 3, 4, 5, 6, 7})
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(len(keys))
		if got := build(order); got != base {
			t.Fatalf("order %v produced root %v, want %v", order, got, base)
		}
	}
}

func TestStructuralInvarianceProperty(t *testing.T) {
	f := func(keys [][]byte, seed int64) bool {
		var valid []core.Entry
		seen := map[string]bool{}
		for _, k := range keys {
			if len(k) == 0 || seen[string(k)] {
				continue
			}
			seen[string(k)] = true
			valid = append(valid, core.Entry{Key: k, Value: append([]byte("v-"), k...)})
		}
		s := store.NewMemStore()
		var a core.Index = New(s)
		var b core.Index = New(s)
		var err error
		for _, e := range valid {
			if a, err = a.Put(e.Key, e.Value); err != nil {
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for _, i := range rng.Perm(len(valid)) {
			if b, err = b.Put(valid[i].Key, valid[i].Value); err != nil {
				return false
			}
		}
		return a.RootHash() == b.RootHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRestoresPriorRoot(t *testing.T) {
	// Structural invariance again: adding then removing a key must return
	// to the exact prior root digest.
	var idx core.Index = newTrie()
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		idx = put(t, idx, k, k)
	}
	before := idx.RootHash()
	withX := put(t, idx, "epsilon", "e")
	after, err := withX.Delete([]byte("epsilon"))
	if err != nil {
		t.Fatal(err)
	}
	if after.RootHash() != before {
		t.Fatalf("delete did not restore root: %v vs %v", after.RootHash(), before)
	}
}

func TestDeleteCollapses(t *testing.T) {
	var idx core.Index = newTrie()
	keys := []string{"aa", "ab", "ac", "b"}
	for _, k := range keys {
		idx = put(t, idx, k, "v"+k)
	}
	for i, k := range keys {
		var err error
		idx, err = idx.Delete([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := get(t, idx, k); ok {
			t.Fatalf("key %q survives delete", k)
		}
		for _, rest := range keys[i+1:] {
			if got, ok := get(t, idx, rest); !ok || got != "v"+rest {
				t.Fatalf("key %q lost after deleting %q", rest, k)
			}
		}
	}
	if !idx.RootHash().IsNull() {
		t.Fatal("trie not empty after deleting everything")
	}
}

func TestDeleteAbsentKeyIsNoop(t *testing.T) {
	idx := put(t, newTrie(), "exists", "v")
	out, err := idx.Delete([]byte("missing"))
	if err != nil {
		t.Fatal(err)
	}
	if out.RootHash() != idx.RootHash() {
		t.Fatal("deleting absent key changed root")
	}
}

func TestPutBatchMatchesSequentialPuts(t *testing.T) {
	entries := []core.Entry{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: []byte("k2"), Value: []byte("v2")},
		{Key: []byte("k3"), Value: []byte("v3")},
		{Key: []byte("k1"), Value: []byte("v1-final")}, // dup: last wins
	}
	s := store.NewMemStore()
	batch, err := New(s).PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	var seq core.Index = New(s)
	seq = put(t, seq, "k1", "v1-final")
	seq = put(t, seq, "k2", "v2")
	seq = put(t, seq, "k3", "v3")
	if batch.RootHash() != seq.RootHash() {
		t.Fatal("batch root differs from sequential root")
	}
}

func TestIterateInKeyOrder(t *testing.T) {
	var idx core.Index = newTrie()
	keys := []string{"pear", "apple", "fig", "banana", "applesauce", "app"}
	for _, k := range keys {
		idx = put(t, idx, k, "v")
	}
	var got []string
	if err := idx.Iterate(func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := append([]string{}, keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Iterate order %v, want %v", got, want)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	var idx core.Index = newTrie()
	for i := 0; i < 10; i++ {
		idx = put(t, idx, fmt.Sprintf("k%02d", i), "v")
	}
	n := 0
	idx.Iterate(func(_, _ []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d entries, want 3", n)
	}
}

func TestPathLength(t *testing.T) {
	var idx core.Index = newTrie()
	for i := 0; i < 200; i++ {
		idx = put(t, idx, fmt.Sprintf("key-%03d", i), "v")
	}
	pl, err := idx.PathLength([]byte("key-100"))
	if err != nil {
		t.Fatal(err)
	}
	if pl < 2 || pl > 16 {
		t.Fatalf("PathLength = %d, implausible", pl)
	}
}

// --- model-based property test ---

func TestModelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var idx core.Index = newTrie()
	model := map[string]string{}
	keyPool := make([]string, 60)
	for i := range keyPool {
		keyPool[i] = fmt.Sprintf("key-%x", rng.Intn(1<<12))
	}
	for step := 0; step < 2000; step++ {
		k := keyPool[rng.Intn(len(keyPool))]
		switch rng.Intn(3) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", step)
			idx = put(t, idx, k, v)
			model[k] = v
		case 2: // delete
			var err error
			idx, err = idx.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		}
		// Spot-check a random key.
		probe := keyPool[rng.Intn(len(keyPool))]
		got, ok := get(t, idx, probe)
		want, wantOK := model[probe]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("step %d: Get(%q) = %q,%v; model %q,%v", step, probe, got, ok, want, wantOK)
		}
	}
	n, err := idx.Count()
	if err != nil || n != len(model) {
		t.Fatalf("Count = %d, model %d", n, len(model))
	}
}

// --- diff & merge ---

func TestDiffEmptyVsPopulated(t *testing.T) {
	s := store.NewMemStore()
	var a core.Index = New(s)
	b := put(t, put(t, core.Index(New(s)), "x", "1"), "y", "2")
	diffs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v", diffs)
	}
	for _, d := range diffs {
		if d.Left != nil || d.Right == nil {
			t.Fatalf("bad sidedness: %+v", d)
		}
	}
}

func TestDiffIdentical(t *testing.T) {
	s := store.NewMemStore()
	a := put(t, put(t, core.Index(New(s)), "x", "1"), "y", "2")
	b := put(t, put(t, core.Index(New(s)), "y", "2"), "x", "1")
	diffs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("identical tries diff = %v", diffs)
	}
}

func TestDiffMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := store.NewMemStore()
	var a, b core.Index = New(s), New(s)
	ma, mb := map[string]string{}, map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(150))
		v := fmt.Sprintf("v%d", i)
		if rng.Intn(2) == 0 {
			a, ma[k] = put(t, a, k, v), v
		} else {
			b, mb[k] = put(t, b, k, v), v
		}
		if rng.Intn(4) == 0 { // shared identical record
			k2, v2 := fmt.Sprintf("shared-%03d", rng.Intn(100)), "same"
			a, ma[k2] = put(t, a, k2, v2), v2
			b, mb[k2] = put(t, b, k2, v2), v2
		}
	}
	diffs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{}
	for k, v := range ma {
		if mb[k] != v {
			want[k] = [2]string{v, mb[k]}
		}
	}
	for k, v := range mb {
		if ma[k] != v {
			want[k] = [2]string{ma[k], v}
		}
	}
	if len(diffs) != len(want) {
		t.Fatalf("got %d diffs, want %d", len(diffs), len(want))
	}
	for _, d := range diffs {
		w, ok := want[string(d.Key)]
		if !ok {
			t.Fatalf("unexpected diff key %q", d.Key)
		}
		if string(d.Left) != w[0] || string(d.Right) != w[1] {
			t.Fatalf("diff %q = (%q,%q), want (%q,%q)", d.Key, d.Left, d.Right, w[0], w[1])
		}
	}
}

func TestDiffTypeMismatch(t *testing.T) {
	tr := newTrie()
	if _, err := tr.Diff(fakeIndex{}); !errors.Is(err, core.ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
}

type fakeIndex struct{ core.Index }

func TestMergeThroughCore(t *testing.T) {
	s := store.NewMemStore()
	base := put(t, core.Index(New(s)), "shared", "v")
	left := put(t, base, "left", "1")
	right := put(t, base, "right", "2")
	merged, err := core.Merge(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range map[string]string{"shared": "v", "left": "1", "right": "2"} {
		if got, ok := get(t, merged, k); !ok || got != v {
			t.Fatalf("merged[%q] = %q, %v", k, got, ok)
		}
	}
	// Merging the same contents built in the merged order must reproduce
	// the same root (structural invariance).
	direct := put(t, put(t, put(t, core.Index(New(s)), "right", "2"), "shared", "v"), "left", "1")
	if merged.RootHash() != direct.RootHash() {
		t.Fatal("merge result root differs from directly built trie")
	}
}

// --- proofs ---

func TestProveAndVerify(t *testing.T) {
	var idx core.Index = newTrie()
	for i := 0; i < 50; i++ {
		idx = put(t, idx, fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i))
	}
	proof, err := idx.Prove([]byte("key-25"))
	if err != nil {
		t.Fatal(err)
	}
	if string(proof.Value) != "val-25" {
		t.Fatalf("proof value = %q", proof.Value)
	}
	if err := idx.VerifyProof(idx.RootHash(), proof); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestVerifyProofDetectsTampering(t *testing.T) {
	var idx core.Index = newTrie()
	for i := 0; i < 50; i++ {
		idx = put(t, idx, fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i))
	}
	root := idx.RootHash()

	proof, _ := idx.Prove([]byte("key-25"))
	proof.Value = []byte("forged")
	if err := idx.VerifyProof(root, proof); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("forged value accepted: %v", err)
	}

	proof, _ = idx.Prove([]byte("key-25"))
	proof.Path[len(proof.Path)-1] = append([]byte{}, proof.Path[0]...)
	if err := idx.VerifyProof(root, proof); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("spliced path accepted: %v", err)
	}

	proof, _ = idx.Prove([]byte("key-25"))
	if err := idx.VerifyProof(hash.Of([]byte("wrong root")), proof); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("wrong root accepted: %v", err)
	}

	if err := idx.VerifyProof(root, &core.Proof{}); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("empty proof accepted: %v", err)
	}
}

func TestProveAbsentKey(t *testing.T) {
	idx := put(t, newTrie(), "exists", "v")
	if _, err := idx.Prove([]byte("missing")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

// --- metrics integration ---

func TestReachStatsOnTrie(t *testing.T) {
	var idx core.Index = newTrie()
	for i := 0; i < 100; i++ {
		// Distinct values: identical values would collapse into shared
		// leaf pages (content addressing dedupes within a version too).
		idx = put(t, idx, fmt.Sprintf("key-%03d", i), fmt.Sprintf("value-%03d", i))
	}
	r, err := core.ReachStats(idx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes < 10 || r.Bytes <= 0 || r.Height < 2 {
		t.Fatalf("implausible reach: %+v", r)
	}
}

func TestDedupAcrossVersions(t *testing.T) {
	v1 := newTrie()
	var idx core.Index = v1
	for i := 0; i < 200; i++ {
		idx = put(t, idx, fmt.Sprintf("key-%04d", i), fmt.Sprintf("value-%04d", i))
	}
	v2 := put(t, idx, "key-0100", "changed")
	ratio, err := core.DedupRatio(idx, v2)
	if err != nil {
		t.Fatal(err)
	}
	// One changed record: nearly everything is shared, so η ≈ 1/2 − α/2.
	if ratio < 0.4 || ratio >= 0.5 {
		t.Fatalf("dedup ratio = %v, want just under 0.5", ratio)
	}
}
