package mpt

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/hash"
)

// view is a possibly-virtual position in a trie during diff: a decoded node
// plus its digest when the node is stored (virtual nodes produced by peeling
// compacted paths have a null digest and cannot be hash-pruned).
type view struct {
	t *Trie
	n node
	h hash.Hash
}

// emptyView marks an absent subtree.
func emptyView(t *Trie) view { return view{t: t} }

// loadView fetches the stored node at h (empty view for the null hash).
func loadView(t *Trie, h hash.Hash) (view, error) {
	if h.IsNull() {
		return emptyView(t), nil
	}
	n, err := t.load(h)
	if err != nil {
		return view{}, err
	}
	return view{t: t, n: n, h: h}, nil
}

// valueAt returns the record terminating exactly at this position, with a
// presence flag (values may legitimately be empty byte strings).
func (v view) valueAt() ([]byte, bool) {
	switch n := v.n.(type) {
	case *leafNode:
		if len(n.path) == 0 {
			return n.value, true
		}
	case *branchNode:
		if n.hasValue {
			return n.value, true
		}
	}
	return nil, false
}

// childAt descends one nibble, peeling compacted paths into virtual nodes so
// that both tries can be compared position by position.
func (v view) childAt(i byte) (view, error) {
	switch n := v.n.(type) {
	case nil:
		return emptyView(v.t), nil
	case *leafNode:
		if len(n.path) > 0 && n.path[0] == i {
			return view{t: v.t, n: &leafNode{path: n.path[1:], value: n.value}}, nil
		}
	case *extensionNode:
		if n.path[0] == i {
			if len(n.path) == 1 {
				return loadView(v.t, n.child)
			}
			return view{t: v.t, n: &extensionNode{path: n.path[1:], child: n.child}}, nil
		}
	case *branchNode:
		return loadView(v.t, n.children[i])
	}
	return emptyView(v.t), nil
}

// Diff implements core.Index (§4.1.3): records present in only one version
// or differing between the two. Identical subtree digests are pruned in
// O(1), so the cost is proportional to the divergence, not the index size.
func (t *Trie) Diff(other core.Index) ([]core.DiffEntry, error) {
	o, ok := other.(*Trie)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	av, err := loadView(t, t.root)
	if err != nil {
		return nil, err
	}
	bv, err := loadView(o, o.root)
	if err != nil {
		return nil, err
	}
	var out []core.DiffEntry
	if err := diffViews(av, bv, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func diffViews(a, b view, prefix []byte, out *[]core.DiffEntry) error {
	// Prune identical stored subtrees: structural invariance guarantees
	// equal contents ⇒ equal digests, and content addressing the converse.
	if !a.h.IsNull() && a.h == b.h {
		return nil
	}
	if a.n == nil && b.n == nil {
		return nil
	}
	va, okA := a.valueAt()
	vb, okB := b.valueAt()
	if okA != okB || (okA && !bytes.Equal(va, vb)) {
		key, err := nibblesToKey(prefix)
		if err != nil {
			return err
		}
		d := core.DiffEntry{Key: key}
		if okA {
			d.Left = va
		}
		if okB {
			d.Right = vb
		}
		*out = append(*out, d)
	}
	for i := byte(0); i < branchWidth; i++ {
		ca, err := a.childAt(i)
		if err != nil {
			return err
		}
		cb, err := b.childAt(i)
		if err != nil {
			return err
		}
		if ca.n == nil && cb.n == nil {
			continue
		}
		if err := diffViews(ca, cb, append(append([]byte{}, prefix...), i), out); err != nil {
			return err
		}
	}
	return nil
}
