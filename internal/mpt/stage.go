package mpt

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
)

// This file is the trie's commit-time write path: PutBatch mutates decoded
// in-memory nodes on a dirty overlay and only encodes, hashes and persists
// the nodes reachable from the final root, once, at commit. A sequence of
// copy-on-write single inserts instead persists every intermediate node it
// creates — O(batch × depth) pages of which all but the final version's are
// garbage the moment the next insert lands. Structural invariance
// guarantees both paths commit byte-identical roots (the property tests in
// internal/core enforce it).

// sref points at one child in the overlay: a dirty in-memory node when n is
// non-nil, otherwise a committed node by digest (hash.Null = absent).
type sref struct {
	h hash.Hash
	n snode
}

// snode is a dirty decoded node: exactly one of *sleaf, *sext, *sbranch.
// Dirty nodes are private to one batch, so the insert mutates them in
// place — no per-update copying, encoding or hashing.
type snode interface{ staged() }

type sleaf struct {
	path  []byte
	value []byte
}

type sext struct {
	path  []byte
	child sref
}

type sbranch struct {
	children [branchWidth]sref
	value    []byte
	hasValue bool
}

func (*sleaf) staged()   {}
func (*sext) staged()    {}
func (*sbranch) staged() {}

// resolve returns the dirty node behind r, loading and converting a
// committed node on first touch. Conversion allocates a fresh staged node
// (decoded nodes may be shared through the node cache and must never be
// mutated); the byte slices inside are shared read-only.
func (t *Trie) resolve(r sref) (snode, error) {
	if r.n != nil {
		return r.n, nil
	}
	n, err := t.load(r.h)
	if err != nil {
		return nil, err
	}
	switch n := n.(type) {
	case *leafNode:
		return &sleaf{path: n.path, value: n.value}, nil
	case *extensionNode:
		return &sext{path: n.path, child: sref{h: n.child}}, nil
	case *branchNode:
		sb := &sbranch{value: n.value, hasValue: n.hasValue}
		for i, c := range n.children {
			sb.children[i] = sref{h: c}
		}
		return sb, nil
	}
	return nil, fmt.Errorf("mpt: unreachable node type %T", n)
}

// stagedInsert adds (path, value) below r, returning the new subtree ref.
// It mirrors insert (trie.go) case for case, but mutates dirty nodes in
// place and defers all hashing to commit.
func (t *Trie) stagedInsert(r sref, path, value []byte) (sref, error) {
	if r.n == nil && r.h.IsNull() {
		return sref{n: &sleaf{path: path, value: value}}, nil
	}
	n, err := t.resolve(r)
	if err != nil {
		return sref{}, err
	}
	switch n := n.(type) {
	case *sleaf:
		cp := commonPrefixLen(n.path, path)
		if cp == len(n.path) && cp == len(path) {
			n.value = value
			return sref{n: n}, nil
		}
		b := &sbranch{}
		if cp == len(n.path) {
			b.value, b.hasValue = n.value, true
		} else {
			b.children[n.path[cp]] = sref{n: &sleaf{path: n.path[cp+1:], value: n.value}}
		}
		if cp == len(path) {
			b.value, b.hasValue = value, true
		} else {
			b.children[path[cp]] = sref{n: &sleaf{path: path[cp+1:], value: value}}
		}
		if cp > 0 {
			return sref{n: &sext{path: path[:cp], child: sref{n: b}}}, nil
		}
		return sref{n: b}, nil

	case *sext:
		cp := commonPrefixLen(n.path, path)
		if cp == len(n.path) {
			child, err := t.stagedInsert(n.child, path[cp:], value)
			if err != nil {
				return sref{}, err
			}
			n.child = child
			return sref{n: n}, nil
		}
		b := &sbranch{}
		if cp+1 == len(n.path) {
			b.children[n.path[cp]] = n.child
		} else {
			b.children[n.path[cp]] = sref{n: &sext{path: n.path[cp+1:], child: n.child}}
		}
		if cp == len(path) {
			b.value, b.hasValue = value, true
		} else {
			b.children[path[cp]] = sref{n: &sleaf{path: path[cp+1:], value: value}}
		}
		if cp > 0 {
			return sref{n: &sext{path: path[:cp], child: sref{n: b}}}, nil
		}
		return sref{n: b}, nil

	case *sbranch:
		if len(path) == 0 {
			n.value, n.hasValue = value, true
			return sref{n: n}, nil
		}
		child, err := t.stagedInsert(n.children[path[0]], path[1:], value)
		if err != nil {
			return sref{}, err
		}
		n.children[path[0]] = child
		return sref{n: n}, nil
	}
	return sref{}, fmt.Errorf("mpt: unreachable staged node type %T", n)
}

// commit encodes the dirty subtree under r bottom-up — children first, so
// every parent encoding embeds final child digests — staging each node into
// w exactly once. Clean refs pass through untouched: their subtrees were
// never decoded, let alone modified. Encodings go through the staged
// writer's pooled scratch path, so the commit walk allocates only the
// staged copies of genuinely new nodes.
func (t *Trie) commit(r sref, w *core.StagedWriter) hash.Hash {
	if r.n == nil {
		return r.h
	}
	switch n := r.n.(type) {
	case *sleaf:
		ln := leafNode{path: n.path, value: n.value}
		return w.PutFunc(func(enc *codec.Writer) { ln.encode(enc) })
	case *sext:
		en := extensionNode{path: n.path, child: t.commit(n.child, w)}
		return w.PutFunc(func(enc *codec.Writer) { en.encode(enc) })
	case *sbranch:
		b := branchNode{value: n.value, hasValue: n.hasValue}
		for i, c := range n.children {
			b.children[i] = t.commit(c, w)
		}
		return w.PutFunc(func(enc *codec.Writer) { b.encode(enc) })
	}
	panic(fmt.Sprintf("mpt: unreachable staged node type %T", r.n))
}

// commitRoot is commit with the top of the overlay fanned across the staged
// writer's workers: the up-to-16 dirty subtrees under the root branch are
// independent (no digest of one appears inside another), so each commits —
// encode plus SHA-256 — on its own goroutine, staging concurrently into w's
// lock-striped dedup index. The result is byte-identical to the serial
// walk; only the staging order (and hence nothing observable through the
// content-addressed store) differs. Extension chains above the branch are
// followed first so a compacted root still fans out.
func (t *Trie) commitRoot(r sref, w *core.StagedWriter) hash.Hash {
	if w.Workers() <= 1 || r.n == nil {
		return t.commit(r, w)
	}
	switch n := r.n.(type) {
	case *sext:
		en := extensionNode{path: n.path, child: t.commitRoot(n.child, w)}
		return w.PutFunc(func(enc *codec.Writer) { en.encode(enc) })
	case *sbranch:
		b := branchNode{value: n.value, hasValue: n.hasValue}
		dirty := make([]int, 0, branchWidth)
		for i, c := range n.children {
			if c.n == nil {
				b.children[i] = c.h
			} else {
				dirty = append(dirty, i)
			}
		}
		core.FanOut(w.Workers(), len(dirty), func(j int) {
			i := dirty[j]
			b.children[i] = t.commit(n.children[i], w)
		})
		return w.PutFunc(func(enc *codec.Writer) { b.encode(enc) })
	default:
		return t.commit(r, w)
	}
}
