package mpt_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/indextest"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/store"
)

// TestIndexConformance runs the shared index conformance suite — including
// the Range bound semantics and the subtree-pruning node-read assertion —
// against the MPT over every store backend.
func TestIndexConformance(t *testing.T) {
	indextest.RunIndexTests(t, "MPT", indextest.Options{
		New: func(s store.Store) (core.Index, error) { return mpt.New(s), nil },
		Reopen: func(s store.Store, idx core.Index) (core.Index, error) {
			return mpt.Load(s, idx.RootHash()), nil
		},
		Loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
			return mpt.Load(s, root), nil
		},
		OrderedIterate:        true,
		PrunedRange:           true,
		StructurallyInvariant: true,
	})
}
