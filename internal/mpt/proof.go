package mpt

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
)

// Prove implements core.Index: it returns the node encodings on the lookup
// path of key, which together with the trusted root digest authenticate the
// value (the paper's "proof of data, which contains the nodes on the path to
// the root").
func (t *Trie) Prove(key []byte) (*core.Proof, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	path := keyToNibbles(key)
	h := t.root
	proof := &core.Proof{Key: key}
	for {
		if h.IsNull() {
			return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
		}
		data, ok := t.s.Get(h)
		if !ok {
			return nil, fmt.Errorf("%w: mpt node %v", core.ErrMissingNode, h)
		}
		proof.Path = append(proof.Path, data)
		n, err := decodeNode(data)
		if err != nil {
			return nil, err
		}
		switch n := n.(type) {
		case *leafNode:
			if !bytes.Equal(n.path, path) {
				return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
			}
			proof.Value = n.value
			return proof, nil
		case *extensionNode:
			if len(path) < len(n.path) || !bytes.Equal(n.path, path[:len(n.path)]) {
				return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
			}
			path = path[len(n.path):]
			h = n.child
		case *branchNode:
			if len(path) == 0 {
				if !n.hasValue {
					return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
				}
				proof.Value = n.value
				return proof, nil
			}
			h = n.children[path[0]]
			path = path[1:]
		}
	}
}

// VerifyProof implements core.Index: it replays the proof path against the
// trusted root digest, recomputing every node hash and link. Any tampering
// with the value, the key binding, or the path breaks a hash equality.
func (t *Trie) VerifyProof(root hash.Hash, proof *core.Proof) error {
	if proof == nil || len(proof.Path) == 0 {
		return fmt.Errorf("%w: empty proof", core.ErrInvalidProof)
	}
	path := keyToNibbles(proof.Key)
	expect := root
	for i, data := range proof.Path {
		if hash.Of(data) != expect {
			return fmt.Errorf("%w: node %d digest mismatch", core.ErrInvalidProof, i)
		}
		n, err := decodeNode(data)
		if err != nil {
			return fmt.Errorf("%w: node %d: %v", core.ErrInvalidProof, i, err)
		}
		last := i == len(proof.Path)-1
		switch n := n.(type) {
		case *leafNode:
			if !last || !bytes.Equal(n.path, path) || !bytes.Equal(n.value, proof.Value) {
				return fmt.Errorf("%w: leaf mismatch", core.ErrInvalidProof)
			}
			return nil
		case *extensionNode:
			if last || len(path) < len(n.path) || !bytes.Equal(n.path, path[:len(n.path)]) {
				return fmt.Errorf("%w: extension mismatch", core.ErrInvalidProof)
			}
			path = path[len(n.path):]
			expect = n.child
		case *branchNode:
			if len(path) == 0 {
				if !last || !n.hasValue || !bytes.Equal(n.value, proof.Value) {
					return fmt.Errorf("%w: branch value mismatch", core.ErrInvalidProof)
				}
				return nil
			}
			if last {
				return fmt.Errorf("%w: proof ends at branch", core.ErrInvalidProof)
			}
			expect = n.children[path[0]]
			path = path[1:]
		}
	}
	return fmt.Errorf("%w: path exhausted", core.ErrInvalidProof)
}
