package workload

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rlp"
)

// --- Zipfian ---

func TestZipfianBounds(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.9} {
		z := NewZipfian(1000, theta, 42)
		for i := 0; i < 10000; i++ {
			v := z.Next()
			if v >= 1000 {
				t.Fatalf("θ=%v: rank %d out of range", theta, v)
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// With θ=0.9 the most popular rank must dominate; with θ=0 the
	// distribution must be roughly flat.
	counts := func(theta float64) []int {
		z := NewZipfian(100, theta, 7)
		c := make([]int, 100)
		for i := 0; i < 100000; i++ {
			c[z.Next()]++
		}
		return c
	}
	flat := counts(0)
	skew := counts(0.9)
	if skew[0] < 5*flat[0] {
		t.Fatalf("rank 0: skewed %d vs flat %d — not skewed enough", skew[0], flat[0])
	}
	// Uniform: min and max counts within 3x of each other.
	min, max := flat[0], flat[0]
	for _, c := range flat {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > 3*min {
		t.Fatalf("uniform counts spread too wide: %d..%d", min, max)
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a, b := NewZipfian(500, 0.5, 9), NewZipfian(500, 0.5, 9)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfianPanicsOnZeroItems(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipfian(0, 0.5, 1)
}

// --- YCSB ---

func TestYCSBKeyProperties(t *testing.T) {
	y := NewYCSB(YCSBConfig{Records: 50000, Seed: 1})
	seen := map[string]bool{}
	for i := 0; i < 50000; i++ {
		k := y.Key(i)
		if len(k) < 5 || len(k) > 15 {
			t.Fatalf("key %q has length %d, want 5..15", k, len(k))
		}
		if seen[string(k)] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[string(k)] = true
	}
}

func TestYCSBValueLengths(t *testing.T) {
	y := NewYCSB(DefaultYCSB())
	total := 0
	for i := 0; i < 1000; i++ {
		v := y.Value(i, 0)
		if len(v) < 128 || len(v) > 384 {
			t.Fatalf("value length %d outside [128,384]", len(v))
		}
		total += len(v)
	}
	avg := total / 1000
	if avg < 230 || avg > 280 {
		t.Fatalf("average value length %d, want ≈256", avg)
	}
}

func TestYCSBValueChangesAcrossVersions(t *testing.T) {
	y := NewYCSB(DefaultYCSB())
	if bytes.Equal(y.Value(1, 0), y.Value(1, 1)) {
		t.Fatal("versions produce identical values")
	}
	if !bytes.Equal(y.Value(1, 0), y.Value(1, 0)) {
		t.Fatal("same version not deterministic")
	}
}

func TestYCSBDataset(t *testing.T) {
	cfg := DefaultYCSB()
	cfg.Records = 500
	ds := NewYCSB(cfg).Dataset()
	if len(ds) != 500 {
		t.Fatalf("dataset size %d", len(ds))
	}
}

func TestYCSBOpsWriteRatio(t *testing.T) {
	for _, ratio := range []float64{0, 0.5, 1} {
		cfg := DefaultYCSB()
		cfg.WriteRatio = ratio
		ops := NewYCSB(cfg).Ops(10000)
		writes := 0
		for _, op := range ops {
			if op.Write {
				writes++
				if op.Entry.Value == nil {
					t.Fatal("write op without value")
				}
			}
		}
		got := float64(writes) / 10000
		if got < ratio-0.03 || got > ratio+0.03 {
			t.Fatalf("write ratio %v, want %v", got, ratio)
		}
	}
}

func TestOverlapWorkloadSharing(t *testing.T) {
	y := NewYCSB(YCSBConfig{Records: 10000, Seed: 3})
	const parties, ops = 4, 1000
	for _, ratio := range []float64{0.1, 0.5, 1.0} {
		ws := OverlapWorkload(y, parties, ops, ratio, 77)
		if len(ws) != parties {
			t.Fatalf("parties = %d", len(ws))
		}
		// Count entries identical across the first two parties.
		set := map[string]bool{}
		for _, e := range ws[0] {
			set[string(e.Key)+"\x00"+string(e.Value)] = true
		}
		shared := 0
		for _, e := range ws[1] {
			if set[string(e.Key)+"\x00"+string(e.Value)] {
				shared++
			}
		}
		want := int(float64(ops) * ratio)
		if shared < want-ops/20 {
			t.Fatalf("ratio %v: shared %d, want ≥ %d", ratio, shared, want)
		}
	}
}

// --- Wiki ---

func TestWikiKeyShape(t *testing.T) {
	w := NewWiki(WikiConfig{Pages: 5000, Seed: 5})
	total, max := 0, 0
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		k := string(w.Key(i))
		if len(k) < 31 || len(k) > 298 {
			t.Fatalf("key length %d outside [31,298]: %q", len(k), k)
		}
		if seen[k] {
			t.Fatalf("duplicate wiki key %q", k)
		}
		seen[k] = true
		total += len(k)
		if len(k) > max {
			max = len(k)
		}
	}
	avg := total / 5000
	if avg < 38 || avg > 70 {
		t.Fatalf("average key length %d, want ≈50", avg)
	}
	if max < 80 {
		t.Fatalf("max key length %d; long-tail titles missing", max)
	}
}

func TestWikiValueShape(t *testing.T) {
	w := NewWiki(WikiConfig{Pages: 100, Seed: 5})
	total := 0
	const n = 3000
	for i := 0; i < n; i++ {
		v := w.Value(i%100, i/100)
		if len(v) < 1 || len(v) > 1036 {
			t.Fatalf("value length %d outside [1,1036]", len(v))
		}
		total += len(v)
	}
	avg := total / n
	if avg < 60 || avg > 140 {
		t.Fatalf("average value length %d, want ≈96", avg)
	}
}

func TestWikiVersionUpdates(t *testing.T) {
	cfg := WikiConfig{Pages: 1000, Versions: 10, UpdatesPerVersion: 50, Seed: 5}
	w := NewWiki(cfg)
	u1 := w.VersionUpdates(1)
	u2 := w.VersionUpdates(2)
	if len(u1) != 50 || len(u2) != 50 {
		t.Fatalf("update sizes %d, %d", len(u1), len(u2))
	}
	if bytes.Equal(u1[0].Key, u2[0].Key) && bytes.Equal(u1[0].Value, u2[0].Value) {
		t.Fatal("distinct versions produced identical first updates")
	}
	// Deterministic.
	again := w.VersionUpdates(1)
	if !bytes.Equal(u1[0].Key, again[0].Key) {
		t.Fatal("VersionUpdates not deterministic")
	}
}

// --- Ethereum ---

func TestEthereumBlockShape(t *testing.T) {
	e := NewEthereum(EthConfig{Blocks: 10, TxPerBlock: 100, Seed: 11})
	total, count := 0, 0
	for n := 0; n < 10; n++ {
		b := e.BlockAt(n)
		if b.Number != uint64(8_900_000+n) {
			t.Fatalf("block number %d", b.Number)
		}
		if len(b.Txs) < 50 || len(b.Txs) > 150 {
			t.Fatalf("block %d has %d txs", n, len(b.Txs))
		}
		for _, tx := range b.Txs {
			if len(tx.Key) != 64 {
				t.Fatalf("tx key length %d, want 64", len(tx.Key))
			}
			if len(tx.Value) < 100 {
				t.Fatalf("tx of %d bytes, below the 100-byte minimum", len(tx.Value))
			}
			total += len(tx.Value)
			count++
		}
	}
	avg := total / count
	if avg < 250 || avg > 1000 {
		t.Fatalf("average tx size %d, want ≈532", avg)
	}
}

func TestEthereumTxsAreValidRLP(t *testing.T) {
	e := NewEthereum(DefaultEth())
	b := e.BlockAt(0)
	for _, tx := range b.Txs[:10] {
		v, err := rlp.Decode(tx.Value)
		if err != nil {
			t.Fatalf("tx does not decode: %v", err)
		}
		if v.Kind() != rlp.KindList || len(v.Items()) != 9 {
			t.Fatalf("tx shape: kind=%v items=%d", v.Kind(), len(v.Items()))
		}
		nonce, err := v.Items()[0].AsUint()
		if err != nil {
			t.Fatalf("nonce: %v", err)
		}
		_ = nonce
	}
}

func TestEthereumDeterministic(t *testing.T) {
	e := NewEthereum(DefaultEth())
	a, b := e.BlockAt(5), e.BlockAt(5)
	if len(a.Txs) != len(b.Txs) || !bytes.Equal(a.Txs[0].Value, b.Txs[0].Value) {
		t.Fatal("BlockAt not deterministic")
	}
}

func TestKeysUniqueWithinBlockProperty(t *testing.T) {
	e := NewEthereum(DefaultEth())
	f := func(n uint8) bool {
		b := e.BlockAt(int(n))
		seen := map[string]bool{}
		for _, tx := range b.Txs {
			if seen[string(tx.Key)] {
				return false
			}
			seen[string(tx.Key)] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBConfigString(t *testing.T) {
	s := DefaultYCSB().String()
	if s != fmt.Sprintf("ycsb(n=%d θ=0.0 w=0.0)", 10000) {
		t.Fatalf("String = %q", s)
	}
}

func TestYCSBScanOps(t *testing.T) {
	y := NewYCSB(YCSBConfig{Records: 1000, WriteRatio: 0.5, Seed: 9})
	const n, scanRatio, maxLen = 4000, 0.4, 50
	ops := y.ScanOps(n, scanRatio, maxLen)
	if len(ops) != n {
		t.Fatalf("ScanOps returned %d ops, want %d", len(ops), n)
	}
	scans, writes := 0, 0
	for i, op := range ops {
		switch {
		case op.Scan:
			scans++
			if op.Write {
				t.Fatalf("op %d is both scan and write", i)
			}
			if op.ScanLen < 1 || op.ScanLen > maxLen {
				t.Fatalf("op %d scan length %d outside [1, %d]", i, op.ScanLen, maxLen)
			}
			if len(op.Entry.Key) == 0 {
				t.Fatalf("op %d scan has no start key", i)
			}
		case op.Write:
			writes++
			if op.Entry.Value == nil {
				t.Fatalf("write op %d has no value", i)
			}
		}
	}
	if got := float64(scans) / n; got < scanRatio-0.05 || got > scanRatio+0.05 {
		t.Fatalf("scan fraction = %.3f, want ≈ %.2f", got, scanRatio)
	}
	// Writes split the non-scan remainder per WriteRatio.
	if got := float64(writes) / float64(n-scans); got < 0.45 || got > 0.55 {
		t.Fatalf("write fraction of point ops = %.3f, want ≈ 0.5", got)
	}
	// Determinism: the same config generates the same stream.
	again := NewYCSB(YCSBConfig{Records: 1000, WriteRatio: 0.5, Seed: 9}).ScanOps(n, scanRatio, maxLen)
	for i := range ops {
		if ops[i].Scan != again[i].Scan || ops[i].ScanLen != again[i].ScanLen ||
			string(ops[i].Entry.Key) != string(again[i].Entry.Key) {
			t.Fatalf("ScanOps not deterministic at op %d", i)
		}
	}
}
