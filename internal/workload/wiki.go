package workload

import (
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// WikiConfig parameterizes the Wikipedia-shaped dataset of §5.1.2: keys are
// page URLs (31–298 bytes, average ≈50), values are plain-text abstracts
// (1–1036 bytes, average ≈96), and the corpus evolves over a sequence of
// versions, each updating a slice of pages.
type WikiConfig struct {
	// Pages is the number of distinct pages.
	Pages int
	// Versions is the number of dataset versions (the paper divides three
	// months of dumps into 300).
	Versions int
	// UpdatesPerVersion is how many pages change per version.
	UpdatesPerVersion int
	// Seed makes the corpus reproducible.
	Seed int64
}

// DefaultWiki returns a laptop-scaled version of the paper's setup.
func DefaultWiki() WikiConfig {
	return WikiConfig{Pages: 20000, Versions: 300, UpdatesPerVersion: 200, Seed: 7}
}

// Wiki generates the corpus.
type Wiki struct {
	cfg WikiConfig
}

// NewWiki returns a generator for cfg.
func NewWiki(cfg WikiConfig) *Wiki { return &Wiki{cfg: cfg} }

const wikiPrefix = "https://en.wikipedia.org/wiki/"

// syllables compose pronounceable pseudo-titles.
var syllables = []string{
	"an", "ber", "cor", "dal", "eth", "fin", "gor", "hal", "ing", "jor",
	"kan", "lor", "mer", "nor", "oth", "pra", "qui", "ran", "sol", "tur",
	"umb", "ver", "wal", "xen", "yor", "zan",
}

var abstractWords = []string{
	"the", "of", "and", "a", "in", "is", "was", "to", "for", "with",
	"city", "river", "species", "album", "football", "village", "politician",
	"historic", "province", "genus", "battle", "railway", "novel", "church",
	"district", "mountain", "university", "company", "island", "dynasty",
}

// Key returns the URL key of page i. Title lengths are drawn so keys span
// 31–298 bytes with an average near 50. Key generation uses a splitmix64
// stream: it sits on the hot path of the throughput experiments.
func (w *Wiki) Key(i int) []byte {
	st := splitmix64(uint64(i) ^ uint64(w.cfg.Seed)*0x9E3779B97F4A7C15)
	next := func() uint64 { st = splitmix64(st); return st }
	var sb strings.Builder
	sb.WriteString(wikiPrefix)
	// Title: mostly short (2–5 syllables), occasionally very long, always
	// suffixed with the page id for uniqueness.
	n := 2 + int(next()%4)
	if next()%50 == 0 { // rare long titles stretch toward 298 bytes
		n = 20 + int(next()%60)
	}
	for j := 0; j < n; j++ {
		if j > 0 && next()%10 < 3 {
			sb.WriteByte('_')
		}
		sb.WriteString(syllables[next()%uint64(len(syllables))])
	}
	sb.WriteByte('_')
	sb.WriteString(strings.ToUpper(strings.TrimLeft(string(rune('A'+i%26)), "")))
	sb.WriteString(intToTitle(i))
	return []byte(sb.String())
}

// intToTitle renders i in a compact alphabetic form.
func intToTitle(i int) string {
	if i == 0 {
		return "A"
	}
	var sb []byte
	for i > 0 {
		sb = append(sb, byte('A'+i%26))
		i /= 26
	}
	return string(sb)
}

// Value returns the abstract of page i at version v. Lengths are drawn from
// a skewed (exponential) distribution over 1–1036 bytes averaging ≈96.
func (w *Wiki) Value(i, v int) []byte {
	st := splitmix64(uint64(i)*31 + uint64(v)*0x9E3779B97F4A7C15 ^ uint64(w.cfg.Seed))
	next := func() uint64 { st = splitmix64(st); return st }
	u := (float64(next()>>11) + 0.5) / (1 << 53)
	n := 1 + int(-math.Log(u)*90)
	if n > 1036 {
		n = 1036
	}
	var sb strings.Builder
	for sb.Len() < n {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(abstractWords[next()%uint64(len(abstractWords))])
	}
	out := sb.String()
	if len(out) > n {
		out = out[:n]
	}
	return []byte(out)
}

// Dataset returns version 0 of the corpus.
func (w *Wiki) Dataset() []core.Entry {
	out := make([]core.Entry, w.cfg.Pages)
	for i := range out {
		out[i] = core.Entry{Key: w.Key(i), Value: w.Value(i, 0)}
	}
	return out
}

// VersionUpdates returns the page updates that produce version v (v ≥ 1)
// from version v−1.
func (w *Wiki) VersionUpdates(v int) []core.Entry {
	rng := rand.New(rand.NewSource(w.cfg.Seed + int64(v)*104729))
	out := make([]core.Entry, w.cfg.UpdatesPerVersion)
	for j := range out {
		page := rng.Intn(w.cfg.Pages)
		out[j] = core.Entry{Key: w.Key(page), Value: w.Value(page, v)}
	}
	return out
}

// Config returns the generator's configuration.
func (w *Wiki) Config() WikiConfig { return w.cfg }
