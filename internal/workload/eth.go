package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"

	"repro/internal/core"
	"repro/internal/rlp"
)

// EthConfig parameterizes the Ethereum-shaped workload of §5.1.3: blocks of
// RLP-encoded transactions keyed by the 64-byte hex transaction hash, one
// index per block, versions at block granularity.
type EthConfig struct {
	// Blocks is the number of blocks to generate.
	Blocks int
	// TxPerBlock is the average number of transactions per block
	// (mainnet blocks in the paper's range carry ~100–200).
	TxPerBlock int
	// Seed makes the chain reproducible.
	Seed int64
}

// DefaultEth returns a laptop-scaled version of the paper's block range.
func DefaultEth() EthConfig { return EthConfig{Blocks: 300, TxPerBlock: 150, Seed: 11} }

// Ethereum generates synthetic blocks.
type Ethereum struct {
	cfg EthConfig
}

// NewEthereum returns a generator for cfg.
func NewEthereum(cfg EthConfig) *Ethereum { return &Ethereum{cfg: cfg} }

// Block is one block's worth of transactions: the per-block version unit.
type Block struct {
	Number uint64
	Txs    []core.Entry
}

// transaction synthesizes one RLP-encoded transaction. The paper reports
// raw transactions of 100–57738 bytes with an average of 532; we match the
// shape with a majority of small value transfers and a long tail of
// contract calls with large calldata (capped at 8KB to stay laptop-sized —
// see DESIGN.md §4).
func (e *Ethereum) transaction(rng *rand.Rand, nonce uint64) []byte {
	to := make([]byte, 20)
	rng.Read(to)
	var data []byte
	switch {
	case rng.Float64() < 0.55: // plain transfer: no calldata
	case rng.Float64() < 0.8: // token transfer-ish: ~68–260 bytes
		data = make([]byte, 68+rng.Intn(192))
		rng.Read(data)
	default: // contract interaction: exponential tail
		n := 256 + int(rng.ExpFloat64()*1200)
		if n > 8192 {
			n = 8192
		}
		data = make([]byte, n)
		rng.Read(data)
	}
	sig := make([]byte, 64)
	rng.Read(sig)
	tx := rlp.List(
		rlp.Uint(nonce),
		rlp.Uint(1_000_000_000+uint64(rng.Intn(100_000_000_000))), // gas price
		rlp.Uint(21000+uint64(rng.Intn(2_000_000))),               // gas limit
		rlp.Bytes(to),
		rlp.Uint(uint64(rng.Int63())), // value in wei
		rlp.Bytes(data),
		rlp.Uint(uint64(27+rng.Intn(2))), // v
		rlp.Bytes(sig[:32]),              // r
		rlp.Bytes(sig[32:]),              // s
	)
	return rlp.Encode(tx)
}

// BlockAt generates block n. Keys are the 64-character hex encodings of the
// transaction hashes, matching the paper's 64-byte keys.
func (e *Ethereum) BlockAt(n int) Block {
	rng := rand.New(rand.NewSource(e.cfg.Seed + int64(n)*6700417))
	count := e.cfg.TxPerBlock/2 + rng.Intn(e.cfg.TxPerBlock) // avg ≈ TxPerBlock
	b := Block{Number: uint64(8_900_000 + n)}
	for i := 0; i < count; i++ {
		raw := e.transaction(rng, uint64(i))
		sum := sha256.Sum256(raw)
		key := make([]byte, 64)
		hex.Encode(key, sum[:])
		b.Txs = append(b.Txs, core.Entry{Key: key, Value: raw})
	}
	return b
}

// Config returns the generator's configuration.
func (e *Ethereum) Config() EthConfig { return e.cfg }
