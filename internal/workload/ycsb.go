package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/core"
)

// YCSBConfig parameterizes the synthetic key-value workload of §5.1.1:
// keys of 5–15 bytes, values averaging 256 bytes, record counts from 10⁴ to
// 2.56·10⁶, and read/write/mixed operation mixes under Zipfian skew.
type YCSBConfig struct {
	// Records is the number of initially loaded records.
	Records int
	// Theta is the Zipfian parameter (0 = uniform; the paper uses 0, 0.5
	// and 0.9).
	Theta float64
	// WriteRatio is the fraction of write operations in a workload
	// (0, 0.5 or 1 in the paper).
	WriteRatio float64
	// Seed makes the workload reproducible.
	Seed int64
}

// DefaultYCSB matches the paper's default scale knobs.
func DefaultYCSB() YCSBConfig {
	return YCSBConfig{Records: 10000, Theta: 0, WriteRatio: 0, Seed: 1}
}

// YCSB generates datasets and operation streams.
type YCSB struct {
	cfg YCSBConfig
}

// NewYCSB returns a generator for cfg.
func NewYCSB(cfg YCSBConfig) *YCSB { return &YCSB{cfg: cfg} }

// splitmix64 scrambles ids into stable pseudo-random words.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Key renders record id i as a unique key of 5–15 bytes: a base-36 id
// (lowercase) padded with uppercase letters, so the id/padding boundary is
// unambiguous and distinct ids can never render to the same key.
func (y *YCSB) Key(i int) []byte {
	s := "u" + strconv.FormatUint(uint64(i), 36)
	target := 5 + int(splitmix64(uint64(i)+uint64(y.cfg.Seed))%11)
	for len(s) < target {
		s += string(rune('A' + splitmix64(uint64(i)*31+uint64(len(s)))%26))
	}
	return []byte(s)
}

// Value produces a pseudo-random value for record i at write version v.
// Lengths are uniform in [128, 384] (mean 256, the paper's average). The
// filler is a splitmix64 stream rather than math/rand: value generation sits
// on the hot path of every experiment, and seeding a rand.Rand per value
// would dominate the measurements.
func (y *YCSB) Value(i int, version int) []byte {
	st := splitmix64(uint64(i)*2654435761 ^ uint64(version)*0x9E3779B97F4A7C15 ^ uint64(y.cfg.Seed))
	n := 128 + int(st%257)
	out := make([]byte, n)
	x := st
	for j := 0; j < n; j += 8 {
		x = splitmix64(x)
		for k := 0; k < 8 && j+k < n; k++ {
			out[j+k] = byte(x >> (8 * k))
		}
	}
	return out
}

// Dataset returns the initial Records entries.
func (y *YCSB) Dataset() []core.Entry {
	out := make([]core.Entry, y.cfg.Records)
	for i := range out {
		out[i] = core.Entry{Key: y.Key(i), Value: y.Value(i, 0)}
	}
	return out
}

// Op is one workload operation: a read (the default), a write (Write set),
// or an ordered range scan (Scan set — YCSB workload E's op type). A scan
// starts at Entry.Key and visits up to ScanLen entries in ascending key
// order.
type Op struct {
	Write bool
	Scan  bool
	// ScanLen is the maximum entries a scan visits (YCSB-E scan length).
	ScanLen int
	Entry   core.Entry
}

// Ops returns an n-operation stream over the dataset's key space with the
// configured write ratio and skew. Written values embed the op index, so
// writes genuinely change records.
func (y *YCSB) Ops(n int) []Op {
	z := NewZipfian(uint64(y.cfg.Records), y.cfg.Theta, y.cfg.Seed+1000)
	rng := rand.New(rand.NewSource(y.cfg.Seed + 2000))
	out := make([]Op, n)
	for i := range out {
		id := int(z.Next())
		write := rng.Float64() < y.cfg.WriteRatio
		op := Op{Write: write, Entry: core.Entry{Key: y.Key(id)}}
		if write {
			op.Entry.Value = y.Value(id, i+1)
		}
		out[i] = op
	}
	return out
}

// ScanOps returns an n-operation YCSB-E-style stream: a scanRatio fraction
// of operations are range scans whose start key is a Zipfian-chosen record
// and whose length is uniform in [1, maxScanLen] (YCSB-E draws scan
// lengths uniformly); the remainder are reads and writes in the configured
// WriteRatio mix. Scan starts follow the same skew as point operations, so
// hot ranges exist under θ > 0 exactly like hot keys do.
func (y *YCSB) ScanOps(n int, scanRatio float64, maxScanLen int) []Op {
	if maxScanLen < 1 {
		maxScanLen = 1
	}
	z := NewZipfian(uint64(y.cfg.Records), y.cfg.Theta, y.cfg.Seed+3000)
	rng := rand.New(rand.NewSource(y.cfg.Seed + 4000))
	out := make([]Op, n)
	for i := range out {
		id := int(z.Next())
		if rng.Float64() < scanRatio {
			out[i] = Op{
				Scan:    true,
				ScanLen: 1 + rng.Intn(maxScanLen),
				Entry:   core.Entry{Key: y.Key(id)},
			}
			continue
		}
		op := Op{Write: rng.Float64() < y.cfg.WriteRatio, Entry: core.Entry{Key: y.Key(id)}}
		if op.Write {
			op.Entry.Value = y.Value(id, i+1)
		}
		out[i] = op
	}
	return out
}

// OverlapWorkload produces the diverse-group collaboration inputs of §5.4.2:
// parties all start from the same base dataset and then each executes ops
// operations, of which ratio·ops are drawn from a shared pool (same key and
// value across parties) and the rest are party-private.
func OverlapWorkload(y *YCSB, parties, ops int, ratio float64, seed int64) [][]core.Entry {
	shared := int(float64(ops) * ratio)
	sharedPool := make([]core.Entry, shared)
	z := NewZipfian(uint64(y.cfg.Records), y.cfg.Theta, seed)
	for i := range sharedPool {
		id := int(z.Next())
		sharedPool[i] = core.Entry{Key: y.Key(id), Value: y.Value(id, 1_000_000+i)}
	}
	out := make([][]core.Entry, parties)
	for p := 0; p < parties; p++ {
		w := make([]core.Entry, 0, ops)
		w = append(w, sharedPool...)
		zp := NewZipfian(uint64(y.cfg.Records), y.cfg.Theta, seed+int64(p)*7919+1)
		for i := shared; i < ops; i++ {
			id := int(zp.Next())
			// Private writes use party-salted values so they never
			// collide across parties.
			e := core.Entry{
				Key:   y.Key(id),
				Value: y.Value(id, 2_000_000+p*ops+i),
			}
			w = append(w, e)
		}
		// Each party interleaves shared and private work in its own
		// order. Structurally invariant indexes still converge to
		// identical pages for the shared content; history-dependent
		// structures (the baseline) do not — the contrast §5.4.2
		// measures.
		rng := rand.New(rand.NewSource(seed + int64(p)*104729 + 13))
		rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
		out[p] = w
	}
	return out
}

// String renders the config for experiment labels.
func (c YCSBConfig) String() string {
	return fmt.Sprintf("ycsb(n=%d θ=%.1f w=%.1f)", c.Records, c.Theta, c.WriteRatio)
}
