// Package workload generates the three datasets of the paper's evaluation
// (§5.1): a YCSB-style synthetic key-value workload with Zipfian skew, a
// Wikipedia-dump-shaped versioned corpus, and Ethereum-shaped blocks of
// RLP-encoded transactions. The real datasets are not redistributable, so
// the generators match their reported key/value length distributions and
// versioning patterns instead (see DESIGN.md §4 for the substitution
// rationale).
//
// # Generators
//
//   - YCSB produces the synthetic grid workloads of Figures 6, 10 and 14:
//     a fixed record population, operation streams mixing reads and writes
//     at a configurable ratio and skew, and (ScanOps) YCSB-E-style mixes of
//     bounded ordered scans for the range-scan extension.
//   - Wiki produces page histories: an initial revision per page plus
//     versioned updates, the update pattern behind Figures 7a, 11 and 15.
//   - Eth produces blocks of RLP-encoded transactions keyed like Ethereum
//     state, for Figures 7b, 12 and 16.
//   - Zipfian is the shared skew source (Gray et al.'s rejection-free
//     method), exposed because several experiments — including the
//     retention experiment's update stream — draw hot keys directly.
//
// Every generator is deterministic under a caller-supplied seed, which the
// bench harness and conformance suites rely on for reproducible figures
// and golden root hashes.
package workload
