package workload

import (
	"math"
	"math/rand"
)

// Zipfian draws item ranks 0..n−1 with the Zipfian distribution used by
// YCSB (Gray et al.'s rejection-free method). θ = 0 degenerates to uniform;
// larger θ concentrates probability on low ranks.
type Zipfian struct {
	rng   *rand.Rand
	items uint64
	theta float64

	alpha, zetan, eta, zeta2 float64
}

// NewZipfian returns a generator over n items with skew theta (0 ≤ θ < 1).
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	if n == 0 {
		panic("workload: zipfian over zero items")
	}
	z := &Zipfian{rng: rand.New(rand.NewSource(seed)), items: n, theta: theta}
	if theta == 0 {
		return z
	}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number Σ 1/i^θ for i in 1..n.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank in [0, n).
func (z *Zipfian) Next() uint64 {
	if z.theta == 0 {
		return uint64(z.rng.Int63n(int64(z.items)))
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
