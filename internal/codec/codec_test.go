package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(300)
	w.Uvarint(math.MaxUint64)
	w.LenBytes([]byte("payload"))
	w.LenBytes(nil)
	h := bytes.Repeat([]byte{0xab}, 32)
	w.Bytes32(h)

	r := NewReader(w.Bytes())
	if b, err := r.Byte(); err != nil || b != 7 {
		t.Fatalf("Byte = %v, %v", b, err)
	}
	for _, want := range []uint64{0, 300, math.MaxUint64} {
		got, err := r.Uvarint()
		if err != nil || got != want {
			t.Fatalf("Uvarint = %v, %v; want %v", got, err, want)
		}
	}
	if b, err := r.LenBytes(); err != nil || string(b) != "payload" {
		t.Fatalf("LenBytes = %q, %v", b, err)
	}
	if b, err := r.LenBytes(); err != nil || len(b) != 0 {
		t.Fatalf("empty LenBytes = %q, %v", b, err)
	}
	if b, err := r.Bytes32(); err != nil || !bytes.Equal(b, h) {
		t.Fatalf("Bytes32 = %x, %v", b, err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done = %v", err)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Byte(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Byte on empty = %v", err)
	}
	if _, err := r.Uvarint(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Uvarint on empty = %v", err)
	}
	if _, err := r.Bytes32(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Bytes32 on empty = %v", err)
	}
}

func TestLenBytesLengthLies(t *testing.T) {
	// A declared length longer than the remaining buffer must error, not
	// panic or over-read.
	w := NewWriter(8)
	w.Uvarint(1000)
	w.Raw([]byte("short"))
	r := NewReader(w.Bytes())
	if _, err := r.LenBytes(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("LenBytes with lying length = %v", err)
	}
}

func TestDoneDetectsTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.Byte(); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Done with trailing = %v", err)
	}
}

func TestBytes32PanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWriter(0).Bytes32([]byte{1})
}

func TestLenBytesCopyDoesNotAlias(t *testing.T) {
	w := NewWriter(16)
	w.LenBytes([]byte("alias"))
	buf := w.Bytes()
	r := NewReader(buf)
	got, err := r.LenBytesCopy()
	if err != nil {
		t.Fatal(err)
	}
	buf[1] = 'X' // mutate underlying buffer (first payload byte)
	if string(got) != "alias" {
		t.Fatalf("LenBytesCopy aliases the buffer: %q", got)
	}
}

func TestRawNegativeLength(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.Raw(-1); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Raw(-1) = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any sequence of (uvarint, len-bytes) pairs must round-trip exactly.
	f := func(nums []uint64, blobs [][]byte) bool {
		w := NewWriter(64)
		for _, n := range nums {
			w.Uvarint(n)
		}
		w.Uvarint(uint64(len(blobs)))
		for _, b := range blobs {
			w.LenBytes(b)
		}
		r := NewReader(w.Bytes())
		for _, n := range nums {
			got, err := r.Uvarint()
			if err != nil || got != n {
				return false
			}
		}
		cnt, err := r.Uvarint()
		if err != nil || cnt != uint64(len(blobs)) {
			return false
		}
		for _, b := range blobs {
			got, err := r.LenBytes()
			if err != nil || !bytes.Equal(got, b) {
				return false
			}
		}
		return r.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
