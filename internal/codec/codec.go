// Package codec implements the length-prefixed binary encoding shared by all
// node serializations in this repository. Every Merkle node is encoded to a
// canonical byte string before hashing, so encodings must be deterministic:
// the same logical node always produces the same bytes, and therefore the
// same digest.
//
// The format is deliberately simple — unsigned varints for lengths and
// counts, raw bytes for payloads — so that decoding is allocation-light and
// the canonical property is easy to audit.
//
// # Zero-copy aliasing contract
//
// Reader never copies: Raw, Bytes32 and LenBytes return subslices of the
// buffer handed to NewReader. Decoders built on them (every index package's
// node decoders) therefore produce values whose byte fields alias the node
// encoding. This is safe under two rules, which every caller in this
// repository observes:
//
//  1. Decoded fields are read-only. Mutating one would corrupt the encoding
//     it aliases — and with it the content address of the node.
//  2. The encoding must outlive the decoded value. Store backends guarantee
//     this for fetched nodes (stored bytes are immutable for the life of the
//     store — see store.Store.Get), and core.StagedWriter guarantees it for
//     staged-but-unflushed nodes (staged buffers are retained, never reused,
//     until after Flush hands them to the store).
//
// Decoders that retain bytes past either guarantee use LenBytesCopy instead.
//
// Writers are pooled: hot encode paths borrow one with GetWriter, encode,
// hand the bytes to a copying consumer (the store and the staged writer both
// copy on insert), and Release it — so steady-state node encoding performs
// no buffer allocation at all.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Common decoding errors.
var (
	ErrShortBuffer = errors.New("codec: buffer too short")
	ErrOverflow    = errors.New("codec: varint overflows uint64")
	ErrTrailing    = errors.New("codec: trailing bytes after decode")
)

// Writer accumulates a canonical encoding. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for an encoding of
// roughly n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// writerPool recycles Writers (and, more importantly, their grown backing
// buffers) across encode calls. Node encoding is the second-hottest
// operation in the repository after hashing; without pooling every encoded
// node pays a buffer allocation plus its growth reallocations.
var writerPool = sync.Pool{
	New: func() any { return NewWriter(1024) },
}

// GetWriter returns an empty pooled Writer. The caller must not retain
// w.Bytes() past the matching Release: hand the bytes to a consumer that
// copies (store.Store.Put, core.StagedWriter, hash.Of) before releasing.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// Release returns a Writer obtained from GetWriter to the pool. The
// writer's buffer is retained for reuse, so any slice still aliasing it
// becomes invalid.
func (w *Writer) Release() {
	writerPool.Put(w)
}

// Bytes returns the accumulated encoding. The returned slice aliases the
// writer's buffer; callers that retain it must not keep writing.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Byte appends a single raw byte (used for node-kind tags).
func (w *Writer) Byte(b byte) {
	w.buf = append(w.buf, b)
}

// Raw appends bytes with no length prefix. Use only for fixed-size fields
// such as 32-byte hashes, where the length is implied by the schema.
func (w *Writer) Raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// Bytes32 appends exactly 32 bytes; it panics if b has a different length,
// because that would corrupt the canonical schema.
func (w *Writer) Bytes32(b []byte) {
	if len(b) != 32 {
		panic(fmt.Sprintf("codec: Bytes32 with %d bytes", len(b)))
	}
	w.buf = append(w.buf, b...)
}

// LenBytes appends a varint length followed by the bytes.
func (w *Writer) LenBytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.Raw(b)
}

// Reader decodes a canonical encoding produced by Writer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps buf for decoding. The reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns nil when the buffer has been fully consumed, and ErrTrailing
// otherwise. Decoders call it last to reject malformed encodings.
func (r *Reader) Done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v, nil
	case n == 0:
		return 0, ErrShortBuffer
	default:
		return 0, ErrOverflow
	}
}

// Byte decodes a single raw byte.
func (r *Reader) Byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrShortBuffer
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Raw returns the next n bytes without copying. The slice aliases the
// underlying buffer.
func (r *Reader) Raw(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, ErrShortBuffer
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Bytes32 returns the next 32 bytes.
func (r *Reader) Bytes32() ([]byte, error) {
	return r.Raw(32)
}

// LenBytes decodes a varint length followed by that many bytes. The returned
// slice aliases the underlying buffer; callers that mutate or retain it past
// the buffer's lifetime must copy.
func (r *Reader) LenBytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, ErrShortBuffer
	}
	return r.Raw(int(n))
}

// LenBytesCopy is LenBytes but returns a fresh copy, for decoders that
// retain the value beyond the encoding's lifetime.
func (r *Reader) LenBytesCopy() ([]byte, error) {
	b, err := r.LenBytes()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}
