package codec

import (
	"bytes"
	"testing"
)

// FuzzWriterReaderRoundTrip encodes a schema of fuzzed fields and decodes
// it back; every field must survive and the reader must end exactly at the
// buffer boundary.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte(nil), []byte("payload"), byte(1))
	f.Add(uint64(1<<63), []byte("a"), []byte{}, byte(0xff))
	f.Add(uint64(300), bytes.Repeat([]byte("n"), 100), []byte("x"), byte(7))

	f.Fuzz(func(t *testing.T, u uint64, a, b []byte, tag byte) {
		var h32 [32]byte
		copy(h32[:], a)

		w := NewWriter(64)
		w.Byte(tag)
		w.Uvarint(u)
		w.LenBytes(a)
		w.Bytes32(h32[:])
		w.LenBytes(b)

		r := NewReader(w.Bytes())
		gotTag, err := r.Byte()
		if err != nil || gotTag != tag {
			t.Fatalf("Byte = %v, %v", gotTag, err)
		}
		gotU, err := r.Uvarint()
		if err != nil || gotU != u {
			t.Fatalf("Uvarint = %d, %v (want %d)", gotU, err, u)
		}
		gotA, err := r.LenBytes()
		if err != nil || !bytes.Equal(gotA, a) {
			t.Fatalf("LenBytes(a) = %x, %v", gotA, err)
		}
		got32, err := r.Bytes32()
		if err != nil || !bytes.Equal(got32, h32[:]) {
			t.Fatalf("Bytes32 = %x, %v", got32, err)
		}
		gotB, err := r.LenBytesCopy()
		if err != nil || !bytes.Equal(gotB, b) {
			t.Fatalf("LenBytesCopy(b) = %x, %v", gotB, err)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("Done after full read: %v", err)
		}
	})
}

// FuzzReaderMalformed drives the reader over arbitrary bytes: decode
// attempts may fail but must never panic, over-read, or return lengths
// beyond the buffer.
func FuzzReaderMalformed(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // overflowing varint
	f.Add([]byte{0x05, 0x01, 0x02})                                                 // length prefix beyond buffer
	f.Add(bytes.Repeat([]byte{0x80}, 12))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for r.Remaining() > 0 {
			before := r.Remaining()
			if b, err := r.LenBytes(); err == nil {
				if len(b) > len(data) {
					t.Fatalf("LenBytes returned %d bytes from a %d-byte buffer", len(b), len(data))
				}
			} else if _, err := r.Byte(); err != nil {
				break
			}
			if r.Remaining() >= before {
				break // no forward progress possible
			}
		}
		if r.Remaining() < 0 {
			t.Fatal("reader over-consumed the buffer")
		}
		_ = r.Done()
	})
}
