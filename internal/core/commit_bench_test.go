package core_test

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/store"
)

// commitBatchSize is the benchmark's batch: the acceptance size for the
// parallel commit pipeline (a 10k-entry batch, ~2.5× the paper's default
// write batch of 4000).
const commitBatchSize = 10000

// commitEntries builds the benchmark batch once per run.
func commitEntries() []core.Entry {
	entries := make([]core.Entry, commitBatchSize)
	for i := range entries {
		entries[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("user%08d", (i*2654435761)%commitBatchSize)),
			Value: []byte(fmt.Sprintf("value-%08d-%08d", i, i)),
		}
	}
	return entries
}

// BenchmarkBatchCommit compares the serial staged writer (1 hash worker)
// against the parallel commit pipeline (8 workers) on a 10k-entry batch:
// once per index class end to end, and once at the writer level alone
// (encode+hash+flush of 10k ~1KB nodes through PutAll), which isolates the
// pipeline from index-specific overlay costs. CI runs both sides through
// benchstat; on a multi-core runner the parallel writer rows must stay well
// ahead of their serial counterparts. The equivalence tests in this package
// separately require the two modes to commit byte-identical roots.
func BenchmarkBatchCommit(b *testing.B) {
	entries := commitEntries()
	modes := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 8},
	}
	defer core.SetCommitWorkers(core.SetCommitWorkers(0))
	for _, mode := range modes {
		for _, class := range parallelClasses {
			b.Run(mode.name+"/"+class, func(b *testing.B) {
				core.SetCommitWorkers(mode.workers)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					idx, err := indexOverFull(class, store.NewShardedStore(0))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := idx.PutBatch(entries); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(commitBatchSize))
			})
		}
		b.Run(mode.name+"/writer", func(b *testing.B) {
			core.SetCommitWorkers(mode.workers)
			// Pre-build 10k distinct ~1KB node payloads; each iteration
			// encodes, hashes and flushes all of them through one writer.
			payloads := make([][]byte, commitBatchSize)
			for i := range payloads {
				p := make([]byte, 1024)
				copy(p, fmt.Sprintf("node-%08d", i))
				payloads[i] = p
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := store.NewShardedStore(0)
				w := core.NewStagedWriterWorkers(s, mode.workers)
				w.PutAll(len(payloads), func(j int, enc *codec.Writer) {
					enc.Raw(payloads[j])
				})
				if n := w.Flush(); n != len(payloads) {
					b.Fatalf("flushed %d nodes, want %d", n, len(payloads))
				}
				w.Release()
			}
			b.SetBytes(int64(commitBatchSize))
		})
	}
}
