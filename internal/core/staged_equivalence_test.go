package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/postree"
	"repro/internal/store"
)

// equivalenceBackends returns a factory per store backend, covering the
// full mem/sharded/disk/cached matrix the staged commit path flushes into.
func equivalenceBackends() []struct {
	name string
	new  func(t *testing.T) store.Store
} {
	open := func(t *testing.T, cfg store.Config) store.Store {
		t.Helper()
		s, err := store.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Release(s) })
		return s
	}
	return []struct {
		name string
		new  func(t *testing.T) store.Store
	}{
		{"mem", func(t *testing.T) store.Store {
			return open(t, store.Config{Backend: store.BackendMem})
		}},
		{"sharded", func(t *testing.T) store.Store {
			return open(t, store.Config{Backend: store.BackendSharded, Shards: 8})
		}},
		{"disk", func(t *testing.T) store.Store {
			return open(t, store.Config{Backend: store.BackendDisk, Dir: t.TempDir()})
		}},
		{"cached", func(t *testing.T) store.Store {
			return open(t, store.Config{Backend: store.BackendMem, CacheBytes: 1 << 20})
		}},
	}
}

// indexOver builds one index class over the given store.
func indexOver(name string, s store.Store) (core.Index, error) {
	switch name {
	case "MPT":
		return mpt.New(s), nil
	case "MBT":
		return mbt.New(s, mbt.Config{Capacity: 64, Fanout: 8})
	case "POS-Tree":
		return postree.New(s, postree.ConfigForNodeSize(512)), nil
	}
	return nil, fmt.Errorf("unknown index class %q", name)
}

// TestStagedCommitEquivalence drives two replicas of every index class over
// every store backend through the same randomized mixed sequence of batch
// puts, single puts and deletes. Replica A applies batches through the
// staged PutBatch commit path; replica B decomposes every batch into
// sequential single Puts. After every operation both must agree on the root
// hash — the committed root of a staged batch is required to be
// byte-identical to the sequential path's (the tentpole invariant of the
// commit-time hashing write path). Run under -race to also exercise the
// store backends' batch locking.
func TestStagedCommitEquivalence(t *testing.T) {
	ops := genOps(1337, 140)
	for _, backend := range equivalenceBackends() {
		t.Run(backend.name, func(t *testing.T) {
			for _, class := range []string{"MPT", "MBT", "POS-Tree"} {
				t.Run(class, func(t *testing.T) {
					batched, err := indexOver(class, backend.new(t))
					if err != nil {
						t.Fatal(err)
					}
					sequential, err := indexOver(class, backend.new(t))
					if err != nil {
						t.Fatal(err)
					}
					oracle := make(map[string]string)
					for i, op := range ops {
						if batched, err = applyOp(batched, op); err != nil {
							t.Fatalf("batched: op %d (%s): %v", i, op, err)
						}
						// The sequential replica never uses PutBatch:
						// batches decompose into single Puts in input
						// order (later writes win either way).
						switch {
						case op.del:
							sequential, err = sequential.Delete(op.key)
						case op.batch != nil:
							for _, e := range op.batch {
								if sequential, err = sequential.Put(e.Key, e.Value); err != nil {
									break
								}
							}
						default:
							sequential, err = sequential.Put(op.key, op.value)
						}
						if err != nil {
							t.Fatalf("sequential: op %d (%s): %v", i, op, err)
						}
						applyOracle(oracle, op)
						if batched.RootHash() != sequential.RootHash() {
							t.Fatalf("%s/%s: staged and sequential roots diverged after op %d (%s): %v vs %v",
								backend.name, class, i, op, batched.RootHash(), sequential.RootHash())
						}
					}
					checkAgainstOracle(t, class, batched, oracle)
				})
			}
		})
	}
}

// TestStagedCommitMixedBatchDeletes pins the interleaving the random
// generator only sometimes produces: a batch immediately followed by
// deletes of half its keys, repeated so re-inserts of deleted keys flow
// through the staged path too.
func TestStagedCommitMixedBatchDeletes(t *testing.T) {
	for _, class := range []string{"MPT", "MBT", "POS-Tree"} {
		t.Run(class, func(t *testing.T) {
			batched, err := indexOver(class, store.NewMemStore())
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := indexOver(class, store.NewMemStore())
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 4; round++ {
				batch := make([]core.Entry, 40)
				for i := range batch {
					batch[i] = core.Entry{
						Key:   []byte(fmt.Sprintf("k-%02d", (round*17+i)%60)),
						Value: []byte(fmt.Sprintf("r%d-v%d", round, i)),
					}
				}
				if batched, err = batched.PutBatch(batch); err != nil {
					t.Fatal(err)
				}
				for _, e := range batch {
					if sequential, err = sequential.Put(e.Key, e.Value); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < len(batch); i += 2 {
					if batched, err = batched.Delete(batch[i].Key); err != nil {
						t.Fatal(err)
					}
					if sequential, err = sequential.Delete(batch[i].Key); err != nil {
						t.Fatal(err)
					}
				}
				if batched.RootHash() != sequential.RootHash() {
					t.Fatalf("round %d: roots diverged: %v vs %v",
						round, batched.RootHash(), sequential.RootHash())
				}
			}
		})
	}
}
