package core

import (
	"sync"

	"repro/internal/hash"
)

// NodeCache is a small LRU of decoded nodes keyed by their content digest.
// Index instances share one per family (every version derived from the same
// New/Load call), so Get-heavy workloads stop re-decoding the hot upper
// levels of the tree on every lookup: the store still holds the canonical
// bytes, this holds the parsed form.
//
// Content addressing makes the cache trivially coherent — a digest can only
// ever map to one decoding — so there is no invalidation path. Cached
// values are shared between callers and MUST be treated as immutable;
// the index packages copy nodes before mutating them.
type NodeCache[T any] struct {
	mu      sync.Mutex
	max     int
	entries map[hash.Hash]*cacheNode[T]
	head    *cacheNode[T] // most recently used
	tail    *cacheNode[T] // least recently used
}

type cacheNode[T any] struct {
	h          hash.Hash
	v          T
	prev, next *cacheNode[T]
}

// DefaultNodeCacheEntries bounds the per-index decoded-node caches. At the
// paper's ~1KB node size this is a few MB of decoded state per index
// family — enough to keep every internal level of a multi-million entry
// tree resident.
const DefaultNodeCacheEntries = 4096

// NewNodeCache returns a cache bounded to max entries; max <= 0 selects
// DefaultNodeCacheEntries.
func NewNodeCache[T any](max int) *NodeCache[T] {
	if max <= 0 {
		max = DefaultNodeCacheEntries
	}
	return &NodeCache[T]{max: max, entries: make(map[hash.Hash]*cacheNode[T])}
}

// Get returns the decoded node cached under h, marking it most recently
// used.
func (c *NodeCache[T]) Get(h hash.Hash) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[h]
	if !ok {
		var zero T
		return zero, false
	}
	c.moveToFront(n)
	return n.v, true
}

// Add caches v under h, evicting the least recently used entry when full.
func (c *NodeCache[T]) Add(h hash.Hash, v T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[h]; ok {
		c.moveToFront(n)
		return
	}
	n := &cacheNode[T]{h: h, v: v}
	c.entries[h] = n
	c.pushFront(n)
	if len(c.entries) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.h)
	}
}

// Load returns the decoding of h, serving from cache when possible and
// otherwise fetching the raw bytes and decoding them, caching on success.
// It is the one place the cache-check → fetch → decode → cache-fill shape
// lives, shared by every index package; a nil receiver degrades to plain
// fetch+decode. The callbacks do not escape, so hot-path calls stay
// allocation-free.
func (c *NodeCache[T]) Load(h hash.Hash, fetch func() ([]byte, error), decode func([]byte) (T, error)) (T, error) {
	if c != nil {
		if v, ok := c.Get(h); ok {
			return v, nil
		}
	}
	var zero T
	data, err := fetch()
	if err != nil {
		return zero, err
	}
	v, err := decode(data)
	if err != nil {
		return zero, err
	}
	if c != nil {
		c.Add(h, v)
	}
	return v, nil
}

// CachePurger is implemented by every index family in this repository: it
// evicts decoded-node cache entries whose digests a GC pass reclaimed.
// version.Repo.OnGC hooks typically call it with the pass's liveness
// predicate, so long-lived serving processes drop dead decoded state (and
// the store buffers it aliases) as soon as the sweep finishes.
type CachePurger interface {
	// PurgeCache evicts cached decodings of nodes live reports dead,
	// returning how many entries were dropped.
	PurgeCache(live func(hash.Hash) bool) int
}

// EvictIf removes every cached node whose digest dead reports true and
// returns how many were dropped. It is the GC integration point: content
// addressing needs no invalidation during normal operation, but after a
// store sweep the decoded forms of reclaimed nodes are garbage, and
// evicting them eagerly (version.Repo.OnGC wires this up) tightens memory
// bounds for long-lived serving processes instead of waiting for LRU churn.
// A nil receiver reports zero evictions.
func (c *NodeCache[T]) EvictIf(dead func(hash.Hash) bool) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for h, node := range c.entries {
		if dead(h) {
			c.unlink(node)
			delete(c.entries, h)
			n++
		}
	}
	return n
}

// Len returns the number of cached nodes.
func (c *NodeCache[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *NodeCache[T]) pushFront(n *cacheNode[T]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *NodeCache[T]) unlink(n *cacheNode[T]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *NodeCache[T]) moveToFront(n *cacheNode[T]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
