package core

import (
	"bytes"
	"sort"
)

// Ranger is the ordered bounded-scan capability. Indexes that can serve a
// range query without visiting the whole structure implement it natively;
// RangeOf falls back to a filtered full scan for the rest.
//
// Range visits every entry with lo ≤ key < hi (the half-open interval
// [lo, hi)) in ascending key order, regardless of the index's Iterate
// order. A nil bound is unbounded on that side: Range(nil, nil, fn) is an
// ordered full scan. A non-nil empty hi, or lo ≥ hi, denotes an empty
// interval. Returning false from fn stops the scan early.
type Ranger interface {
	Range(lo, hi []byte, fn func(key, value []byte) bool) error
}

// EmptyRange reports whether the interval [lo, hi) can hold no key at all,
// so implementations can return before touching a single node. Shared by
// every Range implementation so the corner cases (nil vs empty bounds,
// inverted bounds) are decided in exactly one place.
func EmptyRange(lo, hi []byte) bool {
	if hi == nil {
		return false
	}
	// No key is < "" (keys are non-empty and "" precedes everything), and
	// an inverted or degenerate interval holds nothing.
	return len(hi) == 0 || (lo != nil && bytes.Compare(lo, hi) >= 0)
}

// InRange reports lo ≤ key < hi with nil bounds unbounded — the membership
// test matching the Ranger contract.
func InRange(key, lo, hi []byte) bool {
	return (lo == nil || bytes.Compare(key, lo) >= 0) &&
		(hi == nil || bytes.Compare(key, hi) < 0)
}

// RangeOf serves the ordered bounded scan [lo, hi) over any index:
// natively when idx implements Ranger, otherwise by filtering a full
// Iterate. The fallback buffers and sorts the survivors before emitting,
// because Iterate order is not key order for every index (MBT visits
// buckets in hash order), so callers always observe ascending keys.
func RangeOf(idx Index, lo, hi []byte, fn func(key, value []byte) bool) error {
	if r, ok := idx.(Ranger); ok {
		return r.Range(lo, hi, fn)
	}
	if EmptyRange(lo, hi) {
		return nil
	}
	var got []Entry
	err := idx.Iterate(func(k, v []byte) bool {
		if InRange(k, lo, hi) {
			got = append(got, Entry{Key: k, Value: v})
		}
		return true
	})
	if err != nil {
		return err
	}
	sort.Slice(got, func(i, j int) bool { return bytes.Compare(got[i].Key, got[j].Key) < 0 })
	for _, e := range got {
		if !fn(e.Key, e.Value) {
			return nil
		}
	}
	return nil
}

// RangeCount returns the number of entries in [lo, hi).
func RangeCount(idx Index, lo, hi []byte) (int, error) {
	n := 0
	err := RangeOf(idx, lo, hi, func(_, _ []byte) bool { n++; return true })
	return n, err
}
