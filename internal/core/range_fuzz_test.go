package core_test

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
)

// fuzzFixture holds one prebuilt index per class over a fixed entry set.
// Indexes are immutable, so all fuzz invocations can share them.
type fuzzFixture struct {
	indexes []core.Index
	sorted  []core.Entry // the oracle, ascending
}

var (
	fuzzOnce sync.Once
	fuzzFix  fuzzFixture
	fuzzErr  error
)

// fixtureEntries is the fixed key space the bounds are fuzzed against:
// clustered keys with shared prefixes plus a few outliers, so bounds can
// land inside clusters, between them, and past either end.
func fixtureEntries() []core.Entry {
	var out []core.Entry
	for i := 0; i < 48; i++ {
		out = append(out, core.Entry{
			Key:   []byte(fmt.Sprintf("fz/%02x", i*5%251)),
			Value: []byte(fmt.Sprintf("v%02d", i)),
		})
	}
	out = append(out,
		core.Entry{Key: []byte{0x01}, Value: []byte("low")},
		core.Entry{Key: []byte{0xFE, 0xFF}, Value: []byte("high")},
		core.Entry{Key: []byte("fz/"), Value: []byte("prefix-itself")},
	)
	return out
}

func buildFuzzFixture() {
	entries := fixtureEntries()
	sorted := core.SortEntries(entries)
	builders := []func() (core.Index, error){
		func() (core.Index, error) { return mpt.New(store.NewMemStore()), nil },
		func() (core.Index, error) { return mbt.New(store.NewMemStore(), mbt.Config{Capacity: 32, Fanout: 4}) },
		func() (core.Index, error) {
			return postree.New(store.NewMemStore(), postree.ConfigForNodeSize(256)), nil
		},
		func() (core.Index, error) { return mvmbt.New(store.NewMemStore(), mvmbt.ConfigForNodeSize(256)), nil },
		func() (core.Index, error) { return prolly.New(store.NewMemStore(), prolly.ConfigForNodeSize(256)), nil },
	}
	for _, b := range builders {
		idx, err := b()
		if err == nil {
			idx, err = idx.PutBatch(entries)
		}
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzFix.indexes = append(fuzzFix.indexes, idx)
	}
	fuzzFix.sorted = sorted
}

// FuzzRangeBounds fuzzes the [lo, hi) bounds — including inverted, empty,
// equal and non-existent bounds, and nil (unbounded) sides via the two
// bool flags — against a sorted-slice oracle, for all five index classes
// at once: no panics, and exactly the oracle's ordered result set.
func FuzzRangeBounds(f *testing.F) {
	f.Add([]byte("fz/10"), []byte("fz/a0"), false, false)
	f.Add([]byte(nil), []byte(nil), true, true)
	f.Add([]byte{}, []byte{}, false, false)               // empty, non-nil bounds
	f.Add([]byte("fz/50"), []byte("fz/50"), false, false) // lo == hi
	f.Add([]byte("fz/a0"), []byte("fz/10"), false, false) // inverted
	f.Add([]byte("no-such"), []byte("also-absent"), false, false)
	f.Add([]byte{0x00}, []byte{0xFF, 0xFF, 0xFF}, false, false)
	f.Add([]byte("fz/"), []byte("fz0"), false, false) // whole prefix cluster
	f.Fuzz(func(t *testing.T, lo, hi []byte, loNil, hiNil bool) {
		fuzzOnce.Do(buildFuzzFixture)
		if fuzzErr != nil {
			t.Fatalf("fixture: %v", fuzzErr)
		}
		if loNil {
			lo = nil
		}
		if hiNil {
			hi = nil
		}
		var want []core.Entry
		for _, e := range fuzzFix.sorted {
			if core.InRange(e.Key, lo, hi) {
				want = append(want, e)
			}
		}
		for _, idx := range fuzzFix.indexes {
			var got []core.Entry
			err := core.RangeOf(idx, lo, hi, func(k, v []byte) bool {
				got = append(got, core.Entry{
					Key:   append([]byte(nil), k...),
					Value: append([]byte(nil), v...),
				})
				return true
			})
			if err != nil {
				t.Fatalf("%s: Range(%q, %q): %v", idx.Name(), lo, hi, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: Range(%q, %q) returned %d entries, oracle has %d",
					idx.Name(), lo, hi, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
					t.Fatalf("%s: Range(%q, %q) entry %d = %v, want %v",
						idx.Name(), lo, hi, i, got[i], want[i])
				}
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool {
				return bytes.Compare(got[i].Key, got[j].Key) < 0
			}) {
				t.Fatalf("%s: Range(%q, %q) output not in key order", idx.Name(), lo, hi)
			}
		}
	})
}
