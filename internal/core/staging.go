package core

import (
	"repro/internal/hash"
	"repro/internal/store"
)

// StagedWriter is the commit-time write path shared by the index
// structures: batch mutations encode their new nodes into the writer
// instead of the store, and one Flush at commit persists everything through
// the store's batch interface.
//
// Two effects make this the fast write path. First, only nodes reachable
// from the committed root are ever staged — the O(N·depth) intermediate
// nodes a naive sequence of copy-on-write updates would persist (and
// immediately orphan) are never encoded, hashed or written. Second, each
// node's digest is computed exactly once, here, during bottom-up Merkle
// hashing; Flush hands the digests to store.PutBatchHashed so the store
// does not hash again, and the whole batch lands under one round of store
// synchronization.
//
// A StagedWriter is single-batch and not safe for concurrent use; create
// one per mutation, Flush it, and drop it.
//
// GC safety: never run a store sweep (store.Sweeper, driven by
// version.Repo.GC) while a staged commit is in flight on the same store.
// Between Flush and the moment the new root is recorded in a commit, the
// freshly flushed nodes are unreachable from every existing commit, and a
// concurrent sweep would reclaim them mid-commit. Serialize GC against
// writers; see the internal/version package documentation for the full
// contract.
type StagedWriter struct {
	s      store.Store
	hashes []hash.Hash
	encs   [][]byte
	index  map[hash.Hash]int // staged position by digest, for dedup + Lookup
}

// NewStagedWriter returns an empty writer staging into s.
func NewStagedWriter(s store.Store) *StagedWriter {
	return &StagedWriter{s: s, index: make(map[hash.Hash]int)}
}

// Put stages one encoded node and returns its digest. The writer takes
// ownership of enc (callers pass freshly encoded buffers). Staging the same
// content twice is a deduplicated no-op, mirroring store semantics.
func (w *StagedWriter) Put(enc []byte) hash.Hash {
	h := hash.Of(enc)
	if _, ok := w.index[h]; ok {
		return h
	}
	w.index[h] = len(w.encs)
	w.hashes = append(w.hashes, h)
	w.encs = append(w.encs, enc)
	return h
}

// Lookup serves reads of staged-but-unflushed nodes, so editors that walk
// nodes they just produced (e.g. a root collapse after a rebuild) see their
// own writes. It does not fall through to the store.
func (w *StagedWriter) Lookup(h hash.Hash) ([]byte, bool) {
	i, ok := w.index[h]
	if !ok {
		return nil, false
	}
	return w.encs[i], true
}

// Staged returns how many distinct nodes are waiting to be flushed.
func (w *StagedWriter) Staged() int { return len(w.encs) }

// Flush persists every staged node in one batch write and resets the
// writer. Digests computed at Put time ride along, so built-in backends
// skip re-hashing.
func (w *StagedWriter) Flush() {
	if len(w.encs) == 0 {
		return
	}
	store.PutBatchHashed(w.s, w.hashes, w.encs)
	w.hashes = nil
	w.encs = nil
	w.index = make(map[hash.Hash]int)
}
