package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/hash"
	"repro/internal/store"
)

// commitWorkersOverride, when positive, replaces the GOMAXPROCS default for
// every StagedWriter created by NewStagedWriter. It exists for benchmarks
// and the serial-vs-parallel equivalence tests; production code leaves it
// unset.
var commitWorkersOverride atomic.Int32

// CommitWorkers returns the worker count new staged writers hash with:
// the SetCommitWorkers override when set, GOMAXPROCS otherwise.
func CommitWorkers() int {
	if n := commitWorkersOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetCommitWorkers overrides the default commit worker count; n <= 0
// restores the GOMAXPROCS default. It returns the previous override (0 when
// none), so tests can restore it.
func SetCommitWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(commitWorkersOverride.Swap(int32(n)))
}

// stageShards is the fan-out of the staged writer's dedup index. Content
// digests are uniformly distributed, so the leading byte spreads concurrent
// Put calls across independent locks; 64 shards keep collisions negligible
// for any realistic worker count.
const stageShards = 64

// stageShard is one lock-striped slice of the dedup index, mapping a staged
// node's digest to its position in the staging arrays.
type stageShard struct {
	mu  sync.Mutex
	idx map[hash.Hash]int32
}

// StagedWriter is the commit-time write path shared by the index
// structures: batch mutations encode their new nodes into the writer
// instead of the store, and one Flush at commit persists everything through
// the store's batch interface.
//
// Two effects make this the fast write path. First, only nodes reachable
// from the committed root are ever staged — the O(N·depth) intermediate
// nodes a naive sequence of copy-on-write updates would persist (and
// immediately orphan) are never encoded, hashed or written. Second, each
// node's digest is computed exactly once, during staging; Flush hands the
// digests to store.PutBatchHashed so the store does not hash again, and the
// whole batch lands under one round of store synchronization.
//
// Hashing is the dominant commit cost, and the writer parallelizes it two
// ways. PutAll encodes and digests a whole run of nodes (one tree level of
// a bottom-up build) across Workers goroutines. Put is safe for concurrent
// use, so an index can fan independent dirty subtrees out to goroutines and
// commit them concurrently — the dedup index is lock-striped by digest
// byte, so concurrent staging does not serialize on one map. Children must
// still be staged before the parents that embed their digests; indexes
// already commit bottom-up, so this is the natural order on every path.
//
// A StagedWriter is single-batch: create one per mutation (NewStagedWriter
// recycles them through a pool), stage, Flush, then Release. Flush and
// Release require all staging goroutines to have been joined first.
//
// GC safety: between Flush and the moment the new root is recorded in a
// commit, the freshly flushed nodes are unreachable from every existing
// commit. A concurrent version.Repo.GC pass survives this window through
// the store write barrier: Flush lands the whole batch through
// store.PutBatchHashed, which runs inside a barrier write window — a pass
// arming its barrier at mark start waits for in-flight batches, so the
// flush either completes before the mark (and a sweep that reclaims the
// still-uncommitted version is caught by version.Repo.Commit's root
// re-check, a retryable race) or has every digest recorded as
// unconditionally live for the pass. Stores without the BarrierStore
// capability keep the old rule — quiesce writers for the duration of a GC;
// see the internal/version package documentation for the full contract.
type StagedWriter struct {
	s       store.Store
	workers int

	// mu guards the staging arrays; shards guard the dedup index. Lock
	// order is always shard → mu (stage holds its shard lock across the
	// append so a digest becomes visible only after its position is valid).
	mu     sync.Mutex
	hashes []hash.Hash
	encs   [][]byte

	shards [stageShards]stageShard
}

// stagedWriterPool recycles writers across batches so the staging arrays
// and dedup maps keep their capacity instead of reallocating every commit.
var stagedWriterPool = sync.Pool{
	New: func() any { return &StagedWriter{} },
}

// NewStagedWriter returns an empty writer staging into s, hashing with the
// default CommitWorkers worker count.
func NewStagedWriter(s store.Store) *StagedWriter {
	return NewStagedWriterWorkers(s, 0)
}

// NewStagedWriterWorkers returns an empty writer staging into s with an
// explicit hash worker count; workers <= 0 selects CommitWorkers(), 1
// commits fully serially. Writers come from a pool; pair with Release.
func NewStagedWriterWorkers(s store.Store, workers int) *StagedWriter {
	if workers <= 0 {
		workers = CommitWorkers()
	}
	w := stagedWriterPool.Get().(*StagedWriter)
	w.s = s
	w.workers = workers
	return w
}

// Workers returns the writer's hash-parallelism budget. Indexes consult it
// to decide whether fanning a commit across goroutines can pay off.
func (w *StagedWriter) Workers() int { return w.workers }

// Release resets the writer and returns it to the pool. Call it after the
// commit's final Flush (an abandoned, unflushed writer may also be
// released; its staged nodes are dropped). The writer must not be used
// afterwards.
func (w *StagedWriter) Release() {
	w.drop()
	w.s = nil
	stagedWriterPool.Put(w)
}

// drop clears staged state while keeping slice and map capacity.
func (w *StagedWriter) drop() {
	w.hashes = w.hashes[:0]
	for i := range w.encs {
		w.encs[i] = nil // release the buffers; only the spine is reused
	}
	w.encs = w.encs[:0]
	for i := range w.shards {
		if w.shards[i].idx != nil {
			clear(w.shards[i].idx)
		}
	}
}

// shardFor returns the dedup shard owning h.
func (w *StagedWriter) shardFor(h hash.Hash) *stageShard {
	return &w.shards[h[0]&(stageShards-1)]
}

// stage dedup-inserts one digest→encoding pair. Safe for concurrent use.
func (w *StagedWriter) stage(h hash.Hash, enc []byte) {
	w.stageLazy(h, func() []byte { return enc })
}

// stageLazy is the one dedup-insert critical section: the encoding is
// materialized only when the digest is new, so callers staging from a
// scratch buffer (PutFunc) copy nothing for duplicates. Lock order is
// shard → mu; the digest becomes visible in the shard index only after its
// staged position is valid.
func (w *StagedWriter) stageLazy(h hash.Hash, enc func() []byte) {
	sh := w.shardFor(h)
	sh.mu.Lock()
	if sh.idx == nil {
		sh.idx = make(map[hash.Hash]int32)
	}
	if _, dup := sh.idx[h]; !dup {
		buf := enc()
		w.mu.Lock()
		pos := int32(len(w.encs))
		w.hashes = append(w.hashes, h)
		w.encs = append(w.encs, buf)
		w.mu.Unlock()
		sh.idx[h] = pos
	}
	sh.mu.Unlock()
}

// Put stages one encoded node and returns its digest. The writer takes
// ownership of enc (callers pass freshly encoded buffers; enc must not be
// mutated afterwards). Staging the same content twice is a deduplicated
// no-op, mirroring store semantics. Put is safe for concurrent use, so
// commit paths may stage independent subtrees from multiple goroutines.
func (w *StagedWriter) Put(enc []byte) hash.Hash {
	h := hash.Of(enc)
	w.stage(h, enc)
	return h
}

// PutFunc stages one node without the caller allocating its encoding:
// encode writes the node's canonical encoding into a pooled scratch writer,
// and the staged writer copies the bytes only when the node is not already
// staged. It is the single-node analogue of PutAll — the allocation-free
// hot path for incremental edits — and, like Put, is safe for concurrent
// use. encode must not retain the scratch writer or its bytes.
func (w *StagedWriter) PutFunc(encode func(enc *codec.Writer)) hash.Hash {
	cw := codec.GetWriter()
	encode(cw)
	b := cw.Bytes()
	h := hash.Of(b)
	w.stageLazy(h, func() []byte {
		cp := make([]byte, len(b))
		copy(cp, b)
		return cp
	})
	cw.Release()
	return h
}

// putAllStride is how many nodes one PutAll worker encodes per work grab.
const putAllStride = 8

// PutAll stages n nodes at once: encode(i, enc) writes node i's canonical
// encoding into the supplied scratch writer, and PutAll encodes and digests
// the run across the writer's Workers goroutines, returning the digests in
// index order. It is the level-at-a-time fast path of bottom-up builds —
// the nodes of one tree level have no digest dependencies on each other, so
// the whole level hashes in parallel while dedup and staging order stay
// deterministic.
//
// encode must be safe for concurrent invocation with distinct i and must
// not retain enc or its bytes; PutAll copies the encoding before staging.
func (w *StagedWriter) PutAll(n int, encode func(i int, enc *codec.Writer)) []hash.Hash {
	if n == 0 {
		return nil
	}
	encs := make([][]byte, n)
	encodeRange := func(start, end int) {
		cw := codec.GetWriter()
		for i := start; i < end; i++ {
			cw.Reset()
			encode(i, cw)
			b := cw.Bytes()
			cp := make([]byte, len(b))
			copy(cp, b)
			encs[i] = cp
		}
		cw.Release()
	}
	workers := w.workers
	if max := (n + putAllStride - 1) / putAllStride; workers > max {
		workers = max
	}
	if workers <= 1 {
		encodeRange(0, n)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		run := func() {
			for {
				start := int(next.Add(putAllStride)) - putAllStride
				if start >= n {
					return
				}
				end := start + putAllStride
				if end > n {
					end = n
				}
				encodeRange(start, end)
			}
		}
		for i := 1; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		run()
		wg.Wait()
	}
	// Digest the encode-finished buffers across the worker pool, then stage
	// serially in index order so dedup positions stay deterministic.
	hs := make([]hash.Hash, n)
	hash.OfAllWorkers(w.workers, encs, hs)
	for i, h := range hs {
		w.stage(h, encs[i])
	}
	return hs
}

// Lookup serves reads of staged-but-unflushed nodes, so editors that walk
// nodes they just produced (e.g. a root collapse after a rebuild) see their
// own writes. It does not fall through to the store. The returned slice is
// the staged buffer: read-only, valid until the writer is Released.
func (w *StagedWriter) Lookup(h hash.Hash) ([]byte, bool) {
	sh := w.shardFor(h)
	sh.mu.Lock()
	pos, ok := sh.idx[h]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	w.mu.Lock()
	enc := w.encs[pos]
	w.mu.Unlock()
	return enc, true
}

// Staged returns how many distinct nodes are waiting to be flushed.
func (w *StagedWriter) Staged() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.encs)
}

// Flush persists every staged node in one batch write, resets the writer
// for the next batch (backing arrays are kept, so a reused writer stages
// without reallocating), and returns how many nodes were flushed. Digests
// computed at stage time ride along, so built-in backends skip re-hashing.
// Flush must not race with in-flight Put/PutAll calls: join every staging
// goroutine first.
func (w *StagedWriter) Flush() int {
	n := len(w.encs)
	if n == 0 {
		return 0
	}
	store.PutBatchHashed(w.s, w.hashes, w.encs)
	w.drop()
	return n
}
