package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/postree"
	"repro/internal/store"
)

// siriCandidates lists the index classes under the cross-index property
// test, each over a fresh store.
func siriCandidates() []struct {
	name string
	new  func() (core.Index, error)
} {
	return []struct {
		name string
		new  func() (core.Index, error)
	}{
		{"MPT", func() (core.Index, error) {
			return mpt.New(store.NewMemStore()), nil
		}},
		{"MBT", func() (core.Index, error) {
			return mbt.New(store.NewMemStore(), mbt.Config{Capacity: 64, Fanout: 8})
		}},
		{"POS-Tree", func() (core.Index, error) {
			return postree.New(store.NewMemStore(), postree.ConfigForNodeSize(512)), nil
		}},
	}
}

// siriOp is one randomized mutation.
type siriOp struct {
	del   bool
	batch []core.Entry // batch mode when len > 1 or !del and key == nil
	key   []byte
	value []byte
}

// genOps produces a deterministic random insert/update/delete sequence over
// a bounded key space so updates and re-inserts of deleted keys are common.
func genOps(seed int64, n int) []siriOp {
	rng := rand.New(rand.NewSource(seed))
	key := func() []byte {
		return []byte(fmt.Sprintf("key-%03d", rng.Intn(120)))
	}
	value := func() []byte {
		return []byte(fmt.Sprintf("val-%d", rng.Intn(1_000_000)))
	}
	ops := make([]siriOp, 0, n)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.45: // single put (insert or update)
			ops = append(ops, siriOp{key: key(), value: value()})
		case r < 0.70: // delete (often of an absent key)
			ops = append(ops, siriOp{del: true, key: key()})
		default: // batch put with possible duplicate keys (later wins)
			b := make([]core.Entry, rng.Intn(15)+2)
			for j := range b {
				b[j] = core.Entry{Key: key(), Value: value()}
			}
			ops = append(ops, siriOp{batch: b})
		}
	}
	return ops
}

// applyOp advances one index version by one operation.
func applyOp(idx core.Index, op siriOp) (core.Index, error) {
	switch {
	case op.del:
		return idx.Delete(op.key)
	case op.batch != nil:
		return idx.PutBatch(op.batch)
	default:
		return idx.Put(op.key, op.value)
	}
}

// applyOracle mirrors applyOp on the map oracle.
func applyOracle(m map[string]string, op siriOp) {
	switch {
	case op.del:
		delete(m, string(op.key))
	case op.batch != nil:
		for _, e := range op.batch {
			m[string(e.Key)] = string(e.Value)
		}
	default:
		m[string(op.key)] = string(op.value)
	}
}

func (op siriOp) String() string {
	switch {
	case op.del:
		return fmt.Sprintf("del %s", op.key)
	case op.batch != nil:
		return fmt.Sprintf("batch %d", len(op.batch))
	default:
		return fmt.Sprintf("put %s", op.key)
	}
}

// checkAgainstOracle verifies lookups, count and full scans match the map
// oracle.
func checkAgainstOracle(t *testing.T, name string, idx core.Index, oracle map[string]string) {
	t.Helper()
	for k, want := range oracle {
		v, ok, err := idx.Get([]byte(k))
		if err != nil {
			t.Fatalf("%s: Get(%q): %v", name, k, err)
		}
		if !ok || string(v) != want {
			t.Fatalf("%s: Get(%q) = %q, %v; oracle has %q", name, k, v, ok, want)
		}
	}
	for i := 0; i < 10; i++ {
		absent := fmt.Sprintf("absent-%03d", i)
		if _, ok, err := idx.Get([]byte(absent)); err != nil || ok {
			t.Fatalf("%s: Get(%q) = %v, %v; key should be absent", name, absent, ok, err)
		}
	}
	n, err := idx.Count()
	if err != nil {
		t.Fatalf("%s: Count: %v", name, err)
	}
	if n != len(oracle) {
		t.Fatalf("%s: Count = %d, oracle has %d", name, n, len(oracle))
	}
	// Scan: every entry exactly once, values matching. MBT iterates in
	// bucket order, so compare as sorted sets.
	var got []string
	err = idx.Iterate(func(k, v []byte) bool {
		got = append(got, string(k)+"\x00"+string(v))
		return true
	})
	if err != nil {
		t.Fatalf("%s: Iterate: %v", name, err)
	}
	want := make([]string, 0, len(oracle))
	for k, v := range oracle {
		want = append(want, k+"\x00"+v)
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("%s: scan returned %d entries, oracle has %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: scan mismatch at %d: %q vs %q", name, i, got[i], want[i])
		}
	}
}

// TestCrossIndexOracleProperty applies identical random insert/update/delete
// sequences to MPT, MBT and POS-Tree and requires all of them to agree with
// a map oracle on lookups, counts and scans — and requires two independent
// replicas replaying the same sequence to agree on every root hash
// (determinism half of structural invariance, §4.1).
func TestCrossIndexOracleProperty(t *testing.T) {
	for _, seed := range []int64{1, 42, 20260727} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ops := genOps(seed, 240)
			for _, cand := range siriCandidates() {
				a, err := cand.new()
				if err != nil {
					t.Fatal(err)
				}
				b, err := cand.new()
				if err != nil {
					t.Fatal(err)
				}
				oracle := make(map[string]string)
				for i, op := range ops {
					if a, err = applyOp(a, op); err != nil {
						t.Fatalf("%s: op %d (%s): %v", cand.name, i, op, err)
					}
					if b, err = applyOp(b, op); err != nil {
						t.Fatalf("%s replica: op %d (%s): %v", cand.name, i, op, err)
					}
					applyOracle(oracle, op)
					if a.RootHash() != b.RootHash() {
						t.Fatalf("%s: replicas diverged after op %d (%s)", cand.name, i, op)
					}
					if (i+1)%60 == 0 {
						checkAgainstOracle(t, cand.name, a, oracle)
					}
				}
				checkAgainstOracle(t, cand.name, a, oracle)
			}
		})
	}
}

// TestCrossIndexStructuralInvariance is the stronger half of §4.1: the root
// hash depends only on the final contents, not the update history. An index
// grown through a random mutation history must hash identically to a fresh
// index bulk-loaded with the final state in one batch.
func TestCrossIndexStructuralInvariance(t *testing.T) {
	ops := genOps(7, 200)
	for _, cand := range siriCandidates() {
		grown, err := cand.new()
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[string]string)
		for i, op := range ops {
			if grown, err = applyOp(grown, op); err != nil {
				t.Fatalf("%s: op %d: %v", cand.name, i, err)
			}
			applyOracle(oracle, op)
		}

		final := make([]core.Entry, 0, len(oracle))
		for k, v := range oracle {
			final = append(final, core.Entry{Key: []byte(k), Value: []byte(v)})
		}
		sort.Slice(final, func(i, j int) bool { return bytes.Compare(final[i].Key, final[j].Key) < 0 })
		fresh, err := cand.new()
		if err != nil {
			t.Fatal(err)
		}
		if fresh, err = fresh.PutBatch(final); err != nil {
			t.Fatalf("%s: bulk load: %v", cand.name, err)
		}
		if grown.RootHash() != fresh.RootHash() {
			t.Fatalf("%s: structural invariance violated: grown root %v != bulk-loaded root %v",
				cand.name, grown.RootHash(), fresh.RootHash())
		}
	}
}
