package core_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
)

// parallelClasses lists every index class in the repository, so the
// serial-vs-parallel sweep covers all five commit strategies.
var parallelClasses = []string{"MPT", "MBT", "POS-Tree", "MVMB+-Tree", "Prolly-Tree"}

// indexOverFull builds one of the five index classes over the given store.
func indexOverFull(name string, s store.Store) (core.Index, error) {
	switch name {
	case "MPT":
		return mpt.New(s), nil
	case "MBT":
		return mbt.New(s, mbt.Config{Capacity: 64, Fanout: 8})
	case "POS-Tree":
		return postree.New(s, postree.ConfigForNodeSize(512)), nil
	case "MVMB+-Tree":
		return mvmbt.New(s, mvmbt.ConfigForNodeSize(512)), nil
	case "Prolly-Tree":
		return prolly.New(s, prolly.ConfigForNodeSize(512)), nil
	}
	return nil, fmt.Errorf("unknown index class %q", name)
}

// TestSerialParallelCommitEquivalence drives two replicas of every index
// class over every store backend through the same randomized mixed op
// sequence: replica A commits with the serial writer (1 worker), replica B
// with a parallel writer (8 workers — more than this machine may have, so
// the fan-out paths run regardless of GOMAXPROCS). After every operation
// the two root hashes must be byte-identical: parallel staging may reorder
// the flush, but content addressing requires the committed structure to be
// exactly the serial one. Run under -race to also exercise the lock-striped
// dedup index and the concurrent store batch writes.
func TestSerialParallelCommitEquivalence(t *testing.T) {
	ops := genOps(20250727, 120)
	defer core.SetCommitWorkers(core.SetCommitWorkers(0))
	for _, backend := range equivalenceBackends() {
		t.Run(backend.name, func(t *testing.T) {
			for _, class := range parallelClasses {
				t.Run(class, func(t *testing.T) {
					serial, err := indexOverFull(class, backend.new(t))
					if err != nil {
						t.Fatal(err)
					}
					parallel, err := indexOverFull(class, backend.new(t))
					if err != nil {
						t.Fatal(err)
					}
					oracle := make(map[string]string)
					for i, op := range ops {
						core.SetCommitWorkers(1)
						if serial, err = applyOp(serial, op); err != nil {
							t.Fatalf("serial: op %d (%s): %v", i, op, err)
						}
						core.SetCommitWorkers(8)
						if parallel, err = applyOp(parallel, op); err != nil {
							t.Fatalf("parallel: op %d (%s): %v", i, op, err)
						}
						applyOracle(oracle, op)
						if serial.RootHash() != parallel.RootHash() {
							t.Fatalf("%s/%s: serial and parallel roots diverged after op %d (%s): %v vs %v",
								backend.name, class, i, op, serial.RootHash(), parallel.RootHash())
						}
					}
					checkAgainstOracle(t, class, parallel, oracle)
				})
			}
		})
	}
}

// TestStagedWriterConcurrentStress hammers one parallel staged writer from
// many goroutines mixing Put, PutFunc and duplicate contents, plus a PutAll
// level from the main goroutine, then flushes once and verifies every
// staged digest is stored with exactly its content's bytes. It is the
// concurrency smoke for the lock-striped dedup index and the parallel
// Flush path; run under -race.
func TestStagedWriterConcurrentStress(t *testing.T) {
	s := store.NewShardedStore(8)
	w := core.NewStagedWriterWorkers(s, 8)

	const goroutines = 8
	const perG = 300
	var wg sync.WaitGroup
	digests := make([][]hash.Hash, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Half the contents collide across goroutines so dedup
				// races are exercised, half are unique.
				var payload string
				if i%2 == 0 {
					payload = fmt.Sprintf("shared-%d", i)
				} else {
					payload = fmt.Sprintf("unique-%d-%d", g, i)
				}
				var h hash.Hash
				if i%3 == 0 {
					h = w.PutFunc(func(enc *codec.Writer) { enc.Raw([]byte(payload)) })
				} else {
					h = w.Put([]byte(payload))
				}
				digests[g] = append(digests[g], h)
				if got, ok := w.Lookup(h); !ok || string(got) != payload {
					panic(fmt.Sprintf("lookup of freshly staged %q failed", payload))
				}
			}
		}(g)
	}
	level := w.PutAll(perG, func(i int, enc *codec.Writer) {
		enc.Raw([]byte(fmt.Sprintf("level-%d", i)))
	})
	wg.Wait()

	staged := w.Staged()
	// Distinct contents: perG/2 shared + goroutines*perG/2 unique + perG level nodes.
	want := perG/2 + goroutines*perG/2 + perG
	if staged != want {
		t.Fatalf("staged %d distinct nodes, want %d", staged, want)
	}
	if n := w.Flush(); n != staged {
		t.Fatalf("Flush reported %d nodes, want %d", n, staged)
	}
	check := func(h hash.Hash) {
		data, ok := s.Get(h)
		if !ok {
			t.Fatalf("digest %v missing from store after Flush", h)
		}
		if hash.Of(data) != h {
			t.Fatalf("store content for %v does not re-hash to its digest", h)
		}
	}
	for _, ds := range digests {
		for _, h := range ds {
			check(h)
		}
	}
	for _, h := range level {
		check(h)
	}

	// The writer resets for reuse: a second batch through the same writer
	// must start empty and flush cleanly.
	if w.Staged() != 0 {
		t.Fatalf("writer not empty after Flush: %d staged", w.Staged())
	}
	w.Put([]byte("second-batch"))
	if n := w.Flush(); n != 1 {
		t.Fatalf("second batch flushed %d nodes, want 1", n)
	}
	w.Release()
}
