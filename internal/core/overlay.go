package core

import (
	"bytes"
	"fmt"
	"sort"
)

// OverlayEntry is one buffered record layered over a base index by a
// ReadOverlay: either a pending value for Key or a tombstone masking the
// base's value. The ingest memtable snapshots itself into a sorted slice of
// these for every layered read.
type OverlayEntry struct {
	// Key is the record's key. Entries handed to NewReadOverlay must be
	// strictly ascending by Key (no duplicates).
	Key []byte
	// Value is the pending value; ignored when Tombstone is set.
	Value []byte
	// Tombstone marks a pending delete: the overlay reports the key
	// absent even when the base index holds it.
	Tombstone bool
}

// ReadOverlay is the layered read view of the write-optimized ingest path:
// a sorted in-memory overlay (the memtable snapshot) in front of a base
// index version. Get and Range consult the overlay first — a pending value
// wins over the base's, and a tombstone masks a base hit entirely — and
// Range merge-iterates the two sides so callers observe one ascending key
// sequence, exactly the Ranger contract. The base may be nil (nothing
// merged yet), in which case the overlay alone is the view.
//
// A ReadOverlay is an immutable snapshot: it holds the entries slice it was
// built with (no copy) and the base index version, both of which must not
// change while the overlay is in use. It is safe for concurrent readers.
type ReadOverlay struct {
	base    Index
	entries []OverlayEntry
}

// NewReadOverlay builds the layered view of base (which may be nil) under
// entries. The entries must be sorted strictly ascending by key; the slice
// is retained, not copied.
func NewReadOverlay(base Index, entries []OverlayEntry) *ReadOverlay {
	return &ReadOverlay{base: base, entries: entries}
}

// Base returns the underlying index version, nil when nothing has been
// merged yet.
func (o *ReadOverlay) Base() Index { return o.base }

// OverlayLen returns the number of overlay entries (tombstones included).
func (o *ReadOverlay) OverlayLen() int { return len(o.entries) }

// Get returns the value visible under key through the layered view: the
// overlay's pending value if one exists, absence if the overlay holds a
// tombstone, and otherwise the base index's value.
func (o *ReadOverlay) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, ErrEmptyKey
	}
	i := sort.Search(len(o.entries), func(i int) bool {
		return bytes.Compare(o.entries[i].Key, key) >= 0
	})
	if i < len(o.entries) && bytes.Equal(o.entries[i].Key, key) {
		if o.entries[i].Tombstone {
			return nil, false, nil
		}
		return o.entries[i].Value, true, nil
	}
	if o.base == nil {
		return nil, false, nil
	}
	return o.base.Get(key)
}

// Range visits every visible entry with lo ≤ key < hi in ascending key
// order — the Ranger contract — merge-iterating the sorted overlay with the
// base index's own Range. On keys present in both layers the overlay wins;
// tombstoned keys are skipped without surfacing the base's value.
// Returning false from fn stops the scan early.
func (o *ReadOverlay) Range(lo, hi []byte, fn func(key, value []byte) bool) error {
	if EmptyRange(lo, hi) {
		return nil
	}
	// ov indexes the next overlay entry in [lo, hi).
	ov := sort.Search(len(o.entries), func(i int) bool {
		return lo == nil || bytes.Compare(o.entries[i].Key, lo) >= 0
	})
	stopped := false
	// emitOverlayBelow drains overlay entries with key < bound (nil bound =
	// unbounded), honoring hi and early stop.
	emitOverlayBelow := func(bound []byte) {
		for ov < len(o.entries) && !stopped {
			e := o.entries[ov]
			if !InRange(e.Key, lo, hi) || (bound != nil && bytes.Compare(e.Key, bound) >= 0) {
				return
			}
			ov++
			if e.Tombstone {
				continue
			}
			if !fn(e.Key, e.Value) {
				stopped = true
			}
		}
	}
	if o.base != nil {
		err := RangeOf(o.base, lo, hi, func(k, v []byte) bool {
			emitOverlayBelow(k)
			if stopped {
				return false
			}
			// An overlay entry for this exact key shadows the base's.
			if ov < len(o.entries) && bytes.Equal(o.entries[ov].Key, k) {
				e := o.entries[ov]
				ov++
				if e.Tombstone {
					return true
				}
				if !fn(e.Key, e.Value) {
					stopped = true
					return false
				}
				return true
			}
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("core: overlay range: %w", err)
		}
	}
	if !stopped {
		emitOverlayBelow(nil) // drain overlay entries past the base's last key
	}
	return nil
}

// Iterate visits every visible entry in ascending key order (an unbounded
// Range). Return false from fn to stop early.
func (o *ReadOverlay) Iterate(fn func(key, value []byte) bool) error {
	return o.Range(nil, nil, fn)
}

// Count returns the number of visible entries: base entries not masked by a
// tombstone or shadowed by a pending value, plus pending values for keys
// the base lacks.
func (o *ReadOverlay) Count() (int, error) {
	n := 0
	err := o.Range(nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Compile-time check: the overlay serves the ordered-scan capability.
var _ Ranger = (*ReadOverlay)(nil)
