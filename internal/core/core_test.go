package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/hash"
	"repro/internal/store"
)

// mapIndex is a minimal in-memory Index used to exercise the generic merge
// logic without depending on any concrete tree.
type mapIndex struct {
	s store.Store
	m map[string][]byte
}

func newMapIndex() *mapIndex {
	return &mapIndex{s: store.NewMemStore(), m: map[string][]byte{}}
}

func (x *mapIndex) clone() *mapIndex {
	c := &mapIndex{s: x.s, m: make(map[string][]byte, len(x.m))}
	for k, v := range x.m {
		c.m[k] = v
	}
	return c
}

func (x *mapIndex) Name() string       { return "map" }
func (x *mapIndex) Store() store.Store { return x.s }

func (x *mapIndex) RootHash() hash.Hash {
	keys := make([]string, 0, len(x.m))
	for k := range x.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts [][]byte
	for _, k := range keys {
		parts = append(parts, []byte(k), x.m[k])
	}
	return hash.Of(parts...)
}

func (x *mapIndex) Get(key []byte) ([]byte, bool, error) {
	v, ok := x.m[string(key)]
	return v, ok, nil
}

func (x *mapIndex) Put(key, value []byte) (Index, error) {
	c := x.clone()
	c.m[string(key)] = value
	return c, nil
}

func (x *mapIndex) PutBatch(entries []Entry) (Index, error) {
	c := x.clone()
	for _, e := range entries {
		c.m[string(e.Key)] = e.Value
	}
	return c, nil
}

func (x *mapIndex) Delete(key []byte) (Index, error) {
	c := x.clone()
	delete(c.m, string(key))
	return c, nil
}

func (x *mapIndex) Iterate(fn func(k, v []byte) bool) error {
	keys := make([]string, 0, len(x.m))
	for k := range x.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), x.m[k]) {
			return nil
		}
	}
	return nil
}

func (x *mapIndex) Count() (int, error)                 { return len(x.m), nil }
func (x *mapIndex) PathLength(key []byte) (int, error)  { return 1, nil }
func (x *mapIndex) Prove(key []byte) (*Proof, error)    { return nil, errors.New("unsupported") }
func (x *mapIndex) VerifyProof(hash.Hash, *Proof) error { return errors.New("unsupported") }

func (x *mapIndex) Diff(other Index) ([]DiffEntry, error) {
	o, ok := other.(*mapIndex)
	if !ok {
		return nil, ErrTypeMismatch
	}
	keys := map[string]bool{}
	for k := range x.m {
		keys[k] = true
	}
	for k := range o.m {
		keys[k] = true
	}
	var out []DiffEntry
	for k := range keys {
		l, r := x.m[k], o.m[k]
		if !bytes.Equal(l, r) {
			out = append(out, DiffEntry{Key: []byte(k), Left: l, Right: r})
		}
	}
	return out, nil
}

func mustPut(t *testing.T, idx Index, k, v string) Index {
	t.Helper()
	out, err := idx.Put([]byte(k), []byte(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSortEntriesOrdersAndDedups(t *testing.T) {
	in := []Entry{
		{Key: []byte("b"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("2")},
		{Key: []byte("b"), Value: []byte("3")}, // later duplicate wins
		{Key: []byte("c"), Value: []byte("4")},
	}
	got := SortEntries(in)
	want := []Entry{
		{Key: []byte("a"), Value: []byte("2")},
		{Key: []byte("b"), Value: []byte("3")},
		{Key: []byte("c"), Value: []byte("4")},
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Input must be untouched.
	if string(in[0].Key) != "b" {
		t.Fatal("SortEntries mutated its input")
	}
}

func TestSortEntriesProperty(t *testing.T) {
	f := func(pairs map[string]string) bool {
		var in []Entry
		for k, v := range pairs {
			if k == "" {
				continue
			}
			in = append(in, Entry{Key: []byte(k), Value: []byte(v)})
		}
		out := SortEntries(in)
		if len(out) != len(in) { // map input has unique keys
			return false
		}
		for i := 1; i < len(out); i++ {
			if bytes.Compare(out[i-1].Key, out[i].Key) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateEntries(t *testing.T) {
	if err := ValidateEntries([]Entry{{Key: []byte("k")}}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateEntries([]Entry{{Key: nil}}); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeDisjoint(t *testing.T) {
	var left, right Index = newMapIndex(), nil
	left = mustPut(t, left, "a", "1")
	right = mustPut(t, left, "b", "2")
	left = mustPut(t, left, "c", "3")

	merged, err := Merge(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got, ok, _ := merged.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("merged[%q] = %q, %v; want %q", k, got, ok, v)
		}
	}
}

func TestMergeConflictAborts(t *testing.T) {
	base := mustPut(t, Index(newMapIndex()), "k", "base")
	left := mustPut(t, base, "k", "left")
	right := mustPut(t, base, "k", "right")
	if _, err := Merge(left, right, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
}

func TestMergeConflictResolved(t *testing.T) {
	base := mustPut(t, Index(newMapIndex()), "k", "base")
	left := mustPut(t, base, "k", "left")
	right := mustPut(t, base, "k", "right")

	merged, err := Merge(left, right, TakeRight)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := merged.Get([]byte("k"))
	if string(got) != "right" {
		t.Fatalf("resolved value = %q", got)
	}
	merged, err = Merge(left, right, TakeLeft)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ = merged.Get([]byte("k"))
	if string(got) != "left" {
		t.Fatalf("resolved value = %q", got)
	}
}

func TestMergeIdenticalIsNoop(t *testing.T) {
	a := mustPut(t, Index(newMapIndex()), "x", "1")
	merged, err := Merge(a, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged.RootHash() != a.RootHash() {
		t.Fatal("merging identical versions changed the root")
	}
}

func TestMerge3BothSidesContribute(t *testing.T) {
	base := mustPut(t, Index(newMapIndex()), "shared", "v0")
	left := mustPut(t, base, "l", "1")
	right := mustPut(t, base, "r", "2")

	merged, err := Merge3(base, left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range map[string]string{"shared": "v0", "l": "1", "r": "2"} {
		got, ok, _ := merged.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("merged[%q] = %q, %v", k, got, ok)
		}
	}
}

func TestMerge3ConvergentEditsAreNotConflicts(t *testing.T) {
	base := mustPut(t, Index(newMapIndex()), "k", "old")
	left := mustPut(t, base, "k", "new")
	right := mustPut(t, base, "k", "new")
	if _, err := Merge3(base, left, right, nil); err != nil {
		t.Fatalf("convergent edit flagged: %v", err)
	}
}

func TestMerge3DivergentEditsConflict(t *testing.T) {
	base := mustPut(t, Index(newMapIndex()), "k", "old")
	left := mustPut(t, base, "k", "a")
	right := mustPut(t, base, "k", "b")
	if _, err := Merge3(base, left, right, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	merged, err := Merge3(base, left, right, TakeRight)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := merged.Get([]byte("k"))
	if string(got) != "b" {
		t.Fatalf("resolved = %q", got)
	}
}

func TestMerge3RightDelete(t *testing.T) {
	base := mustPut(t, Index(newMapIndex()), "k", "v")
	left := base
	right, err := base.Delete([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge3(base, left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := merged.Get([]byte("k")); ok {
		t.Fatal("deleted key survived merge")
	}
}

func TestDiffTypeMismatch(t *testing.T) {
	a := newMapIndex()
	if _, err := a.Diff(otherIndex{}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
}

type otherIndex struct{ Index }

func (otherIndex) Name() string { return "other" }

// ---- metrics tests over a synthetic Merkle DAG ----

// dagIndex stores nodes encoded as: 1 count byte, then count 32-byte child
// hashes, then arbitrary payload.
type dagIndex struct {
	mapIndex
	s    *store.MemStore
	root hash.Hash
}

func (d *dagIndex) Store() store.Store  { return d.s }
func (d *dagIndex) RootHash() hash.Hash { return d.root }
func (d *dagIndex) Name() string        { return "dag" }

func (d *dagIndex) Refs(data []byte) ([]hash.Hash, error) {
	n := int(data[0])
	refs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		h, err := hash.FromBytes(data[1+i*32 : 1+(i+1)*32])
		if err != nil {
			return nil, err
		}
		refs[i] = h
	}
	return refs, nil
}

func dagNode(s *store.MemStore, payload string, children ...hash.Hash) hash.Hash {
	buf := []byte{byte(len(children))}
	for _, c := range children {
		buf = append(buf, c[:]...)
	}
	buf = append(buf, payload...)
	return s.Put(buf)
}

func TestReachStatsCountsAndHeight(t *testing.T) {
	s := store.NewMemStore()
	leaf1 := dagNode(s, "leaf-1")
	leaf2 := dagNode(s, "leaf-2")
	mid := dagNode(s, "mid", leaf1, leaf2)
	root := dagNode(s, "root", mid, leaf1) // leaf1 shared twice within one version

	idx := &dagIndex{s: s, root: root}
	r, err := ReachStats(idx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 4 { // leaf1 counted once despite two references
		t.Fatalf("Nodes = %d, want 4", r.Nodes)
	}
	if r.Height != 3 {
		t.Fatalf("Height = %d, want 3", r.Height)
	}
	if r.Bytes <= 0 {
		t.Fatalf("Bytes = %d", r.Bytes)
	}
}

func TestReachStatsEmptyRoot(t *testing.T) {
	idx := &dagIndex{s: store.NewMemStore(), root: hash.Null}
	r, err := ReachStats(idx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 0 || r.Height != 0 {
		t.Fatalf("empty reach = %+v", r)
	}
}

func TestReachStatsMissingNode(t *testing.T) {
	s := store.NewMemStore()
	ghost := hash.Of([]byte("never stored"))
	root := dagNode(s, "root", ghost)
	idx := &dagIndex{s: s, root: root}
	if _, err := ReachStats(idx); !errors.Is(err, ErrMissingNode) {
		t.Fatalf("err = %v", err)
	}
}

// TestReachableSharedAccSkipsWalkedPages locks in the union-walk contract
// the GC mark phase relies on: a second Reachable call sharing the same acc
// re-reads only the pages the first call did not cover.
func TestReachableSharedAccSkipsWalkedPages(t *testing.T) {
	s := store.NewMemStore()
	leaf1 := dagNode(s, "leaf-1")
	leaf2 := dagNode(s, "leaf-2")
	mid := dagNode(s, "mid", leaf1, leaf2)
	root1 := dagNode(s, "root-1", mid)
	root2 := dagNode(s, "root-2", mid) // second version sharing the subtree

	acc := make(map[hash.Hash]int)
	idx1 := &dagIndex{s: s, root: root1}
	if _, err := Reachable(idx1, idx1, root1, acc); err != nil {
		t.Fatal(err)
	}
	getsAfterFirst := s.Stats().Gets
	idx2 := &dagIndex{s: s, root: root2}
	if _, err := Reachable(idx2, idx2, root2, acc); err != nil {
		t.Fatal(err)
	}
	// The second walk must fetch only its novel root: mid and the leaves
	// are already in acc.
	if gets := s.Stats().Gets - getsAfterFirst; gets != 1 {
		t.Fatalf("second walk issued %d Gets, want 1 (only the new root)", gets)
	}
	if len(acc) != 5 {
		t.Fatalf("union covers %d nodes, want 5", len(acc))
	}
}

func TestAnalyzeVersionsSharing(t *testing.T) {
	s := store.NewMemStore()
	shared := dagNode(s, "shared-subtree")
	v1root := dagNode(s, "v1", shared)
	v2root := dagNode(s, "v2", shared)

	v1 := &dagIndex{s: s, root: v1root}
	v2 := &dagIndex{s: s, root: v2root}
	st, err := AnalyzeVersions(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if st.SumNodes != 4 || st.UnionNodes != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.NodeSharingRatio() <= 0 || st.NodeSharingRatio() >= 1 {
		t.Fatalf("sharing ratio = %v", st.NodeSharingRatio())
	}
	dr, err := DedupRatio(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if dr <= 0 || dr >= 0.5 {
		t.Fatalf("dedup ratio = %v", dr)
	}
	nsr, err := NodeSharingRatio(v1, v2)
	if err != nil || nsr != st.NodeSharingRatio() {
		t.Fatalf("NodeSharingRatio = %v, %v", nsr, err)
	}
}

func TestAnalyzeVersionsIdenticalVersions(t *testing.T) {
	s := store.NewMemStore()
	leaf := dagNode(s, "leaf")
	root := dagNode(s, "root", leaf)
	v := &dagIndex{s: s, root: root}
	st, err := AnalyzeVersions(v, v, v)
	if err != nil {
		t.Fatal(err)
	}
	// Three identical versions: union is one copy, sum is three.
	if want := 1.0 - 1.0/3.0; st.DedupRatio() < want-1e-9 || st.DedupRatio() > want+1e-9 {
		t.Fatalf("dedup ratio = %v, want %v", st.DedupRatio(), want)
	}
}

func TestVersionSetStatsZeroSafe(t *testing.T) {
	var v VersionSetStats
	if v.DedupRatio() != 0 || v.NodeSharingRatio() != 0 {
		t.Fatal("zero-value stats must yield zero ratios")
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{Key: []byte("k"), Value: []byte("v")}
	if e.String() != fmt.Sprintf("%q=%q", "k", "v") {
		t.Fatalf("String = %s", e.String())
	}
}
