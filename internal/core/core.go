// Package core defines the Structurally Invariant and Reusable Index (SIRI)
// abstractions shared by every index in this repository: the common Index
// interface (lookup, update, diff, merge, proofs), entries, and the
// deduplication metrics from §4.2 and §5.4.2 of the paper.
//
// All indexes are immutable: mutating operations return a new Index value
// representing the new version, and versions share unmodified nodes through
// a content-addressed store (copy-on-write at node granularity).
package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/hash"
	"repro/internal/store"
)

// Entry is one key-value record.
type Entry struct {
	Key   []byte
	Value []byte
}

// String renders the entry for test failures and logs.
func (e Entry) String() string { return fmt.Sprintf("%q=%q", e.Key, e.Value) }

// Index is an immutable, tamper-evident key-value index — the common
// behaviour of MPT, MBT, POS-Tree and the MVMB+-Tree baseline. Mutating
// methods return the new version; the receiver remains valid and unchanged.
type Index interface {
	// Name identifies the index class (e.g. "POS-Tree") for reports.
	Name() string
	// Store returns the content-addressed store backing this index.
	Store() store.Store
	// RootHash returns the Merkle digest covering the entire state. Two
	// instances of a structurally invariant class with equal contents
	// have equal root hashes.
	RootHash() hash.Hash

	// Get returns the value stored under key.
	Get(key []byte) (value []byte, ok bool, err error)
	// Put returns a new version with key set to value.
	Put(key, value []byte) (Index, error)
	// PutBatch returns a new version with all entries applied. Later
	// duplicates of the same key win.
	PutBatch(entries []Entry) (Index, error)
	// Delete returns a new version without key. Deleting an absent key
	// returns the receiver unchanged.
	Delete(key []byte) (Index, error)

	// Iterate visits every entry. Ordered structures visit in key order;
	// MBT visits in bucket order. Return false from fn to stop early.
	Iterate(fn func(key, value []byte) bool) error
	// Count returns the number of entries.
	Count() (int, error)
	// PathLength returns the number of nodes traversed from the root to
	// the entry holding key (the lookup path length of Figure 9).
	PathLength(key []byte) (int, error)

	// Diff compares this version against another instance of the same
	// class sharing the same store, returning every record present in
	// only one side or differing between them (§4.1.3).
	Diff(other Index) ([]DiffEntry, error)

	// Prove returns a tamper-evidence proof for key; VerifyProof checks a
	// proof against a trusted root digest.
	Prove(key []byte) (*Proof, error)
	VerifyProof(root hash.Hash, proof *Proof) error
}

// DiffEntry reports one divergent key from Index.Diff. Left is the value in
// the receiver, Right the value in the argument; nil marks absence.
type DiffEntry struct {
	Key   []byte
	Left  []byte
	Right []byte
}

// Proof is a Merkle proof: the encodings of every node on the path from the
// root to the entry. Index.VerifyProof recomputes each digest and checks the
// links bottom-up, so any tampering with the value or the path is detected.
type Proof struct {
	Key   []byte
	Value []byte
	// Path holds node encodings from root (index 0) to the node
	// containing the entry.
	Path [][]byte
}

// Common errors.
var (
	// ErrConflict reports a merge conflict: a key updated to different
	// values on both sides.
	ErrConflict = errors.New("core: merge conflict")
	// ErrInvalidProof reports a proof that fails verification.
	ErrInvalidProof = errors.New("core: invalid proof")
	// ErrMissingNode reports a dangling hash: a node referenced but not
	// present in the store.
	ErrMissingNode = errors.New("core: node missing from store")
	// ErrTypeMismatch reports a Diff or Merge across different index
	// classes.
	ErrTypeMismatch = errors.New("core: index class mismatch")
	// ErrEmptyKey reports an empty or nil key, which no index accepts.
	ErrEmptyKey = errors.New("core: empty key")
	// ErrNotFound reports a proof request for an absent key.
	ErrNotFound = errors.New("core: key not found")
)

// SortEntries normalizes a batch into the canonical form every index
// commits: entries ordered by key, duplicate keys collapsed keeping the
// last occurrence (batch semantics: later writes win), and nil values
// replaced by empty ones so a nil-value put is indistinguishable from an
// empty-value put — Get reports the key present either way. Centralizing
// the normalization here keeps every PutBatch path agreeing on the same
// semantics instead of each index patching values ad hoc (MBT used to skip
// the nil rewrite and relied on the encoding collapsing nil and empty).
// The input slice is not modified; the result is freshly allocated. The
// indextest conformance suite asserts these semantics for every index.
func SortEntries(entries []Entry) []Entry {
	out := make([]Entry, len(entries))
	copy(out, entries)
	sort.SliceStable(out, func(i, j int) bool {
		return bytes.Compare(out[i].Key, out[j].Key) < 0
	})
	// Collapse duplicates keeping the last occurrence (stable sort keeps
	// input order within equal keys).
	w := 0
	for i := 0; i < len(out); i++ {
		if i+1 < len(out) && bytes.Equal(out[i].Key, out[i+1].Key) {
			continue
		}
		out[w] = out[i]
		if out[w].Value == nil {
			out[w].Value = []byte{}
		}
		w++
	}
	return out[:w]
}

// ValidateEntries rejects batches containing empty keys. Callers pair it
// with SortEntries: validate the caller's input, then commit the
// normalized form.
func ValidateEntries(entries []Entry) error {
	for i, e := range entries {
		if len(e.Key) == 0 {
			return fmt.Errorf("%w: entry %d", ErrEmptyKey, i)
		}
	}
	return nil
}

// ResolveFunc arbitrates a merge conflict for key, given the two conflicting
// values. It returns the value to keep.
type ResolveFunc func(key, left, right []byte) []byte

// TakeLeft resolves conflicts in favour of the receiver side.
func TakeLeft(_, left, _ []byte) []byte { return left }

// TakeRight resolves conflicts in favour of the argument side.
func TakeRight(_, _, right []byte) []byte { return right }

// Merge combines all records from both indexes (§4.1.4): it diffs the two
// versions and applies every record present only in right — or resolved by
// resolve when both sides hold different values — onto left. With a nil
// resolve, any conflict aborts with ErrConflict, matching the paper's
// semantics of interrupting the merge for user selection.
func Merge(left, right Index, resolve ResolveFunc) (Index, error) {
	diffs, err := left.Diff(right)
	if err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	var batch []Entry
	for _, d := range diffs {
		switch {
		case d.Left == nil: // right-only record: adopt it
			batch = append(batch, Entry{Key: d.Key, Value: d.Right})
		case d.Right == nil: // left-only record: already present
		default: // both sides differ: conflict
			if resolve == nil {
				return nil, fmt.Errorf("%w: key %q", ErrConflict, d.Key)
			}
			batch = append(batch, Entry{Key: d.Key, Value: resolve(d.Key, d.Left, d.Right)})
		}
	}
	if len(batch) == 0 {
		return left, nil
	}
	return left.PutBatch(batch)
}

// Merge3 performs a three-way merge of two versions derived from a common
// base. A key changed on only one side takes that side's value; a key
// changed on both sides to different values is a conflict.
func Merge3(base, left, right Index, resolve ResolveFunc) (Index, error) {
	leftDiffs, err := base.Diff(left)
	if err != nil {
		return nil, fmt.Errorf("merge3: %w", err)
	}
	rightDiffs, err := base.Diff(right)
	if err != nil {
		return nil, fmt.Errorf("merge3: %w", err)
	}
	// Index left-side changes by key. d.Right is the value in the derived
	// version (nil = deleted there).
	leftCh := make(map[string][]byte, len(leftDiffs))
	for _, d := range leftDiffs {
		leftCh[string(d.Key)] = d.Right
	}
	var batch []Entry
	var dels [][]byte
	for _, d := range rightDiffs {
		key := string(d.Key)
		lv, changedLeft := leftCh[key]
		rv := d.Right
		if !changedLeft {
			// Only right changed: adopt.
			if rv == nil {
				dels = append(dels, d.Key)
			} else {
				batch = append(batch, Entry{Key: d.Key, Value: rv})
			}
			continue
		}
		// Both changed.
		if bytes.Equal(lv, rv) {
			continue // converged on the same value (or both deleted)
		}
		if resolve == nil {
			return nil, fmt.Errorf("%w: key %q", ErrConflict, d.Key)
		}
		v := resolve(d.Key, lv, rv)
		if v == nil {
			dels = append(dels, d.Key)
		} else {
			batch = append(batch, Entry{Key: d.Key, Value: v})
		}
	}
	out := left
	if len(batch) > 0 {
		out, err = out.PutBatch(batch)
		if err != nil {
			return nil, err
		}
	}
	for _, k := range dels {
		out, err = out.Delete(k)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
