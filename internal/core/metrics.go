package core

import (
	"fmt"

	"repro/internal/hash"
)

// NodeWalker exposes the structural decoding every index class provides:
// given a node's canonical encoding, Refs returns the digests of its
// children. The deduplication metrics walk reachable node sets with it.
type NodeWalker interface {
	Refs(data []byte) ([]hash.Hash, error)
}

// Reach summarizes the node set reachable from one root.
type Reach struct {
	Nodes  int   // distinct nodes
	Bytes  int64 // total encoded bytes of those nodes
	Height int   // longest root-to-leaf path, in nodes
}

// Reachable walks the Merkle DAG from root, adding every reachable node and
// its encoded size to acc (hash → byte size). Nodes already in acc are not
// re-expanded, so repeated calls over shared versions cost only the novel
// pages. It returns the height of the walked subtree.
func Reachable(idx Index, w NodeWalker, root hash.Hash, acc map[hash.Hash]int) (height int, err error) {
	if root.IsNull() {
		return 0, nil
	}
	heights := make(map[hash.Hash]int)
	var visit func(h hash.Hash) (int, error)
	visit = func(h hash.Hash) (int, error) {
		if h.IsNull() {
			return 0, nil
		}
		if ht, ok := heights[h]; ok {
			return ht, nil
		}
		if _, done := acc[h]; done {
			// Walked by an earlier Reachable call sharing this acc (the
			// GC mark unioning several retained versions): the subtree is
			// already fully accumulated, so don't re-read it. The height
			// reported for a subtree pruned this way is 0; callers that
			// need exact heights pass a fresh acc (ReachStats does).
			return 0, nil
		}
		data, ok := idx.Store().Get(h)
		if !ok {
			return 0, fmt.Errorf("%w: %v", ErrMissingNode, h)
		}
		acc[h] = len(data)
		refs, err := w.Refs(data)
		if err != nil {
			return 0, err
		}
		maxChild := 0
		for _, r := range refs {
			ch, err := visit(r)
			if err != nil {
				return 0, err
			}
			if ch > maxChild {
				maxChild = ch
			}
		}
		heights[h] = maxChild + 1
		return maxChild + 1, nil
	}
	return visit(root)
}

// MarkReachable accumulates the node set reachable from root into acc
// (hash → encoded size), resolving idx's NodeWalker itself. It is the GC
// marking primitive: the collector calls it once per retained or pinned
// version with a single shared acc, so overlapping versions are walked
// once and acc converges on the union of their page sets.
func MarkReachable(idx Index, root hash.Hash, acc map[hash.Hash]int) error {
	w, ok := idx.(NodeWalker)
	if !ok {
		return fmt.Errorf("core: %s does not expose node refs", idx.Name())
	}
	_, err := Reachable(idx, w, root, acc)
	return err
}

// ReachStats walks one version and returns its node count, byte footprint
// and height.
func ReachStats(idx Index) (Reach, error) {
	w, ok := idx.(NodeWalker)
	if !ok {
		return Reach{}, fmt.Errorf("core: %s does not expose node refs", idx.Name())
	}
	acc := make(map[hash.Hash]int)
	h, err := Reachable(idx, w, idx.RootHash(), acc)
	if err != nil {
		return Reach{}, err
	}
	var bytes int64
	for _, sz := range acc {
		bytes += int64(sz)
	}
	return Reach{Nodes: len(acc), Bytes: bytes, Height: h}, nil
}

// VersionSetStats aggregates the paper's two sharing metrics over a set of
// index versions (instances of the same class over the same store).
type VersionSetStats struct {
	// UnionNodes and UnionBytes measure the deduplicated footprint
	// byte(P1 ∪ … ∪ Pk).
	UnionNodes int
	UnionBytes int64
	// SumNodes and SumBytes measure the footprint with no sharing,
	// byte(P1) + … + byte(Pk).
	SumNodes int
	SumBytes int64
}

// DedupRatio is η(S) = 1 − byte(∪Pᵢ) / Σ byte(Pᵢ)  (§4.2.1).
func (v VersionSetStats) DedupRatio() float64 {
	if v.SumBytes == 0 {
		return 0
	}
	return 1 - float64(v.UnionBytes)/float64(v.SumBytes)
}

// NodeSharingRatio is 1 − |∪Pᵢ| / Σ|Pᵢ|  (§5.4.2).
func (v VersionSetStats) NodeSharingRatio() float64 {
	if v.SumNodes == 0 {
		return 0
	}
	return 1 - float64(v.UnionNodes)/float64(v.SumNodes)
}

// AnalyzeVersions walks every version's reachable page set and returns the
// aggregate sharing statistics. All versions must be instances of the same
// index class over the same store.
func AnalyzeVersions(versions ...Index) (VersionSetStats, error) {
	var out VersionSetStats
	union := make(map[hash.Hash]int)
	for _, v := range versions {
		w, ok := v.(NodeWalker)
		if !ok {
			return out, fmt.Errorf("core: %s does not expose node refs", v.Name())
		}
		per := make(map[hash.Hash]int)
		if _, err := Reachable(v, w, v.RootHash(), per); err != nil {
			return out, err
		}
		for h, sz := range per {
			out.SumNodes++
			out.SumBytes += int64(sz)
			if _, seen := union[h]; !seen {
				union[h] = sz
				out.UnionNodes++
				out.UnionBytes += int64(sz)
			}
		}
	}
	return out, nil
}

// DedupRatio is a convenience wrapper over AnalyzeVersions.
func DedupRatio(versions ...Index) (float64, error) {
	st, err := AnalyzeVersions(versions...)
	if err != nil {
		return 0, err
	}
	return st.DedupRatio(), nil
}

// NodeSharingRatio is a convenience wrapper over AnalyzeVersions.
func NodeSharingRatio(versions ...Index) (float64, error) {
	st, err := AnalyzeVersions(versions...)
	if err != nil {
		return 0, err
	}
	return st.NodeSharingRatio(), nil
}
