package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/mpt"
	"repro/internal/store"
)

// buildOverlayFixture loads base entries into an MPT and layers overlay
// entries (values and tombstones) on top, returning the overlay view plus
// the oracle map of what should be visible.
func buildOverlayFixture(t *testing.T, baseN int, overlay []core.OverlayEntry) (*core.ReadOverlay, map[string][]byte) {
	t.Helper()
	s := store.NewMemStore()
	var idx core.Index = mpt.New(s)
	oracle := make(map[string][]byte)
	var batch []core.Entry
	for i := 0; i < baseN; i++ {
		k := fmt.Sprintf("key-%04d", i*2) // gaps for overlay-only keys
		v := fmt.Sprintf("base-%04d", i)
		batch = append(batch, core.Entry{Key: []byte(k), Value: []byte(v)})
		oracle[k] = []byte(v)
	}
	idx, err := idx.PutBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range overlay {
		if e.Tombstone {
			delete(oracle, string(e.Key))
		} else {
			oracle[string(e.Key)] = e.Value
		}
	}
	sort.Slice(overlay, func(i, j int) bool { return bytes.Compare(overlay[i].Key, overlay[j].Key) < 0 })
	return core.NewReadOverlay(idx, overlay), oracle
}

func TestReadOverlayGet(t *testing.T) {
	ov := []core.OverlayEntry{
		{Key: []byte("key-0001"), Value: []byte("overlay-new")},       // overlay-only key
		{Key: []byte("key-0004"), Value: []byte("overlay-shadow")},    // shadows base
		{Key: []byte("key-0006"), Tombstone: true},                    // masks base
		{Key: []byte("key-9999"), Value: []byte("overlay-past-base")}, // past base's last key
	}
	o, oracle := buildOverlayFixture(t, 10, ov)
	for k, want := range oracle {
		got, ok, err := o.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) = %q/%v, want %q", k, got, ok, want)
		}
	}
	// The tombstoned key is absent even though the base holds it.
	if _, ok, err := o.Get([]byte("key-0006")); err != nil || ok {
		t.Fatalf("tombstoned key visible through overlay (ok=%v err=%v)", ok, err)
	}
	if _, ok, _ := o.Get([]byte("absent")); ok {
		t.Fatal("absent key reported present")
	}
	if _, _, err := o.Get(nil); err == nil {
		t.Fatal("empty key accepted")
	}
	// A nil base serves the overlay alone.
	solo := core.NewReadOverlay(nil, []core.OverlayEntry{{Key: []byte("k"), Value: []byte("v")}})
	if got, ok, _ := solo.Get([]byte("k")); !ok || string(got) != "v" {
		t.Fatalf("nil-base Get = %q/%v", got, ok)
	}
	if _, ok, _ := solo.Get([]byte("other")); ok {
		t.Fatal("nil-base overlay invented a key")
	}
}

// TestReadOverlayRangeProperty randomizes base contents, overlay contents
// (values and tombstones, overlapping and not) and bounds, and checks the
// merged Range stream against a sorted oracle for every case.
func TestReadOverlayRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		var overlay []core.OverlayEntry
		seen := map[string]bool{}
		for i := 0; i < rng.Intn(30); i++ {
			k := fmt.Sprintf("key-%04d", rng.Intn(40))
			if seen[k] {
				continue
			}
			seen[k] = true
			e := core.OverlayEntry{Key: []byte(k)}
			if rng.Intn(3) == 0 {
				e.Tombstone = true
			} else {
				e.Value = []byte(fmt.Sprintf("ov-%d-%d", trial, i))
			}
			overlay = append(overlay, e)
		}
		o, oracle := buildOverlayFixture(t, rng.Intn(15), overlay)

		var lo, hi []byte
		if rng.Intn(4) > 0 {
			lo = []byte(fmt.Sprintf("key-%04d", rng.Intn(40)))
		}
		if rng.Intn(4) > 0 {
			hi = []byte(fmt.Sprintf("key-%04d", rng.Intn(40)))
		}

		var wantKeys []string
		for k := range oracle {
			if core.InRange([]byte(k), lo, hi) {
				wantKeys = append(wantKeys, k)
			}
		}
		sort.Strings(wantKeys)

		var gotKeys []string
		err := o.Range(lo, hi, func(k, v []byte) bool {
			gotKeys = append(gotKeys, string(k))
			if want := oracle[string(k)]; !bytes.Equal(v, want) {
				t.Fatalf("trial %d: Range(%q,%q) key %q = %q, want %q", trial, lo, hi, k, v, want)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("trial %d: Range(%q,%q) visited %v, want %v", trial, lo, hi, gotKeys, wantKeys)
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("trial %d: Range(%q,%q) visited %v, want %v", trial, lo, hi, gotKeys, wantKeys)
			}
		}
	}
}

func TestReadOverlayRangeEarlyStop(t *testing.T) {
	ov := []core.OverlayEntry{
		{Key: []byte("key-0001"), Value: []byte("a")},
		{Key: []byte("key-0003"), Value: []byte("b")},
	}
	o, _ := buildOverlayFixture(t, 8, ov)
	for _, stopAfter := range []int{1, 2, 3, 5} {
		n := 0
		last := ""
		err := o.Range(nil, nil, func(k, _ []byte) bool {
			if last != "" && string(k) <= last {
				t.Fatalf("keys not ascending: %q after %q", k, last)
			}
			last = string(k)
			n++
			return n < stopAfter
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != stopAfter {
			t.Fatalf("early stop after %d visited %d", stopAfter, n)
		}
	}
}

func TestReadOverlayCount(t *testing.T) {
	ov := []core.OverlayEntry{
		{Key: []byte("key-0000"), Tombstone: true},          // -1 from base
		{Key: []byte("key-0002"), Value: []byte("shadow")},  // +0 (shadows)
		{Key: []byte("key-0111"), Value: []byte("overlay")}, // +1 (new)
	}
	o, oracle := buildOverlayFixture(t, 6, ov)
	n, err := o.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(oracle) {
		t.Fatalf("Count = %d, want %d", n, len(oracle))
	}
	if o.OverlayLen() != 3 {
		t.Fatalf("OverlayLen = %d, want 3", o.OverlayLen())
	}
}
