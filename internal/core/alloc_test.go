package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// allocFixture builds one warmed index of the given class over a MemStore:
// 400 resident entries, every key read once so the decoded-node caches hold
// the whole structure.
func allocFixture(t *testing.T, class string) (core.Index, [][]byte) {
	t.Helper()
	idx, err := indexOverFull(class, store.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]core.Entry, 400)
	keys := make([][]byte, len(entries))
	for i := range entries {
		entries[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("alloc-key-%05d", i)),
			Value: []byte(fmt.Sprintf("alloc-value-%05d", i)),
		}
		keys[i] = entries[i].Key
	}
	loaded, err := idx.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok, err := loaded.Get(k); err != nil || !ok {
			t.Fatalf("warmup Get(%q): ok=%v err=%v", k, ok, err)
		}
	}
	return loaded, keys
}

// TestGetAllocsFree pins the read path's headline property: once the
// decoded-node caches are warm, Get allocates nothing, for every index
// class. The zero-copy decode contract (values alias stored bytes), the
// cached decodings, and the stack nibble scratch in MPT each contribute; a
// regression in any of them shows up here as a nonzero allocs/op.
func TestGetAllocsFree(t *testing.T) {
	for _, class := range parallelClasses {
		t.Run(class, func(t *testing.T) {
			idx, keys := allocFixture(t, class)
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				k := keys[i%len(keys)]
				i++
				if _, ok, err := idx.Get(k); err != nil || !ok {
					panic("warm Get failed")
				}
			})
			if allocs != 0 {
				t.Errorf("%s: warm Get allocates %.2f objects/op, want 0", class, allocs)
			}
		})
	}
}

// TestRangeAllocsBounded is the companion regression bound for ordered
// scans: a warm 32-entry Range must stay within a per-class allocation
// budget. The ordered B+-style trees (POS-Tree, MVMB+-Tree, Prolly) scan
// with O(levels) cursor state regardless of entries visited; MPT must
// reassemble every emitted key from nibbles and MBT merge-sorts bucket
// runs, so their cost is inherently per-entry and their budgets reflect
// that. The bounds are ~50% above current measurements: they catch a path
// regressing to a new allocation class, not bookkeeping jitter.
func TestRangeAllocsBounded(t *testing.T) {
	budgets := map[string]float64{
		"MPT":         170, // ~3.5 allocs per emitted key (nibble reassembly)
		"MBT":         250, // sorted merge across hashed buckets
		"POS-Tree":    16,
		"MVMB+-Tree":  16,
		"Prolly-Tree": 16,
	}
	for _, class := range parallelClasses {
		t.Run(class, func(t *testing.T) {
			budget := budgets[class]
			idx, keys := allocFixture(t, class)
			lo := keys[100]
			hi := keys[132]
			// Warm the range path itself once.
			if err := core.RangeOf(idx, lo, hi, func(_, _ []byte) bool { return true }); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				n := 0
				if err := core.RangeOf(idx, lo, hi, func(_, _ []byte) bool {
					n++
					return true
				}); err != nil || n != 32 {
					panic(fmt.Sprintf("warm Range visited %d entries, err=%v", n, err))
				}
			})
			t.Logf("%s: warm 32-entry Range: %.1f allocs/op (budget %.0f)", class, allocs, budget)
			if allocs > budget {
				t.Errorf("%s: warm Range allocates %.1f objects/op, budget %.0f", class, allocs, budget)
			}
		})
	}
}
