package core

import "sync"

// FanOut runs fn(i) for every i in [0, n) across at most workers
// concurrent goroutines and returns when all calls have. With workers <= 1
// or a single item it degrades to an inline loop, so callers need no serial
// special case. It is the index packages' helper for
// committing independent dirty subtrees concurrently: each fn stages into a
// (concurrency-safe) StagedWriter, and the caller combines the results
// after the join.
//
// fn must be safe for concurrent invocation with distinct i; any error or
// result plumbing happens through the closure (e.g. a pre-sized results
// slice, one slot per i).
func FanOut(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// One goroutine per item, bounded by a semaphore: commit fan-outs are
	// small (a node's children), so per-item goroutines are cheaper than a
	// work-stealing queue and keep unequal subtree sizes from idling
	// workers.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}
