package indextest

import (
	"fmt"

	"repro/internal/core"
)

// GoldenEntries is the fixed entry set behind the golden root-hash vectors:
// 96 entries with deterministic keys and values, including an empty value
// and keys sharing long prefixes (so the MPT exercises extension splits and
// the chunked trees exercise multi-node layouts).
func GoldenEntries() []core.Entry {
	out := make([]core.Entry, 0, 96)
	for i := 0; i < 94; i++ {
		out = append(out, core.Entry{
			Key:   []byte(fmt.Sprintf("golden/%04d", i*7)),
			Value: []byte(fmt.Sprintf("payload-%04d-%s", i, string(rune('a'+i%26)))),
		})
	}
	out = append(out,
		core.Entry{Key: []byte("golden/empty-value"), Value: []byte{}},
		core.Entry{Key: []byte("zzz-last"), Value: []byte("tail")},
	)
	return out
}

// CanonicalRoots maps suite names to the expected hex root digest after
// bulk-loading GoldenEntries() into an empty index built with the canonical
// conformance configuration (the one each package's conformance test
// passes):
//
//	MPT          no parameters
//	MBT          Capacity 64, Fanout 8
//	POS-Tree     postree.ConfigForNodeSize(512)
//	MVMB+-Tree   mvmbt.ConfigForNodeSize(512)
//	Prolly-Tree  prolly.ConfigForNodeSize(512)
//
// These digests pin the canonical node encodings: any change to an
// encoding, a chunking rule or the hash function shows up as a loud
// mismatch in every backend's GoldenRoot subtest. An intentional format
// change must update these vectors in the same commit.
var CanonicalRoots = map[string]string{
	"MPT":         "332466ec49e9d0bee90a3bcb7fc0fa783f0edf934d05082b291290b98d96af49",
	"MBT":         "11adcb245f0f52ede7c528d162461ab8d9c129027ae2a38fc5dfc9425fe5455f",
	"POS-Tree":    "2f8d2cb526953f525843daf60314a1a67e73fee7b1823a31c8426a7b3f4f9c66",
	"MVMB+-Tree":  "2e53ed8822ffa52a95031ceee1ab770cd7fe419343e245fca0319867d823c5f8",
	"Prolly-Tree": "45e6074bcb9aa0865382bf3121fff3aa196ec7d45ca156ccdbbc5ea87953c00b",
}
