// Package indextest provides the conformance suite every core.Index
// implementation must pass — the index-level sibling of store/storetest.
// An index package wires itself in with one call:
//
//	indextest.RunIndexTests(t, "MPT", indextest.Options{
//		New: func(s store.Store) (core.Index, error) { return mpt.New(s), nil },
//		...
//	})
//
// The suite pins down the behavioural contract the experiments and the
// paper's claims rely on — put/get/delete against a map oracle, batch
// semantics (duplicate keys collapse last-wins, nil values normalize to
// empty), Iterate ordering, the core.Ranger bound semantics with a
// property-based oracle check, diff/merge, proof verification, replay
// determinism, structural invariance, golden root-hash vectors, and a
// node-read-count assertion that bounded scans actually prune — and runs
// all of it against every store backend (mem, sharded, disk, cached).
// Run under -race to make the backend dimension meaningful.
package indextest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/version"
)

// Options describes one index class to the suite.
type Options struct {
	// New builds an empty index over s. Required.
	New func(s store.Store) (core.Index, error)
	// Reopen returns a fresh view of idx's current root over the same
	// store with cold decoded-node caches (the package's Load entry
	// point). Required for the pruning assertion; nil skips the tests
	// that need a cold view.
	Reopen func(s store.Store, idx core.Index) (core.Index, error)
	// OrderedIterate marks indexes whose Iterate visits keys in ascending
	// order (everything except the hash-partitioned MBT).
	OrderedIterate bool
	// PrunedRange marks indexes whose Range reads only the nodes
	// overlapping the bounds. Hash-partitioned structures cannot prune —
	// their Range stays correct and ordered but visits every bucket — so
	// they leave this false and skip the node-read assertion.
	PrunedRange bool
	// StructurallyInvariant marks the SIRI candidates: the root hash
	// depends only on the final contents, never on the update history.
	// The MVMB+-Tree baseline leaves it false (the paper's Figure 2).
	StructurallyInvariant bool
	// GoldenRoot is the expected hex root digest after bulk-loading
	// GoldenEntries() into a fresh index. Empty falls back to the
	// CanonicalRoots table keyed by the suite name; set it explicitly when
	// testing a non-canonical configuration, or to "-" to skip.
	GoldenRoot string
	// Loader reattaches to a committed root with the same configuration
	// New uses — the version.Loader the class registers with a repo. Nil
	// skips the secondary-maintenance case, which commits and reopens
	// tables through a version.Repo.
	Loader version.Loader
}

// RunIndexTests runs the full conformance battery for the index class named
// name against every store backend.
func RunIndexTests(t *testing.T, name string, opts Options) {
	t.Helper()
	if opts.New == nil {
		t.Fatal("indextest: Options.New is required")
	}
	cases := []struct {
		name string
		fn   func(*testing.T, string, Options, storeFactory)
	}{
		{"Empty", testEmpty},
		{"PutGetDelete", testPutGetDelete},
		{"EmptyKeyRejected", testEmptyKeyRejected},
		{"BatchSemantics", testBatchSemantics},
		{"IterateOrdering", testIterateOrdering},
		{"RangeBounds", testRangeBounds},
		{"RangeEarlyStop", testRangeEarlyStop},
		{"RangeOracleProperty", testRangeOracleProperty},
		{"RangeOfFallback", testRangeOfFallback},
		{"DiffMerge", testDiffMerge},
		{"Proofs", testProofs},
		{"ReplayDeterminism", testReplayDeterminism},
		{"StructuralInvariance", testStructuralInvariance},
		{"GoldenRoot", testGoldenRoot},
		{"RangePruning", testRangePruning},
		{"SecondaryMaintenance", testSecondaryMaintenance},
	}
	for _, be := range backends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) { tc.fn(t, name, opts, be.open) })
			}
		})
	}
}

// storeFactory opens one fresh store per (sub)test, registering any cleanup
// with t.
type storeFactory func(t *testing.T) store.Store

// backends enumerates the store backends the suite crosses every index
// with — the same four the storetest suite certifies.
func backends() []struct {
	name string
	open storeFactory
} {
	return []struct {
		name string
		open storeFactory
	}{
		{"mem", func(t *testing.T) store.Store { return store.NewMemStore() }},
		{"sharded", func(t *testing.T) store.Store { return store.NewShardedStore(0) }},
		{"disk", func(t *testing.T) store.Store {
			s, err := store.Open(store.Config{Backend: store.BackendDisk, Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("open disk store: %v", err)
			}
			t.Cleanup(func() { store.Release(s) })
			return s
		}},
		{"cached", func(t *testing.T) store.Store {
			return store.NewCachedStore(store.NewMemStore(), 1<<20)
		}},
	}
}

// newIndex builds a fresh empty index for one subtest.
func newIndex(t *testing.T, opts Options, open storeFactory) core.Index {
	t.Helper()
	idx, err := opts.New(open(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx
}

// entrySet builds n deterministic entries with distinct sortable keys.
func entrySet(n int) []core.Entry {
	out := make([]core.Entry, n)
	for i := range out {
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("key-%05d", i*3)), // gaps leave room for between-key bounds
			Value: []byte(fmt.Sprintf("value-%05d", i)),
		}
	}
	return out
}

// sortedKeys returns the keys of a string oracle in ascending order.
func sortedKeys(oracle map[string]string) []string {
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectRange runs Range and gathers the emissions as copied pairs.
func collectRange(t *testing.T, idx core.Index, lo, hi []byte) []core.Entry {
	t.Helper()
	r, ok := idx.(core.Ranger)
	if !ok {
		t.Fatalf("%s does not implement core.Ranger", idx.Name())
	}
	var got []core.Entry
	if err := r.Range(lo, hi, func(k, v []byte) bool {
		got = append(got, core.Entry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		return true
	}); err != nil {
		t.Fatalf("Range(%q, %q): %v", lo, hi, err)
	}
	return got
}

// expectRange computes the oracle answer for [lo, hi) in ascending order.
func expectRange(oracle map[string]string, lo, hi []byte) []core.Entry {
	var out []core.Entry
	for _, k := range sortedKeys(oracle) {
		if core.InRange([]byte(k), lo, hi) {
			out = append(out, core.Entry{Key: []byte(k), Value: []byte(oracle[k])})
		}
	}
	return out
}

// checkRange asserts a Range result equals the oracle answer exactly,
// including order.
func checkRange(t *testing.T, label string, got, want []core.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("%s: entry %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func testEmpty(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	if n, err := idx.Count(); err != nil || n != 0 {
		t.Fatalf("Count on empty = %d, %v", n, err)
	}
	if _, ok, err := idx.Get([]byte("absent")); err != nil || ok {
		t.Fatalf("Get on empty = %v, %v", ok, err)
	}
	if err := idx.Iterate(func(_, _ []byte) bool { t.Fatal("Iterate visited an entry"); return false }); err != nil {
		t.Fatalf("Iterate on empty: %v", err)
	}
	if got := collectRange(t, idx, nil, nil); len(got) != 0 {
		t.Fatalf("Range on empty returned %d entries", len(got))
	}
	next, err := idx.Delete([]byte("absent"))
	if err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
	if next.RootHash() != idx.RootHash() {
		t.Fatal("Delete of an absent key changed the root")
	}
}

func testPutGetDelete(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	oracle := map[string]string{}
	var err error
	for i := 0; i < 60; i++ {
		k, v := fmt.Sprintf("pgd-%03d", i%40), fmt.Sprintf("v%d", i) // i%40 forces updates
		if idx, err = idx.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		oracle[k] = v
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("pgd-%03d", i*4)
		if idx, err = idx.Delete([]byte(k)); err != nil {
			t.Fatalf("Delete(%s): %v", k, err)
		}
		delete(oracle, k)
	}
	for k, want := range oracle {
		v, ok, err := idx.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v, %v; want %q", k, v, ok, err, want)
		}
	}
	if n, err := idx.Count(); err != nil || n != len(oracle) {
		t.Fatalf("Count = %d, %v; oracle has %d", n, err, len(oracle))
	}
	if pl, err := idx.PathLength([]byte("pgd-001")); err != nil || pl < 1 {
		t.Fatalf("PathLength = %d, %v", pl, err)
	}
}

func testEmptyKeyRejected(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	if _, _, err := idx.Get(nil); err == nil {
		t.Fatal("Get(nil key) succeeded")
	}
	if _, err := idx.Put(nil, []byte("v")); err == nil {
		t.Fatal("Put(nil key) succeeded")
	}
	if _, err := idx.Delete([]byte{}); err == nil {
		t.Fatal("Delete(empty key) succeeded")
	}
	if _, err := idx.PutBatch([]core.Entry{{Key: []byte("ok"), Value: []byte("v")}, {Key: nil}}); err == nil {
		t.Fatal("PutBatch with an empty key succeeded")
	}
}

// testBatchSemantics asserts the canonical batch contract SortEntries
// implements: later duplicates win, nil values read back as present empty
// values, and an empty batch returns the receiver unchanged.
func testBatchSemantics(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	idx2, err := idx.PutBatch(nil)
	if err != nil {
		t.Fatalf("PutBatch(nil): %v", err)
	}
	if idx2.RootHash() != idx.RootHash() {
		t.Fatal("empty batch changed the root")
	}

	batch := []core.Entry{
		{Key: []byte("dup"), Value: []byte("first")},
		{Key: []byte("solo"), Value: []byte("only")},
		{Key: []byte("dup"), Value: []byte("second")},
		{Key: []byte("nilval"), Value: nil},
		{Key: []byte("dup"), Value: []byte("last")},
	}
	idx, err = idx.PutBatch(batch)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if v, ok, err := idx.Get([]byte("dup")); err != nil || !ok || string(v) != "last" {
		t.Fatalf("duplicate key: Get = %q, %v, %v; want the last occurrence", v, ok, err)
	}
	if v, ok, err := idx.Get([]byte("nilval")); err != nil || !ok || len(v) != 0 {
		t.Fatalf("nil value: Get = %q, %v, %v; want present and empty", v, ok, err)
	}
	if n, err := idx.Count(); err != nil || n != 3 {
		t.Fatalf("Count = %d, %v; want 3", n, err)
	}

	// A nil-value put must be indistinguishable from an empty-value put.
	a := newIndex(t, opts, open)
	b := newIndex(t, opts, open)
	if a, err = a.PutBatch([]core.Entry{{Key: []byte("k"), Value: nil}}); err != nil {
		t.Fatal(err)
	}
	if b, err = b.PutBatch([]core.Entry{{Key: []byte("k"), Value: []byte{}}}); err != nil {
		t.Fatal(err)
	}
	if a.RootHash() != b.RootHash() {
		t.Fatal("nil-value and empty-value batches produced different roots")
	}
}

func testIterateOrdering(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	entries := entrySet(120)
	// Load in shuffled order so ordering cannot be an insertion artifact.
	shuffled := append([]core.Entry(nil), entries...)
	rng := rand.New(rand.NewSource(11))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	idx, err := idx.PutBatch(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]byte
	if err := idx.Iterate(func(k, _ []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	}); err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	if len(keys) != len(entries) {
		t.Fatalf("Iterate visited %d keys, want %d", len(keys), len(entries))
	}
	if opts.OrderedIterate {
		for i := 1; i < len(keys); i++ {
			if bytes.Compare(keys[i-1], keys[i]) >= 0 {
				t.Fatalf("Iterate out of order at %d: %q then %q", i, keys[i-1], keys[i])
			}
		}
	}
	// Early stop: fn false after k visits means exactly k visits.
	visits := 0
	if err := idx.Iterate(func(_, _ []byte) bool { visits++; return visits < 7 }); err != nil {
		t.Fatal(err)
	}
	if visits != 7 {
		t.Fatalf("early-stopped Iterate visited %d entries, want 7", visits)
	}
}

// testRangeBounds drives the half-open [lo, hi) contract through its corner
// cases: nil bounds, bounds between keys, exact keys, inverted and
// degenerate intervals, and bounds beyond either end.
func testRangeBounds(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	entries := entrySet(50) // keys key-00000, key-00003, ... key-00147
	idx, err := idx.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[string]string{}
	for _, e := range entries {
		oracle[string(e.Key)] = string(e.Value)
	}
	k := func(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }
	cases := []struct {
		label  string
		lo, hi []byte
	}{
		{"full", nil, nil},
		{"fromStart", nil, k(60)},
		{"toEnd", k(60), nil},
		{"interior", k(30), k(90)},
		{"exactKeys", k(33), k(36)},   // lo present, hi present: [lo, hi) holds exactly lo
		{"betweenKeys", k(31), k(95)}, // neither bound exists
		{"singleKey", k(42), k(43)},
		{"emptyInterior", k(31), k(32)}, // between two adjacent keys
		{"loEqualsHi", k(30), k(30)},
		{"inverted", k(90), k(30)},
		{"beforeAll", []byte("aaa"), []byte("abc")},
		{"afterAll", []byte("zzz"), nil},
		{"coverAll", []byte("a"), []byte("z")},
		{"emptyHi", k(30), []byte{}},
		{"emptyLo", []byte{}, k(9)},
	}
	for _, tc := range cases {
		got := collectRange(t, idx, tc.lo, tc.hi)
		checkRange(t, tc.label, got, expectRange(oracle, tc.lo, tc.hi))
	}
}

func testRangeEarlyStop(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	idx, err := idx.PutBatch(entrySet(40))
	if err != nil {
		t.Fatal(err)
	}
	r := idx.(core.Ranger)
	visits := 0
	var last []byte
	if err := r.Range(nil, nil, func(k, _ []byte) bool {
		visits++
		last = append([]byte(nil), k...)
		return visits < 5
	}); err != nil {
		t.Fatal(err)
	}
	if visits != 5 {
		t.Fatalf("early-stopped Range visited %d entries, want 5", visits)
	}
	// The five visited entries are the five smallest keys.
	want := []byte(fmt.Sprintf("key-%05d", 4*3))
	if !bytes.Equal(last, want) {
		t.Fatalf("fifth Range key = %q, want %q", last, want)
	}
}

// testRangeOracleProperty is the randomized half of the contract: random
// entry sets, random bounds (drawn both from existing keys and from thin
// air), Range must equal the filtered sorted oracle exactly.
func testRangeOracleProperty(t *testing.T, _ string, opts Options, open storeFactory) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		idx := newIndex(t, opts, open)
		oracle := map[string]string{}
		n := 40 + rng.Intn(160)
		batch := make([]core.Entry, 0, n)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("%04x", rng.Intn(0xFFFF))
			v := fmt.Sprintf("v%d-%d", round, i)
			batch = append(batch, core.Entry{Key: []byte(k), Value: []byte(v)})
			oracle[k] = v
		}
		// Duplicates inside the batch: the oracle map naturally keeps the
		// last, and so must the index.
		idx, err := idx.PutBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		bound := func() []byte {
			switch rng.Intn(4) {
			case 0:
				return nil
			case 1: // an existing key
				return batch[rng.Intn(len(batch))].Key
			default: // arbitrary point in the space
				return []byte(fmt.Sprintf("%04x", rng.Intn(0xFFFF)))
			}
		}
		for trial := 0; trial < 25; trial++ {
			lo, hi := bound(), bound()
			got := collectRange(t, idx, lo, hi)
			checkRange(t, fmt.Sprintf("round %d trial %d [%q,%q)", round, trial, lo, hi),
				got, expectRange(oracle, lo, hi))
		}
	}
}

// iterOnly hides the Ranger capability so RangeOf exercises its fallback.
type iterOnly struct{ core.Index }

// testRangeOfFallback pins the generic Iterate-based fallback to the native
// Range: same bounds, same ordered result.
func testRangeOfFallback(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	idx, err := idx.PutBatch(entrySet(60))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := []byte("key-00030"), []byte("key-00120")
	native := collectRange(t, idx, lo, hi)
	var fallback []core.Entry
	if err := core.RangeOf(iterOnly{idx}, lo, hi, func(k, v []byte) bool {
		fallback = append(fallback, core.Entry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		return true
	}); err != nil {
		t.Fatalf("RangeOf fallback: %v", err)
	}
	checkRange(t, "fallback vs native", fallback, native)
}

func testDiffMerge(t *testing.T, _ string, opts Options, open storeFactory) {
	s := open(t)
	base, err := opts.New(s)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := base.PutBatch(entrySet(30))
	if err != nil {
		t.Fatal(err)
	}
	left, err := idx.Put([]byte("left-only"), []byte("L"))
	if err != nil {
		t.Fatal(err)
	}
	right, err := idx.Put([]byte("right-only"), []byte("R"))
	if err != nil {
		t.Fatal(err)
	}
	right, err = right.Put([]byte("key-00000"), []byte("changed"))
	if err != nil {
		t.Fatal(err)
	}

	diffs, err := left.Diff(right)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	byKey := map[string]core.DiffEntry{}
	for _, d := range diffs {
		byKey[string(d.Key)] = d
	}
	if len(diffs) != 3 {
		t.Fatalf("Diff returned %d entries, want 3: %v", len(diffs), diffs)
	}
	if d := byKey["left-only"]; string(d.Left) != "L" || d.Right != nil {
		t.Fatalf("left-only diff = %+v", d)
	}
	if d := byKey["right-only"]; d.Left != nil || string(d.Right) != "R" {
		t.Fatalf("right-only diff = %+v", d)
	}
	if d := byKey["key-00000"]; string(d.Left) != "value-00000" || string(d.Right) != "changed" {
		t.Fatalf("changed-key diff = %+v", d)
	}

	merged, err := core.Merge(left, right, core.TakeRight)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for k, want := range map[string]string{
		"left-only": "L", "right-only": "R", "key-00000": "changed",
	} {
		v, ok, err := merged.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("merged Get(%s) = %q, %v, %v; want %q", k, v, ok, err, want)
		}
	}
}

func testProofs(t *testing.T, _ string, opts Options, open storeFactory) {
	idx := newIndex(t, opts, open)
	idx, err := idx.PutBatch(entrySet(40))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("key-00030")
	proof, err := idx.Prove(key)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := idx.VerifyProof(idx.RootHash(), proof); err != nil {
		t.Fatalf("VerifyProof of an honest proof: %v", err)
	}
	// Tampering with the value must break verification.
	tampered := *proof
	tampered.Value = append([]byte(nil), proof.Value...)
	tampered.Value[0] ^= 0xFF
	if err := idx.VerifyProof(idx.RootHash(), &tampered); err == nil {
		t.Fatal("VerifyProof accepted a tampered value")
	}
	// A proof verified against the wrong root must fail too.
	other, err := idx.Put([]byte("key-00030"), []byte("rewritten"))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.VerifyProof(other.RootHash(), proof); err == nil {
		t.Fatal("VerifyProof accepted a stale proof against a new root")
	}
	if _, err := idx.Prove([]byte("no-such-key")); err == nil {
		t.Fatal("Prove of an absent key succeeded")
	}
}

// testReplayDeterminism holds for every index, history-dependent or not:
// two replicas applying the identical operation sequence agree on every
// intermediate root.
func testReplayDeterminism(t *testing.T, _ string, opts Options, open storeFactory) {
	a := newIndex(t, opts, open)
	b := newIndex(t, opts, open)
	rng := rand.New(rand.NewSource(23))
	var err error
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("rd-%03d", rng.Intn(40)))
		switch rng.Intn(3) {
		case 0:
			v := []byte(fmt.Sprintf("v%d", i))
			if a, err = a.Put(k, v); err != nil {
				t.Fatal(err)
			}
			if b, err = b.Put(k, v); err != nil {
				t.Fatal(err)
			}
		case 1:
			if a, err = a.Delete(k); err != nil {
				t.Fatal(err)
			}
			if b, err = b.Delete(k); err != nil {
				t.Fatal(err)
			}
		default:
			batch := []core.Entry{
				{Key: k, Value: []byte(fmt.Sprintf("b%d", i))},
				{Key: []byte(fmt.Sprintf("rd-%03d", rng.Intn(40))), Value: []byte("x")},
			}
			if a, err = a.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
			if b, err = b.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		if a.RootHash() != b.RootHash() {
			t.Fatalf("replicas diverged after op %d", i)
		}
	}
}

// testStructuralInvariance is the stronger property only the SIRI
// candidates hold: an index grown through per-op history hashes identically
// to one bulk-loaded with the final contents.
func testStructuralInvariance(t *testing.T, _ string, opts Options, open storeFactory) {
	if !opts.StructurallyInvariant {
		t.Skip("index class is history-dependent by design")
	}
	grown := newIndex(t, opts, open)
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(31))
	var err error
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("si-%03d", rng.Intn(50))
		if rng.Intn(4) == 0 {
			if grown, err = grown.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
			continue
		}
		v := fmt.Sprintf("v%d", i)
		if grown, err = grown.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = v
	}
	final := make([]core.Entry, 0, len(oracle))
	for _, k := range sortedKeys(oracle) {
		final = append(final, core.Entry{Key: []byte(k), Value: []byte(oracle[k])})
	}
	fresh := newIndex(t, opts, open)
	if fresh, err = fresh.PutBatch(final); err != nil {
		t.Fatal(err)
	}
	if grown.RootHash() != fresh.RootHash() {
		t.Fatalf("structural invariance violated: grown %v != bulk %v",
			grown.RootHash(), fresh.RootHash())
	}
}

// testGoldenRoot pins the byte-level encoding: a fixed entry set must hash
// to the committed digest, so accidental encoding changes fail loudly.
func testGoldenRoot(t *testing.T, name string, opts Options, open storeFactory) {
	want := opts.GoldenRoot
	if want == "" {
		want = CanonicalRoots[name]
	}
	if want == "" || want == "-" {
		t.Skip("no golden root committed for this configuration")
	}
	idx := newIndex(t, opts, open)
	idx, err := idx.PutBatch(GoldenEntries())
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.RootHash().Hex(); got != want {
		t.Fatalf("golden root mismatch: got %s, want %s\n(an intentional encoding change must update the committed vector)", got, want)
	}
}

// testRangePruning is the acceptance assertion for the ordered indexes: a
// narrow scan over a cold view must read a small fraction of the
// structure's nodes — o(total), not a filtered full scan. Node reads are
// measured with store.CountingStore, the same counter the planner honesty
// battery (internal/query/plantest) builds on.
func testRangePruning(t *testing.T, _ string, opts Options, open storeFactory) {
	if !opts.PrunedRange {
		t.Skip("index class cannot prune range scans (hash-partitioned)")
	}
	if opts.Reopen == nil {
		t.Skip("no Reopen hook; cannot build a cold view")
	}
	cs := store.NewCountingStore(open(t))
	idx, err := opts.New(cs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	entries := make([]core.Entry, n)
	for i := range entries {
		entries[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("prune-%06d", i)),
			Value: bytes.Repeat([]byte{byte(i)}, 60+i%40),
		}
	}
	idx, err = idx.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	total := cs.Stats().UniqueNodes
	if total < 20 {
		t.Fatalf("dataset produced only %d nodes; the assertion would be vacuous", total)
	}

	// A cold view: fresh decoded-node caches, every node visit hits the
	// store and therefore the counter.
	cold, err := opts.Reopen(cs, idx)
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if cold.RootHash() != idx.RootHash() {
		t.Fatal("Reopen changed the root")
	}
	lo, hi := entries[600].Key, entries[612].Key
	before := cs.NodeReads()
	got := collectRange(t, cold, lo, hi)
	reads := cs.NodeReads() - before
	if len(got) != 612-600 {
		t.Fatalf("narrow scan returned %d entries, want %d", len(got), 612-600)
	}
	if reads == 0 {
		t.Fatal("narrow scan read no nodes; the counter is not wired up")
	}
	if reads*5 > total {
		t.Fatalf("narrow scan read %d of %d nodes (> 20%%); Range is not pruning", reads, total)
	}
}
