package indextest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/secondary"
	"repro/internal/version"
)

// groupExtract is the derived attribute the maintenance oracle indexes:
// the value prefix before '|'. Rows without one stay unindexed, so the
// partial-index transitions (row enters/leaves the index on update) are
// part of the randomized walk.
func groupExtract(_, value []byte) ([]byte, bool) {
	i := bytes.IndexByte(value, '|')
	if i < 0 {
		return nil, false
	}
	return value[:i], true
}

// checkSecondaryOracle compares the table's primary and secondary against
// the map oracle and its derived projection.
func checkSecondaryOracle(t *testing.T, tbl *secondary.Table, rows map[string]string) {
	t.Helper()
	n := 0
	if err := tbl.Primary().Iterate(func(k, v []byte) bool {
		n++
		if want, ok := rows[string(k)]; !ok || string(v) != want {
			t.Fatalf("primary row %q = %q, oracle %q (present %v)", k, v, want, ok)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("primary holds %d rows, oracle %d", n, len(rows))
	}

	want := make(map[string]bool)
	for pk, v := range rows {
		if av, ok := groupExtract([]byte(pk), []byte(v)); ok {
			want[string(av)+"\x1F"+pk] = true
		}
	}
	sec, ok := tbl.Secondary("group")
	if !ok {
		t.Fatal("secondary \"group\" missing")
	}
	got := 0
	if err := sec.Iterate(func(k, _ []byte) bool {
		attr, av, pk, err := secondary.DecodeKey(k)
		if err != nil {
			t.Fatalf("DecodeKey(%x): %v", k, err)
		}
		if attr != "group" || !want[string(av)+"\x1F"+string(pk)] {
			t.Fatalf("secondary holds stale derived key (%q,%x,%q)", attr, av, pk)
		}
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("secondary holds %d derived keys, oracle %d", got, len(want))
	}
}

// testSecondaryMaintenance is the secondary-index sibling of the CRUD
// oracle case: randomized Put/Delete/PutBatch through a secondary.Table
// with this class backing both primary and secondary, checked against a
// map oracle of derived keys — consistent after interleaved commits,
// after reopening the table from a fresh repo over the same store, and
// after one GC pass down to the latest head.
func testSecondaryMaintenance(t *testing.T, _ string, opts Options, open storeFactory) {
	if opts.Loader == nil {
		t.Skip("no Loader hook; secondary maintenance needs version checkout")
	}
	s := open(t)
	probe, err := opts.New(s)
	if err != nil {
		t.Fatal(err)
	}
	repo := version.NewRepo(s)
	repo.RegisterLoader(probe.Name(), opts.Loader)
	def := secondary.Def{Attr: "group", Extract: groupExtract, New: opts.New}
	tbl, err := secondary.Open(repo, "main", opts.New, def)
	if err != nil {
		t.Fatal(err)
	}

	rows := make(map[string]string)
	rng := rand.New(rand.NewSource(41))
	value := func() string {
		if rng.Intn(7) == 0 {
			return fmt.Sprintf("plain-%d", rng.Intn(500)) // unindexed
		}
		return fmt.Sprintf("g%02d|v%d", rng.Intn(10), rng.Intn(500))
	}
	pk := func() []byte { return []byte(fmt.Sprintf("pk-%03d", rng.Intn(50))) }

	for op := 0; op < 240; op++ {
		switch rng.Intn(3) {
		case 0:
			k, v := pk(), value()
			if err := tbl.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			rows[string(k)] = v
		case 1:
			k := pk()
			if err := tbl.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(rows, string(k))
		case 2:
			var batch []core.Entry
			for j := 0; j < 1+rng.Intn(5); j++ {
				k, v := pk(), value()
				batch = append(batch, core.Entry{Key: k, Value: []byte(v)})
			}
			if err := tbl.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
			for _, e := range core.SortEntries(batch) {
				rows[string(e.Key)] = string(e.Value)
			}
		}
		if op%40 == 39 {
			if _, err := tbl.Commit(fmt.Sprintf("op %d", op)); err != nil {
				t.Fatal(err)
			}
			checkSecondaryOracle(t, tbl, rows)
		}
	}
	if _, err := tbl.Commit("final"); err != nil {
		t.Fatal(err)
	}
	checkSecondaryOracle(t, tbl, rows)

	// Reopen from a fresh repo over the same store: heads auto-resume and
	// the secondary reloads from the commit's RootRefs trailer.
	repo2 := version.NewRepo(s)
	repo2.RegisterLoader(probe.Name(), opts.Loader)
	tbl2, err := secondary.Open(repo2, "main", opts.New, def)
	if err != nil {
		t.Fatal(err)
	}
	checkSecondaryOracle(t, tbl2, rows)

	// One GC pass down to the latest head must keep both trees whole.
	if _, err := repo2.GCRetainRecent(1); err != nil {
		t.Fatal(err)
	}
	if rep, err := repo2.Verify(); err != nil || !rep.OK() {
		t.Fatalf("Verify after GC = %v, %v", rep, err)
	}
	tbl3, err := secondary.Open(repo2, "main", opts.New, def)
	if err != nil {
		t.Fatal(err)
	}
	checkSecondaryOracle(t, tbl3, rows)
}
