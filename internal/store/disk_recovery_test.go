package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hash"
	"repro/internal/store"
)

// This file is the store half of the crash-consistency matrix: each test
// manufactures an on-disk state a crash can leave behind — torn tails,
// orphaned compaction temporaries, stale meta temporaries, a buffer lost
// with the process — reopens the directory, and asserts the rebuild scan
// repairs it, reports it through RecoverySummary, and leaves the store
// fully writable. The version-level matrix (internal/version) drives the
// same states through commits and GC.

// TestRecoverySummaryCleanOpen pins the baseline: a clean close leaves
// nothing for recovery to report.
func TestRecoverySummaryCleanOpen(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{})
	d.Put([]byte("clean"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDisk(t, dir, store.DiskOptions{})
	defer re.Close()
	r := re.Recovery()
	if r.TornSegments != 0 || r.TornBytes != 0 || r.CompactOrphans != 0 || r.MetaCorrupt {
		t.Fatalf("clean reopen reported recovery work: %+v", r)
	}
	if r.Segments != 1 {
		t.Fatalf("Segments = %d, want 1", r.Segments)
	}
}

// TestDiskStoreGarbageAppendRegression appends garbage over the segment
// tail, reopens, and checks the full contract: the damage is measured in
// RecoverySummary, physically truncated, and the append path continues
// from the clean boundary — records written after recovery survive a
// second reopen. This is the regression test for the append-offset
// bookkeeping after a truncating rebuild.
func TestDiskStoreGarbageAppendRegression(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{})
	const n = 40
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = d.Put(diskBlob(i))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-000000.seg")
	garbage := []byte("not a record: partial header then noise \x00\xff\x13\x37")
	appendBytes(t, seg, garbage)

	re := openDisk(t, dir, store.DiskOptions{})
	r := re.Recovery()
	if r.TornSegments != 1 {
		t.Fatalf("TornSegments = %d, want 1", r.TornSegments)
	}
	if r.TornBytes != int64(len(garbage)) {
		t.Fatalf("TornBytes = %d, want %d", r.TornBytes, len(garbage))
	}
	// Continue appending from the truncated boundary, survive another
	// close/reopen cycle with everything intact.
	extra := re.Put([]byte("appended after truncating rebuild"))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openDisk(t, dir, store.DiskOptions{})
	defer re2.Close()
	if r := re2.Recovery(); r.TornSegments != 0 || r.TornBytes != 0 {
		t.Fatalf("second reopen found damage again: %+v", r)
	}
	for i, h := range hs {
		got, ok := re2.Get(h)
		if !ok || !bytes.Equal(got, diskBlob(i)) {
			t.Fatalf("node %d lost: %q, %v", i, got, ok)
		}
	}
	if got, ok := re2.Get(extra); !ok || string(got) != "appended after truncating rebuild" {
		t.Fatalf("post-recovery append lost across reopen: %q, %v", got, ok)
	}
}

// TestDiskStoreCrashCloseSemantics checks CrashClose models a process
// death: flushed records survive the reopen, buffered ones are lost, and
// re-putting the lost record works.
func TestDiskStoreCrashCloseSemantics(t *testing.T) {
	dir := t.TempDir()
	// Large FlushBytes so the second Put stays in the write buffer.
	d := openDisk(t, dir, store.DiskOptions{FlushBytes: 1 << 20})
	flushed := d.Put([]byte("reached the OS"))
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	buffered := d.Put([]byte("still in the buffer"))
	d.CrashClose()

	re := openDisk(t, dir, store.DiskOptions{})
	defer re.Close()
	if got, ok := re.Get(flushed); !ok || string(got) != "reached the OS" {
		t.Fatalf("flushed record lost to crash: %q, %v", got, ok)
	}
	if _, ok := re.Get(buffered); ok {
		t.Fatal("buffered record survived a process crash")
	}
	if re.Has(buffered) {
		t.Fatal("Has reports the lost record")
	}
	// The caller's retry path: re-put and it is durable again.
	if h := re.Put([]byte("still in the buffer")); h != buffered {
		t.Fatalf("re-put digest changed: %v != %v", h, buffered)
	}
	if _, ok := re.Get(buffered); !ok {
		t.Fatal("re-put record unreadable")
	}
}

// TestDiskStoreCompactCrashStates drives the two compaction crash points
// via CrashHook and checks each leaves a state the next open repairs: a
// crash before the rename leaves an orphan .compact (counted, discarded,
// original intact); a crash after the rename leaves the compacted file as
// the segment (fewer bytes, same live records).
func TestDiskStoreCompactCrashStates(t *testing.T) {
	for _, point := range []string{store.CrashCompactRename, store.CrashCompactRenamed} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			crash := ""
			d, err := store.OpenDiskStore(dir, store.DiskOptions{
				CrashHook: func(p string) {
					if p == crash {
						panic("crash:" + p)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 30
			hs := make([]hash.Hash, n)
			for i := 0; i < n; i++ {
				hs[i] = d.Put(diskBlob(i))
			}
			crash = point
			func() {
				defer func() {
					if r := recover(); r != "crash:"+point {
						t.Fatalf("recover = %v", r)
					}
				}()
				// Nearly everything dies: the segment crosses the compaction
				// threshold and the crash point is reached mid-sweep.
				d.Sweep(func(h hash.Hash) bool { return h == hs[0] })
			}()
			d.CrashClose()

			re := openDisk(t, dir, store.DiskOptions{})
			defer re.Close()
			r := re.Recovery()
			wantOrphans := 0
			if point == store.CrashCompactRename {
				wantOrphans = 1 // temp written, never swapped in
			}
			if r.CompactOrphans != wantOrphans {
				t.Fatalf("CompactOrphans = %d, want %d (%+v)", r.CompactOrphans, wantOrphans, r)
			}
			if _, err := os.Stat(filepath.Join(dir, "seg-000000.seg.compact")); !os.IsNotExist(err) {
				t.Fatalf("orphan .compact not discarded: %v", err)
			}
			// The survivor reads back either way. The condemned records may
			// be resurrected (crash before the swap) or gone (after) — both
			// are valid recovery states; what must never happen is a missing
			// survivor or an unreadable segment.
			if got, ok := re.Get(hs[0]); !ok || !bytes.Equal(got, diskBlob(0)) {
				t.Fatalf("survivor lost across compaction crash: %q, %v", got, ok)
			}
			h := re.Put([]byte("write after compaction crash"))
			if _, ok := re.Get(h); !ok {
				t.Fatal("store not writable after compaction-crash recovery")
			}
		})
	}
}

// TestDiskStoreMetaCrashStates drives the meta-rename crash points and
// checks the stale temp file is cleaned and metadata lands on exactly one
// side of the rename: the old value (crash before) or the new (after),
// never a torn mix and never a wedged open.
func TestDiskStoreMetaCrashStates(t *testing.T) {
	for _, point := range []string{store.CrashMetaRename, store.CrashMetaRenamed} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			crash := ""
			d, err := store.OpenDiskStore(dir, store.DiskOptions{
				CrashHook: func(p string) {
					if p == crash {
						panic("crash:" + p)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.SetMeta("head", []byte("old")); err != nil {
				t.Fatal(err)
			}
			crash = point
			func() {
				defer func() {
					if r := recover(); r != "crash:"+point {
						t.Fatalf("recover = %v", r)
					}
				}()
				d.SetMeta("head", []byte("new"))
			}()
			d.CrashClose()

			re := openDisk(t, dir, store.DiskOptions{})
			defer re.Close()
			if _, err := os.Stat(filepath.Join(dir, "meta.bin.tmp")); !os.IsNotExist(err) {
				t.Fatalf("stale meta temp not removed: %v", err)
			}
			v, ok, err := re.GetMeta("head")
			if err != nil || !ok {
				t.Fatalf("GetMeta after meta crash = ok=%v err=%v", ok, err)
			}
			want := "old"
			if point == store.CrashMetaRenamed {
				want = "new"
			}
			if string(v) != want {
				t.Fatalf("meta after crash at %s = %q, want %q", point, v, want)
			}
			if re.Recovery().MetaCorrupt {
				t.Fatal("atomic rename crash flagged the meta file as corrupt")
			}
		})
	}
}
