// Package store provides the content-addressed node storage shared by every
// index structure in this repository. Nodes are immutable byte strings keyed
// by the SHA-256 digest of their contents, which makes copy-on-write,
// page-level deduplication and tamper evidence natural: writing the same
// node twice stores it once, and any mutation produces a new key.
//
// Every implementation keeps byte- and node-level accounting so the
// storage experiments (Figures 1 and 14–18 of the paper) can report both the
// deduplicated footprint (unique bytes) and the raw footprint (all bytes
// ever written, as if every version were stored separately).
//
// Four backends share the Store contract (verified by the conformance
// suite in the storetest subpackage):
//
//	MemStore      single-lock in-memory map; the simple baseline
//	ShardedStore  N-way sharded in-memory map, per-shard locks and atomic
//	              stats, for concurrent index updates at scale
//	DiskStore     append-only segment files with an in-memory directory,
//	              crash-safe via a rebuild-on-open scan
//	CachedStore   bounded LRU layered over any of the above
//
// Open selects a backend by name ("mem", "sharded", "disk") plus an
// optional cache layer; cmd/siribench threads the same selection through
// every experiment via its -store flag.
package store

import (
	"fmt"
	"sync"

	"repro/internal/hash"
)

// Store is a content-addressed node store. Implementations must be safe for
// concurrent use.
type Store interface {
	// Put stores data under its SHA-256 digest and returns the digest.
	// Storing identical content twice is a deduplicated no-op.
	Put(data []byte) hash.Hash
	// Get returns the content stored under h. The returned slice must not
	// be modified by the caller.
	//
	// No-copy contract: backends serve Get without copying whenever the
	// stored bytes are immutable for the store's lifetime — MemStore,
	// ShardedStore and CachedStore all return the resident buffer
	// directly (DiskStore reads flushed records into a fresh buffer by
	// necessity). Nodes are content-addressed and never rewritten, so the
	// returned bytes stay valid until the node is reclaimed by a sweep;
	// the decoded-node caches in the index packages rely on this to alias
	// key and value slices straight into the stored encoding instead of
	// copying per decode (see the internal/codec aliasing rules). The GC
	// purge hooks (version.Repo.OnGC) exist to drop those aliases when a
	// sweep reclaims nodes.
	Get(h hash.Hash) ([]byte, bool)
	// Has reports whether h is present without fetching the content.
	Has(h hash.Hash) bool
	// Stats returns a snapshot of the accounting counters.
	Stats() Stats
}

// Stats captures store accounting. RawBytes/RawNodes count every Put as if
// nothing were shared (the paper's "Raw" storage series); UniqueBytes and
// UniqueNodes count the deduplicated footprint.
type Stats struct {
	UniqueNodes int64 // distinct nodes resident
	UniqueBytes int64 // bytes of distinct nodes resident
	RawNodes    int64 // total Put calls, duplicates included
	RawBytes    int64 // total bytes passed to Put, duplicates included
	DedupHits   int64 // Put calls that found existing content
	Gets        int64 // Get calls served
	Misses      int64 // Get calls that found nothing
}

// String renders the counters in a compact single line for logs.
func (s Stats) String() string {
	return fmt.Sprintf("unique=%d nodes/%d B raw=%d nodes/%d B dedupHits=%d gets=%d misses=%d",
		s.UniqueNodes, s.UniqueBytes, s.RawNodes, s.RawBytes, s.DedupHits, s.Gets, s.Misses)
}

// MemStore is an in-memory Store. The zero value is not usable; call
// NewMemStore.
type MemStore struct {
	mu    sync.RWMutex
	nodes map[hash.Hash][]byte
	stats Stats
	meta  metaMap
	bar   barrierHolder
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{nodes: make(map[hash.Hash][]byte)}
}

// Put implements Store. The data is copied, so callers may reuse their
// buffer.
func (m *MemStore) Put(data []byte) hash.Hash {
	h := hash.Of(data)
	if b := m.bar.beginWrite(); b != nil {
		b.record(h)
	}
	defer m.bar.endWrite()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.RawNodes++
	m.stats.RawBytes += int64(len(data))
	if _, ok := m.nodes[h]; ok {
		m.stats.DedupHits++
		return h
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.nodes[h] = cp
	m.stats.UniqueNodes++
	m.stats.UniqueBytes += int64(len(data))
	return h
}

// Get implements Store. The returned slice is the resident buffer, not a
// copy (see the Store.Get no-copy contract).
func (m *MemStore) Get(h hash.Hash) ([]byte, bool) {
	m.mu.Lock()
	m.stats.Gets++
	data, ok := m.nodes[h]
	if !ok {
		m.stats.Misses++
	}
	m.mu.Unlock()
	return data, ok
}

// Has implements Store.
func (m *MemStore) Has(h hash.Hash) bool {
	m.mu.RLock()
	_, ok := m.nodes[h]
	m.mu.RUnlock()
	return ok
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Len returns the number of distinct nodes resident.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.nodes)
}

// SizeOf returns the stored size of h in bytes, or 0 if absent. Used by the
// deduplication-ratio metric, which needs per-node byte sizes.
func (m *MemStore) SizeOf(h hash.Hash) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.nodes[h])
}
