package store

import (
	"sync"

	"repro/internal/hash"
)

// Batcher is the batch write path of the store contract. A single PutBatch
// call persists many nodes with one round of synchronization: the in-memory
// backends take their lock(s) once for the whole batch and the disk backend
// turns the batch into one buffered append run. Semantics are exactly those
// of calling Put on every item in order — same returned digests, same
// dedup and accounting — only cheaper.
//
// All four built-in backends implement Batcher; use the package-level
// PutBatch helper to get a looped-Put fallback for foreign stores.
type Batcher interface {
	// PutBatch stores every item under its SHA-256 digest and returns the
	// digests in item order. Duplicate items (within the batch or against
	// existing content) are deduplicated no-ops, as with Put.
	PutBatch(items [][]byte) []hash.Hash
}

// HashedBatcher is an optional extension of Batcher for Merkle committers
// that already computed every item's digest while hashing bottom-up: it
// stores the batch without re-hashing.
//
// Correctness contract: hashes[i] MUST equal hash.Of(items[i]). The store
// does not verify this; a wrong digest corrupts content addressing (and a
// DiskStore would silently drop the record on its next rebuild-on-open
// scan, where the digest doubles as a checksum). The only intended caller
// is core.StagedWriter, which derives the digests with hash.Of.
type HashedBatcher interface {
	Batcher
	// PutBatchHashed stores items under the caller-computed digests.
	PutBatchHashed(hashes []hash.Hash, items [][]byte)
}

// PutBatch writes items to s through its Batcher fast path when it has one,
// falling back to a loop of Puts for foreign Store implementations.
func PutBatch(s Store, items [][]byte) []hash.Hash {
	if b, ok := s.(Batcher); ok {
		return b.PutBatch(items)
	}
	hs := make([]hash.Hash, len(items))
	for i, it := range items {
		hs[i] = s.Put(it)
	}
	return hs
}

// PutBatchHashed writes a pre-hashed batch through s's HashedBatcher fast
// path when it has one. Foreign stores fall back to Put, which recomputes
// the digests (and thereby also re-verifies them).
func PutBatchHashed(s Store, hashes []hash.Hash, items [][]byte) {
	if hb, ok := s.(HashedBatcher); ok {
		hb.PutBatchHashed(hashes, items)
		return
	}
	for _, it := range items {
		s.Put(it)
	}
}

// hashAll digests every item across the hash package's worker pool. Shared
// by the backends' PutBatch implementations, which all reduce to
// PutBatchHashed after this step; large batches therefore hash in parallel
// even for callers that did not pre-compute digests.
func hashAll(items [][]byte) []hash.Hash {
	return hash.OfAll(items)
}

// Compile-time checks: every built-in backend supports both batch paths.
var (
	_ HashedBatcher = (*MemStore)(nil)
	_ HashedBatcher = (*ShardedStore)(nil)
	_ HashedBatcher = (*DiskStore)(nil)
	_ HashedBatcher = (*CachedStore)(nil)
)

// PutBatch implements Batcher: the whole batch is hashed outside the lock,
// then inserted under one lock acquisition.
func (m *MemStore) PutBatch(items [][]byte) []hash.Hash {
	hs := hashAll(items)
	m.PutBatchHashed(hs, items)
	return hs
}

// PutBatchHashed implements HashedBatcher. The whole batch runs inside one
// barrier write window: an armed barrier records every digest before the
// nodes become visible, and a barrier armed mid-batch waits for the batch
// to finish — so a concurrent GC pass either sees the entire batch
// resident before its mark starts (the committer's root re-check covers
// that side) or has every node of it recorded as live.
func (m *MemStore) PutBatchHashed(hashes []hash.Hash, items [][]byte) {
	if b := m.bar.beginWrite(); b != nil {
		b.recordAll(hashes)
	}
	defer m.bar.endWrite()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, data := range items {
		h := hashes[i]
		m.stats.RawNodes++
		m.stats.RawBytes += int64(len(data))
		if _, ok := m.nodes[h]; ok {
			m.stats.DedupHits++
			continue
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		m.nodes[h] = cp
		m.stats.UniqueNodes++
		m.stats.UniqueBytes += int64(len(data))
	}
}

// PutBatch implements Batcher: items are hashed lock-free, grouped by shard,
// and each shard's lock is taken once for its whole group.
func (s *ShardedStore) PutBatch(items [][]byte) []hash.Hash {
	hs := hashAll(items)
	s.PutBatchHashed(hs, items)
	return hs
}

// batchShardConcurrency caps the goroutines one PutBatchHashed call spawns
// to write shard groups concurrently. Shard groups touch disjoint locks and
// disjoint maps, so the only shared state is the atomic counters.
var batchShardConcurrency = 8

// batchConcurrencyCutoff is the batch size below which shard groups are
// written sequentially; tiny batches don't amortize goroutine startup.
const batchConcurrencyCutoff = 256

// PutBatchHashed implements HashedBatcher. The batch runs inside one
// barrier write window (see MemStore.PutBatchHashed): recorded before any
// shard insert, and never straddling a barrier arm.
func (s *ShardedStore) PutBatchHashed(hashes []hash.Hash, items [][]byte) {
	if b := s.bar.beginWrite(); b != nil {
		b.recordAll(hashes)
	}
	defer s.bar.endWrite()
	// Group item indices by owning shard so each shard lock is acquired at
	// most once per batch, regardless of batch size.
	groups := make(map[uint32][]int, 16)
	for i, h := range hashes {
		sh := s.shardIndex(h)
		groups[sh] = append(groups[sh], i)
	}
	writeGroup := func(sh uint32, idxs []int) {
		shard := &s.shards[sh]
		var added, addedBytes, dup int64
		var raw, rawBytes int64
		shard.mu.Lock()
		for _, i := range idxs {
			data := items[i]
			h := hashes[i]
			raw++
			rawBytes += int64(len(data))
			if _, ok := shard.nodes[h]; ok {
				dup++
				continue
			}
			cp := make([]byte, len(data))
			copy(cp, data)
			shard.nodes[h] = cp
			added++
			addedBytes += int64(len(data))
		}
		shard.mu.Unlock()
		s.ctr.rawNodes.Add(raw)
		s.ctr.rawBytes.Add(rawBytes)
		s.ctr.dedupHits.Add(dup)
		s.ctr.uniqueNodes.Add(added)
		s.ctr.uniqueBytes.Add(addedBytes)
	}
	if len(items) < batchConcurrencyCutoff || len(groups) == 1 {
		for sh, idxs := range groups {
			writeGroup(sh, idxs)
		}
		return
	}
	// Write shard groups concurrently: each group copies its items under
	// its own shard lock, so a big commit's memcpy cost spreads across
	// cores instead of running as one serial loop.
	sem := make(chan struct{}, batchShardConcurrency)
	var wg sync.WaitGroup
	for sh, idxs := range groups {
		sem <- struct{}{}
		wg.Add(1)
		go func(sh uint32, idxs []int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			writeGroup(sh, idxs)
		}(sh, idxs)
	}
	wg.Wait()
}

// PutBatch implements Batcher: one lock acquisition turns the whole batch
// into a single buffered append run (segment rolls and FlushBytes-driven
// flushes still apply inside).
func (d *DiskStore) PutBatch(items [][]byte) []hash.Hash {
	hs := hashAll(items)
	d.PutBatchHashed(hs, items)
	return hs
}

// PutBatchHashed implements HashedBatcher. The batch runs inside one
// barrier write window (see MemStore.PutBatchHashed): recorded before the
// appends land, and never straddling a barrier arm.
func (d *DiskStore) PutBatchHashed(hashes []hash.Hash, items [][]byte) {
	if b := d.bar.beginWrite(); b != nil {
		b.recordAll(hashes)
	}
	defer d.bar.endWrite()
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, data := range items {
		d.putLocked(hashes[i], data)
	}
}

// PutBatch implements Batcher: the batch goes to the backing store's batch
// path, then the cache is populated under one lock acquisition.
func (c *CachedStore) PutBatch(items [][]byte) []hash.Hash {
	hs := hashAll(items)
	c.PutBatchHashed(hs, items)
	return hs
}

// PutBatchHashed implements HashedBatcher.
func (c *CachedStore) PutBatchHashed(hashes []hash.Hash, items [][]byte) {
	PutBatchHashed(c.backing, hashes, items)
	c.mu.Lock()
	for i, data := range items {
		c.insert(hashes[i], data)
	}
	c.mu.Unlock()
}
