package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/hash"
	"repro/internal/store"
)

// noSpaceHook returns a DiskOptions.WriteErr hook gated on flag: while the
// flag is set every write op is rejected with an error wrapping
// store.ErrNoSpace — the injected equivalent of a full disk.
func noSpaceHook(flag *atomic.Bool) func(op string) error {
	return func(op string) error {
		if flag.Load() {
			return fmt.Errorf("%s: %w", op, store.ErrNoSpace)
		}
		return nil
	}
}

// TestDiskStoreDegradesReadOnlyOnNoSpace is the store half of the
// resource-exhaustion matrix: under persistent write failure the disk
// store serves reads (including of writes parked in memory), rejects the
// write path with a typed retryable error, and — after the condition
// clears — replays every parked write so nothing is lost, with no torn
// state visible to a reopen.
func TestDiskStoreDegradesReadOnlyOnNoSpace(t *testing.T) {
	dir := t.TempDir()
	var full atomic.Bool
	d, err := store.OpenDiskStore(dir, store.DiskOptions{
		FlushBytes: 1 << 20,
		WriteErr:   noSpaceHook(&full),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy prelude: some nodes on disk, a head in the meta file.
	pre := make([]hash.Hash, 10)
	for i := range pre {
		pre[i] = d.Put([]byte(fmt.Sprintf("pre-%03d", i)))
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := store.SetMeta(d, "head", []byte("pre-head")); err != nil {
		t.Fatal(err)
	}

	// The disk fills.
	full.Store(true)

	// Puts park in memory: content addressing still returns the digest and
	// the node is readable, but nothing reaches disk and Sync says so with
	// the typed error.
	deg := make([]hash.Hash, 10)
	for i := range deg {
		deg[i] = d.Put([]byte(fmt.Sprintf("deg-%03d", i)))
	}
	if err := d.Sync(); !errors.Is(err, store.ErrNoSpace) {
		t.Fatalf("Sync while degraded = %v, want ErrNoSpace", err)
	}
	if err := store.SetMeta(d, "head", []byte("new-head")); !errors.Is(err, store.ErrNoSpace) {
		t.Fatalf("SetMeta while degraded = %v, want ErrNoSpace", err)
	}

	// Reads: everything, durable or parked, stays readable.
	for i, h := range pre {
		if got, ok := d.Get(h); !ok || !bytes.Equal(got, []byte(fmt.Sprintf("pre-%03d", i))) {
			t.Fatalf("durable node %d unreadable while degraded", i)
		}
	}
	for i, h := range deg {
		if got, ok := d.Get(h); !ok || !bytes.Equal(got, []byte(fmt.Sprintf("deg-%03d", i))) {
			t.Fatalf("parked node %d unreadable while degraded", i)
		}
		if !d.Has(h) {
			t.Fatalf("Has(parked %d) = false", i)
		}
	}
	// The rejected head update really was rejected everywhere.
	if v, ok, err := store.GetMeta(d, "head"); err != nil || !ok || string(v) != "pre-head" {
		t.Fatalf("meta while degraded = %q, %v, %v; want the pre-degrade head", v, ok, err)
	}

	// Degrade errors must be retryable, not sticky: the same calls keep
	// returning ErrNoSpace rather than a poisoned-store error.
	if err := d.Sync(); !errors.Is(err, store.ErrNoSpace) {
		t.Fatalf("second Sync while degraded = %v, want ErrNoSpace again", err)
	}

	// Space returns: the next write path replays every parked node.
	full.Store(false)
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync after heal: %v", err)
	}
	if err := store.SetMeta(d, "head", []byte("new-head")); err != nil {
		t.Fatalf("SetMeta after heal: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all twenty nodes durable, the healed head present, no torn
	// segments — the degrade window left no scar on disk.
	re, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec := re.Recovery(); rec.TornSegments != 0 {
		t.Fatalf("reopen after degrade found torn segments: %+v", rec)
	}
	for i, h := range pre {
		if _, ok := re.Get(h); !ok {
			t.Fatalf("pre node %d lost across degrade", i)
		}
	}
	for i, h := range deg {
		if got, ok := re.Get(h); !ok || !bytes.Equal(got, []byte(fmt.Sprintf("deg-%03d", i))) {
			t.Fatalf("degraded-window node %d lost across heal+reopen", i)
		}
	}
	if v, ok, err := store.GetMeta(re, "head"); err != nil || !ok || string(v) != "new-head" {
		t.Fatalf("meta after reopen = %q, %v, %v", v, ok, err)
	}
}

// TestDiskStoreDegradeDeleteOfParkedNode: deleting a node that only ever
// lived in the degraded parking buffer removes it cleanly — the heal-time
// replay must not resurrect it.
func TestDiskStoreDegradeDeleteOfParkedNode(t *testing.T) {
	dir := t.TempDir()
	var full atomic.Bool
	d, err := store.OpenDiskStore(dir, store.DiskOptions{
		FlushBytes: 1 << 20,
		WriteErr:   noSpaceHook(&full),
	})
	if err != nil {
		t.Fatal(err)
	}
	full.Store(true)
	keep := d.Put([]byte("parked-keep"))
	drop := d.Put([]byte("parked-drop"))
	if ok, err := d.Delete(drop); err != nil || !ok {
		t.Fatalf("delete of parked node = %v, %v", ok, err)
	}
	if _, ok := d.Get(drop); ok {
		t.Fatal("deleted parked node still readable")
	}
	full.Store(false)
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync after heal: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Get(keep); !ok {
		t.Fatal("surviving parked node lost")
	}
	if _, ok := re.Get(drop); ok {
		t.Fatal("heal replay resurrected a deleted node")
	}
}

// TestDiskStoreDegradeCrashLosesOnlyParkedWrites: a crash during the
// degraded window behaves like any crash with unflushed writes — parked
// nodes (which could not reach disk) are lost, everything durable before
// the window survives, and the store opens clean.
func TestDiskStoreDegradeCrashLosesOnlyParkedWrites(t *testing.T) {
	dir := t.TempDir()
	var full atomic.Bool
	d, err := store.OpenDiskStore(dir, store.DiskOptions{
		FlushBytes: 1 << 20,
		WriteErr:   noSpaceHook(&full),
	})
	if err != nil {
		t.Fatal(err)
	}
	pre := d.Put([]byte("durable-before"))
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	full.Store(true)
	parked := d.Put([]byte("parked-lost"))
	d.CrashClose()

	re, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec := re.Recovery(); rec.TornSegments != 0 {
		t.Fatalf("crash during degrade tore a segment: %+v", rec)
	}
	if _, ok := re.Get(pre); !ok {
		t.Fatal("durable node lost")
	}
	if _, ok := re.Get(parked); ok {
		t.Fatal("parked node survived a crash it could not have been written through")
	}
}
