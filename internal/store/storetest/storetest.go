// Package storetest provides the conformance suite every store.Store
// implementation must pass. A backend wires itself in with one line:
//
//	storetest.RunStoreTests(t, func(t *testing.T) store.Store { return store.NewMemStore() })
//
// The suite pins down the contract the index structures and the paper's
// storage figures rely on: content addressing, dedup accounting
// (UniqueBytes ≤ RawBytes, DedupHits = RawNodes − UniqueNodes), buffer
// ownership, miss counting, safety under concurrent Put/Get (run the suite
// under -race to make that part meaningful), and — for stores exposing the
// Deleter/Sweeper reclamation capability — delete-then-get semantics and
// live-set preservation under Sweep, the store half of the version GC.
package storetest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/hash"
	"repro/internal/store"
	"repro/internal/store/faultstore"
)

// Factory returns a fresh empty store for one (sub)test. Implementations
// needing cleanup should register it with t.Cleanup.
type Factory func(t *testing.T) store.Store

// RunStoreTests runs the full conformance suite against stores produced by
// newStore.
func RunStoreTests(t *testing.T, newStore Factory) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(*testing.T, Factory)
	}{
		{"PutGetRoundTrip", testPutGetRoundTrip},
		{"GetMissing", testGetMissing},
		{"HasSemantics", testHasSemantics},
		{"DedupAccounting", testDedupAccounting},
		{"CopiesCallerBuffer", testCopiesCallerBuffer},
		{"EmptyValue", testEmptyValue},
		{"ManyNodes", testManyNodes},
		{"StatsInvariantsProperty", testStatsInvariantsProperty},
		{"ConcurrentPutGet", testConcurrentPutGet},
		{"ConcurrentDedup", testConcurrentDedup},
		{"PutBatchMatchesSequentialPut", testPutBatchMatchesSequentialPut},
		{"PutBatchHashed", testPutBatchHashed},
		{"PutBatchEmpty", testPutBatchEmpty},
		{"ConcurrentPutBatch", testConcurrentPutBatch},
		{"DeleteThenGet", testDeleteThenGet},
		{"DeleteReput", testDeleteReput},
		{"SweepPreservesLiveSet", testSweepPreservesLiveSet},
		{"SweepEverything", testSweepEverything},
		{"SweepKeepsConcurrentReadsSafe", testSweepKeepsConcurrentReadsSafe},
		{"BarrierProtectsNewWrites", testBarrierProtectsNewWrites},
		{"BarrierRecordsDedupHits", testBarrierRecordsDedupHits},
		{"BarrierRecordsBatches", testBarrierRecordsBatches},
		{"BarrierArmSemantics", testBarrierArmSemantics},
		{"BarrierKeepsConcurrentWritesSafe", testBarrierKeepsConcurrentWritesSafe},
		{"CloseStability", testCloseStability},
		{"TransientPutRetryNoGhosts", testTransientPutRetryNoGhosts},
		{"SweepFaultLeavesUsageConsistent", testSweepFaultLeavesUsageConsistent},
		{"UsableAfterNoSpaceWindow", testUsableAfterNoSpaceWindow},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, newStore) })
	}
}

func testPutGetRoundTrip(t *testing.T, newStore Factory) {
	s := newStore(t)
	data := []byte("node contents")
	h := s.Put(data)
	if h != hash.Of(data) {
		t.Fatalf("Put returned %v, want the content digest", h)
	}
	got, ok := s.Get(h)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func testGetMissing(t *testing.T, newStore Factory) {
	s := newStore(t)
	if _, ok := s.Get(hash.Of([]byte("absent"))); ok {
		t.Fatal("Get on empty store returned ok")
	}
	st := s.Stats()
	if st.Gets != 1 || st.Misses != 1 {
		t.Fatalf("stats after one miss = %+v", st)
	}
}

func testHasSemantics(t *testing.T, newStore Factory) {
	s := newStore(t)
	h := s.Put([]byte("present"))
	if !s.Has(h) {
		t.Fatal("Has = false after Put")
	}
	if s.Has(hash.Of([]byte("absent"))) {
		t.Fatal("Has = true for absent node")
	}
	// Has must not disturb the Get/Miss counters.
	if st := s.Stats(); st.Gets != 0 || st.Misses != 0 {
		t.Fatalf("Has moved the Get counters: %+v", st)
	}
}

func testDedupAccounting(t *testing.T, newStore Factory) {
	s := newStore(t)
	data := []byte("same node")
	h1 := s.Put(data)
	h2 := s.Put(data)
	if h1 != h2 {
		t.Fatal("identical content produced different hashes")
	}
	st := s.Stats()
	if st.UniqueNodes != 1 || st.RawNodes != 2 || st.DedupHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueBytes != int64(len(data)) || st.RawBytes != 2*int64(len(data)) {
		t.Fatalf("byte accounting = %+v", st)
	}
}

func testCopiesCallerBuffer(t *testing.T, newStore Factory) {
	s := newStore(t)
	buf := []byte("mutate me")
	want := append([]byte(nil), buf...)
	h := s.Put(buf)
	buf[0] = 'X'
	got, ok := s.Get(h)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("store aliases the caller buffer: got %q", got)
	}
}

func testEmptyValue(t *testing.T, newStore Factory) {
	s := newStore(t)
	h := s.Put(nil)
	if h != hash.Of(nil) {
		t.Fatalf("Put(nil) hash = %v", h)
	}
	got, ok := s.Get(h)
	if !ok || len(got) != 0 {
		t.Fatalf("Get of empty node = %q, %v", got, ok)
	}
	if !s.Has(h) {
		t.Fatal("Has = false for empty node")
	}
}

func testManyNodes(t *testing.T, newStore Factory) {
	s := newStore(t)
	const n = 500
	hs := make([]hash.Hash, n)
	var bytesTotal int64
	for i := 0; i < n; i++ {
		data := blob(i)
		hs[i] = s.Put(data)
		bytesTotal += int64(len(data))
	}
	for i, h := range hs {
		got, ok := s.Get(h)
		if !ok || !bytes.Equal(got, blob(i)) {
			t.Fatalf("node %d: Get = %q, %v", i, got, ok)
		}
	}
	st := s.Stats()
	if st.UniqueNodes != n || st.UniqueBytes != bytesTotal {
		t.Fatalf("stats after %d distinct nodes = %+v", n, st)
	}
}

func testStatsInvariantsProperty(t *testing.T, newStore Factory) {
	f := func(blobs [][]byte) bool {
		s := newStore(t)
		for _, b := range blobs {
			s.Put(b)
		}
		st := s.Stats()
		return st.UniqueBytes <= st.RawBytes && st.UniqueNodes <= st.RawNodes &&
			st.DedupHits == st.RawNodes-st.UniqueNodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func testConcurrentPutGet(t *testing.T, newStore Factory) {
	s := newStore(t)
	const workers, perWorker = 8, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				data := []byte(fmt.Sprintf("w%d-i%d", w%4, i)) // overlap across workers
				h := s.Put(data)
				if got, ok := s.Get(h); !ok || !bytes.Equal(got, data) {
					t.Errorf("Get after Put failed for %q", data)
					return
				}
				if !s.Has(h) {
					t.Errorf("Has after Put failed for %q", data)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.UniqueNodes != 4*perWorker {
		t.Fatalf("UniqueNodes = %d, want %d", st.UniqueNodes, 4*perWorker)
	}
}

func testConcurrentDedup(t *testing.T, newStore Factory) {
	s := newStore(t)
	const workers, blobs = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < blobs; i++ {
				s.Put(blob(i)) // every worker writes the same set
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.UniqueNodes != blobs {
		t.Fatalf("UniqueNodes = %d, want %d", st.UniqueNodes, blobs)
	}
	if st.RawNodes != workers*blobs {
		t.Fatalf("RawNodes = %d, want %d", st.RawNodes, workers*blobs)
	}
	if st.DedupHits != st.RawNodes-st.UniqueNodes {
		t.Fatalf("DedupHits = %d, want %d", st.DedupHits, st.RawNodes-st.UniqueNodes)
	}
}

// batchItems builds a batch with intra-batch duplicates (every third item
// repeats) so the dedup accounting of the batch path is exercised.
func batchItems(n int) [][]byte {
	items := make([][]byte, n)
	for i := range items {
		items[i] = blob(i - i%3)
	}
	return items
}

func testPutBatchMatchesSequentialPut(t *testing.T, newStore Factory) {
	items := batchItems(60)

	seq := newStore(t)
	seqHashes := make([]hash.Hash, len(items))
	for i, it := range items {
		seqHashes[i] = seq.Put(it)
	}

	batched := newStore(t)
	gotHashes := store.PutBatch(batched, items)
	if len(gotHashes) != len(items) {
		t.Fatalf("PutBatch returned %d hashes for %d items", len(gotHashes), len(items))
	}
	for i := range items {
		if gotHashes[i] != seqHashes[i] {
			t.Fatalf("item %d: PutBatch hash %v != Put hash %v", i, gotHashes[i], seqHashes[i])
		}
		got, ok := batched.Get(gotHashes[i])
		if !ok || !bytes.Equal(got, items[i]) {
			t.Fatalf("item %d: Get after PutBatch = %q, %v", i, got, ok)
		}
	}

	// The batch path must account exactly like the sequential path
	// (ignoring the Get counters the verification loop above moved).
	ss, bs := seq.Stats(), batched.Stats()
	ss.Gets, ss.Misses, bs.Gets, bs.Misses = 0, 0, 0, 0
	if ss != bs {
		t.Fatalf("stats diverge:\n  sequential: %+v\n  batched:    %+v", ss, bs)
	}
}

func testPutBatchHashed(t *testing.T, newStore Factory) {
	s := newStore(t)
	hb, ok := s.(store.HashedBatcher)
	if !ok {
		t.Skip("store does not implement HashedBatcher")
	}
	items := batchItems(30)
	hashes := make([]hash.Hash, len(items))
	for i, it := range items {
		hashes[i] = hash.Of(it)
	}
	hb.PutBatchHashed(hashes, items)
	for i, h := range hashes {
		got, ok := s.Get(h)
		if !ok || !bytes.Equal(got, items[i]) {
			t.Fatalf("item %d: Get after PutBatchHashed = %q, %v", i, got, ok)
		}
	}
	st := s.Stats()
	if st.RawNodes != int64(len(items)) || st.DedupHits != st.RawNodes-st.UniqueNodes {
		t.Fatalf("stats after PutBatchHashed = %+v", st)
	}
}

func testPutBatchEmpty(t *testing.T, newStore Factory) {
	s := newStore(t)
	if hs := store.PutBatch(s, nil); len(hs) != 0 {
		t.Fatalf("PutBatch(nil) returned %d hashes", len(hs))
	}
	if st := s.Stats(); st.RawNodes != 0 {
		t.Fatalf("empty batch moved counters: %+v", st)
	}
}

func testConcurrentPutBatch(t *testing.T, newStore Factory) {
	s := newStore(t)
	const workers, blobs = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			items := make([][]byte, blobs)
			for i := range items {
				items[i] = blob(i) // every worker writes the same set
			}
			hs := store.PutBatch(s, items)
			for i, h := range hs {
				if got, ok := s.Get(h); !ok || !bytes.Equal(got, items[i]) {
					t.Errorf("Get after concurrent PutBatch failed for item %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.UniqueNodes != blobs {
		t.Fatalf("UniqueNodes = %d, want %d", st.UniqueNodes, blobs)
	}
	if st.RawNodes != workers*blobs || st.DedupHits != st.RawNodes-st.UniqueNodes {
		t.Fatalf("stats after concurrent batches = %+v", st)
	}
}

// sweepable returns s if it supports delete/sweep, skipping the subtest for
// foreign stores without the capability (all four built-in backends have it).
func sweepable(t *testing.T, s store.Store) store.Store {
	t.Helper()
	if _, ok := s.(store.Sweeper); !ok {
		t.Skip("store does not implement Sweeper")
	}
	if _, ok := s.(store.Deleter); !ok {
		t.Skip("store does not implement Deleter")
	}
	return s
}

func testDeleteThenGet(t *testing.T, newStore Factory) {
	s := sweepable(t, newStore(t))
	data := []byte("condemned node")
	h := s.Put(data)
	keep := s.Put([]byte("survivor"))

	ok, err := store.Delete(s, h)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v; want true, nil", ok, err)
	}
	if _, ok := s.Get(h); ok {
		t.Fatal("Get served a deleted node")
	}
	if s.Has(h) {
		t.Fatal("Has = true for a deleted node")
	}
	if got, ok := s.Get(keep); !ok || !bytes.Equal(got, []byte("survivor")) {
		t.Fatalf("unrelated node disturbed by Delete: %q, %v", got, ok)
	}
	// Deleting an absent node is a reported no-op.
	if ok, err := store.Delete(s, hash.Of([]byte("never stored"))); err != nil || ok {
		t.Fatalf("Delete of absent node = %v, %v; want false, nil", ok, err)
	}
	// The unique footprint shrinks; raw history is preserved.
	st := s.Stats()
	if st.UniqueNodes != 1 || st.UniqueBytes != int64(len("survivor")) {
		t.Fatalf("unique footprint after delete = %+v", st)
	}
	if st.RawNodes != 2 {
		t.Fatalf("raw history after delete = %+v", st)
	}
}

func testDeleteReput(t *testing.T, newStore Factory) {
	s := sweepable(t, newStore(t))
	data := []byte("comes back")
	h := s.Put(data)
	if ok, err := store.Delete(s, h); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if h2 := s.Put(data); h2 != h {
		t.Fatalf("re-Put hash changed: %v != %v", h2, h)
	}
	got, ok := s.Get(h)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get after delete+re-Put = %q, %v", got, ok)
	}
	if st := s.Stats(); st.UniqueNodes != 1 {
		t.Fatalf("unique count after delete+re-Put = %+v", st)
	}
}

func testSweepPreservesLiveSet(t *testing.T, newStore Factory) {
	s := sweepable(t, newStore(t))
	const n = 200
	hs := make([]hash.Hash, n)
	live := make(map[hash.Hash]bool)
	var liveBytes, deadBytes int64
	for i := 0; i < n; i++ {
		data := blob(i)
		hs[i] = s.Put(data)
		if i%3 == 0 {
			live[hs[i]] = true
			liveBytes += int64(len(data))
		} else {
			deadBytes += int64(len(data))
		}
	}
	st, err := store.Sweep(s, func(h hash.Hash) bool { return live[h] })
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	wantLive := int64(len(live))
	if st.LiveNodes != wantLive || st.SweptNodes != n-wantLive {
		t.Fatalf("sweep counts = %+v, want %d live / %d swept", st, wantLive, n-wantLive)
	}
	if st.LiveBytes != liveBytes || st.SweptBytes != deadBytes {
		t.Fatalf("sweep bytes = %+v, want %d live / %d dead", st, liveBytes, deadBytes)
	}
	for i, h := range hs {
		got, ok := s.Get(h)
		if live[h] {
			if !ok || !bytes.Equal(got, blob(i)) {
				t.Fatalf("live node %d lost by sweep: %q, %v", i, got, ok)
			}
		} else if ok {
			t.Fatalf("dead node %d survived sweep", i)
		}
	}
	if ss := s.Stats(); ss.UniqueNodes != wantLive || ss.UniqueBytes != liveBytes {
		t.Fatalf("unique footprint after sweep = %+v", ss)
	}
}

func testSweepEverything(t *testing.T, newStore Factory) {
	s := sweepable(t, newStore(t))
	for i := 0; i < 50; i++ {
		s.Put(blob(i))
	}
	st, err := store.Sweep(s, func(hash.Hash) bool { return false })
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if st.LiveNodes != 0 || st.SweptNodes != 50 {
		t.Fatalf("sweep-everything counts = %+v", st)
	}
	if ss := s.Stats(); ss.UniqueNodes != 0 || ss.UniqueBytes != 0 {
		t.Fatalf("unique footprint after full sweep = %+v", ss)
	}
	// The store is still usable: a fresh Put round-trips.
	h := s.Put([]byte("afterlife"))
	if got, ok := s.Get(h); !ok || !bytes.Equal(got, []byte("afterlife")) {
		t.Fatalf("Put after full sweep = %q, %v", got, ok)
	}
}

// testSweepKeepsConcurrentReadsSafe hammers Get on retained nodes while a
// sweep removes the rest — the reader side of the GC contract (writers must
// be quiesced; readers of live nodes need not be). Run under -race.
func testSweepKeepsConcurrentReadsSafe(t *testing.T, newStore Factory) {
	s := sweepable(t, newStore(t))
	const n = 300
	liveHashes := make([]hash.Hash, 0, n/2)
	live := make(map[hash.Hash]bool)
	for i := 0; i < n; i++ {
		h := s.Put(blob(i))
		if i%2 == 0 {
			liveHashes = append(liveHashes, h)
			live[h] = true
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				h := liveHashes[(w*131+r)%len(liveHashes)]
				if _, ok := s.Get(h); !ok {
					t.Errorf("live node vanished during sweep")
					return
				}
			}
		}(w)
	}
	if _, err := store.Sweep(s, func(h hash.Hash) bool { return live[h] }); err != nil {
		t.Errorf("Sweep: %v", err)
	}
	wg.Wait()
}

// barrierStore skips the test unless s supports the write barrier (and
// sweeping, which the barrier exists to make concurrency-safe).
func barrierStore(t *testing.T, s store.Store) store.Store {
	t.Helper()
	s = sweepable(t, s)
	if _, ok := s.(store.BarrierStore); !ok {
		t.Skip("store does not implement BarrierStore")
	}
	return s
}

// testBarrierProtectsNewWrites pins the core barrier guarantee: a node
// written after the barrier is armed survives a sweep whose predicate
// rejects it, and is reclaimed normally once the barrier is disarmed.
func testBarrierProtectsNewWrites(t *testing.T, newStore Factory) {
	s := barrierStore(t, newStore(t))
	old := s.Put([]byte("pre-barrier node"))
	bar, err := store.ArmBarrier(s)
	if err != nil {
		t.Fatalf("ArmBarrier: %v", err)
	}
	fresh := s.Put([]byte("post-barrier node"))
	if !bar.Has(fresh) {
		t.Fatal("barrier did not record a Put made while armed")
	}
	if bar.Has(old) {
		t.Fatal("barrier recorded a Put made before it was armed")
	}
	st, err := store.Sweep(s, func(hash.Hash) bool { return false })
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if st.LiveNodes != 1 || st.SweptNodes != 1 {
		t.Fatalf("sweep counts with armed barrier = %+v, want 1 live / 1 swept", st)
	}
	if _, ok := s.Get(fresh); !ok {
		t.Fatal("node written under the armed barrier was swept")
	}
	if _, ok := s.Get(old); ok {
		t.Fatal("pre-barrier dead node survived the sweep")
	}
	store.DisarmBarrier(s)
	if _, err := store.Sweep(s, func(hash.Hash) bool { return false }); err != nil {
		t.Fatalf("Sweep after disarm: %v", err)
	}
	if _, ok := s.Get(fresh); ok {
		t.Fatal("node survived a sweep after the barrier was disarmed")
	}
}

// testBarrierRecordsDedupHits covers the dedup-vs-GC race: re-putting
// content byte-identical to a doomed node must mark it live for the pass,
// or the new writer's "stored" node vanishes under it.
func testBarrierRecordsDedupHits(t *testing.T, newStore Factory) {
	s := barrierStore(t, newStore(t))
	h := s.Put([]byte("shared content"))
	bar, err := store.ArmBarrier(s)
	if err != nil {
		t.Fatalf("ArmBarrier: %v", err)
	}
	defer store.DisarmBarrier(s)
	if got := s.Put([]byte("shared content")); got != h {
		t.Fatalf("dedup re-put returned %v, want %v", got, h)
	}
	if !bar.Has(h) {
		t.Fatal("barrier did not record the dedup hit")
	}
	if _, err := store.Sweep(s, func(hash.Hash) bool { return false }); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if _, ok := s.Get(h); !ok {
		t.Fatal("deduplicated re-put was swept despite the armed barrier")
	}
}

// testBarrierRecordsBatches verifies both batch write paths record while
// armed.
func testBarrierRecordsBatches(t *testing.T, newStore Factory) {
	s := barrierStore(t, newStore(t))
	bar, err := store.ArmBarrier(s)
	if err != nil {
		t.Fatalf("ArmBarrier: %v", err)
	}
	defer store.DisarmBarrier(s)
	items := make([][]byte, 40)
	for i := range items {
		items[i] = blob(i)
	}
	hs := store.PutBatch(s, items[:20])
	hashed := make([]hash.Hash, 20)
	for i, it := range items[20:] {
		hashed[i] = hash.Of(it)
	}
	store.PutBatchHashed(s, hashed, items[20:])
	hs = append(hs, hashed...)
	for i, h := range hs {
		if !bar.Has(h) {
			t.Fatalf("barrier missed batch item %d", i)
		}
	}
	if _, err := store.Sweep(s, func(hash.Hash) bool { return false }); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for i, h := range hs {
		if _, ok := s.Get(h); !ok {
			t.Fatalf("batch item %d written under the barrier was swept", i)
		}
	}
}

// testBarrierArmSemantics pins down the one-armed-barrier rule.
func testBarrierArmSemantics(t *testing.T, newStore Factory) {
	s := barrierStore(t, newStore(t))
	if _, err := store.ArmBarrier(s); err != nil {
		t.Fatalf("first ArmBarrier: %v", err)
	}
	if _, err := store.ArmBarrier(s); !errors.Is(err, store.ErrBarrierArmed) {
		t.Fatalf("second ArmBarrier = %v, want ErrBarrierArmed", err)
	}
	store.DisarmBarrier(s)
	store.DisarmBarrier(s) // disarming an unarmed store is a no-op
	bar, err := store.ArmBarrier(s)
	if err != nil {
		t.Fatalf("re-ArmBarrier after disarm: %v", err)
	}
	if bar.Len() != 0 {
		t.Fatalf("fresh barrier is not empty: %d digests", bar.Len())
	}
	store.DisarmBarrier(s)
}

// testBarrierKeepsConcurrentWritesSafe races writers against a sweep with
// the barrier armed: every node written while armed must be readable after
// the sweep, whichever side of the pass each write landed on. Run under
// -race.
func testBarrierKeepsConcurrentWritesSafe(t *testing.T, newStore Factory) {
	s := barrierStore(t, newStore(t))
	for i := 0; i < 200; i++ {
		s.Put(blob(i)) // dead weight for the sweep to chew through
	}
	if _, err := store.ArmBarrier(s); err != nil {
		t.Fatalf("ArmBarrier: %v", err)
	}
	defer store.DisarmBarrier(s)
	const writers, perWriter = 4, 100
	written := make([][]hash.Hash, writers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				data := []byte(fmt.Sprintf("writer-%d-item-%04d", w, i))
				if i%10 == 0 {
					hs := store.PutBatch(s, [][]byte{data})
					written[w] = append(written[w], hs[0])
					continue
				}
				written[w] = append(written[w], s.Put(data))
			}
		}(w)
	}
	close(start)
	if _, err := store.Sweep(s, func(hash.Hash) bool { return false }); err != nil {
		t.Errorf("Sweep: %v", err)
	}
	wg.Wait()
	for w := range written {
		for i, h := range written[w] {
			if _, ok := s.Get(h); !ok {
				t.Fatalf("writer %d item %d vanished during the armed sweep", w, i)
			}
		}
	}
}

// testCloseStability pins the after-Close contract for closeable stores:
// no operation panics, and every operation's outcome — data or error — is
// the same on repeated calls. A half-torn-down store that answers
// differently each time is the failure mode this rules out; whether an op
// errors or degrades to a miss is the backend's choice (an in-memory store
// closes to a no-op, a disk store reports its closed state).
func testCloseStability(t *testing.T, newStore Factory) {
	s := newStore(t)
	c, ok := s.(io.Closer)
	if !ok {
		t.Skip("store does not implement io.Closer")
	}
	data := []byte("written before close")
	h := s.Put(data)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s.Put([]byte("written after close")) // must not panic
	got1, ok1 := s.Get(h)
	got2, ok2 := s.Get(h)
	if ok1 != ok2 || !bytes.Equal(got1, got2) {
		t.Fatalf("Get after Close unstable: (%q,%v) then (%q,%v)", got1, ok1, got2, ok2)
	}
	if ok1 && !bytes.Equal(got1, data) {
		t.Fatalf("Get after Close returned wrong data: %q", got1)
	}
	sameErr := func(op string, f func() error) {
		e1, e2 := f(), f()
		if (e1 == nil) != (e2 == nil) || (e1 != nil && e1.Error() != e2.Error()) {
			t.Fatalf("%s after Close unstable: %v then %v", op, e1, e2)
		}
	}
	if _, ok := s.(store.Deleter); ok {
		sameErr("Delete", func() error { _, err := store.Delete(s, h); return err })
	}
	if _, ok := s.(store.Sweeper); ok {
		sameErr("Sweep", func() error {
			_, err := store.Sweep(s, func(hash.Hash) bool { return true })
			return err
		})
	}
	sameErr("Flush", func() error { return store.Flush(s) })
	sameErr("Close", c.Close) // double Close is stable, not a panic
}

// testTransientPutRetryNoGhosts drives the factory's store through a fault
// injector that drops every second Put, retries each dropped write, and
// checks the store ends bit-for-bit and counter-for-counter as if no fault
// had happened: every node readable, no ghost records, dedup accounting
// intact. This is the write-side recovery contract the version layer's
// commit retry leans on.
func testTransientPutRetryNoGhosts(t *testing.T, newStore Factory) {
	s := newStore(t)
	fs := faultstore.Wrap(s, faultstore.Config{PutFailEvery: 2})
	const n = 40
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		data := blob(i)
		hs[i] = fs.Put(data)
		for !fs.Has(hs[i]) { // Has is never faulted: it reports base truth
			fs.Put(data)
		}
	}
	if drops := fs.Counters().PutDrops; drops == 0 {
		t.Fatal("injector dropped nothing; the test exercised no fault")
	}
	for i, h := range hs {
		got, ok := s.Get(h)
		if !ok || !bytes.Equal(got, blob(i)) {
			t.Fatalf("node %d missing or corrupt after drop+retry: %q, %v", i, got, ok)
		}
	}
	st := s.Stats()
	if st.UniqueNodes != n {
		t.Fatalf("UniqueNodes = %d after retries, want %d (ghost or lost records)", st.UniqueNodes, n)
	}
	if st.DedupHits != st.RawNodes-st.UniqueNodes {
		t.Fatalf("dedup accounting broken after retries: %+v", st)
	}
}

// testSweepFaultLeavesUsageConsistent checks a failed Sweep is a clean
// no-op: no node half-deleted, unique accounting unchanged, disk usage (if
// the backend reports one) unchanged — and after the fault clears, a real
// sweep still reclaims.
func testSweepFaultLeavesUsageConsistent(t *testing.T, newStore Factory) {
	s := sweepable(t, newStore(t))
	const n = 30
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = s.Put(blob(i))
	}
	usage0, hasUsage := store.DiskUsageOf(s)
	fs := faultstore.Wrap(s, faultstore.Config{SweepFailEvery: 1})
	if _, err := store.Sweep(fs, func(hash.Hash) bool { return false }); !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("injected Sweep error = %v", err)
	}
	for i, h := range hs {
		if got, ok := s.Get(h); !ok || !bytes.Equal(got, blob(i)) {
			t.Fatalf("node %d disturbed by failed sweep", i)
		}
	}
	if st := s.Stats(); st.UniqueNodes != n {
		t.Fatalf("UniqueNodes = %d after failed sweep, want %d", st.UniqueNodes, n)
	}
	if hasUsage {
		if usage1, _ := store.DiskUsageOf(s); usage1 != usage0 {
			t.Fatalf("disk usage moved across a failed sweep: %d -> %d", usage0, usage1)
		}
	}
	// Fault cleared: the same sweep through the healed injector reclaims.
	fs.Heal()
	live := map[hash.Hash]bool{hs[0]: true}
	st, err := store.Sweep(fs, func(h hash.Hash) bool { return live[h] })
	if err != nil {
		t.Fatalf("Sweep after Heal: %v", err)
	}
	if st.LiveNodes != 1 || st.SweptNodes != n-1 {
		t.Fatalf("sweep after heal = %+v, want 1 live / %d swept", st, n-1)
	}
	if _, ok := s.Get(hs[0]); !ok {
		t.Fatal("live node lost by post-heal sweep")
	}
	if _, ok := s.Get(hs[1]); ok {
		t.Fatal("dead node survived post-heal sweep")
	}
}

// testUsableAfterNoSpaceWindow drives the backend through a persistent
// write-failure window (faultstore's NoSpace mode, the injected full disk)
// and checks the degradation contract every backend owes its callers:
// while degraded, reads of previously written data keep working and the
// write path fails typed-and-retryable (errors.Is(store.ErrNoSpace));
// after the condition clears, writes succeed again and the store's
// accounting shows no ghost of the rejected window.
func testUsableAfterNoSpaceWindow(t *testing.T, newStore Factory) {
	s := newStore(t)
	fs := faultstore.Wrap(s, faultstore.Config{})
	const n = 20
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = fs.Put(blob(i))
	}
	if err := store.Flush(fs); err != nil {
		t.Fatal(err)
	}

	fs.SetConfig(faultstore.Config{NoSpace: true})
	// Writes: dropped (Put) or rejected typed (Flush), never torn.
	ghost := fs.Put(blob(n))
	if fs.Has(ghost) {
		t.Fatal("Put during the no-space window reached the store")
	}
	if err := store.Flush(fs); !errors.Is(err, store.ErrNoSpace) {
		t.Fatalf("Flush during no-space = %v, want ErrNoSpace", err)
	}
	// Reads of everything written before the window still work.
	for i, h := range hs {
		if got, ok := fs.Get(h); !ok || !bytes.Equal(got, blob(i)) {
			t.Fatalf("node %d unreadable during the no-space window", i)
		}
	}
	if fs.Counters().NoSpaceHits == 0 {
		t.Fatal("no-space mode injected nothing")
	}

	// Heal: the same writes retry through, and the store carries no ghost
	// records from the rejected window.
	fs.Heal()
	redo := fs.Put(blob(n))
	if got, ok := fs.Get(redo); !ok || !bytes.Equal(got, blob(n)) {
		t.Fatal("write after heal unreadable")
	}
	if err := store.Flush(fs); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if st := s.Stats(); st.UniqueNodes != n+1 {
		t.Fatalf("UniqueNodes = %d after heal, want %d (ghost or lost records)", st.UniqueNodes, n+1)
	}
}

// blob generates deterministic distinct content of varied length.
func blob(i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("node-%04d|", i)), i%7+1)
}
