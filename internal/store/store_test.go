package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewMemStore()
	data := []byte("node contents")
	h := s.Put(data)
	if h != hash.Of(data) {
		t.Fatalf("Put returned %v, want content digest", h)
	}
	got, ok := s.Get(h)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if !s.Has(h) {
		t.Fatal("Has = false after Put")
	}
}

func TestGetMissing(t *testing.T) {
	s := NewMemStore()
	if _, ok := s.Get(hash.Of([]byte("absent"))); ok {
		t.Fatal("Get on empty store returned ok")
	}
	if s.Stats().Misses != 1 {
		t.Fatalf("Misses = %d, want 1", s.Stats().Misses)
	}
}

func TestPutIsDeduplicated(t *testing.T) {
	s := NewMemStore()
	data := []byte("same node")
	h1 := s.Put(data)
	h2 := s.Put(data)
	if h1 != h2 {
		t.Fatal("identical content produced different hashes")
	}
	st := s.Stats()
	if st.UniqueNodes != 1 || st.RawNodes != 2 || st.DedupHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueBytes != int64(len(data)) || st.RawBytes != 2*int64(len(data)) {
		t.Fatalf("byte accounting = %+v", st)
	}
}

func TestPutCopiesCallerBuffer(t *testing.T) {
	s := NewMemStore()
	buf := []byte("mutate me")
	h := s.Put(buf)
	buf[0] = 'X'
	got, _ := s.Get(h)
	if got[0] == 'X' {
		t.Fatal("store aliases caller buffer")
	}
}

func TestSizeOfAndLen(t *testing.T) {
	s := NewMemStore()
	h := s.Put([]byte("12345"))
	if s.SizeOf(h) != 5 {
		t.Fatalf("SizeOf = %d", s.SizeOf(h))
	}
	if s.SizeOf(hash.Of([]byte("other"))) != 0 {
		t.Fatal("SizeOf(absent) != 0")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStatsString(t *testing.T) {
	s := NewMemStore()
	s.Put([]byte("x"))
	if s.Stats().String() == "" {
		t.Fatal("empty Stats string")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := NewMemStore()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				data := []byte(fmt.Sprintf("w%d-i%d", w%4, i)) // overlap across workers
				h := s.Put(data)
				if got, ok := s.Get(h); !ok || !bytes.Equal(got, data) {
					t.Errorf("Get after Put failed for %q", data)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 4*perWorker {
		t.Fatalf("Len = %d, want %d", s.Len(), 4*perWorker)
	}
}

func TestUniqueBytesNeverExceedsRawProperty(t *testing.T) {
	f := func(blobs [][]byte) bool {
		s := NewMemStore()
		for _, b := range blobs {
			s.Put(b)
		}
		st := s.Stats()
		return st.UniqueBytes <= st.RawBytes && st.UniqueNodes <= st.RawNodes &&
			st.DedupHits == st.RawNodes-st.UniqueNodes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCachedStoreServesFromCache(t *testing.T) {
	back := NewMemStore()
	c := NewCachedStore(back, 1<<20)
	h := c.Put([]byte("hot node"))

	before := back.Stats().Gets
	for i := 0; i < 5; i++ {
		if _, ok := c.Get(h); !ok {
			t.Fatal("cached Get failed")
		}
	}
	if got := back.Stats().Gets - before; got != 0 {
		t.Fatalf("backing Gets = %d, want 0 (all cached)", got)
	}
	hits, misses := c.CacheStats()
	if hits != 5 || misses != 0 {
		t.Fatalf("cache hits=%d misses=%d", hits, misses)
	}
}

func TestCachedStoreFallsBackToBacking(t *testing.T) {
	back := NewMemStore()
	h := back.Put([]byte("only in backing"))
	c := NewCachedStore(back, 1<<20)
	got, ok := c.Get(h)
	if !ok || string(got) != "only in backing" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Second read must now be cached.
	before := back.Stats().Gets
	c.Get(h)
	if back.Stats().Gets != before {
		t.Fatal("second Get hit backing store")
	}
}

func TestCachedStoreEvicts(t *testing.T) {
	back := NewMemStore()
	c := NewCachedStore(back, 64) // tiny budget
	var hs []hash.Hash
	for i := 0; i < 10; i++ {
		hs = append(hs, c.Put(bytes.Repeat([]byte{byte(i)}, 32)))
	}
	// Early nodes must have been evicted; reads go to backing.
	before := back.Stats().Gets
	c.Get(hs[0])
	if back.Stats().Gets == before {
		t.Fatal("expected eviction to force backing read")
	}
}

func TestCachedStoreZeroBudgetDisablesCaching(t *testing.T) {
	back := NewMemStore()
	c := NewCachedStore(back, 0)
	h := c.Put([]byte("uncached"))
	before := back.Stats().Gets
	c.Get(h)
	c.Get(h)
	if back.Stats().Gets-before != 2 {
		t.Fatal("zero-budget cache served a hit")
	}
}

func TestCachedStoreHas(t *testing.T) {
	back := NewMemStore()
	c := NewCachedStore(back, 1<<20)
	h := back.Put([]byte("backing only"))
	if !c.Has(h) {
		t.Fatal("Has should consult backing")
	}
	h2 := c.Put([]byte("both"))
	if !c.Has(h2) {
		t.Fatal("Has should find cached node")
	}
}
