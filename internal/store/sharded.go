package store

import (
	"encoding/binary"
	"sync"

	"repro/internal/hash"
)

// DefaultShards is the shard count NewShardedStore uses when asked for zero
// or fewer shards. 64 keeps per-shard contention negligible on typical
// machines while the per-shard overhead (a mutex and an empty map) stays
// trivial.
const DefaultShards = 64

// ShardedStore is an in-memory Store partitioned into N independently
// locked shards. Content addressing makes sharding natural: the SHA-256 key
// is uniformly distributed, so the leading bytes of the digest pick a shard
// and concurrent writers touch disjoint locks almost always. Accounting
// uses atomic counters, so Stats never serializes the data path either.
//
// It removes the global-mutex bottleneck MemStore exhibits when many index
// updates run concurrently (the production-serving scenario of the ROADMAP),
// while keeping identical Put/Get/Has/Stats semantics.
type ShardedStore struct {
	mask   uint32
	shards []memShard
	ctr    counters
	meta   metaMap
	bar    barrierHolder
}

type memShard struct {
	mu    sync.RWMutex
	nodes map[hash.Hash][]byte
	// pad the 32 bytes of mutex+map up to a full 64-byte cache line so
	// neighbouring shard locks do not false-share under heavy concurrent
	// writes.
	_ [32]byte
}

// NewShardedStore returns an empty store with n shards, rounded up to the
// next power of two. n <= 0 selects DefaultShards.
func NewShardedStore(n int) *ShardedStore {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &ShardedStore{
		mask:   uint32(size - 1),
		shards: make([]memShard, size),
	}
	for i := range s.shards {
		s.shards[i].nodes = make(map[hash.Hash][]byte)
	}
	return s
}

// ShardCount returns the number of shards (always a power of two).
func (s *ShardedStore) ShardCount() int { return len(s.shards) }

// shardIndex picks the shard owning h from the digest's leading bytes,
// which SHA-256 distributes uniformly.
func (s *ShardedStore) shardIndex(h hash.Hash) uint32 {
	return binary.BigEndian.Uint32(h[:4]) & s.mask
}

// shardFor returns the shard owning h.
func (s *ShardedStore) shardFor(h hash.Hash) *memShard {
	return &s.shards[s.shardIndex(h)]
}

// Put implements Store. The data is copied, so callers may reuse their
// buffer.
func (s *ShardedStore) Put(data []byte) hash.Hash {
	h := hash.Of(data)
	if b := s.bar.beginWrite(); b != nil {
		b.record(h)
	}
	defer s.bar.endWrite()
	s.ctr.rawNodes.Add(1)
	s.ctr.rawBytes.Add(int64(len(data)))
	sh := s.shardFor(h)
	sh.mu.Lock()
	if _, ok := sh.nodes[h]; ok {
		sh.mu.Unlock()
		s.ctr.dedupHits.Add(1)
		return h
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	sh.nodes[h] = cp
	sh.mu.Unlock()
	s.ctr.uniqueNodes.Add(1)
	s.ctr.uniqueBytes.Add(int64(len(data)))
	return h
}

// Get implements Store. The returned slice is the resident buffer, not a
// copy (see the Store.Get no-copy contract).
func (s *ShardedStore) Get(h hash.Hash) ([]byte, bool) {
	s.ctr.gets.Add(1)
	sh := s.shardFor(h)
	sh.mu.RLock()
	data, ok := sh.nodes[h]
	sh.mu.RUnlock()
	if !ok {
		s.ctr.misses.Add(1)
	}
	return data, ok
}

// Has implements Store.
func (s *ShardedStore) Has(h hash.Hash) bool {
	sh := s.shardFor(h)
	sh.mu.RLock()
	_, ok := sh.nodes[h]
	sh.mu.RUnlock()
	return ok
}

// Stats implements Store.
func (s *ShardedStore) Stats() Stats { return s.ctr.snapshot() }

// Len returns the number of distinct nodes resident across all shards.
func (s *ShardedStore) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return total
}

// SizeOf returns the stored size of h in bytes, or 0 if absent.
func (s *ShardedStore) SizeOf(h hash.Hash) int {
	sh := s.shardFor(h)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.nodes[h])
}
