package store

import "sync/atomic"

// counters holds the Stats fields as atomics so concurrent backends
// (ShardedStore, DiskStore) can account without funnelling every operation
// through one lock. Snapshots taken while writers are active are
// per-counter consistent; cross-counter invariants (UniqueBytes ≤ RawBytes)
// hold at rest.
type counters struct {
	uniqueNodes atomic.Int64
	uniqueBytes atomic.Int64
	rawNodes    atomic.Int64
	rawBytes    atomic.Int64
	dedupHits   atomic.Int64
	gets        atomic.Int64
	misses      atomic.Int64
}

// snapshot materializes the counters as a Stats value.
func (c *counters) snapshot() Stats {
	return Stats{
		UniqueNodes: c.uniqueNodes.Load(),
		UniqueBytes: c.uniqueBytes.Load(),
		RawNodes:    c.rawNodes.Load(),
		RawBytes:    c.rawBytes.Load(),
		DedupHits:   c.dedupHits.Load(),
		Gets:        c.gets.Load(),
		Misses:      c.misses.Load(),
	}
}
