package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/hash"
)

// This file implements the reclamation half of DiskStore: logical deletes
// against the in-memory directory, and Sweep — mark-complement removal plus
// segment compaction.
//
// Deletes are logical: removing a digest from the directory makes the node
// unreadable immediately, but its record bytes stay in the segment file
// until a Sweep compacts it. A reopen before that compaction resurrects the
// record (the rebuild-on-open scan registers every intact record) — space
// garbage a later Sweep reclaims, never a correctness issue, because a
// resurrected node is just dead content nothing references.
//
// Compaction is crash-safe via write-new-then-swap: the live records of a
// segment are written to seg-NNNNNN.seg.compact, fsynced, and atomically
// renamed over the original. A crash before the rename leaves the original
// untouched (the orphaned .compact file is discarded on the next open); a
// crash after the rename leaves a complete, valid segment. Segment numbering
// stays contiguous either way, which the open scan requires.

// Delete implements Deleter. The node becomes unreadable now; its segment
// bytes are reclaimed by the next Sweep whose threshold the segment crosses.
func (d *DiskStore) Delete(h hash.Hash) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, errors.New("store: disk: Delete after Close")
	}
	return d.deleteLocked(h), nil
}

// deleteLocked removes h from whichever in-memory table holds it. Caller
// holds d.mu.
func (d *DiskStore) deleteLocked(h hash.Hash) bool {
	if data, ok := d.resident[h]; ok {
		delete(d.resident, h)
		d.ctr.uniqueNodes.Add(-1)
		d.ctr.uniqueBytes.Add(-int64(len(data)))
		return true
	}
	loc, ok := d.locs[h]
	if !ok {
		// A degraded-mode entry lives only in pending, queued for replay;
		// dropping the pending bytes makes the replay loop skip its digest.
		if p, ok := d.pending[h]; ok {
			delete(d.pending, h)
			d.pendingBytes -= len(p)
			d.ctr.uniqueNodes.Add(-1)
			d.ctr.uniqueBytes.Add(-int64(len(p)))
			return true
		}
		return false
	}
	delete(d.locs, h)
	if p, ok := d.pending[h]; ok {
		// The record is still only buffered; it will reach the file on the
		// next flush as dead bytes. Dropping the pending entry keeps Get
		// honest immediately.
		delete(d.pending, h)
		d.pendingBytes -= len(p)
	}
	d.ctr.uniqueNodes.Add(-1)
	d.ctr.uniqueBytes.Add(-int64(loc.n))
	return true
}

// Sweep implements Sweeper: buffered appends are flushed, every node the
// LiveFunc rejects is dropped from the directory, and segments whose live
// fraction fell below DiskOptions.CompactLiveFraction are rewritten to only
// their live records. The armed barrier, if any, extends the live predicate
// so records appended since the barrier was armed survive the pass.
//
// The whole pass runs under d.mu, but readers are barely affected: Get
// serves flushed records lock-free from a reader handle captured under a
// brief RLock, and compaction retires (never closes) the handles such
// readers hold.
func (d *DiskStore) Sweep(live LiveFunc) (SweepStats, error) {
	live = d.bar.wrap(live)
	d.mu.Lock()
	defer d.mu.Unlock()
	var st SweepStats
	if d.closed {
		return st, errors.New("store: disk: Sweep after Close")
	}
	if err := d.flushLocked(); err != nil {
		return st, err
	}
	for h, data := range d.resident {
		if live(h) {
			st.LiveNodes++
			st.LiveBytes += int64(len(data))
			continue
		}
		delete(d.resident, h)
		st.SweptNodes++
		st.SweptBytes += int64(len(data))
	}
	for h, loc := range d.locs {
		if live(h) {
			st.LiveNodes++
			st.LiveBytes += int64(loc.n)
			continue
		}
		delete(d.locs, h)
		st.SweptNodes++
		st.SweptBytes += int64(loc.n)
	}
	d.ctr.uniqueNodes.Add(-st.SweptNodes)
	d.ctr.uniqueBytes.Add(-st.SweptBytes)

	compacted, err := d.compactLocked()
	st.SegmentsCompacted = compacted
	return st, err
}

// liveRec pairs a surviving digest with its current location, for rewriting
// one segment's live records in file order.
type liveRec struct {
	h   hash.Hash
	loc recordLoc
}

// compactLocked rewrites every segment whose live fraction is below the
// configured threshold. Caller holds d.mu with the write buffer flushed.
func (d *DiskStore) compactLocked() (int, error) {
	liveBytes := make([]int64, len(d.readers))
	recs := make([][]liveRec, len(d.readers))
	for h, loc := range d.locs {
		liveBytes[loc.seg] += recordHeaderSize + int64(loc.n)
		recs[loc.seg] = append(recs[loc.seg], liveRec{h: h, loc: loc})
	}
	compacted := 0
	for id := range d.readers {
		var segSize int64
		if id == d.activeID {
			segSize = d.activeSize
		} else if fi, err := d.readers[id].Stat(); err == nil {
			segSize = fi.Size()
		}
		if segSize == 0 || liveBytes[id] == segSize {
			continue // nothing on disk, or nothing dead
		}
		// Fully dead segments always compact (to an empty file, which the
		// open scan accepts and the numbering requires); partially live
		// ones only when they crossed the threshold.
		if liveBytes[id] > 0 &&
			float64(liveBytes[id])/float64(segSize) >= d.opts.CompactLiveFraction {
			continue
		}
		if err := d.compactSegment(id, recs[id]); err != nil {
			d.fail(err)
			return compacted, err
		}
		compacted++
	}
	return compacted, nil
}

// compactSegment rewrites segment id to hold exactly recs (write-new-then-
// swap) and repoints the directory at the new offsets. Caller holds d.mu
// with the write buffer flushed.
func (d *DiskStore) compactSegment(id int, recs []liveRec) error {
	sort.Slice(recs, func(i, j int) bool { return recs[i].loc.off < recs[j].loc.off })
	path := filepath.Join(d.dirPath, segmentName(id))
	tmpPath := path + compactSuffix
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: disk: compact %s: %w", filepath.Base(path), err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: disk: compact %s: %w", filepath.Base(path), err)
	}
	old := d.readers[id]
	bw := bufio.NewWriterSize(tmp, 1<<20)
	newLocs := make([]recordLoc, len(recs))
	var off int64
	var hdr [recordHeaderSize]byte
	var payload []byte
	for i, r := range recs {
		if int(r.loc.n) > cap(payload) {
			payload = make([]byte, r.loc.n)
		}
		payload = payload[:r.loc.n]
		if _, err := old.ReadAt(payload, r.loc.off); err != nil {
			return fail(fmt.Errorf("read @%d: %w", r.loc.off, err))
		}
		binary.BigEndian.PutUint32(hdr[:4], uint32(r.loc.n))
		copy(hdr[4:], r.h[:])
		if _, err := bw.Write(hdr[:]); err != nil {
			return fail(err)
		}
		if _, err := bw.Write(payload); err != nil {
			return fail(err)
		}
		newLocs[i] = recordLoc{seg: int32(id), n: r.loc.n, off: off + recordHeaderSize}
		off += recordHeaderSize + int64(r.loc.n)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: disk: compact %s: %w", filepath.Base(path), err)
	}
	// Swap. The append writer closes first (it is only ever used under
	// d.mu, so nothing can be mid-write); the rename is atomic, so readers
	// never observe a half-written segment. If the rename fails the
	// original file is intact: reattach the writer and keep serving from
	// the still-installed old reader.
	d.crash(CrashCompactRename)
	if id == d.activeID && d.active != nil {
		if err := d.active.Close(); err != nil {
			d.fail(err)
		}
		d.active = nil
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		if id == d.activeID {
			if werr := d.openActiveWriter(); werr != nil {
				d.fail(werr)
			}
		}
		return fmt.Errorf("store: disk: compact swap %s: %w", filepath.Base(path), err)
	}
	d.crash(CrashCompactRenamed)
	rf, err := os.Open(path)
	if err != nil {
		// The directory entry now names the compacted file but it could
		// not be opened. The old handle still reads the original inode and
		// d.locs still holds the original offsets, so the store stays
		// consistent (serving the unlinked file) until Close.
		err = fmt.Errorf("store: disk: compact reopen %s: %w", filepath.Base(path), err)
		d.fail(err)
		return err
	}
	// Retire the old reader instead of closing it: Get reads flushed
	// records lock-free via a handle captured under RLock, so a concurrent
	// reader may still hold it. The unlinked inode stays readable (and its
	// record offsets stay valid) as long as the handle is open; Close
	// releases all retired handles.
	d.obsolete = append(d.obsolete, old)
	d.readers[id] = rf
	for i, r := range recs {
		d.locs[r.h] = newLocs[i]
	}
	if id == d.activeID {
		d.activeSize = off
		if err := d.openActiveWriter(); err != nil {
			return err
		}
	}
	return nil
}

// DiskUsage flushes buffered appends and returns the total bytes the
// segment files currently occupy on disk — the quantity the retention
// experiment shows shrinking after GC.
func (d *DiskStore) DiskUsage() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, errors.New("store: disk: DiskUsage after Close")
	}
	if err := d.flushLocked(); err != nil {
		return 0, err
	}
	var total int64
	for _, f := range d.readers {
		fi, err := f.Stat()
		if err != nil {
			return 0, fmt.Errorf("store: disk: %w", err)
		}
		total += fi.Size()
	}
	return total, nil
}

// DiskUsageOf reports the on-disk byte footprint behind s when s is a
// DiskStore (possibly wrapped in a CachedStore, or in any foreign wrapper
// exposing a DiskUsage method, such as faultstore.FaultStore); ok is false
// for purely in-memory stores.
func DiskUsageOf(s Store) (n int64, ok bool) {
	switch t := s.(type) {
	case *DiskStore:
		u, err := t.DiskUsage()
		return u, err == nil
	case *CachedStore:
		return DiskUsageOf(t.backing)
	}
	if u, ok := s.(interface{ DiskUsage() (int64, error) }); ok {
		n, err := u.DiskUsage()
		return n, err == nil
	}
	return 0, false
}
