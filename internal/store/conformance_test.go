package store_test

import (
	"os"
	"testing"

	"repro/internal/store"
	"repro/internal/store/storetest"
)

// TestConformance runs the shared store contract against every backend,
// including the cache layer and the factory-built configurations.
func TestConformance(t *testing.T) {
	backends := []struct {
		name string
		new  storetest.Factory
	}{
		{"MemStore", func(t *testing.T) store.Store {
			return store.NewMemStore()
		}},
		{"ShardedStore", func(t *testing.T) store.Store {
			return store.NewShardedStore(8)
		}},
		{"ShardedStore1", func(t *testing.T) store.Store {
			return store.NewShardedStore(1) // degenerate single shard
		}},
		{"CachedStore", func(t *testing.T) store.Store {
			return store.NewCachedStore(store.NewMemStore(), 1<<20)
		}},
		{"DiskStore", func(t *testing.T) store.Store {
			d, err := store.OpenDiskStore(t.TempDir(), store.DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		}},
		{"DiskStoreTinySegments", func(t *testing.T) store.Store {
			// Tiny segments + tiny flush buffer force rolling and
			// read-after-flush paths inside the suite.
			d, err := store.OpenDiskStore(t.TempDir(), store.DiskOptions{SegmentBytes: 256, FlushBytes: 64})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		}},
		{"CachedDiskStore", func(t *testing.T) store.Store {
			s, err := store.Open(store.Config{Backend: store.BackendDisk, Dir: t.TempDir(), CacheBytes: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { store.Release(s) })
			return s
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			storetest.RunStoreTests(t, b.new)
		})
	}
}

func TestOpenSelectsBackend(t *testing.T) {
	s, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*store.MemStore); !ok {
		t.Fatalf("zero config opened %T, want *MemStore", s)
	}

	s, err = store.Open(store.Config{Backend: store.BackendSharded, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := s.(*store.ShardedStore)
	if !ok {
		t.Fatalf("sharded config opened %T", s)
	}
	if sh.ShardCount() != 8 {
		t.Fatalf("ShardCount = %d, want 8 (rounded up)", sh.ShardCount())
	}

	s, err = store.Open(store.Config{Backend: store.BackendDisk, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*store.DiskStore); !ok {
		t.Fatalf("disk config opened %T", s)
	}
	if err := store.Release(s); err != nil {
		t.Fatal(err)
	}

	if _, err := store.Open(store.Config{Backend: "bogus"}); err == nil {
		t.Fatal("unknown backend did not error")
	}
}

func TestOpenCacheLayering(t *testing.T) {
	s, err := store.Open(store.Config{Backend: store.BackendSharded, CacheBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*store.CachedStore); !ok {
		t.Fatalf("CacheBytes>0 opened %T, want *CachedStore", s)
	}
}

// TestOpenDiskIsEphemeral checks that factory-built disk stores clean their
// temp directory up on Release, and KeepFiles preserves it.
func TestOpenDiskIsEphemeral(t *testing.T) {
	base := t.TempDir()
	s, err := store.Open(store.Config{Backend: store.BackendDisk, Dir: base})
	if err != nil {
		t.Fatal(err)
	}
	dir := s.(*store.DiskStore).Dir()
	s.Put([]byte("ephemeral"))
	if err := store.Release(s); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err == nil {
		t.Fatalf("Release kept ephemeral dir %s", dir)
	}

	s, err = store.Open(store.Config{Backend: store.BackendDisk, Dir: base, KeepFiles: true})
	if err != nil {
		t.Fatal(err)
	}
	dir = s.(*store.DiskStore).Dir()
	s.Put([]byte("kept"))
	if err := store.Release(s); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("Release removed KeepFiles dir %s: %v", dir, err)
	}
}
