package faultstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/hash"
	"repro/internal/store"
	"repro/internal/store/faultstore"
)

func blob(i int) []byte { return []byte(fmt.Sprintf("fault-node-%04d", i)) }

// TestGetFaultScheduleIsDeterministic checks the counter-based schedule:
// every Nth Get misses, independent of seed, and the same run repeats
// identically.
func TestGetFaultScheduleIsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		fs := faultstore.Wrap(store.NewMemStore(), faultstore.Config{Seed: seed, GetFailEvery: 3})
		h := fs.Put([]byte("x"))
		pattern := make([]bool, 12)
		for i := range pattern {
			_, ok := fs.Get(h)
			pattern[i] = ok
		}
		return pattern
	}
	a, b := run(1), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule depends on seed at op %d", i)
		}
		wantOK := (i+1)%3 != 0
		if a[i] != wantOK {
			t.Fatalf("op %d: ok=%v, want %v", i, a[i], wantOK)
		}
	}
	fs := faultstore.Wrap(store.NewMemStore(), faultstore.Config{GetFailEvery: 3})
	h := fs.Put([]byte("x"))
	for i := 0; i < 12; i++ {
		fs.Get(h)
	}
	if c := fs.Counters(); c.GetFaults != 4 {
		t.Fatalf("GetFaults = %d, want 4", c.GetFaults)
	}
}

// TestPutDropAndRetry pins the transient-write contract: a dropped Put
// leaves no trace in the wrapped store, and the retry stores exactly one
// record — no ghosts, no duplicates.
func TestPutDropAndRetry(t *testing.T) {
	base := store.NewMemStore()
	fs := faultstore.Wrap(base, faultstore.Config{PutFailEvery: 2})
	a := fs.Put([]byte("first"))  // forwarded (op 1)
	b := fs.Put([]byte("second")) // dropped (op 2)
	if b != hash.Of([]byte("second")) {
		t.Fatalf("dropped Put returned wrong digest")
	}
	if _, ok := fs.Get(b); ok {
		t.Fatal("dropped Put is readable")
	}
	if got := fs.Counters().PutDrops; got != 1 {
		t.Fatalf("PutDrops = %d, want 1", got)
	}
	// Retry lands (op 3) and the store holds exactly the two distinct
	// records, with accounting identical to two clean Puts.
	if got := fs.Put([]byte("second")); got != b {
		t.Fatalf("retry digest mismatch")
	}
	for _, h := range []hash.Hash{a, b} {
		if _, ok := fs.Get(h); !ok {
			t.Fatalf("record %v missing after retry", h)
		}
	}
	st := base.Stats()
	if st.UniqueNodes != 2 || st.RawNodes != 2 || st.DedupHits != 0 {
		t.Fatalf("ghost records after drop+retry: %+v", st)
	}
}

// TestBatchDropsAreIndividual checks per-item drop scheduling inside a
// batch: one scheduled drop removes exactly one record.
func TestBatchDropsAreIndividual(t *testing.T) {
	base := store.NewMemStore()
	fs := faultstore.Wrap(base, faultstore.Config{PutFailEvery: 4})
	items := make([][]byte, 8)
	for i := range items {
		items[i] = blob(i)
	}
	hs := fs.PutBatch(items)
	missing := 0
	for _, h := range hs {
		if _, ok := base.Get(h); !ok {
			missing++
		}
	}
	if missing != 2 {
		t.Fatalf("%d records dropped from batch of 8 with PutFailEvery=4, want 2", missing)
	}
	if got := fs.Counters().PutDrops; got != 2 {
		t.Fatalf("PutDrops = %d, want 2", got)
	}
}

// TestTransientErrorsWrapErrInjected checks every error-returning path
// reports a value matching ErrInjected and leaves the wrapped store
// untouched.
func TestTransientErrorsWrapErrInjected(t *testing.T) {
	base := store.NewMemStore()
	fs := faultstore.Wrap(base, faultstore.Config{
		DeleteFailEvery: 1, SweepFailEvery: 1, MetaFailEvery: 1, FlushFailEvery: 1,
	})
	h := base.Put([]byte("victim"))
	if _, err := fs.Delete(h); !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("Delete error = %v", err)
	}
	if _, ok := base.Get(h); !ok {
		t.Fatal("injected Delete fault still deleted the node")
	}
	if _, err := fs.Sweep(func(hash.Hash) bool { return false }); !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("Sweep error = %v", err)
	}
	if _, ok := base.Get(h); !ok {
		t.Fatal("injected Sweep fault still swept the node")
	}
	if err := fs.SetMeta("k", []byte("v")); !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("SetMeta error = %v", err)
	}
	if _, ok, _ := base.GetMeta("k"); ok {
		t.Fatal("injected SetMeta fault still wrote metadata")
	}
	if err := fs.Flush(); !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("Flush error = %v", err)
	}
	// Heal: everything works again.
	fs.Heal()
	if ok, err := fs.Delete(h); err != nil || !ok {
		t.Fatalf("Delete after Heal = %v, %v", ok, err)
	}
	if err := fs.SetMeta("k", []byte("v")); err != nil {
		t.Fatalf("SetMeta after Heal: %v", err)
	}
}

// TestCrashPointFiresOnNthArrival checks ArmCrash(point, n) semantics and
// the Recovered helper.
func TestCrashPointFiresOnNthArrival(t *testing.T) {
	fs := faultstore.Wrap(store.NewMemStore(), faultstore.Config{})
	fs.ArmCrash(faultstore.CrashPut, 3)
	crashed := ""
	func() {
		defer func() {
			if p, ok := faultstore.Recovered(recover()); ok {
				crashed = p
			}
		}()
		fs.Put([]byte("a"))
		fs.Put([]byte("b"))
		fs.Put([]byte("c")) // third arrival: fires before forwarding
		t.Error("third Put did not crash")
	}()
	if crashed != faultstore.CrashPut {
		t.Fatalf("recovered point = %q", crashed)
	}
	// The crashing Put never forwarded, earlier ones did.
	if _, ok := fs.Get(hash.Of([]byte("c"))); ok {
		t.Fatal("crashing Put reached the store")
	}
	if _, ok := fs.Get(hash.Of([]byte("b"))); !ok {
		t.Fatal("pre-crash Put lost")
	}
	// The point disarmed itself: subsequent Puts proceed.
	fs.Put([]byte("c"))
	if _, ok := fs.Get(hash.Of([]byte("c"))); !ok {
		t.Fatal("Put after crash recovery did not proceed")
	}
	if p, ok := faultstore.Recovered("unrelated"); ok {
		t.Fatalf("Recovered accepted a foreign panic value: %q", p)
	}
}

// TestMidBatchCrashLeavesPrefix checks CrashPutBatchMid: the first half of
// the batch lands, the rest does not — the torn-batch disk state the
// crash-consistency matrix reopens from.
func TestMidBatchCrashLeavesPrefix(t *testing.T) {
	base := store.NewMemStore()
	fs := faultstore.Wrap(base, faultstore.Config{})
	items := make([][]byte, 10)
	for i := range items {
		items[i] = blob(i)
	}
	fs.ArmCrash(faultstore.CrashPutBatchMid, 1)
	func() {
		defer func() {
			if _, ok := faultstore.Recovered(recover()); !ok {
				t.Error("batch did not crash")
			}
		}()
		fs.PutBatch(items)
	}()
	for i, it := range items {
		_, ok := base.Get(hash.Of(it))
		if want := i < 5; ok != want {
			t.Fatalf("item %d present=%v after mid-batch crash, want %v", i, ok, want)
		}
	}
}

// TestHookRoutesDiskCrashPoints arms a DiskStore-internal crash point on
// the wrapper and checks the panic surfaces through the store's own write
// path, leaving on-disk state a reopen recovers.
func TestHookRoutesDiskCrashPoints(t *testing.T) {
	dir := t.TempDir()
	var fs *faultstore.FaultStore
	d, err := store.OpenDiskStore(dir, store.DiskOptions{
		CrashHook: func(p string) { fs.Hook(p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fs = faultstore.Wrap(d, faultstore.Config{})
	fs.Put([]byte("survives"))
	if err := fs.Flush(); err != nil { // unflushed appends die with the process
		t.Fatal(err)
	}
	fs.ArmCrash(store.CrashAppendRecord, 1)
	func() {
		defer func() {
			if p, ok := faultstore.Recovered(recover()); !ok || p != store.CrashAppendRecord {
				t.Errorf("recover = %q, %v", p, ok)
			}
		}()
		fs.Put([]byte("torn"))
		t.Error("append did not crash")
	}()
	d.CrashClose()
	re, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	if got, ok := re.Get(hash.Of([]byte("survives"))); !ok || !bytes.Equal(got, []byte("survives")) {
		t.Fatal("pre-crash record lost across reopen")
	}
	if _, ok := re.Get(hash.Of([]byte("torn"))); ok {
		t.Fatal("record from the crashed append resurrected")
	}
}

// corruptibleStore serves tampered bytes for chosen digests, to exercise
// verify-on-read (no built-in backend can be corrupted through its public
// surface — that is the point of content addressing).
type corruptibleStore struct {
	*store.MemStore
	bad map[hash.Hash]bool
}

func (c *corruptibleStore) Get(h hash.Hash) ([]byte, bool) {
	data, ok := c.MemStore.Get(h)
	if ok && c.bad[h] {
		tampered := append([]byte(nil), data...)
		tampered[0] ^= 0xff
		return tampered, true
	}
	return data, ok
}

// TestVerifyReadsCatchesCorruption checks scrub-on-read: a payload that no
// longer re-hashes to its address is served as a miss and counted.
func TestVerifyReadsCatchesCorruption(t *testing.T) {
	cs := &corruptibleStore{MemStore: store.NewMemStore(), bad: map[hash.Hash]bool{}}
	fs := faultstore.Wrap(cs, faultstore.Config{VerifyReads: true})
	good := fs.Put([]byte("intact"))
	bad := fs.Put([]byte("rotten"))
	cs.bad[bad] = true
	if _, ok := fs.Get(good); !ok {
		t.Fatal("intact node rejected")
	}
	if _, ok := fs.Get(bad); ok {
		t.Fatal("corrupt node served")
	}
	if c := fs.Counters(); c.CorruptReads != 1 {
		t.Fatalf("CorruptReads = %d, want 1", c.CorruptReads)
	}
}

// TestDiskUsagePassesThroughWrapper checks store.DiskUsageOf sees through
// the injector to the disk store underneath.
func TestDiskUsagePassesThroughWrapper(t *testing.T) {
	d, err := store.OpenDiskStore(t.TempDir(), store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fs := faultstore.Wrap(d, faultstore.Config{})
	fs.Put(bytes.Repeat([]byte("usage"), 100))
	n, ok := store.DiskUsageOf(fs)
	if !ok || n <= 0 {
		t.Fatalf("DiskUsageOf through wrapper = %d, %v", n, ok)
	}
	mem := faultstore.Wrap(store.NewMemStore(), faultstore.Config{})
	if _, ok := store.DiskUsageOf(mem); ok {
		t.Fatal("DiskUsageOf claimed disk usage for a memory store")
	}
}
