// Package faultstore wraps any store.Store in a seeded, deterministic
// fault injector, so the rest of the system — the conformance suite, the
// version layer's crash-consistency matrix, the GC soak — can be exercised
// under the failures a real deployment sees: transient IO errors, latency
// spikes, dropped writes, and crashes at named points of the write path.
//
// # Design
//
// FaultStore implements every optional capability of the store contract
// (Batcher, HashedBatcher, Deleter, Sweeper, MetaStore, BarrierStore,
// Flusher, io.Closer) by forwarding to the wrapped store, with a fault
// decision in front of each forwarding call. Fault scheduling is
// counter-based — "every Nth call to this operation fails" — rather than
// probabilistic, because counters stay deterministic even when the suite
// runs operations concurrently: N calls produce exactly N/k injected
// faults, every run. The seed feeds only the latency jitter.
//
// Three fault families:
//
//   - Transient errors: a scheduled Get reports a miss; a scheduled
//     Delete/Sweep/SetMeta/GetMeta/Flush returns ErrInjected without
//     touching the wrapped store; a scheduled Put is silently dropped
//     (the store interface gives Put no error return — a dropped write is
//     exactly how that failure manifests, and the caller's retry or root
//     re-check must catch it). Nothing is half-applied: an injected fault
//     never forwards, so a retry observes clean state.
//   - Latency: every scheduled operation sleeps Delay plus seeded jitter
//     before forwarding, for soak tests that need interleavings a fast
//     in-memory store never produces.
//   - Crash points: ArmCrash(point, n) makes the nth arrival at a named
//     point panic with CrashPanic. The panic unwinds through the store's
//     deferred unlocks like a real crash unwinds nothing at all — tests
//     recover it at the operation boundary, then reopen or re-verify.
//     The wrapper's own points (CrashPoints) cover the capability
//     surface; DiskStore's internal points (store.CrashPoints, fired via
//     DiskOptions.CrashHook) can be routed into the same arming machinery
//     through the Hook method.
//
// Barrier and Has calls forward unconditionally: they are the concurrent-
// GC correctness machinery, and injecting faults there would not simulate
// an IO failure, it would simulate a broken algorithm.
//
// # Verify-on-read scrubbing
//
// With Config.VerifyReads set, every Get re-hashes the returned payload
// against its content address and treats a mismatch as a miss (counted in
// Counters.CorruptReads) — the read-path half of the scrub story, whose
// foreground cost the bench "faults" experiment measures. The content
// address doubling as a checksum is the paper's tamper-evidence property
// doing operational work.
package faultstore
