package faultstore

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hash"
	"repro/internal/store"
)

// ErrInjected is the transient error every scheduled fault returns. It is
// always wrapped with the operation name; match with errors.Is.
var ErrInjected = errors.New("faultstore: injected transient fault")

// Config selects which faults a FaultStore injects. The zero value injects
// nothing: every operation forwards untouched. All *Every fields schedule
// counter-based faults — every Nth call to that operation fails — so the
// fault count for a given operation count is deterministic even under
// concurrency; 0 disables that family.
type Config struct {
	// Seed feeds the latency jitter; fault scheduling itself is
	// counter-based and seed-independent.
	Seed int64

	// GetFailEvery makes every Nth Get report a miss without consulting
	// the wrapped store.
	GetFailEvery int
	// PutFailEvery makes every Nth Put (single or within a batch) drop
	// the write: the digest is still returned, but nothing reaches the
	// wrapped store. The caller's retry/re-check discipline must catch it.
	PutFailEvery int
	// DeleteFailEvery makes every Nth Delete return ErrInjected.
	DeleteFailEvery int
	// SweepFailEvery makes every Nth Sweep return ErrInjected before
	// touching the wrapped store.
	SweepFailEvery int
	// MetaFailEvery makes every Nth SetMeta or GetMeta return ErrInjected.
	MetaFailEvery int
	// FlushFailEvery makes every Nth Flush return ErrInjected.
	FlushFailEvery int

	// NoSpace, unlike the counter faults, is a *persistent* condition:
	// while set, every write-path operation fails with an error wrapping
	// store.ErrNoSpace (Puts are dropped, Delete/SetMeta/Flush/Sweep error)
	// and reads keep working — the injected equivalent of a full disk.
	// Heal clears it. The WriteErr method exposes the same schedule as a
	// store.DiskOptions.WriteErr / ingest.Options.WriteErr hook, so the
	// disk store and the WAL degrade in lockstep with the wrapper.
	NoSpace bool

	// Delay, when positive, is slept before every DelayEvery-th forwarded
	// operation (every operation when DelayEvery <= 1), plus uniform
	// seeded jitter in [0, DelayJitter).
	Delay       time.Duration
	DelayJitter time.Duration
	DelayEvery  int

	// VerifyReads re-hashes every Get payload against its content address
	// and turns a mismatch into a miss (counted as a CorruptRead) — scrub
	// on read.
	VerifyReads bool
}

// Counters is a snapshot of the faults a FaultStore has injected.
type Counters struct {
	GetFaults    int64 // Gets turned into misses
	PutDrops     int64 // Puts silently dropped
	DeleteFaults int64 // Deletes failed with ErrInjected
	SweepFaults  int64 // Sweeps failed with ErrInjected
	MetaFaults   int64 // SetMeta/GetMeta failed with ErrInjected
	FlushFaults  int64 // Flushes failed with ErrInjected
	Delays       int64 // operations that slept
	CorruptReads int64 // VerifyReads mismatches served as misses
	NoSpaceHits  int64 // operations rejected by the persistent NoSpace mode
}

// CrashPanic is the value a fired crash point panics with. Tests recover it
// at the operation boundary (see Recovered) and then reopen or re-verify,
// simulating a process death at exactly the armed point.
type CrashPanic struct {
	// Point is the crash point that fired.
	Point string
}

// Error makes the panic value readable when it escapes a test harness.
func (c CrashPanic) Error() string { return fmt.Sprintf("faultstore: crash at %s", c.Point) }

// Recovered inspects a recover() result, returning the crash point when the
// panic was an armed FaultStore crash. Any other panic value reports false
// — re-panic those, they are real bugs.
func Recovered(r any) (string, bool) {
	if c, ok := r.(CrashPanic); ok {
		return c.Point, true
	}
	return "", false
}

// Named crash points of the wrapper itself, each firing immediately before
// the step it names. DiskStore's internal points (store.CrashPoints) can be
// armed on the same FaultStore via Hook.
const (
	// CrashPut fires before a single Put forwards.
	CrashPut = "fault.put"
	// CrashPutBatchMid fires halfway through forwarding a batch, leaving
	// the first half applied and the rest not — the torn-batch shape.
	CrashPutBatchMid = "fault.putbatch-mid"
	// CrashDelete fires before a Delete forwards.
	CrashDelete = "fault.delete"
	// CrashSweep fires before a Sweep forwards.
	CrashSweep = "fault.sweep"
	// CrashSetMeta fires before a SetMeta forwards.
	CrashSetMeta = "fault.setmeta"
)

// CrashPoints lists the wrapper's crash points in write-path order, for
// matrix tests that iterate them all.
func CrashPoints() []string {
	return []string{CrashPut, CrashPutBatchMid, CrashDelete, CrashSweep, CrashSetMeta}
}

// FaultStore wraps a store.Store and injects configured faults in front of
// every forwarded operation. It implements the full capability surface of
// the store contract; capabilities the wrapped store lacks report the
// store package's usual capability errors. Safe for concurrent use.
type FaultStore struct {
	base store.Store
	cfg  atomic.Pointer[Config]

	// Per-operation arrival counters driving the *Every schedules.
	getN, putN, delN, sweepN, metaN, flushN, opN atomic.Int64

	ctr struct {
		get, put, del, sweep, meta, flush, delays, corrupt, nospace atomic.Int64
	}

	mu   sync.Mutex
	rng  *rand.Rand
	arms map[string]int // crash point → arrivals remaining before firing
}

// Wrap returns a FaultStore injecting cfg's faults in front of base.
func Wrap(base store.Store, cfg Config) *FaultStore {
	f := &FaultStore{
		base: base,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		arms: make(map[string]int),
	}
	f.cfg.Store(&cfg)
	return f
}

// Unwrap returns the wrapped store.
func (f *FaultStore) Unwrap() store.Store { return f.base }

// Heal disables every transient-fault and latency schedule, including the
// persistent NoSpace mode (armed crash points stay armed). The two-phase
// tests use it: inject, observe the failure, heal, assert the retry leaves
// clean state.
func (f *FaultStore) Heal() {
	old := f.cfg.Load()
	f.cfg.Store(&Config{Seed: old.Seed, VerifyReads: old.VerifyReads})
}

// SetConfig replaces the fault schedule wholesale, mid-flight — the knob
// matrix tests turn to flip a healthy store into a degraded one (e.g.
// Config{NoSpace: true}) and back without rebuilding the wrapper. Arrival
// counters keep running; only the schedule changes.
func (f *FaultStore) SetConfig(cfg Config) {
	f.cfg.Store(&cfg)
}

// noSpace reports (and counts) a rejection under the persistent NoSpace
// mode, returning an error wrapping store.ErrNoSpace tagged with op.
func (f *FaultStore) noSpace(op string) error {
	f.ctr.nospace.Add(1)
	return fmt.Errorf("faultstore: %s: %w", op, store.ErrNoSpace)
}

// WriteErr is the degrade hook for store.DiskOptions.WriteErr and
// ingest.Options.WriteErr: it fails with store.ErrNoSpace while the
// persistent NoSpace mode is set and passes otherwise, so a DiskStore or
// WAL wired through it degrades and heals in lockstep with this wrapper.
// Like Hook, wire it through a pointer variable when the hooked component
// must be constructed before the wrapper.
func (f *FaultStore) WriteErr(op string) error {
	if !f.cfg.Load().NoSpace {
		return nil
	}
	return f.noSpace(op)
}

// Counters snapshots the injected-fault accounting.
func (f *FaultStore) Counters() Counters {
	return Counters{
		GetFaults:    f.ctr.get.Load(),
		PutDrops:     f.ctr.put.Load(),
		DeleteFaults: f.ctr.del.Load(),
		SweepFaults:  f.ctr.sweep.Load(),
		MetaFaults:   f.ctr.meta.Load(),
		FlushFaults:  f.ctr.flush.Load(),
		Delays:       f.ctr.delays.Load(),
		CorruptReads: f.ctr.corrupt.Load(),
		NoSpaceHits:  f.ctr.nospace.Load(),
	}
}

// ArmCrash makes the nth arrival (n >= 1) at the named crash point panic
// with CrashPanic. Arming a point replaces any earlier arming; n <= 0
// disarms it. Point names are free-form so DiskStore's internal points can
// be armed here too and routed in via Hook.
func (f *FaultStore) ArmCrash(point string, n int) {
	f.mu.Lock()
	if n <= 0 {
		delete(f.arms, point)
	} else {
		f.arms[point] = n
	}
	f.mu.Unlock()
}

// Hook is a DiskOptions.CrashHook adapter: route a DiskStore's internal
// crash points through this FaultStore's arming machinery, so one harness
// arms wrapper-level and disk-internal points uniformly. Because the disk
// store must exist before the wrapper can wrap it, capture the wrapper
// through a pointer variable:
//
//	var fs *faultstore.FaultStore
//	d, _ := store.OpenDiskStore(dir, store.DiskOptions{
//	    CrashHook: func(p string) { fs.Hook(p) },
//	})
//	fs = faultstore.Wrap(d, cfg)
func (f *FaultStore) Hook(point string) { f.hit(point) }

// hit fires the crash point if armed and due.
func (f *FaultStore) hit(point string) {
	f.mu.Lock()
	n, ok := f.arms[point]
	if !ok {
		f.mu.Unlock()
		return
	}
	n--
	if n > 0 {
		f.arms[point] = n
		f.mu.Unlock()
		return
	}
	delete(f.arms, point)
	f.mu.Unlock()
	panic(CrashPanic{Point: point})
}

// due advances an arrival counter and reports whether this arrival is
// scheduled to fault.
func due(n *atomic.Int64, every int) bool {
	if every <= 0 {
		return false
	}
	return n.Add(1)%int64(every) == 0
}

// delay sleeps the configured latency when this operation is scheduled for
// one.
func (f *FaultStore) delay() {
	cfg := f.cfg.Load()
	d := cfg.Delay
	if d <= 0 {
		return
	}
	every := cfg.DelayEvery
	if every <= 1 || f.opN.Add(1)%int64(every) == 0 {
		if j := cfg.DelayJitter; j > 0 {
			f.mu.Lock()
			d += time.Duration(f.rng.Int63n(int64(j)))
			f.mu.Unlock()
		}
		f.ctr.delays.Add(1)
		time.Sleep(d)
	}
}

// Put implements store.Store. A scheduled fault drops the write: the
// digest is returned but nothing reaches the wrapped store.
func (f *FaultStore) Put(data []byte) hash.Hash {
	f.delay()
	if f.cfg.Load().NoSpace {
		f.ctr.nospace.Add(1)
		return hash.Of(data)
	}
	if due(&f.putN, f.cfg.Load().PutFailEvery) {
		f.ctr.put.Add(1)
		return hash.Of(data)
	}
	f.hit(CrashPut)
	return f.base.Put(data)
}

// Get implements store.Store. A scheduled fault reports a miss; with
// VerifyReads set, payloads failing to re-hash to their address are
// reported as misses too.
func (f *FaultStore) Get(h hash.Hash) ([]byte, bool) {
	f.delay()
	if due(&f.getN, f.cfg.Load().GetFailEvery) {
		f.ctr.get.Add(1)
		return nil, false
	}
	data, ok := f.base.Get(h)
	if ok && f.cfg.Load().VerifyReads && hash.Of(data) != h {
		f.ctr.corrupt.Add(1)
		return nil, false
	}
	return data, ok
}

// Has implements store.Store, forwarding unconditionally: Has is the
// commit gate's race detector, and faulting it would simulate a broken
// algorithm, not a broken disk.
func (f *FaultStore) Has(h hash.Hash) bool { return f.base.Has(h) }

// Stats implements store.Store by forwarding.
func (f *FaultStore) Stats() store.Stats { return f.base.Stats() }

// PutBatch implements store.Batcher: items are hashed here, then follow
// the PutBatchHashed path so per-item drop scheduling applies uniformly.
func (f *FaultStore) PutBatch(items [][]byte) []hash.Hash {
	hs := hash.OfAll(items)
	f.PutBatchHashed(hs, items)
	return hs
}

// PutBatchHashed implements store.HashedBatcher. With no put faults
// configured the whole batch forwards as one batch (preserving the wrapped
// store's batch atomicity under its write barrier); with put faults
// configured, items forward one by one so each is a separate drop
// candidate. The CrashPutBatchMid point fires between the two halves of
// the batch either way.
func (f *FaultStore) PutBatchHashed(hashes []hash.Hash, items [][]byte) {
	f.delay()
	if len(items) == 0 {
		return
	}
	if f.cfg.Load().NoSpace {
		f.ctr.nospace.Add(int64(len(items)))
		return
	}
	crashAt := -1
	f.mu.Lock()
	if _, ok := f.arms[CrashPutBatchMid]; ok {
		crashAt = len(items) / 2
	}
	f.mu.Unlock()
	putEvery := f.cfg.Load().PutFailEvery
	if putEvery <= 0 && crashAt < 0 {
		store.PutBatchHashed(f.base, hashes, items)
		return
	}
	for i, data := range items {
		if i == crashAt {
			f.hit(CrashPutBatchMid)
		}
		if due(&f.putN, putEvery) {
			f.ctr.put.Add(1)
			continue
		}
		f.base.Put(data)
	}
}

// Delete implements store.Deleter.
func (f *FaultStore) Delete(h hash.Hash) (bool, error) {
	f.delay()
	if f.cfg.Load().NoSpace {
		return false, f.noSpace("delete")
	}
	if due(&f.delN, f.cfg.Load().DeleteFailEvery) {
		f.ctr.del.Add(1)
		return false, fmt.Errorf("delete: %w", ErrInjected)
	}
	f.hit(CrashDelete)
	return store.Delete(f.base, h)
}

// Sweep implements store.Sweeper. A scheduled fault fails before the
// wrapped store is touched, so the store's contents and accounting are
// exactly as if the sweep had never been attempted.
func (f *FaultStore) Sweep(live store.LiveFunc) (store.SweepStats, error) {
	f.delay()
	if f.cfg.Load().NoSpace {
		return store.SweepStats{}, f.noSpace("sweep")
	}
	if due(&f.sweepN, f.cfg.Load().SweepFailEvery) {
		f.ctr.sweep.Add(1)
		return store.SweepStats{}, fmt.Errorf("sweep: %w", ErrInjected)
	}
	f.hit(CrashSweep)
	return store.Sweep(f.base, live)
}

// SetMeta implements store.MetaStore.
func (f *FaultStore) SetMeta(key string, value []byte) error {
	f.delay()
	if f.cfg.Load().NoSpace {
		return f.noSpace("setmeta")
	}
	if due(&f.metaN, f.cfg.Load().MetaFailEvery) {
		f.ctr.meta.Add(1)
		return fmt.Errorf("setmeta: %w", ErrInjected)
	}
	f.hit(CrashSetMeta)
	return store.SetMeta(f.base, key, value)
}

// GetMeta implements store.MetaStore.
func (f *FaultStore) GetMeta(key string) ([]byte, bool, error) {
	f.delay()
	if due(&f.metaN, f.cfg.Load().MetaFailEvery) {
		f.ctr.meta.Add(1)
		return nil, false, fmt.Errorf("getmeta: %w", ErrInjected)
	}
	return store.GetMeta(f.base, key)
}

// ArmBarrier implements store.BarrierStore by forwarding unconditionally
// (see the package comment on why barriers are never faulted).
func (f *FaultStore) ArmBarrier() (*store.Barrier, error) { return store.ArmBarrier(f.base) }

// DisarmBarrier implements store.BarrierStore by forwarding.
func (f *FaultStore) DisarmBarrier() { store.DisarmBarrier(f.base) }

// Flush implements store.Flusher.
func (f *FaultStore) Flush() error {
	if f.cfg.Load().NoSpace {
		return f.noSpace("flush")
	}
	if due(&f.flushN, f.cfg.Load().FlushFailEvery) {
		f.ctr.flush.Add(1)
		return fmt.Errorf("flush: %w", ErrInjected)
	}
	return store.Flush(f.base)
}

// DiskUsage reports the wrapped store's on-disk footprint when it has one
// (store.DiskUsageOf unwraps through this method), so retention and fault
// experiments can measure disk behind the injector.
func (f *FaultStore) DiskUsage() (int64, error) {
	if n, ok := store.DiskUsageOf(f.base); ok {
		return n, nil
	}
	return 0, fmt.Errorf("faultstore: wrapped %T has no disk usage", f.base)
}

// Close closes the wrapped store when it is closeable; repeated calls
// forward repeatedly, relying on the wrapped store's own close-idempotence
// (which the conformance suite checks).
func (f *FaultStore) Close() error {
	if c, ok := f.base.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Compile-time checks: the wrapper carries the full capability surface.
var (
	_ store.Store         = (*FaultStore)(nil)
	_ store.HashedBatcher = (*FaultStore)(nil)
	_ store.Deleter       = (*FaultStore)(nil)
	_ store.Sweeper       = (*FaultStore)(nil)
	_ store.MetaStore     = (*FaultStore)(nil)
	_ store.BarrierStore  = (*FaultStore)(nil)
	_ store.Flusher       = (*FaultStore)(nil)
	_ io.Closer           = (*FaultStore)(nil)
)
