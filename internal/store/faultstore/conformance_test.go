package faultstore_test

import (
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/store/faultstore"
	"repro/internal/store/storetest"
)

// TestConformance runs the shared store contract against FaultStore over
// every built-in backend. The injector is configured benignly — verify-on-
// read scrubbing plus an occasional sub-millisecond delay — so the suite's
// exact-behavior assertions hold while every operation still crosses the
// fault machinery. Failure schedules are separately covered by the
// storetest error-path cases and the unit tests here.
func TestConformance(t *testing.T) {
	cfg := faultstore.Config{
		Seed:        42,
		VerifyReads: true,
		Delay:       50 * time.Microsecond,
		DelayJitter: 50 * time.Microsecond,
		DelayEvery:  251,
	}
	backends := []struct {
		name string
		new  storetest.Factory
	}{
		{"Mem", func(t *testing.T) store.Store {
			return faultstore.Wrap(store.NewMemStore(), cfg)
		}},
		{"Sharded", func(t *testing.T) store.Store {
			return faultstore.Wrap(store.NewShardedStore(8), cfg)
		}},
		{"Disk", func(t *testing.T) store.Store {
			d, err := store.OpenDiskStore(t.TempDir(), store.DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return faultstore.Wrap(d, cfg)
		}},
		{"CachedDisk", func(t *testing.T) store.Store {
			d, err := store.OpenDiskStore(t.TempDir(), store.DiskOptions{SegmentBytes: 4096, FlushBytes: 256})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return faultstore.Wrap(store.NewCachedStore(d, 1<<20), cfg)
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) { storetest.RunStoreTests(t, b.new) })
	}
}
