package store

// Flusher is an optional capability: push buffered writes down to the
// operating system. Only DiskStore actually buffers (appends sit in a
// bufio.Writer until FlushBytes accumulate), so only it has a non-trivial
// implementation; CachedStore delegates to its backing. Flush does NOT
// fsync — it moves bytes from process memory into the OS page cache, which
// is the boundary that matters for process-crash consistency: after a
// successful Flush, a crash of this process (panic, kill -9) cannot lose
// the flushed records, only a whole-machine crash can. internal/version
// flushes before persisting branch heads so a durable head never points at
// records still sitting in a write buffer the process would take down with
// it.
type Flusher interface {
	// Flush pushes every buffered write to the OS, returning the first
	// write or flush error encountered.
	Flush() error
}

// Flush pushes s's buffered writes to the OS through its Flusher
// capability; stores without one (the in-memory backends) have nothing
// buffered and report nil.
func Flush(s Store) error {
	if f, ok := s.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Compile-time checks: the backends that buffer (or wrap a buffering
// store) expose Flush.
var (
	_ Flusher = (*DiskStore)(nil)
	_ Flusher = (*CachedStore)(nil)
)

// Flush implements Flusher: buffered appends reach the OS file. Unlike
// Sync it does not fsync, and unlike Sync it reports only flush errors,
// not the store's sticky lifetime error.
func (d *DiskStore) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return d.err
	}
	return d.flushLocked()
}

// Flush implements Flusher by delegating to the backing store.
func (c *CachedStore) Flush() error { return Flush(c.backing) }
