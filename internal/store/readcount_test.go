package store

import (
	"testing"

	"repro/internal/hash"
)

// TestCountingStoreCountsGets pins the counter semantics: Get counts, Has
// and Put do not, and NodeReads resolves the capability through the
// helper.
func TestCountingStoreCountsGets(t *testing.T) {
	cs := NewCountingStore(NewMemStore())
	h := cs.Put([]byte("payload"))
	if got := cs.NodeReads(); got != 0 {
		t.Fatalf("Put counted as a read: NodeReads = %d", got)
	}
	if !cs.Has(h) {
		t.Fatal("Has lost the node")
	}
	if got := cs.NodeReads(); got != 0 {
		t.Fatalf("Has counted as a read: NodeReads = %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, ok := cs.Get(h); !ok {
			t.Fatal("Get lost the node")
		}
	}
	if got := cs.NodeReads(); got != 3 {
		t.Fatalf("NodeReads = %d after 3 Gets", got)
	}
	if n, ok := NodeReads(cs); !ok || n != 3 {
		t.Fatalf("NodeReads helper = %d, %v", n, ok)
	}
	if _, ok := NodeReads(NewMemStore()); ok {
		t.Fatal("NodeReads found a counter on a plain MemStore")
	}
}

// TestCountingStoreForwardsCapabilities asserts wrapping does not strip
// the inner store's optional capabilities: batch puts, metadata, sweep,
// and the write barrier must all reach the MemStore underneath.
func TestCountingStoreForwardsCapabilities(t *testing.T) {
	cs := NewCountingStore(NewMemStore())
	hashes := cs.PutBatch([][]byte{[]byte("a"), []byte("b")})
	if len(hashes) != 2 || !cs.Has(hashes[0]) || !cs.Has(hashes[1]) {
		t.Fatalf("PutBatch did not land: %v", hashes)
	}
	if err := SetMeta(cs, "k", []byte("v")); err != nil {
		t.Fatalf("SetMeta: %v", err)
	}
	if v, ok, err := GetMeta(cs, "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("GetMeta = %q, %v, %v", v, ok, err)
	}
	bar, err := ArmBarrier(cs)
	if err != nil {
		t.Fatalf("ArmBarrier: %v", err)
	}
	h := cs.Put([]byte("barriered"))
	if !bar.Has(h) {
		t.Fatal("write through the wrapper missed the inner store's barrier")
	}
	DisarmBarrier(cs)
	if _, err := Sweep(cs, func(h2 hash.Hash) bool { return h2 == h }); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if cs.Has(hashes[0]) || !cs.Has(h) {
		t.Fatal("sweep through the wrapper kept the wrong nodes")
	}
}
