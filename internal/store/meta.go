package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrNoMeta reports a metadata request against a store whose backing does
// not support the MetaStore capability.
var ErrNoMeta = errors.New("store: backend does not support metadata")

// MetaStore is an optional capability: a tiny mutable key→value side area
// outside the content-addressed space. A content-addressed store cannot
// hold a "well-known key" — every key is the digest of its value — yet a
// versioned system still needs a handful of mutable pointers, branch heads
// above all. MetaStore is that escape hatch: a few small entries, updated
// in place, never part of the node space (sweeps and compactions do not
// touch them). DiskStore persists meta crash-safely next to its segments;
// the in-memory backends keep a map.
//
// The capability is intentionally minimal — it is a root-pointer area, not
// a second database. Values are copied on both Set and Get, so callers
// never alias store-internal state.
type MetaStore interface {
	// SetMeta stores value under key, replacing any previous value.
	SetMeta(key string, value []byte) error
	// GetMeta returns the value stored under key.
	GetMeta(key string) (value []byte, ok bool, err error)
}

// SetMeta writes a metadata entry through s's MetaStore capability,
// reporting ErrNoMeta for stores that lack it.
func SetMeta(s Store, key string, value []byte) error {
	if m, ok := s.(MetaStore); ok {
		return m.SetMeta(key, value)
	}
	return fmt.Errorf("%w: %T", ErrNoMeta, s)
}

// GetMeta reads a metadata entry through s's MetaStore capability,
// reporting ErrNoMeta for stores that lack it.
func GetMeta(s Store, key string) ([]byte, bool, error) {
	if m, ok := s.(MetaStore); ok {
		return m.GetMeta(key)
	}
	return nil, false, fmt.Errorf("%w: %T", ErrNoMeta, s)
}

// Compile-time checks: every built-in backend supports metadata.
var (
	_ MetaStore = (*MemStore)(nil)
	_ MetaStore = (*ShardedStore)(nil)
	_ MetaStore = (*DiskStore)(nil)
	_ MetaStore = (*CachedStore)(nil)
)

// metaMap is the shared in-memory metadata implementation.
type metaMap struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (mm *metaMap) set(key string, value []byte) {
	mm.mu.Lock()
	if mm.m == nil {
		mm.m = make(map[string][]byte)
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	mm.m[key] = cp
	mm.mu.Unlock()
}

func (mm *metaMap) get(key string) ([]byte, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	v, ok := mm.m[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}

// clear drops every entry (used when a corrupt meta file degrades to an
// empty map at open time).
func (mm *metaMap) clear() {
	mm.mu.Lock()
	mm.m = nil
	mm.mu.Unlock()
}

// snapshot returns a copy of every entry. Caller-side serialization only.
func (mm *metaMap) snapshot() map[string][]byte {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make(map[string][]byte, len(mm.m))
	for k, v := range mm.m {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// SetMeta implements MetaStore.
func (m *MemStore) SetMeta(key string, value []byte) error {
	m.meta.set(key, value)
	return nil
}

// GetMeta implements MetaStore.
func (m *MemStore) GetMeta(key string) ([]byte, bool, error) {
	v, ok := m.meta.get(key)
	return v, ok, nil
}

// SetMeta implements MetaStore.
func (s *ShardedStore) SetMeta(key string, value []byte) error {
	s.meta.set(key, value)
	return nil
}

// GetMeta implements MetaStore.
func (s *ShardedStore) GetMeta(key string) ([]byte, bool, error) {
	v, ok := s.meta.get(key)
	return v, ok, nil
}

// SetMeta implements MetaStore, delegating to the backing store so a cache
// layer is transparent to branch-head persistence.
func (c *CachedStore) SetMeta(key string, value []byte) error {
	return SetMeta(c.backing, key, value)
}

// GetMeta implements MetaStore, delegating to the backing store.
func (c *CachedStore) GetMeta(key string) ([]byte, bool, error) {
	return GetMeta(c.backing, key)
}

// metaFileName is the DiskStore metadata file, living beside the segment
// files. The *.tmp sibling exists only during an atomic rewrite.
const metaFileName = "meta.bin"

// SetMeta implements MetaStore. The whole (small) metadata map is rewritten
// to a temporary file — fsynced before the rename, with the directory entry
// fsynced after — so a crash at any point leaves either the old or the new
// state, never a torn mix.
func (d *DiskStore) SetMeta(key string, value []byte) error {
	if err := d.writeErr("meta"); err != nil {
		// Degraded read-only: fail BEFORE the in-memory mirror moves, so a
		// rejected head update is rejected everywhere, not just on disk.
		return fmt.Errorf("store: disk: meta: degraded read-only: %w", err)
	}
	d.meta.set(key, value)
	entries := d.meta.snapshot()
	d.metaFileMu.Lock()
	defer d.metaFileMu.Unlock()
	buf := encodeMeta(entries)
	path := filepath.Join(d.dirPath, metaFileName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: disk: meta: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: disk: meta: %w", err)
	}
	// The data must be durable before the rename makes it reachable;
	// otherwise a crash can leave a durable rename pointing at
	// not-yet-written blocks — exactly the torn state the contract rules
	// out.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: disk: meta: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: disk: meta: %w", err)
	}
	d.crash(CrashMetaRename)
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: disk: meta: %w", err)
	}
	d.crash(CrashMetaRenamed)
	// Make the rename itself durable.
	dir, err := os.Open(d.dirPath)
	if err != nil {
		return fmt.Errorf("store: disk: meta: %w", err)
	}
	serr := dir.Sync()
	if cerr := dir.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("store: disk: meta: %w", serr)
	}
	return nil
}

// GetMeta implements MetaStore, serving from the in-memory mirror loaded at
// open time.
func (d *DiskStore) GetMeta(key string) ([]byte, bool, error) {
	v, ok := d.meta.get(key)
	return v, ok, nil
}

// encodeMeta serializes a metadata map as length-prefixed key/value pairs.
// Iteration order does not matter: the file is reloaded into a map.
func encodeMeta(entries map[string][]byte) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for k, v := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// loadMeta reads the metadata file into the in-memory mirror at open time.
// A missing file is an empty map. A corrupt file does NOT fail the open:
// metadata holds only mutable pointers (branch heads) that can be rebuilt
// by resuming from commit IDs, while the segment data behind them is
// intact and content-verified — wedging the whole store over a torn
// pointer file would make recovery impossible exactly when it is needed.
// Instead the broken file is moved aside (metaFileName + ".corrupt", best
// effort) and the store opens with empty metadata; Recovery().MetaCorrupt
// reports the degradation so callers know persisted heads are gone and a
// log resume is required.
func (d *DiskStore) loadMeta() error {
	path := filepath.Join(d.dirPath, metaFileName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: disk: meta: %w", err)
	}
	degrade := func() {
		d.recov.MetaCorrupt = true
		d.meta.clear()
		_ = os.Rename(path, path+".corrupt")
	}
	n, rest, err := metaUvarint(data)
	if err != nil {
		degrade()
		return nil
	}
	for i := uint64(0); i < n; i++ {
		var k, v []byte
		if k, rest, err = metaBytes(rest); err != nil {
			degrade()
			return nil
		}
		if v, rest, err = metaBytes(rest); err != nil {
			degrade()
			return nil
		}
		d.meta.set(string(k), v)
	}
	return nil
}

// metaUvarint decodes one varint from the metadata encoding.
func metaUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("store: disk: corrupt meta file")
	}
	return v, b[n:], nil
}

// metaBytes decodes one length-prefixed byte string from the metadata
// encoding.
func metaBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := metaUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, errors.New("store: disk: corrupt meta file")
	}
	return rest[:n], rest[n:], nil
}
