package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hash"
)

// This file implements the write barrier that lets a garbage-collection
// pass run concurrently with writers. The problem it solves: a
// mark-and-sweep pass computes its live set from the versions retained at
// mark start, so any node flushed *after* that instant — a staged commit's
// pages, a commit blob, even a dedup hit that re-puts content identical to
// a doomed node — is invisible to the mark and would be reclaimed out from
// under the writer. Arming a Barrier closes the window: every Put and
// PutBatch that lands while the barrier is armed records its digest, and
// the backend's Sweep treats every recorded digest as unconditionally live
// for that pass. Dedup hits are recorded too, which closes the subtler
// race where a new commit reuses content byte-identical to a node the pass
// is about to sweep.
//
// Arming synchronizes with in-flight writes: every write path opens a
// write window (barrierHolder.beginWrite/endWrite, a read lock) around
// recording and inserting, and arming takes the same lock in write mode.
// A write therefore lands entirely on one side of mark start — either
// every node of the batch is resident before the pass begins (so a sweep
// sees the whole batch and the committer's root re-check in
// version.Repo.Commit detects reclamation reliably), or the whole batch is
// recorded in the pass's barrier. Without the window a long batch could
// straddle a pass boundary: its early inserts swept mid-batch while its
// root lands after the sweep scanned that shard, leaving a committed
// version with holes that no re-check can see.

// ErrNoBarrier reports an ArmBarrier request against a store without the
// write-barrier capability.
var ErrNoBarrier = errors.New("store: backend does not support a GC write barrier")

// ErrBarrierArmed reports an ArmBarrier request while a barrier is already
// armed; concurrent GC passes over one store must be serialized by the
// caller.
var ErrBarrierArmed = errors.New("store: a GC write barrier is already armed")

// Barrier is the record of every digest written to a store since the
// barrier was armed. The garbage collector arms one at mark start and
// treats its contents as live for the pass; it keeps working (Has stays
// valid) after DisarmBarrier, so a pass may hand it to purge hooks.
type Barrier struct {
	mu  sync.Mutex
	set map[hash.Hash]struct{}
}

// newBarrier returns an empty barrier.
func newBarrier() *Barrier {
	return &Barrier{set: make(map[hash.Hash]struct{})}
}

// record notes one written digest.
func (b *Barrier) record(h hash.Hash) {
	b.mu.Lock()
	b.set[h] = struct{}{}
	b.mu.Unlock()
}

// recordAll notes every digest of one batch.
func (b *Barrier) recordAll(hashes []hash.Hash) {
	b.mu.Lock()
	for _, h := range hashes {
		b.set[h] = struct{}{}
	}
	b.mu.Unlock()
}

// Has reports whether h was written while the barrier was armed.
func (b *Barrier) Has(h hash.Hash) bool {
	b.mu.Lock()
	_, ok := b.set[h]
	b.mu.Unlock()
	return ok
}

// Len returns how many distinct digests the barrier has recorded.
func (b *Barrier) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.set)
}

// BarrierStore is the concurrent-GC capability of the store contract: a
// store that can record writes landing during a reclamation pass. All four
// built-in backends implement it (CachedStore by delegating to its
// backing, since indexes may write to the backing directly).
type BarrierStore interface {
	// ArmBarrier installs a fresh write barrier and returns it. Every
	// subsequent Put/PutBatch records its digests (dedup hits included)
	// until DisarmBarrier. At most one barrier may be armed at a time;
	// arming over an armed barrier returns ErrBarrierArmed.
	ArmBarrier() (*Barrier, error)
	// DisarmBarrier removes the armed barrier, if any. The returned
	// *Barrier from ArmBarrier stays readable afterwards.
	DisarmBarrier()
}

// ArmBarrier arms a write barrier on s through its BarrierStore
// capability, reporting ErrNoBarrier for stores that lack it.
func ArmBarrier(s Store) (*Barrier, error) {
	if bs, ok := s.(BarrierStore); ok {
		return bs.ArmBarrier()
	}
	return nil, fmt.Errorf("%w: %T", ErrNoBarrier, s)
}

// DisarmBarrier removes the armed barrier from s, a no-op for stores
// without the capability.
func DisarmBarrier(s Store) {
	if bs, ok := s.(BarrierStore); ok {
		bs.DisarmBarrier()
	}
}

// barrierHolder is the per-backend armed-barrier slot. Write hot paths
// open a window with beginWrite/endWrite around record+insert; the common
// no-GC case costs one uncontended read lock and one atomic load. Arming
// excludes open windows, which is what makes every write atomic with
// respect to mark start (see the file comment).
type barrierHolder struct {
	// gate is held in read mode for the duration of every write (record
	// through insert) and in write mode, momentarily, by arm. It never
	// nests inside the store's own locks the other way around, so lock
	// order is always gate → store lock.
	gate sync.RWMutex
	p    atomic.Pointer[Barrier]
}

// arm installs a fresh barrier, failing if one is already armed. It waits
// for in-flight write windows to close, so when arm returns, every node of
// every earlier write is resident and every later write records into the
// new barrier.
func (bh *barrierHolder) arm() (*Barrier, error) {
	b := newBarrier()
	bh.gate.Lock()
	defer bh.gate.Unlock()
	if !bh.p.CompareAndSwap(nil, b) {
		return nil, ErrBarrierArmed
	}
	return b, nil
}

// disarm clears the slot. No window exclusion is needed: a write that
// loaded the retiring barrier just records into a set nobody will consult
// again.
func (bh *barrierHolder) disarm() { bh.p.Store(nil) }

// beginWrite opens a write window and returns the armed barrier (nil when
// none). While the window is open a barrier cannot appear or disappear, so
// the returned value is THE barrier for every node the write lands. Pair
// with endWrite after the insert completes.
func (bh *barrierHolder) beginWrite() *Barrier {
	bh.gate.RLock()
	return bh.p.Load()
}

// endWrite closes the window opened by beginWrite.
func (bh *barrierHolder) endWrite() { bh.gate.RUnlock() }

// wrap extends live with the armed barrier: a sweep must keep everything
// written since mark start regardless of reachability. Loading the pointer
// once up front pins the pass to the barrier armed when the sweep began.
func (bh *barrierHolder) wrap(live LiveFunc) LiveFunc {
	b := bh.p.Load()
	if b == nil {
		return live
	}
	return func(h hash.Hash) bool { return live(h) || b.Has(h) }
}

// Compile-time checks: every built-in backend supports the write barrier.
var (
	_ BarrierStore = (*MemStore)(nil)
	_ BarrierStore = (*ShardedStore)(nil)
	_ BarrierStore = (*DiskStore)(nil)
	_ BarrierStore = (*CachedStore)(nil)
)

// ArmBarrier implements BarrierStore.
func (m *MemStore) ArmBarrier() (*Barrier, error) { return m.bar.arm() }

// DisarmBarrier implements BarrierStore.
func (m *MemStore) DisarmBarrier() { m.bar.disarm() }

// ArmBarrier implements BarrierStore.
func (s *ShardedStore) ArmBarrier() (*Barrier, error) { return s.bar.arm() }

// DisarmBarrier implements BarrierStore.
func (s *ShardedStore) DisarmBarrier() { s.bar.disarm() }

// ArmBarrier implements BarrierStore.
func (d *DiskStore) ArmBarrier() (*Barrier, error) { return d.bar.arm() }

// DisarmBarrier implements BarrierStore.
func (d *DiskStore) DisarmBarrier() { d.bar.disarm() }

// ArmBarrier implements BarrierStore by delegating to the backing store:
// the cache layer writes through, and index structures may hold the
// backing directly, so the barrier must live where the bytes land.
func (c *CachedStore) ArmBarrier() (*Barrier, error) { return ArmBarrier(c.backing) }

// DisarmBarrier implements BarrierStore.
func (c *CachedStore) DisarmBarrier() { DisarmBarrier(c.backing) }
