package store

import (
	"errors"
	"fmt"

	"repro/internal/hash"
)

// ErrNoSpace reports a write rejected because the backing medium is out of
// space (or an injected equivalent). It is a *retryable* condition, unlike
// a corrupt segment: reads, scrubs and metadata lookups keep working, no
// torn state is left behind, and once space is reclaimed (faultstore.Heal
// in tests, an operator freeing disk in production) the same write
// succeeds. Match with errors.Is; the serving layer maps it to the
// retryable busy response so clients back off instead of failing hard.
var ErrNoSpace = errors.New("store: no space left on device")

// writeErr consults the injected write-failure hook, if any. A non-nil
// return means the store must not touch its files for the named operation.
func (d *DiskStore) writeErr(op string) error {
	if d.opts.WriteErr == nil {
		return nil
	}
	return d.opts.WriteErr(op)
}

// degradePutLocked parks one record in memory while the write path is
// failing: the node stays readable through the pending map (and survives a
// dedup re-Put), and its digest is queued for replay so the first healthy
// operation lands it in a segment exactly as if the Put had happened then.
// No file state is touched — a crash while degraded loses only writes that
// were already failing, never tears a segment. Caller holds d.mu.
func (d *DiskStore) degradePutLocked(h hash.Hash, data []byte, cause error) {
	cp := make([]byte, len(data))
	copy(cp, data)
	d.pending[h] = cp
	d.pendingBytes += len(cp)
	d.unwritten = append(d.unwritten, h)
	d.degraded = fmt.Errorf("store: disk: degraded read-only: %w", cause)
	d.ctr.uniqueNodes.Add(1)
	d.ctr.uniqueBytes.Add(int64(len(data)))
}

// replayUnwrittenLocked appends every record parked while the store was
// degraded, in arrival order, through the normal append path. Called at the
// top of the healthy write paths (put, flush); clearing d.unwritten before
// the loop keeps the segment-roll flush inside appendRecordLocked from
// re-entering. Caller holds d.mu.
func (d *DiskStore) replayUnwrittenLocked() {
	if len(d.unwritten) == 0 {
		return
	}
	queued := d.unwritten
	d.unwritten = nil
	d.degraded = nil
	for _, h := range queued {
		data, ok := d.pending[h]
		if !ok {
			continue // deleted while degraded
		}
		d.appendRecordLocked(h, data)
	}
}
