package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/hash"
)

// DiskStore persists nodes in append-only segment files, the natural layout
// for immutable content-addressed pages: records are only ever appended,
// never rewritten, so sequential writes are the single I/O pattern and a
// segment, once rolled, is immutable forever.
//
// On-disk format. A directory holds segment files seg-000000.seg,
// seg-000001.seg, … Each segment is a sequence of records:
//
//	[4-byte big-endian payload length][32-byte SHA-256 digest][payload]
//
// The digest doubles as a checksum: it is the content address, so a record
// whose payload fails to re-hash to its stored digest is corrupt by
// definition. An in-memory directory maps digest → (segment, offset,
// length); it is rebuilt by scanning the segments on open, which also makes
// the store crash-safe — a torn write at the tail of the last segment is
// detected (short record or digest mismatch) and truncated away, and every
// record before it is served as usual.
//
// Writes are batched through a buffered writer and tracked in a pending map
// until flushed, so Get is always consistent: unflushed nodes are served
// from memory, flushed nodes via ReadAt on the (immutable) file region.
// Flushing happens automatically every FlushBytes of new data, on Sync, and
// on Close.
//
// Raw/dedup accounting matches MemStore within a process lifetime. After a
// reopen the raw counters restart from the recovered unique footprint
// (dedup history is not persisted), preserving UniqueBytes ≤ RawBytes.
type DiskStore struct {
	dirPath       string
	opts          DiskOptions
	removeOnClose bool
	recov         RecoverySummary // fixed at open time, read-only after

	ctr counters

	// meta mirrors the metadata file (see MetaStore); metaFileMu serializes
	// rewrites of the file itself.
	meta       metaMap
	metaFileMu sync.Mutex

	mu           sync.RWMutex
	locs         map[hash.Hash]recordLoc
	pending      map[hash.Hash][]byte
	pendingBytes int
	// resident holds nodes too large for the record format (payloads over
	// maxRecordBytes). They are served from memory for the store's
	// lifetime and never persisted; the condition is reported as a sticky
	// error by Sync/Close rather than silently dropping data on reopen.
	resident map[hash.Hash][]byte
	readers  []*os.File // one per segment, index = segment id
	// obsolete holds pre-compaction segment handles retired by Sweep.
	// They stay open until Close so lock-free Gets that captured one
	// before a compaction swap keep reading valid (old-inode) data.
	obsolete   []*os.File
	active     *os.File // append handle on the last segment
	w          *bufio.Writer
	activeID   int
	activeSize int64 // logical size of the active segment, buffered included
	err        error // first write/flush error, surfaced by Sync/Close
	closed     bool
	// unwritten queues digests parked in pending while the write path is
	// degraded (DiskOptions.WriteErr failing); the first healthy write or
	// flush replays them into segments in arrival order. degraded holds the
	// wrapped cause while the queue is non-empty (see degrade.go).
	unwritten []hash.Hash
	degraded  error

	bar barrierHolder
}

// DiskOptions tunes a DiskStore. The zero value selects the defaults noted
// on each field.
type DiskOptions struct {
	// SegmentBytes rolls the active segment once it would exceed this many
	// bytes (default 64 MiB). A record larger than the limit still goes to
	// its own segment rather than failing.
	SegmentBytes int64
	// FlushBytes bounds how much appended data may sit in the write buffer
	// before an automatic flush (default 1 MiB).
	FlushBytes int
	// SyncOnFlush fsyncs the active segment after every flush. Off by
	// default: the paper's experiments measure structure costs, not disk
	// sync latency, and crash recovery truncates torn tails either way.
	SyncOnFlush bool
	// CompactLiveFraction is the liveness threshold Sweep compacts below:
	// a segment whose live-record bytes make up less than this fraction of
	// its file size is rewritten to only its live records (default 0.5).
	// Fully dead segments are always compacted; fully live ones never are.
	CompactLiveFraction float64
	// CrashHook, when set, is invoked at the named crash points of the
	// write path (the Crash* constants) right before the step the name
	// describes. It exists for fault injection: a test hook that panics
	// simulates a process dying at exactly that instant, and the panic
	// unwinds through the store's deferred unlocks, leaving the on-disk
	// state for a reopen to recover. Never set in production.
	CrashHook func(point string)
	// WriteErr, when set, is consulted before every file-mutating step
	// ("put", "flush", "meta", "delete", "sweep"); a non-nil return makes
	// the store degrade to read-only for that operation instead of touching
	// its files — modeling persistent resource exhaustion (ENOSPC). While
	// degraded, Puts stay readable from memory and are queued; the first
	// healthy write or flush replays them, so healing loses nothing. Wire
	// it to faultstore.WriteErr in tests; never set in production.
	WriteErr func(op string) error
}

// Named crash points a DiskOptions.CrashHook observes. Each fires
// immediately BEFORE the step it names, so a hook that panics leaves the
// disk exactly as a crash at that instant would.
const (
	// CrashAppendRecord fires before a record's bytes enter the write
	// buffer.
	CrashAppendRecord = "disk.append-record"
	// CrashSegmentRoll fires before the active segment rolls to a new one.
	CrashSegmentRoll = "disk.segment-roll"
	// CrashCompactRename fires after a compacted replacement segment is
	// written and fsynced, before the atomic rename — crashing here leaves
	// a *.compact orphan next to the intact original.
	CrashCompactRename = "disk.compact.rename"
	// CrashCompactRenamed fires after the rename installed the compacted
	// segment, before the store reopens it.
	CrashCompactRenamed = "disk.compact.renamed"
	// CrashMetaRename fires after the new meta.bin.tmp is written and
	// fsynced, before the rename — crashing here leaves a stale tmp file
	// and the previous meta.bin intact.
	CrashMetaRename = "disk.meta.rename"
	// CrashMetaRenamed fires after meta.bin was atomically replaced,
	// before the directory entry is fsynced.
	CrashMetaRenamed = "disk.meta.renamed"
)

// CrashPoints lists every named DiskStore crash point, in write-path
// order, for crash-consistency matrix tests that iterate them all.
func CrashPoints() []string {
	return []string{
		CrashAppendRecord, CrashSegmentRoll,
		CrashCompactRename, CrashCompactRenamed,
		CrashMetaRename, CrashMetaRenamed,
	}
}

// crash fires the configured crash hook, if any.
func (d *DiskStore) crash(point string) {
	if d.opts.CrashHook != nil {
		d.opts.CrashHook(point)
	}
}

// RecoverySummary reports what the rebuild-on-open scan found and repaired.
// Every field zero (with MetaCorrupt false) means the store closed cleanly.
type RecoverySummary struct {
	// Segments is how many segment files the open scanned.
	Segments int
	// TornSegments counts segments whose tail held a torn or corrupt
	// record (short header, implausible length, digest mismatch, short
	// payload) that the scan truncated away.
	TornSegments int
	// TornBytes is the total bytes truncated from torn tails.
	TornBytes int64
	// CompactOrphans counts *.compact temporaries left by a crash
	// mid-compaction and discarded (the original segments were intact).
	CompactOrphans int
	// MetaCorrupt reports that meta.bin failed to decode and was moved
	// aside; the store opened with empty metadata, degrading persisted
	// branch heads to manual log resume instead of wedging the open.
	MetaCorrupt bool
}

// recordLoc locates one stored payload.
type recordLoc struct {
	seg int32
	n   int32
	off int64 // offset of the payload, past the record header
}

const (
	recordHeaderSize    = 4 + hash.Size
	defaultSegmentBytes = 64 << 20
	defaultFlushBytes   = 1 << 20
	// maxRecordBytes caps a single record's payload. Put enforces it on
	// the write path (larger nodes stay memory-resident with a sticky
	// error) and recovery enforces it on the read path, so the writer
	// never produces a record the rebuild-on-open scan would reject.
	maxRecordBytes = 1 << 30
	// defaultCompactLiveFraction is the Sweep compaction threshold when
	// DiskOptions.CompactLiveFraction is unset.
	defaultCompactLiveFraction = 0.5
	// compactSuffix marks a compacted replacement segment before the
	// atomic rename. The suffix keeps it out of the seg-*.seg open scan.
	compactSuffix = ".compact"
)

func segmentName(id int) string { return fmt.Sprintf("seg-%06d.seg", id) }

// OpenDiskStore opens (creating if necessary) the store rooted at dir.
// Existing segments are scanned to rebuild the directory; a torn record at
// a segment tail is truncated away.
func OpenDiskStore(dir string, opts DiskOptions) (*DiskStore, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = defaultFlushBytes
	}
	if opts.CompactLiveFraction <= 0 || opts.CompactLiveFraction > 1 {
		opts.CompactLiveFraction = defaultCompactLiveFraction
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk: %w", err)
	}
	d := &DiskStore{
		dirPath:  dir,
		opts:     opts,
		locs:     make(map[hash.Hash]recordLoc),
		pending:  make(map[hash.Hash][]byte),
		resident: make(map[hash.Hash][]byte),
	}
	// A crash between writing a compacted replacement segment and renaming
	// it over the original leaves a *.compact orphan; the original segment
	// is still intact, so the orphan is simply discarded. Likewise a crash
	// mid meta rewrite leaves a stale meta.bin.tmp next to the intact (or
	// absent) meta.bin.
	if tmps, err := filepath.Glob(filepath.Join(dir, "seg-*"+compactSuffix)); err == nil {
		for _, tmp := range tmps {
			if os.Remove(tmp) == nil {
				d.recov.CompactOrphans++
			}
		}
	}
	_ = os.Remove(filepath.Join(dir, metaFileName+".tmp"))

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: disk: %w", err)
	}
	sort.Strings(names)
	for i, name := range names {
		if filepath.Base(name) != segmentName(i) {
			d.closeFiles()
			return nil, fmt.Errorf("store: disk: segment sequence broken at %s (want %s)", filepath.Base(name), segmentName(i))
		}
		size, err := d.recoverSegment(i, name)
		if err != nil {
			d.closeFiles()
			return nil, err
		}
		d.activeSize = size
	}
	d.recov.Segments = len(names)
	// The recovered raw footprint is the unique footprint: duplicate Puts
	// from earlier runs were never written.
	d.ctr.rawNodes.Store(d.ctr.uniqueNodes.Load())
	d.ctr.rawBytes.Store(d.ctr.uniqueBytes.Load())

	d.activeID = len(names) - 1
	if len(names) == 0 {
		if err := d.appendSegment(); err != nil {
			return nil, err
		}
	} else if err := d.openActiveWriter(); err != nil {
		d.closeFiles()
		return nil, err
	}
	if err := d.loadMeta(); err != nil {
		d.closeFiles()
		return nil, err
	}
	return d, nil
}

// recoverSegment scans one segment, registering every intact record and
// truncating the file after the last one. It returns the valid size and
// keeps a read handle in d.readers.
func (d *DiskStore) recoverSegment(id int, path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: disk: %w", err)
	}
	fileSize := int64(0)
	if st, err := f.Stat(); err == nil {
		fileSize = st.Size()
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var off int64
	var hdr [recordHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // clean EOF or torn header: valid data ends at off
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		// A length the writer would never produce, or one reaching past
		// the end of the file, marks a torn/corrupt tail — and bounding
		// by the file size keeps a corrupt header from triggering a
		// multi-gigabyte allocation.
		if n > maxRecordBytes || int64(n) > fileSize-off-recordHeaderSize {
			break
		}
		h, err := hash.FromBytes(hdr[4:])
		if err != nil {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn payload
		}
		if hash.Of(payload) != h {
			break // payload does not re-hash to its address: torn write
		}
		if _, dup := d.locs[h]; !dup {
			d.locs[h] = recordLoc{seg: int32(id), n: int32(n), off: off + recordHeaderSize}
			d.ctr.uniqueNodes.Add(1)
			d.ctr.uniqueBytes.Add(int64(n))
		}
		off += recordHeaderSize + int64(n)
	}
	if st, err := f.Stat(); err == nil && st.Size() > off {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return 0, fmt.Errorf("store: disk: truncating torn tail of %s: %w", filepath.Base(path), err)
		}
		d.recov.TornSegments++
		d.recov.TornBytes += st.Size() - off
	}
	d.readers = append(d.readers, f)
	return off, nil
}

// openActiveWriter attaches the buffered append writer to the current
// active segment (d.activeID), which must already have a reader.
func (d *DiskStore) openActiveWriter() error {
	path := filepath.Join(d.dirPath, segmentName(d.activeID))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: disk: %w", err)
	}
	d.active = f
	d.w = bufio.NewWriterSize(f, d.opts.FlushBytes)
	return nil
}

// appendSegment creates segment activeID+1 and makes it active. Callers
// must have flushed the previous writer.
func (d *DiskStore) appendSegment() error {
	id := d.activeID + 1
	path := filepath.Join(d.dirPath, segmentName(id))
	rf, err := os.Open(path)
	if os.IsNotExist(err) {
		if f, cerr := os.Create(path); cerr != nil {
			return fmt.Errorf("store: disk: %w", cerr)
		} else if cerr = f.Close(); cerr != nil {
			return fmt.Errorf("store: disk: %w", cerr)
		}
		rf, err = os.Open(path)
	}
	if err != nil {
		return fmt.Errorf("store: disk: %w", err)
	}
	if d.active != nil {
		d.active.Close()
	}
	d.readers = append(d.readers, rf)
	d.activeID = id
	d.activeSize = 0
	return d.openActiveWriter()
}

// Put implements Store. Write errors are sticky and surfaced by Sync and
// Close; until then the affected nodes remain readable from memory.
func (d *DiskStore) Put(data []byte) hash.Hash {
	h := hash.Of(data)
	if b := d.bar.beginWrite(); b != nil {
		b.record(h)
	}
	defer d.bar.endWrite()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.putLocked(h, data)
	return h
}

// putLocked appends one record under an already-computed digest. It carries
// the whole single-record write path — dedup, oversized handling, segment
// rolls, buffered append and accounting — so Put and PutBatchHashed share
// one implementation. Caller holds d.mu.
func (d *DiskStore) putLocked(h hash.Hash, data []byte) {
	d.ctr.rawNodes.Add(1)
	d.ctr.rawBytes.Add(int64(len(data)))
	if _, ok := d.locs[h]; ok {
		d.ctr.dedupHits.Add(1)
		return
	}
	if _, ok := d.resident[h]; ok {
		d.ctr.dedupHits.Add(1)
		return
	}
	if _, ok := d.pending[h]; ok {
		// Only degraded-mode entries live in pending without a loc; the
		// normal path registers a loc before this check can be reached.
		d.ctr.dedupHits.Add(1)
		return
	}
	if d.closed {
		d.fail(errors.New("store: disk: Put after Close"))
		return
	}
	if int64(len(data)) > maxRecordBytes {
		// Larger than the record format allows: recovery would reject it
		// on reopen, so never write it. Keep it readable in memory and
		// surface the condition instead of losing it (and the records
		// after it) silently on the next open.
		cp := make([]byte, len(data))
		copy(cp, data)
		d.resident[h] = cp
		d.ctr.uniqueNodes.Add(1)
		d.ctr.uniqueBytes.Add(int64(len(data)))
		d.fail(fmt.Errorf("store: disk: node of %d bytes exceeds the record limit (%d); kept memory-resident, not persisted", len(data), maxRecordBytes))
		return
	}
	if err := d.writeErr("put"); err != nil {
		d.degradePutLocked(h, data, err)
		return
	}
	d.replayUnwrittenLocked()
	d.appendRecordLocked(h, data)
	cp := make([]byte, len(data))
	copy(cp, data)
	d.pending[h] = cp
	d.pendingBytes += len(cp)
	d.ctr.uniqueNodes.Add(1)
	d.ctr.uniqueBytes.Add(int64(len(data)))
	if d.pendingBytes >= d.opts.FlushBytes {
		_ = d.flushLocked()
	}
}

// appendRecordLocked writes one record's bytes into the active segment's
// buffer, rolling the segment when needed, and registers its location. The
// caller manages the pending map and unique accounting (the replay path
// already did both when the record was parked). Caller holds d.mu.
func (d *DiskStore) appendRecordLocked(h hash.Hash, data []byte) {
	rec := recordHeaderSize + int64(len(data))
	if d.activeSize > 0 && d.activeSize+rec > d.opts.SegmentBytes {
		d.crash(CrashSegmentRoll)
		if err := d.flushLocked(); err == nil {
			if err := d.appendSegment(); err != nil {
				d.fail(err)
			}
		}
	}
	d.crash(CrashAppendRecord)
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(data)))
	copy(hdr[4:], h[:])
	if _, err := d.w.Write(hdr[:]); err != nil {
		d.fail(err)
	}
	if _, err := d.w.Write(data); err != nil {
		d.fail(err)
	}
	d.locs[h] = recordLoc{seg: int32(d.activeID), n: int32(len(data)), off: d.activeSize + recordHeaderSize}
	d.activeSize += rec
}

// fail records the first error for Sync/Close to report; later errors are
// dropped — under a persistent failure (disk full) every subsequent write
// fails too, and joining millions of them would grow without bound.
func (d *DiskStore) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// flushLocked pushes buffered records to the OS and retires the pending
// map. On failure pending entries are kept so reads stay correct. Caller
// holds d.mu.
func (d *DiskStore) flushLocked() error {
	if err := d.writeErr("flush"); err != nil {
		// Degraded, not broken: the error is typed and retryable, so it is
		// NOT folded into the sticky lifetime error — after a heal the next
		// flush succeeds and replays everything parked meanwhile.
		err = fmt.Errorf("store: disk: degraded read-only: %w", err)
		d.degraded = err
		return err
	}
	d.replayUnwrittenLocked()
	if err := d.w.Flush(); err != nil {
		err = fmt.Errorf("store: disk: flush: %w", err)
		d.fail(err)
		return err
	}
	if d.opts.SyncOnFlush {
		if err := d.active.Sync(); err != nil {
			err = fmt.Errorf("store: disk: sync: %w", err)
			d.fail(err)
			return err
		}
	}
	clear(d.pending)
	d.pendingBytes = 0
	return nil
}

// Get implements Store. Flushed records are read without holding the lock:
// a written file region is immutable and *os.File supports concurrent
// ReadAt.
func (d *DiskStore) Get(h hash.Hash) ([]byte, bool) {
	d.ctr.gets.Add(1)
	d.mu.RLock()
	if p, ok := d.pending[h]; ok {
		d.mu.RUnlock()
		return p, true
	}
	if r, ok := d.resident[h]; ok {
		d.mu.RUnlock()
		return r, true
	}
	loc, ok := d.locs[h]
	var f *os.File
	if ok {
		// After Close the reader handles are gone (closeFiles nils the
		// slice) while the directory may still name the record; degrade to
		// a miss instead of indexing into nothing.
		if int(loc.seg) >= len(d.readers) {
			d.mu.RUnlock()
			d.ctr.misses.Add(1)
			return nil, false
		}
		f = d.readers[loc.seg]
	}
	d.mu.RUnlock()
	if !ok {
		d.ctr.misses.Add(1)
		return nil, false
	}
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		d.ctr.misses.Add(1)
		d.mu.Lock()
		d.fail(fmt.Errorf("store: disk: read seg %d @%d: %w", loc.seg, loc.off, err))
		d.mu.Unlock()
		return nil, false
	}
	return buf, true
}

// Has implements Store. The pending check covers degraded-mode entries,
// which have no loc until they are replayed.
func (d *DiskStore) Has(h hash.Hash) bool {
	d.mu.RLock()
	_, ok := d.locs[h]
	if !ok {
		_, ok = d.resident[h]
	}
	if !ok {
		_, ok = d.pending[h]
	}
	d.mu.RUnlock()
	return ok
}

// Stats implements Store.
func (d *DiskStore) Stats() Stats { return d.ctr.snapshot() }

// Len returns the number of distinct nodes resident.
func (d *DiskStore) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.locs) + len(d.resident) + len(d.unwritten)
}

// SizeOf returns the stored size of h in bytes, or 0 if absent.
func (d *DiskStore) SizeOf(h hash.Hash) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if r, ok := d.resident[h]; ok {
		return len(r)
	}
	if loc, ok := d.locs[h]; ok {
		return int(loc.n)
	}
	return len(d.pending[h]) // degraded-mode entries: pending without a loc
}

// Dir returns the directory holding the segment files.
func (d *DiskStore) Dir() string { return d.dirPath }

// Recovery reports what the rebuild-on-open scan found and repaired. The
// summary is fixed at open time.
func (d *DiskStore) Recovery() RecoverySummary { return d.recov }

// Segments returns how many segment files the store spans.
func (d *DiskStore) Segments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.readers)
}

// Sync flushes buffered records and fsyncs the active segment, then
// reports any write error accumulated so far.
func (d *DiskStore) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return d.err
	}
	if err := d.flushLocked(); err != nil {
		// A degraded (injected, retryable) flush failure is returned
		// directly — it is not part of the sticky lifetime error.
		return err
	}
	if err := d.active.Sync(); err != nil {
		d.fail(fmt.Errorf("store: disk: sync: %w", err))
	}
	return d.err
}

// Close flushes and closes every file handle. When the store was opened as
// an ephemeral backend (store.Open without KeepFiles), the segment
// directory is removed as well. Close reports the first write error
// encountered during the store's lifetime.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return d.err
	}
	d.closed = true
	if err := d.flushLocked(); err != nil {
		// Closing while degraded abandons the parked writes; surface that
		// instead of reporting a clean close.
		d.fail(err)
	}
	d.closeFiles()
	if d.removeOnClose {
		if err := os.RemoveAll(d.dirPath); err != nil {
			d.fail(err)
		}
	}
	return d.err
}

// CrashClose abandons the store the way a process crash would: every file
// handle is closed WITHOUT flushing the write buffer, nothing is fsynced,
// and the segment directory is left in place even for ephemeral stores.
// Records still sitting in the buffer are lost, exactly as they would be
// when the process dies — which is the point: crash-consistency tests
// CrashClose a store, reopen the directory, and assert the rebuild scan
// recovers everything that had reached the OS. Production code has no
// reason to call it.
func (d *DiskStore) CrashClose() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	d.closeFiles()
}

// closeFiles closes all handles without flushing. Caller holds d.mu (or is
// the constructor on its error path).
func (d *DiskStore) closeFiles() {
	if d.active != nil {
		if err := d.active.Close(); err != nil {
			d.fail(err)
		}
		d.active = nil
	}
	for _, f := range d.readers {
		if err := f.Close(); err != nil {
			d.fail(err)
		}
	}
	d.readers = nil
	for _, f := range d.obsolete {
		_ = f.Close() // unlinked pre-compaction inodes; errors carry no signal
	}
	d.obsolete = nil
}
