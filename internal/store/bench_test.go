package store_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/hash"
	"repro/internal/store"
)

// benchBackends pairs every backend with a constructor for the concurrent
// throughput comparison. The sharded store's win over the single-mutex
// MemStore under parallel Put/Get is the point of these benchmarks:
//
//	go test ./internal/store -bench 'Parallel' -cpu 1,4,8
func benchBackends(b *testing.B) []struct {
	name string
	new  func() store.Store
} {
	return []struct {
		name string
		new  func() store.Store
	}{
		{"mem", func() store.Store { return store.NewMemStore() }},
		{"sharded", func() store.Store { return store.NewShardedStore(0) }},
		{"disk", func() store.Store {
			d, err := store.OpenDiskStore(b.TempDir(), store.DiskOptions{})
			if err != nil {
				b.Fatal(err)
			}
			return d
		}},
	}
}

// benchPayloads generates n distinct ~1KB node payloads (the paper's tuned
// node size).
func benchPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 1024)
		copy(p, fmt.Sprintf("payload-%08d", i))
		out[i] = p
	}
	return out
}

func BenchmarkStorePutParallel(b *testing.B) {
	payloads := benchPayloads(4096)
	for _, backend := range benchBackends(b) {
		b.Run(backend.name, func(b *testing.B) {
			s := backend.new()
			defer store.Release(s)
			var next atomic.Int64
			b.SetBytes(1024)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					s.Put(payloads[int(i)%len(payloads)])
				}
			})
		})
	}
}

func BenchmarkStoreGetParallel(b *testing.B) {
	payloads := benchPayloads(4096)
	for _, backend := range benchBackends(b) {
		b.Run(backend.name, func(b *testing.B) {
			s := backend.new()
			defer store.Release(s)
			hs := make([]hash.Hash, len(payloads))
			for i, p := range payloads {
				hs[i] = s.Put(p)
			}
			if d, ok := s.(*store.DiskStore); ok {
				if err := d.Sync(); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.SetBytes(1024)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					if _, ok := s.Get(hs[int(i)%len(hs)]); !ok {
						b.Error("miss on resident node")
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreMixedParallel is the index-update shape: mostly reads with
// a stream of fresh writes mixed in.
func BenchmarkStoreMixedParallel(b *testing.B) {
	payloads := benchPayloads(4096)
	for _, backend := range benchBackends(b) {
		b.Run(backend.name, func(b *testing.B) {
			s := backend.new()
			defer store.Release(s)
			hs := make([]hash.Hash, len(payloads))
			for i, p := range payloads {
				hs[i] = s.Put(p)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					if i%10 == 0 {
						s.Put(payloads[int(i)%len(payloads)])
					} else if _, ok := s.Get(hs[int(i)%len(hs)]); !ok {
						b.Error("miss on resident node")
						return
					}
				}
			})
		})
	}
}

// BenchmarkStorePutGet is the single-threaded write-then-read shape of an
// index commit followed by lookups, comparing the sequential Put loop with
// the PutBatch path on every backend. This is the smoke benchmark CI runs
// through benchstat on every PR.
func BenchmarkStorePutGet(b *testing.B) {
	payloads := benchPayloads(1024)
	for _, backend := range benchBackends(b) {
		for _, mode := range []string{"put", "putbatch"} {
			b.Run(backend.name+"/"+mode, func(b *testing.B) {
				b.SetBytes(int64(len(payloads)) * 1024)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := backend.new()
					b.StartTimer()
					var hs []hash.Hash
					if mode == "putbatch" {
						hs = store.PutBatch(s, payloads)
					} else {
						hs = make([]hash.Hash, len(payloads))
						for j, p := range payloads {
							hs[j] = s.Put(p)
						}
					}
					for _, h := range hs {
						if _, ok := s.Get(h); !ok {
							b.Fatal("miss on resident node")
						}
					}
					b.StopTimer()
					store.Release(s)
					b.StartTimer()
				}
			})
		}
	}
}
