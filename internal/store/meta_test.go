package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hash"
	"repro/internal/store"
)

// TestMetaRoundTrip checks the MetaStore capability on every backend: set,
// overwrite, read back, and isolation from the content-addressed node
// space.
func TestMetaRoundTrip(t *testing.T) {
	backends := []struct {
		name string
		new  func(t *testing.T) store.Store
	}{
		{"mem", func(t *testing.T) store.Store { return store.NewMemStore() }},
		{"sharded", func(t *testing.T) store.Store { return store.NewShardedStore(4) }},
		{"cached", func(t *testing.T) store.Store {
			return store.NewCachedStore(store.NewMemStore(), 1<<16)
		}},
		{"disk", func(t *testing.T) store.Store {
			d, err := store.OpenDiskStore(t.TempDir(), store.DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		}},
	}
	for _, backend := range backends {
		t.Run(backend.name, func(t *testing.T) {
			s := backend.new(t)
			if _, ok, err := store.GetMeta(s, "absent"); err != nil || ok {
				t.Fatalf("GetMeta(absent) = ok=%v err=%v, want miss", ok, err)
			}
			if err := store.SetMeta(s, "heads", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := store.SetMeta(s, "heads", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if err := store.SetMeta(s, "other", []byte("x")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := store.GetMeta(s, "heads")
			if err != nil || !ok || string(v) != "v2" {
				t.Fatalf("GetMeta(heads) = %q ok=%v err=%v, want v2", v, ok, err)
			}
			// Metadata is outside the node space: a full sweep must not
			// touch it.
			s.Put([]byte("node"))
			if _, err := store.Sweep(s, func(hash.Hash) bool { return false }); err != nil {
				t.Fatal(err)
			}
			v, ok, err = store.GetMeta(s, "heads")
			if err != nil || !ok || string(v) != "v2" {
				t.Fatalf("GetMeta(heads) after sweep = %q ok=%v err=%v, want v2", v, ok, err)
			}
		})
	}
}

// TestMetaDiskPersistence checks that DiskStore metadata survives a close
// and reopen, and that a corrupt metadata file degrades the open — empty
// metadata, flagged in RecoverySummary, original preserved as a .corrupt
// sidecar — instead of wedging the store.
func TestMetaDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetMeta(d, "heads", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := store.GetMeta(d2, "heads")
	if err != nil || !ok || string(v) != "persisted" {
		t.Fatalf("reopened meta = %q ok=%v err=%v", v, ok, err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt file: the open degrades to empty metadata rather than
	// failing — node data is still intact and the version layer can
	// resume branch heads from the commit log.
	if err := os.WriteFile(filepath.Join(dir, "meta.bin"), []byte{0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	d3, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatalf("open with corrupt meta file: %v", err)
	}
	defer d3.Close()
	if !d3.Recovery().MetaCorrupt {
		t.Fatal("RecoverySummary does not flag the corrupt meta file")
	}
	if _, ok, err := store.GetMeta(d3, "heads"); err != nil || ok {
		t.Fatalf("GetMeta after degrade = ok=%v err=%v, want clean miss", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.bin.corrupt")); err != nil {
		t.Fatalf("corrupt meta not preserved as sidecar: %v", err)
	}
	// Metadata writes work again and persist.
	if err := store.SetMeta(d3, "heads", []byte("rebuilt")); err != nil {
		t.Fatal(err)
	}
	if err := d3.Close(); err != nil {
		t.Fatal(err)
	}
	d4, err := store.OpenDiskStore(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d4.Close()
	v, ok, err = store.GetMeta(d4, "heads")
	if err != nil || !ok || string(v) != "rebuilt" {
		t.Fatalf("meta after degrade+rewrite = %q ok=%v err=%v", v, ok, err)
	}
}
