package store

import (
	"errors"
	"fmt"

	"repro/internal/hash"
)

// ErrNoSweeper reports a Delete or Sweep request against a store whose
// backing does not support space reclamation.
var ErrNoSweeper = errors.New("store: backend does not support delete/sweep")

// Deleter is the single-node reclamation capability of the store contract.
// Content addressing makes deletion safe only when the caller knows no live
// version references the node — the store cannot tell, so the capability is
// reserved for the garbage collector in internal/version, which computes
// reachability first.
//
// All four built-in backends implement Deleter. For the in-memory backends a
// delete frees the node immediately; for DiskStore it is logical — the node
// becomes unreadable and its bytes are reclaimed by the next Sweep
// compaction (until then, a crash or reopen resurrects the record from the
// segment scan, which is harmless garbage, not a correctness issue).
type Deleter interface {
	// Delete removes the node stored under h, returning whether it was
	// present. Deleting an absent node is a no-op. Wrapping stores
	// (CachedStore) return ErrNoSweeper when their backing cannot delete.
	Delete(h hash.Hash) (bool, error)
}

// LiveFunc reports whether the node stored under h must be retained.
// Implementations must be pure and fast: Sweep calls it once per resident
// node while holding store locks.
type LiveFunc func(hash.Hash) bool

// Sweeper is the bulk reclamation capability: one pass that keeps exactly
// the nodes a LiveFunc marks and reclaims everything else. It is the store
// half of mark-and-sweep garbage collection — internal/version computes the
// live set (the union of nodes reachable from every retained commit) and
// hands it here as the predicate.
//
// Safety contract: concurrent readers of retained nodes are safe on every
// built-in backend, and Sweep may overlap writers when a write barrier is
// armed (BarrierStore): every built-in Sweep unions the armed barrier into
// the live predicate, so nodes flushed since the barrier was armed — an
// in-flight core.StagedWriter commit, for example — survive the pass even
// though no retained version reaches them yet. Without an armed barrier
// the old rule applies: callers must quiesce writers for the duration of
// the sweep, or freshly flushed not-yet-committed nodes are reclaimed as
// unreachable. internal/version.Repo.GC arms the barrier for every pass on
// a capable store.
type Sweeper interface {
	// Sweep removes every resident node h for which live(h) is false and
	// returns the reclamation accounting. DiskStore additionally compacts
	// segment files whose live fraction fell below the configured
	// threshold, rewriting them crash-safely (write-new-then-swap).
	Sweep(live LiveFunc) (SweepStats, error)
}

// SweepStats is the accounting of one Sweep pass.
type SweepStats struct {
	LiveNodes  int64 // nodes retained
	LiveBytes  int64 // bytes of retained nodes
	SweptNodes int64 // nodes reclaimed
	SweptBytes int64 // bytes of reclaimed nodes
	// SegmentsCompacted counts segment files rewritten by DiskStore; zero
	// for the in-memory backends.
	SegmentsCompacted int
}

// String renders the counters in a compact single line for logs.
func (s SweepStats) String() string {
	return fmt.Sprintf("live=%d nodes/%d B swept=%d nodes/%d B compacted=%d segs",
		s.LiveNodes, s.LiveBytes, s.SweptNodes, s.SweptBytes, s.SegmentsCompacted)
}

// Delete removes h from s through its Deleter capability, reporting
// ErrNoSweeper for stores that lack it.
func Delete(s Store, h hash.Hash) (bool, error) {
	if d, ok := s.(Deleter); ok {
		return d.Delete(h)
	}
	return false, fmt.Errorf("%w: %T", ErrNoSweeper, s)
}

// Sweep runs a mark-complement sweep on s through its Sweeper capability,
// reporting ErrNoSweeper for stores that lack it.
func Sweep(s Store, live LiveFunc) (SweepStats, error) {
	if sw, ok := s.(Sweeper); ok {
		return sw.Sweep(live)
	}
	return SweepStats{}, fmt.Errorf("%w: %T", ErrNoSweeper, s)
}

// Compile-time checks: every built-in backend supports reclamation.
var (
	_ Deleter = (*MemStore)(nil)
	_ Deleter = (*ShardedStore)(nil)
	_ Deleter = (*DiskStore)(nil)
	_ Deleter = (*CachedStore)(nil)
	_ Sweeper = (*MemStore)(nil)
	_ Sweeper = (*ShardedStore)(nil)
	_ Sweeper = (*DiskStore)(nil)
	_ Sweeper = (*CachedStore)(nil)
)

// Delete implements Deleter: the node is removed from the map and the
// unique-footprint counters shrink accordingly (raw counters keep their
// history).
func (m *MemStore) Delete(h hash.Hash) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.nodes[h]
	if !ok {
		return false, nil
	}
	delete(m.nodes, h)
	m.stats.UniqueNodes--
	m.stats.UniqueBytes -= int64(len(data))
	return true, nil
}

// memSweepChunk bounds how many deletions one write-lock acquisition of a
// MemStore sweep performs, so concurrent reads and writes interleave with
// the sweep instead of stalling for the whole pass.
const memSweepChunk = 1024

// Sweep implements Sweeper in two phases to keep pauses short: the doomed
// set is collected under the read lock (concurrent Get/Has proceed), then
// deleted in chunks under short write-lock acquisitions. Each doomed node
// is re-checked against the (barrier-extended) predicate at delete time,
// so content re-put between the phases survives.
func (m *MemStore) Sweep(live LiveFunc) (SweepStats, error) {
	live = m.bar.wrap(live)
	var st SweepStats
	m.mu.RLock()
	doomed := make([]hash.Hash, 0, 64)
	for h, data := range m.nodes {
		if live(h) {
			st.LiveNodes++
			st.LiveBytes += int64(len(data))
			continue
		}
		doomed = append(doomed, h)
	}
	m.mu.RUnlock()
	for start := 0; start < len(doomed); start += memSweepChunk {
		end := start + memSweepChunk
		if end > len(doomed) {
			end = len(doomed)
		}
		var nodes, bytes int64
		m.mu.Lock()
		for _, h := range doomed[start:end] {
			if live(h) {
				continue // re-put since the scan: the barrier marked it live
			}
			data, ok := m.nodes[h]
			if !ok {
				continue
			}
			delete(m.nodes, h)
			nodes++
			bytes += int64(len(data))
		}
		m.stats.UniqueNodes -= nodes
		m.stats.UniqueBytes -= bytes
		m.mu.Unlock()
		st.SweptNodes += nodes
		st.SweptBytes += bytes
	}
	return st, nil
}

// Delete implements Deleter on the owning shard.
func (s *ShardedStore) Delete(h hash.Hash) (bool, error) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	data, ok := sh.nodes[h]
	if ok {
		delete(sh.nodes, h)
	}
	sh.mu.Unlock()
	if !ok {
		return false, nil
	}
	s.ctr.uniqueNodes.Add(-1)
	s.ctr.uniqueBytes.Add(-int64(len(data)))
	return true, nil
}

// Sweep implements Sweeper shard by shard; each shard lock is held only for
// its own pass, so concurrent readers and writers of other shards proceed.
// The armed barrier, if any, extends the live predicate so writes landing
// during the pass survive it.
func (s *ShardedStore) Sweep(live LiveFunc) (SweepStats, error) {
	live = s.bar.wrap(live)
	var st SweepStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for h, data := range sh.nodes {
			if live(h) {
				st.LiveNodes++
				st.LiveBytes += int64(len(data))
				continue
			}
			delete(sh.nodes, h)
			st.SweptNodes++
			st.SweptBytes += int64(len(data))
		}
		sh.mu.Unlock()
	}
	s.ctr.uniqueNodes.Add(-st.SweptNodes)
	s.ctr.uniqueBytes.Add(-st.SweptBytes)
	return st, nil
}

// Delete implements Deleter: the entry is evicted locally and the delete is
// forwarded to the backing store.
func (c *CachedStore) Delete(h hash.Hash) (bool, error) {
	d, ok := c.backing.(Deleter)
	if !ok {
		return false, fmt.Errorf("%w: backing %T", ErrNoSweeper, c.backing)
	}
	c.mu.Lock()
	c.evict(h)
	c.mu.Unlock()
	return d.Delete(h)
}

// Sweep implements Sweeper: the backing store sweeps, then dead entries are
// evicted from the LRU so the cache can never resurrect a reclaimed node.
func (c *CachedStore) Sweep(live LiveFunc) (SweepStats, error) {
	sw, ok := c.backing.(Sweeper)
	if !ok {
		return SweepStats{}, fmt.Errorf("%w: backing %T", ErrNoSweeper, c.backing)
	}
	st, err := sw.Sweep(live)
	if err != nil {
		return st, err
	}
	c.mu.Lock()
	for h := range c.entries {
		if !live(h) {
			c.evict(h)
		}
	}
	c.mu.Unlock()
	return st, nil
}

// evict removes h from the LRU if present. Caller holds c.mu.
func (c *CachedStore) evict(h hash.Hash) {
	el, ok := c.entries[h]
	if !ok {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.entries, h)
	c.bytes -= int64(len(ent.data))
}
