package store_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hash"
	"repro/internal/store"
)

func openDisk(t *testing.T, dir string, opts store.DiskOptions) *store.DiskStore {
	t.Helper()
	d, err := store.OpenDiskStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskStoreReopen is the acceptance check: every node written before a
// clean close is served after reopening from the segment files alone.
func TestDiskStoreReopen(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{})
	const n = 300
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = d.Put(diskBlob(i))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, dir, store.DiskOptions{})
	defer re.Close()
	for i, h := range hs {
		got, ok := re.Get(h)
		if !ok || !bytes.Equal(got, diskBlob(i)) {
			t.Fatalf("node %d lost across reopen: %q, %v", i, got, ok)
		}
	}
	st := re.Stats()
	if st.UniqueNodes != n {
		t.Fatalf("recovered UniqueNodes = %d, want %d", st.UniqueNodes, n)
	}
	if st.UniqueBytes != st.RawBytes || st.UniqueNodes != st.RawNodes {
		t.Fatalf("reopen must reset raw counters to the unique footprint: %+v", st)
	}
	// Dedup accounting keeps working after recovery.
	re.Put(diskBlob(0))
	if got := re.Stats().DedupHits; got != 1 {
		t.Fatalf("DedupHits after re-putting recovered node = %d, want 1", got)
	}
}

// TestDiskStoreReopenWithoutClose reopens from files written by a store
// that was flushed but never closed — the crash-at-rest case.
func TestDiskStoreReopenWithoutClose(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{})
	h := d.Put([]byte("survives a crash"))
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: drop the handle without Close.

	re := openDisk(t, dir, store.DiskOptions{})
	defer re.Close()
	got, ok := re.Get(h)
	if !ok || string(got) != "survives a crash" {
		t.Fatalf("Get after crash-reopen = %q, %v", got, ok)
	}
	d.Close() // release the leaked handles for the test process
}

// TestDiskStoreTornTailRecovery corrupts the segment tail in several ways
// and checks that reopening truncates the damage and serves every intact
// record.
func TestDiskStoreTornTailRecovery(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, seg string)
	}{
		{"TruncatedHeader", func(t *testing.T, seg string) {
			appendBytes(t, seg, []byte{0x00, 0x00})
		}},
		{"TruncatedPayload", func(t *testing.T, seg string) {
			// A full header promising 232 bytes, then only 3.
			rec := make([]byte, 4+hash.Size)
			rec[3] = 0xE8 // length 232
			appendBytes(t, seg, append(rec, 'x', 'y', 'z'))
		}},
		{"DigestMismatch", func(t *testing.T, seg string) {
			// Well-formed record whose payload does not hash to its digest.
			payload := []byte("tampered")
			rec := make([]byte, 4+hash.Size, 4+hash.Size+len(payload))
			rec[3] = byte(len(payload))
			copy(rec[4:], hash.Of([]byte("something else")).Bytes())
			appendBytes(t, seg, append(rec, payload...))
		}},
		{"AbsurdLength", func(t *testing.T, seg string) {
			appendBytes(t, seg, []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := openDisk(t, dir, store.DiskOptions{})
			const n = 50
			hs := make([]hash.Hash, n)
			for i := 0; i < n; i++ {
				hs[i] = d.Put(diskBlob(i))
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, "seg-000000.seg")
			intact, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			tc.tear(t, seg)

			re := openDisk(t, dir, store.DiskOptions{})
			defer re.Close()
			for i, h := range hs {
				got, ok := re.Get(h)
				if !ok || !bytes.Equal(got, diskBlob(i)) {
					t.Fatalf("intact node %d lost to tail recovery: %q, %v", i, got, ok)
				}
			}
			if st := re.Stats(); st.UniqueNodes != n {
				t.Fatalf("recovered %d nodes, want %d", st.UniqueNodes, n)
			}
			// The torn bytes must be physically gone so appends continue
			// from a clean boundary.
			now, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if now.Size() != intact.Size() {
				t.Fatalf("segment size after recovery = %d, want %d", now.Size(), intact.Size())
			}
			// And the store keeps accepting writes after recovery.
			h := re.Put([]byte("written after recovery"))
			if got, ok := re.Get(h); !ok || string(got) != "written after recovery" {
				t.Fatalf("post-recovery Put/Get = %q, %v", got, ok)
			}
		})
	}
}

// TestDiskStoreSegmentRolling forces multiple segments and checks both the
// live store and a reopened one serve records across all of them.
func TestDiskStoreSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{SegmentBytes: 512, FlushBytes: 128})
	const n = 100
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = d.Put(diskBlob(i))
	}
	if d.Segments() < 3 {
		t.Fatalf("Segments = %d, want several with a 512-byte roll size", d.Segments())
	}
	for i, h := range hs {
		if got, ok := d.Get(h); !ok || !bytes.Equal(got, diskBlob(i)) {
			t.Fatalf("live read of node %d failed", i)
		}
	}
	segs := d.Segments()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, dir, store.DiskOptions{SegmentBytes: 512})
	defer re.Close()
	if re.Segments() != segs {
		t.Fatalf("reopened with %d segments, wrote %d", re.Segments(), segs)
	}
	for i, h := range hs {
		if got, ok := re.Get(h); !ok || !bytes.Equal(got, diskBlob(i)) {
			t.Fatalf("reopened read of node %d failed", i)
		}
	}
}

// TestDiskStoreOversizedRecord stores a node larger than the segment roll
// size; it must land in its own segment, not fail.
func TestDiskStoreOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{SegmentBytes: 256})
	defer d.Close()
	big := bytes.Repeat([]byte("large"), 1000) // 5000 bytes >> 256
	h := d.Put(big)
	if got, ok := d.Get(h); !ok || !bytes.Equal(got, big) {
		t.Fatal("oversized record unreadable")
	}
}

// TestDiskStorePendingReads exercises the unflushed-read path explicitly: a
// large flush buffer keeps records pending, and Get must serve them.
func TestDiskStorePendingReads(t *testing.T) {
	d := openDisk(t, t.TempDir(), store.DiskOptions{FlushBytes: 1 << 20})
	defer d.Close()
	h := d.Put([]byte("still buffered"))
	if got, ok := d.Get(h); !ok || string(got) != "still buffered" {
		t.Fatalf("pending Get = %q, %v", got, ok)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get(h); !ok || string(got) != "still buffered" {
		t.Fatalf("flushed Get = %q, %v", got, ok)
	}
}

func TestDiskStoreSizeOfAndLen(t *testing.T) {
	d := openDisk(t, t.TempDir(), store.DiskOptions{})
	defer d.Close()
	h := d.Put([]byte("12345"))
	if d.SizeOf(h) != 5 {
		t.Fatalf("SizeOf = %d", d.SizeOf(h))
	}
	if d.SizeOf(hash.Of([]byte("other"))) != 0 {
		t.Fatal("SizeOf(absent) != 0")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

// TestDiskStoreSweepCompaction locks in the space-reclamation contract: a
// sweep retaining a small fraction of the nodes rewrites the segments and
// the on-disk footprint shrinks accordingly.
func TestDiskStoreSweepCompaction(t *testing.T) {
	dir := t.TempDir()
	// Small segments so the data spans several files.
	d := openDisk(t, dir, store.DiskOptions{SegmentBytes: 4096})
	defer d.Close()
	const n = 400
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = d.Put(diskBlob(i))
	}
	before, err := d.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if d.Segments() < 3 {
		t.Fatalf("want multiple segments, got %d", d.Segments())
	}

	live := make(map[hash.Hash]bool)
	for i := 0; i < n; i += 10 {
		live[hs[i]] = true
	}
	st, err := d.Sweep(func(h hash.Hash) bool { return live[h] })
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsCompacted == 0 {
		t.Fatalf("no segments compacted: %+v", st)
	}
	after, err := d.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("disk usage did not shrink: %d -> %d", before, after)
	}
	for i, h := range hs {
		got, ok := d.Get(h)
		if live[h] {
			if !ok || !bytes.Equal(got, diskBlob(i)) {
				t.Fatalf("live node %d lost by compaction: %q, %v", i, got, ok)
			}
		} else if ok {
			t.Fatalf("swept node %d still readable", i)
		}
	}
	// The store keeps accepting writes after compaction (including to a
	// compacted active segment).
	h := d.Put([]byte("post-compaction write"))
	if got, ok := d.Get(h); !ok || !bytes.Equal(got, []byte("post-compaction write")) {
		t.Fatalf("Put after compaction = %q, %v", got, ok)
	}
}

// TestDiskStoreCompactionSurvivesReopen is the crash-safety acceptance
// check: after sweep + close, a reopened store serves exactly the live set,
// and the segment sequence is still contiguous and scannable.
func TestDiskStoreCompactionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{SegmentBytes: 4096})
	const n = 300
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = d.Put(diskBlob(i))
	}
	live := make(map[hash.Hash]bool)
	for i := 0; i < n; i += 7 {
		live[hs[i]] = true
	}
	if _, err := d.Sweep(func(h hash.Hash) bool { return live[h] }); err != nil {
		t.Fatal(err)
	}
	afterSweep, err := d.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, dir, store.DiskOptions{SegmentBytes: 4096})
	defer re.Close()
	for i, h := range hs {
		got, ok := re.Get(h)
		if live[h] {
			if !ok || !bytes.Equal(got, diskBlob(i)) {
				t.Fatalf("live node %d lost across reopen: %q, %v", i, got, ok)
			}
		} else if ok {
			// A node in a segment kept above the liveness threshold may be
			// resurrected by the reopen scan (deletes are logical until the
			// segment compacts); it must at least carry the right content.
			if !bytes.Equal(got, diskBlob(i)) {
				t.Fatalf("resurrected node %d corrupt", i)
			}
		}
	}
	reUsage, err := re.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if reUsage != afterSweep {
		t.Fatalf("disk usage changed across reopen: %d -> %d", afterSweep, reUsage)
	}
}

// TestDiskStoreCompactionOrphanCleanup simulates a crash between writing a
// compacted replacement and the swap rename: the orphaned .compact file is
// discarded on open and the original segment keeps serving.
func TestDiskStoreCompactionOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{})
	h := d.Put([]byte("kept across the simulated crash"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// A half-written replacement for segment 0 (arbitrary garbage).
	orphan := filepath.Join(dir, "seg-000000.seg.compact")
	if err := os.WriteFile(orphan, []byte("partial compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, dir, store.DiskOptions{})
	defer re.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned .compact file not cleaned up: %v", err)
	}
	if got, ok := re.Get(h); !ok || !bytes.Equal(got, []byte("kept across the simulated crash")) {
		t.Fatalf("original segment lost after orphan cleanup: %q, %v", got, ok)
	}
}

// TestDiskStoreSweepThreshold pins the liveness-threshold contract: a
// segment mostly live stays untouched (its file size does not change), while
// a mostly dead one is rewritten.
func TestDiskStoreSweepThreshold(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, store.DiskOptions{CompactLiveFraction: 0.5})
	defer d.Close()
	const n = 100
	hs := make([]hash.Hash, n)
	for i := 0; i < n; i++ {
		hs[i] = d.Put(diskBlob(i))
	}
	before, err := d.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	// Kill a small minority: the single segment stays above the threshold.
	dead := map[hash.Hash]bool{hs[1]: true, hs[2]: true}
	st, err := d.Sweep(func(h hash.Hash) bool { return !dead[h] })
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsCompacted != 0 {
		t.Fatalf("mostly-live segment compacted: %+v", st)
	}
	after, err := d.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("disk usage changed without compaction: %d -> %d", before, after)
	}
	// Now kill nearly everything: the segment crosses the threshold.
	st, err = d.Sweep(func(h hash.Hash) bool { return h == hs[0] })
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsCompacted == 0 {
		t.Fatalf("mostly-dead segment not compacted: %+v", st)
	}
	if after2, _ := d.DiskUsage(); after2 >= after {
		t.Fatalf("disk usage did not shrink after threshold crossing: %d -> %d", after, after2)
	}
	if got, ok := d.Get(hs[0]); !ok || !bytes.Equal(got, diskBlob(0)) {
		t.Fatalf("survivor lost: %q, %v", got, ok)
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func diskBlob(i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("disk-%04d|", i)), i%5+1)
}
