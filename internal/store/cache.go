package store

import (
	"container/list"
	"sync"

	"repro/internal/hash"
)

// CachedStore layers a bounded LRU node cache over a backing Store. It is
// the client-side read path of the Forkbase-style system experiment
// (Figure 21): remote node fetches hit the backing store, while repeated
// reads of hot nodes are served locally. Because nodes are immutable and
// content-addressed, the cache never needs invalidation.
type CachedStore struct {
	backing Store

	mu      sync.Mutex
	entries map[hash.Hash]*list.Element
	order   *list.List // front = most recently used
	bytes   int64
	maxB    int64
	hits    int64
	misses  int64
}

type cacheEntry struct {
	h    hash.Hash
	data []byte
}

// NewCachedStore wraps backing with an LRU cache bounded to maxBytes of node
// content. A maxBytes of 0 disables caching (every Get goes to backing).
func NewCachedStore(backing Store, maxBytes int64) *CachedStore {
	return &CachedStore{
		backing: backing,
		entries: make(map[hash.Hash]*list.Element),
		order:   list.New(),
		maxB:    maxBytes,
	}
}

// Put writes through to the backing store and populates the cache, since a
// node just written is likely to be re-read while building parents.
func (c *CachedStore) Put(data []byte) hash.Hash {
	h := c.backing.Put(data)
	c.mu.Lock()
	c.insert(h, data)
	c.mu.Unlock()
	return h
}

// Get serves from cache when possible, falling back to the backing store.
func (c *CachedStore) Get(h hash.Hash) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[h]; ok {
		c.order.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.hits++
		c.mu.Unlock()
		return data, true
	}
	c.misses++
	c.mu.Unlock()

	data, ok := c.backing.Get(h)
	if ok {
		c.mu.Lock()
		c.insert(h, data)
		c.mu.Unlock()
	}
	return data, ok
}

// Has checks the cache first, then the backing store.
func (c *CachedStore) Has(h hash.Hash) bool {
	c.mu.Lock()
	_, ok := c.entries[h]
	c.mu.Unlock()
	if ok {
		return true
	}
	return c.backing.Has(h)
}

// Stats reports the backing store's accounting.
func (c *CachedStore) Stats() Stats { return c.backing.Stats() }

// Close releases the backing store's resources (a no-op for in-memory
// backings), so Release reaches through the cache layer.
func (c *CachedStore) Close() error { return Release(c.backing) }

// Purge evicts every cached node that live reports dead. CachedStore.Sweep
// already purges the cache it is called on, but client-side caches layered
// over a shared backing store (the Figure 21 deployment) are not on the
// sweep path; a post-GC hook (version.Repo.OnGC) calls Purge on them so a
// reclaimed node cannot be resurrected from a stale client cache.
func (c *CachedStore) Purge(live LiveFunc) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for h := range c.entries {
		if !live(h) {
			c.evict(h)
			n++
		}
	}
	return n
}

// CacheStats returns local cache hits and misses.
func (c *CachedStore) CacheStats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// insert adds h→data to the cache and evicts LRU entries past the byte
// bound. Caller holds c.mu.
func (c *CachedStore) insert(h hash.Hash, data []byte) {
	if c.maxB <= 0 {
		return
	}
	if el, ok := c.entries[h]; ok {
		c.order.MoveToFront(el)
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	el := c.order.PushFront(&cacheEntry{h: h, data: cp})
	c.entries[h] = el
	c.bytes += int64(len(cp))
	for c.bytes > c.maxB && c.order.Len() > 1 {
		back := c.order.Back()
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.h)
		c.bytes -= int64(len(ent.data))
	}
}
