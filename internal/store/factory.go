package store

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Backend names accepted by Open and the -store flag of cmd/siribench.
const (
	BackendMem     = "mem"     // single-lock in-memory map (MemStore)
	BackendSharded = "sharded" // N-way sharded in-memory map (ShardedStore)
	BackendDisk    = "disk"    // append-only segment files (DiskStore)
)

// Backends lists the selectable backend names.
func Backends() []string { return []string{BackendMem, BackendSharded, BackendDisk} }

// Config selects and tunes a store backend. The zero value opens a plain
// MemStore, matching the repository's historical default.
type Config struct {
	// Backend is one of Backends(); empty means "mem".
	Backend string
	// Shards is the shard count for the sharded backend (0 = DefaultShards).
	Shards int
	// Dir is the base directory for the disk backend. Every Open call
	// creates a fresh unique subdirectory under it, so concurrent
	// experiments never collide; empty means the OS temp directory. To
	// reopen an existing store at an exact path, use OpenDiskStore.
	Dir string
	// KeepFiles preserves a disk backend's segment directory on Close.
	// By default Open-created stores are ephemeral benchmark fixtures and
	// remove their files when released.
	KeepFiles bool
	// SegmentBytes overrides the disk backend's segment roll size.
	SegmentBytes int64
	// CacheBytes, when positive, layers a CachedStore LRU of that many
	// bytes over the selected backend.
	CacheBytes int64
}

// Open constructs the configured backend, optionally wrapped in an LRU
// cache. Callers should Release the returned store when done; for the disk
// backend that closes the segment files (and removes them unless
// KeepFiles).
func Open(cfg Config) (Store, error) {
	var base Store
	switch cfg.Backend {
	case "", BackendMem:
		base = NewMemStore()
	case BackendSharded:
		base = NewShardedStore(cfg.Shards)
	case BackendDisk:
		dir := cfg.Dir
		if dir == "" {
			dir = os.TempDir()
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sub, err := os.MkdirTemp(dir, "sirstore-")
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		ds, err := OpenDiskStore(sub, DiskOptions{SegmentBytes: cfg.SegmentBytes})
		if err != nil {
			os.RemoveAll(sub) // don't orphan the fresh subdirectory
			return nil, err
		}
		ds.removeOnClose = !cfg.KeepFiles
		base = ds
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want %s)", cfg.Backend, strings.Join(Backends(), ", "))
	}
	if cfg.CacheBytes > 0 {
		return NewCachedStore(base, cfg.CacheBytes), nil
	}
	return base, nil
}

// Release closes s if it holds OS resources (DiskStore, or a CachedStore
// over one); purely in-memory stores are a no-op. Benchmarks call it after
// every store they open so disk-backed runs do not accumulate file handles.
func Release(s Store) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
