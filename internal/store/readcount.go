package store

import (
	"sync/atomic"

	"repro/internal/hash"
)

// ReadCounter is the store-stat surface behind every index-honesty
// assertion in the repository: a monotone count of node fetches (Get
// calls) the store has served. The conformance suites (indextest's
// range-pruning case, plantest's planner-honesty battery) and the bench
// experiments all measure "how many nodes did this operation touch"
// through it, so production measurements and test assertions share one
// counter definition instead of each test package growing its own.
type ReadCounter interface {
	// NodeReads returns the number of Get calls served so far.
	NodeReads() int64
}

// NodeReads reports s's read count when the store (or a wrapper) exposes
// one.
func NodeReads(s Store) (int64, bool) {
	if rc, ok := s.(ReadCounter); ok {
		return rc.NodeReads(), true
	}
	return 0, false
}

// CountingStore wraps an inner store and counts node reads — the
// instrumentation layer the honesty assertions wrap any backend in.
// Counting only Get keeps the accounting aligned with what the paper's
// node-access analysis measures: one fetch per node visit on a cold path.
//
// Every optional capability of the inner store (batch puts, sweep,
// metadata, flush, write barrier) is forwarded through the package's
// helper functions, so wrapping does not strip a backend of behavior the
// version/GC layers probe for — a CountingStore over a DiskStore still
// persists branch heads and still runs concurrent GC.
type CountingStore struct {
	inner Store
	reads atomic.Int64
}

// NewCountingStore wraps inner in a read counter starting at zero.
func NewCountingStore(inner Store) *CountingStore {
	return &CountingStore{inner: inner}
}

// NodeReads returns the number of Get calls served since construction.
func (c *CountingStore) NodeReads() int64 { return c.reads.Load() }

// Unwrap returns the wrapped store.
func (c *CountingStore) Unwrap() Store { return c.inner }

// Get counts the fetch and forwards it.
func (c *CountingStore) Get(h hash.Hash) ([]byte, bool) {
	c.reads.Add(1)
	return c.inner.Get(h)
}

// Put forwards to the inner store.
func (c *CountingStore) Put(data []byte) hash.Hash { return c.inner.Put(data) }

// Has forwards to the inner store without counting: existence probes do
// not transfer node payloads.
func (c *CountingStore) Has(h hash.Hash) bool { return c.inner.Has(h) }

// Stats forwards the inner store's accounting.
func (c *CountingStore) Stats() Stats { return c.inner.Stats() }

// PutBatch forwards through the batch helper, keeping the inner store's
// fast path when it has one.
func (c *CountingStore) PutBatch(items [][]byte) []hash.Hash {
	return PutBatch(c.inner, items)
}

// PutBatchHashed forwards through the batch helper.
func (c *CountingStore) PutBatchHashed(hashes []hash.Hash, items [][]byte) {
	PutBatchHashed(c.inner, hashes, items)
}

// Delete forwards through the sweep helper (ErrNoSweeper when the inner
// store lacks the capability).
func (c *CountingStore) Delete(h hash.Hash) (bool, error) { return Delete(c.inner, h) }

// Sweep forwards through the sweep helper.
func (c *CountingStore) Sweep(live LiveFunc) (SweepStats, error) { return Sweep(c.inner, live) }

// SetMeta forwards through the metadata helper.
func (c *CountingStore) SetMeta(key string, value []byte) error { return SetMeta(c.inner, key, value) }

// GetMeta forwards through the metadata helper.
func (c *CountingStore) GetMeta(key string) ([]byte, bool, error) { return GetMeta(c.inner, key) }

// Flush forwards through the flush helper.
func (c *CountingStore) Flush() error { return Flush(c.inner) }

// ArmBarrier forwards the write-barrier capability.
func (c *CountingStore) ArmBarrier() (*Barrier, error) { return ArmBarrier(c.inner) }

// DisarmBarrier forwards the write-barrier capability.
func (c *CountingStore) DisarmBarrier() { DisarmBarrier(c.inner) }

// Close releases the inner store, so store.Release on the wrapper reaches
// a disk backend's file handles.
func (c *CountingStore) Close() error { return Release(c.inner) }
