package postree

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Ablation selects one of the paper's §5.5 breakdown modes, which disable a
// SIRI property to measure its contribution. Production use is AblationNone.
type Ablation int

// Ablation modes.
const (
	// AblationNone is the full POS-Tree.
	AblationNone Ablation = iota
	// AblationNoStructuralInvariance replaces pattern-aware splitting with
	// local fixed-size splits (split at half the maximum node size when a
	// node overflows, never re-chunk neighbours). The resulting structure
	// depends on the order of updates, exactly like a B+-tree (§5.5.1).
	AblationNoStructuralInvariance
	// AblationNoRecursiveIdentity forcibly copies every node on each
	// batch by salting node encodings with a version counter, so no page
	// is ever shared between versions (§5.5.2).
	AblationNoRecursiveIdentity
)

// Config parameterizes a POS-Tree.
type Config struct {
	// Chunk controls boundary detection (node size distribution).
	Chunk chunk.Config
	// Ablation optionally disables a SIRI property (see Ablation).
	Ablation Ablation
	// WindowInternal switches internal-layer boundary detection from the
	// POS-Tree child-hash pattern to a Noms/Prolly-Tree sliding-window
	// rolling hash over the serialized child entries — the costlier write
	// path the paper contrasts in §5.6.2. Used by internal/prolly.
	WindowInternal bool
	// DisplayName overrides the Name() reported for this tree; used by
	// internal/prolly. Empty means "POS-Tree".
	DisplayName string
}

// DefaultConfig targets ~1KB nodes, the paper's setting.
func DefaultConfig() Config { return Config{Chunk: chunk.DefaultConfig()} }

// ConfigForNodeSize targets the given expected node size in bytes.
func ConfigForNodeSize(n int) Config { return Config{Chunk: chunk.ConfigForNodeSize(n)} }

// Tree is one immutable version of a POS-Tree. The zero value is not usable;
// use New, Build or Load. Mutating methods return a new Tree sharing
// unmodified nodes with the receiver.
type Tree struct {
	s      store.Store
	cfg    Config
	root   hash.Hash
	height int // levels including the leaf level; 0 for the empty tree
	salt   uint64
	// stage, when non-nil, is the active batch's staged writer: saves are
	// buffered there and loadRaw serves staged nodes back (read-your-writes)
	// until the public mutation entry point flushes and clears it.
	stage *core.StagedWriter
	// cache holds decoded internal nodes keyed by digest, shared by every
	// version derived from the same New/Build/Load call; lcache does the
	// same for decoded leaves, so repeated Gets of warm leaves skip the
	// per-lookup decode allocation entirely.
	cache  *core.NodeCache[*internalNode]
	lcache *core.NodeCache[*leafNode]
}

// Compile-time interface checks.
var (
	_ core.Index       = (*Tree)(nil)
	_ core.NodeWalker  = (*Tree)(nil)
	_ core.CachePurger = (*Tree)(nil)
)

// New returns an empty tree over s.
func New(s store.Store, cfg Config) *Tree {
	return &Tree{s: s, cfg: cfg,
		cache:  core.NewNodeCache[*internalNode](0),
		lcache: core.NewNodeCache[*leafNode](0)}
}

// Load returns a tree view of an existing root in s. The caller must supply
// the Config the tree was built with and the tree height recorded at build
// time (see Height).
func Load(s store.Store, cfg Config, root hash.Hash, height int) *Tree {
	return &Tree{s: s, cfg: cfg, root: root, height: height,
		cache:  core.NewNodeCache[*internalNode](0),
		lcache: core.NewNodeCache[*leafNode](0)}
}

// Build bulk-loads entries bottom-up (the paper's batched building path:
// each node is created and hashed exactly once).
func Build(s store.Store, cfg Config, entries []core.Entry) (*Tree, error) {
	if err := core.ValidateEntries(entries); err != nil {
		return nil, err
	}
	t := New(s, cfg).withStage()
	nt, err := t.rebuild(core.SortEntries(entries))
	if err != nil {
		return nil, err
	}
	return nt.commitStage(), nil
}

// Name implements core.Index.
func (t *Tree) Name() string {
	if t.cfg.DisplayName != "" {
		return t.cfg.DisplayName
	}
	return "POS-Tree"
}

// Store implements core.Index.
func (t *Tree) Store() store.Store { return t.s }

// RootHash implements core.Index.
func (t *Tree) RootHash() hash.Hash { return t.root }

// Height returns the number of levels (leaf level included); 0 when empty.
func (t *Tree) Height() int { return t.height }

// Config returns the tree's parameters.
func (t *Tree) Config() Config { return t.cfg }

// derived returns an empty tree value carrying the receiver's store,
// config, salt, active stage and cache — the base every edit builds its
// result on.
func (t *Tree) derived() *Tree {
	return &Tree{s: t.s, cfg: t.cfg, salt: t.salt, stage: t.stage, cache: t.cache, lcache: t.lcache}
}

// withStage returns a copy of t with a fresh staged writer attached, so
// every save inside the mutation is buffered for one commit-time flush.
func (t *Tree) withStage() *Tree {
	if t.stage != nil {
		return t
	}
	cp := *t
	cp.stage = core.NewStagedWriter(t.s)
	return &cp
}

// commitStage flushes the staged batch to the store and detaches the
// writer (returning it to the writer pool), making the receiver a fully
// committed version.
func (t *Tree) commitStage() *Tree {
	if t.stage != nil {
		t.stage.Flush()
		t.stage.Release()
		t.stage = nil
	}
	return t
}

// loadRaw fetches a node encoding, serving the active batch's unflushed
// writes first so editors can walk nodes they just produced.
func (t *Tree) loadRaw(h hash.Hash) ([]byte, error) {
	if t.stage != nil {
		if data, ok := t.stage.Lookup(h); ok {
			return t.unsalt(data)
		}
	}
	data, ok := t.s.Get(h)
	if !ok {
		return nil, fmt.Errorf("%w: postree node %v", core.ErrMissingNode, h)
	}
	return t.unsalt(data)
}

// saveLeaf / saveInternal encode, salt (ablation only) and store a node —
// into the active batch's staged writer when one is attached, directly to
// the store otherwise. Both encode into pooled scratch writers (the staged
// writer and every store backend copy on insert), so single-node saves
// allocate no encoding buffer.
func (t *Tree) saveLeaf(n *leafNode) hash.Hash {
	if t.stage != nil {
		return t.stage.PutFunc(func(enc *codec.Writer) { t.encodeLeafInto(enc, n.entries) })
	}
	w := codec.GetWriter()
	t.encodeLeafInto(w, n.entries)
	h := t.s.Put(w.Bytes())
	w.Release()
	return h
}

func (t *Tree) saveInternal(n *internalNode) hash.Hash {
	if t.stage != nil {
		return t.stage.PutFunc(func(enc *codec.Writer) { t.encodeInternalInto(enc, n.refs) })
	}
	w := codec.GetWriter()
	t.encodeInternalInto(w, n.refs)
	h := t.s.Put(w.Bytes())
	w.Release()
	return h
}

// encodeLeafInto / encodeInternalInto append a node's stored form: the
// version salt under AblationNoRecursiveIdentity, then the canonical
// encoding.
func (t *Tree) encodeLeafInto(w *codec.Writer, entries []core.Entry) {
	t.saltInto(w)
	encodeLeafTo(w, entries)
}

func (t *Tree) encodeInternalInto(w *codec.Writer, refs []ref) {
	t.saltInto(w)
	encodeInternalTo(w, refs)
}

// saltInto prepends the version salt under AblationNoRecursiveIdentity so
// that every version's nodes are distinct pages; otherwise it writes
// nothing.
func (t *Tree) saltInto(w *codec.Writer) {
	if t.cfg.Ablation != AblationNoRecursiveIdentity {
		return
	}
	for i := 0; i < 8; i++ {
		w.Byte(byte(t.salt >> (8 * i)))
	}
}

// unsalt strips the version salt prefix under AblationNoRecursiveIdentity.
func (t *Tree) unsalt(data []byte) ([]byte, error) {
	if t.cfg.Ablation != AblationNoRecursiveIdentity {
		return data, nil
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("postree: salted node too short")
	}
	return data[8:], nil
}

func (t *Tree) loadLeaf(h hash.Hash) (*leafNode, error) {
	// Decoded leaves are cached by digest like internal nodes; edit paths
	// treat a loaded leaf's entries as read-only, so sharing is safe, and a
	// Get that hits the cache performs no allocation.
	return t.lcache.Load(h, func() ([]byte, error) { return t.loadRaw(h) }, decodeLeaf)
}

func (t *Tree) loadInternal(h hash.Hash) (*internalNode, error) {
	// Decoded internal nodes are cached by digest and shared across
	// versions; edit paths never mutate a loaded node's refs slice.
	return t.cache.Load(h, func() ([]byte, error) { return t.loadRaw(h) }, decodeInternal)
}

// searchRefs returns the index of the child to descend into for key: the
// first ref whose split key is ≥ key. A return of len(refs) means the key is
// greater than every key in the subtree.
func searchRefs(refs []ref, key []byte) int {
	return sort.Search(len(refs), func(i int) bool {
		return bytes.Compare(refs[i].splitKey, key) >= 0
	})
}

// searchEntries binary-searches a leaf's sorted entries.
func searchEntries(entries []core.Entry, key []byte) (int, bool) {
	i := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].Key, key) >= 0
	})
	if i < len(entries) && bytes.Equal(entries[i].Key, key) {
		return i, true
	}
	return i, false
}

// Get implements core.Index: B+-tree style descent by split keys, then
// binary search in the leaf (the paper's lookup procedure).
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, core.ErrEmptyKey
	}
	v, _, err := t.lookup(key)
	if err != nil {
		return nil, false, err
	}
	if v == nil {
		return nil, false, nil
	}
	return v.Value, true, nil
}

// lookup descends to the entry for key, returning nil when absent, along
// with the number of nodes visited.
func (t *Tree) lookup(key []byte) (*core.Entry, int, error) {
	if t.root.IsNull() {
		return nil, 0, nil
	}
	h := t.root
	visited := 0
	for level := t.height; level > 1; level-- {
		n, err := t.loadInternal(h)
		if err != nil {
			return nil, visited, err
		}
		visited++
		i := searchRefs(n.refs, key)
		if i == len(n.refs) {
			return nil, visited, nil // beyond the maximum key
		}
		h = n.refs[i].h
	}
	leaf, err := t.loadLeaf(h)
	if err != nil {
		return nil, visited, err
	}
	visited++
	if i, found := searchEntries(leaf.entries, key); found {
		return &leaf.entries[i], visited, nil
	}
	return nil, visited, nil
}

// PathLength implements core.Index.
func (t *Tree) PathLength(key []byte) (int, error) {
	if len(key) == 0 {
		return 0, core.ErrEmptyKey
	}
	_, visited, err := t.lookup(key)
	return visited, err
}

// Count implements core.Index.
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Iterate(func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Iterate implements core.Index, visiting entries in key order.
func (t *Tree) Iterate(fn func(key, value []byte) bool) error {
	if t.root.IsNull() {
		return nil
	}
	_, err := t.iterNode(t.root, t.height, fn)
	return err
}

func (t *Tree) iterNode(h hash.Hash, level int, fn func(key, value []byte) bool) (bool, error) {
	if level <= 1 {
		leaf, err := t.loadLeaf(h)
		if err != nil {
			return false, err
		}
		for _, e := range leaf.entries {
			if !fn(e.Key, e.Value) {
				return false, nil
			}
		}
		return true, nil
	}
	n, err := t.loadInternal(h)
	if err != nil {
		return false, err
	}
	for _, r := range n.refs {
		ok, err := t.iterNode(r.h, level-1, fn)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

// PurgeCache implements core.CachePurger: it evicts decoded internal nodes
// and leaves a GC pass swept from the family-shared caches.
func (t *Tree) PurgeCache(live func(hash.Hash) bool) int {
	dead := func(h hash.Hash) bool { return !live(h) }
	return t.cache.EvictIf(dead) + t.lcache.EvictIf(dead)
}

// Refs implements core.NodeWalker.
func (t *Tree) Refs(data []byte) ([]hash.Hash, error) {
	data, err := t.unsalt(data)
	if err != nil {
		return nil, err
	}
	kind, err := nodeKind(data)
	if err != nil {
		return nil, err
	}
	if kind == tagLeaf {
		return nil, nil
	}
	n, err := decodeInternal(data)
	if err != nil {
		return nil, err
	}
	out := make([]hash.Hash, len(n.refs))
	for i, r := range n.refs {
		out[i] = r.h
	}
	return out, nil
}

// ablationSalt hands out globally unique version salts so that, with the
// Recursively Identical property disabled, no two versions anywhere share a
// single page — the paper's "number of intersections, which is zero".
var ablationSalt atomic.Uint64

// rebuild chunks the full sorted entry run bottom-up into a fresh tree.
func (t *Tree) rebuild(entries []core.Entry) (*Tree, error) {
	nt := t.derived()
	if t.cfg.Ablation == AblationNoRecursiveIdentity {
		nt.salt = ablationSalt.Add(1)
	}
	if len(entries) == 0 {
		return nt, nil
	}
	refs := nt.buildLeaves(entries)
	height := 1
	for len(refs) > 1 {
		refs = nt.buildInternalLevel(refs)
		height++
	}
	nt.root = refs[0].h
	nt.height = height
	return nt, nil
}

// buildLeaves chunks entries into leaf nodes and returns their refs. The
// build is the two-phase half of the parallel commit pipeline: boundary
// detection rolls sequentially (chunking is inherently ordered), then the
// whole level's encode+hash work — the dominant write cost of §4 — fans
// across the staged writer's workers in one PutAll.
func (t *Tree) buildLeaves(entries []core.Entry) []ref {
	if t.cfg.Ablation == AblationNoStructuralInvariance {
		// §5.5.1: no pattern-aware partitioning — fixed-size splits.
		return t.splitLeafFixed(entries)
	}
	var spans [][]core.Entry
	ck := chunk.NewChunker(t.cfg.Chunk)
	start := 0
	for i, e := range entries {
		if ck.ItemKV(e.Key, e.Value) {
			spans = append(spans, entries[start:i+1])
			start = i + 1
		}
	}
	if start < len(entries) {
		spans = append(spans, entries[start:])
	}
	if t.stage == nil {
		refs := make([]ref, len(spans))
		for i, sp := range spans {
			refs[i] = t.flushLeaf(sp)
		}
		return refs
	}
	hs := t.stage.PutAll(len(spans), func(i int, enc *codec.Writer) {
		t.encodeLeafInto(enc, spans[i])
	})
	refs := make([]ref, len(spans))
	for i, sp := range spans {
		refs[i] = ref{splitKey: sp[len(sp)-1].Key, h: hs[i]}
	}
	return refs
}

func (t *Tree) flushLeaf(entries []core.Entry) ref {
	n := &leafNode{entries: entries}
	return ref{splitKey: entries[len(entries)-1].Key, h: t.saveLeaf(n)}
}

// refChunker abstracts internal-layer boundary detection so POS-Tree (child
// hash pattern) and Prolly Tree (sliding-window over serialized entries) can
// share the build and edit machinery.
type refChunker interface {
	// Child feeds one child ref and reports whether an internal node
	// boundary falls after it.
	Child(r ref) bool
}

type hashRefChunker struct{ c *chunk.InternalChunker }

func (h hashRefChunker) Child(r ref) bool { return h.c.Child(r.h) }

type windowRefChunker struct {
	c *chunk.WindowChunker
	// buf is the serialization scratch, reused across children so the
	// window re-roll costs no allocation per ref.
	buf []byte
}

func (w *windowRefChunker) Child(r ref) bool {
	// Re-roll the serialized entry through the window: the repeated hash
	// computation the paper credits for Noms' slower writes.
	w.buf = append(w.buf[:0], r.splitKey...)
	w.buf = append(w.buf, r.h[:]...)
	return w.c.Child(w.buf)
}

// newRefChunker returns the configured internal-layer chunker.
func (t *Tree) newRefChunker() refChunker {
	if t.cfg.WindowInternal {
		return &windowRefChunker{c: chunk.NewWindowChunker(t.cfg.Chunk)}
	}
	return hashRefChunker{c: chunk.NewInternalChunker(t.cfg.Chunk)}
}

// buildInternalLevel chunks child refs into internal nodes and returns the
// new level's refs. Like buildLeaves it splits into a sequential boundary
// phase (for POS-Tree a cheap pattern test on the already-computed child
// digests; for Prolly the sliding-window re-roll of §5.6.2) and a parallel
// encode+hash phase over the finished spans — children were hashed by the
// level below, so every span is ready at once.
func (t *Tree) buildInternalLevel(children []ref) []ref {
	if t.cfg.Ablation == AblationNoStructuralInvariance {
		return t.splitInternalFixed(children)
	}
	var spans [][]ref
	ck := t.newRefChunker()
	start := 0
	for i, c := range children {
		if ck.Child(c) {
			spans = append(spans, children[start:i+1])
			start = i + 1
		}
	}
	if start < len(children) {
		spans = append(spans, children[start:])
	}
	if t.stage == nil {
		refs := make([]ref, len(spans))
		for i, sp := range spans {
			refs[i] = t.flushInternal(sp)
		}
		return refs
	}
	hs := t.stage.PutAll(len(spans), func(i int, enc *codec.Writer) {
		t.encodeInternalInto(enc, spans[i])
	})
	refs := make([]ref, len(spans))
	for i, sp := range spans {
		refs[i] = ref{splitKey: sp[len(sp)-1].splitKey, h: hs[i]}
	}
	return refs
}

func (t *Tree) flushInternal(children []ref) ref {
	n := &internalNode{refs: children}
	return ref{splitKey: children[len(children)-1].splitKey, h: t.saveInternal(n)}
}
