package postree

import (
	"bytes"
	"sort"

	"repro/internal/core"
	"repro/internal/hash"
)

// Compile-time capability check.
var _ core.Ranger = (*Tree)(nil)

// Range implements core.Ranger: a B+-tree style bounded scan. The descent
// uses each internal node's split keys to skip every child subtree whose
// keys are wholly below lo, then walks leaves in order until the first key
// ≥ hi, so a narrow range reads the lo boundary path plus the covered
// leaves — O(log N + |result|) nodes — instead of the whole tree. Internal
// nodes come from the shared decoded-node cache, so repeated scans resolve
// the upper levels without touching the store.
func (t *Tree) Range(lo, hi []byte, fn func(key, value []byte) bool) error {
	if t.root.IsNull() || core.EmptyRange(lo, hi) {
		return nil
	}
	_, err := t.rangeNode(t.root, t.height, lo, hi, fn)
	return err
}

// rangeNode scans the subtree at h; false means the scan is over (fn
// stopped it or hi was reached). The walk is the twin of mvmbt's
// rangeNode (the packages keep separate node types by design); a fix to
// the bound logic here must land there too.
func (t *Tree) rangeNode(h hash.Hash, level int, lo, hi []byte, fn func(key, value []byte) bool) (bool, error) {
	if level <= 1 {
		leaf, err := t.loadLeaf(h)
		if err != nil {
			return false, err
		}
		i := 0
		if lo != nil {
			i = sort.Search(len(leaf.entries), func(i int) bool {
				return bytes.Compare(leaf.entries[i].Key, lo) >= 0
			})
		}
		for ; i < len(leaf.entries); i++ {
			e := leaf.entries[i]
			if hi != nil && bytes.Compare(e.Key, hi) >= 0 {
				return false, nil
			}
			if !fn(e.Key, e.Value) {
				return false, nil
			}
		}
		return true, nil
	}
	n, err := t.loadInternal(h)
	if err != nil {
		return false, err
	}
	start := 0
	if lo != nil {
		// Children with split key < lo hold only keys < lo: prune them.
		start = searchRefs(n.refs, lo)
	}
	for i := start; i < len(n.refs); i++ {
		if hi != nil && i > start && bytes.Compare(n.refs[i-1].splitKey, hi) >= 0 {
			// Every key under refs[i] exceeds the previous split key ≥ hi.
			return false, nil
		}
		ok, err := t.rangeNode(n.refs[i].h, level-1, lo, hi, fn)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}
