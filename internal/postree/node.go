// Package postree implements the Pattern-Oriented-Split Tree (§3.4.3 of the
// paper): a probabilistically balanced search tree whose node boundaries are
// chosen by content-defined chunking, modeled on Forkbase's POS-Tree.
//
// The leaf layer is the ordered run of entries, partitioned into nodes by a
// rolling-hash boundary pattern over the serialized entries. Each internal
// layer is the ordered run of (split key, child hash) items, partitioned by
// testing the child hashes directly against the boundary pattern — reusing
// the already-computed cryptographic hashes instead of re-rolling a window,
// which is the design difference that makes POS-Tree writes cheaper than
// Prolly Trees (§5.6.2).
//
// Because boundaries are functions of content alone, the tree is
// structurally invariant: the same record set produces byte-identical nodes
// regardless of the order or batching of updates. Updates are copy-on-write
// and re-chunk only from the first dirty node until the boundary sequence
// resynchronizes with the old version, so cost is proportional to the change
// set, not the index size.
package postree

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
)

// Node kind tags in the canonical encoding.
const (
	tagLeaf     = 1
	tagInternal = 2
)

// ref points at a child node: the split key is the maximum key stored in the
// child's subtree, so an internal node's items mirror a B+-tree separator
// run (the paper's "sequence of split keys and cryptographic hashes").
type ref struct {
	splitKey []byte
	h        hash.Hash
}

// leafNode is a chunk of the ordered entry run.
type leafNode struct {
	entries []core.Entry
}

// internalNode is a chunk of the ordered child-ref run.
type internalNode struct {
	refs []ref
}

// entryBytes returns the serialized form of one entry — exactly the bytes
// fed to the rolling-hash chunker, and the bytes used inside the leaf
// encoding, so chunk decisions and stored content agree.
func entryBytes(e core.Entry) []byte {
	w := codec.NewWriter(len(e.Key) + len(e.Value) + 8)
	w.LenBytes(e.Key)
	w.LenBytes(e.Value)
	return w.Bytes()
}

// encodeLeafTo appends a leaf node's canonical encoding for the given entry
// run. Taking the run (rather than a *leafNode) lets the parallel level
// builder encode straight from its span table with no per-node wrapper
// allocation.
func encodeLeafTo(w *codec.Writer, entries []core.Entry) {
	w.Byte(tagLeaf)
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.LenBytes(e.Key)
		w.LenBytes(e.Value)
	}
}

// encodeInternalTo appends an internal node's canonical encoding for the
// given child-ref run.
func encodeInternalTo(w *codec.Writer, refs []ref) {
	w.Byte(tagInternal)
	w.Uvarint(uint64(len(refs)))
	for _, r := range refs {
		w.LenBytes(r.splitKey)
		w.Bytes32(r.h[:])
	}
}

func encodeLeaf(n *leafNode) []byte {
	w := codec.NewWriter(64)
	encodeLeafTo(w, n.entries)
	return w.Bytes()
}

func encodeInternal(n *internalNode) []byte {
	w := codec.NewWriter(16 + len(n.refs)*(hash.Size+16))
	encodeInternalTo(w, n.refs)
	return w.Bytes()
}

func decodeLeaf(data []byte) (*leafNode, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil || tag != tagLeaf {
		return nil, fmt.Errorf("postree: not a leaf node (tag %d, %v)", tag, err)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("postree: leaf count: %w", err)
	}
	leaf := &leafNode{entries: make([]core.Entry, 0, n)}
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("postree: leaf key %d: %w", i, err)
		}
		v, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("postree: leaf value %d: %w", i, err)
		}
		leaf.entries = append(leaf.entries, core.Entry{Key: k, Value: v})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return leaf, nil
}

func decodeInternal(data []byte) (*internalNode, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil || tag != tagInternal {
		return nil, fmt.Errorf("postree: not an internal node (tag %d, %v)", tag, err)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("postree: ref count: %w", err)
	}
	node := &internalNode{refs: make([]ref, 0, n)}
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytes()
		if err != nil {
			return nil, fmt.Errorf("postree: ref key %d: %w", i, err)
		}
		hb, err := r.Bytes32()
		if err != nil {
			return nil, fmt.Errorf("postree: ref hash %d: %w", i, err)
		}
		node.refs = append(node.refs, ref{splitKey: k, h: hash.MustFromBytes(hb)})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return node, nil
}

// nodeKind returns the tag of an encoded node without full decoding.
func nodeKind(data []byte) (byte, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("postree: empty node encoding")
	}
	if data[0] != tagLeaf && data[0] != tagInternal {
		return 0, fmt.Errorf("postree: unknown node tag %d", data[0])
	}
	return data[0], nil
}
