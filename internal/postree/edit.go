package postree

import (
	"bytes"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/core"
)

// editOp is one mutation in a batch: an upsert or a delete.
type editOp struct {
	key   []byte
	value []byte
	del   bool
}

// makeOps normalizes puts and dels into one key-sorted op stream. Keys are
// assumed unique across the combined inputs (PutBatch dedups; Delete passes
// a single key).
func makeOps(puts []core.Entry, dels [][]byte) []editOp {
	ops := make([]editOp, 0, len(puts)+len(dels))
	for _, e := range puts {
		v := e.Value
		if v == nil {
			v = []byte{}
		}
		ops = append(ops, editOp{key: e.Key, value: v})
	}
	for _, k := range dels {
		ops = append(ops, editOp{key: k, del: true})
	}
	// Insertion sort by key: inputs are individually sorted, so this is
	// nearly linear; batches are small relative to the tree.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && bytes.Compare(ops[j-1].key, ops[j].key) > 0; j-- {
			ops[j-1], ops[j] = ops[j], ops[j-1]
		}
	}
	return ops
}

// mergeEntries applies a sorted op run to a sorted entry run.
func mergeEntries(old []core.Entry, ops []editOp) []core.Entry {
	out := make([]core.Entry, 0, len(old)+len(ops))
	i, j := 0, 0
	for i < len(old) || j < len(ops) {
		switch {
		case j >= len(ops) || (i < len(old) && bytes.Compare(old[i].Key, ops[j].key) < 0):
			out = append(out, old[i])
			i++
		case i >= len(old) || bytes.Compare(old[i].Key, ops[j].key) > 0:
			if !ops[j].del {
				out = append(out, core.Entry{Key: ops[j].key, Value: ops[j].value})
			}
			j++
		default: // same key: op wins
			if !ops[j].del {
				out = append(out, core.Entry{Key: ops[j].key, Value: ops[j].value})
			}
			i++
			j++
		}
	}
	return out
}

// PutBatch implements core.Index. The canonical path re-chunks from the
// first dirty node and resynchronizes with the old boundary sequence, so the
// resulting tree is byte-identical to a from-scratch build of the same
// contents (structural invariance), while touching only O(δ·log N) nodes.
func (t *Tree) PutBatch(entries []core.Entry) (core.Index, error) {
	if err := core.ValidateEntries(entries); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	nt, err := t.withStage().applyOps(makeOps(core.SortEntries(entries), nil))
	if err != nil {
		return nil, err
	}
	return nt.commitStage(), nil
}

// Put implements core.Index.
func (t *Tree) Put(key, value []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	return t.PutBatch([]core.Entry{{Key: key, Value: value}})
}

// Delete implements core.Index.
func (t *Tree) Delete(key []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	if _, ok, err := t.Get(key); err != nil {
		return nil, err
	} else if !ok {
		return t, nil
	}
	nt, err := t.withStage().applyOps(makeOps(nil, [][]byte{key}))
	if err != nil {
		return nil, err
	}
	return nt.commitStage(), nil
}

// applyOps routes a normalized op batch to the configured edit strategy.
func (t *Tree) applyOps(ops []editOp) (*Tree, error) {
	switch t.cfg.Ablation {
	case AblationNoRecursiveIdentity:
		// §5.5.2: copy the whole tree per update. Collect everything,
		// apply, rebuild with a fresh version salt so no page is shared.
		var all []core.Entry
		if err := t.Iterate(func(k, v []byte) bool {
			all = append(all, core.Entry{Key: k, Value: v})
			return true
		}); err != nil {
			return nil, err
		}
		return t.rebuild(mergeEntries(all, ops))
	case AblationNoStructuralInvariance:
		return t.localEdit(ops)
	default:
		return t.chunkEdit(ops)
	}
}

// ---- cursor over the nodes of one level ----

type cursorFrame struct {
	n   *internalNode
	idx int
}

// cursor iterates the nodes of a fixed level in item order. frames hold the
// internal nodes from the root down to the target level's parent.
type cursor struct {
	t      *Tree
	level  int
	frames []cursorFrame
	cur    ref
	valid  bool
}

// newCursor positions a cursor at the level-`level` node whose key range
// contains key (clamping to the last node for keys beyond the maximum).
func newCursor(t *Tree, level int, key []byte) (*cursor, error) {
	c := &cursor{t: t, level: level}
	if t.root.IsNull() {
		return c, nil
	}
	if level == t.height {
		c.cur = ref{h: t.root}
		c.valid = true
		return c, nil
	}
	h := t.root
	for lvl := t.height; lvl > level; lvl-- {
		n, err := t.loadInternal(h)
		if err != nil {
			return nil, err
		}
		i := searchRefs(n.refs, key)
		if i == len(n.refs) {
			i = len(n.refs) - 1
		}
		c.frames = append(c.frames, cursorFrame{n: n, idx: i})
		h = n.refs[i].h
	}
	last := &c.frames[len(c.frames)-1]
	c.cur = last.n.refs[last.idx]
	c.valid = true
	return c, nil
}

// next advances to the following node at this level, reporting whether one
// exists.
func (c *cursor) next() (bool, error) {
	if !c.valid || len(c.frames) == 0 {
		c.valid = false
		return false, nil
	}
	i := len(c.frames) - 1
	for i >= 0 {
		c.frames[i].idx++
		if c.frames[i].idx < len(c.frames[i].n.refs) {
			break
		}
		i--
	}
	if i < 0 {
		c.valid = false
		return false, nil
	}
	c.frames = c.frames[:i+1]
	// Descend leftmost back down to the target level.
	h := c.frames[i].n.refs[c.frames[i].idx].h
	lvl := c.t.height - i - 1 // level of the node at h
	for lvl > c.level {
		n, err := c.t.loadInternal(h)
		if err != nil {
			return false, err
		}
		c.frames = append(c.frames, cursorFrame{n: n, idx: 0})
		h = n.refs[0].h
		lvl--
	}
	last := &c.frames[len(c.frames)-1]
	c.cur = last.n.refs[last.idx]
	return true, nil
}

// ---- canonical chunk-and-resync editor ----

// chunkEdit applies ops with content-defined re-chunking: the affected leaf
// span is merged and re-chunked from the first dirty node; chunking
// continues past the edit until a produced boundary coincides with an old
// node boundary, after which the old suffix is reused. The replacement span
// then propagates up level by level with the same algorithm over child refs.
func (t *Tree) chunkEdit(ops []editOp) (*Tree, error) {
	if len(ops) == 0 {
		return t, nil
	}
	if t.root.IsNull() {
		var puts []core.Entry
		for _, op := range ops {
			if !op.del {
				puts = append(puts, core.Entry{Key: op.key, Value: op.value})
			}
		}
		return t.rebuild(puts)
	}
	consumed, newRefs, err := t.editLeaves(ops)
	if err != nil {
		return nil, err
	}
	for level := 2; level <= t.height; level++ {
		consumed, newRefs, err = t.editInternal(level, consumed, newRefs)
		if err != nil {
			return nil, err
		}
	}
	return t.finishEdit(newRefs, t.height)
}

// finishEdit turns the replacement refs for the old top level into a new
// tree: build upward while more than one ref remains, then collapse
// single-child internal roots so the result matches the canonical
// from-scratch build (which never wraps a lone ref in a parent).
func (t *Tree) finishEdit(refs []ref, level int) (*Tree, error) {
	nt := t.derived()
	if len(refs) == 0 {
		return nt, nil
	}
	height := level
	for len(refs) > 1 {
		refs = nt.buildInternalLevel(refs)
		height++
	}
	root := refs[0].h
	// Collapse: while the root is an internal node with exactly one child,
	// that child is the canonical root.
	for height > 1 {
		n, err := nt.loadInternal(root)
		if err != nil {
			return nil, err
		}
		if len(n.refs) != 1 {
			break
		}
		root = n.refs[0].h
		height--
	}
	nt.root = root
	nt.height = height
	return nt, nil
}

// editLeaves merges ops into the affected leaves and re-chunks with
// resynchronization. It returns the consumed (replaced) old leaf refs and
// the new leaf refs standing in for them.
func (t *Tree) editLeaves(ops []editOp) (consumed, newRefs []ref, err error) {
	cur, err := newCursor(t, 1, ops[0].key)
	if err != nil {
		return nil, nil, err
	}
	if !cur.valid {
		return nil, nil, fmt.Errorf("postree: edit on empty tree")
	}
	ck := chunk.NewChunker(t.cfg.Chunk)
	var pending []core.Entry
	feed := func(e core.Entry) {
		pending = append(pending, e)
		if ck.ItemKV(e.Key, e.Value) {
			newRefs = append(newRefs, t.flushLeaf(pending))
			pending = nil
		}
	}

	// Merge phase: consume leaves until every op has been applied. Leaves
	// with no ops are passed through untouched (same ref, not even
	// loaded) whenever the chunker is aligned at their start — boundary
	// decisions for them cannot change, so re-chunking them would only
	// reproduce the same nodes.
	opIdx := 0
	for {
		thisRef := cur.cur
		hasNext, err := cur.next()
		if err != nil {
			return nil, nil, err
		}
		consumed = append(consumed, thisRef)

		// Ops routed to this leaf: all with key ≤ split key, or every
		// remaining op if this is the last leaf.
		end := opIdx
		if hasNext {
			for end < len(ops) && bytes.Compare(ops[end].key, thisRef.splitKey) <= 0 {
				end++
			}
		} else {
			end = len(ops)
		}
		if end == opIdx && len(pending) == 0 {
			newRefs = append(newRefs, thisRef)
			if !hasNext {
				break
			}
			continue
		}
		leaf, err := t.loadLeaf(thisRef.h)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range mergeEntries(leaf.entries, ops[opIdx:end]) {
			feed(e)
		}
		opIdx = end
		if opIdx >= len(ops) || !hasNext {
			break
		}
	}

	// Resynchronization phase: keep consuming old leaves until a produced
	// boundary lands exactly on an old leaf boundary.
	for len(pending) > 0 && cur.valid {
		thisRef := cur.cur
		leaf, err := t.loadLeaf(thisRef.h)
		if err != nil {
			return nil, nil, err
		}
		if _, err := cur.next(); err != nil {
			return nil, nil, err
		}
		consumed = append(consumed, thisRef)
		for _, e := range leaf.entries {
			feed(e)
		}
	}
	if len(pending) > 0 {
		newRefs = append(newRefs, t.flushLeaf(pending))
	}
	return consumed, newRefs, nil
}

// editInternal rewrites level `level` after the level below replaced the
// node span consumedChild with newChild. The same chunk-and-resync algorithm
// runs over (split key, child hash) items, with boundaries decided by the
// child-hash pattern.
func (t *Tree) editInternal(level int, consumedChild, newChild []ref) (consumed, newRefs []ref, err error) {
	cur, err := newCursor(t, level, consumedChild[0].splitKey)
	if err != nil {
		return nil, nil, err
	}
	if !cur.valid {
		return nil, nil, fmt.Errorf("postree: internal edit on empty tree")
	}
	ck := t.newRefChunker()
	var pending []ref
	feed := func(r ref) {
		pending = append(pending, r)
		if ck.Child(r) {
			newRefs = append(newRefs, t.flushInternal(pending))
			pending = nil
		}
	}

	// Merge phase: stream items of consumed nodes; the old span items are
	// skipped and the replacement refs are fed in their place.
	matchIdx := 0
	for {
		thisRef := cur.cur
		node, err := t.loadInternal(thisRef.h)
		if err != nil {
			return nil, nil, err
		}
		hasNext, err := cur.next()
		if err != nil {
			return nil, nil, err
		}
		consumed = append(consumed, thisRef)

		for _, item := range node.refs {
			if matchIdx < len(consumedChild) && bytes.Equal(item.splitKey, consumedChild[matchIdx].splitKey) {
				if item.h != consumedChild[matchIdx].h {
					return nil, nil, fmt.Errorf("postree: edit span mismatch at level %d", level)
				}
				if matchIdx == 0 {
					for _, r := range newChild {
						feed(r)
					}
				}
				matchIdx++
				continue
			}
			feed(item)
		}
		if matchIdx >= len(consumedChild) {
			break
		}
		if !hasNext {
			return nil, nil, fmt.Errorf("postree: edit span not found at level %d", level)
		}
	}

	// Resynchronization phase.
	for len(pending) > 0 && cur.valid {
		thisRef := cur.cur
		node, err := t.loadInternal(thisRef.h)
		if err != nil {
			return nil, nil, err
		}
		if _, err := cur.next(); err != nil {
			return nil, nil, err
		}
		consumed = append(consumed, thisRef)
		for _, item := range node.refs {
			feed(item)
		}
	}
	if len(pending) > 0 {
		newRefs = append(newRefs, t.flushInternal(pending))
	}
	return consumed, newRefs, nil
}

// ---- ablation: local fixed-size editor (no structural invariance) ----

// localEdit applies ops B+-tree style: each affected node is rewritten in
// place and split at half the maximum size when it overflows; neighbours are
// never re-chunked, so node boundaries depend on the update history.
func (t *Tree) localEdit(ops []editOp) (*Tree, error) {
	if len(ops) == 0 {
		return t, nil
	}
	if t.root.IsNull() {
		var puts []core.Entry
		for _, op := range ops {
			if !op.del {
				puts = append(puts, core.Entry{Key: op.key, Value: op.value})
			}
		}
		return t.rebuild(puts)
	}
	consumed, repl, err := t.localEditLeaves(ops)
	if err != nil {
		return nil, err
	}
	for level := 2; level <= t.height; level++ {
		consumed, repl, err = t.localEditInternal(level, consumed, repl)
		if err != nil {
			return nil, err
		}
	}
	var newRefs []ref
	for _, rs := range repl {
		newRefs = append(newRefs, rs...)
	}
	return t.finishEdit(newRefs, t.height)
}

// splitLeafFixed cuts entries into nodes of at most half MaxLeafBytes.
func (t *Tree) splitLeafFixed(entries []core.Entry) []ref {
	limit := t.cfg.Chunk.MaxLeafBytes / 2
	var out []ref
	var pending []core.Entry
	size := 0
	for _, e := range entries {
		pending = append(pending, e)
		size += len(entryBytes(e))
		if size >= limit {
			out = append(out, t.flushLeaf(pending))
			pending, size = nil, 0
		}
	}
	if len(pending) > 0 {
		out = append(out, t.flushLeaf(pending))
	}
	return out
}

// splitInternalFixed cuts refs into nodes of at most half MaxFanout.
func (t *Tree) splitInternalFixed(refs []ref) []ref {
	limit := t.cfg.Chunk.MaxFanout / 2
	if limit < 2 {
		limit = 2
	}
	var out []ref
	for start := 0; start < len(refs); start += limit {
		end := start + limit
		if end > len(refs) {
			end = len(refs)
		}
		out = append(out, t.flushInternal(refs[start:end]))
	}
	return out
}

// localEditLeaves rewrites exactly the leaves that receive ops, returning
// the consumed refs and, aligned with them, each leaf's replacement nodes.
// Leaves without ops — even between edited ones — are left untouched.
func (t *Tree) localEditLeaves(ops []editOp) (consumed []ref, repl [][]ref, err error) {
	cur, err := newCursor(t, 1, ops[0].key)
	if err != nil {
		return nil, nil, err
	}
	opIdx := 0
	for opIdx < len(ops) && cur.valid {
		thisRef := cur.cur
		leaf, err := t.loadLeaf(thisRef.h)
		if err != nil {
			return nil, nil, err
		}
		hasNext, err := cur.next()
		if err != nil {
			return nil, nil, err
		}
		end := opIdx
		if hasNext {
			for end < len(ops) && bytes.Compare(ops[end].key, thisRef.splitKey) <= 0 {
				end++
			}
			if end == opIdx {
				continue // no ops for this leaf; keep it as-is
			}
		} else {
			end = len(ops)
		}
		merged := mergeEntries(leaf.entries, ops[opIdx:end])
		consumed = append(consumed, thisRef)
		repl = append(repl, t.splitLeafFixed(merged))
		opIdx = end
		if !hasNext {
			break
		}
	}
	return consumed, repl, nil
}

// localEditInternal rewrites the parents of consumed children, substituting
// each consumed item with its own replacement run and splitting oversized
// nodes at half the maximum fanout. Parents of untouched children are never
// rewritten.
func (t *Tree) localEditInternal(level int, consumedChild []ref, childRepl [][]ref) (consumed []ref, repl [][]ref, err error) {
	type target struct {
		i int // index into consumedChild
	}
	byKey := make(map[string]target, len(consumedChild))
	for i, r := range consumedChild {
		byKey[string(r.splitKey)] = target{i: i}
	}
	cur, err := newCursor(t, level, consumedChild[0].splitKey)
	if err != nil {
		return nil, nil, err
	}
	matched := 0
	for matched < len(consumedChild) && cur.valid {
		thisRef := cur.cur
		node, err := t.loadInternal(thisRef.h)
		if err != nil {
			return nil, nil, err
		}
		hasNext, err := cur.next()
		if err != nil {
			return nil, nil, err
		}
		var items []ref
		touched := false
		for _, item := range node.refs {
			if tg, ok := byKey[string(item.splitKey)]; ok && item.h == consumedChild[tg.i].h {
				touched = true
				items = append(items, childRepl[tg.i]...)
				matched++
				continue
			}
			items = append(items, item)
		}
		if !touched {
			continue
		}
		consumed = append(consumed, thisRef)
		switch {
		case len(items) > t.cfg.Chunk.MaxFanout:
			repl = append(repl, t.splitInternalFixed(items))
		case len(items) > 0:
			repl = append(repl, []ref{t.flushInternal(items)})
		default:
			repl = append(repl, nil)
		}
		if !hasNext {
			break
		}
	}
	return consumed, repl, nil
}
