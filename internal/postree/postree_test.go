package postree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// smallCfg uses ~256-byte nodes so modest datasets produce multi-level trees.
func smallCfg() Config {
	return Config{Chunk: chunk.ConfigForNodeSize(256)}
}

func entriesN(n int, seed int64) []core.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Entry, n)
	for i := range out {
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("key-%06d", i)),
			Value: []byte(fmt.Sprintf("value-%06d-%x", i, rng.Int63())),
		}
	}
	return out
}

func build(t *testing.T, cfg Config, entries []core.Entry) *Tree {
	t.Helper()
	tr, err := Build(store.NewMemStore(), cfg, entries)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func put(t *testing.T, idx core.Index, k, v string) core.Index {
	t.Helper()
	out, err := idx.Put([]byte(k), []byte(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func get(t *testing.T, idx core.Index, k string) (string, bool) {
	t.Helper()
	v, ok, err := idx.Get([]byte(k))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

// --- encoding ---

func TestLeafEncodingRoundTrip(t *testing.T) {
	n := &leafNode{entries: []core.Entry{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("bb"), Value: []byte{}},
	}}
	enc := encodeLeaf(n)
	back, err := decodeLeaf(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeLeaf(back), enc) {
		t.Fatal("leaf re-encoding differs")
	}
	if _, err := decodeInternal(enc); err == nil {
		t.Fatal("decoded leaf as internal")
	}
	if _, err := decodeLeaf(enc[:len(enc)-1]); err == nil {
		t.Fatal("decoded truncated leaf")
	}
}

func TestInternalEncodingRoundTrip(t *testing.T) {
	n := &internalNode{refs: []ref{
		{splitKey: []byte("k1"), h: hash.Of([]byte("c1"))},
		{splitKey: []byte("k2"), h: hash.Of([]byte("c2"))},
	}}
	enc := encodeInternal(n)
	back, err := decodeInternal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeInternal(back), enc) {
		t.Fatal("internal re-encoding differs")
	}
}

func TestNodeKind(t *testing.T) {
	if _, err := nodeKind(nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
	if _, err := nodeKind([]byte{9}); err == nil {
		t.Fatal("bad tag accepted")
	}
}

// --- build & lookup ---

func TestEmptyTree(t *testing.T) {
	tr := New(store.NewMemStore(), smallCfg())
	if !tr.RootHash().IsNull() || tr.Height() != 0 {
		t.Fatal("empty tree not empty")
	}
	if _, ok := get(t, tr, "x"); ok {
		t.Fatal("found key in empty tree")
	}
	if n, _ := tr.Count(); n != 0 {
		t.Fatalf("Count = %d", n)
	}
}

func TestBuildAndGet(t *testing.T) {
	entries := entriesN(500, 1)
	tr := build(t, smallCfg(), entries)
	if tr.Height() < 2 {
		t.Fatalf("height = %d, expected multi-level tree", tr.Height())
	}
	for _, e := range entries {
		v, ok, err := tr.Get(e.Key)
		if err != nil || !ok || !bytes.Equal(v, e.Value) {
			t.Fatalf("Get(%q) = %q, %v, %v", e.Key, v, ok, err)
		}
	}
	if _, ok := get(t, tr, "absent"); ok {
		t.Fatal("found absent key")
	}
	if _, ok := get(t, tr, "key-999999x"); ok {
		t.Fatal("found key beyond max")
	}
	if n, _ := tr.Count(); n != len(entries) {
		t.Fatalf("Count = %d, want %d", n, len(entries))
	}
}

func TestBuildDeterministic(t *testing.T) {
	entries := entriesN(300, 2)
	a := build(t, smallCfg(), entries)
	b := build(t, smallCfg(), entries)
	if a.RootHash() != b.RootHash() {
		t.Fatal("same entries built different roots")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	entries := entriesN(200, 3)
	tr, err := Build(s, smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	re := Load(s, smallCfg(), tr.RootHash(), tr.Height())
	for _, e := range entries[:20] {
		v, ok, err := re.Get(e.Key)
		if err != nil || !ok || !bytes.Equal(v, e.Value) {
			t.Fatalf("reloaded Get(%q) failed", e.Key)
		}
	}
}

func TestIterateInKeyOrder(t *testing.T) {
	entries := entriesN(400, 4)
	tr := build(t, smallCfg(), entries)
	var got []string
	if err := tr.Iterate(func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(entries))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("iteration out of key order")
	}
}

// --- the core invariant: incremental edits = from-scratch builds ---

func TestIncrementalPutMatchesRebuild(t *testing.T) {
	s := store.NewMemStore()
	base := entriesN(600, 5)
	tr, err := Build(s, smallCfg(), base)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite, insert-in-middle, insert-at-front, insert-at-back.
	batch := []core.Entry{
		{Key: []byte("key-000300"), Value: []byte("overwritten")},
		{Key: []byte("key-000300x"), Value: []byte("between")},
		{Key: []byte("aaa-first"), Value: []byte("front")},
		{Key: []byte("zzz-last"), Value: []byte("back")},
	}
	edited, err := tr.PutBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	full := mergeEntries(core.SortEntries(base), makeOps(core.SortEntries(batch), nil))
	rebuilt, err := Build(s, smallCfg(), full)
	if err != nil {
		t.Fatal(err)
	}
	if edited.RootHash() != rebuilt.RootHash() {
		t.Fatal("incremental edit diverged from canonical rebuild")
	}
	if edited.(*Tree).Height() != rebuilt.Height() {
		t.Fatalf("heights differ: %d vs %d", edited.(*Tree).Height(), rebuilt.Height())
	}
}

func TestIncrementalDeleteMatchesRebuild(t *testing.T) {
	s := store.NewMemStore()
	base := entriesN(400, 6)
	tr, err := Build(s, smallCfg(), base)
	if err != nil {
		t.Fatal(err)
	}
	var idx core.Index = tr
	removed := map[int]bool{0: true, 100: true, 200: true, 399: true, 201: true, 202: true}
	for i := range removed {
		var err error
		idx, err = idx.Delete(base[i].Key)
		if err != nil {
			t.Fatal(err)
		}
	}
	var remaining []core.Entry
	for i, e := range base {
		if !removed[i] {
			remaining = append(remaining, e)
		}
	}
	rebuilt, err := Build(s, smallCfg(), remaining)
	if err != nil {
		t.Fatal(err)
	}
	if idx.RootHash() != rebuilt.RootHash() {
		t.Fatal("deletes diverged from canonical rebuild")
	}
}

func TestStructuralInvarianceProperty(t *testing.T) {
	// Any sequence of random batches must land on the canonical root for
	// the resulting contents — the heart of Definition 3.1(1) and the
	// POS-Tree edit algorithm.
	cfg := smallCfg()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := store.NewMemStore()
		var idx core.Index = New(s, cfg)
		model := map[string]string{}
		for batch := 0; batch < 6; batch++ {
			n := rng.Intn(40) + 1
			var entries []core.Entry
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key-%04d", rng.Intn(500))
				v := fmt.Sprintf("val-%d-%d", batch, i)
				entries = append(entries, core.Entry{Key: []byte(k), Value: []byte(v)})
			}
			var err error
			idx, err = idx.PutBatch(entries)
			if err != nil {
				return false
			}
			for _, e := range core.SortEntries(entries) {
				model[string(e.Key)] = string(e.Value)
			}
			// Occasionally delete a known key.
			if batch%2 == 1 && len(model) > 0 {
				for k := range model {
					idx, err = idx.Delete([]byte(k))
					if err != nil {
						return false
					}
					delete(model, k)
					break
				}
			}
		}
		var canonical []core.Entry
		for k, v := range model {
			canonical = append(canonical, core.Entry{Key: []byte(k), Value: []byte(v)})
		}
		rebuilt, err := Build(s, cfg, canonical)
		if err != nil {
			return false
		}
		return idx.RootHash() == rebuilt.RootHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var idx core.Index = New(store.NewMemStore(), smallCfg())
	model := map[string]string{}
	for step := 0; step < 150; step++ {
		n := rng.Intn(20) + 1
		var entries []core.Entry
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%04d", rng.Intn(800))
			v := fmt.Sprintf("v%d-%d", step, i)
			entries = append(entries, core.Entry{Key: []byte(k), Value: []byte(v)})
		}
		var err error
		idx, err = idx.PutBatch(entries)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range core.SortEntries(entries) {
			model[string(e.Key)] = string(e.Value)
		}
		if step%3 == 0 {
			k := fmt.Sprintf("key-%04d", rng.Intn(800))
			idx, err = idx.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		}
		probe := fmt.Sprintf("key-%04d", rng.Intn(800))
		got, ok := get(t, idx, probe)
		want, wantOK := model[probe]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("step %d: Get(%q) = %q,%v; want %q,%v", step, probe, got, ok, want, wantOK)
		}
	}
	n, err := idx.Count()
	if err != nil || n != len(model) {
		t.Fatalf("Count = %d, model %d", n, len(model))
	}
}

func TestDeleteToEmpty(t *testing.T) {
	entries := entriesN(50, 10)
	tr := build(t, smallCfg(), entries)
	var idx core.Index = tr
	var err error
	for _, e := range entries {
		idx, err = idx.Delete(e.Key)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !idx.RootHash().IsNull() {
		t.Fatal("tree not empty after deleting everything")
	}
}

func TestPutOnEmptyTree(t *testing.T) {
	var idx core.Index = New(store.NewMemStore(), smallCfg())
	idx = put(t, idx, "first", "value")
	if got, ok := get(t, idx, "first"); !ok || got != "value" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if idx.(*Tree).Height() != 1 {
		t.Fatalf("height = %d", idx.(*Tree).Height())
	}
}

func TestCopyOnWriteVersions(t *testing.T) {
	entries := entriesN(300, 11)
	tr := build(t, smallCfg(), entries)
	v2 := put(t, tr, "key-000150", "changed")
	if got, _ := get(t, tr, "key-000150"); got == "changed" {
		t.Fatal("old version sees new write")
	}
	if got, _ := get(t, v2, "key-000150"); got != "changed" {
		t.Fatal("new version missing write")
	}
	// Nearly all pages must be shared between the versions.
	st, err := core.AnalyzeVersions(tr, v2)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeSharingRatio() < 0.3 {
		t.Fatalf("sharing ratio = %v, expected high sharing", st.NodeSharingRatio())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := New(store.NewMemStore(), smallCfg())
	if _, err := tr.Put(nil, []byte("v")); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("Put err = %v", err)
	}
	if _, _, err := tr.Get(nil); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("Get err = %v", err)
	}
}

func TestPathLength(t *testing.T) {
	tr := build(t, smallCfg(), entriesN(1000, 12))
	pl, err := tr.PathLength([]byte("key-000500"))
	if err != nil {
		t.Fatal(err)
	}
	if pl != tr.Height() {
		t.Fatalf("PathLength = %d, height %d", pl, tr.Height())
	}
}

// --- diff & merge ---

func TestDiffIdentical(t *testing.T) {
	tr := build(t, smallCfg(), entriesN(200, 13))
	diffs, err := tr.Diff(tr)
	if err != nil || len(diffs) != 0 {
		t.Fatalf("self diff = %v, %v", diffs, err)
	}
}

func TestDiffEmptyVsPopulated(t *testing.T) {
	s := store.NewMemStore()
	a := New(s, smallCfg())
	entries := entriesN(100, 14)
	b, err := Build(s, smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := a.Diff(b)
	if err != nil || len(diffs) != len(entries) {
		t.Fatalf("diff = %d entries, %v", len(diffs), err)
	}
	for _, d := range diffs {
		if d.Left != nil || d.Right == nil {
			t.Fatalf("bad sidedness %+v", d)
		}
	}
}

func TestDiffMatchesModel(t *testing.T) {
	s := store.NewMemStore()
	base := entriesN(500, 15)
	tr, err := Build(s, smallCfg(), base)
	if err != nil {
		t.Fatal(err)
	}
	var batch []core.Entry
	for i := 0; i < 30; i++ {
		batch = append(batch, core.Entry{
			Key:   []byte(fmt.Sprintf("key-%06d", i*17)),
			Value: []byte(fmt.Sprintf("changed-%d", i)),
		})
	}
	batch = append(batch, core.Entry{Key: []byte("zz-new"), Value: []byte("right-only")})
	other, err := tr.PutBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := tr.Diff(other)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != len(batch) {
		t.Fatalf("got %d diffs, want %d", len(diffs), len(batch))
	}
	for _, d := range diffs {
		if string(d.Key) == "zz-new" {
			if d.Left != nil || string(d.Right) != "right-only" {
				t.Fatalf("bad new-key diff %+v", d)
			}
		} else if d.Left == nil || d.Right == nil {
			t.Fatalf("changed key %q missing a side", d.Key)
		}
	}
}

func TestDiffTypeMismatch(t *testing.T) {
	tr := New(store.NewMemStore(), smallCfg())
	if _, err := tr.Diff(fakeIndex{}); !errors.Is(err, core.ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
}

type fakeIndex struct{ core.Index }

func TestMergeThroughCore(t *testing.T) {
	s := store.NewMemStore()
	base, err := Build(s, smallCfg(), entriesN(200, 16))
	if err != nil {
		t.Fatal(err)
	}
	left := put(t, base, "left-key", "1")
	right := put(t, base, "right-key", "2")
	merged, err := core.Merge(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := get(t, merged, "left-key"); !ok || got != "1" {
		t.Fatalf("merged left = %q, %v", got, ok)
	}
	if got, ok := get(t, merged, "right-key"); !ok || got != "2" {
		t.Fatalf("merged right = %q, %v", got, ok)
	}
}

// --- proofs ---

func TestProveAndVerify(t *testing.T) {
	tr := build(t, smallCfg(), entriesN(300, 17))
	proof, err := tr.Prove([]byte("key-000123"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifyProof(tr.RootHash(), proof); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	proof.Value = []byte("forged")
	if err := tr.VerifyProof(tr.RootHash(), proof); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("forged proof accepted: %v", err)
	}
	if _, err := tr.Prove([]byte("no-such-key")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Prove(missing) = %v", err)
	}
	if err := tr.VerifyProof(tr.RootHash(), &core.Proof{}); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("empty proof accepted: %v", err)
	}
}

// --- ablations (§5.5) ---

func TestAblationNoStructuralInvariance(t *testing.T) {
	cfg := smallCfg()
	cfg.Ablation = AblationNoStructuralInvariance
	s := store.NewMemStore()

	// Same final contents via different batch orders must (typically)
	// yield different roots — and lookups must still be correct.
	base := entriesN(200, 18)
	extraA := entriesN(40, 19)
	for i := range extraA {
		extraA[i].Key = []byte(fmt.Sprintf("extra-%06d", i))
	}
	t1, err := Build(s, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	var a core.Index = t1
	for _, e := range extraA { // one at a time
		a, err = a.Put(e.Key, e.Value)
		if err != nil {
			t.Fatal(err)
		}
	}
	b, err := t1.PutBatch(extraA) // all at once
	if err != nil {
		t.Fatal(err)
	}
	// All contents still readable in both.
	for _, e := range extraA {
		if v, ok, _ := a.Get(e.Key); !ok || !bytes.Equal(v, e.Value) {
			t.Fatalf("a.Get(%q) failed", e.Key)
		}
		if v, ok, _ := b.Get(e.Key); !ok || !bytes.Equal(v, e.Value) {
			t.Fatalf("b.Get(%q) failed", e.Key)
		}
	}
	if a.RootHash() == b.RootHash() {
		t.Fatal("ablated tree is still structurally invariant (roots equal)")
	}
}

func TestAblationNoRecursiveIdentity(t *testing.T) {
	cfg := smallCfg()
	cfg.Ablation = AblationNoRecursiveIdentity
	s := store.NewMemStore()
	tr, err := Build(s, cfg, entriesN(150, 20))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := tr.Put([]byte("key-000075"), []byte("changed"))
	if err != nil {
		t.Fatal(err)
	}
	// Contents correct.
	if v, ok, _ := v2.Get([]byte("key-000075")); !ok || string(v) != "changed" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Zero pages shared between the versions (§5.5.2: "the deduplication
	// ratio ... is 0").
	st, err := core.AnalyzeVersions(tr, v2.(*Tree))
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeSharingRatio() != 0 {
		t.Fatalf("sharing ratio = %v, want 0", st.NodeSharingRatio())
	}
}

// --- node size statistics ---

func TestNodeSizesTrackTarget(t *testing.T) {
	for _, target := range []int{512, 1024} {
		s := store.NewMemStore()
		tr, err := Build(s, ConfigForNodeSize(target), entriesN(3000, int64(target)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.ReachStats(tr)
		if err != nil {
			t.Fatal(err)
		}
		avg := int(r.Bytes) / r.Nodes
		if avg < target/3 || avg > target*3 {
			t.Errorf("target %d: average node %d bytes over %d nodes", target, avg, r.Nodes)
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	small := build(t, smallCfg(), entriesN(100, 21))
	large := build(t, smallCfg(), entriesN(3000, 22))
	if large.Height() <= small.Height() {
		t.Fatalf("heights: small=%d large=%d", small.Height(), large.Height())
	}
	if large.Height() > 10 {
		t.Fatalf("height %d too tall for 3000 entries", large.Height())
	}
}
