package postree

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/hash"
)

// leafIter streams a tree's entries leaf by leaf, exposing leaf boundaries
// so that identical leaves (equal digests) can be skipped wholesale.
type leafIter struct {
	t       *Tree
	cur     *cursor
	entries []core.Entry
	idx     int
	done    bool
}

func newLeafIter(t *Tree) (*leafIter, error) {
	it := &leafIter{t: t}
	if t.root.IsNull() {
		it.done = true
		return it, nil
	}
	// Position at the first leaf: descend with an empty key, which every
	// split key compares ≥ to.
	cur, err := newCursor(t, 1, []byte{})
	if err != nil {
		return nil, err
	}
	it.cur = cur
	return it, it.loadCurrent()
}

func (it *leafIter) loadCurrent() error {
	leaf, err := it.t.loadLeaf(it.cur.cur.h)
	if err != nil {
		return err
	}
	it.entries = leaf.entries
	it.idx = 0
	return nil
}

// atLeafStart reports whether the iterator sits exactly at a leaf boundary.
func (it *leafIter) atLeafStart() bool { return !it.done && it.idx == 0 }

// leafHash returns the digest of the current leaf.
func (it *leafIter) leafHash() hash.Hash { return it.cur.cur.h }

// entry returns the current entry; callers must check done first.
func (it *leafIter) entry() core.Entry { return it.entries[it.idx] }

// advance moves to the next entry, crossing leaf boundaries as needed.
func (it *leafIter) advance() error {
	it.idx++
	for it.idx >= len(it.entries) {
		ok, err := it.cur.next()
		if err != nil {
			return err
		}
		if !ok {
			it.done = true
			return nil
		}
		if err := it.loadCurrent(); err != nil {
			return err
		}
	}
	return nil
}

// skipLeaf jumps over the entire current leaf.
func (it *leafIter) skipLeaf() error {
	it.idx = len(it.entries)
	if it.idx == 0 {
		it.idx = 1 // defensive: empty leaves cannot occur, but terminate anyway
	}
	ok, err := it.cur.next()
	if err != nil {
		return err
	}
	if !ok {
		it.done = true
		return nil
	}
	return it.loadCurrent()
}

// Diff implements core.Index (§4.1.3). Structural invariance makes equal
// content regions chunk into identical leaves, so aligned leaves with equal
// digests are skipped without inspecting their entries; only divergent
// regions are compared record by record.
func (t *Tree) Diff(other core.Index) ([]core.DiffEntry, error) {
	o, ok := other.(*Tree)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	a, err := newLeafIter(t)
	if err != nil {
		return nil, err
	}
	b, err := newLeafIter(o)
	if err != nil {
		return nil, err
	}
	var out []core.DiffEntry
	for !a.done || !b.done {
		if !a.done && !b.done && a.atLeafStart() && b.atLeafStart() && a.leafHash() == b.leafHash() {
			if err := a.skipLeaf(); err != nil {
				return nil, err
			}
			if err := b.skipLeaf(); err != nil {
				return nil, err
			}
			continue
		}
		switch {
		case b.done || (!a.done && bytes.Compare(a.entry().Key, b.entry().Key) < 0):
			e := a.entry()
			out = append(out, core.DiffEntry{Key: e.Key, Left: e.Value})
			if err := a.advance(); err != nil {
				return nil, err
			}
		case a.done || bytes.Compare(a.entry().Key, b.entry().Key) > 0:
			e := b.entry()
			out = append(out, core.DiffEntry{Key: e.Key, Right: e.Value})
			if err := b.advance(); err != nil {
				return nil, err
			}
		default:
			ea, eb := a.entry(), b.entry()
			if !bytes.Equal(ea.Value, eb.Value) {
				out = append(out, core.DiffEntry{Key: ea.Key, Left: ea.Value, Right: eb.Value})
			}
			if err := a.advance(); err != nil {
				return nil, err
			}
			if err := b.advance(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
