package postree_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/indextest"
	"repro/internal/hash"
	"repro/internal/postree"
	"repro/internal/store"
)

// conformanceConfig is the canonical configuration the golden root vector
// in indextest.CanonicalRoots is computed against.
func conformanceConfig() postree.Config { return postree.ConfigForNodeSize(512) }

// TestIndexConformance runs the shared index conformance suite — including
// the Range bound semantics and the subtree-pruning node-read assertion —
// against the POS-Tree over every store backend.
func TestIndexConformance(t *testing.T) {
	indextest.RunIndexTests(t, "POS-Tree", indextest.Options{
		New: func(s store.Store) (core.Index, error) {
			return postree.New(s, conformanceConfig()), nil
		},
		Reopen: func(s store.Store, idx core.Index) (core.Index, error) {
			pt := idx.(*postree.Tree)
			return postree.Load(s, conformanceConfig(), pt.RootHash(), pt.Height()), nil
		},
		Loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
			return postree.Load(s, conformanceConfig(), root, height), nil
		},
		OrderedIterate:        true,
		PrunedRange:           true,
		StructurallyInvariant: true,
	})
}
