package prolly_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/indextest"
	"repro/internal/hash"
	"repro/internal/prolly"
	"repro/internal/store"
)

// TestIndexConformance runs the shared index conformance suite — including
// the Range bound semantics and the subtree-pruning node-read assertion —
// against the Prolly Tree over every store backend. The canonical
// configuration (prolly.ConfigForNodeSize(512)) is what the golden root
// vector in indextest.CanonicalRoots is computed against: the Prolly Tree
// shares the POS-Tree machinery but window-chunks its internal layers, so
// its node boundaries — and hence its golden root — differ from the
// POS-Tree's.
func TestIndexConformance(t *testing.T) {
	cfg := prolly.ConfigForNodeSize(512)
	indextest.RunIndexTests(t, "Prolly-Tree", indextest.Options{
		New: func(s store.Store) (core.Index, error) {
			return prolly.New(s, cfg), nil
		},
		Reopen: func(s store.Store, idx core.Index) (core.Index, error) {
			pt := idx.(*prolly.Tree)
			return prolly.Load(s, cfg, pt.RootHash(), pt.Height()), nil
		},
		Loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
			return prolly.Load(s, cfg, root, height), nil
		},
		OrderedIterate:        true,
		PrunedRange:           true,
		StructurallyInvariant: true,
	})
}
