package prolly

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
)

func entriesN(n int, seed int64) []core.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Entry, n)
	for i := range out {
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("key-%06d", i)),
			Value: []byte(fmt.Sprintf("value-%06d-%x", i, rng.Int63())),
		}
	}
	return out
}

func smallCfg() postree.Config {
	cfg := ConfigForNodeSize(256)
	return cfg
}

func TestName(t *testing.T) {
	tr := New(store.NewMemStore(), DefaultConfig())
	if tr.Name() != "Prolly-Tree" {
		t.Fatalf("Name = %q", tr.Name())
	}
}

func TestBuildAndGet(t *testing.T) {
	entries := entriesN(400, 1)
	tr, err := Build(store.NewMemStore(), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		v, ok, err := tr.Get(e.Key)
		if err != nil || !ok || !bytes.Equal(v, e.Value) {
			t.Fatalf("Get(%q) = %q, %v, %v", e.Key, v, ok, err)
		}
	}
}

func TestStructuralInvariance(t *testing.T) {
	// Window-chunked internal layers must preserve structural invariance:
	// incremental edits land on the canonical from-scratch root.
	s := store.NewMemStore()
	cfg := smallCfg()
	base := entriesN(500, 2)
	tr, err := Build(s, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	batch := []core.Entry{
		{Key: []byte("key-000250"), Value: []byte("changed")},
		{Key: []byte("key-000250x"), Value: []byte("inserted")},
	}
	edited, err := tr.PutBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([]core.Entry{}, base...), batch...)
	rebuilt, err := Build(s, cfg, core.SortEntries(full))
	if err != nil {
		t.Fatal(err)
	}
	if edited.RootHash() != rebuilt.RootHash() {
		t.Fatal("prolly edit diverged from canonical rebuild")
	}
}

func TestDiffersFromPOSTreeStructure(t *testing.T) {
	// The two internal-layer strategies produce different node boundaries
	// — Prolly and POS trees over the same data are distinct structures.
	entries := entriesN(2000, 3)
	s := store.NewMemStore()
	pos, err := postree.Build(s, postree.ConfigForNodeSize(256), entries)
	if err != nil {
		t.Fatal(err)
	}
	pro, err := Build(s, smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if pos.RootHash() == pro.RootHash() {
		t.Fatal("POS and Prolly produced identical roots; window chunking had no effect")
	}
}

func TestDefaultConfigMatchesNoms(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Chunk.Window != 67 {
		t.Fatalf("window = %d, want 67", cfg.Chunk.Window)
	}
	if !cfg.WindowInternal {
		t.Fatal("WindowInternal not set")
	}
	if 1<<cfg.Chunk.LeafBits != 4096 {
		t.Fatalf("leaf target = %d, want 4096", 1<<cfg.Chunk.LeafBits)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	entries := entriesN(200, 4)
	tr, err := Build(s, smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	re := Load(s, smallCfg(), tr.RootHash(), tr.Height())
	if v, ok, err := re.Get(entries[42].Key); err != nil || !ok || !bytes.Equal(v, entries[42].Value) {
		t.Fatalf("reloaded Get = %q, %v, %v", v, ok, err)
	}
}
