// Package prolly configures the Noms-style Prolly Tree used in the paper's
// Forkbase-vs-Noms system comparison (§5.6.2). A Prolly Tree is the same
// probabilistically balanced, content-chunked search tree as POS-Tree with
// one difference: internal-layer node boundaries are detected by repeatedly
// rolling a sliding-window hash over the serialized child entries, instead
// of testing the already-computed child digests against the pattern. The
// paper: "Such computational overhead causes inefficiency of its write
// operations."
//
// The implementation reuses internal/postree with the window-chunking
// internal layer enabled, so lookups, diffs, proofs and the incremental edit
// algorithm are identical — only the boundary detector (and hence the write
// cost and the exact node boundaries) differs. Everything layered above
// postree therefore works on Prolly Trees unchanged: ordered Range scans,
// the indextest conformance battery, and version management — a Prolly
// commit records the class name "Prolly-Tree" with the tree height, and
// Load (via version.Loader) reattaches to any retained root after a
// checkout or a GC.
package prolly

import (
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/postree"
	"repro/internal/store"
)

// Tree is one immutable version of a Prolly Tree.
type Tree = postree.Tree

// DefaultConfig matches the Noms defaults the paper used for the comparison:
// 4KB nodes with a 67-byte rolling window (§5.6.2).
func DefaultConfig() postree.Config {
	cfg := postree.ConfigForNodeSize(4096)
	cfg.Chunk.Window = 67
	cfg.WindowInternal = true
	cfg.DisplayName = "Prolly-Tree"
	return cfg
}

// ConfigForNodeSize targets a given expected node size in bytes.
func ConfigForNodeSize(n int) postree.Config {
	cfg := postree.ConfigForNodeSize(n)
	cfg.Chunk.Window = 67
	cfg.WindowInternal = true
	cfg.DisplayName = "Prolly-Tree"
	return cfg
}

// New returns an empty Prolly Tree over s.
func New(s store.Store, cfg postree.Config) *Tree { return postree.New(s, cfg) }

// Build bulk-loads entries bottom-up.
func Build(s store.Store, cfg postree.Config, entries []core.Entry) (*Tree, error) {
	return postree.Build(s, cfg, entries)
}

// Load returns a tree view of an existing root in s.
func Load(s store.Store, cfg postree.Config, root hash.Hash, height int) *Tree {
	return postree.Load(s, cfg, root, height)
}
