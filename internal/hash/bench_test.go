package hash_test

import (
	"crypto/sha256"
	"testing"

	"repro/internal/hash"
)

// BenchmarkOf measures the two hashing paths against an inline
// sha256.New-per-call baseline. The single-part case is the encode path
// every index node write takes (one ~1KB node per call) and compiles to an
// allocation-free sha256.Sum256; the multi-part case covers callers hashing
// split encodings through the pooled digest state, which keeps the state
// off the heap even when escape analysis cannot (the baseline below only
// reaches 0 allocs/op because the compiler can stack-allocate the digest in
// this closure — hash.Of, a variadic exported function, gets no such
// guarantee at arbitrary call sites).
func BenchmarkOf(b *testing.B) {
	node := make([]byte, 1024)
	for i := range node {
		node[i] = byte(i)
	}
	b.Run("single-1KB", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			_ = hash.Of(node)
		}
	})
	b.Run("multi-3-parts", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(1024)
		a, m, z := node[:256], node[256:512], node[512:]
		for i := 0; i < b.N; i++ {
			_ = hash.Of(a, m, z)
		}
	})
	// The unpooled baseline, kept runnable so benchstat can show the delta
	// without checking out the previous commit.
	b.Run("baseline-unpooled-1KB", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			h := sha256.New()
			h.Write(node)
			var out hash.Hash
			h.Sum(out[:0])
		}
	})
}
