package hash

import (
	"crypto/sha256"
	"strings"
	"testing"
	"testing/quick"
)

func TestOfMatchesSha256(t *testing.T) {
	data := []byte("immutable data")
	want := sha256.Sum256(data)
	got := Of(data)
	if got != Hash(want) {
		t.Fatalf("Of(%q) = %v, want %v", data, got, Hash(want))
	}
}

func TestOfConcatenation(t *testing.T) {
	// Of over parts must equal Of over the concatenation.
	a, b := []byte("hello "), []byte("world")
	joined := append(append([]byte{}, a...), b...)
	if Of(a, b) != Of(joined) {
		t.Fatal("Of(parts...) differs from Of(concat)")
	}
}

func TestNullAndIsNull(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null.IsNull() = false")
	}
	if Of([]byte("x")).IsNull() {
		t.Fatal("non-empty digest reported as null")
	}
	if Null.String() != "null" {
		t.Fatalf("Null.String() = %q", Null.String())
	}
}

func TestRoundTripBytes(t *testing.T) {
	h := Of([]byte("round trip"))
	got, err := FromBytes(h.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("FromBytes(Bytes()) = %v, want %v", got, h)
	}
}

func TestFromBytesRejectsBadLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 31)); err == nil {
		t.Fatal("expected error for 31-byte input")
	}
	if _, err := FromBytes(make([]byte, 33)); err == nil {
		t.Fatal("expected error for 33-byte input")
	}
}

func TestMustFromBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromBytes([]byte{1, 2, 3})
}

func TestHexRoundTrip(t *testing.T) {
	h := Of([]byte("hex"))
	got, err := FromHex(h.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("FromHex(Hex()) mismatch")
	}
	if len(h.Hex()) != 64 {
		t.Fatalf("Hex length = %d, want 64", len(h.Hex()))
	}
	if !strings.HasPrefix(h.String(), h.Hex()[:16]) {
		t.Fatalf("String %q does not prefix Hex %q", h.String(), h.Hex())
	}
}

func TestFromHexRejectsGarbage(t *testing.T) {
	if _, err := FromHex("zz"); err == nil {
		t.Fatal("expected error for non-hex input")
	}
	if _, err := FromHex("abcd"); err == nil {
		t.Fatal("expected error for short hex input")
	}
}

func TestCompare(t *testing.T) {
	var a, b Hash
	a[0], b[0] = 1, 2
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare ordering incorrect")
	}
}

func TestCollisionFreeOnDistinctInputsProperty(t *testing.T) {
	// Distinct inputs must (overwhelmingly) produce distinct digests and
	// identical inputs identical digests — determinism is what the Merkle
	// structures rely on.
	f := func(a, b []byte) bool {
		ha, hb := Of(a), Of(b)
		if string(a) == string(b) {
			return ha == hb
		}
		return ha != hb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
