package hash_test

import (
	"fmt"
	"testing"

	"repro/internal/hash"
)

// TestOfAllMatchesSerial checks that the worker-pool batch digest is
// positionally identical to a serial loop of Of calls, across batch sizes
// on both sides of the inline cutoff and worker counts beyond GOMAXPROCS.
func TestOfAllMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 7, 31, 32, 33, 500, 4096} {
		items := make([][]byte, n)
		for i := range items {
			items[i] = []byte(fmt.Sprintf("item-%d-%d", n, i))
		}
		want := make([]hash.Hash, n)
		for i, it := range items {
			want[i] = hash.Of(it)
		}
		got := hash.OfAll(items)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: OfAll[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		for _, workers := range []int{1, 2, 8, 64} {
			out := make([]hash.Hash, n)
			hash.OfAllWorkers(workers, items, out)
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("n=%d workers=%d: OfAllWorkers[%d] = %v, want %v", n, workers, i, out[i], want[i])
				}
			}
		}
	}
}

// TestOfAllWorkersLengthMismatch pins the panic on mismatched slices, which
// would otherwise silently truncate a commit's digest set.
func TestOfAllWorkersLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OfAllWorkers with mismatched lengths did not panic")
		}
	}()
	hash.OfAllWorkers(2, make([][]byte, 3), make([]hash.Hash, 2))
}

// BenchmarkOfAll measures the batch digest path at a commit-sized batch of
// ~1KB nodes, serial vs the worker pool — the core scaling lever of the
// parallel commit pipeline.
func BenchmarkOfAll(b *testing.B) {
	items := make([][]byte, 10000)
	for i := range items {
		p := make([]byte, 1024)
		copy(p, fmt.Sprintf("node-%d", i))
		items[i] = p
	}
	out := make([]hash.Hash, len(items))
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(items) * 1024))
			for i := 0; i < b.N; i++ {
				hash.OfAllWorkers(workers, items, out)
			}
		})
	}
}
