// Package hash provides the cryptographic digest type used by every index
// in this repository. All Merkle structures (MPT, MBT, POS-Tree, MVMB+-Tree,
// Prolly Tree) identify nodes by the SHA-256 digest of their canonical
// encoding; the content-addressed store keys nodes by the same digest.
package hash

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	stdhash "hash"
	"sync"
)

// Size is the digest length in bytes.
const Size = sha256.Size

// Hash is a 32-byte SHA-256 digest. The zero value is the canonical "null"
// hash used for absent children and empty trees.
type Hash [Size]byte

// Null is the zero digest, representing an empty subtree or absent child.
var Null Hash

// hasherPool recycles SHA-256 digest states for the multi-part path of Of.
// Hashing is the hottest operation in the repository (every node write of
// every index goes through it), and sha256.New allocates its state on every
// call; pooling removes that allocation from the commit path.
var hasherPool = sync.Pool{
	New: func() any { return sha256.New() },
}

// Of returns the SHA-256 digest of the concatenation of the given byte
// slices. The common single-part call compiles down to an allocation-free
// sha256.Sum256; multi-part calls reuse a pooled digest state. See
// BenchmarkOf for the delta against an unpooled implementation.
func Of(parts ...[]byte) Hash {
	if len(parts) == 1 {
		return sha256.Sum256(parts[0])
	}
	h := hasherPool.Get().(stdhash.Hash)
	h.Reset()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	hasherPool.Put(h)
	return out
}

// IsNull reports whether h is the zero digest.
func (h Hash) IsNull() bool { return h == Null }

// Bytes returns the digest as a freshly allocated byte slice.
func (h Hash) Bytes() []byte {
	b := make([]byte, Size)
	copy(b, h[:])
	return b
}

// String renders the digest as lowercase hex, truncated for readability in
// logs and test output. Use Hex for the full digest.
func (h Hash) String() string {
	if h.IsNull() {
		return "null"
	}
	return hex.EncodeToString(h[:8]) + "…"
}

// Hex returns the full 64-character lowercase hex rendering.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// Compare orders digests lexicographically, returning -1, 0 or +1.
func (h Hash) Compare(o Hash) int { return bytes.Compare(h[:], o[:]) }

// FromBytes converts a 32-byte slice to a Hash. It returns an error if the
// slice has the wrong length, so that corrupted encodings surface instead of
// silently truncating.
func FromBytes(b []byte) (Hash, error) {
	var h Hash
	if len(b) != Size {
		return h, fmt.Errorf("hash: need %d bytes, got %d", Size, len(b))
	}
	copy(h[:], b)
	return h, nil
}

// MustFromBytes is FromBytes for encodings already validated by the caller.
// It panics on length mismatch.
func MustFromBytes(b []byte) Hash {
	h, err := FromBytes(b)
	if err != nil {
		panic(err)
	}
	return h
}

// FromHex parses a 64-character hex string.
func FromHex(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("hash: %w", err)
	}
	return FromBytes(b)
}
