package hash

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the batch half of the package: the worker-pool digest API the
// parallel commit pipeline fans encode-finished node buffers through. The
// paper's write-path costs (§4) are dominated by node encode+hash work, and
// SHA-256 of independent buffers is embarrassingly parallel, so the batch
// API is the one place the repository turns spare cores into commit
// throughput. Everything else (dedup, staging order, store batching) stays
// deterministic and single-threaded around it.

// ofAllSerialCutoff is the batch size below which OfAll digests inline:
// spawning workers for a handful of nodes costs more than it saves.
const ofAllSerialCutoff = 32

// ofAllStride is how many items a worker claims per grab. Striding amortizes
// the shared-counter atomics while keeping the tail balanced across workers.
const ofAllStride = 16

// OfAll returns Of(item) for every item, computed across GOMAXPROCS worker
// goroutines for large batches. The result is positionally identical to a
// serial loop of Of calls; only the wall-clock differs.
func OfAll(items [][]byte) []Hash {
	out := make([]Hash, len(items))
	OfAllWorkers(0, items, out)
	return out
}

// OfAllWorkers fills out[i] = Of(items[i]) using at most workers goroutines
// (the caller's goroutine included). workers <= 0 selects GOMAXPROCS. Small
// batches and single-worker calls digest inline with no goroutine traffic,
// so callers can hand every batch here unconditionally. It panics if the two
// slices differ in length.
func OfAllWorkers(workers int, items [][]byte, out []Hash) {
	if len(items) != len(out) {
		panic("hash: OfAllWorkers with mismatched slice lengths")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (len(items) + ofAllStride - 1) / ofAllStride; workers > max {
		workers = max
	}
	if workers <= 1 || len(items) < ofAllSerialCutoff {
		for i, it := range items {
			out[i] = Of(it)
		}
		return
	}
	var next atomic.Int64
	digest := func() {
		for {
			start := int(next.Add(ofAllStride)) - ofAllStride
			if start >= len(items) {
				return
			}
			end := start + ofAllStride
			if end > len(items) {
				end = len(items)
			}
			for i := start; i < end; i++ {
				out[i] = Of(items[i])
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			digest()
		}()
	}
	digest()
	wg.Wait()
}
