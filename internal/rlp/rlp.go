// Package rlp implements Recursive Length Prefix encoding, Ethereum's
// canonical object serialization. The paper's Ethereum workload (§5.1.3)
// stores RLP-encoded raw transactions as index values; this package provides
// the encoding path for the synthetic equivalent.
//
// RLP serializes two kinds of values: byte strings and lists of values.
//
//	byte in [0x00,0x7f]        → itself
//	string of 0–55 bytes       → 0x80+len ‖ string
//	string of >55 bytes        → 0xb7+len(len) ‖ len ‖ string
//	list, payload 0–55 bytes   → 0xc0+len ‖ payload
//	list, payload >55 bytes    → 0xf7+len(len) ‖ len ‖ payload
package rlp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind distinguishes the two RLP value kinds.
type Kind int

// The two RLP kinds.
const (
	KindBytes Kind = iota
	KindList
)

// Value is an RLP item: either a byte string or a list of Values.
type Value struct {
	kind Kind
	str  []byte
	list []Value
}

// Bytes wraps a byte string.
func Bytes(b []byte) Value { return Value{kind: KindBytes, str: b} }

// String wraps a Go string.
func String(s string) Value { return Bytes([]byte(s)) }

// Uint wraps an unsigned integer as its minimal big-endian byte string
// (zero encodes as the empty string, per the Ethereum convention).
func Uint(v uint64) Value {
	if v == 0 {
		return Bytes(nil)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	i := 0
	for buf[i] == 0 {
		i++
	}
	return Bytes(buf[i:])
}

// List wraps a list of values.
func List(items ...Value) Value { return Value{kind: KindList, list: items} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Str returns the byte-string payload; nil for lists.
func (v Value) Str() []byte { return v.str }

// Items returns the list elements; nil for byte strings.
func (v Value) Items() []Value { return v.list }

// AsUint decodes a byte-string value as a big-endian unsigned integer.
func (v Value) AsUint() (uint64, error) {
	if v.kind != KindBytes {
		return 0, errors.New("rlp: AsUint on list")
	}
	if len(v.str) > 8 {
		return 0, fmt.Errorf("rlp: integer of %d bytes overflows uint64", len(v.str))
	}
	if len(v.str) > 0 && v.str[0] == 0 {
		return 0, errors.New("rlp: integer has leading zero")
	}
	var out uint64
	for _, b := range v.str {
		out = out<<8 | uint64(b)
	}
	return out, nil
}

// Encode serializes v.
func Encode(v Value) []byte {
	return appendValue(nil, v)
}

func appendValue(dst []byte, v Value) []byte {
	if v.kind == KindBytes {
		return appendString(dst, v.str)
	}
	var payload []byte
	for _, it := range v.list {
		payload = appendValue(payload, it)
	}
	dst = appendHeader(dst, 0xc0, len(payload))
	return append(dst, payload...)
}

func appendString(dst, s []byte) []byte {
	if len(s) == 1 && s[0] <= 0x7f {
		return append(dst, s[0])
	}
	dst = appendHeader(dst, 0x80, len(s))
	return append(dst, s...)
}

// appendHeader writes the tag byte(s) for a payload of n bytes with the
// given base (0x80 for strings, 0xc0 for lists).
func appendHeader(dst []byte, base byte, n int) []byte {
	if n <= 55 {
		return append(dst, base+byte(n))
	}
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(n))
	i := 0
	for lenBuf[i] == 0 {
		i++
	}
	be := lenBuf[i:]
	dst = append(dst, base+55+byte(len(be)))
	return append(dst, be...)
}

// Decoding errors.
var (
	ErrShort     = errors.New("rlp: input too short")
	ErrTrailing  = errors.New("rlp: trailing bytes")
	ErrCanonical = errors.New("rlp: non-canonical encoding")
)

// Decode parses a single RLP value and requires the input to be fully
// consumed.
func Decode(b []byte) (Value, error) {
	v, rest, err := decodeValue(b)
	if err != nil {
		return Value{}, err
	}
	if len(rest) != 0 {
		return Value{}, ErrTrailing
	}
	return v, nil
}

func decodeValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, ErrShort
	}
	tag := b[0]
	switch {
	case tag <= 0x7f:
		return Bytes(b[:1]), b[1:], nil

	case tag <= 0xb7: // short string
		n := int(tag - 0x80)
		if len(b)-1 < n {
			return Value{}, nil, ErrShort
		}
		s := b[1 : 1+n]
		if n == 1 && s[0] <= 0x7f {
			return Value{}, nil, fmt.Errorf("%w: single byte %#x wrapped", ErrCanonical, s[0])
		}
		return Bytes(s), b[1+n:], nil

	case tag <= 0xbf: // long string
		n, rest, err := decodeLongLen(b, tag-0xb7)
		if err != nil {
			return Value{}, nil, err
		}
		if n <= 55 {
			return Value{}, nil, fmt.Errorf("%w: long form for %d-byte string", ErrCanonical, n)
		}
		if len(rest) < n {
			return Value{}, nil, ErrShort
		}
		return Bytes(rest[:n]), rest[n:], nil

	case tag <= 0xf7: // short list
		n := int(tag - 0xc0)
		if len(b)-1 < n {
			return Value{}, nil, ErrShort
		}
		items, err := decodeListPayload(b[1 : 1+n])
		if err != nil {
			return Value{}, nil, err
		}
		return Value{kind: KindList, list: items}, b[1+n:], nil

	default: // long list
		n, rest, err := decodeLongLen(b, tag-0xf7)
		if err != nil {
			return Value{}, nil, err
		}
		if n <= 55 {
			return Value{}, nil, fmt.Errorf("%w: long form for %d-byte list", ErrCanonical, n)
		}
		if len(rest) < n {
			return Value{}, nil, ErrShort
		}
		items, err := decodeListPayload(rest[:n])
		if err != nil {
			return Value{}, nil, err
		}
		return Value{kind: KindList, list: items}, rest[n:], nil
	}
}

// decodeLongLen reads a lenOfLen-byte big-endian payload length following
// the tag byte.
func decodeLongLen(b []byte, lenOfLen byte) (int, []byte, error) {
	k := int(lenOfLen)
	if len(b)-1 < k {
		return 0, nil, ErrShort
	}
	lb := b[1 : 1+k]
	if lb[0] == 0 {
		return 0, nil, fmt.Errorf("%w: length has leading zero", ErrCanonical)
	}
	if k > 8 {
		return 0, nil, fmt.Errorf("rlp: length of %d bytes unsupported", k)
	}
	var n uint64
	for _, c := range lb {
		n = n<<8 | uint64(c)
	}
	if n > uint64(len(b)) {
		return 0, nil, ErrShort
	}
	return int(n), b[1+k:], nil
}

func decodeListPayload(payload []byte) ([]Value, error) {
	var items []Value
	for len(payload) > 0 {
		v, rest, err := decodeValue(payload)
		if err != nil {
			return nil, err
		}
		items = append(items, v)
		payload = rest
	}
	return items, nil
}
