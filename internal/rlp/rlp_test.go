package rlp

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Canonical vectors from the Ethereum RLP specification.
func TestKnownVectors(t *testing.T) {
	lorem := "Lorem ipsum dolor sit amet, consectetur adipisicing elit"
	cases := []struct {
		name string
		v    Value
		want []byte
	}{
		{"dog", String("dog"), []byte{0x83, 'd', 'o', 'g'}},
		{"cat-dog list", List(String("cat"), String("dog")),
			[]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}},
		{"empty string", String(""), []byte{0x80}},
		{"empty list", List(), []byte{0xc0}},
		{"integer 0", Uint(0), []byte{0x80}},
		{"byte 0x0f", Bytes([]byte{0x0f}), []byte{0x0f}},
		{"bytes 0x0400", Bytes([]byte{0x04, 0x00}), []byte{0x82, 0x04, 0x00}},
		{"set of sets", List(List(), List(List()), List(List(), List(List()))),
			[]byte{0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0}},
		{"56-byte string", String(lorem),
			append([]byte{0xb8, 0x38}, lorem...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Encode(tc.v)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("Encode = %x, want %x", got, tc.want)
			}
			back, err := Decode(got)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !valueEqual(back, tc.v) {
				t.Fatalf("round trip mismatch: %#v vs %#v", back, tc.v)
			}
		})
	}
}

func valueEqual(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == KindBytes {
		return bytes.Equal(a.Str(), b.Str())
	}
	if len(a.Items()) != len(b.Items()) {
		return false
	}
	for i := range a.Items() {
		if !valueEqual(a.Items()[i], b.Items()[i]) {
			return false
		}
	}
	return true
}

func TestUintEncoding(t *testing.T) {
	cases := []struct {
		v    uint64
		want []byte
	}{
		{0, []byte{0x80}},
		{15, []byte{0x0f}},
		{1024, []byte{0x82, 0x04, 0x00}},
		{0xFFFFFFFF, []byte{0x84, 0xff, 0xff, 0xff, 0xff}},
	}
	for _, tc := range cases {
		if got := Encode(Uint(tc.v)); !bytes.Equal(got, tc.want) {
			t.Errorf("Uint(%d) = %x, want %x", tc.v, got, tc.want)
		}
	}
}

func TestAsUintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 255, 256, 1 << 40, 1<<64 - 1} {
		dec, err := Decode(Encode(Uint(v)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.AsUint()
		if err != nil {
			t.Fatalf("AsUint(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("AsUint = %d, want %d", got, v)
		}
	}
}

func TestAsUintRejections(t *testing.T) {
	if _, err := List().AsUint(); err == nil {
		t.Fatal("AsUint on list succeeded")
	}
	if _, err := Bytes(make([]byte, 9)).AsUint(); err == nil {
		t.Fatal("AsUint on 9-byte string succeeded")
	}
	if _, err := Bytes([]byte{0, 1}).AsUint(); err == nil {
		t.Fatal("AsUint accepted leading zero")
	}
}

func TestLongString(t *testing.T) {
	s := strings.Repeat("x", 1<<16)
	enc := Encode(String(s))
	if enc[0] != 0xb7+3 { // 65536 needs 3 length bytes
		t.Fatalf("tag = %#x", enc[0])
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec.Str()) != s {
		t.Fatal("long string round trip failed")
	}
}

func TestLongList(t *testing.T) {
	var items []Value
	for i := 0; i < 100; i++ {
		items = append(items, String("element"))
	}
	enc := Encode(List(items...))
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Items()) != 100 {
		t.Fatalf("decoded %d items", len(dec.Items()))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"truncated string", []byte{0x83, 'd', 'o'}, ErrShort},
		{"truncated long len", []byte{0xb8}, ErrShort},
		{"trailing bytes", []byte{0x80, 0x00}, ErrTrailing},
		{"wrapped single byte", []byte{0x81, 0x05}, ErrCanonical},
		{"long form short string", append([]byte{0xb8, 0x01}, 0xff), ErrCanonical},
		{"length leading zero", []byte{0xb9, 0x00, 0x38}, ErrCanonical},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.in); !errors.Is(err, tc.want) {
				t.Fatalf("Decode(%x) = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}

func TestNestedListRoundTrip(t *testing.T) {
	tx := List(
		Uint(42),                           // nonce
		Uint(20_000_000_000),               // gas price
		Uint(21000),                        // gas
		Bytes(bytes.Repeat([]byte{7}, 20)), // to
		Uint(1_000_000),                    // value
		Bytes([]byte("calldata")),
	)
	dec, err := Decode(Encode(tx))
	if err != nil {
		t.Fatal(err)
	}
	if !valueEqual(dec, tx) {
		t.Fatal("transaction round trip failed")
	}
	nonce, err := dec.Items()[0].AsUint()
	if err != nil || nonce != 42 {
		t.Fatalf("nonce = %d, %v", nonce, err)
	}
}

func randomValue(rng *rand.Rand, depth int) Value {
	if depth == 0 || rng.Intn(2) == 0 {
		b := make([]byte, rng.Intn(80))
		rng.Read(b)
		return Bytes(b)
	}
	n := rng.Intn(5)
	items := make([]Value, n)
	for i := range items {
		items[i] = randomValue(rng, depth-1)
	}
	return List(items...)
}

func TestRandomRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng, 4)
		dec, err := Decode(Encode(v))
		return err == nil && valueEqual(dec, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	v := List(Uint(7), String("abc"), List(Uint(1)))
	if !bytes.Equal(Encode(v), Encode(v)) {
		t.Fatal("Encode nondeterministic")
	}
}
