package rlp

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder. Anything it accepts
// must be a canonical encoding — re-encoding the decoded value must
// reproduce the input byte-for-byte, and the round trip must be stable.
func FuzzDecode(f *testing.F) {
	// Valid encodings across every header form.
	f.Add(Encode(Bytes(nil)))
	f.Add(Encode(Bytes([]byte{0x05})))
	f.Add(Encode(Bytes([]byte{0x80})))
	f.Add(Encode(String("short string")))
	f.Add(Encode(Bytes(bytes.Repeat([]byte("x"), 60)))) // long-string header
	f.Add(Encode(Uint(0)))
	f.Add(Encode(Uint(1 << 40)))
	f.Add(Encode(List()))
	f.Add(Encode(List(String("a"), List(Uint(7), String("b")))))
	f.Add(Encode(List(Bytes(bytes.Repeat([]byte("y"), 30)), Bytes(bytes.Repeat([]byte("z"), 30))))) // long-list header
	// Malformed inputs: truncations, non-canonical forms, absurd lengths.
	f.Add([]byte{})
	f.Add([]byte{0x81, 0x05})       // single byte wrapped (non-canonical)
	f.Add([]byte{0xb8, 0x01, 0x61}) // long form for short string
	f.Add([]byte{0xb9, 0xff, 0xff})
	f.Add([]byte{0xf8})
	f.Add([]byte{0xc2, 0x61})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics and false accepts are not
		}
		enc := Encode(v)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decoder accepted non-canonical input:\n in  %x\n out %x", data, enc)
		}
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(Encode(v2), enc) {
			t.Fatalf("round trip unstable: %x vs %x", Encode(v2), enc)
		}
	})
}

// FuzzEncodeDecodeRoundTrip builds structured values from fuzzed leaves and
// checks Encode/Decode is the identity on them.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte("leaf"), []byte{}, uint64(12345), uint8(3))
	f.Add([]byte{0x00}, []byte{0x7f}, uint64(0), uint8(0))
	f.Add(bytes.Repeat([]byte("A"), 100), []byte("b"), uint64(1<<63), uint8(9))

	f.Fuzz(func(t *testing.T, s1, s2 []byte, u uint64, depth uint8) {
		v := List(Bytes(s1), Uint(u), Bytes(s2))
		for i := 0; i < int(depth%6); i++ {
			v = List(v, Uint(uint64(i)), Bytes(s2))
		}
		enc := Encode(v)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if !bytes.Equal(Encode(got), enc) {
			t.Fatalf("round trip changed the encoding")
		}
	})
}
