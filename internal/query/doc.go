// Package query routes point and range predicates over a table's access
// paths: a registered secondary index (internal/secondary) when one
// covers the queried attribute, a filtered primary scan otherwise.
//
// The planner is deliberately minimal — one attribute per query, exact
// match or half-open value range — because its point is not SQL, it is
// the cost contract: a query routed through a secondary index must read
// O(result) index nodes, not O(data). That contract is enforced, not
// assumed: internal/query/plantest runs every index class over a
// node-read-counting store and fails any planner that silently falls
// back to scanning while claiming an index route (Plan says which route
// ran, the counter says what it cost).
//
// Results come back as primary rows: the index route resolves each
// matching composite key to its primary key and re-reads the row from
// the query Source. Reading through the Source — rather than trusting
// the index — is what makes the planner correct over an ingest.Buffer
// overlay: a delete the memtable has not merged yet makes the primary
// lookup miss, masking the stale index hit, and an unmerged overwrite is
// re-checked against the predicate via the extractor. Rows that are new
// in the overlay appear under attribute predicates only after the
// overlay merges, since the secondary is maintained at the committed
// table, not the memtable.
package query
