package query

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/secondary"
)

// Source is where the planner reads rows from: the committed primary
// index (wrap one with IndexSource) or an ingest.Buffer, whose Get/Range
// already merge the unmerged memtable over the committed head.
type Source interface {
	// Get reads one row by primary key.
	Get(key []byte) ([]byte, bool, error)
	// Range visits rows with lo ≤ key < hi in ascending key order, nil
	// bounds unbounded — the core.Ranger contract.
	Range(lo, hi []byte, fn func(key, value []byte) bool) error
}

// indexSource adapts a core.Index to Source.
type indexSource struct{ idx core.Index }

func (s indexSource) Get(key []byte) ([]byte, bool, error) { return s.idx.Get(key) }
func (s indexSource) Range(lo, hi []byte, fn func(key, value []byte) bool) error {
	return core.RangeOf(s.idx, lo, hi, fn)
}

// IndexSource wraps a primary index version as a query Source.
func IndexSource(idx core.Index) Source { return indexSource{idx} }

// Query is one predicate. Attr == "" queries by primary key directly;
// otherwise Attr names a derived attribute. Exact != nil asks for rows
// whose attribute equals Exact (use []byte{} for the empty value);
// Exact == nil asks for the half-open value range [Lo, Hi) with nil
// bounds unbounded, the same bound semantics as core.Ranger. Limit > 0
// caps the result count; for a range predicate over an attribute, which
// matching rows survive the cap is route-dependent (the index route cuts
// in value order, the scan route in primary-key order).
type Query struct {
	Attr  string
	Exact []byte
	Lo    []byte
	Hi    []byte
	Limit int
}

// Row is one result: a primary row.
type Row struct {
	Key   []byte
	Value []byte
}

// Plan reports how a query was executed — the observable half of the
// honesty contract. UsedIndex means a secondary served the predicate
// (IndexClass names its class); FellBack means the attribute had no
// covering index and a filtered primary scan ran instead.
type Plan struct {
	Attr       string
	UsedIndex  bool
	IndexClass string
	FellBack   bool
}

// Engine answers queries. The shipped implementation is Planner; the
// plantest battery accepts any Engine so it can prove the battery itself
// catches a dishonest one.
type Engine interface {
	Query(q Query) ([]Row, Plan, error)
}

// ErrUnknownAttr reports a query over an attribute the planner has no
// binding for — neither an index nor an extractor to scan with.
var ErrUnknownAttr = errors.New("query: unknown attribute")

// binding is one attribute the planner can serve.
type binding struct {
	extract secondary.Extract
	idx     core.Index // nil: scan-only binding
}

// Planner routes queries over one Source. Bind attributes with BindIndex
// (index-routed) or BindAttr (scan-only fallback); primary-key queries
// (Attr == "") need no binding. Planner is a snapshot: it holds the
// index versions it was built with, so rebuild it (or use PlannerFor)
// after the table commits new versions.
type Planner struct {
	src   Source
	attrs map[string]binding
}

// NewPlanner builds a planner over one row source with no attribute
// bindings yet.
func NewPlanner(src Source) *Planner {
	return &Planner{src: src, attrs: make(map[string]binding)}
}

// BindAttr registers a scan-only attribute: queries over it work but
// always fall back to a filtered primary scan.
func (p *Planner) BindAttr(attr string, ex secondary.Extract) *Planner {
	p.attrs[attr] = binding{extract: ex}
	return p
}

// BindIndex registers an attribute served by a secondary index version.
// The extractor must be the one that maintains idx, or index-routed
// re-checks will disagree with scans.
func (p *Planner) BindIndex(attr string, ex secondary.Extract, idx core.Index) *Planner {
	p.attrs[attr] = binding{extract: ex, idx: idx}
	return p
}

// PlannerFor builds the planner a secondary.Table implies: every table
// Def bound to its current secondary index version, reading rows from
// src. Pass IndexSource(tbl.Primary()) to query the committed table, or
// an ingest.Buffer to query through the unmerged overlay.
func PlannerFor(src Source, tbl *secondary.Table) *Planner {
	p := NewPlanner(src)
	for _, d := range tbl.Defs() {
		if idx, ok := tbl.Secondary(d.Attr); ok {
			p.BindIndex(d.Attr, d.Extract, idx)
		}
	}
	return p
}

// Query executes one predicate and returns the matching rows sorted by
// primary key — without a Limit, the same rows in the same order
// whichever route served them.
func (p *Planner) Query(q Query) ([]Row, Plan, error) {
	if q.Attr == "" {
		return p.primaryQuery(q)
	}
	b, ok := p.attrs[q.Attr]
	if !ok {
		return nil, Plan{Attr: q.Attr}, fmt.Errorf("%w: %q", ErrUnknownAttr, q.Attr)
	}
	if b.idx != nil {
		rows, err := p.indexed(q, b)
		return rows, Plan{Attr: q.Attr, UsedIndex: true, IndexClass: b.idx.Name()}, err
	}
	rows, err := p.scan(q, b)
	return rows, Plan{Attr: q.Attr, FellBack: true}, err
}

// primaryQuery serves Attr == "": by key through Source.Get, or a key
// range through Source.Range.
func (p *Planner) primaryQuery(q Query) ([]Row, Plan, error) {
	plan := Plan{}
	if q.Exact != nil {
		v, ok, err := p.src.Get(q.Exact)
		if err != nil || !ok {
			return nil, plan, err
		}
		return []Row{{Key: append([]byte(nil), q.Exact...), Value: v}}, plan, nil
	}
	var rows []Row
	err := p.src.Range(q.Lo, q.Hi, func(k, v []byte) bool {
		rows = append(rows, copyRow(k, v))
		return q.Limit <= 0 || len(rows) < q.Limit
	})
	return rows, plan, err
}

// Matches evaluates the predicate against one attribute value — the
// membership test both routes agree on, exported for conformance
// batteries that re-check returned rows.
func (q Query) Matches(av []byte) bool {
	if q.Exact != nil {
		return bytes.Equal(av, q.Exact)
	}
	return core.InRange(av, q.Lo, q.Hi) && !core.EmptyRange(q.Lo, q.Hi)
}

// bounds translates the predicate into the composite-key interval to
// scan on the secondary.
func (q Query) bounds() (lo, hi []byte) {
	if q.Exact != nil {
		return secondary.ExactBounds(q.Attr, q.Exact)
	}
	return secondary.RangeBounds(q.Attr, q.Lo, q.Hi)
}

// indexed serves the predicate through the bound secondary: scan the
// composite-key interval, resolve each hit to its primary row through
// the Source, re-check the predicate against the live value. The re-read
// is what keeps the route correct over an overlay Source — an unmerged
// delete misses (masking the stale index entry) and an unmerged
// overwrite is re-judged by the extractor.
func (p *Planner) indexed(q Query, b binding) ([]Row, error) {
	if q.Exact == nil && core.EmptyRange(q.Lo, q.Hi) {
		return nil, nil
	}
	lo, hi := q.bounds()
	var rows []Row
	var rerr error
	err := core.RangeOf(b.idx, lo, hi, func(k, _ []byte) bool {
		_, _, pk, err := secondary.DecodeKey(k)
		if err != nil {
			rerr = err
			return false
		}
		v, ok, err := p.src.Get(pk)
		if err != nil {
			rerr = err
			return false
		}
		if !ok {
			return true // unmerged delete: stale index hit, masked
		}
		av, ok := b.extract(pk, v)
		if !ok || !q.Matches(av) {
			return true // unmerged overwrite moved the row out of the predicate
		}
		rows = append(rows, copyRow(pk, v))
		return q.Limit <= 0 || len(rows) < q.Limit
	})
	if rerr != nil {
		return nil, rerr
	}
	if err != nil {
		return nil, err
	}
	sortRows(rows)
	return rows, nil
}

// scan serves the predicate by filtering a full primary scan — the
// fallback for attributes with no covering index.
func (p *Planner) scan(q Query, b binding) ([]Row, error) {
	if q.Exact == nil && core.EmptyRange(q.Lo, q.Hi) {
		return nil, nil
	}
	var rows []Row
	err := p.src.Range(nil, nil, func(k, v []byte) bool {
		av, ok := b.extract(k, v)
		if !ok || !q.Matches(av) {
			return true
		}
		rows = append(rows, copyRow(k, v))
		return q.Limit <= 0 || len(rows) < q.Limit
	})
	if err != nil {
		return nil, err
	}
	sortRows(rows)
	return rows, nil
}

func copyRow(k, v []byte) Row {
	return Row{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)}
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i].Key, rows[j].Key) < 0 })
}
