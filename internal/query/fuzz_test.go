package query_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/secondary"
)

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// FuzzPlanner fuzzes the predicate-to-composite-key translation the
// planner routes through: whatever the attribute, values, primary keys
// and bounds contain (separator bytes, escapes, empties, inverted
// ranges), the encoding must round trip, sort like the raw tuples, and
// ExactBounds/RangeBounds must select exactly the tuples the predicate
// selects.
func FuzzPlanner(f *testing.F) {
	f.Add("city", []byte("g01"), []byte("pk-1"), []byte("g00"), []byte("pk-2"), []byte("g00"), []byte("g02"), true, true)
	f.Add("a\x00b", []byte{0x00}, []byte{}, []byte{0x00, 0xFF}, []byte{0x01}, []byte{}, []byte{0x00}, false, true)
	f.Add("", []byte{}, []byte{}, []byte{}, []byte{}, []byte{}, []byte{}, false, false)
	f.Add("x", []byte("same"), []byte("pk"), []byte("same"), []byte("pk"), []byte("z"), []byte("a"), true, true) // inverted
	f.Fuzz(func(t *testing.T, attr string, valA, pkA, valB, pkB, lo, hi []byte, hasLo, hasHi bool) {
		kA := secondary.EncodeKey(attr, valA, pkA)
		kB := secondary.EncodeKey(attr, valB, pkB)

		// Round trip.
		ga, gv, gp, err := secondary.DecodeKey(kA)
		if err != nil {
			t.Fatalf("DecodeKey(EncodeKey(%q,%x,%x)): %v", attr, valA, pkA, err)
		}
		if ga != attr || !bytes.Equal(gv, valA) || !bytes.Equal(gp, pkA) {
			t.Fatalf("round trip (%q,%x,%x) -> (%q,%x,%x)", attr, valA, pkA, ga, gv, gp)
		}

		// Encoded order == tuple order within one attribute.
		if sign(bytes.Compare(kA, kB)) != sign(secondary.CompareTuples(valA, pkA, valB, pkB)) {
			t.Fatalf("order disagrees: enc %d for tuples (%x,%x) vs (%x,%x)",
				bytes.Compare(kA, kB), valA, pkA, valB, pkB)
		}

		// Exact bounds select exactly the tuples with the queried value.
		exLo, exHi := secondary.ExactBounds(attr, valB)
		inExact := bytes.Compare(kA, exLo) >= 0 && bytes.Compare(kA, exHi) < 0
		if inExact != bytes.Equal(valA, valB) {
			t.Fatalf("ExactBounds(%q,%x): key (%x,%x) in=%v", attr, valB, valA, pkA, inExact)
		}

		// Range bounds select exactly the tuples the predicate admits,
		// including for empty and inverted ranges. nil bounds are
		// unbounded, mirroring the planner's Query.Lo/Hi semantics.
		var qLo, qHi []byte
		if hasLo {
			qLo = lo
		}
		if hasHi {
			qHi = hi
		}
		rLo, rHi := secondary.RangeBounds(attr, qLo, qHi)
		inRange := bytes.Compare(kA, rLo) >= 0 && bytes.Compare(kA, rHi) < 0
		want := core.InRange(valA, qLo, qHi)
		if inRange != want {
			t.Fatalf("RangeBounds(%q,%x,%x): key (%x,%x) in=%v want %v",
				attr, qLo, qHi, valA, pkA, inRange, want)
		}
	})
}
